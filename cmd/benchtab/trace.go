// Flight-recorder export (-trace <dir>): run a small smoke farm with trace
// retention on and write each package's event ring as Chrome trace_event
// JSON (load in chrome://tracing or Perfetto), plus the farm-wide metrics
// registry as a plain-text Prometheus dump.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/abi"
	"repro/internal/buildsim"
	"repro/internal/debpkg"
	"repro/internal/obs"
)

// sysnoNamer labels syscall events in exported traces with the ABI name.
func sysnoNamer(num int32) string { return abi.Sysno(num).String() }

// writeTraces builds n packages with KeepTraces on and exports one
// <name>_<version>.trace.json per completed DetTrace run plus metrics.prom
// for the whole farm.
func writeTraces(seed uint64, jobs, n int, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	o := &buildsim.Options{Seed: seed, Jobs: jobs, KeepTraces: true}
	specs := debpkg.Universe(seed, n)
	outs := o.BuildAll(specs, nil)
	wrote := 0
	for _, out := range outs {
		if len(out.Trace) == 0 {
			continue
		}
		name := fmt.Sprintf("%s_%s.trace.json", out.Spec.Name, out.Spec.Version)
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		werr := obs.WriteChromeTrace(f, out.Trace, out.Spans, sysnoNamer)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		wrote++
	}
	f, err := os.Create(filepath.Join(dir, "metrics.prom"))
	if err != nil {
		return err
	}
	werr := o.Obs().WriteProm(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	fmt.Printf("wrote %d Chrome traces and metrics.prom to %s\n", wrote, dir)
	return nil
}
