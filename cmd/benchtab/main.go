// Command benchtab regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index):
//
//	benchtab -table1            Table 1 (build-status transitions)
//	benchtab -table2            Table 2 (per-package tracer events)
//	benchtab -fig5              Figure 5 CSV (slowdown vs syscall rate)
//	benchtab -fig6              Figure 6 (bioinformatics speedups)
//	benchtab -tensorflow        §7.6 TensorFlow slowdowns
//	benchtab -rr                §7.1.3 Mozilla rr comparison
//	benchtab -portability       §7.3 cross-machine study (plus ablation)
//	benchtab -llvm              §7.2 LLVM self-host correctness
//	benchtab -baseline          §6.1 stock-Wheezy numbers
//	benchtab -unsupported       §7.1.1 unsupported breakdown
//	benchtab -biorepro          §6.1 bio/ML reproducibility verdicts
//	benchtab -rescue            §5.9/§5.4 ablation: experimental sockets+signals
//	benchtab -buffering         syscall-buffer ablation (Fig. 5 with/without)
//	benchtab -templates         container-template ablation (setup cost with/without COW forks)
//	benchtab -faults            X15 crash-recovery study (checkpoint restore vs cold replay)
//	benchtab -farm              X16 distributed-farm study (scaling, placement, node-kill recovery)
//	benchtab -workspaces        X17 thread-workspace ablation (farm speedup + output equivalence)
//	benchtab -incremental       X18 incremental-rebuild study (derivation-store seal reuse vs cold)
//	benchtab -ttd               X19 time-travel debug study (delta seals, seek latency, bisect cost)
//	benchtab -attest            X20 Byzantine-robustness study (attested farms under adversarial schedules)
//	benchtab -json              machine-readable BENCH_<date>.json report
//	benchtab -trace <dir>       flight-recorder Chrome traces + Prometheus metrics dump
//	benchtab -all               everything (except -json and -trace, which write files)
//
// The package universe defaults to a deterministic 1,200-package sample
// (proportions preserved); -n 0 runs all 17,145 packages like the paper.
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/bio"
	"repro/internal/buildsim"
	"repro/internal/debpkg"
	"repro/internal/mlsim"
	"repro/internal/stats"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 1, "universe + environment seed")
		n        = flag.Int("n", 1200, "package sample size (0 = full 17,145 universe)")
		jobs     = flag.Int("jobs", 0, "parallel build workers (0 = GOMAXPROCS)")
		nport    = flag.Int("nport", 100, "portability study size (paper: 1,000)")
		table1   = flag.Bool("table1", false, "")
		table2   = flag.Bool("table2", false, "")
		fig5     = flag.Bool("fig5", false, "")
		fig6     = flag.Bool("fig6", false, "")
		tf       = flag.Bool("tensorflow", false, "")
		rrFlag   = flag.Bool("rr", false, "")
		port     = flag.Bool("portability", false, "")
		llvm     = flag.Bool("llvm", false, "")
		stock    = flag.Bool("baseline", false, "")
		unsup    = flag.Bool("unsupported", false, "")
		biorep   = flag.Bool("biorepro", false, "")
		rescue   = flag.Bool("rescue", false, "")
		bufStud  = flag.Bool("buffering", false, "syscall-buffer ablation: Fig. 5 slowdown with/without the in-tracee buffer")
		tmplStd  = flag.Bool("templates", false, "container-template ablation: farm setup cost with/without COW template forks")
		faults   = flag.Bool("faults", false, "X15 crash-recovery study: mid-build crashes recovered from checkpoints vs cold replay")
		farmStd  = flag.Bool("farm", false, "X16 distributed-farm study: node counts x placement seeds x fault schedules vs the local reference")
		wsStud   = flag.Bool("workspaces", false, "X17 thread-workspace ablation: threaded-build speedup vs serialized threads, with bitwise output equivalence")
		incrStd  = flag.Bool("incremental", false, "X18 incremental-rebuild study: one-file patches rebuilt from derivation-store seals vs cold, compared bitwise")
		ttdStd   = flag.Bool("ttd", false, "X19 time-travel debug study: delta-seal sizes, logical-time seek vs cold replay, bisect probe counts")
		attStd   = flag.Bool("attest", false, "X20 Byzantine-robustness study: attested farms under adversarial schedules, quorum admission, rebuild-free verification")
		jsonOut  = flag.Bool("json", false, "write BENCH_<date>.json with throughput, slowdown and stop counts")
		traceDir = flag.String("trace", "", "export flight-recorder Chrome traces and a Prometheus metrics dump to this directory")
		all      = flag.Bool("all", false, "")
	)
	flag.Parse()
	o := &buildsim.Options{Seed: *seed, Jobs: *jobs}

	needUniverse := *all || *table1 || *table2 || *fig5 || *unsup
	var report *buildsim.Report
	if needUniverse {
		specs := debpkg.Universe(*seed, *n)
		fmt.Printf("== building %d packages (4 builds each) ==\n", len(specs))
		start := time.Now()
		outs := o.BuildAll(specs, progress)
		fmt.Printf("   done in %s\n\n", time.Since(start).Round(time.Second))
		report = buildsim.Aggregate(outs)
	}

	if *all || *table1 {
		section("Table 1: build status transitions, baseline <-> DetTrace")
		fmt.Println(report.Table1Top())
		fmt.Println(report.Table1Bottom())
	}
	if *all || *unsup {
		section("§7.1.1: why packages are unsupported")
		fmt.Println(report.UnsupportedBreakdown())
	}
	if *all || *table2 {
		section("Table 2: per-package average tracer events")
		fmt.Println(report.Table2String())
	}
	if *all || *fig5 {
		section("Figure 5: DetTrace slowdown vs system call rate (CSV)")
		fmt.Println(report.Fig5Summary())
	}
	if *all || *stock {
		section("§6.1: stock Wheezy baseline (no DetTrace)")
		st := o.RunStock(debpkg.Universe(*seed, sampleOr(*n, 400)))
		fmt.Println(st)
		for _, d := range st.SampleDiffs {
			fmt.Println("  example difference:", d)
		}
		fmt.Println()
	}
	if *all || *fig6 {
		section("Figure 6: bioinformatics speedups (1/4/16 processes)")
		fmt.Println(bio.FormatFig6(bio.RunFig6(*seed)))
		section("X17: pthreads builds — workspaces vs serialized threads")
		fmt.Println(bio.FormatThreadStudy(bio.RunThreadStudy(*seed)))
	}
	if *all || *biorep {
		section("§6.1: bio output reproducibility (hashdeep)")
		t := stats.NewTable("workflow", "native identical", "dettrace identical")
		for _, r := range bio.VerifyRepro(*seed) {
			t.Row(string(r.Tool), r.NativeIdentical, r.DetTraceIdentical)
		}
		fmt.Println(t.String())
	}
	if *all || *tf {
		section("§7.6: TensorFlow (alexnet/cifar10) slowdowns")
		t := stats.NewTable("model", "DT vs 16-thread native", "DT vs serialized native")
		for _, r := range mlsim.RunStudy(*seed) {
			t.Row(string(r.Model), fmt.Sprintf("%.2fx", r.VsParallel), fmt.Sprintf("%.2fx", r.VsSerial))
		}
		fmt.Println(t.String())
		section("X17: intra-op thread pool — workspaces vs serialized threads")
		wt := stats.NewTable("model", "threads", "ws on", "ws off", "speedup", "merges", "conflicts")
		for _, r := range mlsim.RunWorkspaceSweep(*seed) {
			wt.Row(string(r.Model), fmt.Sprint(r.Threads),
				fmt.Sprintf("%.1fs", float64(r.WsOn)/1e9),
				fmt.Sprintf("%.1fs", float64(r.WsOff)/1e9),
				fmt.Sprintf("%.2fx", r.Speedup),
				fmt.Sprint(r.Merges), fmt.Sprint(r.Conflicts))
		}
		fmt.Println(wt.String())
	}
	if *all || *rrFlag {
		section("§7.1.3: comparison with Mozilla rr")
		fmt.Println(o.RunRRStudy())
		fmt.Println()
	}
	if *all || *port {
		section("§7.3: portability across Skylake/4.15 and Broadwell/4.18")
		fmt.Println(o.RunPortability(*nport, false))
		fmt.Println("ablation (directory-size virtualization disabled):")
		fmt.Println(o.RunPortability(*nport, true))
		fmt.Println()
	}
	if *all || *rescue {
		section("extension ablation: experimental sockets+signals vs the unsupported set")
		var specs []*debpkg.Spec
		for _, s := range debpkg.Universe(*seed, sampleOr(*n, 2400)) {
			if s.Unsup == debpkg.UnsupSocket || s.Unsup == debpkg.UnsupSignal {
				specs = append(specs, s)
			}
			if len(specs) >= 40 {
				break
			}
		}
		exp := &buildsim.Options{Seed: *seed, Jobs: *jobs, Experimental: true}
		rescued := 0
		for _, out := range exp.BuildAll(specs, nil) {
			if out.DT == buildsim.Reproducible {
				rescued++
			}
		}
		fmt.Printf("socket/signal-class packages sampled: %d; reproducible with experimental modes: %d\n\n",
			len(specs), rescued)
	}
	if *all || *bufStud {
		section("syscall-buffer ablation: Fig. 5 with and without the in-tracee buffer")
		fmt.Println(o.RunBufferStudy(debpkg.Universe(*seed, sampleOr(*n, 120))))
		fmt.Println()
	}
	if *all || *tmplStd {
		section("container-template ablation: setup cost with and without COW forks")
		fmt.Println(o.RunTemplateStudy(debpkg.Universe(*seed, sampleOr(*n, 120)), 0))
		fmt.Println()
	}
	if *all || *faults {
		section("X15: crash recovery — checkpoint restore vs cold replay")
		fmt.Println(o.RunFaultStudy(debpkg.Universe(*seed, sampleOr(*n, 48))))
		fmt.Println()
	}
	if *all || *farmStd {
		section("X16: distributed farm — scaling, placement and crash recovery")
		fmt.Println(o.RunFarmStudy(debpkg.Universe(*seed, sampleOr(*n, 12))))
		fmt.Println()
	}
	if *all || *wsStud {
		section("X17: thread workspaces across the farm — ablation study")
		fmt.Println(o.RunWorkspaceStudy(debpkg.Universe(*seed, sampleOr(*n, 120))))
		fmt.Println()
	}
	if *all || *incrStd {
		section("X18: incremental rebuilds — derivation-store seal reuse vs cold")
		fmt.Println(o.RunIncrementalStudy(debpkg.Universe(*seed, sampleOr(*n, 120)), 0))
		fmt.Println()
	}
	if *all || *ttdStd {
		section("X19: time-travel debugging — delta seals, logical-time seek, auto-bisect")
		fmt.Println(o.RunTTDStudy(debpkg.Universe(*seed, sampleOr(*n, 24))))
		fmt.Println()
	}
	if *all || *attStd {
		section("X20: Byzantine-robust attestation — adversarial schedules, quorum admission, rebuild-free verification")
		fmt.Println(o.RunAttestStudy(debpkg.Universe(*seed, sampleOr(*n, 6))))
		fmt.Println()
	}
	if *jsonOut {
		if err := writeBenchJSON(o, *seed, sampleOr(*n, 120)); err != nil {
			fmt.Println("benchmark report failed:", err)
		}
	}
	if *traceDir != "" {
		if err := writeTraces(*seed, *jobs, sampleOr(*n, 8), *traceDir); err != nil {
			fmt.Println("trace export failed:", err)
		}
	}
	if *all || *llvm {
		section("§7.2: LLVM self-host correctness")
		st := o.RunLLVM()
		fmt.Printf("native build:   %s\n", st.NativeSummary)
		fmt.Printf("dettrace build: %s\n", st.DetTraceSummary)
		fmt.Printf("outcomes match: %v; dettrace verdict: %s\n\n", st.Match, st.DetTraceVerdict)
	}
}

func section(title string) {
	fmt.Printf("==== %s ====\n", title)
}

// progress redraws an in-place counter every 100 packages and always leaves
// a complete, newline-terminated line once the last package finishes, so the
// next section never starts on a dangling \r line.
func progress(done, total int) {
	if done%100 == 0 || done == total {
		fmt.Printf("\r   %d/%d packages", done, total)
	}
	if done == total {
		fmt.Println()
	}
}

func sampleOr(n, def int) int {
	if n == 0 {
		return 0
	}
	if n < def {
		return n
	}
	return def
}
