// Machine-readable benchmark report (-json): a snapshot of the performance
// headline numbers — syscall dispatch throughput with the in-tracee buffer on
// and off, and the Fig. 5 aggregate slowdown under both configurations — for
// CI artifact upload and regression tracking.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro"
	"repro/internal/buildsim"
	"repro/internal/debpkg"
	"repro/internal/kernel"
	"repro/internal/mlsim"
)

// syscallBench is one wall-clock microbenchmark run: a single-process guest
// looping on an intercepted time() call.
type syscallBench struct {
	Calls       int     `json:"calls"`
	NsPerOp     float64 `json:"ns_per_op"`
	CallsPerSec float64 `json:"calls_per_sec"`
	Stops       int64   `json:"ptrace_stops"`
	Buffered    int64   `json:"buffered_calls"`
	Flushes     int64   `json:"buffer_flushes"`
}

// templateBench is the container-template ablation section: total farm
// setup cost with the COW template cache on and off, the reuse counters,
// and the per-boot costs behind the amortization.
type templateBench struct {
	Packages       int     `json:"packages"`
	RunsPerPackage int     `json:"runs_per_package"`
	Identical      int     `json:"bitwise_identical"`
	SetupOnNs      int64   `json:"farm_setup_ns_templates_on"`
	SetupOffNs     int64   `json:"farm_setup_ns_templates_off"`
	SetupReduction float64 `json:"setup_reduction"`
	Hits           int64   `json:"template_hits"`
	Misses         int64   `json:"template_misses"`
	Evictions      int64   `json:"template_evictions"`
	AvgForkNs      float64 `json:"avg_fork_ns"`
	AvgColdSetupNs float64 `json:"avg_cold_setup_ns"`
}

// faultBench is the crash-recovery section (X15): every sampled package is
// crashed mid-build with a deterministic fault and recovered from its last
// checkpoint; MTTR is crash-to-completion virtual time, redone is the work
// executed twice (the chunk-granularity number a cold replay pays in full).
type faultBench struct {
	Packages    int     `json:"packages"`
	Crashed     int     `json:"crashed"`
	Identical   int     `json:"recovered_identical"`
	Restores    int64   `json:"checkpoint_restores"`
	ColdReplays int64   `json:"cold_replays"`
	AvgMTTRNs   float64 `json:"avg_mttr_ns"`
	AvgReplayNs float64 `json:"avg_replay_ns"`
	AvgRedoneNs float64 `json:"avg_redone_ns"`
	MTTRSpeedup float64 `json:"mttr_speedup"`
}

// farmBench is the distributed-farm section (X16): the same package set
// built across farm shapes — node counts x placement seeds x fault
// schedules — with every cell compared bitwise against the local reference.
// identical_cells must equal cells (the determinism oracle); the rest is
// the cost story: shard-store amortization and node-kill recovery latency.
type farmBench struct {
	Packages       int     `json:"packages"`
	Cells          int     `json:"cells"`
	Identical      int     `json:"identical_cells"`
	NodeCounts     []int   `json:"node_counts"`
	NodeCrashes    int64   `json:"node_crashes"`
	Steals         int64   `json:"steals"`
	Recoveries     int64   `json:"recoveries"`
	ColdRecoveries int64   `json:"cold_recoveries"`
	SealPuts       int64   `json:"seal_puts"`
	StatePrepares  int64   `json:"state_prepares"`
	StateFetches   int64   `json:"state_fetches"`
	MsgsLost       int64   `json:"msgs_lost"`
	MsgsDuplicated int64   `json:"msgs_duplicated"`
	MsgsDeduped    int64   `json:"msgs_deduped"`
	AvgMTTRNs      float64 `json:"avg_mttr_ns"`
	AvgRedoneNs    float64 `json:"avg_redone_ns"`
}

// wsThreadBench is one thread point of the workspace sweep (X17): the
// intra-op pool under DetTrace with workspaces on vs the serialized-thread
// ablation, plus the merge accounting of the ws-on run.
type wsThreadBench struct {
	Workload  string  `json:"workload"`
	Threads   int     `json:"threads"`
	WsOnNs    int64   `json:"ws_on_ns"`
	WsOffNs   int64   `json:"ws_off_ns"`
	Speedup   float64 `json:"speedup_vs_serialized"`
	Merges    int64   `json:"merges"`
	Conflicts int64   `json:"conflicts"`
}

// workspaceBench is the thread-workspace section (X17): per-thread-count
// speedups over the serialized ablation, the farm-level aggregate over the
// threaded (javac) packages, and the cost-model constants behind the fork
// and merge charges. farm_identical must equal farm_packages — workspaces
// relax only the physical clock, never an output byte.
type workspaceBench struct {
	ThreadPoints []wsThreadBench `json:"thread_points"`

	FarmPackages        int     `json:"farm_packages"`
	FarmThreaded        int     `json:"farm_threaded"`
	FarmIdentical       int     `json:"farm_identical"`
	FarmThreadedSpeedup float64 `json:"farm_threaded_speedup"`
	FarmAvgForks        float64 `json:"farm_avg_forks"`
	FarmAvgMerges       float64 `json:"farm_avg_merges"`
	FarmConflicts       int64   `json:"farm_conflicts"`

	ForkNs  int64 `json:"avg_fork_ns"`
	MergeNs int64 `json:"avg_merge_ns"`
}

// incrementalBench is the incremental-rebuild section (X18): one-file
// patches rebuilt by forking derivation-store seals versus cold rebuilds of
// the same patched trees. identical_rounds must equal rounds (reuse may move
// time, never a byte); the headline is rebuild_speedup — the geometric-mean
// cold/rebuild time ratio over seal-forking rounds, alongside the raw
// average rebuild and cold times.
type incrementalBench struct {
	Packages    int     `json:"packages"`
	Rounds      int     `json:"rounds"`
	Identical   int     `json:"identical_rounds"`
	Forked      int     `json:"seal_forks"`
	ColdFalls   int     `json:"cold_falls"`
	UnitsTotal  int64   `json:"units_total"`
	UnitsReused int64   `json:"units_reused"`
	UnitsRedone int64   `json:"units_redone"`
	AvgRebuild  float64 `json:"avg_rebuild_ns"`
	AvgCold     float64 `json:"avg_cold_ns"`
	Speedup     float64 `json:"rebuild_speedup"`
}

// ttdBench is the time-travel debug section (X19): what dense delta
// checkpointing stores versus standalone full seals, what a logical-time
// seek costs against a cold replay to the same instant, and the auto-bisect
// probe/replay counts with agreement against the linear diagnoser.
// delta_full_equivalent must equal packages — the DisableDeltaSeals ablation
// may change seal representation, never an output byte.
type ttdBench struct {
	Packages   int `json:"packages"`
	Seals      int `json:"seals"`
	Equivalent int `json:"delta_full_equivalent"`

	DeltaBytes int64   `json:"seal_delta_bytes"`
	FullBytes  int64   `json:"seal_full_bytes"`
	DeltaRatio float64 `json:"seal_delta_ratio"`

	// seek_speedup is the deterministic action-count ratio (cold replay
	// actions / chain-seek actions); the *_ns wall times are informational.
	ReplayedActions int64   `json:"seek_replayed_actions"`
	ColdActions     int64   `json:"cold_replayed_actions"`
	SeekSpeedup     float64 `json:"seek_speedup"`
	SeekNs          int64   `json:"seek_ns"`
	ColdReplayNs    int64   `json:"cold_replay_ns"`

	BisectProbes  int `json:"bisect_probes"`
	BisectReplays int `json:"bisect_window_replays"`
	BisectAgree   int `json:"bisect_agree_linear"`
}

// attestBench is the Byzantine-robustness section (X20): attested farms
// under adversarial schedules x node counts x slot counts. admitted_identical
// and outs_identical must equal cells and lies_admitted/false_verified must
// be zero — a Byzantine participant can be detected, named and quarantined
// but never move an admitted bit. verify_cost_pct is the rebuild-free claim:
// log-only verification as a percentage of build cost.
type attestBench struct {
	Packages int `json:"packages"`
	Cells    int `json:"cells"`

	AdmittedIdentical int `json:"admitted_identical"`
	OutsIdentical     int `json:"outs_identical"`
	LiesAdmitted      int `json:"lies_admitted"`

	ByzantineCells int `json:"byzantine_cells"`
	Caught         int `json:"byzantine_caught"`

	Attestations int64 `json:"attestations"`
	Rebuilds     int64 `json:"rebuilds"`
	Lies         int64 `json:"lies_detected"`
	Corrupt      int64 `json:"corrupt_attestations"`
	Withheld     int64 `json:"cosigns_withheld"`
	Quarantines  int64 `json:"quarantines"`
	Epochs       int64 `json:"epochs_sealed"`

	Verified      int     `json:"verified"`
	Refuted       int     `json:"refuted"`
	FalseVerified int     `json:"false_verified"`
	ForgedBlocks  int     `json:"forged_blocks_rejected"`
	VerifyCostPct float64 `json:"verify_cost_pct"`
}

// obsBench is the observability section: the modeled Fig. 5 slowdown with
// the flight recorder on and off (the recorder charges no virtual time, so
// the regression must stay under the 2% acceptance bound), the recorder
// event volume per setup path, and the microbenchmark container's ring size.
type obsBench struct {
	SlowdownObsOn    float64 `json:"aggregate_slowdown_obs_on"`
	SlowdownObsOff   float64 `json:"aggregate_slowdown_obs_off"`
	RegressionPct    float64 `json:"fig5_regression_pct"`
	AvgRecEventsFork float64 `json:"avg_rec_events_fork"`
	AvgRecEventsCold float64 `json:"avg_rec_events_cold"`
	MicrobenchEvents int64   `json:"recorder_events_microbench"`
	MicrobenchDrops  int64   `json:"recorder_dropped_microbench"`
}

// benchReport is the BENCH_<date>.json schema. Additions ride in new keys
// (the `obs` and `faults` sections); existing keys never rename, so
// downstream regression tracking keeps parsing old and new files alike.
type benchReport struct {
	Date     string `json:"date"`
	Seed     uint64 `json:"seed"`
	Packages int    `json:"packages"`

	Buffered   syscallBench `json:"syscall_buffered"`
	Unbuffered syscallBench `json:"syscall_unbuffered"`

	AggregateSlowdown           float64 `json:"aggregate_slowdown"`
	AggregateSlowdownUnbuffered float64 `json:"aggregate_slowdown_unbuffered"`
	BitwiseIdentical            int     `json:"bitwise_identical"`

	Templates   templateBench    `json:"templates"`
	Obs         obsBench         `json:"obs"`
	Faults      faultBench       `json:"faults"`
	Farm        farmBench        `json:"farm"`
	Workspaces  workspaceBench   `json:"workspaces"`
	Incremental incrementalBench `json:"incremental"`
	TTD         ttdBench         `json:"ttd"`
	Attest      attestBench      `json:"attest"`
}

// runSyscallBench times `calls` intercepted time() calls end to end inside a
// fresh container and reads the tracer counters back out.
func runSyscallBench(calls int, disableBuf bool) (syscallBench, error) {
	reg := repro.NewRegistry()
	reg.Register("loop", func(p *repro.GuestProc) int {
		for i := 0; i < calls; i++ {
			p.Time()
		}
		return 0
	})
	img := repro.MinimalImage()
	img.AddFile("/bin/loop", 0o755, repro.MakeExe("loop", nil))
	c := repro.New(repro.Config{Image: img, HostSeed: 1, DisableSyscallBuf: disableBuf})
	start := time.Now()
	res := c.Run(reg, "/bin/loop", []string{"loop"}, nil)
	elapsed := float64(time.Since(start).Nanoseconds())
	if res.Err != nil {
		return syscallBench{}, res.Err
	}
	ns := elapsed / float64(calls)
	return syscallBench{
		Calls:       calls,
		NsPerOp:     ns,
		CallsPerSec: 1e9 / ns,
		Stops:       res.Tracer.Stops,
		Buffered:    res.Tracer.BufferedCalls,
		Flushes:     res.Tracer.Flushes,
	}, nil
}

// runObsBench fills the obs section: the same small farm aggregated with the
// flight recorder on and off (modeled times are virtual, so any regression
// is an observer-effect bug), plus the microbenchmark ring volume.
func runObsBench(o *buildsim.Options, seed uint64, n int, ts *buildsim.TemplateStudy) obsBench {
	if n <= 0 || n > 24 {
		n = 24
	}
	specs := debpkg.Universe(seed, n)
	on := (&buildsim.Options{Seed: seed, Jobs: o.Jobs}).BuildAll(specs, nil)
	off := (&buildsim.Options{Seed: seed, Jobs: o.Jobs, NoObservability: true}).BuildAll(specs, nil)
	b := obsBench{
		SlowdownObsOn:    buildsim.Aggregate(on).AggregateSlowdown,
		SlowdownObsOff:   buildsim.Aggregate(off).AggregateSlowdown,
		AvgRecEventsFork: ts.AvgRecEventsFork,
		AvgRecEventsCold: ts.AvgRecEventsCold,
	}
	if b.SlowdownObsOff > 0 {
		b.RegressionPct = (b.SlowdownObsOn - b.SlowdownObsOff) / b.SlowdownObsOff * 100
	}
	reg := repro.NewRegistry()
	reg.Register("loop", func(p *repro.GuestProc) int {
		for i := 0; i < 1000; i++ {
			p.Time()
		}
		return 0
	})
	img := repro.MinimalImage()
	img.AddFile("/bin/loop", 0o755, repro.MakeExe("loop", nil))
	res := repro.New(repro.Config{Image: img, HostSeed: 1}).Run(reg, "/bin/loop", []string{"loop"}, nil)
	if res.Err == nil && res.Trace != nil {
		b.MicrobenchEvents = res.Trace.Total()
		b.MicrobenchDrops = res.Trace.Dropped()
	}
	return b
}

// writeBenchJSON produces BENCH_<date>.json in the working directory. The
// aggregate slowdowns come from the buffering ablation over an n-package
// sample, so one file carries both the microbenchmark and the modeled
// macro numbers.
func writeBenchJSON(o *buildsim.Options, seed uint64, n int) error {
	const calls = 200_000
	rep := benchReport{Date: time.Now().Format("2006-01-02"), Seed: seed}
	var err error
	if rep.Buffered, err = runSyscallBench(calls, false); err != nil {
		return err
	}
	if rep.Unbuffered, err = runSyscallBench(calls, true); err != nil {
		return err
	}
	st := o.RunBufferStudy(debpkg.Universe(seed, n))
	rep.Packages = st.Packages
	rep.AggregateSlowdown = st.WithBuf
	rep.AggregateSlowdownUnbuffered = st.WithoutBuf
	rep.BitwiseIdentical = st.Identical
	ts := o.RunTemplateStudy(debpkg.Universe(seed, n), 0)
	rep.Obs = runObsBench(o, seed, n, ts)
	rep.Templates = templateBench{
		Packages:       ts.Packages,
		RunsPerPackage: ts.Runs,
		Identical:      ts.Identical,
		SetupOnNs:      ts.SetupOnNs,
		SetupOffNs:     ts.SetupOffNs,
		SetupReduction: ts.SetupRatio,
		Hits:           ts.Hits,
		Misses:         ts.Misses,
		Evictions:      ts.Evictions,
		AvgForkNs:      ts.AvgForkNs,
		AvgColdSetupNs: ts.AvgColdSetupNs,
	}
	fs := o.RunFaultStudy(debpkg.Universe(seed, sampleOr(n, 48)))
	rep.Faults = faultBench{
		Packages:    fs.Packages,
		Crashed:     fs.Crashed,
		Identical:   fs.Identical,
		Restores:    fs.Restores,
		ColdReplays: fs.ColdReplays,
		AvgMTTRNs:   fs.AvgMTTRNs,
		AvgReplayNs: fs.AvgReplayNs,
		AvgRedoneNs: fs.AvgRedoneNs,
		MTTRSpeedup: fs.Speedup,
	}
	fm := o.RunFarmStudy(debpkg.Universe(seed, sampleOr(n, 12)))
	rep.Farm = farmBench{
		Packages:       fm.Packages,
		Cells:          fm.Cells,
		Identical:      fm.Identical,
		NodeCounts:     fm.Nodes,
		NodeCrashes:    fm.Crashes,
		Steals:         fm.Steals,
		Recoveries:     fm.Recoveries,
		ColdRecoveries: fm.ColdRecoveries,
		SealPuts:       fm.SealPuts,
		StatePrepares:  fm.StateMisses,
		StateFetches:   fm.StateHits,
		MsgsLost:       fm.MsgsLost,
		MsgsDuplicated: fm.MsgsDuplicated,
		MsgsDeduped:    fm.MsgsDeduped,
		AvgMTTRNs:      fm.AvgMTTRNs,
		AvgRedoneNs:    fm.AvgRedoneNs,
	}
	is := o.RunIncrementalStudy(debpkg.Universe(seed, sampleOr(n, 120)), 0)
	rep.Incremental = incrementalBench{
		Packages:    is.Packages,
		Rounds:      is.Rounds,
		Identical:   is.Identical,
		Forked:      is.Forked,
		ColdFalls:   is.ColdFalls,
		UnitsTotal:  is.UnitsTotal,
		UnitsReused: is.UnitsReused,
		UnitsRedone: is.UnitsRedone,
		AvgRebuild:  is.AvgRebuildNs,
		AvgCold:     is.AvgColdNs,
		Speedup:     is.Speedup,
	}
	td := o.RunTTDStudy(debpkg.Universe(seed, sampleOr(n, 24)))
	rep.TTD = ttdBench{
		Packages:        td.Packages,
		Seals:           td.Seals,
		Equivalent:      td.Equivalent,
		DeltaBytes:      td.DeltaBytes,
		FullBytes:       td.FullBytes,
		DeltaRatio:      td.Ratio,
		ReplayedActions: td.ReplayedActions,
		ColdActions:     td.ColdActions,
		SeekSpeedup:     td.Speedup,
		SeekNs:          td.SeekNs,
		ColdReplayNs:    td.ColdNs,
		BisectProbes:    td.BisectProbes,
		BisectReplays:   td.BisectReplays,
		BisectAgree:     td.BisectAgree,
	}
	at := o.RunAttestStudy(debpkg.Universe(seed, sampleOr(n, 6)))
	rep.Attest = attestBench{
		Packages:          at.Packages,
		Cells:             at.Cells,
		AdmittedIdentical: at.IdenticalAdmitted,
		OutsIdentical:     at.IdenticalOuts,
		LiesAdmitted:      at.LiesAdmitted,
		ByzantineCells:    at.ByzantineCells,
		Caught:            at.Caught,
		Attestations:      at.Attestations,
		Rebuilds:          at.Rebuilds,
		Lies:              at.LiesDetected,
		Corrupt:           at.CorruptAttestations,
		Withheld:          at.CosignsWithheld,
		Quarantines:       at.Quarantines,
		Epochs:            at.EpochsSealed,
		Verified:          at.Verified,
		Refuted:           at.Refuted,
		FalseVerified:     at.FalsePos,
		ForgedBlocks:      at.ForgedSeen,
		VerifyCostPct:     at.VerifyCostPct(),
	}
	cost := kernel.DefaultCostModel()
	rep.Workspaces = workspaceBench{ForkNs: cost.WsForkCost, MergeNs: cost.WsMergeCost}
	for _, r := range mlsim.RunWorkspaceSweep(seed) {
		rep.Workspaces.ThreadPoints = append(rep.Workspaces.ThreadPoints, wsThreadBench{
			Workload: string(r.Model), Threads: r.Threads,
			WsOnNs: r.WsOn, WsOffNs: r.WsOff, Speedup: r.Speedup,
			Merges: r.Merges, Conflicts: r.Conflicts,
		})
	}
	ws := o.RunWorkspaceStudy(debpkg.Universe(seed, sampleOr(n, 48)))
	rep.Workspaces.FarmPackages = ws.Packages
	rep.Workspaces.FarmThreaded = ws.Threaded
	rep.Workspaces.FarmIdentical = ws.Identical
	rep.Workspaces.FarmThreadedSpeedup = ws.ThreadedSpeedup
	rep.Workspaces.FarmAvgForks = ws.AvgForks
	rep.Workspaces.FarmAvgMerges = ws.AvgMerges
	rep.Workspaces.FarmConflicts = ws.Conflicts
	name := fmt.Sprintf("BENCH_%s.json", rep.Date)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(name, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%.0f ns/op buffered, %.0f ns/op unbuffered; slowdown %.2fx vs %.2fx; template setup %.1fx less; crash MTTR %.1fx less than replay; farm %d/%d cells identical; threaded ws speedup %.2fx; incremental rebuild %.1fx geomean speedup, %d/%d rounds identical; attest %d/%d cells admitted-identical, %d lies admitted, verify %.2f%% of build cost)\n",
		name, rep.Buffered.NsPerOp, rep.Unbuffered.NsPerOp,
		rep.AggregateSlowdown, rep.AggregateSlowdownUnbuffered, rep.Templates.SetupReduction,
		rep.Faults.MTTRSpeedup, rep.Farm.Identical, rep.Farm.Cells, rep.Workspaces.FarmThreadedSpeedup,
		rep.Incremental.Speedup, rep.Incremental.Identical, rep.Incremental.Rounds,
		rep.Attest.AdmittedIdentical, rep.Attest.Cells, rep.Attest.LiesAdmitted, rep.Attest.VerifyCostPct)
	return nil
}
