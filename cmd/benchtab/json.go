// Machine-readable benchmark report (-json): a snapshot of the performance
// headline numbers — syscall dispatch throughput with the in-tracee buffer on
// and off, and the Fig. 5 aggregate slowdown under both configurations — for
// CI artifact upload and regression tracking.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro"
	"repro/internal/buildsim"
	"repro/internal/debpkg"
)

// syscallBench is one wall-clock microbenchmark run: a single-process guest
// looping on an intercepted time() call.
type syscallBench struct {
	Calls       int     `json:"calls"`
	NsPerOp     float64 `json:"ns_per_op"`
	CallsPerSec float64 `json:"calls_per_sec"`
	Stops       int64   `json:"ptrace_stops"`
	Buffered    int64   `json:"buffered_calls"`
	Flushes     int64   `json:"buffer_flushes"`
}

// templateBench is the container-template ablation section: total farm
// setup cost with the COW template cache on and off, the reuse counters,
// and the per-boot costs behind the amortization.
type templateBench struct {
	Packages       int     `json:"packages"`
	RunsPerPackage int     `json:"runs_per_package"`
	Identical      int     `json:"bitwise_identical"`
	SetupOnNs      int64   `json:"farm_setup_ns_templates_on"`
	SetupOffNs     int64   `json:"farm_setup_ns_templates_off"`
	SetupReduction float64 `json:"setup_reduction"`
	Hits           int64   `json:"template_hits"`
	Misses         int64   `json:"template_misses"`
	Evictions      int64   `json:"template_evictions"`
	AvgForkNs      float64 `json:"avg_fork_ns"`
	AvgColdSetupNs float64 `json:"avg_cold_setup_ns"`
}

// benchReport is the BENCH_<date>.json schema.
type benchReport struct {
	Date     string `json:"date"`
	Seed     uint64 `json:"seed"`
	Packages int    `json:"packages"`

	Buffered   syscallBench `json:"syscall_buffered"`
	Unbuffered syscallBench `json:"syscall_unbuffered"`

	AggregateSlowdown           float64 `json:"aggregate_slowdown"`
	AggregateSlowdownUnbuffered float64 `json:"aggregate_slowdown_unbuffered"`
	BitwiseIdentical            int     `json:"bitwise_identical"`

	Templates templateBench `json:"templates"`
}

// runSyscallBench times `calls` intercepted time() calls end to end inside a
// fresh container and reads the tracer counters back out.
func runSyscallBench(calls int, disableBuf bool) (syscallBench, error) {
	reg := repro.NewRegistry()
	reg.Register("loop", func(p *repro.GuestProc) int {
		for i := 0; i < calls; i++ {
			p.Time()
		}
		return 0
	})
	img := repro.MinimalImage()
	img.AddFile("/bin/loop", 0o755, repro.MakeExe("loop", nil))
	c := repro.New(repro.Config{Image: img, HostSeed: 1, DisableSyscallBuf: disableBuf})
	start := time.Now()
	res := c.Run(reg, "/bin/loop", []string{"loop"}, nil)
	elapsed := float64(time.Since(start).Nanoseconds())
	if res.Err != nil {
		return syscallBench{}, res.Err
	}
	ns := elapsed / float64(calls)
	return syscallBench{
		Calls:       calls,
		NsPerOp:     ns,
		CallsPerSec: 1e9 / ns,
		Stops:       res.Tracer.Stops,
		Buffered:    res.Tracer.BufferedCalls,
		Flushes:     res.Tracer.Flushes,
	}, nil
}

// writeBenchJSON produces BENCH_<date>.json in the working directory. The
// aggregate slowdowns come from the buffering ablation over an n-package
// sample, so one file carries both the microbenchmark and the modeled
// macro numbers.
func writeBenchJSON(o *buildsim.Options, seed uint64, n int) error {
	const calls = 200_000
	rep := benchReport{Date: time.Now().Format("2006-01-02"), Seed: seed}
	var err error
	if rep.Buffered, err = runSyscallBench(calls, false); err != nil {
		return err
	}
	if rep.Unbuffered, err = runSyscallBench(calls, true); err != nil {
		return err
	}
	st := o.RunBufferStudy(debpkg.Universe(seed, n))
	rep.Packages = st.Packages
	rep.AggregateSlowdown = st.WithBuf
	rep.AggregateSlowdownUnbuffered = st.WithoutBuf
	rep.BitwiseIdentical = st.Identical
	ts := o.RunTemplateStudy(debpkg.Universe(seed, n), 0)
	rep.Templates = templateBench{
		Packages:       ts.Packages,
		RunsPerPackage: ts.Runs,
		Identical:      ts.Identical,
		SetupOnNs:      ts.SetupOnNs,
		SetupOffNs:     ts.SetupOffNs,
		SetupReduction: ts.SetupRatio,
		Hits:           ts.Hits,
		Misses:         ts.Misses,
		Evictions:      ts.Evictions,
		AvgForkNs:      ts.AvgForkNs,
		AvgColdSetupNs: ts.AvgColdSetupNs,
	}
	name := fmt.Sprintf("BENCH_%s.json", rep.Date)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(name, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%.0f ns/op buffered, %.0f ns/op unbuffered; slowdown %.2fx vs %.2fx; template setup %.1fx less)\n",
		name, rep.Buffered.NsPerOp, rep.Unbuffered.NsPerOp,
		rep.AggregateSlowdown, rep.AggregateSlowdownUnbuffered, rep.Templates.SetupReduction)
	return nil
}
