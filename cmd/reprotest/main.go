// Command reprotest runs the §6.1 build-twice protocol for one package and
// prints the verdicts: the native build under adversarial environment
// variation versus the DetTrace build, with diffoscope localizing whatever
// differs.
//
//	reprotest -pkg 7          # universe package #7
//	reprotest -llvm           # the §7.2 llvm package
//
// With -diagnose the tool instead double-builds the package with identical
// inputs and aligns the two flight-recorder streams, printing the first
// divergent event; -inject-entropy N perturbs the second run's N'th entropy
// draw to demonstrate the diagnoser localizing a seeded fault.
//
//	reprotest -pkg 7 -diagnose
//	reprotest -pkg 7 -diagnose -inject-entropy 3
//
// With -bisect the same seeded divergence is localized the time-travel way:
// both runs record every checkpoint seal, the seal chains are binary-searched
// by ring-prefix digest, and only the bracketing window is re-executed. The
// tool exits non-zero unless bisection lands on the exact event the linear
// diagnoser reports, within the O(log n) window-replay bound.
//
//	reprotest -pkg 7 -bisect -inject-entropy 3
//
// With -inject-crash N the tool instead runs the crash-recovery gate: build
// the package checkpointed and uninterrupted, crash a second run at action N
// (0 picks the midpoint), recover it from its last checkpoint, and exit
// non-zero unless the recovered build is bitwise-identical.
//
//	reprotest -pkg 7 -inject-crash 0
//
// With -nodes N the crash-recovery gate runs distributed: the package is
// built on an N-node farm whose fault plan kills worker -kill-node mid-build
// (0 auto-picks the node the job lands on), the job is stolen and recovered
// on another node from the freshest seal in the coordinator's shard store,
// and the tool exits non-zero unless the result is bitwise-identical to a
// single-node farm's.
//
//	reprotest -pkg 7 -nodes 3 -kill-node 0
//
// With -attest the package is built on a farm whose Byzantine fault plane
// seats -byzantine N simultaneous adversaries — a lying builder, an
// equivocating transparency-log replica, a signature corrupter, a
// co-signature withholder — and the tool exits non-zero unless every
// adversary is detected and quarantined, the admitted statement set and the
// build output are bitwise-unchanged, and the rebuild-free verifier confirms
// the honest artifact while refuting false claims.
//
//	reprotest -pkg 7 -attest -byzantine 2
//
// Multi-threaded (javac) builds run with copy-on-write thread workspaces by
// default; -workspaces=false serializes sibling threads instead. The ablation
// never changes a verdict or an output byte — only the modeled wall time.
//
//	reprotest -pkg 3 -workspaces=false
//
// With -patch FILE (or -patch PKG:FILE, which selects the universe package
// inline) the tool runs the incremental-rebuild gate: build the package
// checkpointed (sealing its derivation store), patch FILE in the source
// tree, rebuild by forking the freshest valid seal, and exit non-zero
// unless the rebuild is bitwise-identical to a cold build of the patched
// tree. Paths are relative to the package directory unless absolute.
//
//	reprotest -pkg 7 -patch src/unit001.c
//	reprotest -patch 7:src/unit001.c
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/buildsim"
	"repro/internal/debpkg"
)

func main() {
	var (
		seed      = flag.Uint64("seed", 1, "universe + environment seed")
		pkgN      = flag.Int("pkg", 0, "universe package index")
		llvm      = flag.Bool("llvm", false, "build the llvm package instead")
		diagnose  = flag.Bool("diagnose", false, "double-build with identical inputs and report the first divergent flight-recorder event")
		bisect    = flag.Bool("bisect", false, "localize the first divergent event by checkpoint bisection and verify it against the linear diagnoser")
		inject    = flag.Int("inject-entropy", 0, "with -diagnose or -bisect: perturb the second run's N'th entropy draw")
		crashAt   = flag.Int64("inject-crash", -1, "crash a checkpointed build at action N (0 = midpoint), recover it, and verify the bits")
		nodes     = flag.Int("nodes", 0, "run the crash-recovery gate on a distributed farm with N worker nodes")
		killNode  = flag.Int("kill-node", 0, "with -nodes: worker ordinal to kill mid-build (0 auto-picks the node the job lands on)")
		attest    = flag.Bool("attest", false, "run the Byzantine-robustness gate: attested farm build under seated adversaries")
		byzantine = flag.Int("byzantine", 2, "with -attest: number of simultaneous adversaries to seat (1-4)")
		wsFlag    = flag.Bool("workspaces", true, "thread workspaces for multi-threaded builds (false = serialized-thread ablation; never changes an output byte)")
		patch     = flag.String("patch", "", "incremental-rebuild gate: patch FILE (or PKG:FILE) in the source tree, rebuild from the derivation store, and verify the bits")
	)
	flag.Parse()

	// -patch PKG:FILE selects the universe package inline.
	if i := strings.IndexByte(*patch, ':'); i > 0 {
		if n, err := strconv.Atoi((*patch)[:i]); err == nil {
			*pkgN = n
			*patch = (*patch)[i+1:]
		}
	}

	var spec *debpkg.Spec
	if *llvm {
		spec = debpkg.LLVM()
	} else {
		specs := debpkg.Universe(*seed, *pkgN+1)
		if *pkgN >= len(specs) {
			fmt.Fprintf(os.Stderr, "reprotest: package %d out of range\n", *pkgN)
			os.Exit(2)
		}
		spec = specs[*pkgN]
	}

	fmt.Printf("package %s %s  (units=%d headers=%d weight=%d compiler=%s)\n",
		spec.Name, spec.Version, spec.Units, spec.Headers, spec.Weight, spec.Compiler)
	if len(spec.Directives) > 0 {
		fmt.Printf("irreproducibility sources: %v\n", spec.Directives)
	}
	if len(spec.PortDirectives) > 0 {
		fmt.Printf("machine-capturing sources: %v\n", spec.PortDirectives)
	}
	if spec.Unsup != debpkg.UnsupNone {
		fmt.Printf("uses unsupported feature: %s\n", spec.Unsup)
	}

	o := &buildsim.Options{Seed: *seed, NoWorkspaces: !*wsFlag}
	if *patch != "" {
		fmt.Println()
		report, ok := o.PatchRebuild(spec, *patch)
		fmt.Println(report)
		if !ok {
			os.Exit(1)
		}
		return
	}
	if *attest {
		fmt.Println()
		report, ok := o.ByzantineGate(spec, *byzantine)
		fmt.Println(report)
		if !ok {
			os.Exit(1)
		}
		return
	}
	if *nodes > 0 {
		fmt.Println()
		report, ok := o.FarmCrashRecovery(spec, *nodes, *killNode)
		fmt.Println(report)
		if !ok {
			os.Exit(1)
		}
		return
	}
	if *crashAt >= 0 {
		fmt.Println()
		report, ok := o.CrashRecovery(spec, *crashAt)
		fmt.Println(report)
		if !ok {
			os.Exit(1)
		}
		return
	}
	if *bisect {
		fmt.Println()
		report, ok := o.BisectDiagnose(spec, *inject)
		fmt.Println(report)
		if !ok {
			os.Exit(1)
		}
		return
	}
	if *diagnose {
		fmt.Println()
		fmt.Println(o.Diagnose(spec, *inject))
		return
	}
	out := o.BuildPackage(spec)
	fmt.Printf("\nbaseline (reprotest variations): %s", out.BL)
	if out.BLTime > 0 {
		fmt.Printf("  [%.1fs, %.0f syscalls/s]", float64(out.BLTime)/1e9, out.SyscallRate)
	}
	fmt.Println()
	if out.DT != "" {
		fmt.Printf("dettrace:                        %s", out.DT)
		if out.UnsupReason != "" {
			fmt.Printf("  (%s)", out.UnsupReason)
		}
		if out.Slowdown > 0 {
			fmt.Printf("  [%.1fs, %.2fx slowdown]", float64(out.DTTime)/1e9, out.Slowdown)
		}
		fmt.Println()
	}
	if out.BL == buildsim.Irreproducible && out.DT == buildsim.Reproducible {
		fmt.Println("\nDetTrace rendered an irreproducible package reproducible, automatically.")
	}
}
