// Command dettrace mirrors the artifact appendix's CLI: run a command inside
// a reproducible container.
//
//	dettrace [flags] <command> [args...]
//
// Programs come from the simulated toolchain registry (cc, make, tar,
// dpkg-buildpackage, date, ...); the filesystem starts from the built-in
// minimal image plus, optionally, a generated package tree.
//
//	$ dettrace date
//	Sun Aug  8 22:00:00 UTC 1993
//	$ dettrace --host-seed 999 --machine broadwell date
//	Sun Aug  8 22:00:00 UTC 1993        # same output on any host
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/debpkg"
	"repro/internal/machine"
)

func main() {
	var (
		seed       = flag.Uint64("seed", 0, "container PRNG seed (part of the container input)")
		hostSeed   = flag.Uint64("host-seed", 1, "simulated physical-run entropy (must not affect output)")
		epoch      = flag.Int64("epoch", 1_600_000_000, "host wall-clock epoch at boot (must not affect output)")
		mach       = flag.String("machine", "skylake", "host machine: skylake|broadwell|haswell|sandybridge")
		noSeccomp  = flag.Bool("no-seccomp", false, "disable seccomp-bpf selective interception (slower, same results)")
		debug      = flag.Int("debug", 0, "debug verbosity (>=1 traces every system call)")
		workingDir = flag.String("working-dir", "", "container working directory (default /build)")
		withPkg    = flag.Int("with-package", -1, "materialize universe package N under /build")
		showStats  = flag.Bool("stats", false, "print tracer statistics after the run")
		expSocks   = flag.Bool("experimental-sockets", false, "allow container-internal AF_UNIX sockets")
		expSigs    = flag.Bool("experimental-signals", false, "allow reproducible cross-process signals")
		fastVdso   = flag.Bool("fast-vdso", false, "answer vDSO timing calls logically without a stop")
		download   = flag.String("download", "", "declare a fetchable file: url=sha256hex=literal-content")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: dettrace [flags] command [args...]")
		flag.Usage()
		os.Exit(2)
	}

	profiles := map[string]func() *machine.Profile{
		"skylake":     machine.CloudLabC220G5,
		"broadwell":   machine.PortabilityBroadwell,
		"haswell":     machine.BioHaswell,
		"sandybridge": machine.LegacySandyBridge,
	}
	mk, ok := profiles[*mach]
	if !ok {
		fmt.Fprintf(os.Stderr, "dettrace: unknown machine %q\n", *mach)
		os.Exit(2)
	}

	img := repro.ToolchainImage()
	wd := *workingDir
	if *withPkg >= 0 {
		specs := debpkg.Universe(1, *withPkg+1)
		spec := specs[*withPkg]
		pkgdir := spec.Materialize(img, "/build")
		if wd == "" {
			wd = pkgdir
		}
		fmt.Fprintf(os.Stderr, "dettrace: materialized %s at %s\n", spec.Name, pkgdir)
	}

	cfg := repro.Config{
		Image:               img,
		Profile:             mk(),
		HostSeed:            *hostSeed,
		Epoch:               *epoch,
		PRNGSeed:            *seed,
		WorkingDir:          wd,
		DisableSeccomp:      *noSeccomp,
		ExperimentalSockets: *expSocks,
		ExperimentalSignals: *expSigs,
		FastVdso:            *fastVdso,
	}
	if *download != "" {
		parts := strings.SplitN(*download, "=", 3)
		if len(parts) != 3 {
			fmt.Fprintln(os.Stderr, "dettrace: --download wants url=sha256hex=content")
			os.Exit(2)
		}
		cfg.Downloads = map[string]repro.Download{
			parts[0]: {SHA256: parts[1], Data: []byte(parts[2])},
		}
	}
	if *debug >= 1 {
		cfg.Debug = func(f string, a ...any) { fmt.Fprintf(os.Stderr, "[dettrace] "+f+"\n", a...) }
	}

	reg := repro.NewRegistry()
	repro.RegisterToolchain(reg)

	argv := flag.Args()
	path := argv[0]
	if len(path) > 0 && path[0] != '/' {
		path = "/bin/" + path
	}
	c := repro.New(cfg)
	res := c.Run(reg, path, argv, []string{"PATH=/bin", "USER=root", "HOME=/root", "LC_ALL=C", "TZ=UTC"})

	os.Stdout.WriteString(res.Stdout)
	os.Stderr.WriteString(res.Stderr)
	if res.Err != nil {
		var ue *repro.UnsupportedError
		if errors.As(res.Err, &ue) {
			fmt.Fprintf(os.Stderr, "dettrace: container error: unsupported operation: %s\n", ue.Op)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dettrace: %v\n", res.Err)
		os.Exit(1)
	}
	if *showStats {
		fmt.Fprintf(os.Stderr, "--- dettrace stats ---\n")
		fmt.Fprintf(os.Stderr, "virtual wall time : %.3fs\n", float64(res.WallTime)/1e9)
		fmt.Fprintf(os.Stderr, "system calls      : %d\n", res.Stats.Syscalls)
		fmt.Fprintf(os.Stderr, "tracer stops      : %d\n", res.Tracer.Stops)
		fmt.Fprintf(os.Stderr, "memory reads      : %d\n", res.Tracer.MemReads)
		fmt.Fprintf(os.Stderr, "rdtsc intercepted : %d\n", res.Stats.RdtscTrapped)
	}
	os.Exit(res.ExitCode)
}
