package repro_test

// End-to-end integration scenario: a small CI pipeline — fetch a dependency,
// build a package with the toolchain, run its tests, archive the result —
// executed on three different simulated hosts, all through the public API.
// The pipeline's artifact must be bitwise identical everywhere, and the
// pipeline must actually be *doing* something nondeterministic (verified by
// the native control).

import (
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"testing"

	"repro"
)

var depPayload = []byte("LIBDEP-1.2 precompiled-blob\n")

func pipelineImage() *repro.Image {
	img := repro.ToolchainImage()
	pkg := "/build/ci-demo-2.0"
	img.AddDir(pkg, 0o755)
	img.AddDir(pkg+"/debian", 0o755)
	img.AddDir(pkg+"/src", 0o755)
	img.AddFile(pkg+"/debian/control", 0o644, []byte("Package: ci-demo\nVersion: 2.0\n"))
	img.AddFile(pkg+"/debian/rules", 0o755, []byte(
		"weight 1\nexport CCFACTOR=2\nstep configure\nstep make -j1\nstep test\nstep pack\nartifact config.h\n"))
	img.AddFile(pkg+"/configure.ac", 0o644, []byte("AC_INIT\n@embed-cores@\nAC_OUTPUT\n"))
	img.AddFile(pkg+"/Makefile", 0o644, []byte("compiler=cc\nsrcdir=src\nbuilddir=build\noutput=build/prog\n"))
	img.AddFile(pkg+"/src/a.c", 0o644, []byte(
		"@embed-timestamp@\n@embed-random@\n@embed-cpuinfo@\n@tests:120:2:1@\nint main(void){return 0;}\n"))
	img.AddFile(pkg+"/src/b.c", 0o644, []byte("@embed-buildpath@\n@embed-pid@\nint helper(void){return 1;}\n"))
	return img
}

// pipeline is the init program: wget the dependency, then drive the build.
func pipeline(p *repro.GuestProc) int {
	data, err := p.Fetch("https://deps.example.org/libdep.bin")
	if err != 0 {
		p.Eprintf("fetch failed: %s\n", err)
		return 3
	}
	if werr := p.WriteFile("src/dep.bin", data, 0o644); werr != 0 {
		return 4
	}
	if err := p.Exec("/bin/dpkg-buildpackage", []string{"dpkg-buildpackage", "-b"},
		[]string{"PATH=/bin", "USER=root", "HOME=/root", "LC_ALL=C", "TZ=UTC"}); err != 0 {
		return 127
	}
	return 127
}

func runPipeline(t *testing.T, prof *repro.MachineProfile, hostSeed uint64, epoch int64, ncpu int) *repro.Result {
	t.Helper()
	sum := sha256.Sum256(depPayload)
	reg := repro.NewRegistry()
	repro.RegisterToolchain(reg)
	reg.Register("pipeline", pipeline)
	img := pipelineImage()
	img.AddFile("/bin/pipeline", 0o755, repro.MakeExe("pipeline", nil))
	c := repro.New(repro.Config{
		Image:      img,
		Profile:    prof,
		HostSeed:   hostSeed,
		Epoch:      epoch,
		NumCPU:     ncpu,
		PRNGSeed:   1234,
		WorkingDir: "/build/ci-demo-2.0",
		Downloads: map[string]repro.Download{
			"https://deps.example.org/libdep.bin": {Data: depPayload, SHA256: hex.EncodeToString(sum[:])},
		},
	})
	res := c.Run(reg, "/bin/pipeline", []string{"pipeline"}, []string{"PATH=/bin", "USER=root", "HOME=/root"})
	if res.Err != nil {
		t.Fatalf("pipeline failed on %v: %v\nstderr: %s", prof, res.Err, res.Stderr)
	}
	if res.ExitCode != 0 {
		t.Fatalf("pipeline exit %d on %v\nstderr: %s", res.ExitCode, prof, res.Stderr)
	}
	return res
}

func TestIntegrationPipelineAcrossThreeHosts(t *testing.T) {
	a := runPipeline(t, repro.CloudLabC220G5(), 0x1, 1_520_000_000, 0)
	b := runPipeline(t, repro.PortabilityBroadwell(), 0xFFFF, 1_560_000_000, 8)
	c := runPipeline(t, repro.BioHaswell(), 0xABCDEF, 1_590_000_000, 16)

	deb := func(r *repro.Result) string {
		e, ok := r.FS.Entries["/build/out/ci-demo_2.0_amd64.deb"]
		if !ok {
			t.Fatal("no artifact")
		}
		return string(e.Data)
	}
	if deb(a) != deb(b) || deb(b) != deb(c) {
		t.Fatal("artifacts differ across hosts")
	}
	// The artifact really carries determinized values from every source.
	for _, marker := range []string{"ts:", "rand:", "cpuinfo:", "path:", "pid:", "meta:tests:120"} {
		if !strings.Contains(deb(a), marker) {
			t.Errorf("artifact missing embedded %q", marker)
		}
	}
	// Build log captured the test run.
	log, ok := a.FS.Entries["/build/ci-demo-2.0/build-step.log"]
	if !ok || !strings.Contains(string(log.Data), "Testing: 120 tests") {
		t.Errorf("test step did not run: %v", ok)
	}
}

func TestIntegrationPipelineDependsOnDeclaredInputs(t *testing.T) {
	a := runPipeline(t, repro.CloudLabC220G5(), 0x1, 1_520_000_000, 0)
	// Changing the PRNG seed — a declared input — changes the artifact.
	sum := sha256.Sum256(depPayload)
	reg := repro.NewRegistry()
	repro.RegisterToolchain(reg)
	reg.Register("pipeline", pipeline)
	img := pipelineImage()
	img.AddFile("/bin/pipeline", 0o755, repro.MakeExe("pipeline", nil))
	c := repro.New(repro.Config{
		Image: img, Profile: repro.CloudLabC220G5(), HostSeed: 0x1,
		Epoch: 1_520_000_000, PRNGSeed: 5678, WorkingDir: "/build/ci-demo-2.0",
		Downloads: map[string]repro.Download{
			"https://deps.example.org/libdep.bin": {Data: depPayload, SHA256: hex.EncodeToString(sum[:])},
		},
	})
	res := c.Run(reg, "/bin/pipeline", []string{"pipeline"}, []string{"PATH=/bin", "USER=root", "HOME=/root"})
	if res.Err != nil || res.ExitCode != 0 {
		t.Fatalf("run: %v %d", res.Err, res.ExitCode)
	}
	ea := a.FS.Entries["/build/out/ci-demo_2.0_amd64.deb"]
	eb := res.FS.Entries["/build/out/ci-demo_2.0_amd64.deb"]
	if string(ea.Data) == string(eb.Data) {
		t.Errorf("PRNG seed is a declared input; artifacts should differ")
	}
}
