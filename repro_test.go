package repro_test

import (
	"strings"
	"testing"

	"repro"
)

// TestFacadeQuickstart is the README example, verified.
func TestFacadeQuickstart(t *testing.T) {
	reg := repro.NewRegistry()
	reg.Register("hello", func(p *repro.GuestProc) int {
		p.Printf("the time is %d\n", p.Time())
		return 0
	})
	run := func(hostSeed uint64, prof *repro.MachineProfile) string {
		img := repro.MinimalImage()
		img.AddFile("/bin/hello", 0o755, repro.MakeExe("hello", nil))
		c := repro.New(repro.Config{Image: img, Profile: prof, HostSeed: hostSeed, Epoch: 1_700_000_000})
		res := c.Run(reg, "/bin/hello", []string{"hello"}, nil)
		if res.Err != nil {
			t.Fatalf("run: %v", res.Err)
		}
		return res.Stdout
	}
	a := run(42, repro.CloudLabC220G5())
	b := run(1<<60, repro.PortabilityBroadwell())
	if a != b {
		t.Errorf("facade runs differ: %q vs %q", a, b)
	}
	if !strings.Contains(a, "744847200") {
		t.Errorf("logical time missing: %q", a)
	}
}

func TestFacadeToolchainBuild(t *testing.T) {
	img := repro.ToolchainImage()
	img.AddDir("/build/p-1", 0o755)
	img.AddDir("/build/p-1/debian", 0o755)
	img.AddDir("/build/p-1/src", 0o755)
	img.AddFile("/build/p-1/debian/control", 0o644, []byte("Package: p\nVersion: 1\n"))
	img.AddFile("/build/p-1/debian/rules", 0o755, []byte("weight 1\nstep make -j1\nstep pack\n"))
	img.AddFile("/build/p-1/Makefile", 0o644, []byte("compiler=cc\nsrcdir=src\nbuilddir=build\noutput=build/prog\n"))
	img.AddFile("/build/p-1/src/u.c", 0o644, []byte("@embed-timestamp@\nint main(void){return 0;}\n"))

	reg := repro.NewRegistry()
	repro.RegisterToolchain(reg)
	c := repro.New(repro.Config{Image: img, HostSeed: 3, Epoch: 1_600_000_000, WorkingDir: "/build/p-1"})
	res := c.Run(reg, "/bin/dpkg-buildpackage", []string{"dpkg-buildpackage", "-b"},
		[]string{"PATH=/bin", "USER=root", "HOME=/root"})
	if res.Err != nil || res.ExitCode != 0 {
		t.Fatalf("build failed: err=%v code=%d stderr=%s", res.Err, res.ExitCode, res.Stderr)
	}
	if _, ok := res.FS.Entries["/build/out/p_1_amd64.deb"]; !ok {
		t.Errorf("no .deb in output tree")
	}
}

func TestFacadeUnsupportedDetection(t *testing.T) {
	reg := repro.NewRegistry()
	reg.Register("netted", func(p *repro.GuestProc) int {
		p.Socket()
		return 0
	})
	img := repro.MinimalImage()
	img.AddFile("/bin/netted", 0o755, repro.MakeExe("netted", nil))
	c := repro.New(repro.Config{Image: img, HostSeed: 1})
	res := c.Run(reg, "/bin/netted", []string{"netted"}, nil)
	if op, ok := res.Unsupported(); !ok || op != "socket" {
		t.Errorf("Unsupported() = %q, %v", op, ok)
	}
}

func TestFacadeImageHelpers(t *testing.T) {
	a := repro.NewImage()
	a.AddFile("/x", 0o644, []byte("1"))
	b := repro.NewImage()
	b.AddFile("/x", 0o644, []byte("2"))
	if repro.HashImage(a) == repro.HashImage(b) {
		t.Errorf("hashes of different trees coincide")
	}
	diffs := repro.CompareImages(a, b)
	if len(diffs) != 1 || !strings.Contains(diffs[0], "/x") {
		t.Errorf("CompareImages = %v", diffs)
	}
}
