// Package repro is DetTrace for Go: a reproducible container abstraction in
// which all computation is a pure function of the container's inputs — the
// initial filesystem image, the entry command and environment, and a PRNG
// seed. It reproduces the system described in "Reproducible Containers"
// (ASPLOS 2020) on top of a deterministic user-space Linux simulation.
//
// # Quick start
//
//	reg := repro.NewRegistry()
//	reg.Register("hello", func(p *repro.GuestProc) int {
//	    p.Printf("the time is %d\n", p.Time())
//	    return 0
//	})
//	img := repro.MinimalImage()
//	img.AddFile("/bin/hello", 0o755, repro.MakeExe("hello", nil))
//
//	c := repro.New(repro.Config{Image: img, HostSeed: 42})
//	res := c.Run(reg, "/bin/hello", []string{"hello"}, nil)
//	fmt.Print(res.Stdout) // identical for every HostSeed, every machine
//
// The package is a facade over the internal packages; see DESIGN.md for the
// system inventory and EXPERIMENTS.md for the paper reproduction results.
package repro

import (
	"repro/internal/baseimg"
	"repro/internal/core"
	"repro/internal/diffoscope"
	"repro/internal/fs"
	"repro/internal/guest"
	"repro/internal/hashdeep"
	"repro/internal/machine"
	"repro/internal/workload"
)

// Core container types.
type (
	// Container is a reproducible container: it encapsulates a process tree
	// and forces every observable result to be a pure function of the
	// container's inputs.
	Container = core.Container
	// Config describes a container: the [input] fields are the
	// reproducibility contract; the [host] fields must not affect output.
	Config = core.Config
	// Result captures a finished run: exit code, output streams, final
	// filesystem state and tracer statistics.
	Result = core.Result
	// UnsupportedError is the reproducible container-level error raised for
	// operations DetTrace does not support (sockets, cross-process signals,
	// busy-waiting, exotic system calls).
	UnsupportedError = core.UnsupportedError
	// Download declares one checksummed external file a container may fetch.
	Download = core.Download
	// Template is a prepared container — image populated and frozen, seccomp
	// table compiled — from which NewContainer forks containers bitwise
	// identical to cold-built ones at a fraction of the setup cost.
	Template = core.Template
	// HostRun names the physical run a forked container executes as: the
	// [host] Config fields a template deliberately does not bake in.
	HostRun = core.HostRun
)

// Guest programming types.
type (
	// Registry maps program names to guest programs; execve resolves
	// container binaries against it.
	Registry = guest.Registry
	// Program is a guest executable body.
	Program = guest.Program
	// GuestProc is a guest program's process handle: typed system call
	// wrappers over the container ABI.
	GuestProc = guest.Proc
)

// Filesystem and machine types.
type (
	// Image is a portable description of an initial filesystem state.
	Image = fs.Image
	// MachineProfile describes the host hardware/OS a container runs on;
	// its details must never leak into container output.
	MachineProfile = machine.Profile
)

// New assembles a container from its configuration.
func New(cfg Config) *Container { return core.New(cfg) }

// NewTemplate prepares a reusable container template: the expensive,
// run-independent half of New done once, so each Template.NewContainer
// fork pays only per-run setup.
func NewTemplate(cfg Config) *Template { return core.NewTemplate(cfg) }

// NewRegistry returns an empty guest program registry.
func NewRegistry() *Registry { return guest.NewRegistry() }

// NewImage returns an empty filesystem image.
func NewImage() *Image { return fs.NewImage() }

// MinimalImage returns the smallest useful container image: directory
// skeleton plus /dev nodes.
func MinimalImage() *Image { return baseimg.Minimal() }

// ToolchainImage returns MinimalImage plus the simulated build toolchain
// under /bin (cc, ld, make, tar, dpkg-buildpackage, ...).
func ToolchainImage() *Image { return baseimg.WithBinaries(workload.Names...) }

// RegisterToolchain installs the simulated build toolchain programs into a
// registry; pair it with ToolchainImage.
func RegisterToolchain(reg *Registry) { workload.Register(reg) }

// MakeExe builds an executable file image resolving to a registered program.
func MakeExe(program string, payload []byte) []byte {
	return guest.MakeExe(program, payload)
}

// Machine profiles from the paper's evaluation (§6).
var (
	// CloudLabC220G5 is the package-build machine: Skylake, Linux 4.15.
	CloudLabC220G5 = machine.CloudLabC220G5
	// BioHaswell is the bioinformatics/ML machine: Haswell, Linux 4.18.
	BioHaswell = machine.BioHaswell
	// PortabilityBroadwell is the second §7.3 portability machine.
	PortabilityBroadwell = machine.PortabilityBroadwell
	// LegacySandyBridge lacks cpuid faulting and the combined seccomp stop:
	// DetTrace still runs, with a smaller portability guarantee (§5.8).
	LegacySandyBridge = machine.LegacySandyBridge
)

// HashImage computes a hashdeep-style content report over an image; two runs
// are reproducible iff their reports are Equal.
func HashImage(im *Image) string { return hashdeep.Hash(im).Total() }

// CompareImages bitwise-compares two filesystem states the way diffoscope
// adjudicates reproducibility, returning human-readable differences.
func CompareImages(a, b *Image) []string {
	var out []string
	for _, d := range diffoscope.Compare(a, b) {
		out = append(out, d.String())
	}
	return out
}
