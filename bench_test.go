package repro_test

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation, each reporting the headline numbers as custom metrics so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation at sample scale. The paper-scale run is
// `go run ./cmd/benchtab -all -n 0`.

import (
	"testing"

	"repro"
	"repro/internal/bio"
	"repro/internal/buildsim"
	"repro/internal/debpkg"
	"repro/internal/mlsim"
)

// benchSample is the per-iteration package count for build benches: small
// enough for -bench=., proportioned like the full universe.
const benchSample = 150

func buildReport(b *testing.B, n int) *buildsim.Report {
	b.Helper()
	o := &buildsim.Options{Seed: 1}
	specs := debpkg.Universe(1, n)
	outs := o.BuildAll(specs, nil)
	return buildsim.Aggregate(outs)
}

// BenchmarkTable1 regenerates the build-status transition table.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := buildReport(b, benchSample)
		cells := r.Cells
		b.ReportMetric(pct(cells["irreproducible"]["reproducible"], r.BLIrrepro), "%rescued")
		b.ReportMetric(pct(cells["reproducible"]["reproducible"], r.BLRepro), "%kept")
		b.ReportMetric(float64(r.BLFail), "bl-fail")
	}
}

// BenchmarkTable2 reports the per-package tracer event averages.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := buildReport(b, benchSample)
		b.ReportMetric(r.Table2.Syscalls, "syscalls/pkg")
		b.ReportMetric(r.Table2.Rdtsc, "rdtsc/pkg")
		b.ReportMetric(r.Table2.UrandomOpens, "urandom/pkg")
		b.ReportMetric(r.Table2.ReadRetries, "readretry/pkg")
	}
}

// BenchmarkFig5 reports the slowdown-vs-rate relationship.
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := buildReport(b, benchSample)
		b.ReportMetric(r.AggregateSlowdown, "slowdown(x)")
		b.ReportMetric(float64(len(r.Fig5)), "points")
	}
}

// BenchmarkFig6 reports the bioinformatics DT-vs-native ratios at 16 procs.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells := bio.RunFig6(uint64(11 + i))
		get := func(tool bio.Tool, native bool) float64 {
			for _, c := range cells {
				if c.Tool == tool && c.Procs == 16 && c.Native == native {
					return c.Speedup
				}
			}
			return 0
		}
		b.ReportMetric(get(bio.Clustal, true)/get(bio.Clustal, false), "clustal-ovh(x)")
		b.ReportMetric(get(bio.Hmmer, true)/get(bio.Hmmer, false), "hmmer-ovh(x)")
		b.ReportMetric(get(bio.Raxml, true)/get(bio.Raxml, false), "raxml-ovh(x)")
	}
}

// BenchmarkTensorFlow reports the §7.6 slowdowns.
func BenchmarkTensorFlow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs := mlsim.RunStudy(uint64(31 + i))
		b.ReportMetric(rs[0].VsParallel, "alexnet-vs-par(x)")
		b.ReportMetric(rs[0].VsSerial, "alexnet-vs-ser(x)")
		b.ReportMetric(rs[1].VsParallel, "cifar10-vs-par(x)")
		b.ReportMetric(rs[1].VsSerial, "cifar10-vs-ser(x)")
	}
}

// BenchmarkRRComparison reports the §7.1.3 rr study.
func BenchmarkRRComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st := (&buildsim.Options{Seed: 5}).RunRRStudy()
		b.ReportMetric(float64(st.Crashed), "crashed")
		b.ReportMetric(st.AvgOverhead, "rr-overhead(x)")
	}
}

// BenchmarkPortability reports the §7.3 study (sampled).
func BenchmarkPortability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st := (&buildsim.Options{Seed: 6}).RunPortability(25, false)
		b.ReportMetric(float64(st.Identical)/float64(st.Packages), "identical-frac")
	}
}

// BenchmarkStockBaseline reports the §6.1 numbers.
func BenchmarkStockBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st := (&buildsim.Options{Seed: 8}).RunStock(debpkg.Universe(8, benchSample))
		b.ReportMetric(float64(st.ReproNoStrip), "repro-nostrip")
		b.ReportMetric(pct(st.ReproWithStrip, st.Build), "%repro-stripped")
	}
}

// BenchmarkLLVMSelfHost reports the §7.2 correctness check.
func BenchmarkLLVMSelfHost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st := (&buildsim.Options{Seed: 7}).RunLLVM()
		if st.Match {
			b.ReportMetric(1, "outcomes-match")
		} else {
			b.ReportMetric(0, "outcomes-match")
		}
	}
}

// BenchmarkContainerSyscall measures simulator throughput: intercepted
// syscalls per second of real time.
func BenchmarkContainerSyscall(b *testing.B) {
	reg := repro.NewRegistry()
	calls := b.N
	reg.Register("loop", func(p *repro.GuestProc) int {
		for i := 0; i < calls; i++ {
			p.Time()
		}
		return 0
	})
	img := repro.MinimalImage()
	img.AddFile("/bin/loop", 0o755, repro.MakeExe("loop", nil))
	b.ResetTimer()
	c := repro.New(repro.Config{Image: img, HostSeed: 1})
	res := c.Run(reg, "/bin/loop", []string{"loop"}, nil)
	if res.Err != nil {
		b.Fatal(res.Err)
	}
}

// BenchmarkContainerBoot measures end-to-end boot+exec+exit latency.
func BenchmarkContainerBoot(b *testing.B) {
	reg := repro.NewRegistry()
	reg.Register("noop", func(p *repro.GuestProc) int { return 0 })
	for i := 0; i < b.N; i++ {
		img := repro.MinimalImage()
		img.AddFile("/bin/noop", 0o755, repro.MakeExe("noop", nil))
		c := repro.New(repro.Config{Image: img, HostSeed: uint64(i)})
		if res := c.Run(reg, "/bin/noop", []string{"noop"}, nil); res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}

func pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}
