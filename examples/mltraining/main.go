// ML training: a threaded training loop whose minibatch sampling draws OS
// randomness. The loss trace differs on every native run (§7.6); inside
// DetTrace it is a pure function of the container seed, so experiments can
// be audited and re-run exactly.
//
//	go run ./examples/mltraining
package main

import (
	"fmt"
	"strings"

	"repro"
)

// train runs a tiny 2-thread training loop writing a loss trace.
func train(p *repro.GuestProc) int {
	const steps = 10
	seed := make([]byte, 8)
	p.GetRandom(seed) // weight init + shuffle seed
	var s uint64
	for _, b := range seed {
		s = s<<8 | uint64(b)
	}

	const doneWord = 0x40
	p.CloneThread(func(w *repro.GuestProc) int {
		// Gradient worker: contributes half of each step.
		for w.Load(doneWord) == 0 {
			w.Compute(5_000_000)
			w.FutexWait(doneWord, 0)
		}
		return 0
	})

	for step := 1; step <= steps; step++ {
		p.Compute(10_000_000)
		h := s + uint64(step)*0x9e3779b97f4a7c15
		h ^= h >> 31
		loss := 1000/step + int(h%97)
		p.AppendFile("/data/loss.csv", []byte(fmt.Sprintf("%d,%d\n", step, loss)), 0o644)
	}
	p.Store(doneWord, 1)
	p.FutexWake(doneWord, 4)
	return 0
}

func run(label string, hostSeed uint64, prngSeed uint64) string {
	reg := repro.NewRegistry()
	reg.Register("train", train)
	img := repro.MinimalImage()
	img.AddDir("/data", 0o755)
	img.AddFile("/bin/train", 0o755, repro.MakeExe("train", nil))
	c := repro.New(repro.Config{
		Image: img, Profile: repro.BioHaswell(),
		HostSeed: hostSeed, Epoch: 1_550_000_000, PRNGSeed: prngSeed,
	})
	res := c.Run(reg, "/bin/train", []string{"train"}, nil)
	if res.Err != nil {
		panic(res.Err)
	}
	trace := string(res.FS.Entries["/data/loss.csv"].Data)
	fmt.Printf("--- %s ---\n%s", label, indent(trace))
	return trace
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n  ") + "\n"
}

func main() {
	fmt.Println("training twice under DetTrace on different hosts:")
	a := run("host A", 0x1111, 7)
	b := run("host B", 0x2222, 7)
	if a == b {
		fmt.Println("=> loss traces identical: the experiment is auditable and exactly re-runnable.")
	} else {
		fmt.Println("=> MISMATCH!")
	}
}
