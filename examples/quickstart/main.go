// Quickstart: run a deliberately nondeterministic program inside a
// reproducible container on two completely different "machines" and watch
// the output come out bitwise-identical.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro"
)

// messy samples every classic source of irreproducibility: wall-clock time,
// OS randomness, PIDs, machine identity, ASLR, directory order, inode
// numbers and the cycle counter.
func messy(p *repro.GuestProc) int {
	p.Printf("time      : %d\n", p.Time())
	buf := make([]byte, 8)
	p.GetRandom(buf)
	p.Printf("random    : %x\n", buf)
	p.Printf("pid       : %d\n", p.Getpid())
	p.Printf("host      : %s (%s)\n", p.Uname().Nodename, p.Uname().Release)
	p.Printf("cpus      : %d\n", p.Sysinfo().NumCPU)
	p.Printf("heap base : %#x\n", p.Mmap(4096))
	p.Printf("tsc       : %d\n", p.Rdtsc())
	for _, name := range []string{"gamma", "alpha", "beta"} {
		p.WriteFile("/tmp/"+name, []byte(name), 0o644)
	}
	ents, _ := p.ReadDir("/tmp")
	for _, e := range ents {
		st, _ := p.Stat("/tmp/" + e.Name)
		p.Printf("file      : %-6s ino=%d mtime=%d\n", e.Name, st.Ino, st.Mtime.Sec)
	}
	return 0
}

func main() {
	reg := repro.NewRegistry()
	reg.Register("messy", messy)

	run := func(label string, cfg repro.Config) string {
		img := repro.MinimalImage()
		img.AddFile("/bin/messy", 0o755, repro.MakeExe("messy", nil))
		cfg.Image = img
		res := repro.New(cfg).Run(reg, "/bin/messy", []string{"messy"}, nil)
		if res.Err != nil {
			panic(res.Err)
		}
		fmt.Printf("--- %s ---\n%s\n", label, res.Stdout)
		return res.Stdout + "|" + repro.HashImage(res.FS)
	}

	// Two wildly different hosts: different microarchitecture, kernel,
	// entropy, wall clock and core count.
	a := run("Skylake, seed 7, epoch 2018", repro.Config{
		Profile: repro.CloudLabC220G5(), HostSeed: 7, Epoch: 1_520_000_000,
	})
	b := run("Broadwell, seed 999999, epoch 2019", repro.Config{
		Profile: repro.PortabilityBroadwell(), HostSeed: 999_999, Epoch: 1_550_000_000, NumCPU: 8,
	})

	if a == b {
		fmt.Println("=> bitwise identical output and filesystem state on both hosts.")
	} else {
		fmt.Println("=> MISMATCH — reproducibility violated!")
	}
}
