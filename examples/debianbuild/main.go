// Debian-style reproducible build: a small hand-written package whose
// compiler embeds timestamps, build paths and randomness into the binary.
// Built twice natively the .debs differ; built twice under DetTrace — on
// different hosts — they are bitwise identical.
//
//	go run ./examples/debianbuild
package main

import (
	"fmt"

	"repro"
)

// packageImage returns a toolchain image with our demo package unpacked at
// /build/hello-1.0.
func packageImage() (*repro.Image, string) {
	img := repro.ToolchainImage()
	pkg := "/build/hello-1.0"
	img.AddDir(pkg, 0o755)
	img.AddDir(pkg+"/debian", 0o755)
	img.AddDir(pkg+"/src", 0o755)
	img.AddDir(pkg+"/include", 0o755)
	img.AddFile(pkg+"/debian/control", 0o644, []byte(
		"Package: hello\nVersion: 1.0\nArchitecture: amd64\nMaintainer: You <you@example.org>\nDescription: reproducible hello\n"))
	img.AddFile(pkg+"/debian/rules", 0o755, []byte(
		"weight 1\nexport CCFACTOR=2\nstep configure\nstep make -j1\nstep pack\n"))
	img.AddFile(pkg+"/configure.ac", 0o644, []byte("AC_INIT\nAC_OUTPUT\n"))
	img.AddFile(pkg+"/Makefile", 0o644, []byte("compiler=cc\nsrcdir=src\nbuilddir=build\noutput=build/prog\n"))
	img.AddFile(pkg+"/include/h000.h", 0o644, []byte("#define H000 1\n"))
	// The classic irreproducibility trifecta, straight in the source.
	img.AddFile(pkg+"/src/unit000.c", 0o644, []byte(
		"#include <h000.h>\n@embed-timestamp@\n@embed-buildpath@\n@embed-random@\nint main(void) { return 0; }\n"))
	return img, pkg
}

func build(hostSeed uint64, epoch int64, prof *repro.MachineProfile) []byte {
	img, pkg := packageImage()
	reg := repro.NewRegistry()
	repro.RegisterToolchain(reg)
	c := repro.New(repro.Config{
		Image: img, Profile: prof, HostSeed: hostSeed, Epoch: epoch,
		WorkingDir: pkg, PRNGSeed: 42,
	})
	res := c.Run(reg, "/bin/dpkg-buildpackage",
		[]string{"dpkg-buildpackage", "-b"},
		[]string{"PATH=/bin", "USER=root", "HOME=/root", "LC_ALL=C", "TZ=UTC"})
	if res.Err != nil {
		panic(res.Err)
	}
	if res.ExitCode != 0 {
		panic("build failed:\n" + res.Stderr)
	}
	deb, ok := res.FS.Entries["/build/out/hello_1.0_amd64.deb"]
	if !ok {
		panic("no .deb produced")
	}
	fmt.Printf("  built hello_1.0_amd64.deb (%d bytes) on %s\n", len(deb.Data), prof)
	return deb.Data
}

func main() {
	fmt.Println("building the same package twice under DetTrace, on different hosts:")
	a := build(0xAAAA, 1_520_000_000, repro.CloudLabC220G5())
	b := build(0xBBBB, 1_560_000_000, repro.PortabilityBroadwell())

	if string(a) == string(b) {
		fmt.Println("=> .deb files are bitwise identical despite embedded time/path/randomness.")
	} else {
		fmt.Println("=> .deb files DIFFER — reproducibility violated!")
	}
	fmt.Println("\nfirst bytes of the artifact:")
	n := 240
	if len(a) < n {
		n = len(a)
	}
	fmt.Println(string(a[:n]))
}
