// Bioinformatics workflow: a process-parallel analysis whose workers seed
// heuristics from /dev/urandom — natively irreproducible run to run, stable
// under DetTrace, with the overhead profile of §7.5.
//
//	go run ./examples/bioinformatics
package main

import (
	"fmt"

	"repro"
	"repro/internal/abi"
)

// analysis forks N workers that each score a share of sequences using a
// randomly-seeded heuristic, writing results under /data/out.
func analysis(p *repro.GuestProc) int {
	const workers, tasks = 4, 32
	p.MkdirAll("/data/out", 0o755)
	for w := 0; w < workers; w++ {
		worker := w
		p.Fork(func(c *repro.GuestProc) int {
			// Heuristic seed: the irreproducibility.
			seed := make([]byte, 4)
			if fd, err := c.Open("/dev/urandom", abi.ORdonly, 0); err == abi.OK {
				c.Read(fd, seed)
				c.Close(fd)
			}
			out := fmt.Sprintf("/data/out/worker%02d.scores", worker)
			for t := worker; t < tasks; t += workers {
				c.Compute(40_000_000) // 40ms of alignment math per sequence
				score := int(seed[0])*1000 + t*7
				c.AppendFile(out, []byte(fmt.Sprintf("seq%03d score=%d\n", t, score)), 0o644)
			}
			return 0
		})
	}
	for w := 0; w < workers; w++ {
		p.Wait()
	}
	p.Printf("analysis complete: %d sequences, %d workers\n", tasks, workers)
	return 0
}

func run(label string, cfg repro.Config, dettrace bool) (string, int64) {
	reg := repro.NewRegistry()
	reg.Register("analysis", analysis)
	img := repro.MinimalImage()
	img.AddDir("/data", 0o755)
	img.AddFile("/bin/analysis", 0o755, repro.MakeExe("analysis", nil))
	cfg.Image = img
	if cfg.Profile == nil {
		cfg.Profile = repro.BioHaswell()
	}
	c := repro.New(cfg)
	res := c.Run(reg, "/bin/analysis", []string{"analysis"}, nil)
	if res.Err != nil {
		panic(res.Err)
	}
	hash := repro.HashImage(res.FS)
	fmt.Printf("%-34s hash=%s...  wall=%dms\n", label, hash[:16], res.WallTime/1e6)
	return hash, res.WallTime
}

func main() {
	fmt.Println("two DetTrace runs on different hosts (must match):")
	h1, _ := run("  dettrace / Haswell / seed 1", repro.Config{HostSeed: 1, Epoch: 1_540_000_000, PRNGSeed: 9}, true)
	h2, _ := run("  dettrace / Broadwell / seed 2", repro.Config{HostSeed: 2, Epoch: 1_590_000_000, PRNGSeed: 9, Profile: repro.PortabilityBroadwell()}, true)
	if h1 == h2 {
		fmt.Println("=> identical output trees: the workflow is reproducible.")
	} else {
		fmt.Println("=> MISMATCH!")
	}
	fmt.Println()
	fmt.Println("changing the container's randomness seed (a declared input) changes results:")
	h3, _ := run("  dettrace / Haswell / PRNG seed 10", repro.Config{HostSeed: 1, Epoch: 1_540_000_000, PRNGSeed: 10}, true)
	if h3 != h1 {
		fmt.Println("=> different, as requested — \"true randomness\" enters only via the seed.")
	}
}
