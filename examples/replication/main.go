// Replication: the paper's distributed-systems motivation (§2). Three
// replicas of a bank state machine — on three different machines, booted at
// different times, with different entropy — apply the same command log and
// reach bitwise-identical state with zero coordination. A crashed node is
// recovered by re-executing the log on brand-new hardware.
//
//	go run ./examples/replication
package main

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/replica"
)

func main() {
	log := []string{
		"deposit alice 1000",
		"deposit bob 500",
		"transfer alice bob 250",
		"interest",
		"withdraw bob 100",
	}
	cluster := &replica.Cluster{Hosts: replica.DefaultHosts(), Seed: 7}

	fmt.Println("naive replication (no DetTrace): every node applies the same log ...")
	for _, r := range cluster.ExecuteNative(log) {
		fmt.Printf("  %-8s state=%s\n", r.Host, r.StateHash[:16])
	}
	if !replica.Agree(cluster.ExecuteNative(log)) {
		fmt.Println("  => replicas DIVERGED: audit timestamps, txn ids and time-based")
		fmt.Println("     interest make state a function of the host, not the log.")
	}

	fmt.Println("\nreproducible replication (DetTrace):")
	results := cluster.Execute(log)
	for _, r := range results {
		fmt.Printf("  %-8s state=%s\n", r.Host, r.StateHash[:16])
	}
	if replica.Agree(results) {
		fmt.Println("  => all replicas bitwise identical, no consensus round needed.")
	}

	fmt.Println("\nnode-b crashes; recovering onto decade-old hardware ...")
	fresh := replica.Host{
		Name: "node-d", Profile: machine.LegacySandyBridge(),
		Seed: 0xDEAD, Epoch: 1_600_000_000, NumCPU: 4,
	}
	// One healthy replica's checkpointed run is the whole cluster's
	// reference; the replacement restores from its last checkpoint and
	// re-executes only the log suffix.
	ref := cluster.Reference(log)
	got, ok := cluster.Recover(log, fresh, ref)
	fmt.Printf("  %-8s state=%s rejoined=%v\n", got.Host, got.StateHash[:16], ok)
}
