// Package rr implements the record-and-replay baseline of §7.1.3, modelled
// on Mozilla rr 5.2.0: a ptrace supervisor that records every
// nondeterministic input (system call results, read data, rdtsc values)
// into an opaque trace so the execution can be replayed later.
//
// Like the real tool it serializes tracee execution, pays more per system
// call than DetTrace does (it must persist data, not just rewrite it), and
// crashes on the ioctl requests it does not model — the known bug that
// killed 46 of the paper's 81 sample builds.
//
// The comparison the paper draws: rr's trace makes one recorded execution
// repeatable, but it does not make the *build* reproducible — the recording
// is an opaque binary blob, not an auditable source-to-artifact function.
package rr

import (
	"errors"
	"fmt"

	"repro/internal/abi"
	"repro/internal/cpu"
	"repro/internal/kernel"
	"repro/internal/sched"
	"repro/internal/tracer"
)

// ErrUnsupportedIoctl is rr's known crash (§7.1.3).
var ErrUnsupportedIoctl = errors.New("rr: unhandled ioctl request (known bug)")

// Event is one recorded nondeterministic input.
type Event struct {
	Kind string // "syscall", "rdtsc", "rdrand"
	Nr   abi.Sysno
	Ret  int64
	Data []byte // read results, random bytes, dirent blobs
}

// Trace is the recording: an ordered event log plus its storage footprint.
type Trace struct {
	Events []Event
	Bytes  int64
}

func (tr *Trace) add(e Event) {
	tr.Events = append(tr.Events, e)
	tr.Bytes += int64(len(e.Data)) + 24
}

// Recorder is the recording supervisor; it implements kernel.Policy.
type Recorder struct {
	sched *sched.Scheduler
	sess  *tracer.Session
	Trace *Trace
	k     *kernel.Kernel
}

// NewRecorder returns a recording policy.
func NewRecorder(singleStop bool) *Recorder {
	r := &Recorder{
		sched: sched.New(),
		sess:  tracer.NewSession(singleStop),
		Trace: &Trace{},
	}
	// Recording costs more than rewriting: every handler also persists the
	// event. Calibrated so rr's average build overhead lands near the
	// paper's 5.8× (vs DetTrace's 3.49×).
	r.sess.Costs.HandlerLight = r.sess.Costs.HandlerLight * 3 / 2
	r.sess.Costs.HandlerMedium = r.sess.Costs.HandlerMedium * 5 / 4
	r.sess.Costs.HandlerHeavy = r.sess.Costs.HandlerHeavy * 9 / 8
	return r
}

// Attach lets the harness hand the kernel over after construction.
func (r *Recorder) Attach(k *kernel.Kernel) { r.k = k }

var _ kernel.Policy = (*Recorder)(nil)

// Name implements kernel.Policy.
func (r *Recorder) Name() string { return "rr-record" }

// ThreadsSerialized: rr runs tracees one at a time.
func (r *Recorder) ThreadsSerialized() bool { return true }

// PickNext uses the same reproducible queue discipline as DetTrace; rr's
// scheduler is likewise deterministic-by-construction during replay.
func (r *Recorder) PickNext(k *kernel.Kernel, pending []*kernel.Thread) *kernel.Thread {
	t := r.sched.Pick(k, pending)
	if r.sched.Err != nil {
		k.Abort(r.sched.Err)
		r.sched.Err = nil
		return nil
	}
	return t
}

// SyscallEnter intercepts everything; ioctl is the crash.
func (r *Recorder) SyscallEnter(t *kernel.Thread, sc *abi.Syscall) kernel.EnterResult {
	if sc.Num == abi.SysIoctl {
		return kernel.EnterResult{Disposition: kernel.DispAbort, AbortErr: ErrUnsupportedIoctl}
	}
	w := t.Proc.Weight
	er := kernel.EnterResult{Disposition: kernel.DispExecute, Serialize: true}
	if sc.Attempts == 0 {
		er.LocalCost = r.sess.InterceptCost(w)
		er.PostCost = r.sess.HandlerCost(sc.Num, w)
	} else {
		er.LocalCost = r.sess.Costs.Stop * w
	}
	return er
}

// SyscallExit records the nondeterministic result.
func (r *Recorder) SyscallExit(t *kernel.Thread, sc *abi.Syscall) kernel.ExitResult {
	var xr kernel.ExitResult
	switch sc.Num {
	case abi.SysRead, abi.SysGetrandom, abi.SysRecvfrom:
		var data []byte
		if sc.Ret > 0 && sc.Buf != nil {
			n := sc.Ret
			if n > int64(len(sc.Buf)) {
				n = int64(len(sc.Buf))
			}
			data = append([]byte(nil), sc.Buf[:n]...)
		}
		r.Trace.add(Event{Kind: "syscall", Nr: sc.Num, Ret: sc.Ret, Data: data})
		xr.PostCost += r.sess.WriteMem(t.Proc.Weight, 1)
	case abi.SysTime, abi.SysGettimeofday, abi.SysClockGettime, abi.SysGetdents,
		abi.SysStat, abi.SysLstat, abi.SysFstat, abi.SysGetpid, abi.SysWait4,
		abi.SysFork, abi.SysClone, abi.SysUname, abi.SysSysinfo:
		r.Trace.add(Event{Kind: "syscall", Nr: sc.Num, Ret: sc.Ret, Data: encodeObj(sc)})
	default:
		r.Trace.add(Event{Kind: "syscall", Nr: sc.Num, Ret: sc.Ret})
	}
	r.sched.ReleaseToken(t)
	return xr
}

// WouldBlock parks blocking calls like DetTrace does.
func (r *Recorder) WouldBlock(t *kernel.Thread, sc *abi.Syscall) bool {
	r.sched.ReleaseToken(t)
	return true
}

// Instr records trapped instruction results but passes hardware values
// through — rr preserves behaviour, it does not normalize it.
func (r *Recorder) Instr(t *kernel.Thread, req cpu.Request) (cpu.Result, bool, int64) {
	switch req.Instr {
	case cpu.RDTSC, cpu.RDTSCP:
		res := r.k.HW.Execute(req)
		r.Trace.add(Event{Kind: "rdtsc", Ret: int64(res.Value)})
		return res, true, (r.sess.Costs.Stop + r.sess.Costs.HandlerLight) * t.Proc.Weight
	default:
		return cpu.Result{}, false, 0
	}
}

// OnSpawn / OnExit / OnExec mirror the scheduler bookkeeping.
func (r *Recorder) OnSpawn(parent, child *kernel.Thread) {
	r.sched.Register(child)
	r.sched.ReleaseToken(parent)
}

// OnExit implements kernel.Policy.
func (r *Recorder) OnExit(t *kernel.Thread) { r.sched.Unregister(t) }

// OnExec arms rdtsc trapping like rr does.
func (r *Recorder) OnExec(t *kernel.Thread) {
	t.Proc.Trap.TSCTrap = true
}

func encodeObj(sc *abi.Syscall) []byte {
	if sc.Obj == nil {
		return nil
	}
	return []byte(fmt.Sprintf("%+v", sc.Obj))
}

// Replayer feeds a recorded trace back: every recorded syscall is emulated
// with its recorded result instead of executing. It demonstrates that the
// recording suffices to reproduce an execution's inputs — rr's core
// guarantee.
type Replayer struct {
	Recorder
	cursor int
	// Divergence is set when the replayed execution issues a different
	// syscall sequence than the recording.
	Divergence error
}

// NewReplayer wraps a trace for replay.
func NewReplayer(tr *Trace) *Replayer {
	rp := &Replayer{}
	rp.sched = sched.New()
	rp.sess = tracer.NewSession(true)
	rp.Trace = tr
	return rp
}

// Name implements kernel.Policy.
func (rp *Replayer) Name() string { return "rr-replay" }

// SyscallEnter replays the recorded result for every replayable call.
func (rp *Replayer) SyscallEnter(t *kernel.Thread, sc *abi.Syscall) kernel.EnterResult {
	// Calls with purely local effects still execute (the replay keeps its
	// own filesystem warm); nondeterministic inputs come from the trace.
	switch sc.Num {
	case abi.SysTime, abi.SysGettimeofday, abi.SysClockGettime,
		abi.SysGetrandom, abi.SysGetpid:
		ev, ok := rp.next(sc.Num)
		if !ok {
			return kernel.EnterResult{Disposition: kernel.DispAbort, AbortErr: rp.Divergence}
		}
		sc.Ret = ev.Ret
		if sc.Num == abi.SysGetrandom && sc.Buf != nil {
			copy(sc.Buf, ev.Data)
		}
		return kernel.EnterResult{Disposition: kernel.DispEmulate, Serialize: true}
	}
	return rp.Recorder.SyscallEnter(t, sc)
}

// next scans forward for the next recorded event of the given syscall.
func (rp *Replayer) next(nr abi.Sysno) (Event, bool) {
	for rp.cursor < len(rp.Trace.Events) {
		ev := rp.Trace.Events[rp.cursor]
		rp.cursor++
		if ev.Kind == "syscall" && ev.Nr == nr {
			return ev, true
		}
	}
	rp.Divergence = fmt.Errorf("rr: replay diverged: no recorded %v left", nr)
	return Event{}, false
}
