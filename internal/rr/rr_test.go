package rr_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/abi"
	"repro/internal/baseimg"
	"repro/internal/guest"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/rr"
)

// record runs prog under the recorder with the given host seed.
func record(t *testing.T, seed uint64, prog guest.Program) (*kernel.Kernel, *rr.Trace, error) {
	t.Helper()
	reg := guest.NewRegistry()
	reg.Register("main", prog)
	rec := rr.NewRecorder(true)
	k := kernel.New(kernel.Config{
		Profile: machine.CloudLabC220G5(), Seed: seed, Epoch: 1_500_000_000,
		Image: baseimg.Minimal(), Policy: rec, Resolver: reg.Resolver(),
	})
	rec.Attach(k)
	img := &kernel.ExecImage{Path: "/bin/main", Argv: []string{"main"}}
	k.Start(reg.Bind(prog, img), img.Argv, nil)
	return k, rec.Trace, k.Run()
}

// nondetProg observes time and randomness — the inputs rr must capture.
func nondetProg(p *guest.Proc) int {
	buf := make([]byte, 8)
	p.GetRandom(buf)
	p.Printf("t=%d r=%x pid=%d\n", p.Time(), buf, p.Getpid())
	return 0
}

func TestRecordCapturesNondeterminism(t *testing.T) {
	k, trace, err := record(t, 1, nondetProg)
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	if len(trace.Events) == 0 || trace.Bytes == 0 {
		t.Fatalf("empty trace")
	}
	kinds := map[abi.Sysno]bool{}
	for _, ev := range trace.Events {
		kinds[ev.Nr] = true
	}
	for _, nr := range []abi.Sysno{abi.SysTime, abi.SysGetrandom, abi.SysGetpid} {
		if !kinds[nr] {
			t.Errorf("trace missing %v", nr)
		}
	}
	if k.Console.Stdout() == "" {
		t.Errorf("no output recorded")
	}
}

func TestRecordDoesNotDeterminize(t *testing.T) {
	a, _, _ := record(t, 1, nondetProg)
	b, _, _ := record(t, 2, nondetProg)
	if a.Console.Stdout() == b.Console.Stdout() {
		t.Errorf("rr is not supposed to normalize behaviour, only record it")
	}
}

func TestReplayReproducesRecording(t *testing.T) {
	orig, trace, err := record(t, 7, nondetProg)
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	// Replay on a different host: recorded inputs are fed back.
	reg := guest.NewRegistry()
	reg.Register("main", nondetProg)
	rp := rr.NewReplayer(trace)
	k := kernel.New(kernel.Config{
		Profile: machine.PortabilityBroadwell(), Seed: 999, Epoch: 1_999_999_999,
		Image: baseimg.Minimal(), Policy: rp, Resolver: reg.Resolver(),
	})
	rp.Attach(k)
	img := &kernel.ExecImage{Path: "/bin/main", Argv: []string{"main"}}
	k.Start(reg.Bind(nondetProg, img), img.Argv, nil)
	if err := k.Run(); err != nil {
		t.Fatalf("replay: %v", err)
	}
	// time and randomness must replay exactly; the pid field is process
	// bookkeeping the replayer re-executes, so compare the captured prefix.
	o, r := orig.Console.Stdout(), k.Console.Stdout()
	oPrefix := o[:strings.Index(o, "pid=")]
	rPrefix := r[:strings.Index(r, "pid=")]
	if oPrefix != rPrefix {
		t.Errorf("replay diverged:\n%q\nvs\n%q", o, r)
	}
}

func TestIoctlCrash(t *testing.T) {
	_, _, err := record(t, 3, func(p *guest.Proc) int {
		p.T.Syscall(&abi.Syscall{Num: abi.SysIoctl, Arg: [6]int64{1, 0x5413}})
		return 0
	})
	var ab *kernel.AbortError
	if !errors.As(err, &ab) || !errors.Is(ab.Err, rr.ErrUnsupportedIoctl) {
		t.Fatalf("expected the known ioctl crash, got %v", err)
	}
}

func TestRecorderSlowerThanNative(t *testing.T) {
	prog := func(p *guest.Proc) int {
		for i := 0; i < 200; i++ {
			p.WriteFile("/tmp/f", []byte("x"), 0o644)
			p.Stat("/tmp/f")
		}
		return 0
	}
	// Native run.
	reg := guest.NewRegistry()
	reg.Register("main", prog)
	k := kernel.New(kernel.Config{
		Profile: machine.CloudLabC220G5(), Seed: 4, Epoch: 1_500_000_000,
		Image: baseimg.Minimal(), Resolver: reg.Resolver(),
	})
	img := &kernel.ExecImage{Path: "/bin/main", Argv: []string{"main"}}
	k.Start(reg.Bind(prog, img), img.Argv, nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	native := k.Now()
	rk, _, err := record(t, 4, prog)
	if err != nil {
		t.Fatal(err)
	}
	if rk.Now() <= native*2 {
		t.Errorf("recording overhead too low: native %d vs rr %d", native, rk.Now())
	}
}
