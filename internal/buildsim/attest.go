// The Byzantine-robustness driver: the attestation chain exercised end to
// end against seated adversaries, with determinism as the oracle that makes
// lying detectable at all. Because every honest builder computes the
// bit-identical statement for a job, a compromised builder's wrong claim is
// always a nameable minority — the gates below pin that the admitted artifact
// set never moves under any adversarial schedule, that every seated liar is
// identified and quarantined, and that the rebuild-free verifier answers
// from the transparency log at a vanishing fraction of rebuild cost.
package buildsim

import (
	"fmt"
	"reflect"
	"time"

	"repro/internal/attest"
	"repro/internal/debpkg"
	"repro/internal/reprotest"
	"repro/internal/stats"
)

// AttestVerifier returns a rebuild-free verifier over the most recent
// distributed run's keyring and transparency-log replicas (nil before any
// attested run). The verifier answers "is this artifact the honest build of
// this source?" from the log alone — no source tree, no rebuild.
func (o *Options) AttestVerifier() *attest.Verifier {
	o.farmMu.Lock()
	cl := o.lastFarm
	o.farmMu.Unlock()
	if cl == nil || cl.Keyring() == nil {
		return nil
	}
	servers := cl.LogServers()
	clients := make([]attest.LogClient, len(servers))
	for i, s := range servers {
		clients[i] = s
	}
	return attest.NewVerifier(cl.Keyring(), clients...)
}

// AdmittedSet returns the admitted statements of the most recent distributed
// run, sorted by job (nil before any attested run) — the value the
// equivalence gates compare across fault schedules and farm shapes.
func (o *Options) AdmittedSet() []attest.Statement {
	o.farmMu.Lock()
	defer o.farmMu.Unlock()
	if o.lastFarm == nil {
		return nil
	}
	return o.lastFarm.AdmittedSet()
}

// byzantineSeats returns the worker ordinals a plan seats as adversaries
// (the equivocating log server is not a worker and is caught by the
// verifier, not the quarantine).
func byzantineSeats(p reprotest.FaultPlan, nodes int) []int {
	var seats []int
	for _, ord := range []int{p.LieOutput, p.CorruptAttestation, p.WithholdCosign} {
		if ord > 0 && ord <= nodes {
			seats = append(seats, ord)
		}
	}
	return seats
}

// quarantinedAll reports whether every seated adversary appears in the
// quarantine list.
func quarantinedAll(seats, quarantined []int) bool {
	q := make(map[int]bool, len(quarantined))
	for _, ord := range quarantined {
		q[ord] = true
	}
	for _, ord := range seats {
		if !q[ord] {
			return false
		}
	}
	return true
}

// ByzantineGate is the single-package adversarial gate behind
// `reprotest -attest -byzantine N`: build the package on an honest attested
// farm for reference, then on a farm seating N simultaneous adversaries — a
// lying builder, an equivocating log server, a signature corrupter, a
// co-signature withholder, in that order — and check that (1) the build
// output and the admitted statement set are bitwise-unchanged, (2) every
// seated Byzantine worker is identified and quarantined, (3) the rebuild-free
// verifier confirms the admitted artifact despite the equivocating replica
// (naming its forged blocks), and (4) a false claim is refuted, never
// verified. The report is human-readable; ok is the machine verdict.
func (o *Options) ByzantineGate(spec *debpkg.Spec, n int) (report string, ok bool) {
	if n <= 0 {
		n = 2
	}
	if n > 4 {
		n = 4
	}
	nodes := 2*n + 1
	var plan reprotest.FaultPlan
	// Seat adversaries on distinct ordinals; the equivocator is log server 1
	// so the verifier meets the forged view first.
	seatings := []func(*reprotest.FaultPlan){
		func(p *reprotest.FaultPlan) { p.LieOutput = 1 },
		func(p *reprotest.FaultPlan) { p.EquivocateEpoch = 1 },
		func(p *reprotest.FaultPlan) { p.CorruptAttestation = 2 },
		func(p *reprotest.FaultPlan) { p.WithholdCosign = 3 },
	}
	for _, seat := range seatings[:n] {
		seat(&plan)
	}
	specs := []*debpkg.Spec{spec}
	honest := &Options{Seed: o.Seed, Checkpoints: true, Distributed: true,
		Nodes: nodes, PlacementSeed: o.PlacementSeed, Attest: true}
	want := honest.BuildAll(specs, nil)
	wantAdmitted := honest.AdmittedSet()

	faulted := &Options{Seed: o.Seed, Checkpoints: true, Distributed: true,
		Nodes: nodes, PlacementSeed: o.PlacementSeed, Attest: true,
		FarmPlan: plan}
	got := faulted.BuildAll(specs, nil)
	gotAdmitted := faulted.AdmittedSet()

	outsOK := reflect.DeepEqual(got, want)
	admitOK := reflect.DeepEqual(gotAdmitted, wantAdmitted) && len(gotAdmitted) > 0
	seats := byzantineSeats(plan, nodes)
	quarantined := faulted.quarantinedOrds()
	caughtOK := quarantinedAll(seats, quarantined)

	v := faulted.AttestVerifier()
	verifyOK, refuteOK := true, true
	equivOK := plan.EquivocateEpoch == 0
	for _, st := range gotAdmitted {
		vd := v.Verify(st.Subject, st.Job, st.Output)
		if !vd.OK || vd.Refuted {
			verifyOK = false
		}
		if fd := v.Verify(st.Subject, st.Job, st.Output^1); fd.OK {
			refuteOK = false
		}
	}
	if plan.EquivocateEpoch > 0 && v.BadBlocks > 0 {
		equivOK = true
	}
	ok = outsOK && admitOK && caughtOK && verifyOK && refuteOK && equivOK

	st, _ := faulted.FarmStats()
	verdict := func(b bool, yes, no string) string {
		if b {
			return yes
		}
		return no
	}
	report = fmt.Sprintf(
		"farm: %d nodes, %d adversaries seated (plan %+v)\n"+
			"build output %s; admitted set (%d statements) %s\n"+
			"detection: %d lies, %d corrupt attestations, %d withheld co-signatures; "+
			"quarantined %v (seated workers %v) — %s\n"+
			"admission: %d attestations, %d rebuilds, %d retries\n"+
			"verifier: admitted artifacts %s, false claims %s, "+
			"%d forged blocks rejected (%s)",
		nodes, n, plan,
		verdict(outsOK, "bitwise-identical to the honest farm", "DIVERGED"),
		len(gotAdmitted),
		verdict(admitOK, "unchanged", "CHANGED"),
		st.LiesDetected, st.CorruptAttestations, st.CosignsWithheld,
		quarantined, seats,
		verdict(caughtOK, "all seated adversaries named", "ADVERSARY ESCAPED"),
		st.Attestations, st.Rebuilds, st.AdmitRetries,
		verdict(verifyOK, "verified", "NOT VERIFIED"),
		verdict(refuteOK, "refuted", "FALSELY VERIFIED"),
		v.BadBlocks,
		verdict(equivOK, "equivocation caught", "EQUIVOCATION MISSED"))
	return report, ok
}

// quarantinedOrds returns the most recent run's quarantined ordinals.
func (o *Options) quarantinedOrds() []int {
	o.farmMu.Lock()
	defer o.farmMu.Unlock()
	if o.lastFarm == nil {
		return nil
	}
	return o.lastFarm.Quarantined()
}

// AttestStudy is the X20 Byzantine-robustness experiment: the same package
// set built under adversarial schedules x node counts x slot counts, every
// cell's admitted statement set and build output compared bitwise against
// the honest single-node reference. IdenticalOuts and IdenticalAdmitted must
// both equal Cells and LiesAdmitted must be zero (the oracle); Caught must
// equal ByzantineCells (every adversary named); VerifyCost must stay under
// one percent of build cost (the rebuild-free claim).
type AttestStudy struct {
	Packages int   // packages per cell
	Cells    int   // farm shapes x fault schedules run
	Nodes    []int // node counts swept
	Slots    []int // per-node slot counts swept

	IdenticalOuts     int // cells whose build output matched the reference
	IdenticalAdmitted int // cells whose admitted statement set matched
	LiesAdmitted      int // admitted statements carrying a wrong output (must be 0)

	ByzantineCells int // cells whose schedule seated at least one adversary
	Caught         int // of those, cells where every seated worker was quarantined

	Attestations        int64 // signed statements collected
	Rebuilds            int64 // independent re-executions solicited
	AdmitRetries        int64 // admission rounds that widened the quorum pool
	LiesDetected        int64 // valid-signature wrong-output attestations out-voted
	CorruptAttestations int64 // invalid-signature attestations demoted
	CosignsWithheld     int64 // withheld attestations and co-signatures
	Quarantines         int64 // workers named and evicted
	EpochsSealed        int64 // transparency-log epochs sealed and co-signed

	Verified    int   // admitted artifacts the log-only verifier confirmed
	Refuted     int   // false claims the verifier rejected with evidence
	FalsePos    int   // false claims verified (must be 0)
	ForgedSeen  int   // forged blocks rejected by collective-signature checks
	BuildNs     int64 // host ns spent building (all cells)
	VerifyNs    int64 // host ns spent in rebuild-free verification (all cells)
	VerifyHops  int   // skipchain hops walked across all verifications
	VerifyCalls int   // Verify invocations issued
}

// VerifyCostPct is verification cost as a percentage of build cost.
func (st *AttestStudy) VerifyCostPct() float64 {
	if st.BuildNs == 0 {
		return 0
	}
	return 100 * float64(st.VerifyNs) / float64(st.BuildNs)
}

// Pass is the machine verdict over the study's pinned claims.
func (st *AttestStudy) Pass() bool {
	return st.IdenticalOuts == st.Cells && st.IdenticalAdmitted == st.Cells &&
		st.LiesAdmitted == 0 && st.FalsePos == 0 &&
		st.Caught == st.ByzantineCells && st.VerifyCostPct() <= 1.0
}

// String renders the study summary.
func (st *AttestStudy) String() string {
	hops := 0.0
	if st.VerifyCalls > 0 {
		hops = float64(st.VerifyHops) / float64(st.VerifyCalls)
	}
	return fmt.Sprintf(
		"packages: %d x %d cells (nodes %v x slots %v x fault schedules)\n"+
			"admitted set unchanged: %s; build output unchanged: %s; lies admitted: %d\n"+
			"adversaries: %d Byzantine cells, all seated workers named in %s; "+
			"%d lies out-voted, %d corrupt signatures demoted, %d withheld, %d quarantined\n"+
			"chain: %d attestations, %d rebuilds, %d admission retries, %d epochs sealed\n"+
			"verifier: %d artifacts confirmed, %d false claims refuted, %d falsely verified, "+
			"%d forged blocks rejected, %.1f skip hops/query\n"+
			"verification cost: %.3f%% of build cost (%.1f ms vs %.1f s)",
		st.Packages, st.Cells, st.Nodes, st.Slots,
		stats.Pct(st.IdenticalAdmitted, st.Cells),
		stats.Pct(st.IdenticalOuts, st.Cells), st.LiesAdmitted,
		st.ByzantineCells, stats.Pct(st.Caught, st.ByzantineCells),
		st.LiesDetected, st.CorruptAttestations, st.CosignsWithheld, st.Quarantines,
		st.Attestations, st.Rebuilds, st.AdmitRetries, st.EpochsSealed,
		st.Verified, st.Refuted, st.FalsePos, st.ForgedSeen, hops,
		st.VerifyCostPct(), float64(st.VerifyNs)/1e6, float64(st.BuildNs)/1e9)
}

// attestPlans is the X20 fault-schedule sweep for a farm of the given size:
// the honest schedule, a lone liar, a corrupter colluding with a withholder,
// an equivocating log replica shielding a liar, and a seed-derived random
// seating. Ordinals beyond the farm deterministically dodge, the same way
// short builds dodge crash points.
func attestPlans(seed uint64, nodes int) []reprotest.FaultPlan {
	return []reprotest.FaultPlan{
		{},
		{LieOutput: 1},
		{CorruptAttestation: 1, WithholdCosign: 2},
		{EquivocateEpoch: 1, LieOutput: 2},
		reprotest.ByzantinePlanFor(seed, nodes),
	}
}

// RunAttestStudy sweeps adversarial schedules over farm shapes: node counts
// {1,3,8} x per-node slots {1,4,16} x the five X20 fault schedules, every
// cell attested and checkpointed, compared against the honest single-node
// single-slot reference. Each cell's admitted artifacts are then confirmed
// through the rebuild-free verifier — and one false claim per cell is pushed
// through it, which must come back refuted.
func (o *Options) RunAttestStudy(specs []*debpkg.Spec) *AttestStudy {
	st := &AttestStudy{Packages: len(specs),
		Nodes: []int{1, 3, 8}, Slots: []int{1, 4, 16}}

	ref := &Options{Seed: o.Seed, Checkpoints: true, Distributed: true,
		Nodes: 1, NodeSlots: 1, PlacementSeed: o.PlacementSeed, Attest: true}
	refOuts := ref.BuildAll(specs, nil)
	refAdmitted := ref.AdmittedSet()
	refOutput := make(map[uint64]uint64, len(refAdmitted))
	for _, s := range refAdmitted {
		refOutput[s.Job] = s.Output
	}

	for _, nodes := range st.Nodes {
		for _, slots := range st.Slots {
			for _, plan := range attestPlans(o.Seed, nodes) {
				cell := &Options{Seed: o.Seed, Checkpoints: true,
					Distributed: true, Nodes: nodes, NodeSlots: slots,
					PlacementSeed: o.PlacementSeed, Attest: true,
					FarmPlan: plan}
				start := time.Now()
				got := cell.BuildAll(specs, nil)
				st.BuildNs += time.Since(start).Nanoseconds()
				st.Cells++
				if reflect.DeepEqual(got, refOuts) {
					st.IdenticalOuts++
				}
				admitted := cell.AdmittedSet()
				if reflect.DeepEqual(admitted, refAdmitted) {
					st.IdenticalAdmitted++
				}
				for _, s := range admitted {
					if want, okRef := refOutput[s.Job]; okRef && s.Output != want {
						st.LiesAdmitted++
					}
				}
				seats := byzantineSeats(plan, nodes)
				if plan.Byzantine() {
					st.ByzantineCells++
					if quarantinedAll(seats, cell.quarantinedOrds()) {
						st.Caught++
					}
				}
				fst, _ := cell.FarmStats()
				st.Attestations += fst.Attestations
				st.Rebuilds += fst.Rebuilds
				st.AdmitRetries += fst.AdmitRetries
				st.LiesDetected += fst.LiesDetected
				st.CorruptAttestations += fst.CorruptAttestations
				st.CosignsWithheld += fst.CosignsWithheld
				st.Quarantines += fst.Quarantines
				st.EpochsSealed += fst.EpochsSealed

				v := cell.AttestVerifier()
				vstart := time.Now()
				for _, s := range admitted {
					vd := v.Verify(s.Subject, s.Job, s.Output)
					st.VerifyCalls++
					st.VerifyHops += vd.Hops
					if vd.OK && !vd.Refuted {
						st.Verified++
					}
				}
				if len(admitted) > 0 {
					s := admitted[0]
					fd := v.Verify(s.Subject, s.Job, s.Output^1)
					st.VerifyCalls++
					if fd.OK {
						st.FalsePos++
					} else if fd.Refuted {
						st.Refuted++
					}
				}
				st.VerifyNs += time.Since(vstart).Nanoseconds()
				st.ForgedSeen += v.BadBlocks
			}
		}
	}
	return st
}
