// The four side studies of the evaluation: the §6.1 stock-Wheezy baseline
// (E10), the §7.1.3 Mozilla-rr comparison (E3), the §7.3 cross-machine
// portability study with its dir-size ablation (E5), and the §7.2 LLVM
// self-host correctness check (E4).
package buildsim

import (
	"bytes"
	"errors"
	"fmt"
	"strings"

	"repro/internal/abi"
	"repro/internal/baseimg"
	"repro/internal/core"
	"repro/internal/debpkg"
	"repro/internal/diffoscope"
	"repro/internal/fs"
	"repro/internal/guest"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/reprotest"
	"repro/internal/rr"
	"repro/internal/stats"
	"repro/internal/stripnd"
)

// StockStudy is the §6.1 stock toolchain result: double builds with no
// DetTrace, with and without strip-nondeterminism.
type StockStudy struct {
	Packages int
	Build    int // both builds completed
	Fail     int
	Timeout  int

	ReproNoStrip   int // bitwise-identical raw .debs (paper: 0)
	ReproWithStrip int // identical after strip-nondeterminism (paper: 24.1%)

	// SampleDiffs holds diffoscope's localization of the first few packages
	// that stay irreproducible even after stripping.
	SampleDiffs []string
}

// String renders the study like §6.1 reports it.
func (st *StockStudy) String() string {
	return fmt.Sprintf(
		"packages: %d   built: %s   failed: %s   timed out: %s\n"+
			"reproducible, stock toolchain:          %s\n"+
			"reproducible with strip-nondeterminism: %s",
		st.Packages,
		stats.Pct(st.Build, st.Packages), stats.Pct(st.Fail, st.Packages), stats.Pct(st.Timeout, st.Packages),
		stats.Pct(st.ReproNoStrip, st.Build),
		stats.Pct(st.ReproWithStrip, st.Build))
}

// RunStock runs the baseline-only double-build protocol over specs.
func (o *Options) RunStock(specs []*debpkg.Spec) *StockStudy {
	type stockOut struct {
		built, timeout     bool
		noStrip, withStrip bool
		diff               string
	}
	outs := make([]stockOut, len(specs))
	o.forEach(len(specs), func(l obs.Local, i int) {
		spec := specs[i]
		v1, v2 := reprotest.Pair(pkgSeed(o.Seed, spec))
		b1 := o.buildNative(l, spec, v1, BLDeadline)
		if v := b1.verdict(); v != "" {
			outs[i].timeout = v == Timeout
			return
		}
		b2 := o.buildNative(l, spec, v2, BLDeadline)
		if v := b2.verdict(); v != "" {
			outs[i].timeout = v == Timeout
			return
		}
		outs[i].built = true
		outs[i].noStrip = bytes.Equal(b1.deb, b2.deb)
		s1, s2 := stripnd.Strip(b1.deb), stripnd.Strip(b2.deb)
		outs[i].withStrip = bytes.Equal(s1, s2)
		if !outs[i].withStrip {
			outs[i].diff = firstDebDiff(spec, s1, s2)
		}
	})
	st := &StockStudy{Packages: len(specs)}
	for _, so := range outs {
		switch {
		case so.built:
			st.Build++
		case so.timeout:
			st.Timeout++
		default:
			st.Fail++
		}
		if so.noStrip {
			st.ReproNoStrip++
		}
		if so.withStrip {
			st.ReproWithStrip++
		}
		if so.diff != "" && len(st.SampleDiffs) < 3 {
			st.SampleDiffs = append(st.SampleDiffs, so.diff)
		}
	}
	return st
}

// firstDebDiff localizes the first difference between two .debs.
func firstDebDiff(spec *debpkg.Spec, a, b []byte) string {
	ia, ib := fs.NewImage(), fs.NewImage()
	name := "/" + spec.Name + ".deb"
	ia.AddFile(name, 0o644, a)
	ib.AddFile(name, 0o644, b)
	diffs := diffoscope.Compare(ia, ib)
	if len(diffs) == 0 {
		return ""
	}
	return spec.Name + ": " + diffs[0].String()
}

// RRStudy is the §7.1.3 comparison: recording the modern 81-package sample
// with an rr-style single-threaded recorder.
type RRStudy struct {
	Packages int
	Crashed  int // aborted on rr's unhandled-ioctl bug
	Recorded int

	AvgOverhead float64 // recording time vs native, over recorded packages
	MinOverhead float64
	MaxOverhead float64
	AvgTraceKB  float64
}

// String renders the study like §7.1.3 reports it.
func (st *RRStudy) String() string {
	return fmt.Sprintf(
		"modern packages: %d; rr crashed (unhandled ioctl): %d; recorded: %d\n"+
			"recording overhead vs native: avg %.1fx (range %.1f-%.1fx); avg trace %.0f KiB",
		st.Packages, st.Crashed, st.Recorded,
		st.AvgOverhead, st.MinOverhead, st.MaxOverhead, st.AvgTraceKB)
}

// RunRRStudy records the ModernSample under the rr policy and compares
// against native builds.
func (o *Options) RunRRStudy() *RRStudy {
	specs := debpkg.ModernSample(o.Seed)
	type rrOut struct {
		crashed  bool
		recorded bool
		overhead float64
		traceKB  float64
	}
	outs := make([]rrOut, len(specs))
	o.forEach(len(specs), func(l obs.Local, i int) {
		spec := specs[i]
		v1, _ := reprotest.Pair(pkgSeed(o.Seed, spec))
		nat := o.buildNative(l, spec, v1, BLDeadline)
		if nat.verdict() != "" {
			return
		}
		wall, traceBytes, crashed := o.buildRR(l, spec, v1)
		if crashed {
			outs[i].crashed = true
			return
		}
		if wall <= 0 || nat.wall <= 0 {
			return
		}
		outs[i].recorded = true
		outs[i].overhead = float64(wall) / float64(nat.wall)
		outs[i].traceKB = float64(traceBytes) / 1024
	})
	st := &RRStudy{Packages: len(specs)}
	var ovs, kbs []float64
	for _, ro := range outs {
		switch {
		case ro.crashed:
			st.Crashed++
		case ro.recorded:
			st.Recorded++
			ovs = append(ovs, ro.overhead)
			kbs = append(kbs, ro.traceKB)
		}
	}
	if len(ovs) > 0 {
		st.AvgOverhead = stats.Mean(ovs)
		st.MinOverhead, st.MaxOverhead = stats.MinMax(ovs)
		st.AvgTraceKB = stats.Mean(kbs)
	}
	return st
}

// buildRR records one package build under the rr-style policy, booted —
// like every policy — from the shared image snapshot unless the template
// ablation is on. rr's known crash — an unhandled tty ioctl — surfaces as
// ErrUnsupportedIoctl.
func (o *Options) buildRR(l obs.Local, spec *debpkg.Spec, v reprotest.Variation) (wall, traceBytes int64, crashed bool) {
	img, pkgdir, imgHash := o.pkgImage(l, spec, v.BuildRoot)
	profile := machine.CloudLabC220G5()
	rec := rr.NewRecorder(profile.SeccompSingleStop)
	var k *kernel.Kernel
	if o.DisableTemplates {
		k = kernel.New(kernel.Config{
			Profile:  profile,
			Seed:     v.HostSeed,
			Epoch:    v.Epoch,
			NumCPU:   v.NumCPU,
			Image:    img,
			Resolver: registry().Resolver(),
			Deadline: DTDeadline,
			Policy:   rec,
		})
	} else {
		k = o.snapshot(l, imgHash, img).Boot(kernel.BootConfig{
			Seed:     v.HostSeed,
			Epoch:    v.Epoch,
			NumCPU:   v.NumCPU,
			Deadline: DTDeadline,
			Policy:   rec,
		})
	}
	rec.Attach(k)
	argv := []string{"dpkg-buildpackage", "-b"}
	init := func(t *kernel.Thread) int {
		p := &guest.Proc{T: t}
		if err := p.Exec("/bin/dpkg-buildpackage", argv, v.Env); err != abi.OK {
			return 127
		}
		return 127 // unreachable
	}
	proc := k.Start(init, argv, v.Env)
	if n, err := k.ResolveInode(proc, pkgdir, true); err == abi.OK && n.IsDir() {
		proc.Cwd, proc.CwdPath = n, pkgdir
	}
	runErr := k.Run()
	if errors.Is(runErr, rr.ErrUnsupportedIoctl) {
		return k.Now(), rec.Trace.Bytes, true
	}
	return k.Now(), rec.Trace.Bytes, false
}

// BufferStudy is the syscall-buffering ablation: the Figure 5 aggregate
// re-derived with the in-tracee buffer on and off, over the same packages
// under the same perturbations. Outputs must be bitwise identical either way
// (the buffer is a performance mechanism, not a semantic one); only the
// overhead moves.
type BufferStudy struct {
	Packages  int // packages whose baseline and both DT runs completed
	Identical int // packages whose buffered and unbuffered .debs matched

	WithBuf    float64 // aggregate slowdown, buffer on
	WithoutBuf float64 // aggregate slowdown, buffer off (pre-buffer DetTrace)

	// Per-package averages over the completed set, buffer on.
	AvgStops    float64
	AvgBuffered float64
	AvgFlushes  float64
	// AvgStopsOff is the unbuffered run's average stop count, for the
	// stop-elimination headline.
	AvgStopsOff float64
}

// String renders the ablation summary.
func (st *BufferStudy) String() string {
	return fmt.Sprintf(
		"packages: %d; bitwise-identical with/without buffer: %d\n"+
			"aggregate slowdown: %.2fx buffered, %.2fx unbuffered\n"+
			"per-package stops: %.0f buffered (%.0f records in %.0f flushes) vs %.0f unbuffered",
		st.Packages, st.Identical,
		st.WithBuf, st.WithoutBuf,
		st.AvgStops, st.AvgBuffered, st.AvgFlushes, st.AvgStopsOff)
}

// RunBufferStudy builds each spec natively once, then twice under DetTrace —
// with and without the syscall buffer — and aggregates the two slowdowns.
func (o *Options) RunBufferStudy(specs []*debpkg.Spec) *BufferStudy {
	type bufOut struct {
		ok        bool
		identical bool
		blTime    int64
		onTime    int64
		offTime   int64
		on        Events
		off       Events
	}
	outs := make([]bufOut, len(specs))
	o.forEach(len(specs), func(l obs.Local, i int) {
		spec := specs[i]
		seed := pkgSeed(o.Seed, spec)
		v1, _ := reprotest.Pair(seed)
		nat := o.buildNative(l, spec, v1, BLDeadline)
		if nat.verdict() != "" {
			return
		}
		on := o.buildDT(l, spec, seed, v1, func(c *core.Config) { c.DisableSyscallBuf = false })
		off := o.buildDT(l, spec, seed, v1, func(c *core.Config) { c.DisableSyscallBuf = true })
		if v, _ := on.verdict(); v != "" {
			return
		}
		if v, _ := off.verdict(); v != "" {
			return
		}
		outs[i] = bufOut{
			ok:        true,
			identical: bytes.Equal(on.deb, off.deb),
			blTime:    nat.wall,
			onTime:    on.wall,
			offTime:   off.wall,
			on:        on.events,
			off:       off.events,
		}
	})
	st := &BufferStudy{}
	var blSum, onSum, offSum int64
	var stops, buffered, flushes, stopsOff int64
	for _, bo := range outs {
		if !bo.ok {
			continue
		}
		st.Packages++
		if bo.identical {
			st.Identical++
		}
		blSum += bo.blTime
		onSum += bo.onTime
		offSum += bo.offTime
		stops += bo.on.Stops
		buffered += bo.on.Buffered
		flushes += bo.on.Flushes
		stopsOff += bo.off.Stops
	}
	if blSum > 0 {
		st.WithBuf = float64(onSum) / float64(blSum)
		st.WithoutBuf = float64(offSum) / float64(blSum)
	}
	if st.Packages > 0 {
		n := float64(st.Packages)
		st.AvgStops = float64(stops) / n
		st.AvgBuffered = float64(buffered) / n
		st.AvgFlushes = float64(flushes) / n
		st.AvgStopsOff = float64(stopsOff) / n
	}
	return st
}

// PortStudy is the §7.3 cross-machine result: the same container run on
// Skylake/4.15 and Broadwell/4.18, outputs compared bitwise.
type PortStudy struct {
	Packages  int // DT-reproducible packages built on both machines
	Identical int
	Ablate    bool // dir-size virtualization disabled
	Example   string
}

// String renders the study like §7.3 reports it.
func (st *PortStudy) String() string {
	s := fmt.Sprintf("%d/%d packages bitwise-identical across skylake/4.15 and broadwell/4.18",
		st.Identical, st.Packages)
	if st.Example != "" {
		s += "\n  example difference: " + st.Example
	}
	return s
}

// RunPortability builds n DT-reproducible candidates once per machine
// profile (same container inputs, different physical host) and compares the
// .debs. With ablate the §7.3 directory-size virtualization is disabled,
// reopening the leak the paper found: only packages whose configure step
// stats a directory's size diverge.
func (o *Options) RunPortability(n int, ablate bool) *PortStudy {
	if n <= 0 {
		n = 100
	}
	var cands []*debpkg.Spec
	for _, s := range debpkg.Universe(o.Seed, 0) {
		if s.Class == debpkg.BLRepro_DTRepro || s.Class == debpkg.BLIrrepro_DTRepro {
			cands = append(cands, s)
		}
		if len(cands) >= n {
			break
		}
	}
	type portOut struct {
		ok, identical bool
		diff          string
	}
	outs := make([]portOut, len(cands))
	o.forEach(len(cands), func(l obs.Local, i int) {
		spec := cands[i]
		seed := pkgSeed(o.Seed, spec)
		v1, _ := reprotest.Pair(seed)
		vB := reprotest.PortabilityHost(v1, seed)
		a := o.buildDT(l, spec, seed, v1, func(c *core.Config) {
			c.Profile = machine.CloudLabC220G5()
			c.DisableDirSizes = ablate
		})
		b := o.buildDT(l, spec, seed, vB, func(c *core.Config) {
			c.Profile = machine.PortabilityBroadwell()
			c.DisableDirSizes = ablate
		})
		if a.deb == nil || b.deb == nil {
			return
		}
		outs[i].ok = true
		outs[i].identical = bytes.Equal(a.deb, b.deb)
		if !outs[i].identical {
			outs[i].diff = firstDebDiff(spec, a.deb, b.deb)
		}
	})
	st := &PortStudy{Ablate: ablate}
	for _, po := range outs {
		if !po.ok {
			continue
		}
		st.Packages++
		if po.identical {
			st.Identical++
		} else if st.Example == "" {
			st.Example = po.diff
		}
	}
	return st
}

// LLVMStudy is the §7.2 self-host correctness check: the llvm package's
// test-suite outcome natively versus under DetTrace.
type LLVMStudy struct {
	NativeSummary   string
	DetTraceSummary string
	Match           bool
	DetTraceVerdict Verdict
}

// RunLLVM builds the llvm package natively and twice under DetTrace, then
// compares the test-suite outcome of the two built binaries.
//
// The DetTrace summary can be read straight off the build log: the tracer's
// Fig.-4 write retries deliver the harness's burst write through the pipe
// intact. The native build log cannot — the unretried burst is truncated at
// pipe capacity, losing the summary lines (the very hazard the retry
// machinery exists for) — so both binaries are re-run under a neutral
// harness whose stdout is the console, which never takes partial writes.
func (o *Options) RunLLVM() *LLVMStudy {
	spec := debpkg.LLVM()
	seed := pkgSeed(o.Seed, spec)
	v1, v2 := reprotest.Pair(seed)
	l := obs.NewLocal()
	nat := o.buildNative(l, spec, v1, BLDeadline)
	d1 := o.buildDT(l, spec, seed, v1, nil)
	d2 := o.buildDT(l, spec, seed, v2, nil)
	st := &LLVMStudy{
		NativeSummary:   testSummary(selftest(nat.prog)),
		DetTraceSummary: testSummary(d1.log),
	}
	if st.DetTraceSummary == "" {
		st.DetTraceSummary = testSummary(selftest(d1.prog))
	}
	st.Match = st.NativeSummary != "" && st.NativeSummary == st.DetTraceSummary
	switch {
	case d1.unsup != "" || d2.unsup != "":
		st.DetTraceVerdict = Unsupported
	case d1.timeout || d2.timeout:
		st.DetTraceVerdict = Timeout
	case d1.deb == nil || d2.deb == nil:
		st.DetTraceVerdict = Fail
	case bytes.Equal(d1.deb, d2.deb):
		st.DetTraceVerdict = Reproducible
	default:
		st.DetTraceVerdict = Irreproducible
	}
	return st
}

// selftest runs a built binary's --selftest suite on a fresh simulated host
// with stdout on the console (console writes are never partial) and returns
// the full report. The outcome is a pure function of the payload the linker
// embedded, so this observes exactly what the binary's own build would have
// reported.
func selftest(prog []byte) []byte {
	if prog == nil {
		return nil
	}
	img := baseimg.WithBinaries()
	img.AddFile("/prog", 0o755, prog)
	k := kernel.New(kernel.Config{
		Profile:  machine.CloudLabC220G5(),
		NumCPU:   1,
		Image:    img,
		Resolver: registry().Resolver(),
		Deadline: BLDeadline,
	})
	argv := []string{"prog", "--selftest"}
	init := func(t *kernel.Thread) int {
		p := &guest.Proc{T: t}
		if err := p.Exec("/prog", argv, containerEnv); err != abi.OK {
			return 127
		}
		return 127 // unreachable
	}
	k.Start(init, argv, containerEnv)
	if k.Run() != nil {
		return nil
	}
	return k.Console.Out
}

// testSummary condenses the cbin --selftest report from a build log.
func testSummary(log []byte) string {
	var tests, pass, xfail, unsup int
	found := false
	for _, line := range strings.Split(string(log), "\n") {
		line = strings.TrimSpace(line)
		switch {
		case scan(line, "Testing: %d tests", &tests):
			found = true
		case scan(line, "Expected Passes    : %d", &pass):
		case scan(line, "Expected Failures  : %d", &xfail):
		case scan(line, "Unsupported Tests  : %d", &unsup):
		}
	}
	if !found {
		return ""
	}
	return fmt.Sprintf("%d tests: %d pass, %d expected failures, %d unsupported",
		tests, pass, xfail, unsup)
}

func scan(line, format string, dst *int) bool {
	_, err := fmt.Sscanf(line, format, dst)
	return err == nil
}

// WorkspaceStudy is the X17 farm-level ablation: every spec built under
// DetTrace with copy-on-write thread workspaces on and with the serialized-
// thread fallback. Outputs must be bitwise identical either way — workspaces
// relax only the physical clock — so the study's interesting numbers are the
// threaded packages' wall-time recovery and the merge accounting.
type WorkspaceStudy struct {
	Packages  int // packages whose baseline and both DT runs completed
	Threaded  int // of those, packages whose build clones threads (javac)
	Identical int // packages whose on/off .debs matched bitwise

	WithWs    float64 // aggregate DT slowdown vs baseline, workspaces on
	WithoutWs float64 // aggregate DT slowdown, serialized-thread ablation

	// ThreadedSpeedup aggregates ws-off wall over ws-on wall across the
	// threaded packages only (single-threaded builds never fork a
	// workspace, so their two runs are identical to the nanosecond).
	ThreadedSpeedup float64

	// Per-threaded-package averages, workspaces on.
	AvgForks  float64
	AvgMerges float64
	// Conflicts counts rank-resolved merge collisions across the whole
	// study; production guests write disjoint paths, so any nonzero value
	// is a finding.
	Conflicts int64
}

// String renders the ablation summary.
func (st *WorkspaceStudy) String() string {
	return fmt.Sprintf(
		"packages: %d (%d threaded); bitwise-identical with/without workspaces: %d\n"+
			"aggregate slowdown: %.2fx workspaces, %.2fx serialized threads\n"+
			"threaded packages: %.2fx faster with workspaces; per package %.0f forks, %.0f merges, %d conflicts",
		st.Packages, st.Threaded, st.Identical,
		st.WithWs, st.WithoutWs,
		st.ThreadedSpeedup, st.AvgForks, st.AvgMerges, st.Conflicts)
}

// RunWorkspaceStudy builds each spec natively once, then twice under
// DetTrace — workspaces on and off — and aggregates the two slowdowns plus
// the threaded packages' recovery ratio.
func (o *Options) RunWorkspaceStudy(specs []*debpkg.Spec) *WorkspaceStudy {
	type wsOut struct {
		ok        bool
		threaded  bool
		identical bool
		blTime    int64
		onTime    int64
		offTime   int64
		on        Events
	}
	outs := make([]wsOut, len(specs))
	o.forEach(len(specs), func(l obs.Local, i int) {
		spec := specs[i]
		seed := pkgSeed(o.Seed, spec)
		v1, _ := reprotest.Pair(seed)
		nat := o.buildNative(l, spec, v1, BLDeadline)
		if nat.verdict() != "" {
			return
		}
		on := o.buildDT(l, spec, seed, v1, func(c *core.Config) { c.DisableWorkspaces = false })
		off := o.buildDT(l, spec, seed, v1, func(c *core.Config) { c.DisableWorkspaces = true })
		if v, _ := on.verdict(); v != "" {
			return
		}
		if v, _ := off.verdict(); v != "" {
			return
		}
		outs[i] = wsOut{
			ok:        true,
			threaded:  spec.Compiler == "javac",
			identical: bytes.Equal(on.deb, off.deb),
			blTime:    nat.wall,
			onTime:    on.wall,
			offTime:   off.wall,
			on:        on.events,
		}
	})
	st := &WorkspaceStudy{}
	var blSum, onSum, offSum int64
	var thrOnSum, thrOffSum, forks, merges int64
	for _, wo := range outs {
		if !wo.ok {
			continue
		}
		st.Packages++
		if wo.identical {
			st.Identical++
		}
		blSum += wo.blTime
		onSum += wo.onTime
		offSum += wo.offTime
		st.Conflicts += wo.on.WsConflicts
		if wo.threaded {
			st.Threaded++
			thrOnSum += wo.onTime
			thrOffSum += wo.offTime
			forks += wo.on.WsForks
			merges += wo.on.WsMerges
		}
	}
	if blSum > 0 {
		st.WithWs = float64(onSum) / float64(blSum)
		st.WithoutWs = float64(offSum) / float64(blSum)
	}
	if thrOnSum > 0 {
		st.ThreadedSpeedup = float64(thrOffSum) / float64(thrOnSum)
	}
	if st.Threaded > 0 {
		n := float64(st.Threaded)
		st.AvgForks = float64(forks) / n
		st.AvgMerges = float64(merges) / n
	}
	return st
}
