// Report aggregation: Table 1 (top and bottom), the §7.1.1 unsupported
// breakdown, Table 2's per-package tracer event averages, and the Figure 5
// slowdown-vs-rate data.
package buildsim

import (
	"fmt"
	"strings"

	"repro/internal/stats"
)

// Table2 holds the per-package average tracer event counts of DT-completed
// builds, at paper scale (weighted).
type Table2 struct {
	Syscalls     float64
	MemReads     float64
	Rdtsc        float64
	Sched        float64
	Replays      float64
	Spawns       float64
	ReadRetries  float64
	WriteRetries float64
	UrandomOpens float64
	Stops        float64
	Buffered     float64
	Flushes      float64
}

// Fig5Point is one package on Figure 5: baseline syscall rate against
// DetTrace slowdown, threaded builds marked.
type Fig5Point struct {
	Rate     float64
	Slowdown float64
	Threaded bool
}

// Report is the aggregate of one BuildAll pass.
type Report struct {
	Packages int

	// Cells is the Table 1 joint distribution: Cells[BL verdict][DT verdict]
	// over the packages whose baseline completed the double build.
	Cells map[string]map[string]int

	BLRepro   int // baseline-reproducible (with strip-nondeterminism)
	BLIrrepro int
	BLFail    int
	BLTimeout int

	// Unsup counts the §7.1.1 classes among DT-unsupported packages.
	Unsup map[string]int

	Table2 Table2
	Fig5   []Fig5Point

	// AggregateSlowdown is total DT time over total baseline time across
	// DT-completed builds — the paper's 3.49x headline.
	AggregateSlowdown float64
	// RateSlowdownCorr is the Figure 5 correlation between baseline syscall
	// rate and slowdown.
	RateSlowdownCorr float64
}

// unsupClasses fixes the §7.1.1 display order.
var unsupClasses = []string{
	"busy-waiting", "socket operations", "cross-process signals", "miscellaneous syscalls",
}

// unsupClass maps a container UnsupportedError op to its §7.1.1 class.
func unsupClass(op string) string {
	switch op {
	case "busy-wait":
		return "busy-waiting"
	case "socket":
		return "socket operations"
	case "cross-process signal":
		return "cross-process signals"
	default:
		return "miscellaneous syscalls"
	}
}

// Aggregate folds per-package outcomes into the report. Every input package
// lands in exactly one bucket: BLFail, BLTimeout, or a Cells[bl][dt] cell.
func Aggregate(outs []Out) *Report {
	r := &Report{
		Packages: len(outs),
		Cells: map[string]map[string]int{
			string(Reproducible):   {},
			string(Irreproducible): {},
		},
		Unsup: map[string]int{},
	}
	var (
		ev           Events
		completed    int64
		blSum, dtSum int64
		rates, slows []float64
	)
	for _, o := range outs {
		switch o.BL {
		case Fail:
			r.BLFail++
			continue
		case Timeout:
			r.BLTimeout++
			continue
		case Reproducible:
			r.BLRepro++
		case Irreproducible:
			r.BLIrrepro++
		default:
			r.BLFail++
			continue
		}
		r.Cells[string(o.BL)][string(o.DT)]++
		if o.DT == Unsupported {
			r.Unsup[unsupClass(o.UnsupReason)]++
		}
		if o.DT == Reproducible || o.DT == Irreproducible {
			ev.Syscalls += o.Events.Syscalls
			ev.MemReads += o.Events.MemReads
			ev.Rdtsc += o.Events.Rdtsc
			ev.Sched += o.Events.Sched
			ev.Replays += o.Events.Replays
			ev.Spawns += o.Events.Spawns
			ev.ReadRetries += o.Events.ReadRetries
			ev.WriteRetries += o.Events.WriteRetries
			ev.UrandomOpens += o.Events.UrandomOpens
			ev.Stops += o.Events.Stops
			ev.Buffered += o.Events.Buffered
			ev.Flushes += o.Events.Flushes
			completed++
			blSum += o.BLTime
			dtSum += o.DTTime
			r.Fig5 = append(r.Fig5, Fig5Point{Rate: o.SyscallRate, Slowdown: o.Slowdown, Threaded: o.Threaded})
			rates = append(rates, o.SyscallRate)
			slows = append(slows, o.Slowdown)
		}
	}
	if completed > 0 {
		n := float64(completed)
		r.Table2 = Table2{
			Syscalls:     float64(ev.Syscalls) / n,
			MemReads:     float64(ev.MemReads) / n,
			Rdtsc:        float64(ev.Rdtsc) / n,
			Sched:        float64(ev.Sched) / n,
			Replays:      float64(ev.Replays) / n,
			Spawns:       float64(ev.Spawns) / n,
			ReadRetries:  float64(ev.ReadRetries) / n,
			WriteRetries: float64(ev.WriteRetries) / n,
			UrandomOpens: float64(ev.UrandomOpens) / n,
			Stops:        float64(ev.Stops) / n,
			Buffered:     float64(ev.Buffered) / n,
			Flushes:      float64(ev.Flushes) / n,
		}
	}
	if blSum > 0 {
		r.AggregateSlowdown = float64(dtSum) / float64(blSum)
	}
	if len(rates) > 1 {
		r.RateSlowdownCorr = stats.Correlation(rates, slows)
	}
	return r
}

func rowTotal(row map[string]int) int {
	n := 0
	for _, v := range row {
		n += v
	}
	return n
}

// Table1Top renders the top half of Table 1: for each baseline verdict, how
// the same packages fared under DetTrace.
func (r *Report) Table1Top() string {
	t := stats.NewTable("baseline \\ dettrace", "reproducible", "irreproducible", "unsupported", "timeout")
	for _, bl := range []Verdict{Irreproducible, Reproducible} {
		row := r.Cells[string(bl)]
		n := rowTotal(row)
		t.Row(fmt.Sprintf("%s (%d)", bl, n),
			stats.Pct(row[string(Reproducible)], n),
			stats.Pct(row[string(Irreproducible)], n),
			stats.Pct(row[string(Unsupported)], n),
			stats.Pct(row[string(Timeout)], n))
	}
	return t.String() + fmt.Sprintf("(plus %d baseline build failures and %d baseline timeouts, excluded above)\n",
		r.BLFail, r.BLTimeout)
}

// Table1Bottom renders the bottom half: each DetTrace outcome's share of the
// built packages, split by baseline verdict. Per DESIGN.md §3 the paper's
// printed bottom "DetTrace Unsupported" row (708) is inconsistent with its
// own top half (the unsupported cells sum to 2,049), so this table is
// *derived from the measured joint distribution*, not transcribed.
func (r *Report) Table1Bottom() string {
	t := stats.NewTable("dettrace outcome", "of built packages", "bl-reproducible", "bl-irreproducible")
	built := r.BLRepro + r.BLIrrepro
	for _, dt := range []Verdict{Reproducible, Irreproducible, Unsupported, Timeout} {
		nR := r.Cells[string(Reproducible)][string(dt)]
		nI := r.Cells[string(Irreproducible)][string(dt)]
		t.Row(string(dt), stats.Pct(nR+nI, built), nR, nI)
	}
	return t.String() +
		"(derived from the joint distribution; the paper's bottom unsupported row\n" +
		" disagrees with its own top half — see DESIGN.md §3)\n"
}

// UnsupportedBreakdown renders the §7.1.1 classes of DT-unsupported builds.
func (r *Report) UnsupportedBreakdown() string {
	total := 0
	for _, n := range r.Unsup {
		total += n
	}
	t := stats.NewTable("unsupported operation class", "share of unsupported")
	for _, c := range unsupClasses {
		t.Row(c, stats.Pct(r.Unsup[c], total))
	}
	return t.String()
}

// Table2String renders the per-package tracer event averages.
func (r *Report) Table2String() string {
	t := stats.NewTable("tracer event", "per-package average")
	row := func(name string, v float64) { t.Row(name, fmt.Sprintf("%.0f", v)) }
	row("system calls", r.Table2.Syscalls)
	row("tracee memory reads", r.Table2.MemReads)
	row("rdtsc/rdtscp traps", r.Table2.Rdtsc)
	row("scheduling decisions", r.Table2.Sched)
	row("blocked-call replays", r.Table2.Replays)
	row("process spawns", r.Table2.Spawns)
	row("read retries", r.Table2.ReadRetries)
	row("write retries", r.Table2.WriteRetries)
	row("/dev/[u]random opens", r.Table2.UrandomOpens)
	row("ptrace stops", r.Table2.Stops)
	row("buffered syscalls", r.Table2.Buffered)
	row("buffer flushes", r.Table2.Flushes)
	return t.String()
}

// Fig5Summary renders the Figure 5 data as CSV with a summary header line.
func (r *Report) Fig5Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %d builds; aggregate slowdown %.2fx; corr(rate, slowdown) = %.2f\n",
		len(r.Fig5), r.AggregateSlowdown, r.RateSlowdownCorr)
	b.WriteString("syscalls_per_sec,slowdown,threaded\n")
	for _, p := range r.Fig5 {
		fmt.Fprintf(&b, "%.0f,%.2f,%v\n", p.Rate, p.Slowdown, p.Threaded)
	}
	return strings.TrimRight(b.String(), "\n")
}
