package buildsim

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/debpkg"
	"repro/internal/farm"
	"repro/internal/obs"
	"repro/internal/reprotest"
)

// farmCrashAt returns a mid-build crash point for the first spec's
// checkpointed DetTrace run, so node-kill plans are guaranteed to fire
// inside it.
func farmCrashAt(t *testing.T, seedOpt uint64, spec *debpkg.Spec) int64 {
	t.Helper()
	o := &Options{Seed: seedOpt, Checkpoints: true}
	l := obs.NewLocal()
	seed := pkgSeed(seedOpt, spec)
	v1, _ := reprotest.Pair(seed)
	ref := o.buildDT(l, spec, seed, v1, nil)
	if v, _ := ref.verdict(); v != "" {
		t.Fatalf("probe build failed: %s", v)
	}
	if ref.actions < 2 {
		t.Fatalf("probe build too short: %d actions", ref.actions)
	}
	return ref.actions / 2
}

// TestDistributedFarmShapeEquivalence is the X16 oracle at the buildsim
// level: BuildAll output is DeepEqual across node counts x placement seeds x
// fault schedules, and equal to the local (single-process) checkpointed
// farm. Any placement, stale-shard or recovery bug must surface here as a
// bit difference.
func TestDistributedFarmShapeEquivalence(t *testing.T) {
	specs := debpkg.Universe(3, 2)
	ref := (&Options{Seed: 3, Jobs: 2, Checkpoints: true}).BuildAll(specs, nil)
	crashAt := farmCrashAt(t, 3, specs[0])

	var crashed, recovered int64
	for _, nodes := range []int{1, 3, 8} {
		for _, seed := range []uint64{1, 2} {
			// Kill the node the first package lands on, so crash plans fire
			// regardless of the placement seed under test.
			live := make([]int, nodes)
			for i := range live {
				live[i] = i + 1
			}
			kill := farm.Place(seed, pkgSeed(0, specs[0]), live)
			plans := map[string]reprotest.FaultPlan{
				"none":  {},
				"crash": {KillNode: kill, KillAtJob: 1, CrashAtAction: crashAt},
				"dup":   {DupMsg: 2},
			}
			for name, plan := range plans {
				o := &Options{Seed: 3, Checkpoints: true, Distributed: true,
					Nodes: nodes, PlacementSeed: seed, FarmPlan: plan}
				got := o.BuildAll(specs, nil)
				if !reflect.DeepEqual(got, ref) {
					for i := range got {
						if !reflect.DeepEqual(got[i], ref[i]) {
							t.Errorf("nodes=%d seed=%d plan=%s: %s diverged:\n got %+v\nwant %+v",
								nodes, seed, name, specs[i].Name, got[i], ref[i])
						}
					}
					t.Fatalf("nodes=%d seed=%d plan=%s: farm output != local output",
						nodes, seed, name)
				}
				st, ok := o.FarmStats()
				if !ok {
					t.Fatalf("nodes=%d seed=%d plan=%s: no farm stats", nodes, seed, name)
				}
				crashed += st.NodeCrashes
				recovered += st.Recoveries
				if st.Jobs != len(specs) {
					t.Fatalf("nodes=%d seed=%d plan=%s: %d jobs completed, want %d",
						nodes, seed, name, st.Jobs, len(specs))
				}
			}
		}
	}
	if crashed == 0 || recovered == 0 {
		t.Fatalf("fault plans never exercised recovery: crashes=%d recoveries=%d",
			crashed, recovered)
	}
}

// TestDistributedPlainMatchesLocal: with checkpoints off the distributed
// farm stays in the plain equivalence class — bitwise equal to the local
// plain BuildAll. The spec list repeats one package so two jobs share its
// prepared state: the first leases and builds it, the second fetches the
// farm-shared copy from the shard store (a state hit).
func TestDistributedPlainMatchesLocal(t *testing.T) {
	specs := debpkg.Universe(5, 3)
	specs = append(specs, specs[0])
	ref := (&Options{Seed: 5, Jobs: 2}).BuildAll(specs, nil)
	o := &Options{Seed: 5, Distributed: true, Nodes: 3, PlacementSeed: 9}
	got := o.BuildAll(specs, nil)
	if !reflect.DeepEqual(got, ref) {
		t.Fatal("plain distributed output != plain local output")
	}
	st, _ := o.FarmStats()
	if st.SealPuts != 0 {
		t.Fatalf("plain farm published %d seals", st.SealPuts)
	}
	if st.StateMisses == 0 || st.StateHits == 0 {
		t.Fatalf("shard store unused: %d misses, %d hits", st.StateMisses, st.StateHits)
	}
}

// TestFarmCrashRecovery drives the reprotest gate end to end: a worker is
// killed mid-build, the job is stolen and restored from a shard-store seal
// on a different node, and the output matches the single-node farm bitwise.
func TestFarmCrashRecovery(t *testing.T) {
	spec := debpkg.Universe(1, 1)[0]
	o := &Options{Seed: 1}
	report, ok := o.FarmCrashRecovery(spec, 3, 0)
	if !ok {
		t.Fatalf("distributed crash recovery diverged:\n%s", report)
	}
	if !strings.Contains(report, "restored from seal ordinal") {
		t.Fatalf("recovery did not restore from a seal:\n%s", report)
	}
	t.Logf("\n%s", report)
}

// TestFarmCrashRecoveryLastNode kills the only worker: the coordinator must
// finish the job inline (local fallback) and still land on the same bits.
func TestFarmCrashRecoveryLastNode(t *testing.T) {
	spec := debpkg.Universe(1, 1)[0]
	o := &Options{Seed: 1}
	report, ok := o.FarmCrashRecovery(spec, 1, 1)
	if !ok {
		t.Fatalf("fallback crash recovery diverged:\n%s", report)
	}
	if !strings.Contains(report, "local fallback") &&
		!strings.Contains(report, "coordinator") {
		t.Fatalf("expected coordinator fallback in report:\n%s", report)
	}
	t.Logf("\n%s", report)
}

// TestFarmSealTraffic: a checkpointed distributed build publishes its seals
// into the shard store and the farm counters see them; recovery-free runs
// never fetch one.
func TestFarmSealTraffic(t *testing.T) {
	specs := debpkg.Universe(7, 2)
	o := &Options{Seed: 7, Checkpoints: true, Distributed: true, Nodes: 3}
	o.BuildAll(specs, nil)
	st, _ := o.FarmStats()
	if st.SealPuts == 0 {
		t.Fatal("checkpointed farm published no seals")
	}
	if st.Recoveries != 0 || st.NodeCrashes != 0 {
		t.Fatalf("fault-free farm recorded faults: %+v", st)
	}
	reports := o.FarmReports()
	if len(reports) != len(specs) {
		t.Fatalf("%d job reports, want %d", len(reports), len(specs))
	}
	for _, r := range reports {
		if r.Err != "" || r.Attempts != 1 || r.Recovered {
			t.Fatalf("fault-free job report off: %+v", r)
		}
	}
}
