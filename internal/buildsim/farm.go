// The distributed build farm driver: BuildAll behind Options.Distributed.
//
// The single-process farm (buildsim.go) proves output is independent of the
// worker-pool size; this file raises the same claim one level: output is
// independent of the whole cluster arrangement. Jobs are placed on worker
// nodes by the internal/farm coordinator (rendezvous hashing over the
// placement seed), prepared state — baseline kernel snapshots, container
// templates, checkpoint seals — lives in the coordinator's content-addressed
// shard store keyed by derive.KeyFor, and the X15 fault plane extends through
// the transport: a node killed mid-build has its job stolen and recovered on
// another node from the freshest seal. Because a DetTrace build is a pure
// function of its declared inputs, none of that machinery may move a single
// output byte — farm_test.go pins BuildAll DeepEqual across node counts,
// placement seeds and fault schedules, which makes determinism the farm's
// correctness oracle: any placement bug, stale-cache bug or botched recovery
// shows up as a bit difference, not a heisenbug.
//
// Distributed mode ignores Options.InjectFaults (the per-job container fault
// plans): the farm's fault plane is Options.FarmPlan, which schedules faults
// at the cluster level (node crash, message loss/duplication) and injects
// the container-level crash only into the doomed node's build.
package buildsim

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/debpkg"
	"repro/internal/derive"
	"repro/internal/farm"
	"repro/internal/fs"
	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/reprotest"
	"repro/internal/stats"
)

// DefaultFarmNodes is the worker-node count when Options.Nodes is zero.
const DefaultFarmNodes = 3

// buildAllFarm is BuildAll on the distributed path: one farm.Job per spec,
// executed wherever the coordinator places it. Out bodies stay in-process
// (the protocol carries digests and content addresses only), land in spec
// order, and must be bitwise-identical to the local pool's.
func (o *Options) buildAllFarm(specs []*debpkg.Spec, progress func(done, total int)) []Out {
	nodes := o.Nodes
	if nodes <= 0 {
		nodes = DefaultFarmNodes
	}
	slots := o.NodeSlots
	if slots <= 0 {
		slots = 1
	}
	outs := make([]Out, len(specs))
	var mu sync.Mutex
	done := 0
	exec := func(ctx *farm.ExecCtx) (uint64, error) {
		i := int(ctx.Job.ID) - 1
		spec := specs[i]
		l := obs.NewLocal()
		o.stageSnapshots(ctx, l, spec)
		out, err := o.buildProto(l, spec, i, o.farmDT1(ctx, spec))
		if err != nil {
			return 0, err
		}
		ctx.Attest.Ring = ringDigest(&out)
		if ctx.Rebuild {
			// Attestation rebuild: the full build runs (that is the point —
			// an independent re-execution) but the result is admission
			// evidence, never farm output.
			return outDigest(&out), nil
		}
		mu.Lock()
		outs[i] = out
		done++
		if progress != nil {
			progress(done, len(specs))
		}
		mu.Unlock()
		return outDigest(&out), nil
	}
	cl := farm.New(farm.Config{Nodes: nodes, Slots: slots,
		PlacementSeed: o.PlacementSeed, Plan: o.FarmPlan,
		Attest: o.Attest, Rebuilders: o.Rebuilders,
		LogServers: o.LogServers, KeySeed: o.Seed}, exec)
	jobs := make([]farm.Job, len(specs))
	for i, spec := range specs {
		// Affinity/Image are the spec's pure identity hash: placement input
		// only, never a build input. The real image content hash is computed
		// inside the executor (it requires materialization) and keys the
		// shard store.
		id := pkgSeed(0, spec)
		jobs[i] = farm.Job{ID: uint64(i) + 1, Affinity: id, Image: id}
	}
	if _, err := cl.Run(jobs); err != nil {
		// Registration failed (only possible on a custom transport): keep
		// BuildAll's contract by building locally.
		o.forEach(len(specs), func(l obs.Local, i int) {
			out := o.build(l, specs[i], i)
			mu.Lock()
			outs[i] = out
			done++
			if progress != nil {
				progress(done, len(specs))
			}
			mu.Unlock()
		})
	}
	o.farmMu.Lock()
	o.lastFarm = cl
	o.farmMu.Unlock()
	return outs
}

// outDigest condenses one Out into the digest the farm protocol reports:
// verdicts, virtual times and headline event counts. The equivalence gates
// compare full Out bodies DeepEqual; the protocol-level digest is what
// remote deployments (HTTP binding) would compare across sites.
func outDigest(out *Out) uint64 {
	h := obs.DigestBytes([]byte(string(out.BL) + "\x00" + string(out.DT) +
		"\x00" + out.UnsupReason))
	return obs.DigestU64(h, uint64(out.BLTime), uint64(out.DTTime),
		uint64(out.Events.Syscalls), uint64(out.Events.Stops))
}

// ringDigest condenses one Out into the flight-recorder digest bound into the
// build's attestation statement: the protocol digest folded with the recorded
// event counts — a fingerprint of the *execution*, not just the product, so a
// builder cannot attest an honest output it obtained by a different run. Any
// pure function of Out is schedule-pure here because X16 pins full Out bodies
// DeepEqual across every farm shape.
func ringDigest(out *Out) uint64 {
	return obs.DigestU64(outDigest(out), uint64(out.RecEvents),
		uint64(out.Events.Replays), uint64(out.Events.Sched),
		uint64(out.Events.WsForks), uint64(out.Events.WsMerges))
}

// stageSnapshots routes the package's prepared baseline-kernel snapshots
// through the coordinator's shard store: the first node to need one holds
// the lease and prepares it, every other node forks the farm-shared copy —
// the same fork-once-build-everywhere story templates get in
// runFarmContainer. The staged snapshot is seeded into this node's local
// cache so buildNative's lookup hits it. Skipped under the template
// ablation, where every boot is deliberately cold.
func (o *Options) stageSnapshots(ctx *farm.ExecCtx, l obs.Local, spec *debpkg.Spec) {
	if o.DisableTemplates {
		return
	}
	seed := pkgSeed(o.Seed, spec)
	v1, v2 := reprotest.Pair(seed)
	for _, root := range []string{v1.BuildRoot, v2.BuildRoot} {
		img, _, imgHash := o.pkgImage(l, spec, root)
		key := derive.KeyFor(imgHash, 0)
		snap := ctx.Prepared(key, func() any {
			return o.snapshot(l, imgHash, img)
		})
		if snap == nil {
			continue // transport without body transfer: prepare locally later
		}
		e, _ := o.caches().snapshots.get(key)
		e.once.Do(func() { e.v = snap })
	}
}

// farmDT1 builds the hook buildProto runs instead of the local first
// DetTrace build: the one run in the package protocol that the farm fault
// plane may kill (ctx.Doom) and that a post-crash attempt resumes from the
// shard store's freshest seal. In checkpoint mode seals publish to the
// store as they land; in plain mode a doomed run still crashes but recovery
// can only cold-replay (there are no seals to restore).
func (o *Options) farmDT1(ctx *farm.ExecCtx, spec *debpkg.Spec) func(obs.Local, uint64, reprotest.Variation) (dtRun, error) {
	return func(l obs.Local, seed uint64, v reprotest.Variation) (dtRun, error) {
		img, pkgdir, imgHash := o.pkgImage(l, spec, "/build")
		cfg := o.dtConfig(img, pkgdir, seed, v)
		// Attestation subject: the content-addressed identity of this build,
		// taken from the CLEAN config — before any doomed-node crash knob
		// lands in runCfg — so honest primaries and rebuilders bind the same
		// subject regardless of the fault schedule.
		ctx.Attest.Subject = derive.KeyFor(imgHash, core.ConfigHash(cfg))
		env := containerEnv
		runCfg := cfg
		var state derive.Key
		if o.Checkpoints {
			env = checkpointEnv
			state = derive.KeyFor(imgHash, core.ConfigHash(cfg))
			runCfg.CheckpointSink = func(cp *core.Checkpoint) {
				o.sc().ckptSealed.Add(l, 1)
				ctx.PutSeal(state, cp.Ordinal(), cp.Digest(), cp)
			}
		}
		if ctx.Attempt > 0 {
			return o.farmRecover(ctx, l, spec, state, runCfg, img, imgHash, pkgdir, env), nil
		}
		if ctx.Doom.Crashes() {
			runCfg.FaultInjectCrash = ctx.Doom.CrashAtAction
		}
		res := o.runFarmContainer(ctx, l, runCfg, img, imgHash, env)
		if res.Err != nil && errors.Is(res.Err, kernel.ErrInjectedCrash) {
			o.sc().crashes.Add(l, 1)
			return dtRun{}, &farm.Crash{Wall: res.WallTime}
		}
		return dtRunFrom(res, spec, pkgdir), nil
	}
}

// farmRecover completes a stolen job on its new node: fetch the freshest
// seal from the shard store, restore, and run the suffix — stepping down
// ordinals past corrupted or missing seals and degrading to a cold replay
// when none survives. The determinism contract makes every exit produce the
// uninterrupted run's bits; the accounting (MTTR, redone work) reuses the
// local fault plane's counters so `benchtab -farm` reports one story.
func (o *Options) farmRecover(ctx *farm.ExecCtx, l obs.Local, spec *debpkg.Spec, state derive.Key, cfg core.Config, img *fs.Image, imgHash uint64, pkgdir string, env []string) dtRun {
	sc := o.sc()
	for ord := ctx.LatestSeal(state); ord > 0; ord-- {
		sc.restoreAttempts.Add(l, 1)
		sv, ok := ctx.Seal(state, ord)
		if !ok {
			continue
		}
		cp, ok := sv.(*core.Checkpoint)
		if !ok {
			continue // transport without body transfer: nothing to restore
		}
		res, err := core.Resume(cp, registry(), cfg)
		if err != nil {
			sc.ckptInvalid.Add(l, 1)
			continue
		}
		sc.restores.Add(l, 1)
		sc.mttrNs.Add(l, res.WallTime-cp.VirtualNow())
		sc.redoneNs.Add(l, ctx.PrevWall-cp.VirtualNow())
		ctx.RestoredFrom = ord
		return dtRunFrom(res, spec, pkgdir)
	}
	sc.coldReplays.Add(l, 1)
	res := o.runFarmContainer(ctx, l, cfg, img, imgHash, env)
	sc.replayNs.Add(l, res.WallTime)
	sc.redoneNs.Add(l, ctx.PrevWall)
	return dtRunFrom(res, spec, pkgdir)
}

// runFarmContainer is runContainer with the prepared template served from
// the coordinator's shard store instead of the local LRU: the first node to
// need a (image, config) template holds the lease and prepares it; every
// other node — and every later build on any node — forks the farm-shared
// copy. Crash-carrying configs cold-boot exactly as on the local path (a
// run doomed to die must not hold a prepare lease), which also keeps the
// lease protocol deadlock-free: lease holders always complete their put.
func (o *Options) runFarmContainer(ctx *farm.ExecCtx, l obs.Local, cfg core.Config, img *fs.Image, imgHash uint64, env []string) *core.Result {
	sc := o.sc()
	var c *core.Container
	if o.DisableTemplates || cfg.DisableTemplateReuse || cfg.Image != img || cfg.FaultInjectCrash != 0 {
		c = core.New(cfg)
	} else {
		key := derive.KeyFor(imgHash, core.ConfigHash(cfg))
		v := ctx.Prepared(key, func() any {
			start := time.Now()
			t := core.NewTemplate(cfg)
			sc.prepareNs.Add(l, time.Since(start).Nanoseconds())
			return t
		})
		if tpl, ok := v.(*core.Template); ok {
			c = tpl.NewContainer(core.HostRun{
				Seed: cfg.HostSeed, Epoch: cfg.Epoch, NumCPU: cfg.NumCPU,
				CheckpointSink:         cfg.CheckpointSink,
				FaultCorruptCheckpoint: cfg.FaultCorruptCheckpoint,
			})
		} else {
			c = core.New(cfg) // transport without body transfer: cold-boot
		}
	}
	res := c.Run(registry(), "/bin/dpkg-buildpackage",
		[]string{"dpkg-buildpackage", "-b"}, env)
	if res.Forked {
		sc.forkBoots.Add(l, 1)
		sc.forkNs.Add(l, res.SetupNs)
		sc.recEventsFork.Add(l, res.Trace.Total())
	} else {
		sc.coldBoots.Add(l, 1)
		sc.coldSetupNs.Add(l, res.SetupNs)
		sc.recEventsCold.Add(l, res.Trace.Total())
	}
	o.Obs().Absorb(res.Obs)
	return res
}

// FarmStats returns the farm accounting of the most recent distributed
// BuildAll (false before any distributed run).
func (o *Options) FarmStats() (farm.Stats, bool) {
	o.farmMu.Lock()
	defer o.farmMu.Unlock()
	if o.lastFarm == nil {
		return farm.Stats{}, false
	}
	return o.lastFarm.Stats(), true
}

// FarmReports returns the per-job reports of the most recent distributed
// BuildAll (nil before any distributed run).
func (o *Options) FarmReports() []farm.JobReport {
	o.farmMu.Lock()
	cl := o.lastFarm
	o.farmMu.Unlock()
	if cl == nil {
		return nil
	}
	reports := cl.Reports()
	return reports
}

// FarmCrashRecovery is the single-package distributed crash gate behind
// `reprotest -nodes N -kill-node ORD`: build the package on a single-node
// farm for reference, then on an N-node farm whose fault plan kills the
// chosen worker mid-build, and compare the full Out bodies bitwise. ORD <= 0
// auto-picks the node the job lands on, so the crash is guaranteed to fire.
// The report is human-readable; ok is the machine verdict.
func (o *Options) FarmCrashRecovery(spec *debpkg.Spec, nodes, killNode int) (report string, ok bool) {
	if nodes <= 0 {
		nodes = DefaultFarmNodes
	}
	// Reference action count, for a mid-build crash point.
	local := &Options{Seed: o.Seed, Checkpoints: true}
	l := obs.NewLocal()
	seed := pkgSeed(o.Seed, spec)
	v1, _ := reprotest.Pair(seed)
	ref := local.buildDT(l, spec, seed, v1, nil)
	if v, _ := ref.verdict(); v != "" {
		return fmt.Sprintf("reference build did not complete: %s", v), false
	}
	if killNode <= 0 {
		live := make([]int, nodes)
		for i := range live {
			live[i] = i + 1
		}
		killNode = farm.Place(o.PlacementSeed, pkgSeed(0, spec), live)
	}
	specs := []*debpkg.Spec{spec}
	single := &Options{Seed: o.Seed, Checkpoints: true, Distributed: true,
		Nodes: 1, PlacementSeed: o.PlacementSeed}
	want := single.BuildAll(specs, nil)
	killed := &Options{Seed: o.Seed, Checkpoints: true, Distributed: true,
		Nodes: nodes, PlacementSeed: o.PlacementSeed,
		FarmPlan: reprotest.FaultPlan{KillNode: killNode, KillAtJob: 1,
			CrashAtAction: ref.actions / 2}}
	got := killed.BuildAll(specs, nil)
	ok = reflect.DeepEqual(got, want)
	verdict := "bitwise-identical to the single-node farm"
	if !ok {
		verdict = "DIVERGED from the single-node farm"
	}
	how := "completed before the crash point"
	st, _ := killed.FarmStats()
	if reps := killed.FarmReports(); len(reps) == 1 && reps[0].Recovered {
		where := fmt.Sprintf("node %d", reps[0].Node)
		if reps[0].Node == 0 {
			where = "the coordinator (local fallback)"
		}
		if reps[0].SealOrd > 0 {
			how = fmt.Sprintf("stolen from node %d, restored from seal ordinal %d on %s",
				reps[0].StolenFrom, reps[0].SealOrd, where)
		} else {
			how = fmt.Sprintf("stolen from node %d, cold-replayed on %s",
				reps[0].StolenFrom, where)
		}
	}
	report = fmt.Sprintf(
		"reference: %d actions, %.1f s virtual\n"+
			"farm: %d nodes, worker %d killed mid-build at action %d\n"+
			"job %s; %d seal puts, %d steals, %d recoveries\n"+
			"recovered run %s",
		ref.actions, float64(ref.wall)/1e9,
		nodes, killNode, ref.actions/2,
		how, st.SealPuts, st.Steals, st.Recoveries, verdict)
	return report, ok
}

// FarmStudy is the X16 scaling-and-recovery experiment: the same package set
// built on farms of every shape — node counts x placement seeds x fault
// schedules — against one local reference. Identical must equal Cells (the
// oracle); the rest is the cost story: how much setup the shard store
// amortizes and what a node crash costs to recover from.
type FarmStudy struct {
	Packages  int   // packages per cell
	Cells     int   // farm shapes run
	Identical int   // cells whose outputs matched the local reference exactly
	Nodes     []int // node counts swept

	Crashes        int64 // worker nodes killed by the fault plans
	Steals         int64 // jobs re-placed off dead nodes
	Recoveries     int64 // crashed jobs completed by a later attempt
	ColdRecoveries int64 // recoveries that degraded to a cold replay
	SealPuts       int64 // checkpoint seals published to shard stores
	StateMisses    int64 // prepared-state leases (one per farm-wide prepare)
	StateHits      int64 // prepared-state fetches served from shard stores
	MsgsLost       int64 // transmissions dropped by the fault plans
	MsgsDuplicated int64 // deliveries duplicated by the fault plans
	MsgsDeduped    int64 // duplicates absorbed by idempotency keys

	AvgMTTRNs   float64 // virtual crash-to-completion time per seal restore
	AvgRedoneNs float64 // virtual work executed twice per recovery
}

// String renders the study summary.
func (st *FarmStudy) String() string {
	return fmt.Sprintf(
		"packages: %d x %d farm shapes (nodes %v x placement seeds x fault schedules)\n"+
			"bitwise-identical to local reference: %s\n"+
			"faults: %d node crashes, %d steals, %d recoveries (%d cold); "+
			"%d lost msgs retransmitted, %d duplicated msgs deduped (%d)\n"+
			"shard store: %d seal puts, %d prepares, %d shared fetches\n"+
			"recovery: %.1f s virtual MTTR per restore, %.1f s work redone per recovery",
		st.Packages, st.Cells, st.Nodes,
		stats.Pct(st.Identical, st.Cells),
		st.Crashes, st.Steals, st.Recoveries, st.ColdRecoveries,
		st.MsgsLost, st.MsgsDuplicated, st.MsgsDeduped,
		st.SealPuts, st.StateMisses, st.StateHits,
		st.AvgMTTRNs/1e9, st.AvgRedoneNs/1e9)
}

// RunFarmStudy sweeps farm shapes over specs: node counts {1,3,8} x two
// placement seeds x three fault schedules (fault-free, kill-a-worker,
// duplicate-messages), every cell checkpointed and single-slot, all compared
// DeepEqual against the local checkpointed farm's output.
func (o *Options) RunFarmStudy(specs []*debpkg.Spec) *FarmStudy {
	ref := (&Options{Seed: o.Seed, Jobs: o.Jobs, Checkpoints: true}).BuildAll(specs, nil)

	// A mid-build crash point needs a reference action count; take the first
	// package's (any in-range action works — the plan dodges harmlessly on
	// packages it overshoots).
	var crashAt int64 = 1500
	if len(ref) > 0 && ref[0].DTTime > 0 {
		l := obs.NewLocal()
		spec := specs[0]
		seed := pkgSeed(o.Seed, spec)
		v1, _ := reprotest.Pair(seed)
		probe := (&Options{Seed: o.Seed, Checkpoints: true}).buildDT(l, spec, seed, v1, nil)
		if probe.actions > 1 {
			crashAt = probe.actions / 2
		}
	}
	st := &FarmStudy{Packages: len(specs), Nodes: []int{1, 3, 8}}
	var mttrNs, redoneNs, restores int64
	for _, nodes := range st.Nodes {
		for _, seed := range []uint64{1, 2} {
			kill := nodes
			if kill > 2 {
				kill = 2
			}
			plans := []reprotest.FaultPlan{
				{},
				{KillNode: kill, KillAtJob: 1, CrashAtAction: crashAt},
				{DupMsg: 2},
			}
			for _, plan := range plans {
				cell := &Options{Seed: o.Seed, Checkpoints: true,
					Distributed: true, Nodes: nodes, PlacementSeed: seed,
					FarmPlan: plan}
				got := cell.BuildAll(specs, nil)
				st.Cells++
				if reflect.DeepEqual(got, ref) {
					st.Identical++
				}
				fst, _ := cell.FarmStats()
				st.Crashes += fst.NodeCrashes
				st.Steals += fst.Steals
				st.Recoveries += fst.Recoveries
				st.ColdRecoveries += fst.ColdRecoveries
				st.SealPuts += fst.SealPuts
				st.StateMisses += fst.StateMisses
				st.StateHits += fst.StateHits
				st.MsgsLost += fst.MsgsLost
				st.MsgsDuplicated += fst.MsgsDuplicated
				st.MsgsDeduped += fst.MsgsDeduped
				cf := cell.FaultStats()
				mttrNs += cf.MTTRNs
				redoneNs += cf.RedoneNs
				restores += cf.Restores
			}
		}
	}
	if restores > 0 {
		st.AvgMTTRNs = float64(mttrNs) / float64(restores)
	}
	if n := st.Recoveries; n > 0 {
		st.AvgRedoneNs = float64(redoneNs) / float64(n)
	}
	return st
}
