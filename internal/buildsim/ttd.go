// Time-travel debugging over recorded builds (ISSUE 9): record a package
// build in checkpoint mode keeping EVERY seal (not just the freshest, as the
// crash-recovery LRU does), wrap the seal chain and the full flight-recorder
// trace in a ttd.Session, and drive the two debugger verbs — SeekTo a
// logical instant, and Bisect two runs to their first divergent event in
// O(log n) seal probes plus a constant number of window replays.
//
// BisectDiagnose is the `reprotest -bisect` gate: it must land on the SAME
// event the linear diagnoser (diagnose.go) finds, while re-executing only
// the checkpoint-bracketed window. RunTTDStudy is the `benchtab -ttd` study:
// delta-vs-full seal sizes, seek latency against cold replay, bisect probe
// counts.
package buildsim

import (
	"bytes"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/debpkg"
	"repro/internal/obs"
	"repro/internal/reprotest"
	"repro/internal/stats"
	"repro/internal/ttd"
)

// bookSealBytes charges one sealed checkpoint's storage cost to the farm's
// seal-size counters: a delta seal stores only the bytes dirtied since the
// previous seal, a full seal its whole tree. Farm-layer on purpose — sinks
// must never touch the run's own registry (see setupCounters.ckptDeltaBytes).
func (o *Options) bookSealBytes(l obs.Local, cp *core.Checkpoint) {
	st := cp.Kernel().FSSealStats()
	sc := o.sc()
	if st.Delta {
		sc.ckptDeltaBytes.Add(l, st.FreshBytes)
	} else {
		sc.ckptFullBytes.Add(l, st.TotalBytes)
	}
}

// recordSession builds spec once in checkpoint mode with an all-seals sink
// and a diagnosis-sized ring, and wraps the recording in a ttd.Session.
// inject > 0 perturbs the inject'th entropy draw (the divergence the bisect
// gate localizes); mod further adjusts the config (the delta-seal ablation).
// The session's Launch closure cold-boots deliberately — core templates
// zero the per-run halt knobs, so a halted replay must never route through
// the template fork path.
func (o *Options) recordSession(l obs.Local, spec *debpkg.Spec, inject int, mod func(*core.Config)) (*ttd.Session, dtRun) {
	seed := pkgSeed(o.Seed, spec)
	v, _ := reprotest.Pair(seed)
	img, pkgdir, imgHash := o.pkgImage(l, spec, "/build")
	cfg := o.dtConfig(img, pkgdir, seed, v)
	cfg.RingEvents = diagnoseRingEvents
	if inject > 0 {
		cfg.FaultInjectEntropy = inject
	}
	if mod != nil {
		mod(&cfg)
	}
	var seals []*core.Checkpoint
	cfg.CheckpointSink = func(cp *core.Checkpoint) {
		o.sc().ckptSealed.Add(l, 1)
		o.bookSealBytes(l, cp)
		seals = append(seals, cp)
	}
	res := o.runContainer(l, cfg, img, imgHash, checkpointEnv)
	sess := &ttd.Session{
		Cfg:   cfg,
		Reg:   registry(),
		Seals: seals,
		Trace: res.Events,
		Obs:   o.Obs(),
		Launch: func(c core.Config) *core.Result {
			return core.New(c).Run(registry(), "/bin/dpkg-buildpackage",
				[]string{"dpkg-buildpackage", "-b"}, checkpointEnv)
		},
	}
	return sess, dtRunFrom(res, spec, pkgdir)
}

// sameDivergence reports whether the bisect and the linear diagnoser named
// the same first divergent event: same comparable-stream index and the same
// event content on both sides (nil sides must agree too).
func sameDivergence(a, b *obs.Divergence) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	if a.Index != b.Index {
		return false
	}
	same := func(x, y *obs.Event) bool {
		if x == nil || y == nil {
			return x == nil && y == nil
		}
		return x.Kind == y.Kind && x.Pid == y.Pid && x.Num == y.Num &&
			x.Arg == y.Arg && x.Ret == y.Ret
	}
	return same(a.A, b.A) && same(a.B, b.B)
}

// BisectDiagnose is the gate behind `reprotest -bisect -inject-entropy N`:
// record the build twice (run B with the injected entropy perturbation),
// localize the first divergent event by checkpoint bisection, and check the
// answer against the linear diagnoser over the two full traces. ok requires
// agreement on the exact event AND the O(log n) bound — at most
// ceil(log2(seals))+1 window re-executions.
func (o *Options) BisectDiagnose(spec *debpkg.Spec, inject int) (report string, ok bool) {
	on := &Options{Seed: o.Seed, Checkpoints: true}
	l := obs.NewLocal()
	a, runA := on.recordSession(l, spec, 0, nil)
	if v, _ := runA.verdict(); v != "" {
		return fmt.Sprintf("reference build did not complete: %s", v), false
	}
	b, runB := on.recordSession(l, spec, inject, nil)
	if v, _ := runB.verdict(); v != "" {
		return fmt.Sprintf("perturbed build did not complete: %s", v), false
	}

	linear := obs.FirstDivergence(a.Trace, b.Trace)
	bres, err := a.Bisect(b)
	if err != nil {
		return fmt.Sprintf("bisect failed: %v", err), false
	}

	seals := len(a.Seals)
	if len(b.Seals) < seals {
		seals = len(b.Seals)
	}
	bound := int(math.Ceil(math.Log2(float64(seals)))) + 1
	agree := sameDivergence(bres.Divergence, linear)
	ok = agree && bres.WindowReplays <= bound

	report = fmt.Sprintf(
		"%s_%s: %d seals (run A %d, run B %d), injected entropy fault at draw %d\n"+
			"bisect: %d digest probes, window (%d, %d], %d window replays (bound %d)\n",
		spec.Name, spec.Version, seals, len(a.Seals), len(b.Seals), inject,
		bres.Probes, bres.LowOrdinal, bres.HighOrdinal, bres.WindowReplays, bound)
	switch {
	case bres.Divergence == nil && linear == nil:
		report += "no divergence found by either method"
		if inject > 0 {
			report += " (injection did not reach an entropy draw)"
			ok = false
		}
	case agree:
		report += fmt.Sprintf("bisect and linear diagnoser agree:\n%s", bres.Divergence)
	default:
		report += fmt.Sprintf("MISMATCH\nbisect:  %s\nlinear:  %s", bres.Divergence, linear)
	}
	if agree && bres.WindowReplays > bound {
		report += fmt.Sprintf("\nwindow replays %d exceed the O(log n) bound %d",
			bres.WindowReplays, bound)
	}
	return report, ok
}

// TTDStudy is the `benchtab -ttd` result: what dense delta checkpointing
// costs, what it buys a seek, and what bisection saves over linear replay.
type TTDStudy struct {
	Packages int
	Seals    int // seals recorded per reference run, summed

	// Equivalent counts packages whose delta-sealed build matched the
	// DisableDeltaSeals build bitwise (the ablation equivalence gate).
	Equivalent int

	// DeltaBytes is what the delta chains actually stored (base seal + fresh
	// bytes of every delta); FullBytes what the same chains would hold as
	// standalone full seals. Ratio = DeltaBytes/FullBytes.
	DeltaBytes int64
	FullBytes  int64
	Ratio      float64

	// ReplayedActions is a mid-build SeekTo's forward-replay distance when
	// restored from the seal chain; ColdActions the same seek forced to
	// replay from boot. Speedup = ColdActions/ReplayedActions — the
	// deterministic seek-cost ratio (kernel actions re-executed, a pure
	// function of the run). SeekNs/ColdNs are the wall times those replays
	// took, informational only: the study records packages in parallel, so
	// wall time carries scheduler noise the action counts do not.
	ReplayedActions int64
	ColdActions     int64
	Speedup         float64
	SeekNs          int64
	ColdNs          int64

	// BisectProbes/BisectReplays aggregate the entropy-injected bisections;
	// BisectAgree counts those landing on the linear diagnoser's event.
	BisectProbes  int
	BisectReplays int
	BisectAgree   int
}

// String renders the study for benchtab text output.
func (st *TTDStudy) String() string {
	return fmt.Sprintf(
		"ttd: %d packages, %d seals; delta/full equivalent %d/%d\n"+
			"seal bytes: delta %d vs full %d (ratio %.3f)\n"+
			"seek: %d actions replayed from seal chain vs %d cold (%.1fx); wall %.2f ms vs %.2f ms\n"+
			"bisect: %d probes, %d window replays, %s agree with linear",
		st.Packages, st.Seals, st.Equivalent, st.Packages,
		st.DeltaBytes, st.FullBytes, st.Ratio,
		st.ReplayedActions, st.ColdActions, st.Speedup,
		float64(st.SeekNs)/1e6, float64(st.ColdNs)/1e6,
		st.BisectProbes, st.BisectReplays, stats.Pct(st.BisectAgree, st.Packages))
}

// RunTTDStudy measures the time-travel debug service over specs: the
// delta-seal ablation equivalence, chain storage cost against full seals,
// seek latency against cold replay, and bisect cost against linear
// diagnosis.
func (o *Options) RunTTDStudy(specs []*debpkg.Spec) *TTDStudy {
	on := &Options{Seed: o.Seed, Jobs: o.Jobs, Checkpoints: true}
	st := &TTDStudy{}
	type tOut struct {
		ok, equivalent, agree  bool
		seals                  int
		deltaBytes, fullBytes  int64
		seekNs, coldNs         int64
		replayed, coldReplayed int64
		probes, replays        int
	}
	outs := make([]tOut, len(specs))
	o.forEach(len(specs), func(l obs.Local, i int) {
		spec := specs[i]
		sess, run := on.recordSession(l, spec, 0, nil)
		if v, _ := run.verdict(); v != "" {
			return
		}
		full, fullRun := on.recordSession(l, spec, 0, func(c *core.Config) {
			c.DisableDeltaSeals = true
		})
		out := tOut{ok: true, seals: len(sess.Seals)}
		out.equivalent = run.exit == fullRun.exit && run.wall == fullRun.wall &&
			bytes.Equal(run.deb, fullRun.deb) && bytes.Equal(run.log, fullRun.log)

		// Chain storage: the delta chain's stored bytes vs the standalone
		// full seals the ablated run took at the same instants.
		for _, cp := range sess.Seals {
			s := cp.Kernel().FSSealStats()
			if s.Delta {
				out.deltaBytes += s.FreshBytes
			} else {
				out.deltaBytes += s.TotalBytes
			}
		}
		for _, cp := range full.Seals {
			out.fullBytes += cp.Kernel().FSSealStats().TotalBytes
		}

		// Seek to the run's logical midpoint, once from the seal chain and
		// once forced cold (a sealless session replays from boot).
		if len(sess.Trace) > 0 {
			mid := sess.Trace[len(sess.Trace)/2].LTime
			if view, err := sess.SeekTo(mid); err == nil {
				out.seekNs = view.ReplayedNs
				out.replayed = view.ReplayedActions
			}
			cold := *sess
			cold.Seals = nil
			if view, err := cold.SeekTo(mid); err == nil {
				out.coldNs = view.ReplayedNs
				out.coldReplayed = view.ReplayedActions
			}
		}

		// Bisect against an entropy-injected recording of the same build.
		inj, injRun := on.recordSession(l, spec, 1, nil)
		if v, _ := injRun.verdict(); v == "" {
			if bres, err := sess.Bisect(inj); err == nil {
				out.probes = bres.Probes
				out.replays = bres.WindowReplays
				out.agree = sameDivergence(bres.Divergence,
					obs.FirstDivergence(sess.Trace, inj.Trace))
			}
		}
		outs[i] = out
	})
	for _, out := range outs {
		if !out.ok {
			continue
		}
		st.Packages++
		st.Seals += out.seals
		if out.equivalent {
			st.Equivalent++
		}
		st.DeltaBytes += out.deltaBytes
		st.FullBytes += out.fullBytes
		st.SeekNs += out.seekNs
		st.ColdNs += out.coldNs
		st.ReplayedActions += out.replayed
		st.ColdActions += out.coldReplayed
		st.BisectProbes += out.probes
		st.BisectReplays += out.replays
		if out.agree {
			st.BisectAgree++
		}
	}
	if st.FullBytes > 0 {
		st.Ratio = float64(st.DeltaBytes) / float64(st.FullBytes)
	}
	if st.ReplayedActions > 0 {
		st.Speedup = float64(st.ColdActions) / float64(st.ReplayedActions)
	}
	return st
}
