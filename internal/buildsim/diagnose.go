// First-divergence diagnosis for disagreeing double builds: run the same
// package twice under DetTrace — optionally perturbing one run — and align
// the two flight-recorder rings to pinpoint the first event where the
// container histories part ways. This is the debugging story the recorder
// exists for: a failed reproducibility verdict names the output bytes that
// differ, the diagnoser names the first *cause* visible in the event stream
// (a syscall with a different argument digest, an entropy draw with a
// different payload, a scheduler decision that went the other way).
package buildsim

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/debpkg"
	"repro/internal/obs"
	"repro/internal/reprotest"
)

// DiagnoseReport is the outcome of one diagnostic double build.
type DiagnoseReport struct {
	Spec *debpkg.Spec

	// VerdictA/VerdictB are the two runs' failure verdicts ("" = completed).
	VerdictA, VerdictB Verdict

	// OutputIdentical reports whether the two .debs (and build logs) matched
	// bitwise. With no injected perturbation this must be true.
	OutputIdentical bool

	// EventsA/EventsB are the rings' retained event counts.
	EventsA, EventsB int

	// Divergence is the first aligned event where the streams disagree, nil
	// when the rings match event for event.
	Divergence *obs.Divergence
}

// String renders the report for reprotest -diagnose.
func (r *DiagnoseReport) String() string {
	s := fmt.Sprintf("%s_%s: ", r.Spec.Name, r.Spec.Version)
	if r.VerdictA != "" || r.VerdictB != "" {
		s += fmt.Sprintf("builds did not complete (run A: %q, run B: %q)\n", r.VerdictA, r.VerdictB)
	} else if r.OutputIdentical {
		s += "outputs bitwise identical\n"
	} else {
		s += "outputs DIFFER\n"
	}
	s += fmt.Sprintf("recorded events: %d (run A) vs %d (run B)\n", r.EventsA, r.EventsB)
	if r.Divergence == nil {
		s += "event streams identical: no divergence to report"
	} else {
		s += r.Divergence.String()
	}
	return s
}

// Diagnose builds spec twice under DetTrace with the SAME variation — so any
// divergence is a real determinism failure, not a varied input — and aligns
// the flight-recorder rings. inject > 0 perturbs the second run's inject'th
// entropy draw (core.Config.FaultInjectEntropy), the seeded-fault mode that
// demonstrates the diagnoser localizing a divergence to its exact first
// event.
// diagnoseRingEvents sizes the diagnostic runs' flight-recorder rings. A
// diagnosis wants the COMPLETE event stream — a divergence whose first event
// rotated out of a default-sized ring would be reported at the wrong place —
// so both runs get a ring far above any modeled build's event count.
// RingEvents is excluded from ConfigHash (behaviourally invisible), so the
// bigger ring cannot itself perturb the runs.
const diagnoseRingEvents = 1 << 21

func (o *Options) Diagnose(spec *debpkg.Spec, inject int) *DiagnoseReport {
	seed := pkgSeed(o.Seed, spec)
	v, _ := reprotest.Pair(seed)
	l := obs.NewLocal()
	a := o.buildDT(l, spec, seed, v, func(c *core.Config) {
		c.RingEvents = diagnoseRingEvents
	})
	b := o.buildDT(l, spec, seed, v, func(c *core.Config) {
		c.RingEvents = diagnoseRingEvents
		if inject > 0 {
			c.FaultInjectEntropy = inject
		}
	})

	r := &DiagnoseReport{
		Spec:    spec,
		EventsA: len(a.trace),
		EventsB: len(b.trace),
	}
	r.VerdictA, _ = a.verdict()
	r.VerdictB, _ = b.verdict()
	r.OutputIdentical = r.VerdictA == "" && r.VerdictB == "" &&
		bytes.Equal(a.deb, b.deb) && bytes.Equal(a.log, b.log)
	r.Divergence = obs.FirstDivergence(a.trace, b.trace)
	return r
}
