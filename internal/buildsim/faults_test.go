package buildsim

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/debpkg"
	"repro/internal/obs"
	"repro/internal/reprotest"
)

// TestFarmFaultEquivalence is the farm-level determinism contract: a farm
// with deterministic faults injected — crashes, corrupted checkpoints, lost
// restore attempts — produces output DeepEqual to the fault-free
// checkpointed farm, across worker-pool sizes.
func TestFarmFaultEquivalence(t *testing.T) {
	specs := debpkg.Universe(3, 8)
	ref := (&Options{Seed: 3, Jobs: 1, Checkpoints: true}).BuildAll(specs, nil)

	for _, jobs := range []int{1, 4, 16} {
		o := &Options{Seed: 3, Jobs: jobs, Checkpoints: true, InjectFaults: true}
		outs := o.BuildAll(specs, nil)
		if !reflect.DeepEqual(outs, ref) {
			for i := range outs {
				if !reflect.DeepEqual(outs[i], ref[i]) {
					t.Errorf("jobs=%d: %s diverged under faults: %+v vs %+v",
						jobs, specs[i].Name, outs[i], ref[i])
				}
			}
			t.Fatalf("jobs=%d: faulty farm output != fault-free farm output", jobs)
		}
		fst := o.FaultStats()
		if jobs == 1 {
			// The plans must actually exercise the machinery, not no-op.
			if fst.Crashes == 0 || fst.Restores == 0 {
				t.Fatalf("fault plans never fired: %+v", fst)
			}
			t.Logf("faults exercised: %+v", fst)
		}
	}
}

// TestCheckpointFarmVerdictsMatchPlain: checkpoint mode is its own bitwise
// equivalence class (the trampoline's execs advance virtual time), but it
// must never change what the farm measures — each package's verdicts.
func TestCheckpointFarmVerdictsMatchPlain(t *testing.T) {
	specs := debpkg.Universe(3, 8)
	plain := (&Options{Seed: 3, Jobs: 1}).BuildAll(specs, nil)
	ckpt := (&Options{Seed: 3, Jobs: 1, Checkpoints: true}).BuildAll(specs, nil)
	for i := range plain {
		if plain[i].BL != ckpt[i].BL || plain[i].DT != ckpt[i].DT ||
			plain[i].UnsupReason != ckpt[i].UnsupReason {
			t.Errorf("%s: verdicts changed under checkpointing: %s/%s vs %s/%s",
				specs[i].Name, plain[i].BL, plain[i].DT, ckpt[i].BL, ckpt[i].DT)
		}
	}
}

// TestCheckpointsOffSealsNothing guards the ablation: a default farm never
// touches the checkpoint plane at all.
func TestCheckpointsOffSealsNothing(t *testing.T) {
	o := &Options{Seed: 3, Jobs: 2}
	o.BuildAll(debpkg.Universe(3, 3), nil)
	if fst := o.FaultStats(); fst != (FaultStats{}) {
		t.Fatalf("checkpoint plane active in a default farm: %+v", fst)
	}
}

// sealGeometry runs one uninterrupted checkpoint-mode build of spec under o
// and returns each seal's action count, indexed by ordinal-1. Tests use it
// to aim crashes and corruption at specific seals without hardcoding the
// build's checkpoint layout.
func sealGeometry(t *testing.T, o *Options, spec *debpkg.Spec) []int64 {
	t.Helper()
	l := obs.NewLocal()
	seed := pkgSeed(o.Seed, spec)
	v1, _ := reprotest.Pair(seed)
	img, pkgdir, imgHash := o.pkgImage(l, spec, "/build")
	cfg := o.dtConfig(img, pkgdir, seed, v1)
	var acts []int64
	cfg.CheckpointSink = func(cp *core.Checkpoint) { acts = append(acts, cp.Actions()) }
	o.runContainer(l, cfg, img, imgHash, checkpointEnv)
	if len(acts) < 3 {
		t.Fatalf("build sealed only %d checkpoints; geometry tests need at least 3", len(acts))
	}
	return acts
}

// crashOne runs one package's reference build and a mid-build-crashed build
// through o, returning both. plan receives the reference run and the seal
// geometry (action count per ordinal) to aim the fault.
func crashOne(t *testing.T, o *Options, plan func(ref dtRun, seals []int64) reprotest.FaultPlan) (ref, got dtRun) {
	t.Helper()
	spec := debpkg.Universe(1, 1)[0]
	l := obs.NewLocal()
	seed := pkgSeed(o.Seed, spec)
	v1, _ := reprotest.Pair(seed)
	ref = o.buildDT(l, spec, seed, v1, nil)
	if v, _ := ref.verdict(); v != "" {
		t.Fatalf("reference build failed: %s", v)
	}
	seals := sealGeometry(t, o, spec)
	img, pkgdir, imgHash := o.pkgImage(l, spec, "/build")
	cfg := o.dtConfig(img, pkgdir, seed, v1)
	got = o.buildDTFault(l, spec, plan(ref, seals), cfg, img, imgHash, pkgdir)
	return ref, got
}

// lastGapCrash aims a crash between the last two seals and names the
// freshest ordinal at that point: the sharpest place to test seal
// corruption, because exactly one fallback step reaches a valid older seal.
func lastGapCrash(seals []int64) (crashAt int64, freshest int) {
	lo, hi := seals[len(seals)-2], seals[len(seals)-1]
	return (lo + hi) / 2, len(seals) - 1
}

func assertSameBits(t *testing.T, ref, got dtRun) {
	t.Helper()
	if got.exit != ref.exit || got.wall != ref.wall || got.actions != ref.actions ||
		!bytes.Equal(got.deb, ref.deb) || !bytes.Equal(got.log, ref.log) {
		t.Fatalf("recovered build diverged: exit %d/%d wall %d/%d actions %d/%d",
			got.exit, ref.exit, got.wall, ref.wall, got.actions, ref.actions)
	}
}

// TestCheckpointPinSurvivesPressure: with a one-slot checkpoint cache, every
// older seal is evicted — but the in-flight job's freshest seal is pinned,
// so a crash still restores from checkpoint instead of replaying cold.
func TestCheckpointPinSurvivesPressure(t *testing.T) {
	o := &Options{Seed: 1, Checkpoints: true, CheckpointCacheSize: 1}
	ref, got := crashOne(t, o, func(ref dtRun, _ []int64) reprotest.FaultPlan {
		return reprotest.FaultPlan{CrashAtAction: ref.actions / 2}
	})
	assertSameBits(t, ref, got)
	fst := o.FaultStats()
	if fst.Crashes != 1 || fst.Restores != 1 || fst.ColdReplays != 0 {
		t.Fatalf("want exactly one checkpoint restore: %+v", fst)
	}
	if fst.CkptEvictions == 0 {
		t.Fatalf("one-slot cache saw no evictions — pressure never happened: %+v", fst)
	}
}

// TestCorruptSealFallsBackToOlder: the freshest seal is corrupted, so
// validation rejects it and recovery restores from the next-older seal —
// redoing more work, landing on the same bits.
func TestCorruptSealFallsBackToOlder(t *testing.T) {
	o := &Options{Seed: 1, Checkpoints: true}
	ref, got := crashOne(t, o, func(_ dtRun, seals []int64) reprotest.FaultPlan {
		// Corrupt the seal that will be freshest at the crash; the Invalid
		// assertion below fails loudly if the aim drifts.
		crashAt, freshest := lastGapCrash(seals)
		return reprotest.FaultPlan{CrashAtAction: crashAt, CorruptCheckpoint: freshest}
	})
	assertSameBits(t, ref, got)
	fst := o.FaultStats()
	if fst.Invalid != 1 {
		t.Fatalf("corrupted seal was never offered to a restore: %+v", fst)
	}
	if fst.Restores != 1 || fst.ColdReplays != 0 {
		t.Fatalf("want a fallback restore from the older seal: %+v", fst)
	}
}

// TestRetryExhaustionDegradesToColdReplay: a lost restore attempt plus a
// corrupted seal exhaust a two-attempt budget, so recovery degrades to a
// cold replay — and still lands on the reference bits.
func TestRetryExhaustionDegradesToColdReplay(t *testing.T) {
	o := &Options{Seed: 1, Checkpoints: true, CheckpointRetries: 2}
	ref, got := crashOne(t, o, func(_ dtRun, seals []int64) reprotest.FaultPlan {
		crashAt, freshest := lastGapCrash(seals)
		return reprotest.FaultPlan{
			CrashAtAction: crashAt, CorruptCheckpoint: freshest, FailRestore: true,
		}
	})
	assertSameBits(t, ref, got)
	fst := o.FaultStats()
	if fst.RestoreFailed != 1 || fst.Invalid != 1 {
		t.Fatalf("faults did not consume the retry budget: %+v", fst)
	}
	if fst.ColdReplays != 1 || fst.Restores != 0 {
		t.Fatalf("want degradation to exactly one cold replay: %+v", fst)
	}
}

// TestInjectedRestoreFailureRetries: a planned restore failure consumes one
// bounded retry and the next attempt restores the same seal.
func TestInjectedRestoreFailureRetries(t *testing.T) {
	o := &Options{Seed: 1, Checkpoints: true}
	ref, got := crashOne(t, o, func(ref dtRun, _ []int64) reprotest.FaultPlan {
		return reprotest.FaultPlan{CrashAtAction: ref.actions / 2, FailRestore: true}
	})
	assertSameBits(t, ref, got)
	fst := o.FaultStats()
	if fst.RestoreFailed != 1 || fst.Restores != 1 || fst.Attempts != 2 {
		t.Fatalf("want fail-then-restore in two attempts: %+v", fst)
	}
	if fst.BackoffNs != BackoffBaseNs+2*BackoffBaseNs {
		t.Fatalf("backoff not exponential: %d", fst.BackoffNs)
	}
}

// TestRunFaultStudy pins the X15 headline: every crashed package recovers to
// the reference bits, and checkpoint restores redo less work than replays.
func TestRunFaultStudy(t *testing.T) {
	st := (&Options{Seed: 3, Jobs: 2}).RunFaultStudy(debpkg.Universe(3, 6))
	if st.Packages == 0 || st.Crashed == 0 {
		t.Fatalf("study crashed nothing: %+v", st)
	}
	if st.Identical != st.Crashed {
		t.Fatalf("recovery changed bits: %d/%d identical", st.Identical, st.Crashed)
	}
	if st.Restores == 0 {
		t.Fatalf("no checkpoint restores: %+v", st)
	}
	if st.Speedup <= 1 {
		t.Fatalf("recovery no faster than replay: %+v", st)
	}
	t.Logf("%s", st)
}
