package buildsim

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/debpkg"
)

// wsNorm strips the only fields workspaces may legitimately move — the
// physical wall time and its derivatives, plus the workspace accounting
// itself. Everything else (verdicts, .deb-derived classes, logical event
// counts, syscall rates of the native baseline) must be bitwise stable.
func wsNorm(outs []Out) []Out {
	c := append([]Out(nil), outs...)
	for i := range c {
		c[i].DTTime = 0
		c[i].Slowdown = 0
		c[i].Events.WsForks = 0
		c[i].Events.WsMerges = 0
		c[i].Events.WsConflicts = 0
	}
	return c
}

// TestBuildAllWorkspaceIndependence is the ISSUE 7 farm acceptance gate:
// BuildAll results are DeepEqual across workspaces on/off, worker-pool
// sizes and distributed node counts. Workspaces must be invisible to every
// output byte; only threaded packages' wall time moves, and always in the
// right direction.
func TestBuildAllWorkspaceIndependence(t *testing.T) {
	specs := debpkg.Universe(9, 18)
	ref := (&Options{Seed: 42, Jobs: 1}).BuildAll(specs, nil)
	threaded := 0
	for _, o := range ref {
		if o.Threaded {
			threaded++
		}
	}
	if threaded == 0 {
		t.Fatal("sample has no threaded (javac) packages — the matrix would test nothing")
	}
	refN := wsNorm(ref)

	type cfg struct {
		name string
		opts *Options
	}
	var cfgs []cfg
	for _, ws := range []bool{false, true} {
		for _, jobs := range []int{1, 4, 16} {
			cfgs = append(cfgs, cfg{
				name: fmt.Sprintf("jobs=%d noWs=%v", jobs, ws),
				opts: &Options{Seed: 42, Jobs: jobs, NoWorkspaces: ws},
			})
		}
		for _, nodes := range []int{1, 3} {
			cfgs = append(cfgs, cfg{
				name: fmt.Sprintf("nodes=%d noWs=%v", nodes, ws),
				opts: &Options{Seed: 42, Distributed: true, Nodes: nodes, NoWorkspaces: ws},
			})
		}
	}
	for _, c := range cfgs {
		o := c.opts
		outs := o.BuildAll(specs, nil)
		if !reflect.DeepEqual(wsNorm(outs), refN) {
			for i := range outs {
				if !reflect.DeepEqual(wsNorm(outs[i:i+1]), refN[i:i+1]) {
					t.Fatalf("%s: package %d (%s) diverges:\ngot:  %+v\nwant: %+v",
						c.name, i, specs[i].Name, outs[i], ref[i])
				}
			}
			t.Fatalf("%s: results diverge", c.name)
		}
		// The physical side: with workspaces, threaded packages must not be
		// slower than the reference (also ws-on); without, not faster.
		for i, out := range outs {
			if ref[i].DT != Reproducible {
				continue
			}
			if !out.Threaded {
				if out.DTTime != ref[i].DTTime {
					t.Errorf("%s: %s is single-threaded but DTTime moved: %d vs %d",
						c.name, specs[i].Name, out.DTTime, ref[i].DTTime)
				}
				continue
			}
			if o.NoWorkspaces && out.DTTime < ref[i].DTTime {
				t.Errorf("%s: threaded %s faster serialized (%d) than with workspaces (%d)",
					c.name, specs[i].Name, out.DTTime, ref[i].DTTime)
			}
			if !o.NoWorkspaces && out.DTTime != ref[i].DTTime {
				t.Errorf("%s: threaded %s ws-on DTTime not stable: %d vs %d",
					c.name, specs[i].Name, out.DTTime, ref[i].DTTime)
			}
		}
	}
}

// TestWorkspaceStudySmoke runs the X17 farm study on a small sample: every
// completed package must be bitwise identical across the ablation, threaded
// packages must recover wall time, and no merge may conflict.
func TestWorkspaceStudySmoke(t *testing.T) {
	o := &Options{Seed: 11, Jobs: 8}
	st := o.RunWorkspaceStudy(debpkg.Universe(11, 24))
	t.Logf("\n%s", st)
	if st.Packages == 0 || st.Threaded == 0 {
		t.Fatalf("study built %d packages (%d threaded) — sample too small", st.Packages, st.Threaded)
	}
	if st.Identical != st.Packages {
		t.Errorf("only %d/%d packages identical across the workspace ablation", st.Identical, st.Packages)
	}
	if st.ThreadedSpeedup < 1.0 {
		t.Errorf("threaded packages slower with workspaces: %.2fx", st.ThreadedSpeedup)
	}
	if st.Conflicts != 0 {
		t.Errorf("%d merge conflicts; builds write disjoint paths and must never conflict", st.Conflicts)
	}
	if st.Threaded > 0 && st.AvgForks == 0 {
		t.Errorf("threaded packages recorded no workspace forks")
	}
}
