package buildsim

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/debpkg"
	"repro/internal/hashdeep"
	"repro/internal/obs"
)

// ttdSpec returns a package the ttd gates can record: the same universe
// package the `reprotest -bisect` CLI gate exercises.
func ttdSpec(t *testing.T) *debpkg.Spec {
	t.Helper()
	specs := debpkg.Universe(1, 1)
	if len(specs) == 0 {
		t.Fatal("empty universe")
	}
	return specs[0]
}

// TestTTDDeltaEquivalence is the CI equivalence gate: a build recorded with
// delta checkpoint seals is bitwise identical to the same build recorded with
// DisableDeltaSeals — same artifacts, same wall time, same per-seal ring
// digests — while the delta chain stores strictly fewer bytes.
func TestTTDDeltaEquivalence(t *testing.T) {
	spec := ttdSpec(t)
	o := &Options{Seed: 1, Checkpoints: true}
	l := obs.NewLocal()

	d, dRun := o.recordSession(l, spec, 0, nil)
	if v, _ := dRun.verdict(); v != "" {
		t.Fatalf("delta-sealed build did not complete: %s", v)
	}
	f, fRun := o.recordSession(l, spec, 0, func(c *core.Config) { c.DisableDeltaSeals = true })
	if v, _ := fRun.verdict(); v != "" {
		t.Fatalf("full-sealed build did not complete: %s", v)
	}

	if dRun.exit != fRun.exit || dRun.wall != fRun.wall ||
		!bytes.Equal(dRun.deb, fRun.deb) || !bytes.Equal(dRun.log, fRun.log) {
		t.Errorf("delta seals changed the build: exit %d/%d wall %d/%d deb equal=%v log equal=%v",
			dRun.exit, fRun.exit, dRun.wall, fRun.wall,
			bytes.Equal(dRun.deb, fRun.deb), bytes.Equal(dRun.log, fRun.log))
	}
	if len(d.Seals) == 0 || len(d.Seals) != len(f.Seals) {
		t.Fatalf("seal counts: delta %d, full %d", len(d.Seals), len(f.Seals))
	}
	var deltaBytes, fullBytes int64
	for i := range d.Seals {
		if d.Seals[i].Digest() != f.Seals[i].Digest() {
			t.Errorf("seal %d: ring digests diverge between the two recordings", i+1)
		}
		ds := d.Seals[i].Kernel().FSSealStats()
		fs := f.Seals[i].Kernel().FSSealStats()
		if fs.Delta || (i > 0 && !ds.Delta) {
			t.Errorf("seal %d: wrong seal shapes (delta=%v ablated=%v)", i+1, ds.Delta, fs.Delta)
		}
		if ds.Delta {
			deltaBytes += ds.FreshBytes
		} else {
			deltaBytes += ds.TotalBytes
		}
		fullBytes += fs.TotalBytes
	}
	if deltaBytes >= fullBytes {
		t.Errorf("delta chain stored %d bytes, full seals %d; chaining bought nothing", deltaBytes, fullBytes)
	}
}

// TestSeekChainMatchesCold: SeekTo from the seal chain must observe the exact
// state a cold replay to the same instant observes — filesystem, ring prefix,
// entropy cursor, logical clock — while replaying strictly fewer actions.
func TestSeekChainMatchesCold(t *testing.T) {
	spec := ttdSpec(t)
	o := &Options{Seed: 1, Checkpoints: true}
	sess, run := o.recordSession(obs.NewLocal(), spec, 0, nil)
	if v, _ := run.verdict(); v != "" {
		t.Fatalf("build did not complete: %s", v)
	}
	if len(sess.Seals) < 2 || len(sess.Trace) == 0 {
		t.Fatalf("recording too small: %d seals, %d events", len(sess.Seals), len(sess.Trace))
	}
	mid := sess.Trace[len(sess.Trace)/2].LTime

	warm, err := sess.SeekTo(mid)
	if err != nil {
		t.Fatalf("seek from chain: %v", err)
	}
	cold := *sess
	cold.Seals = nil
	cview, err := cold.SeekTo(mid)
	if err != nil {
		t.Fatalf("cold seek: %v", err)
	}

	if warm.SealOrdinal == 0 {
		t.Errorf("chain seek replayed cold despite %d seals", len(sess.Seals))
	}
	if cview.SealOrdinal != 0 {
		t.Errorf("sealless seek restored ordinal %d", cview.SealOrdinal)
	}
	if !warm.Halted || !cview.Halted {
		t.Fatalf("mid-trace seek did not halt: warm=%v cold=%v", warm.Halted, cview.Halted)
	}
	if warm.LTime != cview.LTime || warm.Actions != cview.Actions ||
		warm.EntropyDraws != cview.EntropyDraws {
		t.Errorf("seek states differ: ltime %d/%d actions %d/%d draws %d/%d",
			warm.LTime, cview.LTime, warm.Actions, cview.Actions,
			warm.EntropyDraws, cview.EntropyDraws)
	}
	if got, want := hashdeep.HashSubtree(warm.FS, "/").Total(),
		hashdeep.HashSubtree(cview.FS, "/").Total(); got != want {
		t.Errorf("seek filesystems differ: %s vs %s", got, want)
	}
	if len(warm.Events) != len(cview.Events) {
		t.Fatalf("ring prefixes differ in length: %d vs %d", len(warm.Events), len(cview.Events))
	}
	for i := range warm.Events {
		if warm.Events[i] != cview.Events[i] {
			t.Fatalf("ring prefix event %d differs between chain and cold seek", i)
		}
	}
	if warm.ReplayedActions >= cview.ReplayedActions {
		t.Errorf("chain seek replayed %d actions, cold %d; the chain bought nothing",
			warm.ReplayedActions, cview.ReplayedActions)
	}

	// The session's own observability saw both seeks — and only the session's:
	// counters live on the debug registry, never the guest run's.
	if sess.Obs != nil {
		if n := sess.Obs.Counter("ttd_seek_total").Value(); n < 2 {
			t.Errorf("ttd_seek_total = %d, want >= 2", n)
		}
	}
}

// TestSeekStepsDownPastCorruption: a corrupted mid-chain delta seal poisons
// its suffix, and SeekTo degrades to the newest seal whose whole chain still
// validates — observing the identical state.
func TestSeekStepsDownPastCorruption(t *testing.T) {
	spec := ttdSpec(t)
	o := &Options{Seed: 1, Checkpoints: true}
	ref, run := o.recordSession(obs.NewLocal(), spec, 0, nil)
	if v, _ := run.verdict(); v != "" {
		t.Fatalf("build did not complete: %s", v)
	}
	if len(ref.Seals) < 3 {
		t.Skipf("need >=3 seals to corrupt mid-chain, got %d", len(ref.Seals))
	}
	corruptAt := len(ref.Seals)/2 + 1 // ordinal, 1-based
	bad, badRun := o.recordSession(obs.NewLocal(), spec, 0, func(c *core.Config) {
		c.FaultCorruptCheckpoint = corruptAt
	})
	if v, _ := badRun.verdict(); v != "" {
		t.Fatalf("corrupted-seal build did not complete: %s", v)
	}

	// Seek to an instant after the last seal: the intact session restores its
	// newest seal; the corrupted one must step down below the corruption.
	target := bad.Seals[len(bad.Seals)-1].LNow() + 1
	want, err := ref.SeekTo(target)
	if err != nil {
		t.Fatalf("seek on intact chain: %v", err)
	}
	got, err := bad.SeekTo(target)
	if err != nil {
		t.Fatalf("seek on corrupted chain: %v", err)
	}
	if got.SealOrdinal >= corruptAt {
		t.Errorf("seek restored poisoned ordinal %d (corruption at %d)", got.SealOrdinal, corruptAt)
	}
	if want.SealOrdinal != len(ref.Seals) {
		t.Errorf("intact seek restored ordinal %d, want newest %d", want.SealOrdinal, len(ref.Seals))
	}
	if got.LTime != want.LTime || got.Actions != want.Actions {
		t.Errorf("degraded seek diverged: ltime %d/%d actions %d/%d",
			got.LTime, want.LTime, got.Actions, want.Actions)
	}
	if a, b := hashdeep.HashSubtree(got.FS, "/").Total(),
		hashdeep.HashSubtree(want.FS, "/").Total(); a != b {
		t.Errorf("degraded seek filesystem differs: %s vs %s", a, b)
	}
}

// TestBisectMatchesLinearDiagnose is the `reprotest -bisect` gate run as a
// test: checkpoint bisection of an entropy-injected divergence must land on
// the exact event the linear diagnoser reports, within the O(log n)
// window-replay bound.
func TestBisectMatchesLinearDiagnose(t *testing.T) {
	o := &Options{Seed: 1}
	report, ok := o.BisectDiagnose(ttdSpec(t), 1)
	if !ok {
		t.Fatalf("bisect gate failed:\n%s", report)
	}
	if !strings.Contains(report, "agree") {
		t.Errorf("gate passed but report does not state agreement:\n%s", report)
	}
}
