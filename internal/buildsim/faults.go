// Crash-consistent checkpointing and deterministic fault injection for the
// build farm: the robustness half of the evaluation.
//
// In checkpoint mode every DetTrace build runs its driver as a trampoline
// (workload.dpkgBuildpackageMain): at each build-phase boundary the driver
// journals its progress and self-execs, handing the kernel a quiescent
// traced stop to seal a restorable checkpoint at. Seals land in a bounded
// farm-wide LRU; the in-flight job pins its freshest seal so cache pressure
// can never evict the one checkpoint a crash is about to need.
//
// Faults are scheduled on the container's logical clock (reprotest.FaultPlan
// — an action count to die at, a checkpoint ordinal to corrupt, a restore
// attempt to lose), so every failure is exactly reproducible. A crashed job
// restores from its freshest valid seal with bounded retries and
// exponential virtual-time backoff, falling back to older seals on
// validation failure and to a full cold replay when no usable seal remains.
// The determinism contract makes every path land on the same bits: a
// resumed run is bitwise-identical to the uninterrupted run (pinned in
// internal/core), and a cold replay is just the uninterrupted run — so the
// farm's output is DeepEqual with faults on and off, which faults_test.go
// pins across worker-pool sizes.
package buildsim

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/debpkg"
	"repro/internal/derive"
	"repro/internal/fs"
	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/reprotest"
	"repro/internal/stats"
)

// DefaultCheckpointRetries bounds restore attempts per crashed job when
// Options.CheckpointRetries is zero.
const DefaultCheckpointRetries = 3

// DefaultCheckpointCacheSize bounds the farm's checkpoint LRU when
// Options.CheckpointCacheSize is zero. Checkpoints pin a full filesystem
// clone each, so the cap is deliberately modest: builds seal a handful of
// ordinals and only in-flight jobs ever read them back.
const DefaultCheckpointCacheSize = 32

// BackoffBaseNs is the first retry's virtual-time backoff; each further
// attempt doubles it. The backoff is recovery bookkeeping (it models the
// farm scheduler waiting out a flaky worker) charged to farm_backoff_ns —
// it never advances any container's clock, so results cannot see it.
const BackoffBaseNs = int64(250 * 1e6)

// checkpointEnv is containerEnv plus the trampoline gate: checkpoint-mode
// builds are their own equivalence class, compared only against other
// checkpoint-mode builds.
var checkpointEnv = append(append([]string{}, containerEnv...), "DETTRACE_CHECKPOINT=1")

// jobCkpts is one build's window into the farm checkpoint cache, addressed
// by derive.SealKey — the same (state, job, ordinal) scheme the distributed
// farm's shard store uses. The sink runs inside the container's kernel loop
// (single-threaded per job); it keeps exactly one pin — on the freshest
// seal — so older ordinals age out under pressure while the seal a crash
// would restore from cannot.
type jobCkpts struct {
	o      *Options
	l      obs.Local
	state  derive.Key
	job    uint64
	latest int
}

func (j *jobCkpts) key(ordinal int) derive.SealKey {
	return derive.SealKey{State: j.state, Job: j.job, Ordinal: ordinal}
}

func (j *jobCkpts) sink(cp *core.Checkpoint) {
	j.o.sc().ckptSealed.Add(j.l, 1)
	j.o.bookSealBytes(j.l, cp)
	cache := j.o.caches().checkpoints
	cache.putPinned(j.key(cp.Ordinal()), cp)
	if j.latest > 0 {
		cache.unpin(j.key(j.latest))
	}
	j.latest = cp.Ordinal()
}

// get returns the job's seal with the given ordinal, or nil if it was never
// sealed or has been evicted.
func (j *jobCkpts) get(ordinal int) *core.Checkpoint {
	v, ok := j.o.caches().checkpoints.peek(j.key(ordinal))
	if !ok {
		return nil
	}
	return v.(*core.Checkpoint)
}

// release drops the job's last pin once the build is settled.
func (j *jobCkpts) release() {
	if j.latest > 0 {
		j.o.caches().checkpoints.unpin(j.key(j.latest))
		j.latest = 0
	}
}

// buildDTFault runs one checkpoint-mode DetTrace build under plan. A zero
// plan is the fault-free checkpointed build: same trampoline, same seals,
// no crash. Otherwise the run dies at the planned action and is recovered
// through recoverJob; either way the returned observables must be the bits
// the uninterrupted run would have produced.
func (o *Options) buildDTFault(l obs.Local, spec *debpkg.Spec, plan reprotest.FaultPlan, cfg core.Config, img *fs.Image, imgHash uint64, pkgdir string) dtRun {
	j := &jobCkpts{o: o, l: l, job: o.jobSeq.Add(1),
		state: derive.KeyFor(imgHash, core.ConfigHash(cfg))}
	defer j.release()

	runCfg := cfg
	runCfg.CheckpointSink = j.sink
	runCfg.FaultInjectCrash = plan.CrashAtAction
	runCfg.FaultCorruptCheckpoint = plan.CorruptCheckpoint
	res := o.runContainer(l, runCfg, img, imgHash, checkpointEnv)
	if res.Err != nil && errors.Is(res.Err, kernel.ErrInjectedCrash) {
		o.sc().crashes.Add(l, 1)
		res = o.recoverJob(l, j, plan, cfg, img, imgHash, res.WallTime)
	}
	return dtRunFrom(res, spec, pkgdir)
}

// recoverJob brings a crashed job back: restore from the freshest seal,
// retrying with exponential virtual-time backoff up to the retry bound,
// stepping down to older seals when validation rejects one, and degrading
// to a cold replay when no seal survives. Every exit produces the
// uninterrupted run's bits. crashWall is the crashed run's virtual time of
// death; the gap between it and the restored seal is the work executed
// twice, charged to farm_redone_ns.
func (o *Options) recoverJob(l obs.Local, j *jobCkpts, plan reprotest.FaultPlan, cfg core.Config, img *fs.Image, imgHash uint64, crashWall int64) *core.Result {
	sc := o.sc()
	retries := o.CheckpointRetries
	if retries <= 0 {
		retries = DefaultCheckpointRetries
	}
	// The recovery deliberately clears the fault knobs: the replacement
	// worker must finish the build, not re-die. Checkpoint validation
	// (core.Resume's recoveryHash) accounts for the cleared crash knob.
	cfg.CheckpointSink = j.sink
	cfg.FaultInjectCrash = 0
	cfg.FaultCorruptCheckpoint = 0

	ordinal := j.latest
	for attempt := 0; attempt < retries && ordinal > 0; attempt++ {
		sc.restoreAttempts.Add(l, 1)
		sc.backoffNs.Add(l, BackoffBaseNs<<attempt)
		if plan.FailRestore && attempt == 0 {
			sc.restoreFailures.Add(l, 1)
			continue // planned restore failure: same seal, next attempt
		}
		cp := j.get(ordinal)
		if cp == nil {
			break // evicted under pressure: nothing left to restore
		}
		res, err := core.Resume(cp, registry(), cfg)
		if err != nil {
			sc.ckptInvalid.Add(l, 1)
			ordinal-- // corrupt or mismatched seal: fall back one ordinal
			continue
		}
		sc.restores.Add(l, 1)
		sc.mttrNs.Add(l, res.WallTime-cp.VirtualNow())
		sc.redoneNs.Add(l, crashWall-cp.VirtualNow())
		return res
	}
	sc.coldReplays.Add(l, 1)
	res := o.runContainer(l, cfg, img, imgHash, checkpointEnv)
	sc.replayNs.Add(l, res.WallTime)
	sc.redoneNs.Add(l, crashWall)
	return res
}

// FaultStats is a point-in-time snapshot of the farm's fault-plane
// accounting. Benchmarking metadata only, like SetupStats.
type FaultStats struct {
	Sealed        int64 // checkpoints sealed across all builds
	CkptEvictions int64 // checkpoint LRU entries dropped under pressure
	Crashes       int64 // injected crashes that fired
	Attempts      int64 // restore attempts, including failed ones
	Restores      int64 // successful checkpoint restores
	RestoreFailed int64 // injected restore failures
	Invalid       int64 // seals rejected by validation (corruption, mismatch)
	ColdReplays   int64 // recoveries degraded to a full replay
	BackoffNs     int64 // virtual time spent backing off between attempts
	MTTRNs        int64 // crash-to-completion virtual time across restores
	ReplayNs      int64 // crash-to-completion virtual time across cold replays
	RedoneNs      int64 // virtual work executed twice (crash point - restore point)
}

// FaultStats snapshots the farm's fault accounting so far.
func (o *Options) FaultStats() FaultStats {
	sc := o.sc()
	return FaultStats{
		Sealed:        sc.ckptSealed.Value(),
		CkptEvictions: sc.ckptEvictions.Value(),
		Crashes:       sc.crashes.Value(),
		Attempts:      sc.restoreAttempts.Value(),
		Restores:      sc.restores.Value(),
		RestoreFailed: sc.restoreFailures.Value(),
		Invalid:       sc.ckptInvalid.Value(),
		ColdReplays:   sc.coldReplays.Value(),
		BackoffNs:     sc.backoffNs.Value(),
		MTTRNs:        sc.mttrNs.Value(),
		ReplayNs:      sc.replayNs.Value(),
		RedoneNs:      sc.redoneNs.Value(),
	}
}

// FaultStudy is the X15 recovery experiment: every package built
// checkpointed and fault-free for reference, then crashed mid-build and
// recovered. Identical must equal Crashed — recovery is a robustness
// mechanism, not a semantic one — and the MTTR column is the headline: how
// much virtual work a checkpoint restore redoes versus a cold replay.
type FaultStudy struct {
	Packages  int // packages whose reference build completed
	Crashed   int // packages whose planned crash fired
	Identical int // crashed packages recovered to the reference bits

	Restores    int64 // recoveries via checkpoint restore
	ColdReplays int64 // recoveries via full replay

	AvgMTTRNs   float64 // crash-to-completion virtual time per restore
	AvgReplayNs float64 // crash-to-completion virtual time for a cold replay
	AvgRedoneNs float64 // virtual work executed twice, per recovery
	Speedup     float64 // replay/MTTR: the recovery headline
}

// String renders the study summary.
func (st *FaultStudy) String() string {
	return fmt.Sprintf(
		"packages: %d; crashed mid-build: %d; recovered bitwise-identical: %s\n"+
			"recoveries: %d checkpoint restores, %d cold replays\n"+
			"MTTR: %.1f s virtual to completion per restore vs %.1f s full replay (%.1fx less)\n"+
			"work executed twice: %.1f s virtual per recovery (chunk granularity)",
		st.Packages, st.Crashed, stats.Pct(st.Identical, st.Crashed),
		st.Restores, st.ColdReplays,
		st.AvgMTTRNs/1e9, st.AvgReplayNs/1e9, st.Speedup,
		st.AvgRedoneNs/1e9)
}

// RunFaultStudy builds each spec twice in checkpoint mode — uninterrupted,
// then crashed at half its reference action count and recovered — and
// compares the recovered observables bitwise against the reference.
func (o *Options) RunFaultStudy(specs []*debpkg.Spec) *FaultStudy {
	on := &Options{Seed: o.Seed, Jobs: o.Jobs, Experimental: o.Experimental,
		NoSyscallBuf: o.NoSyscallBuf, NoObservability: o.NoObservability,
		TemplateCacheSize: o.TemplateCacheSize, Checkpoints: true,
		CheckpointRetries: o.CheckpointRetries, CheckpointCacheSize: o.CheckpointCacheSize}
	type fOut struct {
		ok, crashed, identical bool
		refWall                int64
	}
	outs := make([]fOut, len(specs))
	o.forEach(len(specs), func(l obs.Local, i int) {
		spec := specs[i]
		seed := pkgSeed(o.Seed, spec)
		v1, _ := reprotest.Pair(seed)
		ref := on.buildDT(l, spec, seed, v1, nil)
		if v, _ := ref.verdict(); v != "" {
			return
		}
		img, pkgdir, imgHash := on.pkgImage(l, spec, "/build")
		cfg := on.dtConfig(img, pkgdir, seed, v1)
		before := on.FaultStats().Crashes
		got := on.buildDTFault(l, spec,
			reprotest.FaultPlan{CrashAtAction: ref.actions / 2},
			cfg, img, imgHash, pkgdir)
		outs[i] = fOut{
			ok:      true,
			crashed: on.FaultStats().Crashes > before,
			identical: got.exit == ref.exit && got.wall == ref.wall &&
				bytes.Equal(got.deb, ref.deb) && bytes.Equal(got.log, ref.log),
			refWall: ref.wall,
		}
	})
	st := &FaultStudy{}
	var replaySum int64
	for _, fo := range outs {
		if !fo.ok {
			continue
		}
		st.Packages++
		if fo.crashed {
			st.Crashed++
			replaySum += fo.refWall
		}
		if fo.crashed && fo.identical {
			st.Identical++
		}
	}
	fst := on.FaultStats()
	st.Restores, st.ColdReplays = fst.Restores, fst.ColdReplays
	if fst.Restores > 0 {
		st.AvgMTTRNs = float64(fst.MTTRNs) / float64(fst.Restores)
	}
	if n := fst.Restores + fst.ColdReplays; n > 0 {
		st.AvgRedoneNs = float64(fst.RedoneNs) / float64(n)
	}
	if st.Crashed > 0 {
		st.AvgReplayNs = float64(replaySum) / float64(st.Crashed)
	}
	if st.AvgMTTRNs > 0 {
		st.Speedup = st.AvgReplayNs / st.AvgMTTRNs
	}
	return st
}

// CrashRecovery is the single-package crash gate behind
// `reprotest -inject-crash N`: build the package checkpointed and
// uninterrupted, crash a second run at action n (n <= 0 picks the midpoint),
// recover it, and compare bitwise. The report is human-readable; ok is the
// machine verdict.
func (o *Options) CrashRecovery(spec *debpkg.Spec, n int64) (report string, ok bool) {
	on := &Options{Seed: o.Seed, Checkpoints: true}
	l := obs.NewLocal()
	seed := pkgSeed(o.Seed, spec)
	v1, _ := reprotest.Pair(seed)
	ref := on.buildDT(l, spec, seed, v1, nil)
	if v, _ := ref.verdict(); v != "" {
		return fmt.Sprintf("reference build did not complete: %s", v), false
	}
	if n <= 0 {
		n = ref.actions / 2
	}
	img, pkgdir, imgHash := on.pkgImage(l, spec, "/build")
	cfg := on.dtConfig(img, pkgdir, seed, v1)
	got := on.buildDTFault(l, spec, reprotest.FaultPlan{CrashAtAction: n},
		cfg, img, imgHash, pkgdir)
	fst := on.FaultStats()
	ok = got.exit == ref.exit && got.wall == ref.wall &&
		bytes.Equal(got.deb, ref.deb) && bytes.Equal(got.log, ref.log)
	verdict := "bitwise-identical to the uninterrupted build"
	if !ok {
		verdict = "DIVERGED from the uninterrupted build"
	}
	how := "completed before the crash point"
	switch {
	case fst.Restores > 0:
		how = fmt.Sprintf("restored from checkpoint, %.1f s virtual redone of %.1f s",
			float64(fst.RedoneNs)/1e9, float64(ref.wall)/1e9)
	case fst.ColdReplays > 0:
		how = "recovered by cold replay"
	}
	report = fmt.Sprintf(
		"reference: %d actions, %.1f s virtual; %d checkpoints sealed across runs\n"+
			"crash injected at action %d: %s\n"+
			"recovered run %s",
		ref.actions, float64(ref.wall)/1e9, fst.Sealed, n, how, verdict)
	return report, ok
}
