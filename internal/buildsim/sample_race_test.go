//go:build race

package buildsim

// aggSample sizes the Table-1 marginals sample. Under the race detector
// every build is several times slower, so the sample scales down; the class
// sequence interleaves deterministically, so any prefix keeps the universe
// proportions (debpkg.Universe).
const aggSample = 300
