package buildsim

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/debpkg"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/reprotest"
)

// The §6.1 stock study: every package lands in one bucket, raw .debs never
// match (paper: 0), strip-nondeterminism rescues some but not all.
func TestRunStock(t *testing.T) {
	o := &Options{Seed: 1, Jobs: 4}
	specs := debpkg.Universe(1, 120)
	st := o.RunStock(specs)
	if st.Packages != len(specs) {
		t.Errorf("Packages = %d, want %d", st.Packages, len(specs))
	}
	if got := st.Build + st.Fail + st.Timeout; got != st.Packages {
		t.Errorf("Build (%d) + Fail (%d) + Timeout (%d) = %d, want %d",
			st.Build, st.Fail, st.Timeout, got, st.Packages)
	}
	if st.ReproNoStrip != 0 {
		t.Errorf("ReproNoStrip = %d, want 0 (stock toolchain embeds timestamps)", st.ReproNoStrip)
	}
	if st.ReproWithStrip <= 0 || st.ReproWithStrip >= st.Build {
		t.Errorf("ReproWithStrip = %d of %d built, want strictly between", st.ReproWithStrip, st.Build)
	}
	if len(st.SampleDiffs) == 0 {
		t.Error("no SampleDiffs localized despite irreproducible packages")
	}
	for _, d := range st.SampleDiffs {
		if !strings.Contains(d, ": ") {
			t.Errorf("SampleDiff %q not of the form name: diff", d)
		}
	}
}

// The §7.1.3 rr comparison: the modern sample's terminal-probing packages
// crash the recorder (paper: 46 of 81), the rest record with overhead.
func TestRunRRStudy(t *testing.T) {
	st := (&Options{Seed: 1, Jobs: 4}).RunRRStudy()
	if st.Packages != 81 {
		t.Errorf("Packages = %d, want 81", st.Packages)
	}
	if st.Crashed != 46 {
		t.Errorf("Crashed = %d, want 46 (the ioctl-probing split)", st.Crashed)
	}
	if st.Recorded <= 0 || st.Crashed+st.Recorded > st.Packages {
		t.Errorf("Recorded = %d with %d crashed of %d", st.Recorded, st.Crashed, st.Packages)
	}
	if st.AvgOverhead <= 1 || st.AvgOverhead > 30 {
		t.Errorf("AvgOverhead = %.2f, want within (1, 30]", st.AvgOverhead)
	}
	if st.MinOverhead > st.AvgOverhead || st.AvgOverhead > st.MaxOverhead {
		t.Errorf("overhead ordering: min %.2f avg %.2f max %.2f",
			st.MinOverhead, st.AvgOverhead, st.MaxOverhead)
	}
	if st.AvgTraceKB <= 0 {
		t.Errorf("AvgTraceKB = %.1f, want > 0", st.AvgTraceKB)
	}
}

// portCandidates mirrors RunPortability's candidate selection.
func portCandidates(seed uint64) []*debpkg.Spec {
	var cands []*debpkg.Spec
	for _, s := range debpkg.Universe(seed, 0) {
		if s.Class == debpkg.BLRepro_DTRepro || s.Class == debpkg.BLIrrepro_DTRepro {
			cands = append(cands, s)
		}
		if len(cands) >= 400 {
			break
		}
	}
	return cands
}

// With dir-size virtualization on, every package builds bitwise-identically
// across the Skylake/4.15 and Broadwell/4.18 profiles.
func TestRunPortabilityVirtualized(t *testing.T) {
	st := (&Options{Seed: 1, Jobs: 4}).RunPortability(12, false)
	if st.Packages == 0 {
		t.Fatal("no packages completed on both machines")
	}
	if st.Identical != st.Packages {
		t.Errorf("%d/%d identical, want all (example: %s)", st.Identical, st.Packages, st.Example)
	}
	if st.Example != "" {
		t.Errorf("unexpected example difference: %s", st.Example)
	}
}

// Disabling dir-size virtualization reopens the §7.3 leak, but only for
// packages whose configure step stats a directory size: the two machines'
// filesystems report different directory sizes, and nothing else differs.
func TestPortabilityDirSizeAblation(t *testing.T) {
	o := &Options{Seed: 1}
	var leaky, clean *debpkg.Spec
	for _, s := range portCandidates(o.Seed) {
		dirsize := false
		for _, d := range s.PortDirectives {
			if d == "dirsize:src" {
				dirsize = true
			}
		}
		if dirsize && leaky == nil {
			leaky = s
		}
		if !dirsize && len(s.PortDirectives) == 0 && clean == nil {
			clean = s
		}
		if leaky != nil && clean != nil {
			break
		}
	}
	if leaky == nil || clean == nil {
		t.Fatal("candidate set lacks a dirsize:src package or a directive-free package")
	}

	buildBoth := func(spec *debpkg.Spec, ablate bool) (a, b dtRun) {
		seed := pkgSeed(o.Seed, spec)
		v1, _ := reprotest.Pair(seed)
		vB := reprotest.PortabilityHost(v1, seed)
		l := obs.NewLocal()
		a = o.buildDT(l, spec, seed, v1, func(c *core.Config) {
			c.Profile = machine.CloudLabC220G5()
			c.DisableDirSizes = ablate
		})
		b = o.buildDT(l, spec, seed, vB, func(c *core.Config) {
			c.Profile = machine.PortabilityBroadwell()
			c.DisableDirSizes = ablate
		})
		return a, b
	}

	// Virtualized: the dirsize package ports cleanly.
	if a, b := buildBoth(leaky, false); a.deb == nil || !bytes.Equal(a.deb, b.deb) {
		t.Errorf("%s: debs differ across machines with virtualization on", leaky.Name)
	}
	// Ablated: the same package leaks the host's directory sizes.
	if a, b := buildBoth(leaky, true); a.deb == nil || bytes.Equal(a.deb, b.deb) {
		t.Errorf("%s: debs identical across machines despite the ablation", leaky.Name)
	}
	// Ablated, but no machine-varying directives: still identical.
	if a, b := buildBoth(clean, true); a.deb == nil || !bytes.Equal(a.deb, b.deb) {
		t.Errorf("%s: directive-free package diverged under the ablation", clean.Name)
	}
}

// The §7.2 self-host check: the natively-built and DetTrace-built llvm
// binaries report identical test-suite outcomes, and the DetTrace build is
// reproducible.
func TestRunLLVM(t *testing.T) {
	st := (&Options{Seed: 1}).RunLLVM()
	want := "5657 tests: 5594 pass, 48 expected failures, 15 unsupported"
	if st.NativeSummary != want {
		t.Errorf("NativeSummary = %q, want %q", st.NativeSummary, want)
	}
	if st.DetTraceSummary != want {
		t.Errorf("DetTraceSummary = %q, want %q", st.DetTraceSummary, want)
	}
	if !st.Match {
		t.Error("Match = false, want true")
	}
	if st.DetTraceVerdict != Reproducible {
		t.Errorf("DetTraceVerdict = %s, want %s", st.DetTraceVerdict, Reproducible)
	}
}

// The reason RunLLVM re-runs the binaries: the native build log is truncated
// at pipe capacity (the harness's burst write is not retried natively),
// while under DetTrace the Fig.-4 write retries deliver it intact — and a
// console selftest of the built binary recovers the full report either way.
func TestSelftestTruncationHazard(t *testing.T) {
	spec := debpkg.LLVM()
	v1, _ := reprotest.Pair(pkgSeed(1, spec))
	nat := (&Options{Seed: 1}).buildNative(obs.NewLocal(), spec, v1, BLDeadline)
	if nat.verdict() != "" {
		t.Fatalf("native llvm build failed: %s", nat.verdict())
	}
	if bytes.Contains(nat.log, []byte("Testing:")) {
		t.Error("native build log contains the selftest summary — the partial-write hazard disappeared")
	}
	report := selftest(nat.prog)
	if !bytes.Contains(report, []byte("Testing: 5657 tests")) {
		t.Errorf("console selftest report incomplete:\n%.300s", report)
	}
	if selftest(nil) != nil {
		t.Error("selftest(nil) should be nil")
	}
}
