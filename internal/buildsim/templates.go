// Container-template reuse for the build farm: fork once, build everywhere.
//
// Setting up one simulated build used to cost three image-sized passes —
// assembling the toolchain chroot, materializing the package source into it,
// and populating the result into a fresh kernel filesystem — repeated for
// every one of a package's four (or more) builds. All three passes are pure
// functions of (spec, build root, container config), so the farm now
// memoizes them: materialized images in a small LRU, and on top of those the
// prepared boot state — kernel.Snapshot for baseline builds, core.Template
// for DetTrace builds — keyed by (image content hash, config hash). A run
// then COW-forks the frozen template instead of repopulating it.
//
// The reuse must be invisible. Forked boots are pinned bitwise-identical to
// cold boots (kernel.TestSnapshotBootEqualsCold, core.TestTemplateForkEqualsCold),
// templates are immutable after construction, and nothing order-dependent
// escapes the caches — so farm output stays independent of Jobs, of cache
// hit/miss order, and of the DisableTemplates ablation. templates_test.go
// pins all three. Only the setup accounting below may move.
package buildsim

import (
	"bytes"
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/debpkg"
	"repro/internal/fs"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/reprotest"
)

// DefaultTemplateCacheSize bounds each prepared-state LRU when
// Options.TemplateCacheSize is zero. Templates pin their image and frozen
// filesystem, so the cap is the farm's working-set knob: large enough that
// one package's builds and the portability/ablation profile variants all
// hit, small enough that a 17k-package universe cannot accumulate 17k
// toolchain trees.
const DefaultTemplateCacheSize = 32

// setupCounters is the farm's internal setup accounting. Everything is
// atomic so the Jobs-wide worker pool can share one Options; none of it
// feeds back into build results.
type setupCounters struct {
	templateHits   atomic.Int64
	templateMisses atomic.Int64
	evictions      atomic.Int64
	imageBuilds    atomic.Int64
	imageHits      atomic.Int64
	coldBoots      atomic.Int64
	forkBoots      atomic.Int64
	imageBuildNs   atomic.Int64
	prepareNs      atomic.Int64
	forkNs         atomic.Int64
	coldSetupNs    atomic.Int64
}

// SetupStats is a point-in-time snapshot of the farm's container-setup
// accounting: how often prepared state was reused and what the setup paths
// cost in wall-clock time. It is benchmarking metadata only — build outputs
// never depend on it.
type SetupStats struct {
	TemplateHits   int64 // prepared snapshot/template served from cache
	TemplateMisses int64 // prepared on demand
	Evictions      int64 // cache entries dropped by the LRU cap
	ImageBuilds    int64 // toolchain images assembled + materialized
	ImageHits      int64 // image requests served from the memo

	ColdBoots int64 // kernels/containers built on the cold path
	ForkBoots int64 // kernels/containers forked from a template

	ImageBuildNs int64 // assembling + materializing + hashing images
	PrepareNs    int64 // populating and freezing template bases
	ForkNs       int64 // COW-fork boots
	ColdSetupNs  int64 // cold kernel construction (image populate included)
}

// SetupNs is the farm's total setup cost: everything spent getting
// containers to their first instruction, on either path.
func (s SetupStats) SetupNs() int64 {
	return s.ImageBuildNs + s.PrepareNs + s.ForkNs + s.ColdSetupNs
}

// SetupStats snapshots the farm's setup accounting so far.
func (o *Options) SetupStats() SetupStats {
	return SetupStats{
		TemplateHits:   o.setup.templateHits.Load(),
		TemplateMisses: o.setup.templateMisses.Load(),
		Evictions:      o.setup.evictions.Load(),
		ImageBuilds:    o.setup.imageBuilds.Load(),
		ImageHits:      o.setup.imageHits.Load(),
		ColdBoots:      o.setup.coldBoots.Load(),
		ForkBoots:      o.setup.forkBoots.Load(),
		ImageBuildNs:   o.setup.imageBuildNs.Load(),
		PrepareNs:      o.setup.prepareNs.Load(),
		ForkNs:         o.setup.forkNs.Load(),
		ColdSetupNs:    o.setup.coldSetupNs.Load(),
	}
}

// lruEntry is one cache slot. Construction runs under the entry's own Once,
// outside the cache lock, so a slow Prepare never serializes unrelated
// lookups; concurrent first requesters block on the Once and share the one
// built value (never observing a half-built template).
type lruEntry struct {
	once sync.Once
	v    any
}

// lruCache is a mutex-protected LRU over opaque keys. Eviction drops the
// cache's reference only — an entry still in use by an in-flight build stays
// alive until that build finishes, which is what makes eviction invisible to
// results.
type lruCache struct {
	mu        sync.Mutex
	cap       int
	order     *list.List // front = most recently used
	items     map[any]*list.Element
	evictions *atomic.Int64
}

type lruItem struct {
	key any
	e   *lruEntry
}

func newLRU(cap int, evictions *atomic.Int64) *lruCache {
	return &lruCache{cap: cap, order: list.New(), items: make(map[any]*list.Element), evictions: evictions}
}

// get returns the entry for key, creating an empty slot on miss, and
// reports whether the key was already present.
func (c *lruCache) get(key any) (*lruEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*lruItem).e, true
	}
	e := &lruEntry{}
	c.items[key] = c.order.PushFront(&lruItem{key: key, e: e})
	if c.order.Len() > c.cap {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.items, back.Value.(*lruItem).key)
		c.evictions.Add(1)
	}
	return e, false
}

// farmCaches is the per-Options prepared-state store: materialized images,
// baseline kernel snapshots, and DetTrace container templates.
type farmCaches struct {
	images    *lruCache // imageKey -> *imageEntry
	snapshots *lruCache // uint64 image hash -> *kernel.Snapshot
	templates *lruCache // templateKey -> *core.Template
}

type imageKey struct {
	name, version, dir string
}

type imageEntry struct {
	img    *fs.Image
	pkgdir string
	hash   uint64
}

type templateKey struct {
	image, config uint64
}

func (o *Options) caches() *farmCaches {
	o.cacheMu.Lock()
	defer o.cacheMu.Unlock()
	if o.cache == nil {
		n := o.TemplateCacheSize
		if n <= 0 {
			n = DefaultTemplateCacheSize
		}
		o.cache = &farmCaches{
			// Images back the templates, so the memo holds the native-build
			// variants (one per build root) alongside them: twice the cap.
			images:    newLRU(2*n, &o.setup.evictions),
			snapshots: newLRU(n, &o.setup.evictions),
			templates: newLRU(n, &o.setup.evictions),
		}
	}
	return o.cache
}

// pkgImage returns the package's toolchain image, its source directory, and
// the image content hash. With templates enabled the materialized image is
// memoized — it is only ever read after construction (kernel populate,
// template prepare), so sharing one *fs.Image across concurrent builds is
// safe. Under the ablation every call rebuilds, exactly like the pre-template
// farm, so the cold setup numbers measure the real cold cost.
func (o *Options) pkgImage(spec *debpkg.Spec, dir string) (*fs.Image, string, uint64) {
	if o.DisableTemplates {
		start := time.Now()
		img, pkgdir := toolchainImage(spec, dir)
		o.setup.imageBuilds.Add(1)
		o.setup.imageBuildNs.Add(time.Since(start).Nanoseconds())
		return img, pkgdir, 0
	}
	e, hit := o.caches().images.get(imageKey{spec.Name, spec.Version, dir})
	if hit {
		o.setup.imageHits.Add(1)
	}
	e.once.Do(func() {
		start := time.Now()
		img, pkgdir := toolchainImage(spec, dir)
		ie := &imageEntry{img: img, pkgdir: pkgdir, hash: img.Hash()}
		o.setup.imageBuilds.Add(1)
		o.setup.imageBuildNs.Add(time.Since(start).Nanoseconds())
		e.v = ie
	})
	ie := e.v.(*imageEntry)
	return ie.img, ie.pkgdir, ie.hash
}

// snapshot returns the prepared baseline-kernel snapshot for an image,
// preparing it on first use.
func (o *Options) snapshot(imgHash uint64, img *fs.Image) *kernel.Snapshot {
	e, hit := o.caches().snapshots.get(imgHash)
	if hit {
		o.setup.templateHits.Add(1)
	} else {
		o.setup.templateMisses.Add(1)
	}
	e.once.Do(func() {
		start := time.Now()
		e.v = kernel.Prepare(kernel.Config{
			Profile:  machine.CloudLabC220G5(),
			Image:    img,
			Resolver: registry().Resolver(),
		})
		o.setup.prepareNs.Add(time.Since(start).Nanoseconds())
	})
	return e.v.(*kernel.Snapshot)
}

// template returns the prepared container template for (image, config),
// preparing it on first use. cfg must already carry its final
// behaviour-relevant fields (mod applied); the key's config hash ignores the
// per-run host fields, so one template serves every perturbation of a build.
func (o *Options) template(imgHash uint64, cfg core.Config) *core.Template {
	e, hit := o.caches().templates.get(templateKey{image: imgHash, config: core.ConfigHash(cfg)})
	if hit {
		o.setup.templateHits.Add(1)
	} else {
		o.setup.templateMisses.Add(1)
	}
	e.once.Do(func() {
		start := time.Now()
		e.v = core.NewTemplate(cfg)
		o.setup.prepareNs.Add(time.Since(start).Nanoseconds())
	})
	return e.v.(*core.Template)
}

// TemplateStudy is the template-reuse ablation: the same perturbation builds
// run through two farms — templates on and off — outputs compared bitwise,
// setup costs compared end to end. Reuse is a pure performance mechanism, so
// Identical must equal Packages; only the setup column may move.
type TemplateStudy struct {
	Packages  int // packages whose builds completed under both farms
	Runs      int // perturbation builds per package (each done twice)
	Identical int // packages bitwise-identical across every on/off run pair

	SetupOnNs  int64   // total farm setup, templates on
	SetupOffNs int64   // total farm setup, templates off
	SetupRatio float64 // off/on: the amortization headline

	Hits, Misses, Evictions int64 // template-cache traffic, templates on
	AvgForkNs               float64
	AvgColdSetupNs          float64 // per cold boot, image build included
}

// String renders the ablation summary.
func (st *TemplateStudy) String() string {
	return fmt.Sprintf(
		"packages: %d x %d perturbed builds; bitwise-identical with/without templates: %d\n"+
			"farm setup cost: %.1f ms cold, %.1f ms templated (%.1fx less)\n"+
			"per boot: %.0f us cold vs %.0f us forked; cache: %d hits, %d misses, %d evictions",
		st.Packages, st.Runs, st.Identical,
		float64(st.SetupOffNs)/1e6, float64(st.SetupOnNs)/1e6, st.SetupRatio,
		st.AvgColdSetupNs/1e3, st.AvgForkNs/1e3,
		st.Hits, st.Misses, st.Evictions)
}

// RunTemplateStudy builds each spec `runs` times under DetTrace with
// perturbed host accidents, through a templated farm and a cold farm, and
// compares outputs and setup costs. runs <= 0 selects the default of 16 —
// reprotest's standard variation schedule — so one template prepare
// amortizes across all of a package's perturbed builds, exactly as it does
// across the farm's own BL/DT/ablation re-runs.
func (o *Options) RunTemplateStudy(specs []*debpkg.Spec, runs int) *TemplateStudy {
	if runs <= 0 {
		runs = 16
	}
	on := &Options{Seed: o.Seed, Jobs: o.Jobs, Experimental: o.Experimental,
		NoSyscallBuf: o.NoSyscallBuf, TemplateCacheSize: o.TemplateCacheSize}
	off := &Options{Seed: o.Seed, Jobs: o.Jobs, Experimental: o.Experimental,
		NoSyscallBuf: o.NoSyscallBuf, DisableTemplates: true}
	type tmplOut struct {
		ok, identical bool
	}
	outs := make([]tmplOut, len(specs))
	o.forEach(len(specs), func(i int) {
		spec := specs[i]
		seed := pkgSeed(o.Seed, spec)
		ok, identical := true, true
		for r := 0; r < runs; r++ {
			v := reprotest.Perturbed(seed, r)
			warm := on.buildDT(spec, seed, v, nil)
			cold := off.buildDT(spec, seed, v, nil)
			wv, _ := warm.verdict()
			cv, _ := cold.verdict()
			if wv != cv {
				ok, identical = true, false // same inputs must fail the same way
				break
			}
			if wv != "" {
				ok = false
				break
			}
			if !bytes.Equal(warm.deb, cold.deb) || !bytes.Equal(warm.log, cold.log) {
				identical = false
			}
		}
		outs[i] = tmplOut{ok: ok, identical: ok && identical}
	})
	st := &TemplateStudy{Runs: runs}
	for _, to := range outs {
		if !to.ok {
			continue
		}
		st.Packages++
		if to.identical {
			st.Identical++
		}
	}
	son, soff := on.SetupStats(), off.SetupStats()
	st.SetupOnNs = son.SetupNs()
	st.SetupOffNs = soff.SetupNs()
	if st.SetupOnNs > 0 {
		st.SetupRatio = float64(st.SetupOffNs) / float64(st.SetupOnNs)
	}
	st.Hits, st.Misses, st.Evictions = son.TemplateHits, son.TemplateMisses, son.Evictions
	if son.ForkBoots > 0 {
		st.AvgForkNs = float64(son.ForkNs) / float64(son.ForkBoots)
	}
	if soff.ColdBoots > 0 {
		st.AvgColdSetupNs = float64(soff.ColdSetupNs+soff.ImageBuildNs) / float64(soff.ColdBoots)
	}
	return st
}
