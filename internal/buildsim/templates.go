// Container-template reuse for the build farm: fork once, build everywhere.
//
// Setting up one simulated build used to cost three image-sized passes —
// assembling the toolchain chroot, materializing the package source into it,
// and populating the result into a fresh kernel filesystem — repeated for
// every one of a package's four (or more) builds. All three passes are pure
// functions of (spec, build root, container config), so the farm now
// memoizes them: materialized images in a small LRU, and on top of those the
// prepared boot state — kernel.Snapshot for baseline builds, core.Template
// for DetTrace builds — keyed by (image content hash, config hash). A run
// then COW-forks the frozen template instead of repopulating it.
//
// The reuse must be invisible. Forked boots are pinned bitwise-identical to
// cold boots (kernel.TestSnapshotBootEqualsCold, core.TestTemplateForkEqualsCold),
// templates are immutable after construction, and nothing order-dependent
// escapes the caches — so farm output stays independent of Jobs, of cache
// hit/miss order, and of the DisableTemplates ablation. templates_test.go
// pins all three. Only the setup accounting below may move.
package buildsim

import (
	"bytes"
	"container/list"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/debpkg"
	"repro/internal/derive"
	"repro/internal/fs"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/reprotest"
)

// DefaultTemplateCacheSize bounds each prepared-state LRU when
// Options.TemplateCacheSize is zero. Templates pin their image and frozen
// filesystem, so the cap is the farm's working-set knob: large enough that
// one package's builds and the portability/ablation profile variants all
// hit, small enough that a 17k-package universe cannot accumulate 17k
// toolchain trees.
const DefaultTemplateCacheSize = 32

// setupCounters is the farm's setup accounting, held as handles into the
// farm's obs registry (see Options.Obs) so roll-ups and the Prometheus dump
// see the same numbers the studies report. The counters are sharded atomics:
// each worker adds on its own stripe (the obs.Local threaded through
// forEach), so the Jobs-wide pool shares one Options without contending.
// None of it feeds back into build results.
type setupCounters struct {
	templateHits   *obs.Counter
	templateMisses *obs.Counter
	evictions      *obs.Counter
	imageBuilds    *obs.Counter
	imageHits      *obs.Counter
	coldBoots      *obs.Counter
	forkBoots      *obs.Counter
	imageBuildNs   *obs.Counter
	prepareNs      *obs.Counter
	forkNs         *obs.Counter
	coldSetupNs    *obs.Counter

	// Recorder roll-up: flight-recorder events produced by container runs,
	// split by setup path so the templates study can price the recorder per
	// fork vs cold boot.
	recEventsFork *obs.Counter
	recEventsCold *obs.Counter

	// Fault-plane accounting (faults.go): checkpoint seals, injected
	// crashes, and how the farm recovered from them. Like all farm counters,
	// bookkeeping only — recovery outcomes never feed back into results.
	// Derivation-store accounting (ISSUE 8, incremental.go): seal forks at
	// phase granularity, compile units reused vs re-executed, and how often
	// an incremental rebuild went through versus degrading to cold.
	derivePhaseHits   *obs.Counter
	derivePhaseMisses *obs.Counter
	deriveUnitsReused *obs.Counter
	deriveUnitsRedone *obs.Counter
	incrRebuilds      *obs.Counter
	incrCold          *obs.Counter

	ckptSealed      *obs.Counter
	ckptEvictions   *obs.Counter
	crashes         *obs.Counter
	restoreAttempts *obs.Counter
	restores        *obs.Counter
	restoreFailures *obs.Counter
	ckptInvalid     *obs.Counter
	coldReplays     *obs.Counter
	backoffNs       *obs.Counter
	mttrNs          *obs.Counter
	replayNs        *obs.Counter
	redoneNs        *obs.Counter

	// Seal-size accounting (ISSUE 9, ttd.go): bytes a delta seal actually
	// stored (fresh data only) vs bytes the equivalent full seals hold.
	// Booked here at the farm layer — never inside core.sealCheckpoint —
	// because attaching a checkpoint sink must not perturb a run's own
	// metrics registry (the bitwise equivalence tests compare those).
	ckptDeltaBytes *obs.Counter
	ckptFullBytes  *obs.Counter
}

// SetupStats is a point-in-time snapshot of the farm's container-setup
// accounting: how often prepared state was reused and what the setup paths
// cost in wall-clock time. It is benchmarking metadata only — build outputs
// never depend on it.
type SetupStats struct {
	TemplateHits   int64 // prepared snapshot/template served from cache
	TemplateMisses int64 // prepared on demand
	Evictions      int64 // cache entries dropped by the LRU cap
	ImageBuilds    int64 // toolchain images assembled + materialized
	ImageHits      int64 // image requests served from the memo

	ColdBoots int64 // kernels/containers built on the cold path
	ForkBoots int64 // kernels/containers forked from a template

	ImageBuildNs int64 // assembling + materializing + hashing images
	PrepareNs    int64 // populating and freezing template bases
	ForkNs       int64 // COW-fork boots
	ColdSetupNs  int64 // cold kernel construction (image populate included)

	RecEventsFork int64 // flight-recorder events from forked containers
	RecEventsCold int64 // flight-recorder events from cold-booted containers
}

// SetupNs is the farm's total setup cost: everything spent getting
// containers to their first instruction, on either path.
func (s SetupStats) SetupNs() int64 {
	return s.ImageBuildNs + s.PrepareNs + s.ForkNs + s.ColdSetupNs
}

// SetupStats snapshots the farm's setup accounting so far.
func (o *Options) SetupStats() SetupStats {
	sc := o.sc()
	return SetupStats{
		TemplateHits:   sc.templateHits.Value(),
		TemplateMisses: sc.templateMisses.Value(),
		Evictions:      sc.evictions.Value(),
		ImageBuilds:    sc.imageBuilds.Value(),
		ImageHits:      sc.imageHits.Value(),
		ColdBoots:      sc.coldBoots.Value(),
		ForkBoots:      sc.forkBoots.Value(),
		ImageBuildNs:   sc.imageBuildNs.Value(),
		PrepareNs:      sc.prepareNs.Value(),
		ForkNs:         sc.forkNs.Value(),
		ColdSetupNs:    sc.coldSetupNs.Value(),
		RecEventsFork:  sc.recEventsFork.Value(),
		RecEventsCold:  sc.recEventsCold.Value(),
	}
}

// Obs returns the farm-wide metrics registry: the setup counters above plus
// every container run's absorbed per-run registry (kernel per-syscall table,
// tracer stop/buffer accounting). Lazily created; safe under the pool.
func (o *Options) Obs() *obs.Registry {
	o.cacheMu.Lock()
	defer o.cacheMu.Unlock()
	o.initObsLocked()
	return o.obsReg
}

// sc returns the initialized setup-counter handles.
func (o *Options) sc() *setupCounters {
	o.cacheMu.Lock()
	defer o.cacheMu.Unlock()
	o.initObsLocked()
	return &o.setup
}

// initObsLocked creates the farm registry and counter handles once; callers
// hold cacheMu.
func (o *Options) initObsLocked() {
	if o.obsReg != nil {
		return
	}
	r := obs.NewRegistry()
	o.setup = setupCounters{
		templateHits:   r.Counter("farm_template_hits"),
		templateMisses: r.Counter("farm_template_misses"),
		evictions:      r.Counter("farm_cache_evictions"),
		imageBuilds:    r.Counter("farm_image_builds"),
		imageHits:      r.Counter("farm_image_hits"),
		coldBoots:      r.Counter("farm_cold_boots"),
		forkBoots:      r.Counter("farm_fork_boots"),
		imageBuildNs:   r.Counter("farm_image_build_ns"),
		prepareNs:      r.Counter("farm_prepare_ns"),
		forkNs:         r.Counter("farm_fork_ns"),
		coldSetupNs:    r.Counter("farm_cold_setup_ns"),
		recEventsFork:  r.Counter("farm_rec_events_fork"),
		recEventsCold:  r.Counter("farm_rec_events_cold"),

		derivePhaseHits:   r.Counter("farm_derive_phase_hits"),
		derivePhaseMisses: r.Counter("farm_derive_phase_misses"),
		deriveUnitsReused: r.Counter("farm_derive_units_reused"),
		deriveUnitsRedone: r.Counter("farm_derive_units_redone"),
		incrRebuilds:      r.Counter("farm_incremental_rebuilds"),
		incrCold:          r.Counter("farm_incremental_cold"),

		ckptSealed:      r.Counter("farm_checkpoints_sealed"),
		ckptEvictions:   r.Counter("farm_checkpoint_evictions"),
		crashes:         r.Counter("farm_crashes_injected"),
		restoreAttempts: r.Counter("farm_restore_attempts"),
		restores:        r.Counter("farm_restores"),
		restoreFailures: r.Counter("farm_restore_failures"),
		ckptInvalid:     r.Counter("farm_checkpoint_invalid"),
		coldReplays:     r.Counter("farm_cold_replays"),
		backoffNs:       r.Counter("farm_backoff_ns"),
		mttrNs:          r.Counter("farm_mttr_ns"),
		replayNs:        r.Counter("farm_replay_ns"),
		redoneNs:        r.Counter("farm_redone_ns"),

		ckptDeltaBytes: r.Counter("checkpoint_delta_bytes"),
		ckptFullBytes:  r.Counter("checkpoint_full_bytes"),
	}
	o.obsReg = r
	o.deriveRec = obs.NewRecorder(obs.DefaultRingEvents)
}

// Derivation-event granularities, carried in Event.Ret (see obs.KindDeriveHit).
const (
	deriveGranTemplate = 0 // prepared snapshot/template
	deriveGranPhase    = 1 // checkpoint seal forked for a rebuild
	deriveGranUnit     = 2 // compile units reused / re-executed (Num = count)
)

// recordDerive books one derivation-store lookup outcome on the farm's
// derive ring (Arg = derivation key hash, Ret = granularity, Num = ordinal
// or unit count) and bumps the phase-granularity counters. The ring is
// farm-level metadata: lookups happen on whatever worker got there first,
// so event order is scheduling-dependent and must never be compared across
// runs — only aggregated.
func (o *Options) recordDerive(l obs.Local, hit bool, gran int, keyHash uint64, n int32) {
	sc := o.sc()
	kind := obs.KindDeriveMiss
	if hit {
		kind = obs.KindDeriveHit
	}
	if gran == deriveGranPhase {
		if hit {
			sc.derivePhaseHits.Add(l, 1)
		} else {
			sc.derivePhaseMisses.Add(l, 1)
		}
	}
	o.deriveMu.Lock()
	o.deriveLTime++
	o.deriveRec.Record(o.deriveLTime, kind, n, 0, keyHash, int64(gran))
	o.deriveMu.Unlock()
}

// DeriveTrace returns the farm's retained derivation-store events (for
// `benchtab -incremental` and debugging): reuse observability at template,
// phase and unit granularity.
func (o *Options) DeriveTrace() []obs.Event {
	o.sc() // ensure initObsLocked ran
	o.deriveMu.Lock()
	defer o.deriveMu.Unlock()
	return o.deriveRec.Events()
}

// lruEntry is one cache slot. Construction runs under the entry's own Once,
// outside the cache lock, so a slow Prepare never serializes unrelated
// lookups; concurrent first requesters block on the Once and share the one
// built value (never observing a half-built template).
type lruEntry struct {
	once sync.Once
	v    any
}

// lruCache is a mutex-protected LRU over opaque keys. Eviction drops the
// cache's reference only — an entry still in use by an in-flight build stays
// alive until that build finishes, which is what makes eviction invisible to
// results.
type lruCache struct {
	mu        sync.Mutex
	cap       int
	order     *list.List // front = most recently used
	items     map[any]*list.Element
	evictions *obs.Counter
}

type lruItem struct {
	key  any
	e    *lruEntry
	pins int
}

func newLRU(cap int, evictions *obs.Counter) *lruCache {
	return &lruCache{cap: cap, order: list.New(), items: make(map[any]*list.Element), evictions: evictions}
}

// get returns the entry for key, creating an empty slot on miss, and
// reports whether the key was already present.
func (c *lruCache) get(key any) (*lruEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*lruItem).e, true
	}
	e := &lruEntry{}
	c.insertLocked(key, e, 0)
	return e, false
}

// insertLocked adds key→e at the front and, when over cap, evicts the
// least-recently-used unpinned entry. Pinned entries are never evicted: a
// fully pinned cache grows past cap instead, because in-flight state must
// survive pressure (the pin is what makes eviction results-invisible).
func (c *lruCache) insertLocked(key any, e *lruEntry, pins int) {
	c.items[key] = c.order.PushFront(&lruItem{key: key, e: e, pins: pins})
	if c.order.Len() <= c.cap {
		return
	}
	for el := c.order.Back(); el != nil; el = el.Prev() {
		it := el.Value.(*lruItem)
		if it.pins > 0 {
			continue
		}
		c.order.Remove(el)
		delete(c.items, it.key)
		c.evictions.Inc(1) // under the cache mutex: single writer
		return
	}
}

// putPinned stores v at key with one pin already held, atomically — the
// value cannot be evicted between insertion and a separate pin call.
func (c *lruCache) putPinned(key, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		it := el.Value.(*lruItem)
		it.e.v = v
		it.pins++
		c.order.MoveToFront(el)
		return
	}
	c.insertLocked(key, &lruEntry{v: v}, 1)
}

// peek returns the value stored at key, without creating a slot on miss.
func (c *lruCache) peek(key any) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruItem).e.v, true
}

// unpin releases one pin on key; no-op if the key was already evicted.
func (c *lruCache) unpin(key any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruItem).pins--
	}
}

// farmCaches is the per-Options prepared-state store: materialized images,
// baseline kernel snapshots, DetTrace container templates, and — in
// checkpoint mode — the sealed mid-run checkpoints of in-flight jobs.
//
// Every prepared-state key derives through derive.KeyFor — the one shared
// (image content hash, config hash) derivation this package and the
// distributed farm's shard map both use — so the four caches cannot drift
// in what "the same prepared state" means (snapshots use a zero config
// slot: a prepared kernel depends only on the image).
type farmCaches struct {
	images      *lruCache // imageKey -> *imageEntry
	snapshots   *lruCache // derive.Key (config 0) -> *kernel.Snapshot
	templates   *lruCache // derive.Key -> *core.Template
	checkpoints *lruCache // derive.SealKey -> *core.Checkpoint
}

type imageKey struct {
	name, version, dir string
}

type imageEntry struct {
	img    *fs.Image
	pkgdir string
	hash   uint64
}

func (o *Options) caches() *farmCaches {
	o.cacheMu.Lock()
	defer o.cacheMu.Unlock()
	o.initObsLocked()
	if o.cache == nil {
		n := o.TemplateCacheSize
		if n <= 0 {
			n = DefaultTemplateCacheSize
		}
		ckptCap := o.CheckpointCacheSize
		if ckptCap <= 0 {
			ckptCap = DefaultCheckpointCacheSize
		}
		o.cache = &farmCaches{
			// Images back the templates, so the memo holds the native-build
			// variants (one per build root) alongside them: twice the cap.
			images:      newLRU(2*n, o.setup.evictions),
			snapshots:   newLRU(n, o.setup.evictions),
			templates:   newLRU(n, o.setup.evictions),
			checkpoints: newLRU(ckptCap, o.setup.ckptEvictions),
		}
	}
	return o.cache
}

// pkgImage returns the package's toolchain image, its source directory, and
// the image content hash. With templates enabled the materialized image is
// memoized — it is only ever read after construction (kernel populate,
// template prepare), so sharing one *fs.Image across concurrent builds is
// safe. Under the ablation every call rebuilds, exactly like the pre-template
// farm, so the cold setup numbers measure the real cold cost.
func (o *Options) pkgImage(l obs.Local, spec *debpkg.Spec, dir string) (*fs.Image, string, uint64) {
	sc := o.sc()
	if o.DisableTemplates {
		start := time.Now()
		img, pkgdir := toolchainImage(spec, dir)
		sc.imageBuilds.Add(l, 1)
		sc.imageBuildNs.Add(l, time.Since(start).Nanoseconds())
		return img, pkgdir, 0
	}
	e, hit := o.caches().images.get(imageKey{spec.Name, spec.Version, dir})
	if hit {
		sc.imageHits.Add(l, 1)
	}
	e.once.Do(func() {
		start := time.Now()
		img, pkgdir := toolchainImage(spec, dir)
		ie := &imageEntry{img: img, pkgdir: pkgdir, hash: img.Hash()}
		sc.imageBuilds.Add(l, 1)
		sc.imageBuildNs.Add(l, time.Since(start).Nanoseconds())
		e.v = ie
	})
	ie := e.v.(*imageEntry)
	return ie.img, ie.pkgdir, ie.hash
}

// snapshot returns the prepared baseline-kernel snapshot for an image,
// preparing it on first use.
func (o *Options) snapshot(l obs.Local, imgHash uint64, img *fs.Image) *kernel.Snapshot {
	sc := o.sc()
	key := derive.KeyFor(imgHash, 0)
	e, hit := o.caches().snapshots.get(key)
	if hit {
		sc.templateHits.Add(l, 1)
	} else {
		sc.templateMisses.Add(l, 1)
	}
	o.recordDerive(l, hit, deriveGranTemplate, key.Hash(), 0)
	e.once.Do(func() {
		start := time.Now()
		e.v = kernel.Prepare(kernel.Config{
			Profile:  machine.CloudLabC220G5(),
			Image:    img,
			Resolver: registry().Resolver(),
		})
		sc.prepareNs.Add(l, time.Since(start).Nanoseconds())
	})
	return e.v.(*kernel.Snapshot)
}

// template returns the prepared container template for (image, config),
// preparing it on first use. cfg must already carry its final
// behaviour-relevant fields (mod applied); the key's config hash ignores the
// per-run host fields, so one template serves every perturbation of a build.
func (o *Options) template(l obs.Local, imgHash uint64, cfg core.Config) *core.Template {
	sc := o.sc()
	key := derive.KeyFor(imgHash, core.ConfigHash(cfg))
	e, hit := o.caches().templates.get(key)
	if hit {
		sc.templateHits.Add(l, 1)
	} else {
		sc.templateMisses.Add(l, 1)
	}
	o.recordDerive(l, hit, deriveGranTemplate, key.Hash(), 0)
	e.once.Do(func() {
		start := time.Now()
		e.v = core.NewTemplate(cfg)
		sc.prepareNs.Add(l, time.Since(start).Nanoseconds())
	})
	return e.v.(*core.Template)
}

// TemplateStudy is the template-reuse ablation: the same perturbation builds
// run through two farms — templates on and off — outputs compared bitwise,
// setup costs compared end to end. Reuse is a pure performance mechanism, so
// Identical must equal Packages; only the setup column may move.
type TemplateStudy struct {
	Packages  int // packages whose builds completed under both farms
	Runs      int // perturbation builds per package (each done twice)
	Identical int // packages bitwise-identical across every on/off run pair

	SetupOnNs  int64   // total farm setup, templates on
	SetupOffNs int64   // total farm setup, templates off
	SetupRatio float64 // off/on: the amortization headline

	Hits, Misses, Evictions int64 // template-cache traffic, templates on
	AvgForkNs               float64
	AvgColdSetupNs          float64 // per cold boot, image build included

	// Recorder overhead per setup path: flight-recorder events produced per
	// forked vs cold-booted container. Equal rates are the observability
	// layer's invisibility evidence — recording is independent of how the
	// container was set up.
	AvgRecEventsFork float64
	AvgRecEventsCold float64
}

// String renders the ablation summary.
func (st *TemplateStudy) String() string {
	return fmt.Sprintf(
		"packages: %d x %d perturbed builds; bitwise-identical with/without templates: %d\n"+
			"farm setup cost: %.1f ms cold, %.1f ms templated (%.1fx less)\n"+
			"per boot: %.0f us cold vs %.0f us forked; cache: %d hits, %d misses, %d evictions\n"+
			"recorder: %.0f events per forked boot vs %.0f per cold boot",
		st.Packages, st.Runs, st.Identical,
		float64(st.SetupOffNs)/1e6, float64(st.SetupOnNs)/1e6, st.SetupRatio,
		st.AvgColdSetupNs/1e3, st.AvgForkNs/1e3,
		st.Hits, st.Misses, st.Evictions,
		st.AvgRecEventsFork, st.AvgRecEventsCold)
}

// RunTemplateStudy builds each spec `runs` times under DetTrace with
// perturbed host accidents, through a templated farm and a cold farm, and
// compares outputs and setup costs. runs <= 0 selects the default of 16 —
// reprotest's standard variation schedule — so one template prepare
// amortizes across all of a package's perturbed builds, exactly as it does
// across the farm's own BL/DT/ablation re-runs.
func (o *Options) RunTemplateStudy(specs []*debpkg.Spec, runs int) *TemplateStudy {
	if runs <= 0 {
		runs = 16
	}
	on := &Options{Seed: o.Seed, Jobs: o.Jobs, Experimental: o.Experimental,
		NoSyscallBuf: o.NoSyscallBuf, NoObservability: o.NoObservability,
		TemplateCacheSize: o.TemplateCacheSize}
	off := &Options{Seed: o.Seed, Jobs: o.Jobs, Experimental: o.Experimental,
		NoSyscallBuf: o.NoSyscallBuf, NoObservability: o.NoObservability,
		DisableTemplates: true}
	type tmplOut struct {
		ok, identical bool
	}
	outs := make([]tmplOut, len(specs))
	o.forEach(len(specs), func(l obs.Local, i int) {
		spec := specs[i]
		seed := pkgSeed(o.Seed, spec)
		ok, identical := true, true
		for r := 0; r < runs; r++ {
			v := reprotest.Perturbed(seed, r)
			warm := on.buildDT(l, spec, seed, v, nil)
			cold := off.buildDT(l, spec, seed, v, nil)
			wv, _ := warm.verdict()
			cv, _ := cold.verdict()
			if wv != cv {
				ok, identical = true, false // same inputs must fail the same way
				break
			}
			if wv != "" {
				ok = false
				break
			}
			if !bytes.Equal(warm.deb, cold.deb) || !bytes.Equal(warm.log, cold.log) {
				identical = false
			}
		}
		outs[i] = tmplOut{ok: ok, identical: ok && identical}
	})
	st := &TemplateStudy{Runs: runs}
	for _, to := range outs {
		if !to.ok {
			continue
		}
		st.Packages++
		if to.identical {
			st.Identical++
		}
	}
	son, soff := on.SetupStats(), off.SetupStats()
	st.SetupOnNs = son.SetupNs()
	st.SetupOffNs = soff.SetupNs()
	if st.SetupOnNs > 0 {
		st.SetupRatio = float64(st.SetupOffNs) / float64(st.SetupOnNs)
	}
	st.Hits, st.Misses, st.Evictions = son.TemplateHits, son.TemplateMisses, son.Evictions
	if son.ForkBoots > 0 {
		st.AvgForkNs = float64(son.ForkNs) / float64(son.ForkBoots)
		st.AvgRecEventsFork = float64(son.RecEventsFork) / float64(son.ForkBoots)
	}
	if soff.ColdBoots > 0 {
		st.AvgColdSetupNs = float64(soff.ColdSetupNs+soff.ImageBuildNs) / float64(soff.ColdBoots)
		st.AvgRecEventsCold = float64(soff.RecEventsCold) / float64(soff.ColdBoots)
	}
	return st
}
