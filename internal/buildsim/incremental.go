// Incremental rebuilds on the unified derivation store (ISSUE 8).
//
// A checkpointed build leaves a trail of derived artifacts in the store —
// one seal per quiescent stop, content-addressed by (image hash, config
// hash, job, ordinal). After a source patch, the rebuild does not start
// over: it diffs the patched tree's Merkle leaves against the base build's
// (fs.Image.TreeHash), maps the dirty leaves through the package's declared
// input sets (debpkg.InputSets), and asks derive.PlanRebuild for the
// freshest seal whose sealed prefix read none of the dirty files. That seal
// is forked — core.ResumePatched amends the dirty bytes into the restored
// filesystem before any guest instruction runs — and only the suffix
// executes: the un-run phases plus the compile units whose input-set leaves
// changed. Everything the seal already built (chunked make's object tree is
// the progress record) is reused from the derivation store.
//
// The correctness gate is the repo's standing oracle: the incremental
// rebuild must be bitwise-identical to a cold build of the patched tree —
// same .deb, same log, same exit, same virtual time. Whenever the planner
// cannot prove a seal's prefix clean (tree shape changed, an unclaimed path
// went dirty, every prefix read a patched file) the rebuild degrades to that
// cold build, trading time for the same bits. The DisableIncremental
// ablation is joined into the config hash, so cached state can never cross
// the ablation: incremental-on and incremental-off runs occupy disjoint key
// spaces while producing identical outputs.
package buildsim

import (
	"bytes"
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/debpkg"
	"repro/internal/derive"
	"repro/internal/fs"
	"repro/internal/obs"
	"repro/internal/reprotest"
	"repro/internal/stats"
)

// incrJobBit tags rebuild job identities so their seal keys can never
// collide with the distributed farm's job IDs (1..len(specs)) when both
// publish into the same shard store. PutSeal is first-wins, so a collision
// would silently serve another job's seals.
const incrJobBit = uint64(1) << 32

// rebuildSession is one package's incremental-rebuild state: the current
// source tree, its derivation key, and the job whose seals the next patch
// may fork. Each successful rebuild advances the session, so chained patch
// schedules diff each round against the tree the previous round built.
type rebuildSession struct {
	spec   *debpkg.Spec
	store  derive.Store
	img    *fs.Image
	pkgdir string
	state  derive.Key
	job    uint64
	tree   derive.TreeHash
	seed   uint64
	v      reprotest.Variation
}

func (s *rebuildSession) advance(img *fs.Image, tree derive.TreeHash, state derive.Key, job uint64) {
	s.img, s.tree, s.state, s.job = img, tree, state, job
}

// sealTo returns a CheckpointSink publishing every seal to the derivation
// store under (state, job) — the same keys the distributed farm's shard
// store uses, so seals sealed locally and seals sealed on a farm node are
// interchangeable fork sources.
func (o *Options) sealTo(l obs.Local, store derive.Store, state derive.Key, job uint64) func(*core.Checkpoint) {
	return func(cp *core.Checkpoint) {
		o.sc().ckptSealed.Add(l, 1)
		store.PutSeal(derive.SealKey{State: state, Job: job, Ordinal: cp.Ordinal()},
			cp, cp.Digest())
	}
}

// buildIncrBase runs the package's base build in checkpoint mode with every
// seal published to the store, and opens the rebuild session subsequent
// patches fork from.
func (o *Options) buildIncrBase(l obs.Local, spec *debpkg.Spec, seed uint64, v reprotest.Variation, store derive.Store) (*rebuildSession, dtRun) {
	img, pkgdir, imgHash := o.pkgImage(l, spec, "/build")
	if imgHash == 0 { // template ablation: pkgImage skips hashing
		imgHash = img.Hash()
	}
	cfg := o.dtConfig(img, pkgdir, seed, v)
	s := &rebuildSession{spec: spec, store: store, img: img, pkgdir: pkgdir,
		state: derive.KeyFor(imgHash, core.ConfigHash(cfg)),
		job:   incrJobBit | o.jobSeq.Add(1),
		tree:  img.TreeHash(), seed: seed, v: v}
	runCfg := cfg
	runCfg.CheckpointSink = o.sealTo(l, store, s.state, s.job)
	res := o.runContainer(l, runCfg, img, imgHash, checkpointEnv)
	return s, dtRunFrom(res, spec, pkgdir)
}

// patchBytes is a shape-preserving content edit: the last decimal digit is
// bumped (wrapping), falling back to a low-bit flip of the last byte. Every
// materialized source carries digits, so repeated rounds keep producing
// fresh content without touching the tree shape.
func patchBytes(data []byte) []byte {
	out := append([]byte(nil), data...)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] >= '0' && out[i] <= '9' {
			out[i] = '0' + (out[i]-'0'+1)%10
			return out
		}
	}
	if len(out) > 0 {
		out[len(out)-1] ^= 1
		return out
	}
	return []byte{'x'}
}

// patchImage clones img and edits each named path's content in place.
// Unknown paths are ignored — the planner sees exactly the leaves that
// actually moved.
func patchImage(img *fs.Image, paths ...string) *fs.Image {
	out := img.Clone()
	for _, p := range paths {
		e, ok := out.Entries[p]
		if !ok {
			continue
		}
		e.Data = patchBytes(e.Data)
		out.Entries[p] = e
	}
	return out
}

// sealInfos reads the job's seal trail out of the derivation store and
// derives each seal's rebuild-planning record from its sealed filesystem.
// Seals whose stored digest no longer matches their body — and transports
// that carry digests without bodies — are skipped: the planner only ever
// sees seals that could actually be forked.
func sealInfos(store derive.Store, state derive.Key, job uint64, pkgdir string) ([]derive.SealInfo, map[int]*core.Checkpoint) {
	latest := store.Latest(state, job)
	var infos []derive.SealInfo
	seals := make(map[int]*core.Checkpoint, latest)
	for ord := 1; ord <= latest; ord++ {
		v, digest, ok := store.Seal(derive.SealKey{State: state, Job: job, Ordinal: ord})
		if !ok {
			continue
		}
		cp, ok := v.(*core.Checkpoint)
		if !ok || cp.Digest() != digest {
			continue
		}
		infos = append(infos, cp.RebuildInfo(pkgdir))
		seals[ord] = cp
	}
	return infos, seals
}

// RebuildStats describes how one rebuild executed: which seal it forked,
// how the units split between reuse and re-execution, and what the rebuild
// cost in virtual time against the cold alternative. Benchmarking metadata
// only — the bits are identical either way.
type RebuildStats struct {
	Cold        bool // no seal was forkable: full rebuild
	SealOrdinal int  // seal forked (0 when cold)
	DirtyFiles  int  // tree leaves the patch moved
	UnitsTotal  int
	UnitsReused int // objects reused from the forked seal
	UnitsRedone int // units the suffix re-executed

	RebuildNs int64 // virtual work the rebuild executed (suffix only when forked)
	ColdNs    int64 // the run's full virtual time — what a cold rebuild costs
}

// incrementalRebuild rebuilds the session's package for the patched image
// pimg, forking the freshest valid seal when the planner allows it and
// degrading to a cold build otherwise (including under the ablation). The
// session advances to the patched tree either way, so chained schedules
// keep diffing against the tree actually built last.
func (o *Options) incrementalRebuild(l obs.Local, s *rebuildSession, pimg *fs.Image) (dtRun, RebuildStats) {
	sc := o.sc()
	ptree := pimg.TreeHash()
	pcfg := o.dtConfig(pimg, s.pkgdir, s.seed, s.v)
	pstate := derive.KeyFor(pimg.Hash(), core.ConfigHash(pcfg))
	pjob := incrJobBit | o.jobSeq.Add(1)

	cold := func(st RebuildStats) (dtRun, RebuildStats) {
		sc.incrCold.Add(l, 1)
		o.recordDerive(l, false, deriveGranPhase, s.state.Hash(), 0)
		runCfg := pcfg
		runCfg.CheckpointSink = o.sealTo(l, s.store, pstate, pjob)
		res := o.runContainer(l, runCfg, pimg, pimg.Hash(), checkpointEnv)
		r := dtRunFrom(res, s.spec, s.pkgdir)
		s.advance(pimg, ptree, pstate, pjob)
		st.Cold, st.SealOrdinal = true, 0
		st.UnitsTotal, st.UnitsReused, st.UnitsRedone = s.spec.Units, 0, s.spec.Units
		st.RebuildNs, st.ColdNs = r.wall, r.wall
		return r, st
	}

	if !o.Incremental {
		return cold(RebuildStats{})
	}

	infos, seals := sealInfos(s.store, s.state, s.job, s.pkgdir)
	plan := derive.PlanRebuild(s.tree, ptree, debpkg.InputSets(s.spec, s.pkgdir), infos)
	st := RebuildStats{SealOrdinal: plan.Ordinal, DirtyFiles: len(plan.Dirty),
		UnitsTotal:  s.spec.Units,
		UnitsReused: len(plan.Reused), UnitsRedone: s.spec.Units - len(plan.Reused)}
	cp := seals[plan.Ordinal]
	if plan.Cold || cp == nil {
		return cold(RebuildStats{DirtyFiles: len(plan.Dirty)})
	}

	patch := make(map[string][]byte, len(plan.Dirty))
	for _, p := range plan.Dirty {
		patch[p] = append([]byte(nil), pimg.Entries[p].Data...)
	}
	runCfg := pcfg
	runCfg.CheckpointSink = o.sealTo(l, s.store, pstate, pjob)
	res, err := core.ResumePatched(cp, registry(), runCfg, patch)
	if err != nil {
		// The seal and the patch disagree (shape drift, config mismatch):
		// the plan was unusable after all. Cold is always sound.
		sc.ckptInvalid.Add(l, 1)
		return cold(RebuildStats{DirtyFiles: len(plan.Dirty)})
	}
	sc.incrRebuilds.Add(l, 1)
	sc.deriveUnitsReused.Add(l, int64(st.UnitsReused))
	sc.deriveUnitsRedone.Add(l, int64(st.UnitsRedone))
	o.recordDerive(l, true, deriveGranPhase, s.state.Hash(), int32(plan.Ordinal))
	o.recordDerive(l, true, deriveGranUnit, s.state.Hash(), int32(st.UnitsReused))
	if st.UnitsRedone > 0 {
		o.recordDerive(l, false, deriveGranUnit, pstate.Hash(), int32(st.UnitsRedone))
	}
	o.Obs().Absorb(res.Obs)
	r := dtRunFrom(res, s.spec, s.pkgdir)
	st.RebuildNs = r.wall - cp.VirtualNow()
	st.ColdNs = r.wall
	s.advance(pimg, ptree, pstate, pjob)
	return r, st
}

// runPatchedCold is the oracle build: a cold checkpoint-mode run of an
// explicit (patched) image, no derivation-store involvement. An incremental
// rebuild is correct iff it lands on this run's exact bits.
func (o *Options) runPatchedCold(l obs.Local, spec *debpkg.Spec, pimg *fs.Image, pkgdir string, seed uint64, v reprotest.Variation) dtRun {
	cfg := o.dtConfig(pimg, pkgdir, seed, v)
	res := o.runContainer(l, cfg, pimg, pimg.Hash(), checkpointEnv)
	return dtRunFrom(res, spec, pkgdir)
}

// RoundResult is one patch round's build observables — the comparison
// payload of the incremental-equivalence property (exit, virtual time,
// .deb, build log). RebuildStats travel separately: reuse accounting
// legitimately differs across the ablation while these bytes must not.
type RoundResult struct {
	Exit int
	Wall int64
	Deb  []byte
	Log  []byte
}

func roundOf(r dtRun) RoundResult {
	return RoundResult{Exit: r.exit, Wall: r.wall, Deb: r.deb, Log: r.log}
}

// patchSchedule derives the deterministic chained patch schedule for one
// package: reprotest.PatchFor picks 1-3 candidate files per round. With
// unitsOnly the candidates are the compile units and each round is trimmed
// to a single file — X18's "one-file patch" shape; otherwise the Makefile,
// debian/rules and a header join the pool, so random dirty subsets also
// exercise the shared- and phase-input invalidation classes.
func patchSchedule(spec *debpkg.Spec, pkgdir string, seed uint64, rounds int, unitsOnly bool) [][]string {
	var cand []string
	for u := 0; u < spec.Units; u++ {
		cand = append(cand, fmt.Sprintf("%s/src/unit%03d.c", pkgdir, u))
	}
	if !unitsOnly {
		cand = append(cand, pkgdir+"/Makefile", pkgdir+"/debian/rules")
		if spec.Headers > 0 {
			cand = append(cand, pkgdir+"/include/h000.h")
		}
	}
	sched := make([][]string, 0, rounds)
	for _, round := range reprotest.PatchFor(seed, len(cand), rounds) {
		if unitsOnly {
			round = round[:1]
		}
		paths := make([]string, 0, len(round))
		for _, i := range round {
			paths = append(paths, cand[i])
		}
		sched = append(sched, paths)
	}
	return sched
}

// RebuildRounds drives one package through a chained patch schedule: base
// build into the store, then per round patch the current tree and rebuild —
// incrementally when o.Incremental, cold otherwise. The schedule is a pure
// function of (Seed, spec), so two Options differing only in Jobs, store
// shape or the ablation run the identical schedule and must produce
// DeepEqual []RoundResult. Returns the base run last; a failed base yields
// nil rounds.
func (o *Options) RebuildRounds(l obs.Local, spec *debpkg.Spec, store derive.Store, rounds int, unitsOnly bool) ([]RoundResult, []RebuildStats, dtRun) {
	seed := pkgSeed(o.Seed, spec)
	v1, _ := reprotest.Pair(seed)
	s, base := o.buildIncrBase(l, spec, seed, v1, store)
	if v, _ := base.verdict(); v != "" {
		return nil, nil, base
	}
	results := make([]RoundResult, 0, rounds)
	rstats := make([]RebuildStats, 0, rounds)
	for _, paths := range patchSchedule(spec, s.pkgdir, seed, rounds, unitsOnly) {
		pimg := patchImage(s.img, paths...)
		r, st := o.incrementalRebuild(l, s, pimg)
		results = append(results, roundOf(r))
		rstats = append(rstats, st)
	}
	return results, rstats, base
}

// PatchRebuild is the single-package incremental gate behind
// `reprotest -patch PKG:FILE`: build the package checkpointed, patch one
// source file (default the first compile unit), rebuild incrementally, and
// compare bitwise against a cold double build of the same patched tree. The
// double build pins that the patched tree is itself deterministic; the
// incremental run must land on those exact bits. The report is
// human-readable; ok is the machine verdict.
func (o *Options) PatchRebuild(spec *debpkg.Spec, file string) (report string, ok bool) {
	on := &Options{Seed: o.Seed, Checkpoints: true, Incremental: true}
	l := obs.NewLocal()
	seed := pkgSeed(o.Seed, spec)
	v1, _ := reprotest.Pair(seed)
	s, base := on.buildIncrBase(l, spec, seed, v1, derive.NewMemStore())
	if v, _ := base.verdict(); v != "" {
		return fmt.Sprintf("base build did not complete: %s", v), false
	}
	if file == "" {
		file = "src/unit000.c"
	}
	path := file
	if !strings.HasPrefix(path, "/") {
		path = s.pkgdir + "/" + path
	}
	if _, present := s.img.Entries[path]; !present {
		return fmt.Sprintf("no such file in the package tree: %s", path), false
	}
	pimg := patchImage(s.img, path)
	incr, st := on.incrementalRebuild(l, s, pimg)

	off := &Options{Seed: o.Seed, Checkpoints: true}
	c1 := off.runPatchedCold(l, spec, pimg, s.pkgdir, seed, v1)
	c2 := off.runPatchedCold(l, spec, pimg, s.pkgdir, seed, v1)
	det := c1.exit == c2.exit && c1.wall == c2.wall &&
		bytes.Equal(c1.deb, c2.deb) && bytes.Equal(c1.log, c2.log)
	match := incr.exit == c1.exit && incr.wall == c1.wall &&
		bytes.Equal(incr.deb, c1.deb) && bytes.Equal(incr.log, c1.log)
	ok = det && match

	how := fmt.Sprintf("forked seal ordinal %d: %d/%d units reused, %d re-executed (%.1f s virtual of %.1f s)",
		st.SealOrdinal, st.UnitsReused, st.UnitsTotal, st.UnitsRedone,
		float64(st.RebuildNs)/1e9, float64(st.ColdNs)/1e9)
	if st.Cold {
		how = "degraded to a cold rebuild (no reusable seal)"
	}
	verdict := "bitwise-identical to the cold build of the patch"
	switch {
	case !det:
		verdict = "cold double build DIVERGED (patched tree not deterministic)"
	case !match:
		verdict = "DIVERGED from the cold build of the patch"
	}
	report = fmt.Sprintf(
		"base: %.1f s virtual, %d units\n"+
			"patched %s (%d dirty leaf)\n"+
			"incremental rebuild %s\n"+
			"rebuilt run %s",
		float64(base.wall)/1e9, spec.Units,
		path, st.DirtyFiles, how, verdict)
	return report, ok
}

// IncrementalStudy is the X18 experiment: every package base-built into the
// derivation store, then patched through a random unit schedule and rebuilt
// twice — incrementally and cold. Identical must equal Rounds (the oracle);
// the headline is the rebuild-time win: virtual suffix work per forked
// rebuild versus the cold rebuild's full run.
type IncrementalStudy struct {
	Packages int // packages whose base builds completed under both farms
	Rounds   int // patch rounds compared (across all packages)

	Forked    int // rounds that forked a seal
	ColdFalls int // rounds the planner sent cold
	Identical int // rounds bitwise-identical to the cold rebuild

	UnitsTotal  int64 // compile units across forked rounds
	UnitsReused int64 // objects reused from forked seals
	UnitsRedone int64 // units re-executed in rebuild suffixes

	AvgRebuildNs float64 // virtual work per forked rebuild
	AvgColdNs    float64 // virtual time per cold rebuild
	Speedup      float64 // geometric-mean cold/rebuild ratio over forked rounds
}

// String renders the study summary.
func (st *IncrementalStudy) String() string {
	return fmt.Sprintf(
		"packages: %d, %d patch rounds; bitwise-identical to cold rebuild: %s\n"+
			"rounds: %d forked a seal, %d degraded to cold\n"+
			"units: %d/%d reused from the derivation store, %d re-executed\n"+
			"rebuild time: %.1f s virtual incremental vs %.1f s cold (%.1fx geomean speedup over forked rounds)",
		st.Packages, st.Rounds, stats.Pct(st.Identical, st.Rounds),
		st.Forked, st.ColdFalls,
		st.UnitsReused, st.UnitsTotal, st.UnitsRedone,
		st.AvgRebuildNs/1e9, st.AvgColdNs/1e9, st.Speedup)
}

// RunIncrementalStudy runs X18 over specs: `rounds` single-file patches per
// package (rounds <= 0 selects 3), every round rebuilt through an
// incremental farm sharing one derivation store and through a cold farm,
// outputs compared bitwise round by round.
func (o *Options) RunIncrementalStudy(specs []*debpkg.Spec, rounds int) *IncrementalStudy {
	if rounds <= 0 {
		rounds = 3
	}
	on := &Options{Seed: o.Seed, Jobs: o.Jobs, Checkpoints: true, Incremental: true,
		TemplateCacheSize: o.TemplateCacheSize, CheckpointCacheSize: o.CheckpointCacheSize}
	off := &Options{Seed: o.Seed, Jobs: o.Jobs, Checkpoints: true,
		TemplateCacheSize: o.TemplateCacheSize, CheckpointCacheSize: o.CheckpointCacheSize}
	store := derive.NewMemStore()
	type iOut struct {
		ok         bool
		warm, cold []RoundResult
		warmStats  []RebuildStats
	}
	outs := make([]iOut, len(specs))
	o.forEach(len(specs), func(l obs.Local, i int) {
		spec := specs[i]
		warm, wst, wbase := on.RebuildRounds(l, spec, store, rounds, true)
		if v, _ := wbase.verdict(); v != "" {
			return
		}
		coldRs, _, cbase := off.RebuildRounds(l, spec, derive.NewMemStore(), rounds, true)
		if v, _ := cbase.verdict(); v != "" {
			return
		}
		outs[i] = iOut{ok: true, warm: warm, cold: coldRs, warmStats: wst}
	})
	st := &IncrementalStudy{}
	var rebuildNs, coldNs int64
	var lnRatio float64
	for _, io := range outs {
		if !io.ok {
			continue
		}
		st.Packages++
		for r := range io.warm {
			st.Rounds++
			w, c := io.warm[r], io.cold[r]
			if w.Exit == c.Exit && w.Wall == c.Wall &&
				bytes.Equal(w.Deb, c.Deb) && bytes.Equal(w.Log, c.Log) {
				st.Identical++
			}
			ws := io.warmStats[r]
			coldNs += c.Wall
			if ws.Cold {
				st.ColdFalls++
				continue
			}
			st.Forked++
			st.UnitsTotal += int64(ws.UnitsTotal)
			st.UnitsReused += int64(ws.UnitsReused)
			st.UnitsRedone += int64(ws.UnitsRedone)
			rebuildNs += ws.RebuildNs
			if ws.RebuildNs > 0 && c.Wall > 0 {
				lnRatio += math.Log(float64(c.Wall) / float64(ws.RebuildNs))
			}
		}
	}
	if st.Forked > 0 {
		st.AvgRebuildNs = float64(rebuildNs) / float64(st.Forked)
	}
	if st.Rounds > 0 {
		st.AvgColdNs = float64(coldNs) / float64(st.Rounds)
	}
	if st.Forked > 0 {
		st.Speedup = math.Exp(lnRatio / float64(st.Forked))
	}
	return st
}
