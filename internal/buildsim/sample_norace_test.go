//go:build !race

package buildsim

// aggSample sizes the Table-1 marginals sample: the full default benchtab
// sample when the race detector is off.
const aggSample = 1200
