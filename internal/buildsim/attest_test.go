package buildsim

import (
	"reflect"
	"testing"

	"repro/internal/debpkg"
	"repro/internal/reprotest"
)

// TestAttestAdmittedSetEquivalence is the attestation oracle: the admitted
// statement set and the build output are bitwise-identical across fault
// schedules x node counts x slot counts. A lie that slipped past admission,
// a quarantine that moved an output, or a schedule-impure ring digest all
// surface here as a bit difference.
func TestAttestAdmittedSetEquivalence(t *testing.T) {
	specs := debpkg.Universe(3, 2)
	ref := &Options{Seed: 7, Checkpoints: true, Distributed: true,
		Nodes: 1, NodeSlots: 1, Attest: true}
	wantOuts := ref.BuildAll(specs, nil)
	wantAdmitted := ref.AdmittedSet()
	if len(wantAdmitted) != len(specs) {
		t.Fatalf("reference admitted %d statements, want %d", len(wantAdmitted), len(specs))
	}
	for _, nodes := range []int{3, 8} {
		for _, slots := range []int{1, 4} {
			for _, plan := range []reprotest.FaultPlan{
				{},
				{LieOutput: 1},
				{LieOutput: 2, WithholdCosign: 3},
				{EquivocateEpoch: 1, CorruptAttestation: 1},
			} {
				cell := &Options{Seed: 7, Checkpoints: true, Distributed: true,
					Nodes: nodes, NodeSlots: slots, Attest: true, FarmPlan: plan}
				got := cell.BuildAll(specs, nil)
				if !reflect.DeepEqual(got, wantOuts) {
					t.Errorf("nodes=%d slots=%d plan=%+v: build output diverged", nodes, slots, plan)
				}
				if admitted := cell.AdmittedSet(); !reflect.DeepEqual(admitted, wantAdmitted) {
					t.Errorf("nodes=%d slots=%d plan=%+v: admitted set diverged\n got %+v\nwant %+v",
						nodes, slots, plan, admitted, wantAdmitted)
				}
			}
		}
	}
}

// TestAttestQuarantineNamesAdversaries pins that every seated Byzantine
// worker is identified and quarantined, and that honest workers never are.
func TestAttestQuarantineNamesAdversaries(t *testing.T) {
	specs := debpkg.Universe(3, 2)
	for _, tc := range []struct {
		plan  reprotest.FaultPlan
		seats []int
	}{
		{reprotest.FaultPlan{LieOutput: 1}, []int{1}},
		{reprotest.FaultPlan{CorruptAttestation: 2}, []int{2}},
		{reprotest.FaultPlan{WithholdCosign: 3}, []int{3}},
		{reprotest.FaultPlan{LieOutput: 1, WithholdCosign: 2}, []int{1, 2}},
	} {
		cell := &Options{Seed: 7, Checkpoints: true, Distributed: true,
			Nodes: 5, Attest: true, FarmPlan: tc.plan}
		cell.BuildAll(specs, nil)
		quarantined := cell.quarantinedOrds()
		if !quarantinedAll(tc.seats, quarantined) {
			t.Errorf("plan %+v: quarantined %v, want superset of %v", tc.plan, quarantined, tc.seats)
		}
		for _, ord := range quarantined {
			seated := false
			for _, s := range tc.seats {
				if ord == s {
					seated = true
				}
			}
			if !seated {
				t.Errorf("plan %+v: honest worker %d quarantined (quarantined=%v)", tc.plan, ord, quarantined)
			}
		}
	}
}

// TestAttestHonestFarmCleanRun pins the no-fault baseline: no lies, no
// quarantines, every job attested and admitted, epochs sealed.
func TestAttestHonestFarmCleanRun(t *testing.T) {
	specs := debpkg.Universe(4, 2)
	o := &Options{Seed: 3, Checkpoints: true, Distributed: true,
		Nodes: 3, Attest: true}
	o.BuildAll(specs, nil)
	st, ok := o.FarmStats()
	if !ok {
		t.Fatal("no farm stats after distributed run")
	}
	if st.LiesDetected != 0 || st.Quarantines != 0 || st.CorruptAttestations != 0 {
		t.Errorf("honest farm reported faults: lies=%d corrupt=%d quarantines=%d",
			st.LiesDetected, st.CorruptAttestations, st.Quarantines)
	}
	if st.Attestations == 0 || st.Rebuilds == 0 || st.EpochsSealed == 0 {
		t.Errorf("attestation plane idle: attestations=%d rebuilds=%d epochs=%d",
			st.Attestations, st.Rebuilds, st.EpochsSealed)
	}
	if got := len(o.AdmittedSet()); got != len(specs) {
		t.Errorf("admitted %d statements, want %d", got, len(specs))
	}
}

// TestAttestVerifierConfirmsAndRefutes pins the rebuild-free verifier's two
// obligations: every admitted artifact verifies from the log alone, and a
// claim the log contradicts is refuted — never verified.
func TestAttestVerifierConfirmsAndRefutes(t *testing.T) {
	specs := debpkg.Universe(3, 2)
	o := &Options{Seed: 5, Checkpoints: true, Distributed: true,
		Nodes: 3, Attest: true}
	o.BuildAll(specs, nil)
	v := o.AttestVerifier()
	if v == nil {
		t.Fatal("no verifier after attested run")
	}
	for _, s := range o.AdmittedSet() {
		vd := v.Verify(s.Subject, s.Job, s.Output)
		if !vd.OK || vd.Refuted {
			t.Errorf("job %d: admitted artifact not verified: %+v", s.Job, vd)
		}
		fd := v.Verify(s.Subject, s.Job, s.Output^0xDEAD)
		if fd.OK {
			t.Errorf("job %d: false claim verified: %+v", s.Job, fd)
		}
		if !fd.Refuted {
			t.Errorf("job %d: false claim not refuted: %+v", s.Job, fd)
		}
	}
}

// TestByzantineGate runs the reprotest -attest -byzantine gate end to end at
// every supported adversary count.
func TestByzantineGate(t *testing.T) {
	spec := debpkg.Universe(1, 1)[0]
	for n := 1; n <= 4; n++ {
		o := &Options{Seed: 9}
		report, ok := o.ByzantineGate(spec, n)
		if !ok {
			t.Errorf("ByzantineGate(n=%d) failed:\n%s", n, report)
		}
	}
}

// TestRunAttestStudySmall exercises the X20 sweep on a reduced grid via the
// full-size entry point with a tiny package set.
func TestRunAttestStudySmall(t *testing.T) {
	if testing.Short() {
		t.Skip("X20 sweep is slow")
	}
	specs := debpkg.Universe(2, 1)
	o := &Options{Seed: 11}
	st := o.RunAttestStudy(specs)
	if !st.Pass() {
		t.Errorf("X20 study failed its pinned claims:\n%s", st)
	}
	if st.LiesDetected == 0 {
		t.Error("X20 seated liars but detected no lies")
	}
}
