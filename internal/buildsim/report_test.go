package buildsim

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/debpkg"
	"repro/internal/stats"
)

// The marginals sample is built once and shared across the report tests
// (aggSample packages — see sample_norace_test.go / sample_race_test.go).
var (
	aggOnce sync.Once
	aggOuts []Out
	aggRep  *Report
)

func aggregateSample(t *testing.T) ([]Out, *Report) {
	t.Helper()
	aggOnce.Do(func() {
		specs := debpkg.Universe(1, aggSample)
		aggOuts = (&Options{Seed: 1, Jobs: 8}).BuildAll(specs, nil)
		aggRep = Aggregate(aggOuts)
	})
	return aggOuts, aggRep
}

// Every package lands in exactly one bucket: a Cells[bl][dt] cell, BLFail,
// or BLTimeout — the counts conserve the sample size.
func TestAggregateConservation(t *testing.T) {
	outs, r := aggregateSample(t)
	cellSum := 0
	for _, row := range r.Cells {
		for _, n := range row {
			cellSum += n
		}
	}
	if got := cellSum + r.BLFail + r.BLTimeout; got != len(outs) {
		t.Errorf("cells (%d) + BLFail (%d) + BLTimeout (%d) = %d, want %d",
			cellSum, r.BLFail, r.BLTimeout, got, len(outs))
	}
	if r.Packages != len(outs) {
		t.Errorf("Packages = %d, want %d", r.Packages, len(outs))
	}
	if rowTotal(r.Cells[string(Reproducible)]) != r.BLRepro {
		t.Errorf("reproducible row total %d != BLRepro %d",
			rowTotal(r.Cells[string(Reproducible)]), r.BLRepro)
	}
	if rowTotal(r.Cells[string(Irreproducible)]) != r.BLIrrepro {
		t.Errorf("irreproducible row total %d != BLIrrepro %d",
			rowTotal(r.Cells[string(Irreproducible)]), r.BLIrrepro)
	}
}

// pct is a plain percentage for tolerance checks.
func pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}

// The measured Table 1 marginals must land near the paper's proportions
// (targets derived from the Table 1 counts in debpkg, not re-transcribed).
func TestTable1Marginals(t *testing.T) {
	_, r := aggregateSample(t)

	// DetTrace "rescues" baseline-irreproducible packages: paper 72.65%.
	irr := r.Cells[string(Irreproducible)]
	rescued := pct(irr[string(Reproducible)], rowTotal(irr))
	wantRescued := pct(debpkg.NBLIrrDTRepro,
		debpkg.NBLIrrDTRepro+debpkg.NBLIrrDTUnsup+debpkg.NBLIrrDTTime)
	if math.Abs(rescued-wantRescued) > 6 {
		t.Errorf("rescued = %.2f%%, want %.2f%% ± 6", rescued, wantRescued)
	}

	// Baseline-reproducible packages stay reproducible: paper ~90.5%.
	rep := r.Cells[string(Reproducible)]
	kept := pct(rep[string(Reproducible)], rowTotal(rep))
	wantKept := pct(debpkg.NBLReproDTRepro,
		debpkg.NBLReproDTRepro+debpkg.NBLReproDTUnsup+debpkg.NBLReproDTTime)
	if math.Abs(kept-wantKept) > 6 {
		t.Errorf("kept = %.2f%%, want %.2f%% ± 6", kept, wantKept)
	}

	// The container's whole point: no package is irreproducible under DT.
	if n := irr[string(Irreproducible)] + rep[string(Irreproducible)]; n != 0 {
		t.Errorf("%d packages DT-irreproducible, want 0", n)
	}

	// Baseline failures track the universe rate (paper 1,344/17,145).
	fails := pct(r.BLFail, r.Packages)
	wantFails := pct(debpkg.NBLFail, debpkg.UniverseSize)
	if math.Abs(fails-wantFails) > 4 {
		t.Errorf("baseline failures = %.2f%%, want %.2f%% ± 4", fails, wantFails)
	}

	// Busy-waiting dominates the §7.1.1 unsupported breakdown.
	unsupTotal := 0
	for _, n := range r.Unsup {
		unsupTotal += n
	}
	busy := pct(r.Unsup["busy-waiting"], unsupTotal)
	for class, n := range r.Unsup {
		if n > r.Unsup["busy-waiting"] {
			t.Errorf("unsupported class %q (%d) exceeds busy-waiting (%d)",
				class, n, r.Unsup["busy-waiting"])
		}
	}
	if busy < 30 || busy > 60 {
		t.Errorf("busy-waiting share = %.2f%%, want 30-60%%", busy)
	}

	// Aggregate slowdown lands in the paper's neighbourhood (3.49x).
	if r.AggregateSlowdown < 2 || r.AggregateSlowdown > 6 {
		t.Errorf("AggregateSlowdown = %.2f, want 2-6", r.AggregateSlowdown)
	}
}

// The bottom half of Table 1 is derived from the measured joint distribution
// (DESIGN.md §3), never transcribed from the paper's inconsistent row: each
// rendered DT-outcome share must equal the corresponding cell sums.
func TestTable1BottomDerived(t *testing.T) {
	_, r := aggregateSample(t)
	bottom := r.Table1Bottom()
	built := r.BLRepro + r.BLIrrepro
	for _, dt := range []Verdict{Reproducible, Irreproducible, Unsupported, Timeout} {
		nR := r.Cells[string(Reproducible)][string(dt)]
		nI := r.Cells[string(Irreproducible)][string(dt)]
		if want := stats.Pct(nR+nI, built); !strings.Contains(bottom, want) {
			t.Errorf("bottom table missing %s share %q:\n%s", dt, want, bottom)
		}
	}
	if !strings.Contains(bottom, "derived from the joint distribution") {
		t.Errorf("bottom table does not state its derivation:\n%s", bottom)
	}
	top := r.Table1Top()
	if !strings.Contains(top, "baseline build failures") {
		t.Errorf("top table missing the excluded-failures footer:\n%s", top)
	}
}

// Figure 5 carries one point per DT-completed build, and its CSV header
// reports the same aggregate the Report holds.
func TestFig5(t *testing.T) {
	_, r := aggregateSample(t)
	completed := r.Cells[string(Reproducible)][string(Reproducible)] +
		r.Cells[string(Reproducible)][string(Irreproducible)] +
		r.Cells[string(Irreproducible)][string(Reproducible)] +
		r.Cells[string(Irreproducible)][string(Irreproducible)]
	if len(r.Fig5) != completed {
		t.Errorf("Fig5 has %d points, want %d (DT-completed builds)", len(r.Fig5), completed)
	}
	for _, p := range r.Fig5 {
		if p.Rate <= 0 || p.Slowdown <= 0 {
			t.Fatalf("degenerate Fig5 point %+v", p)
		}
	}
	csv := r.Fig5Summary()
	if !strings.HasPrefix(csv, "#") || !strings.Contains(csv, "syscalls_per_sec,slowdown,threaded") {
		t.Errorf("Fig5Summary format:\n%.200s", csv)
	}
	if len(strings.Split(csv, "\n")) != len(r.Fig5)+2 {
		t.Errorf("Fig5Summary has %d lines, want %d", len(strings.Split(csv, "\n")), len(r.Fig5)+2)
	}
	// Table 2 averages exist whenever builds completed.
	if completed > 0 && (r.Table2.Syscalls <= 0 || r.Table2.Spawns <= 0) {
		t.Errorf("Table2 averages empty: %+v", r.Table2)
	}
}
