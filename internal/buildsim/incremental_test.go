package buildsim

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/debpkg"
	"repro/internal/derive"
	"repro/internal/farm"
	"repro/internal/obs"
	"repro/internal/reprotest"
)

// incrSpecs picks well-behaved multi-unit packages from the universe: builds
// that complete under DetTrace, with enough compile units that per-unit seal
// reuse has something to reuse.
func incrSpecs(t *testing.T, seed uint64, n, minUnits int) []*debpkg.Spec {
	t.Helper()
	var out []*debpkg.Spec
	for _, s := range debpkg.Universe(seed, 60) {
		if s.Class != debpkg.BLRepro_DTRepro && s.Class != debpkg.BLIrrepro_DTRepro {
			continue
		}
		if s.Units < minUnits || s.Compiler != "cc" || s.BrokenSource {
			continue
		}
		out = append(out, s)
		if len(out) == n {
			return out
		}
	}
	t.Fatalf("universe(%d) has only %d usable specs, want %d", seed, len(out), n)
	return nil
}

// TestPatchRebuildGate is the single-package incremental gate: patch one
// unit, rebuild from the derivation store, land bitwise on the cold build of
// the patch — and actually fork a seal while doing it.
func TestPatchRebuildGate(t *testing.T) {
	spec := incrSpecs(t, 5, 1, 3)[0]
	report, ok := (&Options{Seed: 5}).PatchRebuild(spec, "")
	if !ok {
		t.Fatalf("patch gate failed:\n%s", report)
	}
	if !strings.Contains(report, "forked seal ordinal") {
		t.Fatalf("gate degraded to a cold rebuild:\n%s", report)
	}
	t.Logf("\n%s", report)
}

// TestIncrementalEquivalence is the property test: the same chained patch
// schedule produces DeepEqual per-round observables across worker-pool
// sizes, derivation-store shapes (in-process MemStore vs farm shard maps of
// 1 and 3 shards) and the incremental ablation. Reuse may only move time,
// never a byte.
func TestIncrementalEquivalence(t *testing.T) {
	specs := incrSpecs(t, 7, 3, 2)
	const rounds = 3
	run := func(jobs int, incremental bool, store derive.Store) [][]RoundResult {
		o := &Options{Seed: 7, Jobs: jobs, Checkpoints: true, Incremental: incremental}
		outs := make([][]RoundResult, len(specs))
		o.forEach(len(specs), func(l obs.Local, i int) {
			rs, _, base := o.RebuildRounds(l, specs[i], store, rounds, false)
			if v, _ := base.verdict(); v != "" {
				t.Errorf("%s: base build did not complete: %s", specs[i].Name, v)
			}
			outs[i] = rs
		})
		return outs
	}

	// Reference: single worker, incremental, in-process store — and proof
	// the schedule exercises real seal forks, not wall-to-wall cold falls.
	refOpts := &Options{Seed: 7, Jobs: 1, Checkpoints: true, Incremental: true}
	refStore := derive.NewMemStore()
	ref := make([][]RoundResult, len(specs))
	forked := 0
	for i, spec := range specs {
		rs, sts, _ := refOpts.RebuildRounds(obs.NewLocal(), spec, refStore, rounds, false)
		ref[i] = rs
		for _, st := range sts {
			if !st.Cold {
				forked++
			}
		}
	}
	if forked == 0 {
		t.Fatal("no round forked a seal: the property would only compare cold builds")
	}

	cases := []struct {
		name        string
		jobs        int
		incremental bool
		store       derive.Store
	}{
		{"jobs4-mem", 4, true, derive.NewMemStore()},
		{"jobs16-mem", 16, true, derive.NewMemStore()},
		{"jobs1-shards1", 1, true, farm.NewShards(1)},
		{"jobs4-shards3", 4, true, farm.NewShards(3)},
		{"jobs1-cold", 1, false, derive.NewMemStore()},
		{"jobs4-cold-shards3", 4, false, farm.NewShards(3)},
	}
	for _, tc := range cases {
		got := run(tc.jobs, tc.incremental, tc.store)
		if !reflect.DeepEqual(got, ref) {
			for i := range got {
				if !reflect.DeepEqual(got[i], ref[i]) {
					t.Errorf("%s: %s diverged from reference schedule", tc.name, specs[i].Name)
				}
			}
			t.Fatalf("%s: rebuild observables != reference", tc.name)
		}
	}
	t.Logf("%d/%d rounds forked a seal in the reference schedule", forked, len(specs)*rounds)
}

// TestIncrementalSealsFromFarmShards pins the cross-node story: a
// distributed checkpointed build publishes its seals to the coordinator's
// shard store, and a local rebuild of a patched tree forks one of those
// farm-produced seals — landing on the cold build's exact bits.
func TestIncrementalSealsFromFarmShards(t *testing.T) {
	spec := incrSpecs(t, 9, 1, 3)[0]
	o := &Options{Seed: 9, Checkpoints: true, Incremental: true,
		Distributed: true, Nodes: 3}
	o.BuildAll([]*debpkg.Spec{spec}, nil)
	o.farmMu.Lock()
	cl := o.lastFarm
	o.farmMu.Unlock()
	if cl == nil {
		t.Fatal("distributed BuildAll left no cluster behind")
	}
	store := cl.Shards()

	l := obs.NewLocal()
	seed := pkgSeed(o.Seed, spec)
	v1, _ := reprotest.Pair(seed)
	img, pkgdir, imgHash := o.pkgImage(l, spec, "/build")
	cfg := o.dtConfig(img, pkgdir, seed, v1)
	state := derive.KeyFor(imgHash, core.ConfigHash(cfg))
	if store.Latest(state, 1) == 0 {
		t.Fatal("farm published no seals for job 1")
	}

	s := &rebuildSession{spec: spec, store: store, img: img, pkgdir: pkgdir,
		state: state, job: 1, tree: img.TreeHash(), seed: seed, v: v1}
	pimg := patchImage(img, pkgdir+"/src/unit000.c")
	got, st := o.incrementalRebuild(l, s, pimg)
	if st.Cold {
		t.Fatalf("rebuild went cold instead of forking a farm seal: %+v", st)
	}
	cold := (&Options{Seed: 9, Checkpoints: true}).
		runPatchedCold(obs.NewLocal(), spec, pimg, pkgdir, seed, v1)
	if got.exit != cold.exit || got.wall != cold.wall ||
		!bytes.Equal(got.deb, cold.deb) || !bytes.Equal(got.log, cold.log) {
		t.Fatalf("farm-seal rebuild diverged from the cold build of the patch")
	}
	t.Logf("forked farm seal ordinal %d: %d/%d units reused",
		st.SealOrdinal, st.UnitsReused, st.UnitsTotal)
}

// TestIncrementalAblationPartitionsKeys guards the key-space join: the
// DisableIncremental knob must flow into the config hash, so cached state
// can never cross the ablation.
func TestIncrementalAblationPartitionsKeys(t *testing.T) {
	spec := incrSpecs(t, 5, 1, 2)[0]
	l := obs.NewLocal()
	seed := pkgSeed(5, spec)
	v1, _ := reprotest.Pair(seed)
	on := &Options{Seed: 5, Incremental: true}
	off := &Options{Seed: 5}
	img, pkgdir, _ := on.pkgImage(l, spec, "/build")
	if core.ConfigHash(on.dtConfig(img, pkgdir, seed, v1)) ==
		core.ConfigHash(off.dtConfig(img, pkgdir, seed, v1)) {
		t.Fatal("DisableIncremental does not partition the derivation key space")
	}
}

// TestIncrementalStudy runs X18 small: every round bitwise-identical to its
// cold rebuild, seals actually forked, units actually reused, and a real
// rebuild-time win.
func TestIncrementalStudy(t *testing.T) {
	specs := incrSpecs(t, 11, 4, 3)
	st := (&Options{Seed: 11, Jobs: 2}).RunIncrementalStudy(specs, 2)
	if st.Rounds == 0 || st.Identical != st.Rounds {
		t.Fatalf("incremental rebuilds not bitwise-identical to cold: %+v", st)
	}
	if st.Forked == 0 || st.UnitsReused == 0 {
		t.Fatalf("study never reused derived state: %+v", st)
	}
	if st.Speedup <= 1 {
		t.Fatalf("no rebuild-time win: %+v", st)
	}
	t.Logf("\n%s", st)
}

// TestDeriveTraceRecordsReuse: the farm's derivation ring must carry the
// hit/miss events the rebuilds and template lookups produce.
func TestDeriveTraceRecordsReuse(t *testing.T) {
	spec := incrSpecs(t, 5, 1, 3)[0]
	o := &Options{Seed: 5, Checkpoints: true, Incremental: true}
	_, _, base := o.RebuildRounds(obs.NewLocal(), spec, derive.NewMemStore(), 2, true)
	if v, _ := base.verdict(); v != "" {
		t.Fatalf("base build did not complete: %s", v)
	}
	var hits, misses, phase int
	for _, ev := range o.DeriveTrace() {
		switch ev.Kind {
		case obs.KindDeriveHit:
			hits++
		case obs.KindDeriveMiss:
			misses++
		default:
			t.Fatalf("foreign event on the derive ring: %v", ev.Kind)
		}
		if ev.Ret == deriveGranPhase {
			phase++
		}
	}
	if hits == 0 || misses == 0 || phase == 0 {
		t.Fatalf("derive ring incomplete: %d hits, %d misses, %d phase-granularity events",
			hits, misses, phase)
	}
}
