package buildsim

import (
	"reflect"
	"testing"

	"repro/internal/debpkg"
)

// TestBuildAllJobsIndependence is the farm's core contract: the same sample
// built with one worker and with eight returns bitwise-identical results.
// Scheduling must leak nothing — per-package seeds derive from Options.Seed
// and the spec alone, and outputs land in spec order.
func TestBuildAllJobsIndependence(t *testing.T) {
	specs := debpkg.Universe(7, 60)
	serial := (&Options{Seed: 42, Jobs: 1}).BuildAll(specs, nil)
	parallel := (&Options{Seed: 42, Jobs: 8}).BuildAll(specs, nil)
	if len(serial) != len(specs) || len(parallel) != len(specs) {
		t.Fatalf("lengths: serial %d, parallel %d, want %d", len(serial), len(parallel), len(specs))
	}
	if !reflect.DeepEqual(serial, parallel) {
		for i := range serial {
			if !reflect.DeepEqual(serial[i], parallel[i]) {
				t.Fatalf("package %d (%s) diverges across worker counts:\nJobs=1: %+v\nJobs=8: %+v",
					i, specs[i].Name, serial[i], parallel[i])
			}
		}
		t.Fatal("results diverge across worker counts")
	}
	for i, out := range serial {
		if out.Index != i || out.Spec != specs[i] {
			t.Fatalf("out %d: Index=%d Spec=%s — results not in spec order", i, out.Index, out.Spec.Name)
		}
	}
}

// Progress callbacks are serialized: strictly increasing done counts, one
// call per package, correct total — even with a parallel pool.
func TestBuildAllProgressSerialized(t *testing.T) {
	specs := debpkg.Universe(3, 24)
	prev := 0
	calls := 0
	(&Options{Seed: 5, Jobs: 8}).BuildAll(specs, func(done, total int) {
		calls++
		if done != prev+1 {
			t.Errorf("progress done=%d after %d: not strictly increasing by one", done, prev)
		}
		if total != len(specs) {
			t.Errorf("progress total=%d, want %d", total, len(specs))
		}
		prev = done
	})
	if calls != len(specs) {
		t.Errorf("progress called %d times, want %d", calls, len(specs))
	}
}

// pkgSeed is a pure function of (farm seed, spec identity).
func TestPkgSeedPure(t *testing.T) {
	a := debpkg.LLVM()
	b := debpkg.LLVM()
	if pkgSeed(1, a) != pkgSeed(1, b) {
		t.Error("same identity, same farm seed: seeds differ")
	}
	if pkgSeed(1, a) == pkgSeed(2, a) {
		t.Error("different farm seeds: seeds collide")
	}
	specs := debpkg.Universe(1, 2)
	if pkgSeed(1, specs[0]) == pkgSeed(1, specs[1]) {
		t.Error("different specs: seeds collide")
	}
}

// BuildPackage on the hand-built llvm spec exercises the full protocol with
// a known outcome: natively irreproducible (timestamps, build paths, random)
// but reproducible under DetTrace, with timing observables filled in.
func TestBuildPackageLLVM(t *testing.T) {
	o := &Options{Seed: 1}
	out := o.BuildPackage(debpkg.LLVM())
	if out.BL != Irreproducible {
		t.Errorf("BL = %s, want %s", out.BL, Irreproducible)
	}
	if out.DT != Reproducible {
		t.Errorf("DT = %s, want %s", out.DT, Reproducible)
	}
	if out.BLTime <= 0 || out.DTTime <= 0 {
		t.Errorf("times: BL %d, DT %d, want both > 0", out.BLTime, out.DTTime)
	}
	if out.SyscallRate <= 0 {
		t.Errorf("SyscallRate = %f, want > 0", out.SyscallRate)
	}
	if out.Slowdown <= 1 {
		t.Errorf("Slowdown = %f, want > 1", out.Slowdown)
	}
	if out.Events.Syscalls <= 0 || out.Events.Spawns <= 0 {
		t.Errorf("events not recorded: %+v", out.Events)
	}
}

// A broken-source package fails its baseline build and never reaches the
// DetTrace phase.
func TestBuildPackageBaselineFail(t *testing.T) {
	var spec *debpkg.Spec
	for _, s := range debpkg.Universe(1, 400) {
		if s.Class == debpkg.BLFail {
			spec = s
			break
		}
	}
	if spec == nil {
		t.Skip("no bl-fail package in the first 400")
	}
	out := (&Options{Seed: 1}).BuildPackage(spec)
	if out.BL != Fail {
		t.Errorf("BL = %s, want %s", out.BL, Fail)
	}
	if out.DT != "" {
		t.Errorf("DT = %q, want empty (baseline failed)", out.DT)
	}
}
