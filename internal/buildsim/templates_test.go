package buildsim

import (
	"reflect"
	"testing"

	"repro/internal/debpkg"
)

// tmplSample sizes the template-equivalence farm: the acceptance floor is
// 120 packages, and debpkg.Universe keeps the class proportions for any
// prefix.
const tmplSample = 120

// The farm-level template contract: BuildAll's output — per-package verdicts,
// virtual times, tracer events, the Table 1/2 and Fig. 5 aggregates — is
// bitwise identical with templates on and off, at any Jobs, despite the
// hit/miss and eviction order changing with scheduling.
func TestFarmTemplateEquivalence(t *testing.T) {
	specs := debpkg.Universe(3, tmplSample)
	cold := (&Options{Seed: 3, Jobs: 4, DisableTemplates: true}).BuildAll(specs, nil)
	coldRep := Aggregate(cold)
	for _, jobs := range []int{1, 4, 16} {
		o := &Options{Seed: 3, Jobs: jobs}
		warm := o.BuildAll(specs, nil)
		if !reflect.DeepEqual(warm, cold) {
			for i := range warm {
				if !reflect.DeepEqual(warm[i], cold[i]) {
					t.Fatalf("jobs=%d: package %s diverged under template reuse:\nwarm: %+v\ncold: %+v",
						jobs, specs[i].Name, warm[i], cold[i])
				}
			}
		}
		warmRep := Aggregate(warm)
		for name, pair := range map[string][2]string{
			"table1":      {warmRep.Table1Top(), coldRep.Table1Top()},
			"table2":      {warmRep.Table2String(), coldRep.Table2String()},
			"fig5":        {warmRep.Fig5Summary(), coldRep.Fig5Summary()},
			"unsupported": {warmRep.UnsupportedBreakdown(), coldRep.UnsupportedBreakdown()},
		} {
			if pair[0] != pair[1] {
				t.Errorf("jobs=%d: %s aggregate diverged under template reuse", jobs, name)
			}
		}
		st := o.SetupStats()
		if st.ForkBoots == 0 || st.ColdBoots != 0 {
			t.Errorf("jobs=%d: expected all boots forked, got %d forked / %d cold", jobs, st.ForkBoots, st.ColdBoots)
		}
		if st.TemplateHits == 0 {
			t.Errorf("jobs=%d: template cache never hit across %d packages", jobs, len(specs))
		}
	}
	if st := (&Options{Seed: 3, Jobs: 4, DisableTemplates: true}).SetupStats(); st.SetupNs() != 0 {
		t.Errorf("fresh options carries setup state")
	}
}

// Back-to-back builds from one farm — the second package forks the very
// template the first one booted — must equal two cold builds: nothing a
// build does may leak back into the shared prepared state.
func TestTemplateBackToBackLeakFreedom(t *testing.T) {
	specs := debpkg.Universe(9, 6)
	for _, jobs := range []int{1, 4, 16} {
		warm := &Options{Seed: 9, Jobs: jobs}
		cold := &Options{Seed: 9, Jobs: jobs, DisableTemplates: true}
		for round := 0; round < 2; round++ {
			w := warm.BuildAll(specs, nil)
			c := cold.BuildAll(specs, nil)
			if !reflect.DeepEqual(w, c) {
				t.Fatalf("jobs=%d round %d: reused templates drifted from cold builds", jobs, round)
			}
		}
		if st := warm.SetupStats(); st.TemplateHits == 0 {
			t.Fatalf("jobs=%d: second round never hit the template cache", jobs)
		}
	}
}

// A pathologically small cache forces evictions mid-farm; results must not
// notice. Misses exceed the steady-state count and evictions fire, yet the
// output still matches the ablated farm.
func TestTemplateEvictionInvisible(t *testing.T) {
	specs := debpkg.Universe(5, 24)
	o := &Options{Seed: 5, Jobs: 8, TemplateCacheSize: 2}
	warm := o.BuildAll(specs, nil)
	cold := (&Options{Seed: 5, Jobs: 8, DisableTemplates: true}).BuildAll(specs, nil)
	if !reflect.DeepEqual(warm, cold) {
		t.Fatalf("evicting template cache changed farm output")
	}
	if st := o.SetupStats(); st.Evictions == 0 {
		t.Errorf("cache size 2 over %d packages produced no evictions (stats: %+v)", len(specs), st)
	}
}

// Setup accounting: the templated farm forks everything, the ablated farm
// boots everything cold, and the per-boot fork cost undercuts the per-boot
// cold cost — the amortization the -templates study reports.
func TestSetupStatsAccounting(t *testing.T) {
	specs := debpkg.Universe(7, 16)
	warm := &Options{Seed: 7, Jobs: 4}
	warm.BuildAll(specs, nil)
	ws := warm.SetupStats()
	if ws.ColdBoots != 0 || ws.ForkBoots == 0 || ws.ColdSetupNs != 0 {
		t.Errorf("templated farm took cold boots: %+v", ws)
	}
	if ws.ImageHits == 0 || ws.TemplateHits == 0 {
		t.Errorf("templated farm never reused prepared state: %+v", ws)
	}

	cold := &Options{Seed: 7, Jobs: 4, DisableTemplates: true}
	cold.BuildAll(specs, nil)
	cs := cold.SetupStats()
	if cs.ForkBoots != 0 || cs.ColdBoots == 0 || cs.ForkNs != 0 || cs.PrepareNs != 0 {
		t.Errorf("ablated farm forked: %+v", cs)
	}
	if cs.ImageHits != 0 {
		t.Errorf("ablated farm used the image memo: %+v", cs)
	}
}

// The study itself: every on/off pair bitwise-identical, and the cold farm's
// setup bill is a multiple of the templated one.
func TestTemplateStudy(t *testing.T) {
	st := (&Options{Seed: 1, Jobs: 4}).RunTemplateStudy(debpkg.Universe(1, 12), 4)
	if st.Packages == 0 {
		t.Fatal("no packages completed")
	}
	if st.Identical != st.Packages {
		t.Errorf("templates changed build output: %d/%d identical", st.Identical, st.Packages)
	}
	if st.Runs != 4 {
		t.Errorf("Runs = %d, want 4", st.Runs)
	}
	if st.SetupRatio <= 1 {
		t.Errorf("template reuse did not reduce setup cost: %.2fx (on=%dns off=%dns)",
			st.SetupRatio, st.SetupOnNs, st.SetupOffNs)
	}
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("implausible cache traffic: %d hits, %d misses", st.Hits, st.Misses)
	}
	if st.String() == "" {
		t.Error("empty study rendering")
	}
}
