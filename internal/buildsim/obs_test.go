package buildsim

import (
	"reflect"
	"testing"

	"repro/internal/debpkg"
	"repro/internal/obs"
)

// The farm-level observation contract: BuildAll's output is bitwise identical
// with the flight recorder on and off, at any Jobs. Recording must never act
// back on what it records.
func TestFarmObservabilityEquivalence(t *testing.T) {
	specs := debpkg.Universe(5, 40)
	off := (&Options{Seed: 5, Jobs: 4, NoObservability: true}).BuildAll(specs, nil)
	for _, jobs := range []int{1, 4, 16} {
		on := (&Options{Seed: 5, Jobs: jobs}).BuildAll(specs, nil)
		if !reflect.DeepEqual(on, off) {
			for i := range on {
				if !reflect.DeepEqual(on[i], off[i]) {
					t.Fatalf("jobs=%d: package %s diverged under observation:\non:  %+v\noff: %+v",
						jobs, specs[i].Name, on[i], off[i])
				}
			}
			t.Fatalf("jobs=%d: farms differ under observation", jobs)
		}
	}
}

// Two identical diagnostic runs retain byte-identical complete event streams;
// the diagnoser finds nothing.
func TestDiagnoseCleanRunsIdentical(t *testing.T) {
	spec := debpkg.Universe(1, 1)[0]
	r := (&Options{Seed: 1}).Diagnose(spec, 0)
	if r.VerdictA != "" || r.VerdictB != "" {
		t.Fatalf("diagnostic builds did not complete: %q / %q", r.VerdictA, r.VerdictB)
	}
	if !r.OutputIdentical {
		t.Errorf("identical inputs produced differing outputs")
	}
	if r.EventsA == 0 || r.EventsA != r.EventsB {
		t.Errorf("event streams differ in length: %d vs %d", r.EventsA, r.EventsB)
	}
	if r.Divergence != nil {
		t.Errorf("clean double build diverged:\n%s", r.Divergence)
	}
}

// A seeded entropy perturbation in a full modeled package build is localized
// by the diagnoser to the exact first divergent event: the perturbed draw.
func TestDiagnoseLocalizesInjectedEntropy(t *testing.T) {
	const inject = 1
	spec := debpkg.Universe(1, 1)[0]
	r := (&Options{Seed: 1}).Diagnose(spec, inject)
	if r.VerdictA != "" || r.VerdictB != "" {
		t.Fatalf("diagnostic builds did not complete: %q / %q", r.VerdictA, r.VerdictB)
	}
	d := r.Divergence
	if d == nil {
		t.Fatal("injected entropy fault produced no divergence")
	}
	if d.A == nil || d.A.Kind != obs.KindEntropy {
		t.Fatalf("first divergence is %v, want the perturbed entropy draw", d.A)
	}
	if draw := d.A.Arg >> 32; draw != inject {
		t.Errorf("diagnoser localized draw %d, want draw %d", draw, inject)
	}
	// The aligned event in the faulty stream is the same draw with different
	// payload bytes — the divergence is exact, not smeared downstream.
	if d.B == nil || d.B.Kind != obs.KindEntropy || d.B.Arg != d.A.Arg || d.B.Ret == d.A.Ret {
		t.Errorf("divergent events misaligned: A=%v B=%v", d.A, d.B)
	}
}

// Out's trace fields stay empty unless KeepTraces asks for them — they carry
// mechanism-dependent metadata (fork-only COW events, wall-clock span costs)
// that must not leak into the path-independence comparisons above.
func TestKeepTracesGating(t *testing.T) {
	specs := debpkg.Universe(5, 2)
	plain := (&Options{Seed: 5}).BuildAll(specs, nil)
	for _, out := range plain {
		if out.RecEvents != 0 || out.Trace != nil || out.Spans != nil {
			t.Fatalf("default farm retained trace data: %+v", out)
		}
	}
	kept := (&Options{Seed: 5, KeepTraces: true}).BuildAll(specs, nil)
	some := false
	for _, out := range kept {
		if len(out.Trace) > 0 && len(out.Spans) > 0 && out.RecEvents > 0 {
			some = true
		}
	}
	if !some {
		t.Fatalf("KeepTraces farm retained no traces")
	}
}
