// Package buildsim is the evaluation driver: the parallel build farm that
// runs the paper's §6.1 protocol over the debpkg universe. For every package
// it performs the reprotest double build twice — natively under adversarial
// environment perturbation, and inside the DetTrace container — compares the
// .debs bitwise with diffoscope/stripnd semantics, and classifies the result
// into the Table 1 cells. The aggregate layer (report.go) produces Table 1,
// Table 2, the §7.1.1 breakdown and the Figure 5 data; studies.go holds the
// §6.1 stock baseline, §7.1.3 rr, §7.2 LLVM and §7.3 portability studies.
//
// The farm itself obeys the discipline it measures: BuildAll fans packages
// across a Jobs-sized worker pool, and its output is bitwise-independent of
// Jobs. Every package's randomness derives from Options.Seed and the spec
// alone (never from scheduling), results land in spec order, and progress
// callbacks are serialized.
package buildsim

import (
	"bytes"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/abi"
	"repro/internal/baseimg"
	"repro/internal/core"
	"repro/internal/debpkg"
	"repro/internal/derive"
	"repro/internal/farm"
	"repro/internal/fs"
	"repro/internal/guest"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/reprotest"
	"repro/internal/stripnd"
	"repro/internal/workload"
)

// Virtual build deadlines from §6.1: 30 minutes for the native baseline,
// 2 hours under DetTrace.
const (
	BLDeadline = 30 * 60 * 1e9  // ns of virtual time
	DTDeadline = 2 * 3600 * 1e9 // ns of virtual time
)

// Verdict classifies one double build, named like Table 1's cells.
type Verdict string

// The five outcomes of the build-twice protocol.
const (
	Reproducible   Verdict = "reproducible"
	Irreproducible Verdict = "irreproducible"
	Unsupported    Verdict = "unsupported"
	Timeout        Verdict = "timeout"
	Fail           Verdict = "fail"
)

// Options configures a build farm.
type Options struct {
	// Seed selects the adversarial environments; per-package seeds derive
	// from it and the spec, never from scheduling.
	Seed uint64
	// Jobs is the worker pool size (0 = GOMAXPROCS). It must not affect
	// results — only wall-clock time.
	Jobs int
	// Experimental enables the §5.9/§5.4 extensions (container-internal
	// sockets and scheduler-ordered signals) in the DetTrace runs.
	Experimental bool
	// NoSyscallBuf disables the in-tracee syscall buffer in the DetTrace
	// runs (the buffering ablation): light intercepted calls trap again.
	NoSyscallBuf bool
	// DisableTemplates forces every kernel and container in the farm onto
	// the cold construction path instead of forking prepared templates (the
	// template-reuse mechanism ablation). Like Jobs, it must not change any
	// build output — only setup cost.
	DisableTemplates bool
	// TemplateCacheSize bounds the prepared-template LRU caches
	// (0 = DefaultTemplateCacheSize).
	TemplateCacheSize int
	// NoObservability disables the per-container flight recorder in the
	// DetTrace runs (the observability mechanism ablation). Like Jobs and
	// DisableTemplates it must not change any build output — the recorder
	// observes, it never feeds back — and templates_test.go pins that.
	NoObservability bool
	// NoWorkspaces disables copy-on-write thread workspaces in the DetTrace
	// runs (the ISSUE 7 ablation): sibling-thread compute serializes on the
	// logical token again. It must not change any build output — workspaces
	// only relax the physical clock — so only javac packages' DTTime and
	// Slowdown move.
	NoWorkspaces bool
	// KeepTraces retains each package's flight-recorder ring, span list and
	// event count in Out (for `benchtab -trace`). Off by default because the
	// ring legitimately differs across setup paths — forked containers record
	// COW breaks, cold boots don't, and span wall-clock durations are host
	// accidents — while Out is otherwise pinned bitwise-identical across
	// every mechanism ablation.
	KeepTraces bool
	// Checkpoints runs the DetTrace builds in checkpoint mode: the build
	// driver self-execs at phase boundaries (post-configure, post-compile)
	// and the kernel seals a restorable checkpoint at each of those quiescent
	// stops, pinned in a bounded farm-wide LRU while the job is in flight.
	// Checkpoint mode is its own determinism equivalence class — the extra
	// execs advance virtual time — so its outputs are compared against other
	// checkpointed runs, never against plain ones.
	Checkpoints bool
	// InjectFaults schedules deterministic faults (worker crashes, checkpoint
	// corruption, restore failures) from per-job fault plans derived from
	// Seed — see reprotest.PlanFor. Crashed jobs recover from their last
	// valid checkpoint with bounded retries, degrading to a cold replay; the
	// farm's outputs must be bitwise-unchanged by the whole ordeal (faults.go
	// and faults_test.go pin that). Requires Checkpoints.
	InjectFaults bool
	// CheckpointRetries bounds restore attempts per crashed job
	// (0 = DefaultCheckpointRetries).
	CheckpointRetries int
	// CheckpointCacheSize bounds the farm's checkpoint LRU
	// (0 = DefaultCheckpointCacheSize). In-flight jobs pin their freshest
	// seal, so eviction can only cost older fallback seals — a job that needs
	// one after losing its freshest to corruption degrades to a cold replay.
	CheckpointCacheSize int
	// Incremental enables derivation-store rebuild reuse (ISSUE 8): patched
	// packages fork the freshest checkpoint seal whose prefix read no dirty
	// file instead of cold-building, re-executing only the invalidated
	// compile units. Joined (inverted) into the container config hash as
	// core.Config.DisableIncremental, so incremental and non-incremental
	// runs occupy disjoint derivation-key spaces — while their outputs stay
	// bitwise-identical, which incremental_test.go pins.
	Incremental bool
	// Distributed routes BuildAll through the internal/farm coordinator
	// instead of the in-process pool: worker nodes register over the farm
	// protocol, jobs are placed by rendezvous hashing, and prepared state is
	// forked from the coordinator's content-addressed shard store. Like Jobs,
	// the whole arrangement must not change any output byte — farm_test.go
	// pins DeepEqual across node counts, placement seeds and fault schedules.
	Distributed bool
	// Nodes is the distributed farm's worker count (0 = DefaultFarmNodes).
	Nodes int
	// NodeSlots is each worker's concurrent-build capacity (0 = 1).
	NodeSlots int
	// PlacementSeed selects the distributed farm's placement schedule; it
	// must never reach an output byte.
	PlacementSeed uint64
	// FarmPlan is the farm-level fault schedule (node crash, message loss
	// and duplication — see reprotest.FarmPlanFor). A node-killing plan
	// requires Checkpoints: the doomed build dies mid-flight and its job is
	// recovered on another node from the freshest seal in the shard store.
	// It also carries the Byzantine plane (reprotest.ByzantinePlanFor) when
	// Attest is on: lying builders, corrupted attestations, equivocating log
	// servers and withheld co-signatures.
	FarmPlan reprotest.FaultPlan
	// Attest enables the farm's Byzantine-robust attestation chain (ISSUE
	// 10): every completed job is independently re-executed by rebuilder
	// nodes, quorum-admitted with dissent naming and quarantine, and sealed
	// into an epoch-batched transparency log so consumers can verify
	// artifacts rebuild-free. Requires Distributed. Like everything else in
	// the farm layer, it must not change any output byte — attest_test.go
	// pins the admitted set and the Out bodies DeepEqual across fault
	// schedules and farm shapes.
	Attest bool
	// Rebuilders is the independent re-executions certifying each job
	// (0 = farm default, 2).
	Rebuilders int
	// LogServers is the transparency-log replica count (0 = farm default, 3).
	LogServers int

	// jobSeq hands each checkpointed build a farm-unique identity for its
	// LRU entries. Scheduling-dependent, so it must never influence results —
	// only which cache slots a job's checkpoints occupy.
	jobSeq atomic.Uint64

	// Farm-wide prepared-state caches and setup accounting (templates.go).
	// Lazily initialized; all access is concurrency-safe, so one Options may
	// drive the whole Jobs-sized worker pool.
	cacheMu sync.Mutex
	cache   *farmCaches
	setup   setupCounters
	obsReg  *obs.Registry

	// deriveRec is the farm's derivation-store event ring: one KindDeriveHit
	// or KindDeriveMiss per store lookup, at template, phase-seal and
	// compile-unit granularity (templates.go: recordDerive). Farm-level and
	// mutex-guarded — unlike container rings it is written by the whole
	// worker pool.
	deriveMu    sync.Mutex
	deriveRec   *obs.Recorder
	deriveLTime int64

	// lastFarm is the cluster behind the most recent distributed BuildAll,
	// kept so FarmStats/FarmReports can expose its accounting (farm.go).
	farmMu   sync.Mutex
	lastFarm *farm.Cluster
}

// Out is the full record of one package's evaluation.
type Out struct {
	Spec  *debpkg.Spec
	Index int // position in the BuildAll input

	BL Verdict // baseline double-build verdict
	DT Verdict // DetTrace verdict; "" when the baseline failed or timed out

	// UnsupReason is the container's UnsupportedError operation when DT ==
	// Unsupported ("busy-wait", "socket", "cross-process signal",
	// "syscall:<name>").
	UnsupReason string

	BLTime      int64   // virtual ns of the first baseline build
	DTTime      int64   // virtual ns of the first DetTrace build
	SyscallRate float64 // weighted syscalls per second of baseline time
	Slowdown    float64 // DTTime/BLTime, set when DT completed
	Threaded    bool    // javac-style threaded build (Fig. 5's open circles)

	// Events are the DetTrace run's weighted tracer counters (Table 2).
	Events Events

	// RecEvents is how many flight-recorder events the first DetTrace run
	// produced; Trace and Spans are that run's retained event ring and
	// lifecycle spans. Populated only under Options.KeepTraces (for
	// `benchtab -trace`): the ring is mechanism-dependent metadata, not
	// build output.
	RecEvents int64
	Trace     []obs.Event
	Spans     []obs.Span
}

// Events is the per-package slice of Table 2: weighted tracer event counts
// from the DetTrace build.
type Events struct {
	Syscalls     int64
	MemReads     int64
	Rdtsc        int64
	Sched        int64
	Replays      int64
	Spawns       int64
	ReadRetries  int64
	WriteRetries int64
	UrandomOpens int64

	// Tracer-session counters: ptrace stops paid, syscalls serviced through
	// the in-tracee buffer, and the batched flushes that drained them.
	Stops    int64
	Buffered int64
	Flushes  int64

	// Workspace-mode counters (ISSUE 7): thread workspaces forked, merged
	// back in vTID order, and rank-resolved merge conflicts. Zero when
	// workspaces are disabled or the build never clones a thread.
	WsForks     int64
	WsMerges    int64
	WsConflicts int64
}

func eventsFrom(st kernel.Stats) Events {
	return Events{
		Syscalls:     st.Syscalls,
		MemReads:     st.MemReads,
		Rdtsc:        st.RdtscTrapped,
		Sched:        st.SchedRequests,
		Replays:      st.BlockedReplays,
		Spawns:       st.Spawns,
		ReadRetries:  st.ReadRetries,
		WriteRetries: st.WriteRetries,
		UrandomOpens: st.UrandomOpens,
	}
}

// BuildPackage runs one package through the full protocol: a native double
// build under the two reprotest variations, then (when the baseline built at
// all) a DetTrace double build varying only host accidents.
func (o *Options) BuildPackage(spec *debpkg.Spec) Out {
	return o.build(obs.NewLocal(), spec, 0)
}

// BuildAll evaluates every spec across the worker pool. The returned slice
// is ordered by spec index and bitwise-independent of Jobs; progress, when
// non-nil, is called serially with strictly increasing done counts.
func (o *Options) BuildAll(specs []*debpkg.Spec, progress func(done, total int)) []Out {
	if o.Distributed {
		return o.buildAllFarm(specs, progress)
	}
	outs := make([]Out, len(specs))
	var mu sync.Mutex
	done := 0
	o.forEach(len(specs), func(l obs.Local, i int) {
		outs[i] = o.build(l, specs[i], i)
		mu.Lock()
		done++
		if progress != nil {
			progress(done, len(specs))
		}
		mu.Unlock()
	})
	return outs
}

// forEach runs fn(0..n-1) across the option's worker pool, handing each
// worker its own metrics stripe so the farm counters never contend. fn must
// write only to its own index's state.
func (o *Options) forEach(n int, fn func(l obs.Local, i int)) {
	jobs := o.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > n {
		jobs = n
	}
	if jobs <= 1 {
		l := obs.NewLocal()
		for i := 0; i < n; i++ {
			fn(l, i)
		}
		return
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l := obs.NewLocal()
			for i := range work {
				fn(l, i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
}

// pkgSeed derives the package's environment seed from the farm seed and the
// spec identity — a pure function, so results cannot depend on which worker
// or in which order a package is built.
func pkgSeed(seed uint64, spec *debpkg.Spec) uint64 {
	return derive.DigestBytes([]byte(spec.Name+"/"+spec.Version)) ^ (seed * 0x9E3779B97F4A7C15)
}

// build is the per-package protocol on the local (single-process) path.
func (o *Options) build(l obs.Local, spec *debpkg.Spec, idx int) Out {
	out, _ := o.buildProto(l, spec, idx, nil)
	return out
}

// buildProto is the per-package protocol with a pluggable first DetTrace
// build. The distributed farm overrides d1 — the run its fault plane may
// kill and its recovery must resume from a shard-store seal — while the
// native double build and the second DetTrace run stay on the local path:
// the farm changes WHERE a build runs, never WHAT it computes. A non-nil
// dt1 error aborts the package (the coordinator retries the whole job;
// every step before the crash is a pure function of (spec, seed), so the
// re-run recomputes identical bits).
func (o *Options) buildProto(l obs.Local, spec *debpkg.Spec, idx int, dt1 func(obs.Local, uint64, reprotest.Variation) (dtRun, error)) (Out, error) {
	seed := pkgSeed(o.Seed, spec)
	v1, v2 := reprotest.Pair(seed)
	out := Out{Spec: spec, Index: idx, Threaded: spec.Compiler == "javac"}

	// Baseline: build twice natively, each under its reprotest variation
	// (environment, build path, epoch, CPUs, host seed all vary). The §6.1
	// toolchain includes strip-nondeterminism, so the baseline verdict
	// compares the stripped .debs.
	b1 := o.buildNative(l, spec, v1, BLDeadline)
	out.BLTime = b1.wall
	if secs := float64(b1.wall) / 1e9; secs > 0 {
		out.SyscallRate = float64(b1.syscalls) / secs
	}
	if v := b1.verdict(); v != "" {
		out.BL = v
		return out, nil
	}
	b2 := o.buildNative(l, spec, v2, BLDeadline)
	if v := b2.verdict(); v != "" {
		out.BL = v
		return out, nil
	}
	if bytes.Equal(stripnd.Strip(b1.deb), stripnd.Strip(b2.deb)) {
		out.BL = Reproducible
	} else {
		out.BL = Irreproducible
	}

	// DetTrace: build twice in the container under the same perturbations —
	// but the container pins the build path, environment and PRNG seed as
	// inputs, so only the host accidents (entropy, epoch, core count)
	// actually vary. That is the property being measured.
	var d1 dtRun
	if dt1 == nil {
		d1 = o.buildDT(l, spec, seed, v1, nil)
	} else {
		var err error
		if d1, err = dt1(l, seed, v1); err != nil {
			return Out{}, err
		}
	}
	out.DTTime = d1.wall
	out.Events = d1.events
	if o.KeepTraces {
		out.RecEvents = d1.recEvents
		out.Trace = d1.trace
		out.Spans = d1.spans
	}
	if v, reason := d1.verdict(); v != "" {
		out.DT = v
		out.UnsupReason = reason
		return out, nil
	}
	d2 := o.buildDT(l, spec, seed, v2, nil)
	if v, reason := d2.verdict(); v != "" {
		out.DT = v
		out.UnsupReason = reason
		return out, nil
	}
	if out.BLTime > 0 {
		out.Slowdown = float64(out.DTTime) / float64(out.BLTime)
	}
	// DetTrace's outputs are already canonical: no strip pass.
	if bytes.Equal(d1.deb, d2.deb) {
		out.DT = Reproducible
	} else {
		out.DT = Irreproducible
	}
	return out, nil
}

// registry is the shared toolchain program registry: read-only after
// construction, safe for concurrent kernels.
var (
	regOnce sync.Once
	reg     *guest.Registry
)

func registry() *guest.Registry {
	regOnce.Do(func() {
		reg = guest.NewRegistry()
		workload.Register(reg)
	})
	return reg
}

// toolchainImage builds the pristine control chroot and unpacks the package
// source under dir, returning (image, pkgdir).
func toolchainImage(spec *debpkg.Spec, dir string) (*fs.Image, string) {
	img := baseimg.WithBinaries(workload.Names...)
	return img, spec.Materialize(img, dir)
}

func debPath(spec *debpkg.Spec) string {
	return "/build/out/" + spec.Name + "_" + spec.Version + "_amd64.deb"
}

// nativeRun is one baseline build's observables.
type nativeRun struct {
	deb      []byte
	log      []byte
	prog     []byte // the built binary, for post-build selftests (§7.2)
	exit     int
	wall     int64
	syscalls int64 // weighted
	timeout  bool
	err      error
}

// verdict maps a failed run to its Table 1 cell ("" means the build
// completed and produced a .deb).
func (r nativeRun) verdict() Verdict {
	switch {
	case r.timeout:
		return Timeout
	case r.err != nil || r.exit != 0 || r.deb == nil:
		return Fail
	}
	return ""
}

// buildNative runs dpkg-buildpackage on the simulated host under one
// reprotest variation, with the kernel's baseline (nondeterministic) policy.
// Unless the template ablation is on, the kernel boots from a cached
// prepared snapshot of the toolchain image instead of repopulating it.
func (o *Options) buildNative(l obs.Local, spec *debpkg.Spec, v reprotest.Variation, deadline int64) nativeRun {
	sc := o.sc()
	img, pkgdir, imgHash := o.pkgImage(l, spec, v.BuildRoot)
	start := time.Now()
	var k *kernel.Kernel
	if o.DisableTemplates {
		k = kernel.New(kernel.Config{
			Profile:  machine.CloudLabC220G5(),
			Seed:     v.HostSeed,
			Epoch:    v.Epoch,
			NumCPU:   v.NumCPU,
			Image:    img,
			Resolver: registry().Resolver(),
			Deadline: deadline,
		})
		sc.coldBoots.Add(l, 1)
		sc.coldSetupNs.Add(l, time.Since(start).Nanoseconds())
	} else {
		snap := o.snapshot(l, imgHash, img) // Prepare time lands in prepareNs
		start = time.Now()
		k = snap.Boot(kernel.BootConfig{
			Seed:     v.HostSeed,
			Epoch:    v.Epoch,
			NumCPU:   v.NumCPU,
			Deadline: deadline,
		})
		sc.forkBoots.Add(l, 1)
		sc.forkNs.Add(l, time.Since(start).Nanoseconds())
	}
	argv := []string{"dpkg-buildpackage", "-b"}
	init := func(t *kernel.Thread) int {
		p := &guest.Proc{T: t}
		if err := p.Exec("/bin/dpkg-buildpackage", argv, v.Env); err != abi.OK {
			return 127
		}
		return 127 // unreachable
	}
	proc := k.Start(init, argv, v.Env)
	if n, err := k.ResolveInode(proc, pkgdir, true); err == abi.OK && n.IsDir() {
		proc.Cwd, proc.CwdPath = n, pkgdir
	}
	runErr := k.Run()
	r := nativeRun{exit: proc.ExitCode(), wall: k.Now(), syscalls: k.Stats.Syscalls}
	if runErr != nil {
		if errors.Is(runErr, kernel.ErrTimeout) {
			r.timeout = true
		} else {
			r.err = runErr
		}
		return r
	}
	r.deb = inodeData(k, proc, debPath(spec))
	r.log = inodeData(k, proc, pkgdir+"/build-step.log")
	r.prog = inodeData(k, proc, pkgdir+"/build/prog")
	return r
}

func inodeData(k *kernel.Kernel, p *kernel.Proc, path string) []byte {
	n, err := k.ResolveInode(p, path, true)
	if err != abi.OK || n == nil || n.IsDir() {
		return nil
	}
	return append([]byte(nil), n.Data...)
}

// dtRun is one DetTrace build's observables.
type dtRun struct {
	deb       []byte
	log       []byte
	prog      []byte // the built binary, for post-build selftests (§7.2)
	exit      int
	wall      int64
	actions   int64 // deterministic kernel action count, for fault targeting
	timeout   bool
	unsup     string
	err       error
	events    Events
	recEvents int64       // flight-recorder events produced (incl. dropped)
	trace     []obs.Event // retained flight-recorder ring
	spans     []obs.Span  // lifecycle spans (prepare/fork/boot/run/flush)
}

func (r dtRun) verdict() (Verdict, string) {
	switch {
	case r.unsup != "":
		return Unsupported, r.unsup
	case r.timeout:
		return Timeout, ""
	case r.err != nil || r.exit != 0 || r.deb == nil:
		return Fail, ""
	}
	return "", ""
}

// containerEnv is the canonical build environment: inside DetTrace the
// environment is a container input, fixed regardless of the invoking shell.
var containerEnv = []string{
	"PATH=/bin",
	"USER=root",
	"HOME=/root",
	"DEB_BUILD_OPTIONS=",
	"LC_ALL=C",
	"TZ=UTC",
}

// buildDT runs the package inside the DetTrace container. The variation
// contributes only host accidents — the build path, environment and PRNG
// seed are container inputs and stay fixed. mod, when non-nil, adjusts the
// container config (machine profile, ablations) before the run.
//
// Unless templates are disabled (farm-wide via Options.DisableTemplates or
// per-config via DisableTemplateReuse), the container is forked from a
// cached core.Template keyed on (image hash, config hash) — mod runs first,
// so an ablated config can never be served a mismatched template.
func (o *Options) buildDT(l obs.Local, spec *debpkg.Spec, seed uint64, v reprotest.Variation, mod func(*core.Config)) dtRun {
	img, pkgdir, imgHash := o.pkgImage(l, spec, "/build")
	cfg := o.dtConfig(img, pkgdir, seed, v)
	if mod != nil {
		mod(&cfg)
	}
	if o.Checkpoints {
		var plan reprotest.FaultPlan
		if o.InjectFaults {
			plan = reprotest.PlanFor(seed ^ v.HostSeed)
		}
		return o.buildDTFault(l, spec, plan, cfg, img, imgHash, pkgdir)
	}
	res := o.runContainer(l, cfg, img, imgHash, containerEnv)
	return dtRunFrom(res, spec, pkgdir)
}

// dtConfig is the canonical DetTrace container configuration for one build.
func (o *Options) dtConfig(img *fs.Image, pkgdir string, seed uint64, v reprotest.Variation) core.Config {
	return core.Config{
		Image:                img,
		Profile:              machine.CloudLabC220G5(),
		HostSeed:             v.HostSeed,
		Epoch:                v.Epoch,
		NumCPU:               v.NumCPU,
		PRNGSeed:             seed ^ 0xD7,
		WorkingDir:           pkgdir,
		Deadline:             DTDeadline,
		ExperimentalSockets:  o.Experimental,
		ExperimentalSignals:  o.Experimental,
		DisableSyscallBuf:    o.NoSyscallBuf,
		DisableObservability: o.NoObservability,
		DisableWorkspaces:    o.NoWorkspaces,
		DisableIncremental:   !o.Incremental,
	}
}

// runContainer builds the container for cfg — forked from a cached template
// unless an ablation or a fault knob forces the cold path — runs the package
// build in it, and books the setup accounting. Crash-carrying configs always
// cold-boot: their config hash differs by design, and preparing a template
// for a run doomed to die mid-flight would only churn the cache (forked and
// cold boots are pinned bitwise-identical, so the detour is invisible).
func (o *Options) runContainer(l obs.Local, cfg core.Config, img *fs.Image, imgHash uint64, env []string) *core.Result {
	sc := o.sc()
	var c *core.Container
	if o.DisableTemplates || cfg.DisableTemplateReuse || cfg.Image != img || cfg.FaultInjectCrash != 0 {
		c = core.New(cfg)
	} else {
		c = o.template(l, imgHash, cfg).NewContainer(core.HostRun{
			Seed: cfg.HostSeed, Epoch: cfg.Epoch, NumCPU: cfg.NumCPU,
			CheckpointSink:         cfg.CheckpointSink,
			FaultCorruptCheckpoint: cfg.FaultCorruptCheckpoint,
		})
	}
	res := c.Run(registry(), "/bin/dpkg-buildpackage",
		[]string{"dpkg-buildpackage", "-b"}, env)
	if res.Forked {
		sc.forkBoots.Add(l, 1)
		sc.forkNs.Add(l, res.SetupNs)
		sc.recEventsFork.Add(l, res.Trace.Total())
	} else {
		sc.coldBoots.Add(l, 1)
		sc.coldSetupNs.Add(l, res.SetupNs)
		sc.recEventsCold.Add(l, res.Trace.Total())
	}
	// Roll the run's own registry (kernel syscall table, tracer stops) into
	// the farm-wide one so `benchtab -trace` can dump a single farm view.
	o.Obs().Absorb(res.Obs)
	return res
}

// dtRunFrom condenses a container result into the build's observables.
func dtRunFrom(res *core.Result, spec *debpkg.Spec, pkgdir string) dtRun {
	r := dtRun{exit: res.ExitCode, wall: res.WallTime, actions: res.Actions,
		events:    eventsFrom(res.Stats),
		recEvents: res.Trace.Total(), trace: res.Events, spans: res.Spans}
	r.events.Stops = res.Tracer.Stops
	r.events.Buffered = res.Tracer.BufferedCalls
	r.events.Flushes = res.Tracer.Flushes
	if res.Obs != nil {
		r.events.WsForks = res.Obs.Counter("workspace_forks").Value()
		r.events.WsMerges = res.Obs.Counter("workspace_merges").Value()
		r.events.WsConflicts = res.Obs.Counter("workspace_conflicts").Value()
	}
	if op, ok := res.Unsupported(); ok {
		r.unsup = op
		return r
	}
	if res.TimedOut() {
		r.timeout = true
		return r
	}
	if res.Err != nil {
		r.err = res.Err
		return r
	}
	r.deb = imageData(res.FS, debPath(spec))
	r.log = imageData(res.FS, pkgdir+"/build-step.log")
	r.prog = imageData(res.FS, pkgdir+"/build/prog")
	return r
}

func imageData(im *fs.Image, path string) []byte {
	if im == nil {
		return nil
	}
	e, ok := im.Entries[path]
	if !ok || e.Mode&abi.ModeTypeMask != abi.ModeRegular {
		return nil
	}
	return append([]byte(nil), e.Data...)
}
