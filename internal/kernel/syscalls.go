package kernel

import (
	"strings"

	"repro/internal/abi"
	"repro/internal/fs"
)

// ExecArgs is the decoded argv/env pointer block of execve.
type ExecArgs struct {
	Argv []string
	Env  []string
}

// WaitResult is the out-parameter block of wait4.
type WaitResult struct {
	PID    int
	Status abi.WaitStatus
	Usage  abi.Rusage
}

// lookupCtx builds the path-resolution context for a process.
func lookupCtx(p *Proc) fs.LookupCtx { return fs.LookupCtx{Root: p.Root, Cwd: p.Cwd} }

// execSyscall implements the system call sc for thread t. It returns true
// when the call would block; the caller decides between kernel blocking and
// policy (DetTrace Blocked-queue) semantics. Results are stored in sc.
func (k *Kernel) execSyscall(t *Thread, sc *abi.Syscall) (blocked bool) {
	p := t.Proc
	switch sc.Num {
	case abi.SysRead:
		return k.sysRead(t, sc)
	case abi.SysWrite:
		return k.sysWrite(t, sc)
	case abi.SysOpen, abi.SysOpenat, abi.SysCreat:
		k.sysOpen(t, sc)
	case abi.SysClose:
		sc.SetErrno(p.FDs.close(k, int(sc.Arg[0])))
	case abi.SysLseek:
		k.sysLseek(t, sc)
	case abi.SysStat, abi.SysLstat:
		k.sysStat(t, sc, sc.Num == abi.SysStat)
	case abi.SysFstat:
		k.sysFstat(t, sc)
	case abi.SysGetdents:
		k.sysGetdents(t, sc)
	case abi.SysGetcwd:
		if out, ok := sc.Obj.(*string); ok {
			*out = p.CwdPath
		}
		sc.Ret = int64(len(p.CwdPath))
	case abi.SysChdir:
		k.sysChdir(t, sc)
	case abi.SysMkdir:
		k.sysMkdir(t, sc)
	case abi.SysRmdir:
		k.sysPathOp(t, sc, func(dir *fs.Inode, name string) abi.Errno {
			return k.FS.Rmdir(dir, name)
		})
	case abi.SysUnlink, abi.SysUnlinkat:
		k.sysPathOp(t, sc, func(dir *fs.Inode, name string) abi.Errno {
			return k.FS.Unlink(dir, name)
		})
	case abi.SysRename:
		k.sysRename(t, sc)
	case abi.SysLink:
		k.sysLink(t, sc)
	case abi.SysSymlink:
		k.sysSymlink(t, sc)
	case abi.SysReadlink:
		k.sysReadlink(t, sc)
	case abi.SysChmod:
		k.sysChmod(t, sc)
	case abi.SysChown:
		k.sysChown(t, sc)
	case abi.SysTruncate:
		k.sysTruncate(t, sc)
	case abi.SysFtruncate:
		k.sysFtruncate(t, sc)
	case abi.SysAccess:
		n, err := k.FS.Resolve(lookupCtx(p), sc.Path, true)
		if err != abi.OK {
			sc.SetErrno(err)
		} else {
			_ = n
			sc.Ret = 0
		}
	case abi.SysUtimes, abi.SysUtimensat:
		k.sysUtimes(t, sc)
	case abi.SysTime:
		k.Stats.TimeCalls += t.Proc.Weight
		sc.Ret = k.epoch + t.Clock/1e9
	case abi.SysGettimeofday, abi.SysClockGettime:
		k.Stats.TimeCalls += t.Proc.Weight
		ns := k.epoch*1e9 + t.Clock
		if out, ok := sc.Obj.(*abi.Timespec); ok {
			*out = abi.TimespecFromNanos(ns)
		}
		sc.Ret = 0
	case abi.SysNanosleep:
		return k.sysNanosleep(t, sc)
	case abi.SysAlarm:
		k.sysAlarm(t, sc)
	case abi.SysSetitimer:
		k.sysSetitimer(t, sc)
	case abi.SysPause:
		if len(p.sigPending) == 0 {
			return true
		}
		sc.SetErrno(abi.EINTR)
	case abi.SysGetrandom:
		k.HW.Entropy.Fill(sc.Buf)
		sc.Ret = int64(len(sc.Buf))
	case abi.SysPipe, abi.SysPipe2:
		k.sysPipe(t, sc)
	case abi.SysDup2:
		if err := p.FDs.dup2(k, int(sc.Arg[0]), int(sc.Arg[1])); err != abi.OK {
			sc.SetErrno(err)
		} else {
			sc.Ret = sc.Arg[1]
		}
	case abi.SysFork, abi.SysClone:
		k.sysFork(t, sc)
	case abi.SysExecve:
		k.sysExecve(t, sc)
	case abi.SysWait4:
		return k.sysWait4(t, sc)
	case abi.SysKill:
		k.sysKill(t, sc)
	case abi.SysRtSigaction:
		sc.Ret = 0 // handler bookkeeping happens guest-side; the stop itself is what tracers see
	case abi.SysFutex:
		return k.sysFutex(t, sc)
	case abi.SysSchedYield:
		sc.Ret = 0
	case abi.SysUname:
		k.sysUname(t, sc)
	case abi.SysSysinfo:
		k.sysSysinfo(t, sc)
	case abi.SysGetpid:
		sc.Ret = int64(p.PID)
	case abi.SysGetppid:
		sc.Ret = int64(p.PPID)
	case abi.SysGetTid:
		sc.Ret = int64(t.TID)
	case abi.SysGetuid:
		sc.Ret = int64(p.UID)
	case abi.SysGetgid:
		sc.Ret = int64(p.GID)
	case abi.SysSetuid:
		p.UID = uint32(sc.Arg[0])
		sc.Ret = 0
	case abi.SysUmask:
		old := p.Umask
		p.Umask = uint32(sc.Arg[0]) & 0o777
		sc.Ret = int64(old)
	case abi.SysBrk:
		p.brk += sc.Arg[0]
		sc.Ret = p.brkBase + p.brk
	case abi.SysMmap:
		// Address-space layout randomization: the returned address is a
		// boot/exec accident that programs sometimes embed in output.
		sc.Ret = p.mmapBase + p.mmapOff
		p.mmapOff += (sc.Arg[0] + 4095) &^ 4095
	case abi.SysPrctl:
		k.sysPrctl(t, sc)
	case abi.SysArchPrctl:
		k.sysArchPrctl(t, sc)
	case abi.SysChroot:
		n, err := k.FS.Resolve(lookupCtx(p), sc.Path, true)
		switch {
		case err != abi.OK:
			sc.SetErrno(err)
		case !n.IsDir():
			sc.SetErrno(abi.ENOTDIR)
		default:
			p.Root = n
			sc.Ret = 0
		}
	case abi.SysSync:
		sc.Ret = 0
	case abi.SysIoctl:
		k.sysIoctl(t, sc)
	case abi.SysFcntl:
		k.sysFcntl(t, sc)
	case abi.SysMount:
		sc.SetErrno(abi.EPERM)
	case abi.SysSchedAffinity:
		sc.Ret = 0
	case abi.SysSocket, abi.SysSocketpair, abi.SysBind, abi.SysListen,
		abi.SysConnect, abi.SysAccept, abi.SysAccept4, abi.SysSendto,
		abi.SysRecvfrom:
		return k.sysSocketCall(t, sc)
	default:
		sc.SetErrno(abi.ENOSYS)
	}
	return false
}

// --- file IO ----------------------------------------------------------------

func (k *Kernel) sysRead(t *Thread, sc *abi.Syscall) bool {
	p := t.Proc
	f, err := p.FDs.get(int(sc.Arg[0]))
	if err != abi.OK {
		sc.SetErrno(err)
		return false
	}
	switch f.kind {
	case fdFile:
		n := f.ino.ReadAt(sc.Buf, f.pos)
		f.pos += int64(n)
		sc.Ret = int64(n)
	case fdPipeR:
		n, eof := f.pipe.Read(sc.Buf)
		if n == 0 && !eof {
			if f.flags&abi.ONonblock != 0 {
				sc.SetErrno(abi.EAGAIN)
				return false
			}
			return true
		}
		sc.Ret = int64(n)
	case fdPipeW:
		sc.SetErrno(abi.EBADF)
	case fdDevice:
		sc.Ret = int64(f.dev.ReadDev(sc.Buf))
	case fdConsole:
		sc.Ret = 0 // container stdin is at EOF
	case fdDir:
		sc.SetErrno(abi.EISDIR)
	case fdSocket:
		return k.sockRead(t, sc, f)
	}
	return false
}

func (k *Kernel) sysWrite(t *Thread, sc *abi.Syscall) bool {
	p := t.Proc
	f, err := p.FDs.get(int(sc.Arg[0]))
	if err != abi.OK {
		sc.SetErrno(err)
		return false
	}
	switch f.kind {
	case fdFile:
		if f.flags&abi.OAppend != 0 {
			f.pos = int64(len(f.ino.Data))
		}
		n := f.ino.WriteAt(sc.Buf, f.pos)
		f.pos += int64(n)
		sc.Ret = int64(n)
	case fdPipeW:
		n, broken := f.pipe.Write(sc.Buf)
		if broken {
			k.postSignal(p, abi.SIGPIPE)
			sc.SetErrno(abi.EPIPE)
			return false
		}
		if n == 0 {
			if f.flags&abi.ONonblock != 0 {
				sc.SetErrno(abi.EAGAIN)
				return false
			}
			return true
		}
		sc.Ret = int64(n)
	case fdPipeR:
		sc.SetErrno(abi.EBADF)
	case fdDevice:
		sc.Ret = int64(f.dev.WriteDev(sc.Buf))
	case fdConsole:
		if f.consoleErr {
			k.Console.Err = append(k.Console.Err, sc.Buf...)
		} else {
			k.Console.Out = append(k.Console.Out, sc.Buf...)
		}
		sc.Ret = int64(len(sc.Buf))
	case fdDir:
		sc.SetErrno(abi.EISDIR)
	case fdSocket:
		return k.sockWrite(t, sc, f)
	}
	return false
}

func (k *Kernel) sysOpen(t *Thread, sc *abi.Syscall) {
	p := t.Proc
	flags := int(sc.Arg[0])
	mode := uint32(sc.Arg[1])
	if sc.Num == abi.SysCreat {
		flags = abi.OCreat | abi.OWronly | abi.OTrunc
	}
	path := sc.Path
	n, rerr := k.FS.Resolve(lookupCtx(p), path, true)
	if rerr == abi.ENOENT && flags&abi.OCreat != 0 {
		dir, name, perr := k.FS.ResolveParent(lookupCtx(p), path)
		if perr != abi.OK {
			sc.SetErrno(perr)
			return
		}
		var cerr abi.Errno
		n, cerr = k.FS.CreateFile(dir, name, mode&^p.Umask, p.UID, p.GID)
		if cerr != abi.OK {
			sc.SetErrno(cerr)
			return
		}
	} else if rerr != abi.OK {
		sc.SetErrno(rerr)
		return
	} else if flags&abi.OCreat != 0 && flags&abi.OExcl != 0 {
		sc.SetErrno(abi.EEXIST)
		return
	}
	if flags&abi.ODirectory != 0 && !n.IsDir() {
		sc.SetErrno(abi.ENOTDIR)
		return
	}
	f := &FD{ino: n, flags: flags, path: normPath(p.CwdPath, path)}
	switch {
	case n.IsDir():
		f.kind = fdDir
	case n.IsFIFO():
		f.pipe = n.Pipe
		if flags&(abi.OWronly|abi.ORdwr) != 0 {
			f.kind = fdPipeW
			f.pipe.AddWriter()
		} else {
			f.kind = fdPipeR
			f.pipe.AddReader()
		}
	case n.IsDevice():
		mk, ok := k.devices[n.DevID]
		if !ok {
			sc.SetErrno(abi.ENXIO)
			return
		}
		f.kind = fdDevice
		f.dev = mk()
		if n.DevID == "urandom" || n.DevID == "random" {
			k.Stats.UrandomOpens += p.Weight
		}
	default:
		f.kind = fdFile
		if flags&abi.OTrunc != 0 {
			n.Truncate(0)
		}
	}
	sc.Ret = int64(p.FDs.alloc(f))
}

func (k *Kernel) sysLseek(t *Thread, sc *abi.Syscall) {
	f, err := t.Proc.FDs.get(int(sc.Arg[0]))
	if err != abi.OK {
		sc.SetErrno(err)
		return
	}
	if f.kind != fdFile {
		sc.SetErrno(abi.ESPIPE)
		return
	}
	var base int64
	switch sc.Arg[2] {
	case abi.SeekSet:
		base = 0
	case abi.SeekCur:
		base = f.pos
	case abi.SeekEnd:
		base = int64(len(f.ino.Data))
	default:
		sc.SetErrno(abi.EINVAL)
		return
	}
	np := base + sc.Arg[1]
	if np < 0 {
		sc.SetErrno(abi.EINVAL)
		return
	}
	f.pos = np
	sc.Ret = np
}

func (k *Kernel) sysStat(t *Thread, sc *abi.Syscall, follow bool) {
	n, err := k.FS.Resolve(lookupCtx(t.Proc), sc.Path, follow)
	if err != abi.OK {
		sc.SetErrno(err)
		return
	}
	if out, ok := sc.Obj.(*abi.Stat); ok {
		n.Stat(out)
	}
	sc.Ret = 0
}

func (k *Kernel) sysFstat(t *Thread, sc *abi.Syscall) {
	f, err := t.Proc.FDs.get(int(sc.Arg[0]))
	if err != abi.OK {
		sc.SetErrno(err)
		return
	}
	if f.ino == nil {
		sc.SetErrno(abi.EBADF)
		return
	}
	if out, ok := sc.Obj.(*abi.Stat); ok {
		f.ino.Stat(out)
	}
	sc.Ret = 0
}

func (k *Kernel) sysGetdents(t *Thread, sc *abi.Syscall) {
	f, err := t.Proc.FDs.get(int(sc.Arg[0]))
	if err != abi.OK {
		sc.SetErrno(err)
		return
	}
	if f.kind != fdDir {
		sc.SetErrno(abi.ENOTDIR)
		return
	}
	if !f.dirRead {
		f.dirSnapshot = k.FS.ReadDirRaw(f.ino)
		f.dirRead = true
	}
	max := int(sc.Arg[1])
	if max <= 0 || max > len(f.dirSnapshot) {
		max = len(f.dirSnapshot)
	}
	chunk := f.dirSnapshot[:max]
	f.dirSnapshot = f.dirSnapshot[max:]
	if out, ok := sc.Obj.(*[]abi.Dirent); ok {
		*out = append([]abi.Dirent(nil), chunk...)
	}
	sc.Ret = int64(len(chunk))
}

func (k *Kernel) sysChdir(t *Thread, sc *abi.Syscall) {
	p := t.Proc
	n, err := k.FS.Resolve(lookupCtx(p), sc.Path, true)
	switch {
	case err != abi.OK:
		sc.SetErrno(err)
	case !n.IsDir():
		sc.SetErrno(abi.ENOTDIR)
	default:
		p.Cwd = n
		p.CwdPath = normPath(p.CwdPath, sc.Path)
		sc.Ret = 0
	}
}

func (k *Kernel) sysMkdir(t *Thread, sc *abi.Syscall) {
	p := t.Proc
	dir, name, err := k.FS.ResolveParent(lookupCtx(p), sc.Path)
	if err != abi.OK {
		sc.SetErrno(err)
		return
	}
	_, cerr := k.FS.Mkdir(dir, name, uint32(sc.Arg[0])&^p.Umask, p.UID, p.GID)
	sc.SetErrno(cerr)
}

// sysPathOp factors unlink/rmdir: resolve the parent, apply op.
func (k *Kernel) sysPathOp(t *Thread, sc *abi.Syscall, op func(dir *fs.Inode, name string) abi.Errno) {
	dir, name, err := k.FS.ResolveParent(lookupCtx(t.Proc), sc.Path)
	if err != abi.OK {
		sc.SetErrno(err)
		return
	}
	sc.SetErrno(op(dir, name))
}

func (k *Kernel) sysRename(t *Thread, sc *abi.Syscall) {
	ctx := lookupCtx(t.Proc)
	od, on, err := k.FS.ResolveParent(ctx, sc.Path)
	if err != abi.OK {
		sc.SetErrno(err)
		return
	}
	nd, nn, err := k.FS.ResolveParent(ctx, sc.Path2)
	if err != abi.OK {
		sc.SetErrno(err)
		return
	}
	sc.SetErrno(k.FS.Rename(od, on, nd, nn))
}

func (k *Kernel) sysLink(t *Thread, sc *abi.Syscall) {
	ctx := lookupCtx(t.Proc)
	target, err := k.FS.Resolve(ctx, sc.Path, true)
	if err != abi.OK {
		sc.SetErrno(err)
		return
	}
	dir, name, err := k.FS.ResolveParent(ctx, sc.Path2)
	if err != abi.OK {
		sc.SetErrno(err)
		return
	}
	sc.SetErrno(k.FS.Link(dir, name, target))
}

func (k *Kernel) sysSymlink(t *Thread, sc *abi.Syscall) {
	p := t.Proc
	dir, name, err := k.FS.ResolveParent(lookupCtx(p), sc.Path2)
	if err != abi.OK {
		sc.SetErrno(err)
		return
	}
	_, serr := k.FS.Symlink(dir, name, sc.Path, p.UID, p.GID)
	sc.SetErrno(serr)
}

func (k *Kernel) sysReadlink(t *Thread, sc *abi.Syscall) {
	n, err := k.FS.Resolve(lookupCtx(t.Proc), sc.Path, false)
	if err != abi.OK {
		sc.SetErrno(err)
		return
	}
	if !n.IsSymlink() {
		sc.SetErrno(abi.EINVAL)
		return
	}
	if out, ok := sc.Obj.(*string); ok {
		*out = n.Target
	}
	sc.Ret = int64(len(n.Target))
}

func (k *Kernel) sysChmod(t *Thread, sc *abi.Syscall) {
	n, err := k.FS.Resolve(lookupCtx(t.Proc), sc.Path, true)
	if err != abi.OK {
		sc.SetErrno(err)
		return
	}
	n.Mode = n.Mode&abi.ModeTypeMask | uint32(sc.Arg[0])&abi.ModePermMask
	n.Ctime = k.WallClock()
	sc.Ret = 0
}

func (k *Kernel) sysChown(t *Thread, sc *abi.Syscall) {
	n, err := k.FS.Resolve(lookupCtx(t.Proc), sc.Path, true)
	if err != abi.OK {
		sc.SetErrno(err)
		return
	}
	n.UID, n.GID = uint32(sc.Arg[0]), uint32(sc.Arg[1])
	n.Ctime = k.WallClock()
	sc.Ret = 0
}

func (k *Kernel) sysTruncate(t *Thread, sc *abi.Syscall) {
	n, err := k.FS.Resolve(lookupCtx(t.Proc), sc.Path, true)
	if err != abi.OK {
		sc.SetErrno(err)
		return
	}
	sc.SetErrno(n.Truncate(sc.Arg[0]))
}

func (k *Kernel) sysFtruncate(t *Thread, sc *abi.Syscall) {
	f, err := t.Proc.FDs.get(int(sc.Arg[0]))
	if err != abi.OK {
		sc.SetErrno(err)
		return
	}
	if f.ino == nil {
		sc.SetErrno(abi.EBADF)
		return
	}
	sc.SetErrno(f.ino.Truncate(sc.Arg[0]))
}

// sysUtimes sets atime/mtime. A nil Obj means "stamp with the current
// time" — the kernel uses the host wall clock, which is precisely the
// irreproducible path DetTrace intercepts by substituting a struct from its
// scratch page (§5.10).
func (k *Kernel) sysUtimes(t *Thread, sc *abi.Syscall) {
	n, err := k.FS.Resolve(lookupCtx(t.Proc), sc.Path, true)
	if err != abi.OK {
		sc.SetErrno(err)
		return
	}
	if times, ok := sc.Obj.(*[2]abi.Timespec); ok && times != nil {
		n.Atime = times[0].Nanos()
		n.Mtime = times[1].Nanos()
	} else {
		now := k.WallClock()
		n.Atime, n.Mtime = now, now
	}
	n.Ctime = k.WallClock()
	sc.Ret = 0
}

// --- time, timers, signals ---------------------------------------------------

func (k *Kernel) sysNanosleep(t *Thread, sc *abi.Syscall) bool {
	if sc.Attempts == 0 {
		t.sleepUntil = k.now + sc.Arg[0]
		return true
	}
	if k.now < t.sleepUntil {
		return true
	}
	t.sleepUntil = 0
	sc.Ret = 0
	return false
}

func (k *Kernel) sysAlarm(t *Thread, sc *abi.Syscall) {
	// Real timer expiry carries interrupt-arrival jitter.
	delay := sc.Arg[0] * 1e9
	if delay > 0 {
		delay += k.Entropy.Int63n(1e6)
	}
	k.armTimer(t.Proc, delay, 0, abi.SIGALRM)
	sc.Ret = 0
}

func (k *Kernel) sysSetitimer(t *Thread, sc *abi.Syscall) {
	it, ok := sc.Obj.(*abi.Itimerval)
	if !ok || it == nil {
		k.disarmTimer(t.Proc, abi.SIGVTALRM)
		sc.Ret = 0
		return
	}
	k.armTimer(t.Proc, it.Value, it.Interval, abi.SIGVTALRM)
	sc.Ret = 0
}

func (k *Kernel) sysKill(t *Thread, sc *abi.Syscall) {
	pid := int(sc.Arg[0])
	sig := abi.Signal(sc.Arg[1])
	target, ok := k.procs[pid]
	if !ok {
		sc.SetErrno(abi.ESRCH)
		return
	}
	if sig != 0 {
		k.postSignal(target, sig)
	}
	sc.Ret = 0
}

// --- processes ---------------------------------------------------------------

// anonPipeCapacity is deliberately small so pipe traffic exhibits the
// partial reads and writes DetTrace's Fig.-4 retry machinery exists for.
const anonPipeCapacity = 512

func (k *Kernel) sysPipe(t *Thread, sc *abi.Syscall) {
	p := t.Proc
	pipe := fs.NewPipe(anonPipeCapacity)
	pipe.AddReader()
	pipe.AddWriter()
	r := p.FDs.alloc(&FD{kind: fdPipeR, pipe: pipe})
	w := p.FDs.alloc(&FD{kind: fdPipeW, pipe: pipe})
	if out, ok := sc.Obj.(*[2]int); ok {
		out[0], out[1] = r, w
	}
	sc.Ret = 0
}

func (k *Kernel) sysFork(t *Thread, sc *abi.Syscall) {
	fn, ok := sc.Obj.(ProgramFn)
	if !ok {
		sc.SetErrno(abi.EINVAL)
		return
	}
	k.Stats.Spawns += t.Proc.Weight
	if sc.Num == abi.SysClone && sc.Arg[0]&abi.CloneThread != 0 {
		ct := k.newThread(t.Proc, fn)
		ct.Clock = t.Clock + k.Cost.SpawnCost
		ct.LClock = t.LClock + k.Cost.SpawnCost
		k.Policy.OnSpawn(t, ct)
		k.startThread(ct)
		sc.Ret = int64(ct.TID)
		return
	}
	child := k.newProc(t.Proc)
	child.Comm = t.Proc.Comm
	child.Argv = t.Proc.Argv
	child.CwdPath = t.Proc.CwdPath
	ct := k.newThread(child, fn)
	ct.Clock = t.Clock + k.Cost.SpawnCost
	ct.LClock = t.LClock + k.Cost.SpawnCost
	k.Policy.OnSpawn(t, ct)
	k.startThread(ct)
	sc.Ret = int64(child.PID)
}

func (k *Kernel) sysExecve(t *Thread, sc *abi.Syscall) {
	p := t.Proc
	args, _ := sc.Obj.(*ExecArgs)
	n, err := k.FS.Resolve(lookupCtx(p), sc.Path, true)
	if err != abi.OK {
		sc.SetErrno(err)
		return
	}
	if !n.IsRegular() {
		sc.SetErrno(abi.EACCES)
		return
	}
	if n.Mode&0o111 == 0 {
		sc.SetErrno(abi.EACCES)
		return
	}
	img := &ExecImage{Path: sc.Path, Exe: n.Data}
	if args != nil {
		img.Argv = args.Argv
		img.Env = args.Env
	}
	if len(img.Argv) == 0 {
		img.Argv = []string{sc.Path}
	}
	if k.resolver == nil {
		sc.SetErrno(abi.ENOSYS)
		return
	}
	fn, rerr := k.resolver(img)
	if rerr != abi.OK {
		sc.SetErrno(rerr)
		return
	}
	k.Stats.Execs += p.Weight
	p.Comm = baseName(sc.Path)
	p.Argv = img.Argv
	if img.Env != nil {
		p.Env = img.Env
	}
	// A fresh image maps a fresh vDSO and drops any tracer scratch page;
	// the tracer's OnExec hook re-establishes both (§5.3, §5.10).
	p.VdsoReplaced = false
	p.ScratchPage = false
	p.handlers = nil
	p.brkBase = 0x5000_0000 + k.Entropy.Int63n(1<<30)&^4095 // ASLR
	p.mmapBase = 0x7f00_0000_0000 + k.Entropy.Int63n(1<<36)&^4095
	p.mmapOff = 0
	t.pendingExec = fn
	t.Clock += k.Cost.ExecCost
	t.LClock += k.Cost.ExecCost
	k.Policy.OnExec(t)
	sc.Ret = 0
}

func (k *Kernel) sysWait4(t *Thread, sc *abi.Syscall) bool {
	p := t.Proc
	want := int(sc.Arg[0])
	for i, z := range p.zombies {
		if want == -1 || z.pid == want {
			p.zombies = append(p.zombies[:i], p.zombies[i+1:]...)
			if out, ok := sc.Obj.(*WaitResult); ok {
				out.PID = z.pid
				out.Status = z.status
				out.Usage = z.usage
			}
			sc.Ret = int64(z.pid)
			return false
		}
	}
	if !p.hasLiveChildren() {
		sc.SetErrno(abi.ECHILD)
		return false
	}
	if sc.Arg[1]&abi.WNOHANG != 0 {
		sc.Ret = 0
		return false
	}
	return true
}

func (k *Kernel) sysFutex(t *Thread, sc *abi.Syscall) bool {
	p := t.Proc
	addr := sc.Arg[0]
	switch sc.Arg[1] {
	case abi.FutexWait:
		if t.futexWoken {
			t.futexWoken = false
			sc.Ret = 0
			return false
		}
		if p.Mem[addr] != sc.Arg[2] {
			sc.SetErrno(abi.EAGAIN)
			return false
		}
		if sc.Attempts == 0 {
			p.futexWaiters[addr] = append(p.futexWaiters[addr], t)
		}
		return true
	case abi.FutexWake:
		n := int(sc.Arg[2])
		waiters := p.futexWaiters[addr]
		woken := 0
		for len(waiters) > 0 && woken < n {
			wt := waiters[0]
			waiters = waiters[1:]
			if wt.dead {
				continue
			}
			wt.wakeReady = true
			wt.futexWoken = true
			woken++
		}
		p.futexWaiters[addr] = waiters
		sc.Ret = int64(woken)
		return false
	default:
		sc.SetErrno(abi.ENOSYS)
		return false
	}
}

// --- identity & machine ------------------------------------------------------

func (k *Kernel) sysUname(t *Thread, sc *abi.Syscall) {
	if out, ok := sc.Obj.(*abi.Utsname); ok {
		*out = abi.Utsname{
			Sysname:  "Linux",
			Nodename: k.Profile.Hostname,
			Release:  k.Profile.KernelRelease,
			Version:  k.Profile.KernelVersion,
			Machine:  "x86_64",
		}
	}
	sc.Ret = 0
}

func (k *Kernel) sysSysinfo(t *Thread, sc *abi.Syscall) {
	if out, ok := sc.Obj.(*abi.Sysinfo); ok {
		*out = abi.Sysinfo{
			Uptime:   k.now / 1e9,
			TotalRAM: uint64(k.Profile.RAMMB) << 20,
			FreeRAM:  uint64(k.Profile.RAMMB) << 19,
			Procs:    uint16(len(k.procs)),
			NumCPU:   len(k.cores),
		}
	}
	sc.Ret = 0
}

func (k *Kernel) sysPrctl(t *Thread, sc *abi.Syscall) {
	switch sc.Arg[0] {
	case abi.PrSetTSC:
		t.Proc.Trap.TSCTrap = sc.Arg[1] == abi.PrTSCSigsegv
		sc.Ret = 0
	default:
		sc.SetErrno(abi.EINVAL)
	}
}

func (k *Kernel) sysArchPrctl(t *Thread, sc *abi.Syscall) {
	switch sc.Arg[0] {
	case abi.ArchSetCpuid:
		if !k.Profile.SupportsCpuidInterception() {
			sc.SetErrno(abi.ENODEV)
			return
		}
		t.Proc.Trap.CpuidTrap = sc.Arg[1] == abi.ArchCpuidTrap
		sc.Ret = 0
	default:
		sc.SetErrno(abi.EINVAL)
	}
}

func (k *Kernel) sysIoctl(t *Thread, sc *abi.Syscall) {
	_, err := t.Proc.FDs.get(int(sc.Arg[0]))
	if err != abi.OK {
		sc.SetErrno(err)
		return
	}
	// No terminal emulation: everything is ENOTTY, reproducibly.
	sc.SetErrno(abi.ENOTTY)
}

func (k *Kernel) sysFcntl(t *Thread, sc *abi.Syscall) {
	f, err := t.Proc.FDs.get(int(sc.Arg[0]))
	if err != abi.OK {
		sc.SetErrno(err)
		return
	}
	const (
		fGetfl     = 3
		fSetfl     = 4
		fSetPipeSz = 1031
	)
	switch sc.Arg[1] {
	case fGetfl:
		sc.Ret = int64(f.flags)
	case fSetfl:
		f.flags = int(sc.Arg[2])
		sc.Ret = 0
	case fSetPipeSz:
		if f.pipe == nil {
			sc.SetErrno(abi.EBADF)
			return
		}
		f.pipe.SetCapacity(int(sc.Arg[2]))
		sc.Ret = sc.Arg[2]
	default:
		sc.SetErrno(abi.EINVAL)
	}
}

// --- helpers ------------------------------------------------------------------

// normPath joins rel onto cwd and resolves "."/".." textually.
func normPath(cwd, rel string) string {
	p := rel
	if !strings.HasPrefix(rel, "/") {
		p = cwd + "/" + rel
	}
	var out []string
	for _, c := range strings.Split(p, "/") {
		switch c {
		case "", ".":
		case "..":
			if len(out) > 0 {
				out = out[:len(out)-1]
			}
		default:
			out = append(out, c)
		}
	}
	return "/" + strings.Join(out, "/")
}

func baseName(p string) string {
	i := strings.LastIndex(p, "/")
	return p[i+1:]
}
