package kernel

import (
	"repro/internal/fs"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/prng"
)

// Snapshot is the prepared, immutable half of a boot: the populated
// filesystem (frozen as a COW template base), the machine profile, the cost
// model and the program resolver. Everything per-run — entropy pool, clocks,
// run queues, device instances, the /proc pseudo files, the policy — is
// rebuilt by Boot, which is why one Snapshot can back any number of
// concurrent runs under any policy.
//
// The paper's §3 purity argument is what makes this sound: a container's
// behaviour is a function of its initial filesystem state, so sharing that
// state (read-only) between runs cannot couple them. Boot's warm path is
// pinned bitwise-identical to New's cold path by TestSnapshotBootEqualsCold
// and, end to end, by the template equivalence tests in internal/core and
// internal/buildsim.
type Snapshot struct {
	Profile  *machine.Profile
	Cost     CostModel
	Resolver Resolver

	base *fs.FS
}

// BootConfig is the per-run half of Config: everything that varies between
// two boots of the same prepared image.
type BootConfig struct {
	Seed       uint64 // host entropy seed: "which physical run is this"
	Epoch      int64  // wall-clock seconds at boot
	Policy     Policy // nil means the baseline nondeterministic policy
	Deadline   int64
	MaxActions int64
	NumCPU     int
	// Resolver overrides the snapshot's resolver when non-nil, for callers
	// (like core.Container.Run) that receive the program registry per run.
	Resolver Resolver
	// Obs/Rec mirror Config.Obs/Config.Rec: per-run observability sinks.
	Obs *obs.Registry
	Rec *obs.Recorder
	// CrashAtAction/Checkpointer mirror the Config fault/checkpoint plane.
	CrashAtAction int64
	Checkpointer  func(*Checkpoint, *Thread)
	// DeltaSeals/HaltAtAction/HaltAtLTime mirror the Config delta-seal and
	// debugger-halt knobs.
	DeltaSeals   bool
	HaltAtAction int64
	HaltAtLTime  int64
}

// Prepare builds the shareable half of a boot from the config's Profile,
// Image, Cost and Resolver; the per-run Config fields are ignored. The
// populated filesystem is frozen: the throwaway construction-time inode
// numbers and timestamps it carries are never observable, because every
// Boot renumbers and restamps them through fs.Fork.
func Prepare(cfg Config) *Snapshot {
	if cfg.Cost == (CostModel{}) {
		cfg.Cost = DefaultCostModel()
	}
	base := fs.New(cfg.Profile, func() int64 { return 0 }, prng.NewHost(0))
	if cfg.Image != nil {
		base.Populate(cfg.Image)
	}
	base.Freeze()
	return &Snapshot{Profile: cfg.Profile, Cost: cfg.Cost, Resolver: cfg.Resolver, base: base}
}

// Boot instantiates a runnable kernel from the snapshot. It is the warm
// twin of New: instead of populating the image into a fresh FS it COW-forks
// the frozen base, and the fork consumes exactly the entropy a cold
// fs.New would have, so the booted kernel is bitwise indistinguishable from
// a cold boot with the same image and BootConfig. Safe to call from any
// number of goroutines at once.
func (s *Snapshot) Boot(b BootConfig) *Kernel {
	resolver := s.Resolver
	if b.Resolver != nil {
		resolver = b.Resolver
	}
	cfg := Config{
		Profile:       s.Profile,
		Seed:          b.Seed,
		Epoch:         b.Epoch,
		Policy:        b.Policy,
		Resolver:      resolver,
		Cost:          s.Cost,
		Deadline:      b.Deadline,
		MaxActions:    b.MaxActions,
		NumCPU:        b.NumCPU,
		Obs:           b.Obs,
		Rec:           b.Rec,
		CrashAtAction: b.CrashAtAction,
		Checkpointer:  b.Checkpointer,
		DeltaSeals:    b.DeltaSeals,
		HaltAtAction:  b.HaltAtAction,
		HaltAtLTime:   b.HaltAtLTime,
	}
	return newKernel(cfg, func(k *Kernel, fsEntropy *prng.Host) *fs.FS {
		return s.base.Fork(k.WallClock, fsEntropy)
	})
}
