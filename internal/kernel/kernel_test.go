package kernel_test

import (
	"strings"
	"testing"

	"repro/internal/abi"
	"repro/internal/baseimg"
	"repro/internal/fs"
	"repro/internal/guest"
	"repro/internal/kernel"
	"repro/internal/machine"
)

// profFor and imgFor are the default profile/image for helper kernels.
func profFor() *machine.Profile { return machine.CloudLabC220G5() }
func imgFor() *fs.Image         { return baseimg.Minimal() }

// newKernel builds a kernel with the standard test setup.
func newKernel(t *testing.T, seed uint64, reg *guest.Registry) *kernel.Kernel {
	t.Helper()
	return kernel.New(kernel.Config{
		Profile: profFor(), Seed: seed, Epoch: 1_500_000_000,
		Image: imgFor(), Resolver: reg.Resolver(),
		Deadline: 3_600_000_000_000,
	})
}

// boot spins up a kernel with the minimal image and runs prog as init.
func boot(t *testing.T, seed uint64, prog guest.Program) (*kernel.Kernel, error) {
	t.Helper()
	reg := guest.NewRegistry()
	reg.Register("init", prog)
	k := kernel.New(kernel.Config{
		Profile:  machine.CloudLabC220G5(),
		Seed:     seed,
		Epoch:    1_500_000_000,
		Image:    baseimg.Minimal(),
		Resolver: reg.Resolver(),
		Deadline: int64(3_600_000_000_000), // 1h virtual
	})
	img := &kernel.ExecImage{Path: "/bin/init", Argv: []string{"init"}}
	k.Start(reg.Bind(prog, img), img.Argv, []string{"PATH=/bin"})
	return k, k.Run()
}

func mustRun(t *testing.T, seed uint64, prog guest.Program) *kernel.Kernel {
	t.Helper()
	k, err := boot(t, seed, prog)
	if err != nil {
		t.Fatalf("kernel run failed: %v", err)
	}
	return k
}

func TestWriteFileAndStdout(t *testing.T) {
	k := mustRun(t, 1, func(p *guest.Proc) int {
		p.Printf("hello %s\n", "world")
		if err := p.WriteFile("/tmp/out.txt", []byte("data"), 0o644); err != abi.OK {
			return 1
		}
		got, err := p.ReadFile("/tmp/out.txt")
		if err != abi.OK || string(got) != "data" {
			return 2
		}
		return 0
	})
	if got := k.Console.Stdout(); got != "hello world\n" {
		t.Errorf("stdout = %q", got)
	}
}

func TestForkWaitExitCode(t *testing.T) {
	mustRun(t, 2, func(p *guest.Proc) int {
		pid, err := p.Fork(func(c *guest.Proc) int { return 42 })
		if err != abi.OK {
			p.Eprintf("fork failed\n")
			return 1
		}
		wr, werr := p.Wait()
		if werr != abi.OK || wr.PID != pid || !wr.Status.Exited() || wr.Status.ExitCode() != 42 {
			p.Eprintf("wait mismatch: %+v %v\n", wr, werr)
			return 1
		}
		return 0
	})
}

func TestPipeBetweenProcesses(t *testing.T) {
	k := mustRun(t, 3, func(p *guest.Proc) int {
		r, w, err := p.Pipe()
		if err != abi.OK {
			return 1
		}
		p.Fork(func(c *guest.Proc) int {
			c.Close(r)
			c.WriteString(w, "through the pipe")
			c.Close(w)
			return 0
		})
		p.Close(w)
		var sb strings.Builder
		buf := make([]byte, 7) // force multiple short reads
		for {
			n, rerr := p.Read(r, buf)
			if rerr != abi.OK {
				return 2
			}
			if n == 0 {
				break
			}
			sb.Write(buf[:n])
		}
		p.Printf("%s", sb.String())
		p.Wait()
		return 0
	})
	if got := k.Console.Stdout(); got != "through the pipe" {
		t.Errorf("pipe content = %q", got)
	}
}

func TestExecveRunsRegisteredProgram(t *testing.T) {
	reg := guest.NewRegistry()
	reg.Register("child", func(p *guest.Proc) int {
		p.Printf("child argv=%s env=%s\n", strings.Join(p.Argv(), ","), p.Getenv("MARK"))
		return 0
	})
	init := func(p *guest.Proc) int {
		if err := p.WriteFile("/bin/child", guest.MakeExe("child", nil), 0o755); err != abi.OK {
			return 1
		}
		pid, err := p.Spawn("/bin/child", []string{"child", "x"}, []string{"MARK=yes"})
		if err != abi.OK {
			return 2
		}
		wr, _ := p.Waitpid(pid, 0)
		return wr.Status.ExitCode()
	}
	reg.Register("init", init)
	k := kernel.New(kernel.Config{
		Profile:  machine.CloudLabC220G5(),
		Seed:     4,
		Epoch:    1_500_000_000,
		Image:    baseimg.Minimal(),
		Resolver: reg.Resolver(),
	})
	img := &kernel.ExecImage{Path: "/bin/init", Argv: []string{"init"}}
	k.Start(reg.Bind(init, img), img.Argv, nil)
	if err := k.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := k.Console.Stdout(); got != "child argv=child,x env=yes\n" {
		t.Errorf("stdout = %q", got)
	}
}

func TestAlarmDeliversSignalHandler(t *testing.T) {
	k := mustRun(t, 5, func(p *guest.Proc) int {
		fired := false
		p.Signal(abi.SIGALRM, func(c *guest.Proc, sig abi.Signal) {
			fired = true
			c.Printf("alarm!\n")
		})
		p.Alarm(1)
		p.Pause()
		if !fired {
			return 1
		}
		return 0
	})
	if got := k.Console.Stdout(); got != "alarm!\n" {
		t.Errorf("stdout = %q", got)
	}
}

func TestThreadsAndFutex(t *testing.T) {
	mustRun(t, 6, func(p *guest.Proc) int {
		const flag = 0x100
		p.CloneThread(func(w *guest.Proc) int {
			w.Compute(1000)
			w.Store(flag, 1)
			w.FutexWake(flag, 1)
			return 0
		})
		for p.Load(flag) == 0 {
			if err := p.FutexWait(flag, 0); err != abi.OK && err != abi.EAGAIN && err != abi.EINTR {
				return 1
			}
		}
		return 0
	})
}

func TestKillDefaultTerminates(t *testing.T) {
	mustRun(t, 7, func(p *guest.Proc) int {
		pid, _ := p.Fork(func(c *guest.Proc) int {
			c.Pause()
			return 0
		})
		p.Compute(10_000)
		p.Kill(pid, abi.SIGTERM)
		wr, err := p.Waitpid(pid, 0)
		if err != abi.OK || !wr.Status.Signaled() || wr.Status.TermSignal() != abi.SIGTERM {
			return 1
		}
		return 0
	})
}

func TestNanosleepAdvancesClock(t *testing.T) {
	k := mustRun(t, 8, func(p *guest.Proc) int {
		before := p.Time()
		p.Nanosleep(3e9)
		after := p.Time()
		if after < before+2 {
			return 1
		}
		return 0
	})
	if k.Now() < 3e9 {
		t.Errorf("virtual time %d, want >= 3s", k.Now())
	}
}

func TestGetdentsOrderIsHashOrderPerMachine(t *testing.T) {
	list := func(seed uint64, prof *machine.Profile) string {
		reg := guest.NewRegistry()
		var order string
		prog := func(p *guest.Proc) int {
			for _, n := range []string{"zeta", "alpha", "mid", "beta", "omega", "kappa"} {
				p.WriteFile("/tmp/"+n, []byte(n), 0o644)
			}
			ents, _ := p.ReadDir("/tmp")
			names := make([]string, len(ents))
			for i, e := range ents {
				names[i] = e.Name
			}
			order = strings.Join(names, ",")
			return 0
		}
		reg.Register("init", prog)
		k := kernel.New(kernel.Config{
			Profile: prof, Seed: seed, Epoch: 1_500_000_000,
			Image: baseimg.Minimal(), Resolver: reg.Resolver(),
		})
		img := &kernel.ExecImage{Path: "/bin/init", Argv: []string{"init"}}
		k.Start(reg.Bind(prog, img), img.Argv, nil)
		if err := k.Run(); err != nil {
			t.Fatalf("run: %v", err)
		}
		return order
	}
	skylake := machine.CloudLabC220G5()
	broadwell := machine.PortabilityBroadwell()
	// Same machine, two boots: ext4-style hash order is stable.
	if a, b := list(100, skylake), list(200, skylake); a != b {
		t.Errorf("directory order varies across boots of one machine: %q vs %q", a, b)
	}
	// Different machines: different mkfs salt, different order, and never
	// plain sorted order.
	a, b := list(100, skylake), list(100, broadwell)
	if a == b {
		t.Errorf("directory order identical across machines: %q", a)
	}
	if a == "alpha,beta,kappa,mid,omega,zeta" {
		t.Errorf("host order is accidentally sorted: %q", a)
	}
}

func TestStatTimestampsComeFromHostClock(t *testing.T) {
	var mtimes [2]int64
	for i, seed := range []uint64{11, 12} {
		mustRun(t, seed, func(p *guest.Proc) int {
			p.WriteFile("/tmp/f", []byte("x"), 0o644)
			st, _ := p.Stat("/tmp/f")
			mtimes[i] = st.Mtime.Nanos()
			return 0
		})
	}
	if mtimes[0] == mtimes[1] {
		t.Skip("timestamps coincided; jitter too small for these seeds")
	}
}

func TestDeadlockDetected(t *testing.T) {
	_, err := boot(t, 13, func(p *guest.Proc) int {
		p.FutexWait(0x1, 0) // nobody will ever wake this
		return 0
	})
	if err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestSocketsWorkInBaseline(t *testing.T) {
	k := mustRun(t, 14, func(p *guest.Proc) int {
		srv, _ := p.Socket()
		p.Bind(srv, "/tmp/sock")
		p.Listen(srv)
		p.Fork(func(c *guest.Proc) int {
			fd, _ := c.Socket()
			if err := c.Connect(fd, "/tmp/sock"); err != abi.OK {
				return 1
			}
			c.Send(fd, []byte("ping"))
			c.Close(fd)
			return 0
		})
		conn, err := p.Accept(srv)
		if err != abi.OK {
			return 2
		}
		buf := make([]byte, 16)
		n, _ := p.Recv(conn, buf)
		p.Printf("got %s", buf[:n])
		p.Wait()
		return 0
	})
	if got := k.Console.Stdout(); got != "got ping" {
		t.Errorf("stdout = %q", got)
	}
}

func TestRdtscAndCpuid(t *testing.T) {
	mustRun(t, 15, func(p *guest.Proc) int {
		a := p.Rdtsc()
		p.Compute(1000)
		b := p.Rdtsc()
		if b <= a {
			return 1
		}
		leaf := p.Cpuid(1)
		if leaf.Leaf.EAX == 0 {
			return 2
		}
		if _, ok := p.Rdrand(); !ok {
			return 3
		}
		return 0
	})
}

func TestUnameReportsHostKernel(t *testing.T) {
	mustRun(t, 16, func(p *guest.Proc) int {
		u := p.Uname()
		if u.Sysname != "Linux" || !strings.HasPrefix(u.Release, "4.15") {
			return 1
		}
		return 0
	})
}

func TestExitStatusPropagation(t *testing.T) {
	k, err := boot(t, 17, func(p *guest.Proc) int {
		p.Exit(3)
		return 0 // unreachable
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	_ = k
}
