package kernel

import (
	"errors"

	"repro/internal/abi"
	"repro/internal/cpu"
	"repro/internal/fs"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/prng"
)

// This file implements crash-consistent mid-run checkpoints (ISSUE 5). A
// checkpoint seals the complete kernel state at a *quiescent traced stop* so
// that a run killed afterwards can be resumed bitwise-identically: same
// output, same flight-recorder stream, same metrics as the uninterrupted run.
//
// Why quiescent stops, and why execve. Guest programs are Go functions; their
// goroutine stacks cannot be serialized. The only cut points where no guest
// stack needs saving are stops whose continuation is itself a fresh program
// image: an execve that has not been attempted yet. At such a stop the
// thread's entire future is (program image, argv, env) — all plain data — so
// a resume can re-issue the very same execve from a stub and the run
// continues exactly where it left off. Quiescence additionally requires that
// nothing else is in flight: one process, one live thread, no blocked or
// parked threads, no pending signals, no timers, no non-console fds, no
// chroot. Workloads opt into checkpointability by funnelling through such
// states (the build trampoline's phase-boundary self-execs).
//
// The seal happens at the top of the run loop, *before* the scheduler pick:
// the pick for the sealed execve then lands in the suffix of both the
// uninterrupted and the resumed run, so scheduler rings and counters match.

// ErrInjectedCrash is returned by Run when the deterministic fault plane
// kills the kernel at a scheduled action count (Config.CrashAtAction).
var ErrInjectedCrash = errors.New("kernel: injected crash (deterministic fault plane)")

// Checkpoint is the sealed kernel state. Fields are unexported: a checkpoint
// is an opaque token produced by the run loop and consumed by Resume; the
// exported accessors expose only what recovery bookkeeping needs.
type Checkpoint struct {
	profile *machine.Profile
	cost    CostModel
	epoch   int64

	entropyState   uint64 // host pool cursor (splitmix64 counter)
	hwEntropyState uint64 // hardware pool cursor
	bootTSC        uint64

	now, lnow               int64
	cores, lcores           []int64
	tracerBusy, ltracerBusy int64
	tracerGaps              []tracerGap

	actions int64
	nextPID int

	stats Stats // PerSyscall deep-copied

	consoleOut, consoleErr []byte

	fsSeal *fs.Seal

	proc   procSeal
	thread threadSeal

	// The unattempted execve to re-issue on resume.
	execPath    string
	execHasArgs bool
	execArgv    []string
	execEnv     []string
}

// procSeal is the surviving process's plain-data state.
type procSeal struct {
	pid, ppid int
	argv, env []string
	comm      string
	uid, gid  uint32
	umask     uint32
	cwdPath   string

	brk, brkBase      int64
	mmapBase, mmapOff int64

	fds []fdSeal

	zombies []zombie
	mem     map[int64]int64

	trap                      cpu.TrapConfig
	vdsoReplaced, vdsoLogical bool
	scratchPage               bool
	weight                    int64
	timeCallCount             int64
	threadBusy, lthreadBusy   int64
}

// fdSeal is one console descriptor (quiescence admits no other kind).
type fdSeal struct {
	num        int
	flags      int
	consoleErr bool
}

// threadSeal is the surviving thread's plain-data state.
type threadSeal struct {
	tid           int
	clock, lclock int64
	spinCount     int
	bufCount      int
}

// Actions returns the processed-action count at the seal — the checkpoint's
// position on the deterministic event axis.
func (cp *Checkpoint) Actions() int64 { return cp.actions }

// VirtualNow returns the sealed virtual time in nanoseconds since boot; the
// difference between a resumed run's final Now and this value is the virtual
// work re-executed after restore (the X15 MTTR metric).
func (cp *Checkpoint) VirtualNow() int64 { return cp.now }

// LNow returns the sealed logical time.
func (cp *Checkpoint) LNow() int64 { return cp.lnow }

// FSSeal exposes the sealed (frozen) filesystem tree for read-only
// inspection. The incremental-rebuild planner walks it to learn what the
// sealed prefix had built — the phase journal and the object tree — without
// resuming the checkpoint (core.Checkpoint.RebuildInfo); the time-travel
// debugger serves filesystem views from it. When the seal is a delta, shared
// subtrees resolve transparently through the chain.
func (cp *Checkpoint) FSSeal() *fs.FS { return cp.fsSeal.Tree() }

// FSSealChain exposes the seal object itself: its delta-chain link, cost
// stats, and chain validation.
func (cp *Checkpoint) FSSealChain() *fs.Seal { return cp.fsSeal }

// FSSealStats returns the filesystem seal's cost accounting (delta vs full
// bytes — the checkpoint_delta_bytes/checkpoint_full_bytes counters).
func (cp *Checkpoint) FSSealStats() fs.SealStats { return cp.fsSeal.Stats() }

// CorruptFSSeal flips a bit in the seal's stored digest — the deterministic
// storage-fault hook behind core's FaultCorruptCheckpoint.
func (cp *Checkpoint) CorruptFSSeal() { cp.fsSeal.Corrupt() }

// quiescentStop returns the sole pending thread if the kernel is at a
// checkpointable stop, nil otherwise. See the file comment for why each
// condition is required.
func (k *Kernel) quiescentStop() *Thread {
	if len(k.pending) != 1 || len(k.kblocked) != 0 || len(k.parked) != 0 {
		return nil
	}
	if len(k.procs) != 1 || len(k.timers) != 0 || len(k.unixListeners) != 0 {
		return nil
	}
	t := k.pending[0]
	act := t.act
	if act == nil || act.kind != yieldSyscall || act.sc == nil {
		return nil
	}
	sc := act.sc
	if sc.Num != abi.SysExecve || sc.Attempts != 0 || sc.Injected {
		return nil
	}
	p := t.Proc
	live := 0
	for _, th := range p.Threads {
		if !th.dead {
			live++
		}
	}
	if live != 1 || t.dead {
		return nil
	}
	// Signal handlers are Go closures and cannot be sealed. At this stop the
	// pending execve will clear them before the new image runs and nothing
	// can deliver a signal in between, so requiring none keeps the (remote)
	// failed-execve path faithful too.
	if len(p.sigPending) != 0 || len(p.handlers) != 0 {
		return nil
	}
	for _, ws := range p.futexWaiters {
		if len(ws) != 0 {
			return nil
		}
	}
	if p.Root != k.FS.Root {
		return nil
	}
	for _, f := range p.FDs.fds {
		if f.kind != fdConsole {
			return nil
		}
	}
	return t
}

// seal captures the kernel at the quiescent stop t (from quiescentStop).
func (k *Kernel) seal(t *Thread) *Checkpoint {
	p := t.Proc
	sc := t.act.sc
	cp := &Checkpoint{
		profile:        k.Profile,
		cost:           k.Cost,
		epoch:          k.epoch,
		entropyState:   k.Entropy.State(),
		hwEntropyState: k.HW.Entropy.State(),
		bootTSC:        k.HW.BootTSC(),
		now:            k.now,
		lnow:           k.lnow,
		cores:          append([]int64(nil), k.cores...),
		lcores:         append([]int64(nil), k.lcores...),
		tracerBusy:     k.tracerBusy,
		ltracerBusy:    k.ltracerBusy,
		tracerGaps:     append([]tracerGap(nil), k.tracerGaps...),
		actions:        k.actions,
		nextPID:        k.nextPID,
		stats:          k.Stats,
		consoleOut:     append([]byte(nil), k.Console.Out...),
		consoleErr:     append([]byte(nil), k.Console.Err...),
		fsSeal:         k.FS.SealCheckpoint(k.deltaSeals),
		execPath:       sc.Path,
	}
	cp.stats.PerSyscall = make(map[abi.Sysno]int64, len(k.Stats.PerSyscall))
	for nr, n := range k.Stats.PerSyscall {
		cp.stats.PerSyscall[nr] = n
	}
	if args, ok := sc.Obj.(*ExecArgs); ok && args != nil {
		cp.execHasArgs = true
		cp.execArgv = append([]string(nil), args.Argv...)
		cp.execEnv = append([]string(nil), args.Env...)
	}
	ps := procSeal{
		pid:           p.PID,
		ppid:          p.PPID,
		argv:          append([]string(nil), p.Argv...),
		env:           append([]string(nil), p.Env...),
		comm:          p.Comm,
		uid:           p.UID,
		gid:           p.GID,
		umask:         p.Umask,
		cwdPath:       p.CwdPath,
		brk:           p.brk,
		brkBase:       p.brkBase,
		mmapBase:      p.mmapBase,
		mmapOff:       p.mmapOff,
		trap:          p.Trap,
		vdsoReplaced:  p.VdsoReplaced,
		vdsoLogical:   p.VdsoLogical,
		scratchPage:   p.ScratchPage,
		weight:        p.Weight,
		timeCallCount: p.TimeCallCount,
		threadBusy:    p.threadBusyUntil,
		lthreadBusy:   p.lthreadBusyUntil,
		mem:           make(map[int64]int64, len(p.Mem)),
	}
	for a, v := range p.Mem {
		ps.mem[a] = v
	}
	for _, z := range p.zombies {
		ps.zombies = append(ps.zombies, *z)
	}
	for num, f := range p.FDs.fds {
		ps.fds = append(ps.fds, fdSeal{num: num, flags: f.flags, consoleErr: f.consoleErr})
	}
	cp.proc = ps
	cp.thread = threadSeal{
		tid:       t.TID,
		clock:     t.Clock,
		lclock:    t.LClock,
		spinCount: t.SpinCount,
		bufCount:  t.BufCount,
	}
	return cp
}

// maybeCheckpoint runs at the top of the kernel loop: if a checkpointer is
// attached, the kernel is quiescent, and this action count has not been
// sealed yet (a resumed kernel starts *at* its seal point and must not
// re-seal it), capture a checkpoint and hand it over.
func (k *Kernel) maybeCheckpoint() {
	if k.checkpointer == nil || k.actions <= k.lastCheckpoint {
		return
	}
	t := k.quiescentStop()
	if t == nil {
		return
	}
	k.lastCheckpoint = k.actions
	k.checkpointer(k.seal(t), t)
}

// Resume reconstructs a runnable kernel from a checkpoint. The per-run knobs
// honoured from b are Policy (required: the baseline policy's entropy state
// is not sealed), Resolver, Deadline, MaxActions, Obs/Rec, and the fault /
// checkpoint hooks; Seed, Epoch and NumCPU are ignored — those accidents
// happened at the original boot and the seal carries them verbatim, which is
// what keeps the §4b entropy-draw contract intact: the re-issued execve draws
// its ASLR bases from the restored pool cursor and reproduces the
// uninterrupted run's draws exactly.
//
// The returned thread is the sole survivor, already pending on its sealed
// execve; callers that keep per-thread policy state (the scheduler's seal)
// rebind it before Run.
func Resume(cp *Checkpoint, b BootConfig) (*Kernel, *Proc, *Thread) {
	if b.Policy == nil {
		panic("kernel: Resume requires an explicit policy (baseline policy state is not sealed)")
	}
	resolver := b.Resolver
	maxActions := b.MaxActions
	if maxActions == 0 {
		maxActions = 200_000_000
	}
	k := &Kernel{
		Profile:        cp.profile,
		Cost:           cp.cost,
		Policy:         b.Policy,
		resolver:       resolver,
		epoch:          cp.epoch,
		now:            cp.now,
		lnow:           cp.lnow,
		cores:          append([]int64(nil), cp.cores...),
		lcores:         append([]int64(nil), cp.lcores...),
		tracerBusy:     cp.tracerBusy,
		ltracerBusy:    cp.ltracerBusy,
		tracerGaps:     append([]tracerGap(nil), cp.tracerGaps...),
		nextPID:        cp.nextPID,
		procs:          make(map[int]*Proc),
		deadline:       b.Deadline,
		maxActions:     maxActions,
		actions:        cp.actions,
		devices:        make(map[string]func() fs.Device),
		Console:        &Console{Out: append([]byte(nil), cp.consoleOut...), Err: append([]byte(nil), cp.consoleErr...)},
		crashAt:        b.CrashAtAction,
		checkpointer:   b.Checkpointer,
		lastCheckpoint: cp.actions,
		deltaSeals:     b.DeltaSeals,
		haltAtAction:   b.HaltAtAction,
		haltAtLTime:    b.HaltAtLTime,
	}
	k.Stats = cp.stats
	k.Stats.PerSyscall = make(map[abi.Sysno]int64, len(cp.stats.PerSyscall))
	for nr, n := range cp.stats.PerSyscall {
		k.Stats.PerSyscall[nr] = n
	}
	k.Obs = b.Obs
	if k.Obs == nil {
		k.Obs = obs.NewRegistry()
	}
	k.Rec = b.Rec
	k.sysVec = k.Obs.CounterVec("kernel_syscalls", abi.SysnoSlots)
	k.Entropy = prng.NewHost(0)
	k.Entropy.SetState(cp.entropyState)
	k.FS = cp.fsSeal.Resume(k.WallClock, k.Entropy)
	hwPool := prng.NewHost(0)
	hwPool.SetState(cp.hwEntropyState)
	k.HW = cpu.ResumeHW(cp.profile, hwPool, func() int64 { return k.now }, cp.bootTSC)
	// Device constructors are per-boot state; the /proc pseudo inodes are
	// not (populateProc ran at the original boot and the sealed filesystem
	// carries them), so only the registry is rebuilt here.
	k.registerStandardDevices()
	if fp, ok := k.Policy.(SyscallBufferer); ok {
		k.fastPath = fp
	}
	if ws, ok := k.Policy.(WorkspaceScheduler); ok {
		k.wsched = ws
	}

	ps := cp.proc
	p := &Proc{
		PID:              ps.pid,
		PPID:             ps.ppid,
		Argv:             append([]string(nil), ps.argv...),
		Env:              append([]string(nil), ps.env...),
		Comm:             ps.comm,
		UID:              ps.uid,
		GID:              ps.gid,
		Umask:            ps.umask,
		CwdPath:          ps.cwdPath,
		brk:              ps.brk,
		brkBase:          ps.brkBase,
		mmapBase:         ps.mmapBase,
		mmapOff:          ps.mmapOff,
		FDs:              newFDTable(),
		Mem:              make(map[int64]int64, len(ps.mem)),
		futexWaiters:     make(map[int64][]*Thread),
		Trap:             ps.trap,
		VdsoReplaced:     ps.vdsoReplaced,
		VdsoLogical:      ps.vdsoLogical,
		ScratchPage:      ps.scratchPage,
		Weight:           ps.weight,
		TimeCallCount:    ps.timeCallCount,
		threadBusyUntil:  ps.threadBusy,
		lthreadBusyUntil: ps.lthreadBusy,
	}
	for a, v := range ps.mem {
		p.Mem[a] = v
	}
	for _, z := range ps.zombies {
		zc := z
		p.zombies = append(p.zombies, &zc)
	}
	// Quiescence admits only console descriptors; rebuilding them unshared is
	// faithful because console fds carry no position and their release is a
	// no-op, so dup-sharing is unobservable.
	for _, f := range ps.fds {
		p.FDs.install(f.num, &FD{kind: fdConsole, flags: f.flags, consoleErr: f.consoleErr})
	}
	p.Root = k.FS.Root
	p.Cwd = k.FS.Root
	if ps.cwdPath != "" {
		if n, err := k.FS.Resolve(fs.LookupCtx{Root: k.FS.Root, Cwd: k.FS.Root}, ps.cwdPath, true); err == abi.OK && n.IsDir() {
			p.Cwd = n
		}
	}
	k.procs[p.PID] = p

	// The survivor restarts as a stub that re-issues the sealed execve. The
	// stub's 127 mirrors guest.Spawn's exec-failure convention; on success
	// the execve unwinds the stub and the real image takes over.
	stub := ProgramFn(func(t *Thread) int {
		ev := abi.Syscall{Num: abi.SysExecve, Path: cp.execPath}
		if cp.execHasArgs {
			ev.Obj = &ExecArgs{
				Argv: append([]string(nil), cp.execArgv...),
				Env:  append([]string(nil), cp.execEnv...),
			}
		}
		t.Syscall(&ev)
		return 127
	})
	ts := cp.thread
	t := &Thread{
		TID:       ts.tid,
		Proc:      p,
		Clock:     ts.clock,
		LClock:    ts.lclock,
		SpinCount: ts.spinCount,
		BufCount:  ts.bufCount,
		program:   stub,
		yieldCh:   make(chan *yieldMsg),
		resumeCh:  make(chan resumeMsg),
		k:         k,
	}
	p.Threads = append(p.Threads, t)
	k.startThread(t)
	return k, p, t
}
