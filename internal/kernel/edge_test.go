package kernel_test

import (
	"strings"
	"testing"

	"repro/internal/abi"
	"repro/internal/guest"
	"repro/internal/kernel"
)

func TestDevNullAndZero(t *testing.T) {
	mustRun(t, 50, func(p *guest.Proc) int {
		fd, err := p.Open("/dev/null", abi.ORdwr, 0)
		if err != abi.OK {
			return 1
		}
		if n, _ := p.Write(fd, []byte("discarded")); n != 9 {
			return 2
		}
		buf := make([]byte, 8)
		if n, _ := p.Read(fd, buf); n != 0 {
			return 3 // /dev/null reads EOF
		}
		p.Close(fd)
		zfd, _ := p.Open("/dev/zero", abi.ORdonly, 0)
		buf = []byte{1, 2, 3, 4}
		p.Read(zfd, buf)
		for _, b := range buf {
			if b != 0 {
				return 4
			}
		}
		p.Close(zfd)
		return 0
	})
}

func TestUrandomDeviceVariesAcrossBoots(t *testing.T) {
	grab := func(seed uint64) string {
		var s string
		mustRun(t, seed, func(p *guest.Proc) int {
			fd, _ := p.Open("/dev/urandom", abi.ORdonly, 0)
			buf := make([]byte, 16)
			p.Read(fd, buf)
			p.Close(fd)
			s = string(buf)
			return 0
		})
		return s
	}
	if grab(51) == grab(52) {
		t.Errorf("host entropy identical across boots")
	}
}

func TestProcCpuinfoReflectsHost(t *testing.T) {
	k := mustRun(t, 53, func(p *guest.Proc) int {
		data, err := p.ReadFile("/proc/cpuinfo")
		if err != abi.OK {
			return 1
		}
		p.Printf("%d", strings.Count(string(data), "processor"))
		return 0
	})
	if got := k.Console.Stdout(); got != "40" {
		t.Errorf("cpuinfo processors = %s, want 40 (c220g5)", got)
	}
}

func TestGetdentsChunking(t *testing.T) {
	mustRun(t, 54, func(p *guest.Proc) int {
		for i := 0; i < 10; i++ {
			p.WriteFile("/tmp/f"+string(rune('a'+i)), nil, 0o644)
		}
		fd, _ := p.Open("/tmp", abi.ORdonly|abi.ODirectory, 0)
		defer p.Close(fd)
		var total int
		for {
			ents, err := p.Getdents(fd, 3)
			if err != abi.OK {
				return 1
			}
			if len(ents) == 0 {
				break
			}
			if len(ents) > 3 {
				return 2
			}
			total += len(ents)
		}
		if total != 10 {
			p.Eprintf("total=%d\n", total)
			return 3
		}
		return 0
	})
}

func TestNonblockingPipe(t *testing.T) {
	mustRun(t, 55, func(p *guest.Proc) int {
		r, w, _ := p.Pipe()
		const fSetfl = 4
		p.Fcntl(r, fSetfl, abi.ONonblock)
		buf := make([]byte, 4)
		if _, err := p.Read(r, buf); err != abi.EAGAIN {
			return 1
		}
		p.Fcntl(w, fSetfl, abi.ONonblock)
		// Fill the pipe: non-blocking writes hit EAGAIN instead of parking.
		block := make([]byte, 4096)
		for i := 0; i < 200; i++ {
			if _, err := p.Write(w, block); err == abi.EAGAIN {
				return 0
			}
		}
		return 2 // never filled: capacity model broken
	})
}

func TestSocketEOFAndReset(t *testing.T) {
	mustRun(t, 56, func(p *guest.Proc) int {
		srv, _ := p.Socket()
		p.Bind(srv, "/tmp/s")
		p.Listen(srv)
		pid, _ := p.Fork(func(c *guest.Proc) int {
			fd, _ := c.Socket()
			c.Connect(fd, "/tmp/s")
			c.Send(fd, []byte("bye"))
			c.Close(fd) // then EOF on the server side
			return 0
		})
		conn, _ := p.Accept(srv)
		buf := make([]byte, 8)
		n, _ := p.Recv(conn, buf)
		if string(buf[:n]) != "bye" {
			return 1
		}
		p.Waitpid(pid, 0)
		if n, err := p.Recv(conn, buf); n != 0 || err != abi.OK {
			return 2 // EOF after peer close
		}
		if _, err := p.Send(conn, []byte("x")); err != abi.ECONNRESET {
			return 3
		}
		return 0
	})
}

func TestConnectRefusedWithoutListener(t *testing.T) {
	mustRun(t, 57, func(p *guest.Proc) int {
		fd, _ := p.Socket()
		if err := p.Connect(fd, "/tmp/nobody"); err != abi.ECONNREFUSE {
			return 1
		}
		return 0
	})
}

func TestChrootSyscall(t *testing.T) {
	k := mustRun(t, 58, func(p *guest.Proc) int {
		p.MkdirAll("/jail/inner", 0o755)
		p.WriteFile("/jail/marker", []byte("inside"), 0o644)
		if err := p.Chroot("/jail"); err != abi.OK {
			return 1
		}
		p.Chdir("/")
		data, err := p.ReadFile("/marker")
		if err != abi.OK {
			return 2
		}
		p.Printf("%s", data)
		if _, err := p.Stat("/jail"); err != abi.ENOENT {
			return 3 // the old tree must be invisible
		}
		return 0
	})
	if got := k.Console.Stdout(); got != "inside" {
		t.Errorf("stdout = %q", got)
	}
}

func TestSetuidAndIdentity(t *testing.T) {
	mustRun(t, 59, func(p *guest.Proc) int {
		if err := p.Setuid(0); err != abi.OK {
			return 1
		}
		if p.Getuid() != 0 {
			return 2
		}
		p.WriteFile("/tmp/owned", nil, 0o644)
		st, _ := p.Stat("/tmp/owned")
		if st.UID != 0 {
			return 3
		}
		return 0
	})
}

func TestEnvInheritanceRules(t *testing.T) {
	reg := guest.NewRegistry()
	reg.Register("envprobe", func(p *guest.Proc) int {
		p.Printf("[%s]", strings.Join(p.Environ(), ","))
		return 0
	})
	init := func(p *guest.Proc) int {
		p.WriteFile("/bin/child", guest.MakeExe("envprobe", nil), 0o755)
		// nil env inherits; explicit env replaces.
		pid, _ := p.Spawn("/bin/child", []string{"c"}, nil)
		p.Waitpid(pid, 0)
		pid, _ = p.Spawn("/bin/child", []string{"c"}, []string{"ONLY=this"})
		p.Waitpid(pid, 0)
		return 0
	}
	reg.Register("init", init)
	k := newKernel(t, 60, reg)
	img := &kernel.ExecImage{Path: "/bin/init", Argv: []string{"init"}}
	k.Start(reg.Bind(init, img), img.Argv, []string{"PATH=/bin"})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	out := k.Console.Stdout()
	if !strings.Contains(out, "[PATH=/bin]") || !strings.Contains(out, "[ONLY=this]") {
		t.Errorf("env propagation: %q", out)
	}
}

func TestSetitimerIntervalFiresRepeatedly(t *testing.T) {
	mustRun(t, 61, func(p *guest.Proc) int {
		hits := 0
		p.Signal(abi.SIGVTALRM, func(c *guest.Proc, s abi.Signal) { hits++ })
		p.Setitimer(1e9, 1e9) // 1s initial, 1s interval
		for hits < 3 {
			p.Nanosleep(2e9)
		}
		p.Setitimer(0, 0) // disarm
		return 0
	})
}

func TestAlarmCancellation(t *testing.T) {
	mustRun(t, 62, func(p *guest.Proc) int {
		fired := false
		p.Signal(abi.SIGALRM, func(c *guest.Proc, s abi.Signal) { fired = true })
		p.Alarm(100)
		p.Alarm(0) // cancel
		p.Nanosleep(2e9)
		if fired {
			return 1
		}
		return 0
	})
}

func TestTimerInterruptsNanosleep(t *testing.T) {
	k := mustRun(t, 63, func(p *guest.Proc) int {
		p.Signal(abi.SIGALRM, func(c *guest.Proc, s abi.Signal) { c.Printf("ding ") })
		p.Alarm(1)
		err := p.Nanosleep(3600e9) // a virtual hour, cut short by the alarm
		p.Printf("sleep=%s", err)
		return 0
	})
	if got := k.Console.Stdout(); got != "ding sleep=EINTR" {
		t.Errorf("stdout = %q", got)
	}
	if k.Now() > 10e9 {
		t.Errorf("sleep was not interrupted: %d ns elapsed", k.Now())
	}
}

func TestSignalHandlerUninstall(t *testing.T) {
	mustRun(t, 64, func(p *guest.Proc) int {
		p.Signal(abi.SIGUSR1, func(c *guest.Proc, s abi.Signal) {})
		p.Signal(abi.SIGUSR1, nil) // back to default: lethal
		pid, _ := p.Fork(func(c *guest.Proc) int {
			c.Kill(c.Getpid(), abi.SIGUSR1) // default action terminates
			return 0
		})
		wr, _ := p.Waitpid(pid, 0)
		if !wr.Status.Signaled() || wr.Status.TermSignal() != abi.SIGUSR1 {
			return 1
		}
		return 0
	})
}
