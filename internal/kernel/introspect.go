package kernel

import (
	"repro/internal/abi"
	"repro/internal/fs"
)

// This file is the tracer-facing introspection surface: the operations a
// ptrace supervisor performs through /proc and PTRACE_* requests, expressed
// as kernel methods. Policies (DetTrace, rr) use these; guest programs
// cannot reach them.

// ActionIsSyscall reports whether the thread's pending action is a system
// call stop (as opposed to compute, an instruction, or exit).
func (t *Thread) ActionIsSyscall() bool {
	return t.act != nil && t.act.kind == yieldSyscall
}

// PendingSyscall returns the syscall of the thread's pending action, or nil.
func (t *Thread) PendingSyscall() *abi.Syscall {
	if t.ActionIsSyscall() {
		return t.act.sc
	}
	return nil
}

// Dead reports whether the thread has exited or been killed.
func (t *Thread) Dead() bool { return t.dead }

// Parked returns the threads currently blocked under policy semantics — the
// contents of DetTrace's Blocked queue, in park order.
func (k *Kernel) Parked() []*Thread { return k.parked }

// ParkedReady reports whether a parked thread's syscall could now complete,
// letting the scheduler skip pointless replays.
func (k *Kernel) ParkedReady(t *Thread) bool {
	if t.act == nil || t.act.sc == nil {
		return true
	}
	return k.syscallReady(t, t.act.sc)
}

// ResolveInode resolves a path in p's filesystem view, as a tracer does by
// reading /proc/<pid>/root/<path>.
func (k *Kernel) ResolveInode(p *Proc, path string, follow bool) (*fs.Inode, abi.Errno) {
	return k.FS.Resolve(lookupCtx(p), path, follow)
}

// FDInode returns the inode behind an open descriptor, as a tracer learns
// it from /proc/<pid>/fd/<n>.
func (k *Kernel) FDInode(p *Proc, fd int) (*fs.Inode, abi.Errno) {
	f, err := p.FDs.get(fd)
	if err != abi.OK {
		return nil, err
	}
	if f.ino == nil {
		return nil, abi.EBADF
	}
	return f.ino, abi.OK
}

// FDPath returns the path a descriptor was opened with, as /proc reports.
func (k *Kernel) FDPath(p *Proc, fd int) (string, abi.Errno) {
	f, err := p.FDs.get(fd)
	if err != abi.OK {
		return "", err
	}
	return f.path, abi.OK
}

// PostSignal lets a tracer inject a signal into a process, the way DetTrace
// delivers "instantaneously expiring" timers (§5.4).
func (k *Kernel) PostSignal(p *Proc, sig abi.Signal) { k.postSignal(p, sig) }

// ProcOf returns the process with the given raw PID, if it is still alive.
func (k *Kernel) ProcOf(pid int) (*Proc, bool) {
	p, ok := k.procs[pid]
	return p, ok
}

// LiveProcs returns the number of live processes.
func (k *Kernel) LiveProcs() int { return len(k.procs) }

// DisableASLR pins the process's heap and mmap bases to fixed canonical
// addresses, as DetTrace's container setup does (reprotest's ASLR variation
// must not reach the tracee).
func (p *Proc) DisableASLR() {
	p.brkBase = 0x5000_0000
	p.brk = 0
	p.mmapBase = 0x7f00_0000_0000
	p.mmapOff = 0
}

// ExitCode returns the process's exit code once it has exited.
func (p *Proc) ExitCode() int { return p.exitCode }

// Exited reports whether the process has terminated.
func (p *Proc) Exited() bool { return p.exited }
