package kernel

import (
	"fmt"
	"strings"

	"repro/internal/abi"
	"repro/internal/fs"
)

// nullDevice is /dev/null: reads return EOF, writes disappear.
type nullDevice struct{}

func (nullDevice) ReadDev(p []byte) int  { return 0 }
func (nullDevice) WriteDev(p []byte) int { return len(p) }

// zeroDevice is /dev/zero.
type zeroDevice struct{}

func (zeroDevice) ReadDev(p []byte) int {
	for i := range p {
		p[i] = 0
	}
	return len(p)
}
func (zeroDevice) WriteDev(p []byte) int { return len(p) }

// entropyDevice is the host's /dev/urandom and /dev/random: true hardware
// entropy, the canonical source of irreproducibility (§5.2). DetTrace
// replaces this device with its seeded LFSR.
type entropyDevice struct{ k *Kernel }

func (d entropyDevice) ReadDev(p []byte) int {
	d.k.HW.Entropy.Fill(p)
	return len(p)
}
func (d entropyDevice) WriteDev(p []byte) int { return len(p) }

// FillFunc adapts a fill function into a Device; DetTrace uses it to mount
// PRNG-backed replacements for the entropy devices.
type FillFunc func(p []byte)

// ReadDev fills p via the function.
func (f FillFunc) ReadDev(p []byte) int { f(p); return len(p) }

// WriteDev discards writes.
func (f FillFunc) WriteDev(p []byte) int { return len(p) }

// textFile is a read-only pseudo file whose content is generated at open
// time — how /proc behaves.
type textFile struct {
	data []byte
	off  int
}

func (f *textFile) ReadDev(p []byte) int {
	n := copy(p, f.data[f.off:])
	f.off += n
	return n
}
func (f *textFile) WriteDev(p []byte) int { return len(p) }

// TextFile wraps a content generator into a device constructor; each open
// snapshots fresh content.
func TextFile(gen func() string) func() fs.Device {
	return func() fs.Device { return &textFile{data: []byte(gen())} }
}

func (k *Kernel) registerStandardDevices() {
	k.RegisterDevice("null", func() fs.Device { return nullDevice{} })
	k.RegisterDevice("zero", func() fs.Device { return zeroDevice{} })
	k.RegisterDevice("urandom", func() fs.Device { return entropyDevice{k} })
	k.RegisterDevice("random", func() fs.Device { return entropyDevice{k} })

	// The /proc files the paper's builds actually read. Each leaks host
	// identity: cpuinfo the microarchitecture and core count, uptime the
	// boot moment, meminfo the RAM size, version the kernel build.
	k.RegisterDevice("proc:cpuinfo", TextFile(func() string {
		var b strings.Builder
		for i := 0; i < len(k.cores); i++ {
			fmt.Fprintf(&b, "processor\t: %d\nmodel name\t: %s\nflags\t\t: fpu sse2%s%s\n\n",
				i, k.Profile.CPUModel, flagIf(k.Profile.HasRDRAND, " rdrand"), flagIf(k.Profile.HasTSX, " rtm hle"))
		}
		return b.String()
	}))
	k.RegisterDevice("proc:uptime", TextFile(func() string {
		return fmt.Sprintf("%d.%02d %d.%02d\n", k.now/1e9, k.now%1e9/1e7, k.now/1e9, k.now%1e9/1e7)
	}))
	k.RegisterDevice("proc:meminfo", TextFile(func() string {
		return fmt.Sprintf("MemTotal:       %d kB\nMemFree:        %d kB\n",
			k.Profile.RAMMB*1024, k.Profile.RAMMB*512)
	}))
	k.RegisterDevice("proc:version", TextFile(func() string {
		return fmt.Sprintf("Linux version %s (buildd@%s) %s\n",
			k.Profile.KernelRelease, k.Profile.Hostname, k.Profile.KernelVersion)
	}))
}

func flagIf(b bool, s string) string {
	if b {
		return s
	}
	return ""
}

// populateProc mounts the pseudo files under /proc when the image has one.
func (k *Kernel) populateProc() {
	ctx := fs.LookupCtx{Root: k.FS.Root, Cwd: k.FS.Root}
	dir, err := k.FS.Resolve(ctx, "/proc", true)
	if err != abi.OK || !dir.IsDir() {
		return
	}
	for _, name := range []string{"cpuinfo", "uptime", "meminfo", "version"} {
		k.FS.Mkdev(dir, name, "proc:"+name, 0, 0)
	}
}
