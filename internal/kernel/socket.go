package kernel

import (
	"repro/internal/abi"
	"repro/internal/fs"
)

// socket is a minimal AF_UNIX stream socket: enough for the baseline builds
// that use local sockets (test harnesses, build daemons). DetTrace does not
// support sockets at all (§5.9) — its policy aborts the container before any
// of this code runs.
type socket struct {
	listening bool
	path      string
	backlog   []*socket // completed connections waiting for accept
	in, out   *fs.Pipe
	k         *Kernel
}

func (s *socket) readable() bool {
	return s.in != nil && (s.in.Buffered() > 0 || !s.in.HasWriters())
}

func (s *socket) writable() bool {
	return s.out != nil && (s.out.Space() > 0 || !s.out.HasReaders())
}

func (s *socket) acceptable() bool { return len(s.backlog) > 0 }

func (s *socket) close() {
	if s.in != nil {
		s.in.CloseReader()
	}
	if s.out != nil {
		s.out.CloseWriter()
	}
	if s.listening && s.k != nil {
		delete(s.k.unixListeners, s.path)
	}
}

// connectPair wires two endpoints together with a pipe per direction.
func connectPair(a, b *socket) {
	ab := fs.NewPipe(fs.DefaultPipeCapacity)
	ba := fs.NewPipe(fs.DefaultPipeCapacity)
	ab.AddWriter()
	ab.AddReader()
	ba.AddWriter()
	ba.AddReader()
	a.out, a.in = ab, ba
	b.out, b.in = ba, ab
}

func (k *Kernel) sysSocketCall(t *Thread, sc *abi.Syscall) bool {
	p := t.Proc
	switch sc.Num {
	case abi.SysSocket:
		s := &socket{k: k}
		sc.Ret = int64(p.FDs.alloc(&FD{kind: fdSocket, sock: s}))
	case abi.SysSocketpair:
		a, b := &socket{k: k}, &socket{k: k}
		connectPair(a, b)
		fa := p.FDs.alloc(&FD{kind: fdSocket, sock: a})
		fb := p.FDs.alloc(&FD{kind: fdSocket, sock: b})
		if out, ok := sc.Obj.(*[2]int); ok {
			out[0], out[1] = fa, fb
		}
		sc.Ret = 0
	case abi.SysBind:
		f, err := p.FDs.get(int(sc.Arg[0]))
		if err != abi.OK || f.kind != fdSocket {
			sc.SetErrno(abi.EBADF)
			return false
		}
		f.sock.path = normPath(p.CwdPath, sc.Path)
		sc.Ret = 0
	case abi.SysListen:
		f, err := p.FDs.get(int(sc.Arg[0]))
		if err != abi.OK || f.kind != fdSocket {
			sc.SetErrno(abi.EBADF)
			return false
		}
		if f.sock.path == "" {
			sc.SetErrno(abi.EINVAL)
			return false
		}
		f.sock.listening = true
		if k.unixListeners == nil {
			k.unixListeners = make(map[string]*socket)
		}
		k.unixListeners[f.sock.path] = f.sock
		sc.Ret = 0
	case abi.SysConnect:
		f, err := p.FDs.get(int(sc.Arg[0]))
		if err != abi.OK || f.kind != fdSocket {
			sc.SetErrno(abi.EBADF)
			return false
		}
		listener := k.unixListeners[normPath(p.CwdPath, sc.Path)]
		if listener == nil {
			sc.SetErrno(abi.ECONNREFUSE)
			return false
		}
		server := &socket{k: k}
		connectPair(f.sock, server)
		listener.backlog = append(listener.backlog, server)
		// Wake anyone blocked in accept.
		for _, bt := range k.kblocked {
			if bt.act != nil && bt.act.sc != nil &&
				(bt.act.sc.Num == abi.SysAccept || bt.act.sc.Num == abi.SysAccept4) {
				bt.wakeReady = true
			}
		}
		sc.Ret = 0
	case abi.SysAccept, abi.SysAccept4:
		f, err := p.FDs.get(int(sc.Arg[0]))
		if err != abi.OK || f.kind != fdSocket {
			sc.SetErrno(abi.EBADF)
			return false
		}
		if !f.sock.listening {
			sc.SetErrno(abi.EINVAL)
			return false
		}
		if len(f.sock.backlog) == 0 {
			return true
		}
		conn := f.sock.backlog[0]
		f.sock.backlog = f.sock.backlog[1:]
		sc.Ret = int64(p.FDs.alloc(&FD{kind: fdSocket, sock: conn}))
	case abi.SysSendto:
		f, err := p.FDs.get(int(sc.Arg[0]))
		if err != abi.OK || f.kind != fdSocket {
			sc.SetErrno(abi.EBADF)
			return false
		}
		return k.sockWrite(t, sc, f)
	case abi.SysRecvfrom:
		f, err := p.FDs.get(int(sc.Arg[0]))
		if err != abi.OK || f.kind != fdSocket {
			sc.SetErrno(abi.EBADF)
			return false
		}
		return k.sockRead(t, sc, f)
	}
	return false
}

func (k *Kernel) sockRead(t *Thread, sc *abi.Syscall, f *FD) bool {
	if f.sock.in == nil {
		sc.SetErrno(abi.ENOTCONN)
		return false
	}
	n, eof := f.sock.in.Read(sc.Buf)
	if n == 0 && !eof {
		return true
	}
	sc.Ret = int64(n)
	return false
}

func (k *Kernel) sockWrite(t *Thread, sc *abi.Syscall, f *FD) bool {
	if f.sock.out == nil {
		sc.SetErrno(abi.ENOTCONN)
		return false
	}
	n, broken := f.sock.out.Write(sc.Buf)
	if broken {
		sc.SetErrno(abi.ECONNRESET)
		return false
	}
	if n == 0 {
		return true
	}
	sc.Ret = int64(n)
	return false
}
