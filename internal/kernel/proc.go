package kernel

import (
	"fmt"

	"repro/internal/abi"
	"repro/internal/cpu"
	"repro/internal/fs"
)

// Proc is one process: a PID, an address-space surrogate (shared futex
// words), an fd table, credentials, a filesystem view and a set of threads.
type Proc struct {
	PID  int
	PPID int

	Argv []string
	Env  []string
	Comm string // executable name, for debugging

	UID, GID uint32
	Umask    uint32

	Root    *fs.Inode
	Cwd     *fs.Inode
	CwdPath string // textual cwd for getcwd and fd-path bookkeeping

	// Address-space surrogates: the program break and mmap region bases are
	// randomized per exec (ASLR) and occasionally leak into build output.
	brk, brkBase      int64
	mmapBase, mmapOff int64

	FDs *FDTable

	Threads  []*Thread
	parent   *Proc
	children []*Proc
	zombies  []*zombie

	// Mem is the process's shared-memory surrogate: futex words and other
	// cross-thread flags live here. Threads of one process share it; fork
	// copies it (COW semantics collapsed to a copy at fork time).
	Mem map[int64]int64

	futexWaiters map[int64][]*Thread

	// Signal state. handlers holds the guest's Go handler functions; the
	// kernel consults only their presence when deciding disposition.
	handlers   map[abi.Signal]SignalHandler
	sigPending []abi.Signal

	// Trap holds the rdtsc/cpuid interception configuration (§5.8).
	Trap cpu.TrapConfig

	// VdsoReplaced is set when a tracer replaced this process's vDSO with
	// real system calls (§5.3). Cleared on execve: each new image maps a
	// fresh vDSO that the tracer must patch again.
	VdsoReplaced bool

	// VdsoLogical is the §5.3 future-work fast path: the tracer's vDSO
	// replacement answers timing calls directly (logically) instead of
	// downgrading them to intercepted system calls.
	VdsoLogical bool

	// ScratchPage is set once a tracer allocated its per-process page for
	// injected structs (§5.10).
	ScratchPage bool

	// Weight scales statistics and virtual-time costs: one executed action
	// of this process stands for Weight real actions at paper scale.
	Weight int64

	// nextTimeCall backs DetTrace's logical time: a per-process count of
	// time queries (§5.3). Stored here so it survives execve the way the
	// paper's implementation behaves.
	TimeCallCount int64

	// threadBusyUntil is the serialized-thread execution token: under
	// policies that serialize threads (§5.7) at most one thread of the
	// process occupies the CPU at a time. lthreadBusyUntil is its logical
	// mirror.
	threadBusyUntil  int64
	lthreadBusyUntil int64

	exited   bool
	exitCode int
}

type zombie struct {
	pid    int
	status abi.WaitStatus
	usage  abi.Rusage
}

// Thread is one schedulable context within a process.
type Thread struct {
	TID  int
	Proc *Proc

	// Clock is the thread's physical virtual time: it includes the host's
	// microarchitectural jitter and is what performance results report.
	Clock int64

	// LClock is the thread's *logical* clock: the same accounting computed
	// with nominal (jitter-free) costs. It is a pure function of the
	// container's logical history, so deterministic policies may order
	// decisions by it — the queue key that lets DetTrace service system
	// calls in (logical) arrival order without consulting host time.
	LClock int64

	program     ProgramFn
	pendingExec ProgramFn

	yieldCh  chan *yieldMsg
	resumeCh chan resumeMsg
	act      *yieldMsg // the action currently waiting to be processed
	dead     bool

	eintr      bool  // current blocked syscall was interrupted by a signal
	wakeReady  bool  // explicit wake (futex wake, socket event)
	futexWoken bool  // a FUTEX_WAKE targeted this thread
	sleepUntil int64 // nanosleep deadline, in virtual ns

	// spinCount counts consecutive pure-compute actions while sibling
	// threads are starved — the busy-wait signature (§5.9). Maintained by
	// policies that serialize threads.
	SpinCount int

	// BufCount is the number of records sitting in this thread's tracee-side
	// syscall buffer since the last flush. Maintained by buffering policies
	// (see kernel.SyscallBufferer); the kernel itself never touches it.
	BufCount int

	// Event is a reusable syscall record for guest wrappers: each thread has
	// at most one call in flight, so the wrappers (guest.Proc.call) copy
	// their literal into it instead of heap-allocating per call.
	Event abi.Syscall

	// msg is the thread's reusable yield message. Safe for the same reason
	// Event is: one action in flight per thread, and the kernel only reads
	// the message while the thread is blocked in yield.
	msg yieldMsg

	k *Kernel
}

// Kernel returns the kernel this thread runs on; used by guest wrappers.
func (t *Thread) Kernel() *Kernel { return t.k }

type yieldKind int

const (
	yieldSyscall yieldKind = iota
	yieldCompute
	yieldInstr
	yieldVdsoTime
	yieldExit
	yieldDead // goroutine acknowledged a kill
)

type yieldMsg struct {
	kind    yieldKind
	sc      *abi.Syscall
	compute int64 // ns of work
	instr   cpu.Request
	code    int // exit code
	weight  int64
}

type resumeMsg struct {
	kill   bool
	exec   bool
	signal abi.Signal // deliver this signal's handler before returning
	instr  cpu.Result
}

// killedPanic unwinds a guest goroutine when its thread is killed.
type killedPanic struct{}

// execPanic unwinds the old program image after a successful execve.
type execPanic struct{}

// newProc allocates a process. parent == nil creates the init process.
func (k *Kernel) newProc(parent *Proc) *Proc {
	p := &Proc{
		PID:          k.nextPID,
		UID:          1000 + uint32(k.Entropy.Intn(100)), // host uid of the invoking user
		Umask:        0o022,
		FDs:          newFDTable(),
		Mem:          make(map[int64]int64),
		futexWaiters: make(map[int64][]*Thread),
		Weight:       1,
	}
	k.nextPID++
	if parent != nil {
		p.PPID = parent.PID
		p.parent = parent
		p.UID, p.GID = parent.UID, parent.GID
		p.Umask = parent.Umask
		p.Root, p.Cwd = parent.Root, parent.Cwd
		p.Env = append([]string(nil), parent.Env...)
		p.Weight = parent.Weight
		p.Trap = parent.Trap
		p.VdsoReplaced = parent.VdsoReplaced
		// fork duplicates the address space, layout included.
		p.brk, p.brkBase = parent.brk, parent.brkBase
		p.mmapBase, p.mmapOff = parent.mmapBase, parent.mmapOff
		parent.children = append(parent.children, p)
		// fork copies memory and the fd table.
		for a, v := range parent.Mem {
			p.Mem[a] = v
		}
		p.FDs = parent.FDs.clone()
	} else {
		// The init process inherits the host console on 0/1/2 and a
		// boot-randomized address-space layout.
		p.FDs.install(0, &FD{kind: fdConsole})
		p.FDs.install(1, &FD{kind: fdConsole})
		p.FDs.install(2, &FD{kind: fdConsole, consoleErr: true})
		p.brkBase = 0x5000_0000 + k.Entropy.Int63n(1<<30)&^4095
		p.mmapBase = 0x7f00_0000_0000 + k.Entropy.Int63n(1<<36)&^4095
	}
	k.procs[p.PID] = p
	return p
}

func (k *Kernel) newThread(p *Proc, fn ProgramFn) *Thread {
	t := &Thread{
		TID:      p.PID*64 + len(p.Threads), // unique, deterministic per spawn order
		Proc:     p,
		program:  fn,
		yieldCh:  make(chan *yieldMsg),
		resumeCh: make(chan resumeMsg),
		k:        k,
	}
	if len(p.Threads) > 0 {
		t.Clock = p.Threads[0].Clock
		t.LClock = p.Threads[0].LClock
	}
	p.Threads = append(p.Threads, t)
	return t
}

// startThread launches the guest goroutine and waits for its first yield,
// preserving the lockstep invariant.
func (k *Kernel) startThread(t *Thread) {
	go t.runner()
	t.act = <-t.yieldCh
	if t.act.kind == yieldDead {
		t.dead = true
		return
	}
	k.pending = append(k.pending, t)
}

// runner is the guest goroutine body: it runs the thread's program, handles
// execve unwinding, and reports exit.
func (t *Thread) runner() {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killedPanic); ok {
				t.yieldCh <- &yieldMsg{kind: yieldDead}
				return
			}
			panic(r) // real bug in guest code: surface it
		}
	}()
	for {
		code, execed := t.invoke()
		if execed {
			continue
		}
		t.yield(&yieldMsg{kind: yieldExit, code: code, weight: t.Proc.Weight})
		t.yieldCh <- &yieldMsg{kind: yieldDead}
		return
	}
}

// invoke runs the current program image, converting an execve unwind into a
// normal return.
func (t *Thread) invoke() (code int, execed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(execPanic); ok {
				t.program = t.pendingExec
				t.pendingExec = nil
				execed = true
				return
			}
			panic(r)
		}
	}()
	return t.program(t), false
}

// yield hands an action to the kernel and blocks until it has been
// processed. It is the only place guest goroutines synchronize with the
// kernel loop.
func (t *Thread) yield(m *yieldMsg) resumeMsg {
	if m.weight == 0 {
		m.weight = t.Proc.Weight
	}
	t.yieldCh <- m
	r := <-t.resumeCh
	if r.kill {
		panic(killedPanic{})
	}
	if r.exec {
		panic(execPanic{})
	}
	return r
}

// --- guest-facing action entry points (used by package guest) --------------

// Syscall issues a system call and blocks until it completes. The returned
// Syscall carries the result in Ret and any out parameters in Buf/Obj.
//
// The first branch is the in-tracee fast path: if the attached policy keeps
// a syscall buffer and claims this call, it is serviced right here on the
// guest goroutine — no yield, no kernel-loop round trip, no stop. The
// lockstep model makes this safe: the kernel loop is blocked waiting for
// this thread's next yield, so the policy has exclusive access to shared
// state. The guards keep the slow path authoritative whenever the kernel
// might need control: before the thread's first yield completes (t.act is
// still nil while the policy's OnSpawn bookkeeping may be pending) and
// whenever a signal awaits delivery.
func (t *Thread) Syscall(sc *abi.Syscall) *abi.Syscall {
	if fp := t.k.fastPath; fp != nil && t.act != nil && len(t.Proc.sigPending) == 0 &&
		fp.BufferSyscall(t, sc) {
		w := t.Proc.Weight
		t.k.Stats.Syscalls += w
		t.k.Stats.SyscallsRaw++
		t.k.countSyscall(sc.Num, w)
		return sc
	}
	t.msg = yieldMsg{kind: yieldSyscall, sc: sc}
	r := t.yield(&t.msg)
	if r.signal != 0 {
		// The handler may issue syscalls of its own; if sc is the thread's
		// reusable Event they would clobber this call's results before the
		// wrapper reads them.
		saved := *sc
		t.runSignal(r.signal)
		*sc = saved
	}
	return sc
}

// Compute burns d nanoseconds of CPU across the machine's cores.
func (t *Thread) Compute(d int64) {
	if d <= 0 {
		return
	}
	t.msg = yieldMsg{kind: yieldCompute, compute: d}
	r := t.yield(&t.msg)
	t.runSignal(r.signal)
}

// Instr executes one special CPU instruction.
func (t *Thread) Instr(req cpu.Request) cpu.Result {
	t.msg = yieldMsg{kind: yieldInstr, instr: req}
	r := t.yield(&t.msg)
	t.runSignal(r.signal)
	return r.instr
}

// VdsoTime reads the wall clock through the vDSO fast path — *not* a system
// call, and therefore invisible to ptrace-style interception (§5.3). A
// tracer may have replaced this process's vDSO: with a stub that downgrades
// to a real clock_gettime system call, or (the fast variant) one that
// answers logically in user space.
func (t *Thread) VdsoTime() int64 {
	if t.Proc.VdsoReplaced && !t.Proc.VdsoLogical {
		var ts abi.Timespec
		t.Event = abi.Syscall{Num: abi.SysClockGettime, Obj: &ts}
		t.Syscall(&t.Event)
		return ts.Nanos()
	}
	t.msg = yieldMsg{kind: yieldVdsoTime}
	r := t.yield(&t.msg)
	t.runSignal(r.signal)
	return int64(r.instr.Value)
}

var _ = fmt.Sprintf // fmt is used by debug helpers below

// SignalHandler is a guest-side signal handler function. The kernel tracks
// only that a handler is registered; the function itself runs on the guest
// goroutine when the kernel requests delivery.
type SignalHandler func(t *Thread, sig abi.Signal)

// SetHandler registers a guest signal handler (the guest side of
// rt_sigaction; the kernel side tracks only that a handler exists).
func (t *Thread) SetHandler(sig abi.Signal, fn SignalHandler) {
	p := t.Proc
	if p.handlers == nil {
		p.handlers = make(map[abi.Signal]SignalHandler)
	}
	if fn == nil {
		delete(p.handlers, sig)
	} else {
		p.handlers[sig] = fn
	}
}

// runSignal invokes the guest handler for sig, if the resume asked for one.
func (t *Thread) runSignal(sig abi.Signal) {
	if sig == 0 {
		return
	}
	if fn := t.Proc.handlers[sig]; fn != nil {
		fn(t, sig)
	}
}

// killThread delivers the kill resume and waits for the goroutine to unwind.
// Callers must know the thread has yielded (the lockstep invariant makes
// this true whenever kernel code runs).
func (k *Kernel) killThread(t *Thread) {
	if t.dead {
		return
	}
	t.dead = true
	t.resumeCh <- resumeMsg{kill: true}
	<-t.yieldCh // yieldDead acknowledgement
}

// --- process teardown -------------------------------------------------------

// finishThread handles a thread's exit action. When the last thread exits,
// the process dies: fds close, children are reparented to init, the parent
// gets a zombie and a SIGCHLD.
func (k *Kernel) finishThread(t *Thread, code int) {
	t.dead = true
	k.removePending(t)
	p := t.Proc
	live := 0
	for _, th := range p.Threads {
		if !th.dead {
			live++
		}
	}
	k.Policy.OnExit(t)
	if live > 0 {
		t.resumeCh <- resumeMsg{}
		<-t.yieldCh
		return
	}
	p.exited = true
	p.exitCode = code
	p.FDs.closeAll(k)
	// Reparent children to init (pid of the first process).
	for _, c := range p.children {
		if !c.exited {
			c.parent = nil
		}
	}
	if parent := p.parent; parent != nil && !parent.exited {
		parent.zombies = append(parent.zombies, &zombie{
			pid:    p.PID,
			status: abi.ExitStatus(code),
			usage:  abi.Rusage{UserNanos: t.Clock},
		})
		k.postSignal(parent, abi.SIGCHLD)
	}
	delete(k.procs, p.PID)
	t.resumeCh <- resumeMsg{}
	<-t.yieldCh // yieldDead
}

// exitGroup kills every other thread in the process, then exits this one.
func (k *Kernel) exitGroup(t *Thread, code int) {
	for _, th := range t.Proc.Threads {
		if th != t && !th.dead {
			k.removePending(th)
			k.removeBlocked(th)
			k.killThread(th)
		}
	}
	k.finishThread(t, code)
}

func (k *Kernel) removeBlocked(t *Thread) {
	for i, b := range k.kblocked {
		if b == t {
			k.kblocked = append(k.kblocked[:i], k.kblocked[i+1:]...)
			return
		}
	}
	for i, b := range k.parked {
		if b == t {
			k.parked = append(k.parked[:i], k.parked[i+1:]...)
			return
		}
	}
}
