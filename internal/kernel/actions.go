package kernel

import (
	"repro/internal/abi"
	"repro/internal/cpu"
)

// processAction handles the pending action of t. On entry t is removed from
// every scheduling set; depending on the outcome it lands back in pending
// (action completed, next action received), in kblocked (kernel blocking
// semantics) or in parked (policy blocking semantics).
func (k *Kernel) processAction(t *Thread) {
	k.removePending(t)
	k.removeBlocked(t)
	act := t.act
	switch act.kind {
	case yieldCompute:
		k.runCompute(t, act)
	case yieldVdsoTime:
		k.runVdsoTime(t, act)
	case yieldInstr:
		k.runInstr(t, act)
	case yieldExit:
		if t == t.Proc.Threads[0] {
			// Returning from main is exit_group: every thread dies.
			k.exitGroup(t, act.code)
		} else {
			k.finishThread(t, act.code)
		}
	case yieldSyscall:
		k.runSyscall(t, act)
	}
}

// resume completes t's current action: the guest continues, yields its next
// action, and t rejoins the pending set (or dies).
func (k *Kernel) resume(t *Thread, m resumeMsg) {
	t.resumeCh <- m
	next := <-t.yieldCh
	if next.kind == yieldDead {
		t.dead = true
		return
	}
	t.act = next
	k.pending = append(k.pending, t)
}

// resumeWithSignals delivers any pending signal disposition before resuming:
// a handler request rides along in the resume message; a lethal default
// kills the process instead of resuming.
func (k *Kernel) resumeWithSignals(t *Thread, m resumeMsg) {
	sig, killed := k.takePendingSignal(t)
	if killed {
		return
	}
	m.signal = sig
	k.resume(t, m)
}

func (k *Kernel) runCompute(t *Thread, act *yieldMsg) {
	d := act.compute
	jd := d
	if j := k.Cost.ComputeJitterPPM; j > 0 && d > 0 {
		jd += d * (k.Entropy.Int63n(2*j+1) - j) / 1_000_000
	}
	serialized := k.threadsSerialized()
	// Workspace mode (ISSUE 7) splits the two clocks: a thread running in a
	// private workspace overlaps its burst with siblings on the physical
	// clock, while the logical clock stays token-serialized so every
	// ordering decision — and every guest-visible byte — is unchanged.
	physSerialized := serialized
	if serialized && k.wsched != nil && k.wsched.ComputeConcurrent(t) {
		physSerialized = false
	}
	t.Clock = scheduleBurst(t.Clock, jd, k.cores, &t.Proc.threadBusyUntil, physSerialized, len(t.Proc.Threads))
	t.LClock = scheduleBurst(t.LClock, d, k.lcores, &t.Proc.lthreadBusyUntil, serialized, len(t.Proc.Threads))
	k.advanceGlobal(t.Clock)
	k.advanceLogical(t.LClock)
	k.resumeWithSignals(t, resumeMsg{})
}

// scheduleBurst list-schedules a compute burst onto the least-loaded core,
// honouring the serialized-thread token, and returns the completion time.
func scheduleBurst(clock, d int64, cores []int64, token *int64, serialized bool, nthreads int) int64 {
	start := clock
	core := 0
	for i := 1; i < len(cores); i++ {
		if cores[i] < cores[core] {
			core = i
		}
	}
	if cores[core] > start {
		start = cores[core]
	}
	if serialized && nthreads > 1 && *token > start {
		start = *token
	}
	end := start + d
	cores[core] = end
	if serialized {
		*token = end
	}
	return end
}

func (k *Kernel) runVdsoTime(t *Thread, act *yieldMsg) {
	t.Clock += k.Cost.VdsoCost
	t.LClock += k.Cost.VdsoCost
	k.advanceGlobal(t.Clock)
	k.Stats.VdsoCalls += act.weight
	v := k.epoch*1e9 + t.Clock // the raw vvar data: host wall time
	if t.Proc.VdsoLogical {
		// The tracer's patched vDSO answers directly, without a stop.
		if vp, ok := k.Policy.(VdsoProvider); ok {
			v = vp.VdsoTime(t)
		}
	}
	k.resumeWithSignals(t, resumeMsg{instr: cpu.Result{Value: uint64(v)}})
}

func (k *Kernel) runInstr(t *Thread, act *yieldMsg) {
	w := act.weight
	k.Stats.Instrs += w
	var res cpu.Result
	if k.HW.Traps(act.instr, t.Proc.Trap) {
		// The instruction faults; the tracer emulates it. Tracer work is
		// serialized like any other tracer activity.
		// The policy returns weight-scaled cost, like its syscall hooks.
		r, handled, cost := k.Policy.Instr(t, act.instr)
		if handled {
			res = r
			res.Trapped = true
			k.serializeTracer(t, cost)
			switch act.instr.Instr {
			case cpu.RDTSC, cpu.RDTSCP:
				k.Stats.RdtscTrapped += w
			case cpu.CPUID:
				k.Stats.CpuidTrapped += w
			}
			k.advanceGlobal(t.Clock)
			k.resumeWithSignals(t, resumeMsg{instr: res})
			return
		}
	}
	res = k.HW.Execute(act.instr)
	t.Clock += k.Cost.InstrCost * w
	t.LClock += k.Cost.InstrCost * w
	k.advanceGlobal(t.Clock)
	k.resumeWithSignals(t, resumeMsg{instr: res})
}

// serializeTracer charges cost to both the thread and the single tracer
// timeline: the thread cannot proceed until the tracer gets to it, and the
// tracer cannot serve anyone else meanwhile. This is the mechanism that
// makes DetTrace overhead proportional to system call rate (Fig. 5) and
// throttles syscall-heavy parallel workloads (Fig. 6).
func (k *Kernel) serializeTracer(t *Thread, cost int64) {
	var start int64
	if k.tracerConcurrent(t) {
		start = k.tracerServe(t.Clock, cost)
	} else {
		start = t.Clock
		if k.tracerBusy > start {
			start = k.tracerBusy
		}
		k.tracerBusy = start + cost
	}
	k.Stats.TracerBusy += cost
	t.Clock = start + cost

	lstart := t.LClock
	if k.ltracerBusy > lstart {
		lstart = k.ltracerBusy
	}
	k.ltracerBusy = lstart + cost
	t.LClock = lstart + cost
}

// tracerConcurrent reports whether t's stop may fill tracer-timeline gaps:
// workspace mode is on and t has live siblings. Single-threaded processes
// keep the plain high-water mark, so every pre-workspace workload's physics
// is untouched.
func (k *Kernel) tracerConcurrent(t *Thread) bool {
	if k.wsched == nil || !k.wsched.WorkspacesEnabled() {
		return false
	}
	live := 0
	for _, sib := range t.Proc.Threads {
		if !sib.Dead() {
			if live++; live > 1 {
				return true
			}
		}
	}
	return false
}

// tracerGap is a free interval [start, end) on the physical tracer timeline.
type tracerGap struct{ start, end int64 }

// tracerServe allocates a cost-long slot for a stop that physically arrived
// at arrival, first-fit into an earlier recorded gap when one is wide
// enough. The kernel loop services stops in logical order, but under
// workspace mode siblings reach the tracer at arbitrary physical times, so
// the plain high-water mark would charge an early arrival a start after a
// logically-earlier sibling's late burst — staggering thread spawns by whole
// compute phases. Filling gaps restores arrival-order physics; the logical
// timeline (and therefore every ordering decision) is untouched.
func (k *Kernel) tracerServe(arrival, cost int64) int64 {
	for i := range k.tracerGaps {
		g := k.tracerGaps[i]
		s := g.start
		if arrival > s {
			s = arrival
		}
		if s+cost > g.end {
			continue
		}
		rest := append([]tracerGap(nil), k.tracerGaps[i+1:]...)
		out := k.tracerGaps[:i]
		if s > g.start {
			out = append(out, tracerGap{g.start, s})
		}
		if s+cost < g.end {
			out = append(out, tracerGap{s + cost, g.end})
		}
		k.tracerGaps = append(out, rest...)
		return s
	}
	start := arrival
	if k.tracerBusy > start {
		start = k.tracerBusy
	}
	if start > k.tracerBusy && len(k.tracerGaps) < 64 {
		k.tracerGaps = append(k.tracerGaps, tracerGap{k.tracerBusy, start})
	}
	k.tracerBusy = start + cost
	return start
}

func (k *Kernel) threadsSerialized() bool {
	ts, ok := k.Policy.(interface{ ThreadsSerialized() bool })
	return ok && ts.ThreadsSerialized()
}

// runSyscall drives one system call through the policy's pre-stop, the
// kernel implementation (with retry and blocking), and the post-stop.
func (k *Kernel) runSyscall(t *Thread, act *yieldMsg) {
	sc := act.sc
	w := act.weight
	if sc.Attempts == 0 && !sc.Injected {
		k.Stats.Syscalls += w
		k.Stats.SyscallsRaw++
		k.countSyscall(sc.Num, w)
	}
	er := k.Policy.SyscallEnter(t, sc)
	if er.Disposition == DispAbort {
		k.debug("%s %s: container abort: %v", fmtPID(t.Proc), sc.Num, er.AbortErr)
		k.Abort(er.AbortErr)
		return
	}

	var moved int64
	var postCost int64
	for {
		var blocked bool
		if er.Disposition == DispEmulate {
			blocked = false
		} else {
			blocked = k.execSyscall(t, sc)
		}
		if blocked {
			sc.Attempts++
			if k.Policy.WouldBlock(t, sc) {
				// Policy blocking: the DetTrace Blocked queue. The first
				// park is not a replay; each re-dispatch that still blocks
				// is (§5.6.1), and costs a tracer round trip.
				if sc.Attempts > 1 {
					k.Stats.BlockedReplays += w
				}
				k.serializeTracer(t, k.Cost.BlockPoll+er.PreCost)
				k.advanceGlobal(t.Clock)
				k.parked = append(k.parked, t)
				return
			}
			// Kernel blocking: sleep until the condition fires.
			k.kblocked = append(k.kblocked, t)
			return
		}
		if sc.Ret > 0 && (sc.Num == abi.SysRead || sc.Num == abi.SysWrite) {
			moved += sc.Ret
		}
		// The call completed: consume any explicit wake that targeted it.
		t.wakeReady = false
		xr := k.Policy.SyscallExit(t, sc)
		postCost += xr.PostCost
		if !xr.Retry {
			break
		}
		sc.Attempts++
	}

	// Charge virtual time: tracee-side stall runs on the process's own
	// core; tracer-side service serializes.
	dur := (k.Cost.SyscallBase + k.Cost.SyscallPerKB*(moved/1024)) * w
	if er.Serialize {
		t.Clock += er.LocalCost
		t.LClock += er.LocalCost
		k.serializeTracer(t, er.PreCost+dur+er.PostCost+postCost)
	} else {
		t.Clock += dur + er.LocalCost
		t.LClock += dur + er.LocalCost
	}
	k.advanceGlobal(t.Clock)
	k.advanceLogical(t.LClock)
	k.debug("%s.t%d %s(%d,...) = %d @%.3fs tracer=%.3fs", fmtPID(t.Proc), t.TID, sc.Num, sc.Arg[0], sc.Ret, float64(t.Clock)/1e9, float64(k.tracerBusy)/1e9)

	// execve success unwinds the old image instead of returning.
	if sc.Num == abi.SysExecve && sc.Err() == abi.OK {
		k.resume(t, resumeMsg{exec: true})
		return
	}
	if t.eintr {
		t.eintr = false
	}
	k.resumeWithSignals(t, resumeMsg{})
}

// ExecDirect runs sc's kernel service routine immediately on the caller's
// goroutine, bypassing the scheduler. It exists for SyscallBufferer
// implementations servicing buffered calls guest-side; lockstep makes the
// direct call safe. The call must be non-blocking — buffer verdicts are only
// given to calls that cannot block, so blocking here is a filter bug.
func (k *Kernel) ExecDirect(t *Thread, sc *abi.Syscall) {
	if k.execSyscall(t, sc) {
		panic("kernel: ExecDirect called on a blocking syscall: " + sc.Num.String())
	}
}

// takePendingSignal pops the next deliverable signal for t's process.
// Handled signals are returned for guest delivery; ignorable defaults are
// dropped; lethal defaults kill the process (killed=true means t is gone —
// do not resume it).
func (k *Kernel) takePendingSignal(t *Thread) (abi.Signal, bool) {
	p := t.Proc
	for len(p.sigPending) > 0 {
		s := p.sigPending[0]
		p.sigPending = p.sigPending[1:]
		if p.handlers[s] != nil && s != abi.SIGKILL {
			return s, false
		}
		switch s {
		case abi.SIGCHLD:
			continue // default: ignore
		default:
			k.killProcess(t, s)
			return 0, true
		}
	}
	return 0, false
}

// killProcess terminates t's whole process with a signal status. t's own
// goroutine is killed too; callers must not resume t afterwards.
func (k *Kernel) killProcess(t *Thread, sig abi.Signal) {
	p := t.Proc
	k.debug("%s killed by %s", fmtPID(p), sig)
	for _, th := range p.Threads {
		if !th.dead {
			k.removePending(th)
			k.removeBlocked(th)
			k.killThread(th)
		}
	}
	k.teardownProc(p, abi.SignalStatus(sig), t.Clock)
}

// teardownProc performs the shared process-death bookkeeping.
func (k *Kernel) teardownProc(p *Proc, status abi.WaitStatus, clock int64) {
	if p.exited {
		return
	}
	p.exited = true
	p.FDs.closeAll(k)
	for _, c := range p.children {
		if !c.exited {
			c.parent = nil
		}
	}
	if parent := p.parent; parent != nil && !parent.exited {
		parent.zombies = append(parent.zombies, &zombie{
			pid:    p.PID,
			status: status,
			usage:  abi.Rusage{UserNanos: clock},
		})
		k.postSignal(parent, abi.SIGCHLD)
	}
	delete(k.procs, p.PID)
}

// postSignal queues sig for p and interrupts one blocked thread so slow
// syscalls return EINTR (§5.4 semantics).
func (k *Kernel) postSignal(p *Proc, sig abi.Signal) {
	if p.exited {
		return
	}
	k.Stats.SignalsSent += p.Weight
	// Signals whose disposition is "ignore" are discarded immediately and
	// never interrupt a blocked call, matching Linux semantics.
	if p.handlers[sig] == nil && sig == abi.SIGCHLD {
		return
	}
	p.sigPending = append(p.sigPending, sig)
	for i, t := range k.kblocked {
		if t.Proc == p {
			k.kblocked = append(k.kblocked[:i], k.kblocked[i+1:]...)
			t.eintr = true
			if t.Clock < k.now {
				t.Clock = k.now
			}
			if t.LClock < k.lnow {
				t.LClock = k.lnow
			}
			t.act.sc.SetErrno(abi.EINTR)
			k.finishInterrupted(t)
			break
		}
	}
}

// finishInterrupted completes a blocked syscall with the EINTR already set
// on it, running exit hooks and resuming the guest (which will run any
// handler before seeing the error).
func (k *Kernel) finishInterrupted(t *Thread) {
	sc := t.act.sc
	k.Policy.SyscallExit(t, sc)
	t.Clock += k.Cost.SyscallBase
	t.LClock += k.Cost.SyscallBase
	k.advanceGlobal(t.Clock)
	k.resumeWithSignals(t, resumeMsg{})
}

// wakeKernelBlocked re-runs blocked syscalls whose conditions now hold.
func (k *Kernel) wakeKernelBlocked() {
	for changed := true; changed; {
		changed = false
		for i, t := range k.kblocked {
			if t.wakeReady || k.syscallReady(t, t.act.sc) {
				k.kblocked = append(k.kblocked[:i], k.kblocked[i+1:]...)
				t.wakeReady = false
				if t.Clock < k.now {
					t.Clock = k.now
				}
				if t.LClock < k.lnow {
					t.LClock = k.lnow
				}
				// Back to pending: the policy reschedules the retried call.
				k.pending = append(k.pending, t)
				changed = true
				break
			}
		}
	}
}

// syscallReady reports whether a kernel-blocked syscall can now complete.
// It mirrors the blocking conditions in execSyscall without side effects.
func (k *Kernel) syscallReady(t *Thread, sc *abi.Syscall) bool {
	switch sc.Num {
	case abi.SysRead:
		f, err := t.Proc.FDs.get(int(sc.Arg[0]))
		if err != abi.OK {
			return true // will fail with EBADF, but that's completion
		}
		switch f.kind {
		case fdPipeR:
			return f.pipe.Buffered() > 0 || !f.pipe.HasWriters()
		case fdSocket:
			return f.sock.readable()
		}
		return true
	case abi.SysWrite:
		f, err := t.Proc.FDs.get(int(sc.Arg[0]))
		if err != abi.OK {
			return true
		}
		switch f.kind {
		case fdPipeW:
			return f.pipe.Space() > 0 || !f.pipe.HasReaders()
		case fdSocket:
			return f.sock.writable()
		}
		return true
	case abi.SysWait4:
		p := t.Proc
		if len(p.zombies) > 0 {
			return true
		}
		return !p.hasLiveChildren()
	case abi.SysNanosleep:
		return k.now >= t.sleepUntil
	case abi.SysPause:
		return t.wakeReady || len(t.Proc.sigPending) > 0
	case abi.SysFutex:
		// Ready when explicitly woken, or when the word changed (the wait
		// would now fail with EAGAIN, which is completion).
		return t.wakeReady || t.Proc.Mem[sc.Arg[0]] != sc.Arg[2]
	case abi.SysAccept, abi.SysAccept4:
		f, err := t.Proc.FDs.get(int(sc.Arg[0]))
		return err != abi.OK || f.sock.acceptable()
	case abi.SysRecvfrom:
		f, err := t.Proc.FDs.get(int(sc.Arg[0]))
		return err != abi.OK || f.sock.readable()
	case abi.SysConnect:
		return t.wakeReady
	}
	return true
}

// hasLiveChildren reports whether any child process is still running.
func (p *Proc) hasLiveChildren() bool {
	for _, c := range p.children {
		if !c.exited {
			return true
		}
	}
	return false
}

// --- timers -----------------------------------------------------------------

type timer struct {
	proc     *Proc
	expiry   int64 // virtual ns
	interval int64
	sig      abi.Signal
}

// armTimer installs or replaces the process's interval timer.
func (k *Kernel) armTimer(p *Proc, delay, interval int64, sig abi.Signal) {
	k.disarmTimer(p, sig)
	if delay <= 0 {
		return
	}
	k.timers = append(k.timers, &timer{proc: p, expiry: k.now + delay, interval: interval, sig: sig})
}

func (k *Kernel) disarmTimer(p *Proc, sig abi.Signal) {
	out := k.timers[:0]
	for _, tm := range k.timers {
		if tm.proc != p || tm.sig != sig {
			out = append(out, tm)
		}
	}
	k.timers = out
}

// checkTimers fires every timer whose expiry has passed.
func (k *Kernel) checkTimers() {
	for i := 0; i < len(k.timers); i++ {
		tm := k.timers[i]
		if tm.proc.exited {
			k.timers = append(k.timers[:i], k.timers[i+1:]...)
			i--
			continue
		}
		if tm.expiry <= k.now {
			k.postSignal(tm.proc, tm.sig)
			if tm.interval > 0 {
				tm.expiry = k.now + tm.interval
			} else {
				k.timers = append(k.timers[:i], k.timers[i+1:]...)
				i--
			}
		}
	}
}

// fireEarliestTimer advances global time to the earliest timer or sleep
// deadline and fires it. Returns false when nothing can advance time.
func (k *Kernel) fireEarliestTimer() bool {
	earliest := int64(-1)
	for _, tm := range k.timers {
		if !tm.proc.exited && (earliest < 0 || tm.expiry < earliest) {
			earliest = tm.expiry
		}
	}
	for _, t := range k.kblocked {
		if t.act != nil && t.act.sc != nil && t.act.sc.Num == abi.SysNanosleep {
			if earliest < 0 || t.sleepUntil < earliest {
				earliest = t.sleepUntil
			}
		}
	}
	if earliest < 0 {
		return false
	}
	k.advanceGlobal(earliest)
	k.checkTimers()
	return true
}
