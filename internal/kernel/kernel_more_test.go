package kernel_test

import (
	"strings"
	"testing"

	"repro/internal/abi"
	"repro/internal/guest"
	"repro/internal/kernel"
)

func TestLseekAndAppend(t *testing.T) {
	mustRun(t, 30, func(p *guest.Proc) int {
		fd, _ := p.Open("/tmp/f", abi.OCreat|abi.ORdwr, 0o644)
		p.Write(fd, []byte("0123456789"))
		if off, _ := p.Lseek(fd, 2, abi.SeekSet); off != 2 {
			return 1
		}
		buf := make([]byte, 3)
		p.Read(fd, buf)
		if string(buf) != "234" {
			return 2
		}
		if off, _ := p.Lseek(fd, -2, abi.SeekEnd); off != 8 {
			return 3
		}
		if off, _ := p.Lseek(fd, 1, abi.SeekCur); off != 9 {
			return 4
		}
		if _, err := p.Lseek(fd, -100, abi.SeekSet); err != abi.EINVAL {
			return 5
		}
		p.Close(fd)
		// O_APPEND writes land at the end regardless of position.
		afd, _ := p.Open("/tmp/f", abi.OWronly|abi.OAppend, 0)
		p.Write(afd, []byte("END"))
		p.Close(afd)
		data, _ := p.ReadFile("/tmp/f")
		if string(data) != "0123456789END" {
			return 6
		}
		return 0
	})
}

func TestDup2SharesFileDescription(t *testing.T) {
	mustRun(t, 31, func(p *guest.Proc) int {
		fd, _ := p.Open("/tmp/f", abi.OCreat|abi.OWronly, 0o644)
		if err := p.Dup2(fd, 9); err != abi.OK {
			return 1
		}
		p.Write(fd, []byte("ab"))
		p.Write(9, []byte("cd")) // shared offset: continues, not overwrites
		p.Close(fd)
		p.Write(9, []byte("ef")) // still open through the dup
		p.Close(9)
		data, _ := p.ReadFile("/tmp/f")
		if string(data) != "abcdef" {
			p.Eprintf("content=%q\n", data)
			return 2
		}
		return 0
	})
}

func TestOpenFlagsSemantics(t *testing.T) {
	mustRun(t, 32, func(p *guest.Proc) int {
		p.WriteFile("/tmp/f", []byte("old"), 0o644)
		if _, err := p.Open("/tmp/f", abi.OCreat|abi.OExcl, 0o644); err != abi.EEXIST {
			return 1
		}
		fd, _ := p.Open("/tmp/f", abi.OWronly|abi.OTrunc, 0)
		p.Close(fd)
		st, _ := p.Stat("/tmp/f")
		if st.Size != 0 {
			return 2
		}
		if _, err := p.Open("/tmp/f", abi.ORdonly|abi.ODirectory, 0); err != abi.ENOTDIR {
			return 3
		}
		if _, err := p.Open("/missing/deep", abi.OCreat, 0o644); err != abi.ENOENT {
			return 4
		}
		return 0
	})
}

func TestExitGroupKillsSiblingThreads(t *testing.T) {
	k := mustRun(t, 33, func(p *guest.Proc) int {
		p.CloneThread(func(w *guest.Proc) int {
			w.FutexWait(0x99, 0) // parked forever
			return 0
		})
		p.Compute(10_000)
		p.Printf("done")
		return 0 // main thread returns; the process exits, killing the waiter
	})
	if got := k.Console.Stdout(); got != "done" {
		t.Errorf("stdout = %q", got)
	}
}

func TestSIGPIPEKillsWriter(t *testing.T) {
	mustRun(t, 34, func(p *guest.Proc) int {
		pid, _ := p.Fork(func(c *guest.Proc) int {
			r, w, _ := c.Pipe()
			c.Close(r) // no readers anywhere
			c.Write(w, []byte("doomed"))
			return 0 // unreachable: SIGPIPE default kills
		})
		wr, _ := p.Waitpid(pid, 0)
		if !wr.Status.Signaled() || wr.Status.TermSignal() != abi.SIGPIPE {
			p.Eprintf("status=%v\n", wr.Status)
			return 1
		}
		return 0
	})
}

func TestEINTRAndHandlerOnBlockedRead(t *testing.T) {
	k := mustRun(t, 35, func(p *guest.Proc) int {
		p.Signal(abi.SIGALRM, func(c *guest.Proc, s abi.Signal) { c.Printf("rang ") })
		r, _, _ := p.Pipe()
		p.Alarm(1)
		buf := make([]byte, 8)
		_, err := p.Read(r, buf) // blocks until the alarm interrupts
		p.Printf("err=%s", err)
		return 0
	})
	if got := k.Console.Stdout(); got != "rang err=EINTR" {
		t.Errorf("stdout = %q", got)
	}
}

func TestWaitpidSpecificChild(t *testing.T) {
	mustRun(t, 36, func(p *guest.Proc) int {
		pid1, _ := p.Fork(func(c *guest.Proc) int { c.Compute(5000); return 1 })
		pid2, _ := p.Fork(func(c *guest.Proc) int { return 2 })
		wr, err := p.Waitpid(pid2, 0)
		if err != abi.OK || wr.PID != pid2 || wr.Status.ExitCode() != 2 {
			return 1
		}
		wr, err = p.Waitpid(pid1, 0)
		if err != abi.OK || wr.Status.ExitCode() != 1 {
			return 2
		}
		if _, err := p.Wait(); err != abi.ECHILD {
			return 3
		}
		return 0
	})
}

func TestWNOHANG(t *testing.T) {
	mustRun(t, 37, func(p *guest.Proc) int {
		pid, _ := p.Fork(func(c *guest.Proc) int {
			c.Compute(1_000_000)
			return 0
		})
		wr, err := p.Waitpid(-1, abi.WNOHANG)
		if err != abi.OK || wr.PID != 0 {
			return 1 // child is still computing: must not block
		}
		p.Waitpid(pid, 0)
		return 0
	})
}

func TestOrphanReparenting(t *testing.T) {
	mustRun(t, 38, func(p *guest.Proc) int {
		p.Fork(func(c *guest.Proc) int {
			c.Fork(func(g *guest.Proc) int { // grandchild outlives its parent
				g.Compute(50_000)
				return 0
			})
			return 0 // parent exits immediately
		})
		p.Wait() // reap the child; the orphan must not deadlock the kernel
		return 0
	})
}

func TestGetcwdTracksChdir(t *testing.T) {
	k := mustRun(t, 39, func(p *guest.Proc) int {
		p.MkdirAll("/a/b", 0o755)
		p.Chdir("/a")
		p.Chdir("b")
		cwd, _ := p.Getcwd()
		p.Printf("%s", cwd)
		p.Chdir("..")
		cwd, _ = p.Getcwd()
		p.Printf(" %s", cwd)
		return 0
	})
	if got := k.Console.Stdout(); got != "/a/b /a" {
		t.Errorf("cwd = %q", got)
	}
}

func TestCwdInheritedAcrossForkAndExec(t *testing.T) {
	reg := guest.NewRegistry()
	reg.Register("pwd", func(p *guest.Proc) int {
		cwd, _ := p.Getcwd()
		p.Printf("%s", cwd)
		return 0
	})
	init := func(p *guest.Proc) int {
		p.MkdirAll("/work/here", 0o755)
		p.Chdir("/work/here")
		p.WriteFile("/bin/pwd", guest.MakeExe("pwd", nil), 0o755)
		pid, _ := p.Spawn("/bin/pwd", []string{"pwd"}, nil)
		p.Waitpid(pid, 0)
		return 0
	}
	reg.Register("init", init)
	k := newKernel(t, 40, reg)
	img := &kernel.ExecImage{Path: "/bin/init", Argv: []string{"init"}}
	k.Start(reg.Bind(init, img), img.Argv, nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := k.Console.Stdout(); got != "/work/here" {
		t.Errorf("child cwd = %q", got)
	}
}

func TestBrkAndMmapAddressesVaryAcrossBoots(t *testing.T) {
	grab := func(seed uint64) string {
		var out string
		mustRun(t, seed, func(p *guest.Proc) int {
			out = strings.TrimSpace(
				string(rune('0')) + ":" +
					itoa(p.Mmap(4096)) + ":" + itoa(p.Brk(4096)))
			return 0
		})
		return out
	}
	if grab(41) == grab(42) {
		t.Errorf("ASLR addresses identical across boots")
	}
}

func TestFutexWakeCount(t *testing.T) {
	mustRun(t, 43, func(p *guest.Proc) int {
		if n := p.FutexWake(0x1, 8); n != 0 {
			return 1 // nobody waiting
		}
		return 0
	})
}

func TestSchedYieldAndSync(t *testing.T) {
	mustRun(t, 44, func(p *guest.Proc) int {
		p.SchedYield()
		p.T.Syscall(&abi.Syscall{Num: abi.SysSync})
		return 0
	})
}

func TestRunawayBudgetStopsInfiniteLoops(t *testing.T) {
	reg := guest.NewRegistry()
	prog := func(p *guest.Proc) int {
		for {
			p.SchedYield()
		}
	}
	reg.Register("init", prog)
	k := kernel.New(kernel.Config{
		Profile: profFor(), Seed: 45, Epoch: 1_500_000_000,
		Image: imgFor(), Resolver: reg.Resolver(), MaxActions: 10_000,
	})
	img := &kernel.ExecImage{Path: "/bin/init", Argv: []string{"init"}}
	k.Start(reg.Bind(prog, img), img.Argv, nil)
	if err := k.Run(); err != kernel.ErrRunaway {
		t.Fatalf("err = %v, want ErrRunaway", err)
	}
}

func itoa(v int64) string {
	// tiny helper for the test; fmt would be fine too
	if v == 0 {
		return "0"
	}
	var b [24]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
