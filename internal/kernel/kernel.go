// Package kernel implements the simulated Linux kernel the whole system runs
// on: processes and threads, a filesystem view, pipes, signals, timers,
// futexes, sockets, and an x86-64 syscall interface.
//
// # Execution model
//
// Guest programs are Go functions that may only interact with the world by
// yielding actions (system calls, compute bursts, CPU instructions) to the
// kernel. Guest goroutines run in strict lockstep with the kernel loop: the
// kernel resumes exactly one guest at a time and waits for its next yield,
// so guest code is mutually excluded and the simulation is a deterministic
// function of the kernel's scheduling decisions.
//
// Virtual parallelism is modelled in time, not in execution: compute bursts
// are list-scheduled onto the machine profile's cores, and each thread
// carries its own virtual clock. The baseline policy orders actions by those
// clocks with entropy-seeded jitter and tie-breaking — reproducing the
// scheduling nondeterminism of a real multiprocessor — while DetTrace's
// policy (internal/core) orders them by its reproducible queues.
//
// # Nondeterminism budget
//
// Every irreproducibility source from the paper's taxonomy enters here:
// wall-clock time and file timestamps, inode numbers, getdents order, host
// PIDs, /dev/urandom, rdtsc/cpuid/rdrand, signal arrival, scheduling races.
// All of it is a deterministic function of (machine profile, entropy seed,
// wall epoch), so "two runs of the machine" means two seeds, and DetTrace's
// claim is checkable: same container inputs, different seeds, same outputs.
package kernel

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/abi"
	"repro/internal/cpu"
	"repro/internal/fs"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/prng"
)

// CostModel holds the virtual-time constants of the simulation, in
// nanoseconds. The defaults are calibrated so the DetTrace policy reproduces
// the paper's performance shape (Fig. 5, Fig. 6).
type CostModel struct {
	SyscallBase  int64 // kernel entry/exit for any syscall
	SyscallPerKB int64 // additional cost per KiB moved by read/write
	SpawnCost    int64 // fork/clone
	ExecCost     int64 // execve image setup
	VdsoCost     int64 // user-space vDSO fast path (no kernel entry)
	InstrCost    int64 // one untrapped special instruction
	BlockPoll    int64 // re-check interval charged when a blocked call retries
	WsForkCost   int64 // forking one thread workspace (COW view setup)
	WsMergeCost  int64 // merging one thread workspace at a sync point

	// ComputeJitterPPM perturbs every compute burst by ±ppm/1e6, drawn from
	// host entropy: microarchitectural timing noise. It makes racing
	// processes finish in different orders on different runs.
	ComputeJitterPPM int64
}

// DefaultCostModel returns the calibrated constants.
func DefaultCostModel() CostModel {
	return CostModel{
		SyscallBase:      1_500,
		SyscallPerKB:     250,
		SpawnCost:        60_000,
		ExecCost:         120_000,
		VdsoCost:         40,
		InstrCost:        15,
		BlockPoll:        8_000,
		WsForkCost:       8_000,
		WsMergeCost:      12_000,
		ComputeJitterPPM: 4_000,
	}
}

// Disposition tells the kernel what a policy decided at a syscall entry.
type Disposition int

// Possible verdicts from Policy.SyscallEnter.
const (
	// DispExecute: run the syscall normally.
	DispExecute Disposition = iota
	// DispEmulate: the policy filled sc.Ret (and any out buffers) itself;
	// the kernel skips execution.
	DispEmulate
	// DispAbort: reproducible container-level error; the run stops.
	DispAbort
)

// EnterResult is returned by Policy.SyscallEnter.
type EnterResult struct {
	Disposition Disposition
	// PreCost/PostCost are tracer-side overhead (handler work) added to the
	// call, in nanoseconds. When Serialize is set they occupy the single
	// tracer timeline.
	PreCost, PostCost int64
	// LocalCost is tracee-side overhead (the stop's context switches, cache
	// pollution): it stalls this process but runs on its own core, so
	// parallel tracees pay it concurrently. This split is why DetTrace
	// scales at all for process-parallel workloads (Fig. 6).
	LocalCost int64
	// Serialize forces the call through the single tracer timeline, which
	// is what sequentializes system call execution under DetTrace (§5.6).
	Serialize bool
	// AbortErr is the container error when Disposition == DispAbort.
	AbortErr error
}

// ExitResult is returned by Policy.SyscallExit.
type ExitResult struct {
	// Retry re-executes the (possibly adjusted) syscall before the tracee
	// resumes — the PC-reset trick of Fig. 4. The kernel loops on retries.
	Retry bool
	// PostCost is additional tracer time spent in the exit handler.
	PostCost int64
}

// Policy is the decision layer above the kernel: the baseline scheduler, the
// DetTrace container, or the record-and-replay tracer. The kernel owns all
// mechanism (what syscalls do); the policy owns ordering, interception and
// rewriting.
type Policy interface {
	// Name labels the policy in stats and debug output.
	Name() string

	// PickNext chooses which pending thread's action to process. The kernel
	// passes pending sorted by TID for determinism; the policy may instead
	// return a thread it previously parked (its Blocked queue) to retry.
	PickNext(k *Kernel, pending []*Thread) *Thread

	// SyscallEnter runs at the pre-syscall stop and may rewrite sc.
	SyscallEnter(t *Thread, sc *abi.Syscall) EnterResult

	// SyscallExit runs at the post-syscall stop and may rewrite results or
	// request a retry.
	SyscallExit(t *Thread, sc *abi.Syscall) ExitResult

	// WouldBlock is consulted when an executed syscall reports it would
	// block. Returning true parks the thread with the policy (the DetTrace
	// Blocked queue); returning false lets the kernel use its own blocking
	// (baseline semantics). The kernel re-executes the call on wake either
	// way.
	WouldBlock(t *Thread, sc *abi.Syscall) bool

	// Instr handles a special CPU instruction. If handled is false the
	// kernel executes it on the hardware model.
	Instr(t *Thread, req cpu.Request) (res cpu.Result, handled bool, cost int64)

	// OnSpawn and OnExit observe process lifecycle for pid virtualization
	// and scheduling bookkeeping.
	OnSpawn(parent, child *Thread)
	OnExit(t *Thread)

	// OnExec runs after a successful execve — where DetTrace replaces the
	// vDSO, re-arms instruction traps and maps its scratch page (§5.3,
	// §5.10).
	OnExec(t *Thread)
}

// VdsoProvider is an optional Policy extension: a tracer whose patched vDSO
// answers timing calls directly in user space (§5.3's planned fast path)
// implements it to supply the value.
type VdsoProvider interface {
	VdsoTime(t *Thread) int64
}

// SyscallBufferer is an optional Policy extension: a tracer that injects an
// rr-style in-tracee syscall buffer implements it to service light calls on
// the guest side of the yield channel, with no kernel round trip.
//
// BufferSyscall runs on the *guest goroutine*, before the call would yield.
// Returning true means the call was fully serviced (sc.Ret and out buffers
// filled, costs charged to t's clocks) and the thread keeps running;
// returning false falls through to the normal yield path. This is safe only
// because of strict lockstep: the kernel loop is blocked waiting for this
// thread's next yield, so exactly one goroutine touches kernel and policy
// state. Implementations must not unblock other threads or change global
// scheduling state — decisions that need the kernel loop must return false.
type SyscallBufferer interface {
	BufferSyscall(t *Thread, sc *abi.Syscall) bool
}

// WorkspaceScheduler is an optional Policy extension (the workspace-
// consistency mode of ISSUE 7): a tracer that gives sibling threads private
// copy-on-write workspaces between sync points implements it to let their
// compute bursts overlap on the *physical* clock. The logical clock stays
// token-serialized either way, so every ordering decision — and therefore
// every guest-visible byte — is identical with and without workspaces; only
// the modeled wall time changes. ComputeConcurrent reports whether t's
// current burst may bypass the physical serialized-thread token.
type WorkspaceScheduler interface {
	ComputeConcurrent(t *Thread) bool
	// WorkspacesEnabled reports whether workspace mode is on at all for
	// this boot, independent of any particular thread's state. Must be
	// constant for the kernel's lifetime.
	WorkspacesEnabled() bool
}

// Container-level errors a run can end with.
var (
	// ErrDeadlock: every live thread is blocked and no timer can fire.
	ErrDeadlock = errors.New("kernel: deadlock: all threads blocked")
	// ErrTimeout: the virtual deadline passed (build timeouts in §7.1).
	ErrTimeout = errors.New("kernel: virtual time limit exceeded")
	// ErrRunaway: the action budget was exhausted (busy loop safety net).
	ErrRunaway = errors.New("kernel: action budget exhausted")
	// ErrHalted: a debugger halt point (HaltAtAction/HaltAtLTime) was
	// reached. Not a failure: the kernel state at the halt is the result.
	ErrHalted = errors.New("kernel: halted at requested logical instant")
)

// AbortError wraps a policy-raised reproducible container error.
type AbortError struct{ Err error }

func (e *AbortError) Error() string { return "container aborted: " + e.Err.Error() }

// Unwrap exposes the underlying reason.
func (e *AbortError) Unwrap() error { return e.Err }

// ExecImage is what execve hands to the program resolver: the executable
// file's bytes plus the new argv/env.
type ExecImage struct {
	Path    string
	Exe     []byte
	Argv    []string
	Env     []string
	Payload []byte // bytes after the interpreter line, for self-inspection
}

// ProgramFn is a resolved guest program bound to a thread.
type ProgramFn func(t *Thread) int

// Resolver turns an executable file into a runnable program. It returns
// ENOEXEC-style errors as errnos.
type Resolver func(img *ExecImage) (ProgramFn, abi.Errno)

// Config assembles one simulated run.
type Config struct {
	Profile  *machine.Profile
	Seed     uint64    // host entropy seed: "which physical run is this"
	Epoch    int64     // wall-clock seconds at boot (reprotest varies this)
	Image    *fs.Image // initial filesystem state
	Policy   Policy    // nil means the baseline nondeterministic policy
	Resolver Resolver
	Cost     CostModel

	// Deadline bounds virtual time (ns); 0 means no limit.
	Deadline int64
	// MaxActions bounds processed actions; 0 picks a generous default.
	MaxActions int64
	// NumCPU overrides the profile's core count (reprotest varies CPUs).
	NumCPU int

	// Obs, when non-nil, is the metrics registry this boot's counters land
	// on (a private registry is created otherwise). Rec, when non-nil, is
	// the flight recorder event sinks write to; a nil recorder records
	// nothing (the DisableObservability ablation). Neither feeds back into
	// guest-visible state.
	Obs *obs.Registry
	Rec *obs.Recorder

	// CrashAtAction, when > 0, is the deterministic fault plane: Run fails
	// with ErrInjectedCrash once the processed-action count reaches it. The
	// action count is a pure function of guest behaviour (independent of
	// observability or templates), so the same config crashes at the same
	// traced stop on every run.
	CrashAtAction int64

	// Checkpointer, when non-nil, is offered a sealed Checkpoint (plus the
	// surviving thread, for policy-side sealing) at every quiescent traced
	// stop. Sealing is read-only and fires only at stops a checkpoint-free
	// run reaches identically, so attaching a checkpointer never perturbs
	// guest-visible behaviour.
	Checkpointer func(*Checkpoint, *Thread)

	// DeltaSeals makes every checkpoint after the first a delta against the
	// previous seal (fs.SealCheckpoint's delta mode). Mechanism-only: seals
	// restore bitwise-identically either way.
	DeltaSeals bool

	// HaltAtAction / HaltAtLTime, when > 0, stop the run with ErrHalted at
	// the first top-of-loop stop where the processed-action count (resp. the
	// logical clock) has reached the given value — the time-travel debugger's
	// seek primitive. Both are pure functions of guest behaviour, so a halted
	// replay observes exactly the state the uninterrupted run passed through.
	HaltAtAction int64
	HaltAtLTime  int64
}

// Stats aggregates everything a run counted. Weighted counters account for
// the per-action Weight multiplier (one executed event representing W real
// events at paper scale).
type Stats struct {
	Syscalls       int64 // weighted syscall events
	SyscallsRaw    int64 // unweighted (actually executed)
	Spawns         int64 // weighted fork/clone events
	Execs          int64
	Instrs         int64 // weighted special instructions issued
	RdtscTrapped   int64 // weighted rdtsc[p] emulated by the policy
	CpuidTrapped   int64
	MemReads       int64 // tracer reads of tracee memory (weighted)
	MemWrites      int64
	SchedRequests  int64 // PickNext calls that had a choice to make
	BlockedReplays int64 // policy-parked retries (DetTrace Blocked queue)
	ReadRetries    int64 // injected read continuations (Fig. 4)
	WriteRetries   int64
	UrandomOpens   int64 // weighted opens of /dev/[u]random
	TimeCalls      int64
	SignalsSent    int64
	VdsoCalls      int64 // time reads served without kernel entry
	TracerBusy     int64 // ns the serialized tracer timeline was occupied
	PerSyscall     map[abi.Sysno]int64
}

// Kernel is one booted machine instance running one process tree.
type Kernel struct {
	Profile *machine.Profile
	Entropy *prng.Host
	FS      *fs.FS
	HW      *cpu.HW
	Cost    CostModel
	Policy  Policy
	Stats   Stats

	resolver Resolver
	epoch    int64 // wall seconds at boot
	now      int64 // global virtual ns since boot (monotone)

	cores      []int64 // per-core busy-until times
	tracerBusy int64   // serialized tracer timeline busy-until

	// tracerGaps are free intervals left behind on the physical tracer
	// timeline when a stop was serviced later than the previous high-water
	// mark. Only workspace mode fills them (see tracerServe); outside it the
	// kernel processes stops in arrival order and no usable gap ever forms.
	tracerGaps []tracerGap

	// Logical mirrors of the time structures above, maintained with
	// nominal costs so deterministic policies can order by them.
	lnow        int64
	lcores      []int64
	ltracerBusy int64

	// fastPath is non-nil when the policy implements SyscallBufferer; cached
	// once at boot so the dispatch hot path avoids a per-call type assertion.
	fastPath SyscallBufferer
	// wsched is non-nil when the policy implements WorkspaceScheduler;
	// cached at boot like fastPath.
	wsched WorkspaceScheduler

	// Obs is this boot's metrics registry; Rec the (possibly nil) flight
	// recorder. sysVec is the dense per-syscall table on Obs, indexed by
	// syscall number and folded into Stats.PerSyscall when Run returns.
	Obs         *obs.Registry
	Rec         *obs.Recorder
	sysVec      *obs.CounterVec
	statsFolded bool

	nextPID  int
	procs    map[int]*Proc
	pending  []*Thread // yielded, waiting for their action to be processed
	kblocked []*Thread // blocked with kernel semantics (baseline)
	parked   []*Thread // blocked with policy semantics (DetTrace queues)

	deadline   int64
	maxActions int64
	actions    int64
	abortErr   error

	// Fault/checkpoint plane (checkpoint.go). lastCheckpoint guards against
	// re-sealing the same action count: a resumed kernel starts at its seal
	// point, which the uninterrupted run sealed exactly once.
	crashAt        int64
	checkpointer   func(*Checkpoint, *Thread)
	lastCheckpoint int64
	deltaSeals     bool
	haltAtAction   int64
	haltAtLTime    int64

	devices       map[string]func() fs.Device // device registry by DevID
	unixListeners map[string]*socket          // AF_UNIX listeners by path

	// Console captures everything written to stdout/stderr fds, in the
	// order writes were processed — itself a reproducibility observable.
	Console *Console

	// timers is the list of armed itimers across all processes.
	timers []*timer

	// debugf, when non-nil, receives a trace of every processed action.
	debugf func(format string, args ...any)
}

// New boots a kernel per the config. The filesystem is populated from the
// image; no process exists yet — call Start.
func New(cfg Config) *Kernel {
	return newKernel(cfg, func(k *Kernel, fsEntropy *prng.Host) *fs.FS {
		f := fs.New(cfg.Profile, k.WallClock, fsEntropy)
		if cfg.Image != nil {
			f.Populate(cfg.Image)
		}
		return f
	})
}

// newKernel is the boot path shared by New (cold: populate the image into a
// fresh FS) and Snapshot.Boot (warm: COW-fork a frozen template base).
//
// The host entropy draw order below is a compatibility contract: the seed
// pool is read for (1) the PID base, (2) the filesystem fork — whose single
// draw both fs.New and fs.Fork perform identically — (3) the hardware model,
// (4) the baseline policy when no policy is supplied. Warm boots are bitwise
// identical to cold boots only while both paths consume entropy in exactly
// this sequence, so mkFS receives its own pre-forked pool.
func newKernel(cfg Config, mkFS func(k *Kernel, fsEntropy *prng.Host) *fs.FS) *Kernel {
	if cfg.Cost == (CostModel{}) {
		cfg.Cost = DefaultCostModel()
	}
	if cfg.MaxActions == 0 {
		cfg.MaxActions = 200_000_000
	}
	entropy := prng.NewHost(cfg.Seed)
	k := &Kernel{
		Profile:    cfg.Profile,
		Entropy:    entropy,
		Cost:       cfg.Cost,
		Policy:     cfg.Policy,
		resolver:   cfg.Resolver,
		epoch:      cfg.Epoch,
		nextPID:    1000 + entropy.Intn(30_000), // host PIDs start anywhere
		procs:      make(map[int]*Proc),
		deadline:   cfg.Deadline,
		maxActions: cfg.MaxActions,
		devices:    make(map[string]func() fs.Device),
		Console:    &Console{},

		crashAt:        cfg.CrashAtAction,
		checkpointer:   cfg.Checkpointer,
		lastCheckpoint: -1,
		deltaSeals:     cfg.DeltaSeals,
		haltAtAction:   cfg.HaltAtAction,
		haltAtLTime:    cfg.HaltAtLTime,
	}
	k.Stats.PerSyscall = make(map[abi.Sysno]int64)
	k.Obs = cfg.Obs
	if k.Obs == nil {
		k.Obs = obs.NewRegistry()
	}
	k.Rec = cfg.Rec
	k.sysVec = k.Obs.CounterVec("kernel_syscalls", abi.SysnoSlots)
	cores := cfg.Profile.Cores
	if cfg.NumCPU > 0 {
		cores = cfg.NumCPU
	}
	k.cores = make([]int64, cores)
	k.lcores = make([]int64, cores)
	k.FS = mkFS(k, entropy.Fork())
	k.HW = cpu.NewHW(cfg.Profile, entropy.Fork(), func() int64 { return k.now })
	k.registerStandardDevices()
	k.populateProc()
	if cfg.Policy == nil {
		k.Policy = newBaselinePolicy(entropy.Fork())
	}
	if fp, ok := k.Policy.(SyscallBufferer); ok {
		k.fastPath = fp
	}
	if ws, ok := k.Policy.(WorkspaceScheduler); ok {
		k.wsched = ws
	}
	return k
}

// countSyscall bumps the per-syscall counter on the dense obs vector,
// falling back to the map for out-of-range numbers. The kernel loop is the
// only writer (lockstep), so the vector's single atomic add per call keeps
// the old dense table's hot-path profile.
func (k *Kernel) countSyscall(nr abi.Sysno, w int64) {
	if k.sysVec.InRange(int(nr)) {
		k.sysVec.Add(int(nr), w)
		return
	}
	k.Stats.PerSyscall[nr] += w
}

// foldStats merges the dense per-syscall vector into the exported map. The
// obs registry keeps its copy untouched (the farm roll-up wants the
// registry to still carry the totals), so the fold reads rather than
// drains; the guard keeps repeated Run calls from double-counting.
func (k *Kernel) foldStats() {
	if k.statsFolded {
		return
	}
	k.statsFolded = true
	for i := 0; i < k.sysVec.Len(); i++ {
		if n := k.sysVec.At(i); n != 0 {
			k.Stats.PerSyscall[abi.Sysno(i)] += n
		}
	}
}

// SetDebug installs a debug trace sink (the CLI's --debug flag).
func (k *Kernel) SetDebug(f func(string, ...any)) { k.debugf = f }

// WallClock returns the current wall-clock time in nanoseconds since the
// Unix epoch: boot epoch plus elapsed virtual time.
func (k *Kernel) WallClock() int64 { return k.epoch*1e9 + k.now }

// Now returns virtual nanoseconds since boot.
func (k *Kernel) Now() int64 { return k.now }

// LNow returns logical nanoseconds since boot: the jitter-free mirror of
// Now, maintained with nominal costs only. Flight-recorder events stamp
// with this clock because it is a pure function of guest behaviour — no
// host entropy, no epoch.
func (k *Kernel) LNow() int64 { return k.lnow }

// NumCores returns the number of schedulable CPUs in this boot.
func (k *Kernel) NumCores() int { return len(k.cores) }

// Epoch returns the boot epoch in seconds.
func (k *Kernel) Epoch() int64 { return k.epoch }

// RegisterDevice maps a DevID to a device constructor; opening a device
// inode instantiates it.
func (k *Kernel) RegisterDevice(id string, mk func() fs.Device) { k.devices[id] = mk }

// Start creates the init process (PID namespace root) running fn with the
// given argv/env, rooted at the filesystem root.
func (k *Kernel) Start(fn ProgramFn, argv, env []string) *Proc {
	p := k.newProc(nil)
	p.Argv = argv
	p.Env = append([]string(nil), env...)
	p.Root = k.FS.Root
	p.Cwd = k.FS.Root
	t := k.newThread(p, fn)
	k.startThread(t)
	return p
}

// Actions returns the processed-action count: the logical-history index
// fault injection (Config.CrashAtAction) and checkpoints are scheduled on.
// Deterministic — a pure function of the container's inputs and config.
func (k *Kernel) Actions() int64 { return k.actions }

// Run drives the simulation until every process has exited, a container
// error aborts it, or a limit trips. It returns nil on clean completion.
func (k *Kernel) Run() error {
	err := k.run()
	k.foldStats()
	return err
}

func (k *Kernel) run() error {
	for {
		if k.abortErr != nil {
			k.killEverything()
			return k.abortErr
		}
		if len(k.pending) == 0 && len(k.kblocked) == 0 && len(k.parked) == 0 {
			return nil // everything exited
		}
		// Checkpoint before the pick (the pick's scheduler event belongs to
		// the suffix), then let an injected crash fire — a run killed at a
		// stop that was just sealed recovers from that very seal.
		k.maybeCheckpoint()
		if k.crashAt > 0 && k.actions >= k.crashAt {
			k.killEverything()
			return ErrInjectedCrash
		}
		// Debugger halt points stop at the same top-of-loop boundary the
		// fault plane uses, so a halted replay's history is a strict prefix
		// of the uninterrupted run's.
		if (k.haltAtAction > 0 && k.actions >= k.haltAtAction) ||
			(k.haltAtLTime > 0 && k.lnow >= k.haltAtLTime) {
			k.killEverything()
			return ErrHalted
		}
		if len(k.pending) == 0 && len(k.parked) == 0 {
			// Only kernel-blocked threads remain: time can only advance via
			// timers (e.g. everyone in nanosleep/alarm).
			if !k.fireEarliestTimer() {
				k.killEverything()
				return ErrDeadlock
			}
			k.wakeKernelBlocked()
			continue
		}
		t := k.choose()
		if t == nil {
			// The policy had nothing runnable; give timers a chance before
			// declaring deadlock (DetTrace's Blocked queue may be waiting
			// on an alarm).
			if !k.fireEarliestTimer() {
				k.killEverything()
				if k.abortErr != nil {
					return k.abortErr
				}
				return ErrDeadlock
			}
			k.wakeKernelBlocked()
			continue
		}
		k.processAction(t)
		k.wakeKernelBlocked()
		k.checkTimers()
		k.actions++
		if k.deadline > 0 && k.now > k.deadline {
			k.killEverything()
			return ErrTimeout
		}
		if k.actions > k.maxActions {
			k.killEverything()
			return ErrRunaway
		}
	}
}

// choose asks the policy for the next thread among the pending set.
func (k *Kernel) choose() *Thread {
	if len(k.pending) > 1 || len(k.parked) > 0 {
		k.Stats.SchedRequests += k.weightOf(nil)
	}
	sort.Slice(k.pending, func(i, j int) bool { return k.pending[i].TID < k.pending[j].TID })
	return k.Policy.PickNext(k, k.pending)
}

func (k *Kernel) weightOf(t *Thread) int64 {
	if t != nil && t.Proc.Weight > 1 {
		return t.Proc.Weight
	}
	return 1
}

// Abort raises a reproducible container-level error; the run stops at the
// next loop iteration.
func (k *Kernel) Abort(err error) {
	if k.abortErr == nil {
		k.abortErr = &AbortError{Err: err}
	}
}

// Aborted reports the pending abort error, if any.
func (k *Kernel) Aborted() error { return k.abortErr }

// advanceGlobal moves the monotone global clock forward.
func (k *Kernel) advanceGlobal(t int64) {
	if t > k.now {
		k.now = t
	}
}

// advanceLogical moves the monotone logical clock forward.
func (k *Kernel) advanceLogical(t int64) {
	if t > k.lnow {
		k.lnow = t
	}
}

// removePending drops t from the pending set.
func (k *Kernel) removePending(t *Thread) {
	for i, p := range k.pending {
		if p == t {
			k.pending = append(k.pending[:i], k.pending[i+1:]...)
			return
		}
	}
}

// killEverything delivers a kill-resume to every live thread so their
// goroutines unwind; used for aborts, deadlocks and timeouts.
func (k *Kernel) killEverything() {
	for _, p := range k.procs {
		for _, t := range p.Threads {
			if !t.dead {
				k.killThread(t)
			}
		}
	}
	k.pending = nil
	k.kblocked = nil
	k.parked = nil
}

// debug emits one formatted trace line when debugging is enabled.
func (k *Kernel) debug(format string, args ...any) {
	if k.debugf != nil {
		k.debugf(format, args...)
	}
}

// Console buffers container stdout/stderr in processing order.
type Console struct {
	Out []byte
	Err []byte
}

// Stdout returns everything written to fd 1 so far.
func (c *Console) Stdout() string { return string(c.Out) }

// Stderr returns everything written to fd 2 so far.
func (c *Console) Stderr() string { return string(c.Err) }

// baselinePolicy is the "no tracer attached" policy: actions are processed
// in virtual-clock order with entropy tie-breaking, syscalls pass through
// untouched, blocking uses kernel semantics. This is what a stock Linux box
// looks like to the workload.
type baselinePolicy struct {
	entropy *prng.Host
}

func newBaselinePolicy(e *prng.Host) *baselinePolicy { return &baselinePolicy{entropy: e} }

func (b *baselinePolicy) Name() string { return "baseline" }

func (b *baselinePolicy) PickNext(k *Kernel, pending []*Thread) *Thread {
	if len(pending) == 0 {
		return nil
	}
	best := pending[0]
	ties := 1
	for _, t := range pending[1:] {
		switch {
		case t.Clock < best.Clock:
			best, ties = t, 1
		case t.Clock == best.Clock:
			// Reservoir-sample among equal clocks: scheduler races.
			ties++
			if b.entropy.Intn(ties) == 0 {
				best = t
			}
		}
	}
	return best
}

func (b *baselinePolicy) SyscallEnter(t *Thread, sc *abi.Syscall) EnterResult {
	return EnterResult{Disposition: DispExecute}
}

func (b *baselinePolicy) SyscallExit(t *Thread, sc *abi.Syscall) ExitResult {
	return ExitResult{}
}

func (b *baselinePolicy) WouldBlock(t *Thread, sc *abi.Syscall) bool { return false }

func (b *baselinePolicy) Instr(t *Thread, req cpu.Request) (cpu.Result, bool, int64) {
	return cpu.Result{}, false, 0
}

func (b *baselinePolicy) OnSpawn(parent, child *Thread) {}
func (b *baselinePolicy) OnExit(t *Thread)              {}
func (b *baselinePolicy) OnExec(t *Thread)              {}

var _ Policy = (*baselinePolicy)(nil)

// errString is a tiny constant-friendly error type for syscall-layer errors.
type errString string

func (e errString) Error() string { return string(e) }

// fmtPID formats a pid for debug lines.
func fmtPID(p *Proc) string { return fmt.Sprintf("pid%d", p.PID) }
