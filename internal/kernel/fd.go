package kernel

import (
	"repro/internal/abi"
	"repro/internal/fs"
)

type fdKind int

const (
	fdFile fdKind = iota
	fdDir
	fdPipeR
	fdPipeW
	fdDevice
	fdConsole
	fdSocket
)

// FD is one open file description. Linux shares descriptions across dup'd
// descriptors; the table below stores *FD pointers so dup2 aliases state the
// way the real kernel does.
type FD struct {
	kind fdKind

	ino   *fs.Inode
	path  string // absolute container path at open time, for /proc/fd
	pos   int64
	flags int

	pipe *fs.Pipe
	dev  fs.Device
	sock *socket

	consoleErr bool // console fd bound to stderr

	// dirSnapshot holds the remaining getdents entries once a directory
	// read has started, matching Linux's stable-snapshot semantics.
	dirSnapshot []abi.Dirent
	dirRead     bool

	refs int
}

// FDTable maps descriptor numbers to open descriptions. Threads share it;
// fork copies it (each FD's refcount bumps).
type FDTable struct {
	fds  map[int]*FD
	next int
}

func newFDTable() *FDTable {
	return &FDTable{fds: make(map[int]*FD), next: 0}
}

// install places fd at the lowest free slot and returns the number.
func (ft *FDTable) install(hint int, f *FD) int {
	n := hint
	for {
		if _, used := ft.fds[n]; !used {
			break
		}
		n++
	}
	f.refs++
	ft.fds[n] = f
	return n
}

// alloc finds the lowest free descriptor >= 0.
func (ft *FDTable) alloc(f *FD) int { return ft.install(0, f) }

// get looks a descriptor up.
func (ft *FDTable) get(n int) (*FD, abi.Errno) {
	f, ok := ft.fds[n]
	if !ok {
		return nil, abi.EBADF
	}
	return f, abi.OK
}

// dup2 makes newfd an alias of oldfd, closing any previous occupant.
func (ft *FDTable) dup2(k *Kernel, oldfd, newfd int) abi.Errno {
	f, ok := ft.fds[oldfd]
	if !ok {
		return abi.EBADF
	}
	if oldfd == newfd {
		return abi.OK
	}
	if prev, ok := ft.fds[newfd]; ok {
		ft.release(k, prev)
	}
	f.refs++
	ft.fds[newfd] = f
	return abi.OK
}

// close removes a descriptor.
func (ft *FDTable) close(k *Kernel, n int) abi.Errno {
	f, ok := ft.fds[n]
	if !ok {
		return abi.EBADF
	}
	delete(ft.fds, n)
	ft.release(k, f)
	return abi.OK
}

func (ft *FDTable) release(k *Kernel, f *FD) {
	f.refs--
	if f.refs > 0 {
		return
	}
	switch f.kind {
	case fdPipeR:
		f.pipe.CloseReader()
	case fdPipeW:
		f.pipe.CloseWriter()
	case fdSocket:
		f.sock.close()
	}
}

// clone copies the table for fork: same descriptions, bumped refcounts.
func (ft *FDTable) clone() *FDTable {
	nt := newFDTable()
	for n, f := range ft.fds {
		f.refs++
		nt.fds[n] = f
	}
	return nt
}

// closeAll releases every descriptor at process exit.
func (ft *FDTable) closeAll(k *Kernel) {
	for n := range ft.fds {
		ft.close(k, n)
	}
}
