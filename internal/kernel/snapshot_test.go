package kernel_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/guest"
	"repro/internal/kernel"
)

// observerProgram prints every host-visible property a boot can leak: pid,
// wall time, inode numbers and timestamps of populated files, raw getdents
// order, /proc pseudo-file contents, urandom bytes, a write-then-stat. If a
// warm boot differs from a cold boot in any of it, the fingerprint splits.
func observerProgram(p *guest.Proc) int {
	p.Printf("pid=%d ppid=%d\n", p.Getpid(), p.Getppid())
	p.Printf("time=%d\n", p.Time())
	for _, path := range []string{"/", "/bin", "/bin/sh", "/etc/hostname", "/tmp"} {
		if st, err := p.Stat(path); err == 0 {
			p.Printf("stat %s ino=%d mode=%o size=%d mtime=%d\n",
				path, st.Ino, st.Mode, st.Size, st.Mtime.Nanos())
		} else {
			p.Printf("stat %s err=%v\n", path, err)
		}
	}
	for _, dir := range []string{"/bin", "/etc"} {
		ents, err := p.ReadDir(dir)
		if err != 0 {
			p.Printf("readdir %s err=%v\n", dir, err)
			continue
		}
		p.Printf("readdir %s:", dir)
		for _, e := range ents {
			p.Printf(" %s=%d", e.Name, e.Ino)
		}
		p.Printf("\n")
	}
	if b, err := p.ReadFile("/proc/cpuinfo"); err == 0 {
		p.Printf("cpuinfo %d bytes\n", len(b))
	}
	var rnd [8]byte
	p.GetRandom(rnd[:])
	p.Printf("rnd=%x\n", rnd)
	p.WriteFile("/tmp/new.txt", []byte("fresh"), 0o644)
	if st, err := p.Stat("/tmp/new.txt"); err == 0 {
		p.Printf("new ino=%d mtime=%d\n", st.Ino, st.Mtime.Nanos())
	}
	p.Unlink("/tmp/new.txt")
	p.WriteFile("/tmp/recycled.txt", []byte("again"), 0o644)
	if st, err := p.Stat("/tmp/recycled.txt"); err == 0 {
		p.Printf("recycled ino=%d\n", st.Ino)
	}
	return 0
}

func runObserver(t *testing.T, k *kernel.Kernel, reg *guest.Registry) string {
	t.Helper()
	img := &kernel.ExecImage{Path: "/bin/init", Argv: []string{"init"}}
	k.Start(reg.Bind(observerProgram, img), img.Argv, []string{"PATH=/bin"})
	if err := k.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return k.Console.Stdout()
}

// The Prepare/Boot contract: a warm boot from a snapshot is bitwise
// indistinguishable from a cold New with the same per-run config — same
// pids, inos, timestamps, getdents order, entropy stream.
func TestSnapshotBootEqualsCold(t *testing.T) {
	reg := guest.NewRegistry()
	cfgOf := func(seed uint64, epoch int64) kernel.Config {
		return kernel.Config{
			Profile: profFor(), Seed: seed, Epoch: epoch,
			Image: imgFor(), Resolver: reg.Resolver(),
			Deadline: 3_600_000_000_000,
		}
	}
	snap := kernel.Prepare(cfgOf(0, 0))
	for _, run := range []struct {
		seed  uint64
		epoch int64
	}{{0xAAAA, 1_520_000_000}, {0xB0B0, 1_545_999_999}, {7, 42}} {
		cold := runObserver(t, kernel.New(cfgOf(run.seed, run.epoch)), reg)
		warm := runObserver(t, snap.Boot(kernel.BootConfig{
			Seed: run.seed, Epoch: run.epoch, Deadline: 3_600_000_000_000,
		}), reg)
		if cold != warm {
			t.Errorf("seed %#x epoch %d: warm boot diverged from cold boot\n--- cold ---\n%s--- warm ---\n%s",
				run.seed, run.epoch, cold, warm)
		}
	}
}

// One snapshot booted many times concurrently: runs must neither race (the
// base is shared read-only) nor couple (identical seeds give identical
// output; the snapshot accumulates no state between boots).
func TestSnapshotConcurrentBoots(t *testing.T) {
	reg := guest.NewRegistry()
	snap := kernel.Prepare(kernel.Config{
		Profile: profFor(), Image: imgFor(), Resolver: reg.Resolver(),
	})
	const workers = 12
	outs := make([]string, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := snap.Boot(kernel.BootConfig{Seed: 99, Epoch: 1_500_000_000, Deadline: 3_600_000_000_000})
			img := &kernel.ExecImage{Path: "/bin/init", Argv: []string{"init"}}
			k.Start(reg.Bind(observerProgram, img), img.Argv, []string{"PATH=/bin"})
			if err := k.Run(); err != nil {
				outs[i] = fmt.Sprintf("error: %v", err)
				return
			}
			outs[i] = k.Console.Stdout()
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if outs[i] != outs[0] {
			t.Fatalf("boot %d diverged:\n%s\nvs\n%s", i, outs[i], outs[0])
		}
	}
	// And a boot after all of that still matches a cold kernel: the template
	// accumulated no state.
	cold := runObserver(t, kernel.New(kernel.Config{
		Profile: profFor(), Seed: 99, Epoch: 1_500_000_000,
		Image: imgFor(), Resolver: reg.Resolver(), Deadline: 3_600_000_000_000,
	}), reg)
	if outs[0] != cold {
		t.Errorf("warm boots diverged from cold:\n%s\nvs\n%s", outs[0], cold)
	}
}
