package guest_test

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/abi"
	"repro/internal/baseimg"
	"repro/internal/guest"
	"repro/internal/kernel"
	"repro/internal/machine"
)

func TestExeFormatRoundTripProperty(t *testing.T) {
	prop := func(nameRaw string, payload []byte) bool {
		name := strings.Map(func(r rune) rune {
			if r == '\n' || r == '\r' {
				return '_'
			}
			return r
		}, nameRaw)
		if name == "" {
			name = "prog"
		}
		exe := guest.MakeExe(name, payload)
		got, pl, ok := guest.ParseExe(exe)
		return ok && got == name && bytes.Equal(pl, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestParseExeRejectsNonExecutables(t *testing.T) {
	for _, data := range [][]byte{nil, []byte("OBJ1\ncode:123\n"), []byte("#!repro-exe")} {
		if _, _, ok := guest.ParseExe(data); ok {
			t.Errorf("accepted %q", data)
		}
	}
}

func TestRegistryLookup(t *testing.T) {
	reg := guest.NewRegistry()
	reg.Register("x", func(p *guest.Proc) int { return 0 })
	if _, ok := reg.Lookup("x"); !ok {
		t.Errorf("registered program not found")
	}
	if _, ok := reg.Lookup("y"); ok {
		t.Errorf("phantom program found")
	}
}

// run executes a guest program on a fresh kernel and returns console+kernel.
func run(t *testing.T, prog guest.Program) *kernel.Kernel {
	t.Helper()
	reg := guest.NewRegistry()
	reg.Register("main", prog)
	k := kernel.New(kernel.Config{
		Profile: machine.CloudLabC220G5(), Seed: 1, Epoch: 1_500_000_000,
		Image: baseimg.Minimal(), Resolver: reg.Resolver(),
	})
	img := &kernel.ExecImage{Path: "/bin/main", Argv: []string{"main"}}
	k.Start(reg.Bind(prog, img), img.Argv, []string{"PATH=/bin", "WHO=me"})
	if err := k.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return k
}

func TestMkdirAllRelativeAndAbsolute(t *testing.T) {
	run(t, func(p *guest.Proc) int {
		if err := p.MkdirAll("/tmp/a/b/c", 0o755); err != abi.OK {
			p.Exit(1)
		}
		if _, err := p.Stat("/tmp/a/b/c"); err != abi.OK {
			p.Exit(2)
		}
		p.Chdir("/tmp")
		if err := p.MkdirAll("rel/x/y", 0o755); err != abi.OK {
			p.Exit(3)
		}
		if _, err := p.Stat("/tmp/rel/x/y"); err != abi.OK {
			p.Exit(4)
		}
		// Idempotent.
		if err := p.MkdirAll("/tmp/a/b/c", 0o755); err != abi.OK {
			p.Exit(5)
		}
		return 0
	})
}

func TestReadWriteFileHelpers(t *testing.T) {
	run(t, func(p *guest.Proc) int {
		data := bytes.Repeat([]byte("block"), 1000)
		if err := p.WriteFile("/tmp/big", data, 0o600); err != abi.OK {
			p.Exit(1)
		}
		back, err := p.ReadFile("/tmp/big")
		if err != abi.OK || !bytes.Equal(back, data) {
			p.Exit(2)
		}
		p.AppendFile("/tmp/big", []byte("tail"), 0o600)
		back, _ = p.ReadFile("/tmp/big")
		if !bytes.HasSuffix(back, []byte("tail")) {
			p.Exit(3)
		}
		st, _ := p.Stat("/tmp/big")
		if st.Mode&abi.ModePermMask != 0o600 {
			p.Exit(4)
		}
		return 0
	})
}

func TestGetenvAndArgv(t *testing.T) {
	k := run(t, func(p *guest.Proc) int {
		p.Printf("%s|%s|%s", p.Argv()[0], p.Getenv("WHO"), p.Getenv("MISSING"))
		return 0
	})
	if got := k.Console.Stdout(); got != "main|me|" {
		t.Errorf("stdout = %q", got)
	}
}

func TestSymlinkHelpers(t *testing.T) {
	run(t, func(p *guest.Proc) int {
		p.WriteFile("/tmp/target", []byte("T"), 0o644)
		if err := p.Symlink("/tmp/target", "/tmp/ln"); err != abi.OK {
			p.Exit(1)
		}
		got, err := p.Readlink("/tmp/ln")
		if err != abi.OK || got != "/tmp/target" {
			p.Exit(2)
		}
		data, err := p.ReadFile("/tmp/ln")
		if err != abi.OK || string(data) != "T" {
			p.Exit(3)
		}
		st, _ := p.Lstat("/tmp/ln")
		if st.Mode&abi.ModeTypeMask != abi.ModeSymlink {
			p.Exit(4)
		}
		return 0
	})
}

func TestUmaskAppliesToCreation(t *testing.T) {
	run(t, func(p *guest.Proc) int {
		old := p.Umask(0o077)
		_ = old
		p.WriteFile("/tmp/guarded", nil, 0o666)
		st, _ := p.Stat("/tmp/guarded")
		if st.Mode&abi.ModePermMask != 0o600 {
			p.Eprintf("mode = %o\n", st.Mode&abi.ModePermMask)
			p.Exit(1)
		}
		return 0
	})
}

func TestWeightFloorsAtOne(t *testing.T) {
	run(t, func(p *guest.Proc) int {
		p.SetWeight(-5)
		if p.T.Proc.Weight != 1 {
			p.Exit(1)
		}
		return 0
	})
}
