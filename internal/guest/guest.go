// Package guest defines the programming interface for code that runs
// *inside* the simulated container: the Proc handle with typed system call
// wrappers, the program registry that execve resolves binaries against, and
// the executable file format.
//
// A guest program is a Go function of type Program. It may only observe and
// affect the world through its Proc — every wrapper below bottoms out in a
// kernel syscall, a CPU instruction, or a compute burst, all of which flow
// through the tracer policy. That discipline is what makes DetTrace's
// guarantee testable: if the API surface is the Linux ABI, determinizing the
// ABI determinizes the program.
package guest

import (
	"fmt"
	"strings"

	"repro/internal/abi"
	"repro/internal/kernel"
)

// Program is a guest executable body. The return value is the process exit
// code.
type Program func(p *Proc) int

// Proc is a guest program's handle on its process.
type Proc struct {
	T     *kernel.Thread
	Image *kernel.ExecImage
}

type exitPanic struct{ code int }

// Exit terminates the calling program immediately with the given code.
func (p *Proc) Exit(code int) {
	panic(exitPanic{code})
}

// run invokes prog, converting Exit panics into return codes.
func run(prog Program, p *Proc) (code int) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(exitPanic); ok {
				code = e.code
				return
			}
			panic(r)
		}
	}()
	return prog(p)
}

// --- executable format -------------------------------------------------------

const exeMagic = "#!repro-exe "

// MakeExe builds an executable file image that execve can resolve: an
// interpreter line naming a registered program, followed by an arbitrary
// payload (the "machine code" our toolchain workloads emit).
func MakeExe(program string, payload []byte) []byte {
	return append([]byte(exeMagic+program+"\n"), payload...)
}

// ParseExe splits an executable image into program name and payload.
func ParseExe(exe []byte) (program string, payload []byte, ok bool) {
	if !strings.HasPrefix(string(exe), exeMagic) {
		return "", nil, false
	}
	rest := string(exe[len(exeMagic):])
	i := strings.IndexByte(rest, '\n')
	if i < 0 {
		return "", nil, false
	}
	return rest[:i], exe[len(exeMagic)+i+1:], true
}

// Registry maps program names to Program implementations.
type Registry struct {
	progs map[string]Program
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{progs: make(map[string]Program)} }

// Register adds or replaces a program.
func (r *Registry) Register(name string, prog Program) {
	r.progs[name] = prog
}

// Lookup fetches a program by name.
func (r *Registry) Lookup(name string) (Program, bool) {
	prog, ok := r.progs[name]
	return prog, ok
}

// Resolver adapts the registry to the kernel's execve hook.
func (r *Registry) Resolver() kernel.Resolver {
	return func(img *kernel.ExecImage) (kernel.ProgramFn, abi.Errno) {
		name, payload, ok := ParseExe(img.Exe)
		if !ok {
			return nil, abi.EINVAL // ENOEXEC territory
		}
		prog, found := r.progs[name]
		if !found {
			return nil, abi.ENOENT
		}
		img.Payload = payload
		return r.Bind(prog, img), abi.OK
	}
}

// Bind wraps a Program into a kernel ProgramFn with the given image.
func (r *Registry) Bind(prog Program, img *kernel.ExecImage) kernel.ProgramFn {
	return func(t *kernel.Thread) int {
		return run(prog, &Proc{T: t, Image: img})
	}
}

// --- process identity ---------------------------------------------------------

// Argv returns the program's argument vector.
func (p *Proc) Argv() []string { return p.T.Proc.Argv }

// Environ returns the process environment as KEY=VALUE strings.
func (p *Proc) Environ() []string { return p.T.Proc.Env }

// Getenv looks a variable up in the environment.
func (p *Proc) Getenv(key string) string {
	prefix := key + "="
	for _, kv := range p.T.Proc.Env {
		if strings.HasPrefix(kv, prefix) {
			return kv[len(prefix):]
		}
	}
	return ""
}

// SetWeight declares that each subsequent action of this process stands for
// w real actions at paper scale (see DESIGN.md's scale note).
func (p *Proc) SetWeight(w int64) {
	if w < 1 {
		w = 1
	}
	p.T.Proc.Weight = w
}

// --- raw syscall plumbing ------------------------------------------------------

// call funnels every wrapper's syscall through the thread's reusable record.
// Copying the literal into T.Event keeps it from escaping, so the dispatch
// hot path allocates nothing; the full-struct copy also clears any cached
// interception verdict from the previous call. One call is in flight per
// thread at a time (signal handlers save and restore around nesting), so the
// single record is enough.
func (p *Proc) call(sc *abi.Syscall) *abi.Syscall {
	e := &p.T.Event
	*e = *sc
	return p.T.Syscall(e)
}

func ret(sc *abi.Syscall) (int64, abi.Errno) {
	if e := sc.Err(); e != abi.OK {
		return 0, e
	}
	return sc.Ret, abi.OK
}

// --- files ---------------------------------------------------------------------

// Open opens a file, returning the descriptor.
func (p *Proc) Open(path string, flags int, mode uint32) (int, abi.Errno) {
	sc := p.call(&abi.Syscall{Num: abi.SysOpen, Path: path, Arg: [6]int64{int64(flags), int64(mode)}})
	n, e := ret(sc)
	return int(n), e
}

// Close closes a descriptor.
func (p *Proc) Close(fd int) abi.Errno {
	_, e := ret(p.call(&abi.Syscall{Num: abi.SysClose, Arg: [6]int64{int64(fd)}}))
	return e
}

// Read reads up to len(buf) bytes from fd.
func (p *Proc) Read(fd int, buf []byte) (int, abi.Errno) {
	sc := p.call(&abi.Syscall{Num: abi.SysRead, Arg: [6]int64{int64(fd)}, Buf: buf})
	n, e := ret(sc)
	return int(n), e
}

// Write writes buf to fd.
func (p *Proc) Write(fd int, buf []byte) (int, abi.Errno) {
	sc := p.call(&abi.Syscall{Num: abi.SysWrite, Arg: [6]int64{int64(fd)}, Buf: buf})
	n, e := ret(sc)
	return int(n), e
}

// WriteString writes s to fd.
func (p *Proc) WriteString(fd int, s string) (int, abi.Errno) {
	return p.Write(fd, []byte(s))
}

// Printf formats to the container stdout.
func (p *Proc) Printf(format string, args ...any) {
	p.WriteString(1, fmt.Sprintf(format, args...))
}

// Eprintf formats to the container stderr.
func (p *Proc) Eprintf(format string, args ...any) {
	p.WriteString(2, fmt.Sprintf(format, args...))
}

// Lseek repositions fd.
func (p *Proc) Lseek(fd int, off int64, whence int) (int64, abi.Errno) {
	return ret(p.call(&abi.Syscall{Num: abi.SysLseek, Arg: [6]int64{int64(fd), off, int64(whence)}}))
}

// Stat stats a path, following symlinks.
func (p *Proc) Stat(path string) (abi.Stat, abi.Errno) {
	var st abi.Stat
	sc := p.call(&abi.Syscall{Num: abi.SysStat, Path: path, Obj: &st})
	_, e := ret(sc)
	return st, e
}

// Lstat stats a path without following the final symlink.
func (p *Proc) Lstat(path string) (abi.Stat, abi.Errno) {
	var st abi.Stat
	sc := p.call(&abi.Syscall{Num: abi.SysLstat, Path: path, Obj: &st})
	_, e := ret(sc)
	return st, e
}

// Fstat stats an open descriptor.
func (p *Proc) Fstat(fd int) (abi.Stat, abi.Errno) {
	var st abi.Stat
	sc := p.call(&abi.Syscall{Num: abi.SysFstat, Arg: [6]int64{int64(fd)}, Obj: &st})
	_, e := ret(sc)
	return st, e
}

// Getdents reads up to max directory entries from fd (0 means all).
func (p *Proc) Getdents(fd int, max int) ([]abi.Dirent, abi.Errno) {
	var out []abi.Dirent
	sc := p.call(&abi.Syscall{Num: abi.SysGetdents, Arg: [6]int64{int64(fd), int64(max)}, Obj: &out})
	if _, e := ret(sc); e != abi.OK {
		return nil, e
	}
	return out, abi.OK
}

// ReadDir opens path and returns its entries in getdents order — host order
// natively, sorted under DetTrace.
func (p *Proc) ReadDir(path string) ([]abi.Dirent, abi.Errno) {
	fd, err := p.Open(path, abi.ORdonly|abi.ODirectory, 0)
	if err != abi.OK {
		return nil, err
	}
	defer p.Close(fd)
	return p.Getdents(fd, 0)
}

// ReadFile slurps a whole file through open/read/close. Regular files are
// read with one exact-size read (stat-then-read, the pattern that makes
// partial reads "never happen" on regular files, §5.5); pseudo files and
// devices report size 0 and are drained in chunks.
func (p *Proc) ReadFile(path string) ([]byte, abi.Errno) {
	fd, err := p.Open(path, abi.ORdonly, 0)
	if err != abi.OK {
		return nil, err
	}
	defer p.Close(fd)
	st, err := p.Fstat(fd)
	if err != abi.OK {
		return nil, err
	}
	if st.IsRegular() && st.Size > 0 {
		buf := make([]byte, st.Size)
		total := 0
		for total < len(buf) {
			n, err := p.Read(fd, buf[total:])
			if err != abi.OK {
				return nil, err
			}
			if n == 0 {
				break
			}
			total += n
		}
		return buf[:total], abi.OK
	}
	var out []byte
	chunk := make([]byte, 4096)
	for {
		n, err := p.Read(fd, chunk)
		if err != abi.OK {
			return nil, err
		}
		if n == 0 {
			return out, abi.OK
		}
		out = append(out, chunk[:n]...)
	}
}

// WriteFile creates (or truncates) path with the given contents.
func (p *Proc) WriteFile(path string, data []byte, mode uint32) abi.Errno {
	fd, err := p.Open(path, abi.OCreat|abi.OWronly|abi.OTrunc, mode)
	if err != abi.OK {
		return err
	}
	defer p.Close(fd)
	off := 0
	for off < len(data) {
		n, err := p.Write(fd, data[off:])
		if err != abi.OK {
			return err
		}
		off += n
	}
	return abi.OK
}

// AppendFile appends data to path, creating it if needed.
func (p *Proc) AppendFile(path string, data []byte, mode uint32) abi.Errno {
	fd, err := p.Open(path, abi.OCreat|abi.OWronly|abi.OAppend, mode)
	if err != abi.OK {
		return err
	}
	defer p.Close(fd)
	_, werr := p.Write(fd, data)
	return werr
}

// Mkdir creates one directory.
func (p *Proc) Mkdir(path string, mode uint32) abi.Errno {
	_, e := ret(p.call(&abi.Syscall{Num: abi.SysMkdir, Path: path, Arg: [6]int64{int64(mode)}}))
	return e
}

// MkdirAll creates path and any missing parents. Relative paths stay
// relative to the working directory.
func (p *Proc) MkdirAll(path string, mode uint32) abi.Errno {
	abs := strings.HasPrefix(path, "/")
	cur := ""
	for _, part := range strings.Split(path, "/") {
		if part == "" {
			continue
		}
		switch {
		case cur == "" && abs:
			cur = "/" + part
		case cur == "":
			cur = part
		default:
			cur = cur + "/" + part
		}
		if err := p.Mkdir(cur, mode); err != abi.OK && err != abi.EEXIST {
			return err
		}
	}
	return abi.OK
}

// Rmdir removes an empty directory.
func (p *Proc) Rmdir(path string) abi.Errno {
	_, e := ret(p.call(&abi.Syscall{Num: abi.SysRmdir, Path: path}))
	return e
}

// Unlink removes a file.
func (p *Proc) Unlink(path string) abi.Errno {
	_, e := ret(p.call(&abi.Syscall{Num: abi.SysUnlink, Path: path}))
	return e
}

// Rename moves oldpath to newpath.
func (p *Proc) Rename(oldpath, newpath string) abi.Errno {
	_, e := ret(p.call(&abi.Syscall{Num: abi.SysRename, Path: oldpath, Path2: newpath}))
	return e
}

// Link makes a hard link newpath -> oldpath.
func (p *Proc) Link(oldpath, newpath string) abi.Errno {
	_, e := ret(p.call(&abi.Syscall{Num: abi.SysLink, Path: oldpath, Path2: newpath}))
	return e
}

// Symlink creates a symlink at linkpath pointing to target.
func (p *Proc) Symlink(target, linkpath string) abi.Errno {
	_, e := ret(p.call(&abi.Syscall{Num: abi.SysSymlink, Path: target, Path2: linkpath}))
	return e
}

// Readlink reads a symlink's target.
func (p *Proc) Readlink(path string) (string, abi.Errno) {
	var out string
	sc := p.call(&abi.Syscall{Num: abi.SysReadlink, Path: path, Obj: &out})
	if _, e := ret(sc); e != abi.OK {
		return "", e
	}
	return out, abi.OK
}

// Chmod changes permission bits.
func (p *Proc) Chmod(path string, mode uint32) abi.Errno {
	_, e := ret(p.call(&abi.Syscall{Num: abi.SysChmod, Path: path, Arg: [6]int64{int64(mode)}}))
	return e
}

// Chown changes ownership.
func (p *Proc) Chown(path string, uid, gid uint32) abi.Errno {
	_, e := ret(p.call(&abi.Syscall{Num: abi.SysChown, Path: path, Arg: [6]int64{int64(uid), int64(gid)}}))
	return e
}

// Truncate resizes a file by path.
func (p *Proc) Truncate(path string, size int64) abi.Errno {
	_, e := ret(p.call(&abi.Syscall{Num: abi.SysTruncate, Path: path, Arg: [6]int64{size}}))
	return e
}

// Access checks path existence/permissions.
func (p *Proc) Access(path string) abi.Errno {
	_, e := ret(p.call(&abi.Syscall{Num: abi.SysAccess, Path: path}))
	return e
}

// Utimes sets atime/mtime explicitly.
func (p *Proc) Utimes(path string, atime, mtime abi.Timespec) abi.Errno {
	times := [2]abi.Timespec{atime, mtime}
	_, e := ret(p.call(&abi.Syscall{Num: abi.SysUtimes, Path: path, Obj: &times}))
	return e
}

// UtimesNow asks the kernel to stamp path with "the current time" (the nil
// times form that DetTrace must rewrite, §5.10).
func (p *Proc) UtimesNow(path string) abi.Errno {
	_, e := ret(p.call(&abi.Syscall{Num: abi.SysUtimes, Path: path}))
	return e
}

// Getcwd returns the current working directory.
func (p *Proc) Getcwd() (string, abi.Errno) {
	var out string
	sc := p.call(&abi.Syscall{Num: abi.SysGetcwd, Obj: &out})
	if _, e := ret(sc); e != abi.OK {
		return "", e
	}
	return out, abi.OK
}

// Chdir changes the working directory.
func (p *Proc) Chdir(path string) abi.Errno {
	_, e := ret(p.call(&abi.Syscall{Num: abi.SysChdir, Path: path}))
	return e
}

// Chroot changes the process root.
func (p *Proc) Chroot(path string) abi.Errno {
	_, e := ret(p.call(&abi.Syscall{Num: abi.SysChroot, Path: path}))
	return e
}

// Pipe creates a pipe, returning the read and write descriptors.
func (p *Proc) Pipe() (r, w int, err abi.Errno) {
	var out [2]int
	sc := p.call(&abi.Syscall{Num: abi.SysPipe, Obj: &out})
	if _, e := ret(sc); e != abi.OK {
		return 0, 0, e
	}
	return out[0], out[1], abi.OK
}

// Dup2 duplicates oldfd onto newfd.
func (p *Proc) Dup2(oldfd, newfd int) abi.Errno {
	_, e := ret(p.call(&abi.Syscall{Num: abi.SysDup2, Arg: [6]int64{int64(oldfd), int64(newfd)}}))
	return e
}

// Fcntl issues a file-control operation.
func (p *Proc) Fcntl(fd int, cmd, val int64) (int64, abi.Errno) {
	return ret(p.call(&abi.Syscall{Num: abi.SysFcntl, Arg: [6]int64{int64(fd), cmd, val}}))
}

// SetPipeSize grows a pipe's buffer (fcntl F_SETPIPE_SZ).
func (p *Proc) SetPipeSize(fd int, n int64) abi.Errno {
	_, e := p.Fcntl(fd, 1031, n)
	return e
}
