package guest

import (
	"repro/internal/abi"
	"repro/internal/cpu"
	"repro/internal/kernel"
)

// --- time ----------------------------------------------------------------------

// Time returns wall-clock seconds via the time system call.
func (p *Proc) Time() int64 {
	sc := p.call(&abi.Syscall{Num: abi.SysTime})
	return sc.Ret
}

// ClockGettime returns the wall clock as a Timespec via a real system call.
func (p *Proc) ClockGettime() abi.Timespec {
	var ts abi.Timespec
	p.call(&abi.Syscall{Num: abi.SysClockGettime, Obj: &ts})
	return ts
}

// Gettimeofday returns wall-clock nanoseconds via a real system call.
func (p *Proc) Gettimeofday() int64 {
	var ts abi.Timespec
	p.call(&abi.Syscall{Num: abi.SysGettimeofday, Obj: &ts})
	return ts.Nanos()
}

// VdsoNow returns wall-clock nanoseconds through the vDSO fast path — the
// library-call route that ptrace cannot see (§5.3). libc-style code (e.g.
// mkstemp) uses this even in statically linked binaries.
func (p *Proc) VdsoNow() int64 { return p.T.VdsoTime() }

// Nanosleep blocks for the given duration.
func (p *Proc) Nanosleep(ns int64) abi.Errno {
	_, e := ret(p.call(&abi.Syscall{Num: abi.SysNanosleep, Arg: [6]int64{ns}}))
	return e
}

// Alarm arms a SIGALRM timer in whole seconds.
func (p *Proc) Alarm(seconds int64) {
	p.call(&abi.Syscall{Num: abi.SysAlarm, Arg: [6]int64{seconds}})
}

// Setitimer arms an interval timer delivering SIGVTALRM.
func (p *Proc) Setitimer(value, interval int64) {
	it := abi.Itimerval{Value: value, Interval: interval}
	p.call(&abi.Syscall{Num: abi.SysSetitimer, Obj: &it})
}

// Pause blocks until a signal is delivered.
func (p *Proc) Pause() abi.Errno {
	_, e := ret(p.call(&abi.Syscall{Num: abi.SysPause}))
	return e
}

// --- randomness -------------------------------------------------------------------

// GetRandom fills buf from the kernel entropy source (getrandom).
func (p *Proc) GetRandom(buf []byte) abi.Errno {
	_, e := ret(p.call(&abi.Syscall{Num: abi.SysGetrandom, Buf: buf}))
	return e
}

// --- identity ------------------------------------------------------------------

// Getpid returns the process id as the process sees it.
func (p *Proc) Getpid() int {
	sc := p.call(&abi.Syscall{Num: abi.SysGetpid})
	return int(sc.Ret)
}

// Getppid returns the parent pid.
func (p *Proc) Getppid() int {
	sc := p.call(&abi.Syscall{Num: abi.SysGetppid})
	return int(sc.Ret)
}

// Gettid returns the calling thread's id.
func (p *Proc) Gettid() int {
	sc := p.call(&abi.Syscall{Num: abi.SysGetTid})
	return int(sc.Ret)
}

// Getuid returns the effective uid.
func (p *Proc) Getuid() int {
	sc := p.call(&abi.Syscall{Num: abi.SysGetuid})
	return int(sc.Ret)
}

// Getgid returns the effective gid.
func (p *Proc) Getgid() int {
	sc := p.call(&abi.Syscall{Num: abi.SysGetgid})
	return int(sc.Ret)
}

// Setuid switches identity (the container's first process starts as root).
func (p *Proc) Setuid(uid uint32) abi.Errno {
	_, e := ret(p.call(&abi.Syscall{Num: abi.SysSetuid, Arg: [6]int64{int64(uid)}}))
	return e
}

// Umask sets the file-creation mask and returns the previous one.
func (p *Proc) Umask(mask uint32) uint32 {
	sc := p.call(&abi.Syscall{Num: abi.SysUmask, Arg: [6]int64{int64(mask)}})
	return uint32(sc.Ret)
}

// Uname returns machine identification.
func (p *Proc) Uname() abi.Utsname {
	var u abi.Utsname
	p.call(&abi.Syscall{Num: abi.SysUname, Obj: &u})
	return u
}

// Sysinfo returns system statistics (core counts leak here natively).
func (p *Proc) Sysinfo() abi.Sysinfo {
	var si abi.Sysinfo
	p.call(&abi.Syscall{Num: abi.SysSysinfo, Obj: &si})
	return si
}

// --- processes and threads -------------------------------------------------------

// Fork creates a child process running child. It returns the child pid in
// the parent. (The Go-function model means the "copied image" is the child
// closure; captured variables are snapshotted by value only if the guest
// takes care to copy them.)
func (p *Proc) Fork(child Program) (int, abi.Errno) {
	fn := kernel.ProgramFn(func(t *kernel.Thread) int {
		return run(child, &Proc{T: t, Image: p.Image})
	})
	sc := p.call(&abi.Syscall{Num: abi.SysFork, Obj: fn})
	n, e := ret(sc)
	return int(n), e
}

// CloneThread starts a new thread in this process, returning its tid.
func (p *Proc) CloneThread(body Program) (int, abi.Errno) {
	fn := kernel.ProgramFn(func(t *kernel.Thread) int {
		return run(body, &Proc{T: t, Image: p.Image})
	})
	sc := p.call(&abi.Syscall{
		Num: abi.SysClone,
		Arg: [6]int64{abi.CloneThread | abi.CloneVM | abi.CloneFiles},
		Obj: fn,
	})
	n, e := ret(sc)
	return int(n), e
}

// Exec replaces the process image. On success it does not return.
func (p *Proc) Exec(path string, argv, env []string) abi.Errno {
	sc := p.call(&abi.Syscall{Num: abi.SysExecve, Path: path, Obj: &kernel.ExecArgs{Argv: argv, Env: env}})
	_, e := ret(sc)
	return e // only reached on failure
}

// Spawn is the fork+exec idiom: run path with argv/env as a child process.
// The child inherits this process's environment when env is nil.
func (p *Proc) Spawn(path string, argv, env []string) (int, abi.Errno) {
	return p.Fork(func(c *Proc) int {
		if err := c.Exec(path, argv, env); err != abi.OK {
			c.Eprintf("exec %s: %s\n", path, err)
			return 127
		}
		return 127 // unreachable
	})
}

// Wait blocks for any child to exit.
func (p *Proc) Wait() (kernel.WaitResult, abi.Errno) {
	return p.Waitpid(-1, 0)
}

// Waitpid blocks for a specific child (or any, with pid -1).
func (p *Proc) Waitpid(pid int, options int64) (kernel.WaitResult, abi.Errno) {
	var wr kernel.WaitResult
	sc := p.call(&abi.Syscall{Num: abi.SysWait4, Arg: [6]int64{int64(pid), options}, Obj: &wr})
	if _, e := ret(sc); e != abi.OK {
		return wr, e
	}
	return wr, abi.OK
}

// Kill sends a signal to a process.
func (p *Proc) Kill(pid int, sig abi.Signal) abi.Errno {
	_, e := ret(p.call(&abi.Syscall{Num: abi.SysKill, Arg: [6]int64{int64(pid), int64(sig)}}))
	return e
}

// Signal installs a handler for sig. Passing nil restores the default.
func (p *Proc) Signal(sig abi.Signal, handler func(p *Proc, sig abi.Signal)) {
	if handler == nil {
		p.T.SetHandler(sig, nil)
	} else {
		p.T.SetHandler(sig, func(t *kernel.Thread, s abi.Signal) {
			handler(&Proc{T: t, Image: p.Image}, s)
		})
	}
	hasHandler := int64(0)
	if handler != nil {
		hasHandler = 1
	}
	p.call(&abi.Syscall{Num: abi.SysRtSigaction, Arg: [6]int64{int64(sig), hasHandler}})
}

// SchedYield relinquishes the CPU.
func (p *Proc) SchedYield() {
	p.call(&abi.Syscall{Num: abi.SysSchedYield})
}

// --- shared memory and futexes ------------------------------------------------------

// Load reads a shared-memory word. Words are shared among threads of the
// process and copied at fork.
func (p *Proc) Load(addr int64) int64 { return p.T.Proc.Mem[addr] }

// Store writes a shared-memory word.
func (p *Proc) Store(addr, val int64) { p.T.Proc.Mem[addr] = val }

// Add atomically adds to a shared word, returning the new value. (All guest
// code is mutually excluded, so plain read-modify-write is atomic.)
func (p *Proc) Add(addr, delta int64) int64 {
	p.T.Proc.Mem[addr] += delta
	return p.T.Proc.Mem[addr]
}

// FutexWait blocks while *addr == val (the fast-path failure of a lock).
func (p *Proc) FutexWait(addr, val int64) abi.Errno {
	_, e := ret(p.call(&abi.Syscall{Num: abi.SysFutex, Arg: [6]int64{addr, abi.FutexWait, val}}))
	return e
}

// FutexWake wakes up to n waiters on addr, returning the count woken.
func (p *Proc) FutexWake(addr, n int64) int {
	sc := p.call(&abi.Syscall{Num: abi.SysFutex, Arg: [6]int64{addr, abi.FutexWake, n}})
	return int(sc.Ret)
}

// --- memory --------------------------------------------------------------------------

// Mmap reserves an anonymous mapping and returns its address — an ASLR
// accident that irreproducible builds sometimes embed.
func (p *Proc) Mmap(size int64) int64 {
	sc := p.call(&abi.Syscall{Num: abi.SysMmap, Arg: [6]int64{size}})
	return sc.Ret
}

// Brk grows the heap by incr and returns the new break.
func (p *Proc) Brk(incr int64) int64 {
	sc := p.call(&abi.Syscall{Num: abi.SysBrk, Arg: [6]int64{incr}})
	return sc.Ret
}

// --- compute and instructions ----------------------------------------------------------

// Compute burns ns nanoseconds of CPU time on one core.
func (p *Proc) Compute(ns int64) { p.T.Compute(ns) }

// Work burns ns nanoseconds scaled by the process weight: when one executed
// action stands for Weight real ones, its compute must scale the same way.
func (p *Proc) Work(ns int64) { p.T.Compute(ns * p.T.Proc.Weight) }

// Rdtsc reads the time-stamp counter.
func (p *Proc) Rdtsc() uint64 {
	return p.T.Instr(cpu.Request{Instr: cpu.RDTSC}).Value
}

// Rdtscp reads the time-stamp counter (serializing variant).
func (p *Proc) Rdtscp() uint64 {
	return p.T.Instr(cpu.Request{Instr: cpu.RDTSCP}).Value
}

// Cpuid queries a cpuid leaf.
func (p *Proc) Cpuid(leaf uint32) cpu.Result {
	return p.T.Instr(cpu.Request{Instr: cpu.CPUID, Leaf: leaf})
}

// Rdrand draws hardware entropy; ok mirrors the carry flag.
func (p *Proc) Rdrand() (uint64, bool) {
	r := p.T.Instr(cpu.Request{Instr: cpu.RDRAND})
	return r.Value, r.OK
}

// Rdseed draws hardware entropy from the conditioner.
func (p *Proc) Rdseed() (uint64, bool) {
	r := p.T.Instr(cpu.Request{Instr: cpu.RDSEED})
	return r.Value, r.OK
}

// Xbegin attempts a TSX transaction; ok reports commit. Abort timing is the
// paper's one untrappable nondeterminism source (§4).
func (p *Proc) Xbegin() bool {
	return p.T.Instr(cpu.Request{Instr: cpu.XBEGIN}).OK
}

// Fetch retrieves a declared external file by URL (the checksummed-download
// extension). Outside DetTrace the kernel has no network and returns ENOSYS.
func (p *Proc) Fetch(url string) ([]byte, abi.Errno) {
	var out []byte
	sc := p.call(&abi.Syscall{Num: abi.SysFetch, Path: url, Obj: &out})
	if _, e := ret(sc); e != abi.OK {
		return nil, e
	}
	return out, abi.OK
}

// --- sockets (container-internal IPC; DetTrace aborts unless the
// experimental mode is enabled) ----------------------------------------------------------

// Socket creates an AF_UNIX stream socket.
func (p *Proc) Socket() (int, abi.Errno) {
	sc := p.call(&abi.Syscall{Num: abi.SysSocket})
	n, e := ret(sc)
	return int(n), e
}

// Bind names a socket with a filesystem path.
func (p *Proc) Bind(fd int, path string) abi.Errno {
	_, e := ret(p.call(&abi.Syscall{Num: abi.SysBind, Arg: [6]int64{int64(fd)}, Path: path}))
	return e
}

// Listen marks a bound socket as accepting.
func (p *Proc) Listen(fd int) abi.Errno {
	_, e := ret(p.call(&abi.Syscall{Num: abi.SysListen, Arg: [6]int64{int64(fd)}}))
	return e
}

// Connect connects to a listening socket by path.
func (p *Proc) Connect(fd int, path string) abi.Errno {
	_, e := ret(p.call(&abi.Syscall{Num: abi.SysConnect, Arg: [6]int64{int64(fd)}, Path: path}))
	return e
}

// Accept takes the next pending connection.
func (p *Proc) Accept(fd int) (int, abi.Errno) {
	sc := p.call(&abi.Syscall{Num: abi.SysAccept, Arg: [6]int64{int64(fd)}})
	n, e := ret(sc)
	return int(n), e
}

// Send writes to a connected socket.
func (p *Proc) Send(fd int, buf []byte) (int, abi.Errno) {
	sc := p.call(&abi.Syscall{Num: abi.SysSendto, Arg: [6]int64{int64(fd)}, Buf: buf})
	n, e := ret(sc)
	return int(n), e
}

// Recv reads from a connected socket.
func (p *Proc) Recv(fd int, buf []byte) (int, abi.Errno) {
	sc := p.call(&abi.Syscall{Num: abi.SysRecvfrom, Arg: [6]int64{int64(fd)}, Buf: buf})
	n, e := ret(sc)
	return int(n), e
}
