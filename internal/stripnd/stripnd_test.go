package stripnd

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/artar"
)

func archiveWithTimes(times ...int64) []byte {
	ar := &artar.Archive{}
	for i, mt := range times {
		ar.Add(artar.Member{Name: string(rune('a' + i)), Mtime: mt, Data: []byte("data")})
	}
	return ar.Pack()
}

func TestStripClampsMtimes(t *testing.T) {
	out, err := artar.Unpack(Strip(archiveWithTimes(100, 200, 0)))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range out.Members {
		if m.Mtime != 0 {
			t.Errorf("member %s mtime = %d", m.Name, m.Mtime)
		}
	}
}

func TestStripRecursesIntoNestedArchives(t *testing.T) {
	inner := archiveWithTimes(42)
	outer := &artar.Archive{}
	outer.Add(artar.Member{Name: "data.tar", Mtime: 77, Data: inner})
	stripped, err := artar.Unpack(Strip(outer.Pack()))
	if err != nil {
		t.Fatal(err)
	}
	if stripped.Members[0].Mtime != 0 {
		t.Errorf("outer mtime survived")
	}
	in, err := artar.Unpack(stripped.Members[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	if in.Members[0].Mtime != 0 {
		t.Errorf("nested mtime survived")
	}
}

func TestStripGzipHeader(t *testing.T) {
	gz := []byte("GZIP1 mtime=1234567 orig=\"f\"\ncrc=aa len=3\nxyz")
	out := Strip(gz)
	if bytes.Contains(out, []byte("1234567")) {
		t.Errorf("gzip timestamp survived: %s", out)
	}
	if !bytes.HasSuffix(out, []byte("xyz")) {
		t.Errorf("gzip body damaged: %s", out)
	}
}

func TestStripLeavesPlainDataAlone(t *testing.T) {
	plain := []byte("just some bytes \x00\x01")
	if !bytes.Equal(Strip(plain), plain) {
		t.Errorf("plain data modified")
	}
}

func TestTwoBuildsEqualAfterStrip(t *testing.T) {
	// The §6.1 scenario: identical content, different tar timestamps.
	a := archiveWithTimes(1000, 1001)
	b := archiveWithTimes(2000, 2002)
	if bytes.Equal(a, b) {
		t.Fatal("archives should differ before stripping")
	}
	if !bytes.Equal(Strip(a), Strip(b)) {
		t.Errorf("archives still differ after stripping")
	}
}

func TestDescribe(t *testing.T) {
	if got := Describe(archiveWithTimes(5, 0, 9)); got != "2 members with embedded timestamps" {
		t.Errorf("Describe = %q", got)
	}
	if got := Describe([]byte("nope")); got != "not an archive" {
		t.Errorf("Describe plain = %q", got)
	}
}

// Property: Strip is idempotent.
func TestStripIdempotentProperty(t *testing.T) {
	prop := func(times []int64, blobs [][]byte) bool {
		ar := &artar.Archive{}
		for i, mt := range times {
			var data []byte
			if i < len(blobs) {
				data = blobs[i]
			}
			ar.Add(artar.Member{Name: string(rune('a' + i%26)), Mtime: mt, Data: data})
		}
		once := Strip(ar.Pack())
		return bytes.Equal(once, Strip(once))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Strip never changes member names, order or data.
func TestStripPreservesContentProperty(t *testing.T) {
	prop := func(times []int64, blobs [][]byte) bool {
		ar := &artar.Archive{}
		for i := range blobs {
			var mt int64
			if i < len(times) {
				mt = times[i]
			}
			// Avoid nested-archive payloads: those are stripped by design.
			data := blobs[i]
			if artar.IsArchive(data) {
				data = append([]byte("x"), data...)
			}
			ar.Add(artar.Member{Name: string(rune('a' + i%26)), Mtime: mt, Data: data})
		}
		out, err := artar.Unpack(Strip(ar.Pack()))
		if err != nil || len(out.Members) != len(ar.Members) {
			return false
		}
		for i := range ar.Members {
			if out.Members[i].Name != ar.Members[i].Name ||
				!bytes.Equal(out.Members[i].Data, ar.Members[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
