// Package stripnd reimplements Debian's strip-nondeterminism: it clamps the
// timestamps embedded in archive members (tar headers, gzip headers) to a
// fixed value so a *baseline* bitwise comparison is not drowned out by tar
// mtimes. §6.1 applies this workaround to the stock builds only — without
// it, zero packages compare equal; DetTrace output needs no stripping.
package stripnd

import (
	"bytes"
	"fmt"
	"strings"

	"repro/internal/artar"
)

// Strip returns data with every embedded timestamp clamped. Archives are
// processed recursively; gzip-style headers are rewritten; anything else is
// returned unchanged.
func Strip(data []byte) []byte {
	if artar.IsArchive(data) {
		ar, err := artar.Unpack(data)
		if err != nil {
			return data
		}
		for i := range ar.Members {
			ar.Members[i].Mtime = 0
			ar.Members[i].Data = Strip(ar.Members[i].Data)
		}
		return ar.Pack()
	}
	if bytes.HasPrefix(data, []byte("GZIP1 mtime=")) {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			return data
		}
		header := string(data[:nl])
		rest := data[nl:]
		fields := strings.Fields(header)
		for i, f := range fields {
			if strings.HasPrefix(f, "mtime=") {
				fields[i] = "mtime=0"
			}
		}
		return append([]byte(strings.Join(fields, " ")), rest...)
	}
	return data
}

// Describe reports what Strip would change, for debug output.
func Describe(data []byte) string {
	if !artar.IsArchive(data) {
		return "not an archive"
	}
	ar, err := artar.Unpack(data)
	if err != nil {
		return err.Error()
	}
	n := 0
	for _, m := range ar.Members {
		if m.Mtime != 0 {
			n++
		}
	}
	return fmt.Sprintf("%d members with embedded timestamps", n)
}
