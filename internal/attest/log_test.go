package attest

import (
	"net/http/httptest"
	"testing"

	"repro/internal/derive"
)

const testSeed = 77

func testSubject(job uint64) derive.Key {
	return derive.Key{Image: 0xA000 + job, Config: 0xC0}
}

// buildLog seals `epochs` epochs of `perEpoch` admitted records each,
// collectively cosigned by ordinals {0,1,2}, replicated onto every server.
func buildLog(epochs, perEpoch int, servers ...*Server) (*Keyring, *Chain) {
	parts := []int32{0, 1, 2}
	ring := NewKeyring(2, testSeed)
	chain := NewChain()
	job := uint64(1)
	for i := 0; i < epochs; i++ {
		var recs []Record
		for j := 0; j < perEpoch; j++ {
			recs = append(recs, Record{Statement: Statement{
				Subject: testSubject(job), Job: job,
				Output: 0xF000 + job, Ring: job}, Cosigners: parts})
			job++
		}
		e := chain.Seal(recs, parts)
		h := e.BlockHash()
		for _, ord := range parts {
			e.Cosigs = append(e.Cosigs, Cosig{Ord: ord, Sig: NewSigner(ord, testSeed).Cosign(h)})
		}
		for _, s := range servers {
			s.Append(e)
		}
	}
	return ring, chain
}

// TestSkipchainHopsLogarithmic pins the O(log n) proof bound: verifying the
// oldest record in a 64-epoch chain takes at most log2(64)+1 hops from the
// head, with the full skipchain proof level.
func TestSkipchainHopsLogarithmic(t *testing.T) {
	srv := NewServer()
	ring, _ := buildLog(64, 1, srv)
	v := NewVerifier(ring, srv)
	vd := v.Verify(testSubject(1), 1, 0xF001)
	if !vd.OK || vd.Level != LevelSkipchain {
		t.Fatalf("oldest record not skipchain-verified: %+v", vd)
	}
	if vd.Hops > 7 {
		t.Fatalf("walked %d hops across 64 epochs, want <= 7 (O(log n))", vd.Hops)
	}
}

// TestVerifierRefutesWrongOutput: cosigned evidence for a different output
// yields Refuted, which is strictly stronger than failing to verify.
func TestVerifierRefutesWrongOutput(t *testing.T) {
	srv := NewServer()
	ring, _ := buildLog(4, 2, srv)
	v := NewVerifier(ring, srv)
	vd := v.Verify(testSubject(3), 3, 0xBAD)
	if vd.OK {
		t.Fatalf("false claim verified: %+v", vd)
	}
	if !vd.Refuted {
		t.Fatalf("false claim not refuted: %+v", vd)
	}
}

// TestVerifierUnknownSubject: a subject the log never admitted is
// Unverifiable — not refuted (no evidence either way), never OK.
func TestVerifierUnknownSubject(t *testing.T) {
	srv := NewServer()
	ring, _ := buildLog(3, 1, srv)
	v := NewVerifier(ring, srv)
	vd := v.Verify(derive.Key{Image: 0xDEAD, Config: 0xBEEF}, 99, 1)
	if vd.OK || vd.Refuted || vd.Level != LevelUnverifiable {
		t.Fatalf("unknown subject: %+v", vd)
	}
}

// TestEquivocatingServerCaught: a split-view replica alternating honest and
// forked chains cannot get a lie past the verifier — the forked blocks fail
// the collective-signature check (BadBlocks), and an honest replica still
// proves the truth.
func TestEquivocatingServerCaught(t *testing.T) {
	evil, honest := NewEquivocatingServer(), NewServer()
	ring, _ := buildLog(6, 1, evil, honest)
	v := NewVerifier(ring, evil, honest)
	for job := uint64(1); job <= 6; job++ {
		vd := v.Verify(testSubject(job), job, 0xF000+job)
		if !vd.OK || vd.Refuted {
			t.Fatalf("job %d: honest claim not verified despite honest replica: %+v", job, vd)
		}
	}
	if v.BadBlocks == 0 {
		t.Fatal("equivocating replica never caught (BadBlocks = 0)")
	}
}

// TestVerifierDegradesToEpochProof: when no replica can sustain a head-linked
// walk (the head is not yet cosigned — a lagging replica), a lone cosigned
// epoch still proves admission at the weaker LevelEpoch.
func TestVerifierDegradesToEpochProof(t *testing.T) {
	srv := NewServer()
	ring, chain := buildLog(3, 1, srv)
	// Seal one more epoch but never collect cosignatures — an unsigned
	// provisional head.
	srv.Append(chain.Seal([]Record{{Statement: Statement{
		Subject: testSubject(9), Job: 9, Output: 0xF009}}}, []int32{0, 1, 2}))
	v := NewVerifier(ring, srv)
	vd := v.Verify(testSubject(1), 1, 0xF001)
	if !vd.OK || vd.Level != LevelEpoch {
		t.Fatalf("want degraded epoch-level proof, got %+v", vd)
	}
	// The unsigned epoch itself must not verify at any level.
	if vd := v.Verify(testSubject(9), 9, 0xF009); vd.OK {
		t.Fatalf("uncosigned epoch verified: %+v", vd)
	}
}

// TestVerifierServerDiesMidQuery: a replica killed mid-walk steps the proof
// down — to another replica, then to Unverifiable — and never yields a false
// Verified.
func TestVerifierServerDiesMidQuery(t *testing.T) {
	srv := NewServer()
	ring, _ := buildLog(8, 1, srv)
	v := NewVerifier(ring, srv)
	if vd := v.Verify(testSubject(1), 1, 0xF001); !vd.OK || vd.Level != LevelSkipchain {
		t.Fatalf("healthy server: %+v", vd)
	}
	srv.KillAfter(2) // dies inside the next walk
	vd := v.Verify(testSubject(1), 1, 0xF001)
	if vd.OK {
		t.Fatalf("dead-server verification returned OK: %+v", vd)
	}
	if vd.Level != LevelUnverifiable {
		t.Fatalf("want explicit Unverifiable, got %+v", vd)
	}
	// Same schedule with a healthy second replica: full proof survives.
	srv2, srv3 := NewServer(), NewServer()
	ring, _ = buildLog(8, 1, srv2, srv3)
	v = NewVerifier(ring, srv2, srv3)
	srv2.KillAfter(2)
	if vd := v.Verify(testSubject(1), 1, 0xF001); !vd.OK || vd.Level != LevelSkipchain {
		t.Fatalf("failover to healthy replica: %+v", vd)
	}
}

// TestVerifierAllServersDead: the ladder bottoms out at an explicit
// Unverifiable verdict.
func TestVerifierAllServersDead(t *testing.T) {
	a, b := NewServer(), NewServer()
	ring, _ := buildLog(2, 1, a, b)
	a.Kill()
	b.Kill()
	v := NewVerifier(ring, a, b)
	vd := v.Verify(testSubject(1), 1, 0xF001)
	if vd.OK || vd.Refuted || vd.Level != LevelUnverifiable {
		t.Fatalf("dead log: %+v", vd)
	}
}

// TestHTTPVerificationService runs the whole surface over net/http: log
// replicas behind NewLogHandler, the verifier talking HTTPLogClient, and the
// public verify endpoint — one GET replaces one rebuild.
func TestHTTPVerificationService(t *testing.T) {
	srv := NewServer()
	ring, _ := buildLog(5, 2, srv)
	ts := httptest.NewServer(NewLogHandler(srv))
	defer ts.Close()
	v := NewVerifier(ring, NewHTTPLogClient(ts.URL))
	vd := v.Verify(testSubject(3), 3, 0xF003)
	if !vd.OK || vd.Level != LevelSkipchain {
		t.Fatalf("remote skipchain proof: %+v", vd)
	}
	if vd := v.Verify(testSubject(3), 3, 0xBAD); vd.OK || !vd.Refuted {
		t.Fatalf("remote refutation: %+v", vd)
	}
	// Killed replica answers 503; the client maps it to ErrServerDown and
	// the verdict degrades exactly as in-process.
	srv.Kill()
	v2 := NewVerifier(ring, NewHTTPLogClient(ts.URL))
	if vd := v2.Verify(testSubject(3), 3, 0xF003); vd.OK || vd.Level != LevelUnverifiable {
		t.Fatalf("remote dead replica: %+v", vd)
	}
}
