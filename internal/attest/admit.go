package attest

import (
	"fmt"
	"sort"

	"repro/internal/replica"
)

// Admission is the outcome of judging one job's attestation pool.
type Admission struct {
	// Record is the admitted statement plus its audit trail; valid only when
	// OK is true.
	Record Record
	// Dissent names every builder ordinal whose attestation disagreed with
	// the quorum (wrong bits, invalid signature, or withheld) — the set the
	// coordinator quarantines. Populated whether or not a quorum formed.
	Dissent []int32
	// OK reports whether at least k mutually-agreeing valid attestations
	// certified the statement.
	OK bool
}

// Admit runs k-of-n quorum admission over one job's attestation pool:
// the primary's claim plus every rebuilder's independent re-execution,
// judged by replica.QuorumDissent over the statement digests. An
// attestation with an invalid signature is demoted to an errored vote
// before counting (a corrupted attestation can never help a quorum), and
// expected ordinals that never delivered (WithholdCosign) enter as errored
// votes so they are named in the dissent. Under determinism every honest
// builder computes the identical statement, so k honest participants always
// agree and any lie is a minority — the quorum never admits it.
//
// expected lists the ordinals whose attestations were solicited; atts holds
// what actually arrived (same order not required).
func Admit(ring *Keyring, expected []int32, atts []Attestation, k int) Admission {
	byOrd := make(map[int32]Attestation, len(atts))
	for _, a := range atts {
		byOrd[a.Builder] = a
	}
	votes := make([]replica.Result, len(expected))
	for i, ord := range expected {
		a, got := byOrd[ord]
		switch {
		case !got:
			votes[i] = replica.Result{Host: fmt.Sprintf("node-%d", ord), Err: fmt.Errorf("attest: ordinal %d withheld attestation", ord)}
		case !ring.Verify(a):
			votes[i] = replica.Result{Host: fmt.Sprintf("node-%d", ord), Err: fmt.Errorf("attest: ordinal %d signature invalid", ord)}
		default:
			votes[i] = replica.Result{Host: fmt.Sprintf("node-%d", ord), StateHash: fmt.Sprintf("%016x", a.Statement.Digest())}
		}
	}
	_, dissentIdx, ok := replica.QuorumDissent(votes, k)
	adm := Admission{OK: ok}
	dissentSet := make(map[int32]bool, len(dissentIdx))
	for _, i := range dissentIdx {
		adm.Dissent = append(adm.Dissent, expected[i])
		dissentSet[expected[i]] = true
	}
	sort.Slice(adm.Dissent, func(i, j int) bool { return adm.Dissent[i] < adm.Dissent[j] })
	if !ok {
		return adm
	}
	for _, ord := range expected {
		if dissentSet[ord] {
			continue
		}
		adm.Record.Statement = byOrd[ord].Statement
		adm.Record.Cosigners = append(adm.Record.Cosigners, ord)
	}
	sort.Slice(adm.Record.Cosigners, func(i, j int) bool { return adm.Record.Cosigners[i] < adm.Record.Cosigners[j] })
	adm.Record.Dissent = adm.Dissent
	return adm
}
