package attest

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/derive"
)

// This file is the net/http binding of the verification surface — the
// deployment skeleton for serving "is this artifact the honest build of this
// source?" to external consumers. A log server exports read-only JSON
// endpoints (head, epoch, locate); HTTPLogClient implements LogClient over
// them, so the same Verifier runs unchanged against in-process replicas and
// remote ones. The verification service endpoint wraps a Verifier for
// clients that hold nothing but the artifact claim — the millions-of-users
// surface, where one GET replaces one rebuild.

// NewLogHandler serves a log server's query surface:
//
//	GET /head            -> Epoch JSON
//	GET /epoch?i=N       -> Epoch JSON
//	GET /locate?image=&config=&job= -> {"index":N}
//
// A killed server answers 503; clients degrade exactly as in-process ones.
func NewLogHandler(s *Server) http.Handler {
	mux := http.NewServeMux()
	fail := func(w http.ResponseWriter, err error) {
		code := http.StatusNotFound
		if err == ErrServerDown {
			code = http.StatusServiceUnavailable
		}
		http.Error(w, err.Error(), code)
	}
	mux.HandleFunc("/head", func(w http.ResponseWriter, req *http.Request) {
		e, err := s.Head()
		if err != nil {
			fail(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(e)
	})
	mux.HandleFunc("/epoch", func(w http.ResponseWriter, req *http.Request) {
		i, _ := strconv.Atoi(req.URL.Query().Get("i"))
		e, err := s.EpochAt(i)
		if err != nil {
			fail(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(e)
	})
	mux.HandleFunc("/locate", func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		image, _ := strconv.ParseUint(q.Get("image"), 10, 64)
		config, _ := strconv.ParseUint(q.Get("config"), 10, 64)
		job, _ := strconv.ParseUint(q.Get("job"), 10, 64)
		i, err := s.Locate(derive.Key{Image: image, Config: config}, job)
		if err != nil {
			fail(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]int{"index": i})
	})
	return mux
}

// HTTPLogClient implements LogClient against a NewLogHandler base URL.
type HTTPLogClient struct {
	base   string
	client *http.Client
}

// NewHTTPLogClient builds a client for one remote log replica.
func NewHTTPLogClient(base string) *HTTPLogClient {
	return &HTTPLogClient{base: base, client: &http.Client{}}
}

func (c *HTTPLogClient) get(path string, out any) error {
	resp, err := c.client.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusServiceUnavailable {
		return ErrServerDown
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("attest: %s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Head implements LogClient.
func (c *HTTPLogClient) Head() (*Epoch, error) {
	var e Epoch
	if err := c.get("/head", &e); err != nil {
		return nil, err
	}
	return &e, nil
}

// EpochAt implements LogClient.
func (c *HTTPLogClient) EpochAt(i int) (*Epoch, error) {
	var e Epoch
	if err := c.get(fmt.Sprintf("/epoch?i=%d", i), &e); err != nil {
		return nil, err
	}
	return &e, nil
}

// Locate implements LogClient.
func (c *HTTPLogClient) Locate(subject derive.Key, job uint64) (int, error) {
	var out map[string]int
	path := fmt.Sprintf("/locate?image=%d&config=%d&job=%d", subject.Image, subject.Config, job)
	if err := c.get(path, &out); err != nil {
		return 0, err
	}
	return out["index"], nil
}

// NewVerifyHandler serves the verification service:
//
//	GET /verify?image=&config=&job=&output= -> Verdict JSON
//
// plus "level" and "ok" as flat fields for curl-ability.
func NewVerifyHandler(v *Verifier) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		image, _ := strconv.ParseUint(q.Get("image"), 10, 64)
		config, _ := strconv.ParseUint(q.Get("config"), 10, 64)
		job, _ := strconv.ParseUint(q.Get("job"), 10, 64)
		output, _ := strconv.ParseUint(q.Get("output"), 10, 64)
		verdict := v.Verify(derive.Key{Image: image, Config: config}, job, output)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"level":   verdict.Level.String(),
			"ok":      verdict.OK,
			"refuted": verdict.Refuted,
			"hops":    verdict.Hops,
			"detail":  verdict.Detail,
		})
	})
}
