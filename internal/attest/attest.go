// Package attest is the Byzantine-robust attestation chain: the
// rebuild-free verification surface of the reproducible build farm
// (DESIGN.md §4i, the ROADMAP's CHAINIAC-style transparency log).
//
// The paper's determinism guarantee makes every honest rebuild of the same
// derivation bit-identical; this package turns that into a checkable,
// adversary-tolerant claim. Farm workers emit signed attestations binding
// (source Merkle root, config hash, output hash, flight-recorder ring
// digest) for every completed build; independent rebuilder nodes re-execute
// and co-sign; a k-of-n quorum admits exactly one statement per job while
// naming every dissenting builder; and admitted statements land in an
// epoch-batched, hash-chained transparency log with skipchain back-links so
// a verifier checks any epoch in O(log n) link hops. Consumers then answer
// "is this artifact the honest build of this source?" from the log alone —
// never by rebuilding — and the whole pipeline stays correct under lying
// builders, corrupted attestations, equivocating log servers and withheld
// co-signatures, because determinism gives honesty a canonical value to
// agree on: any lie is a minority of one bit-for-bit disagreement.
package attest

import (
	"crypto/ed25519"
	"encoding/binary"
	"fmt"

	"repro/internal/derive"
)

// Role tags which execution an attestation certifies.
type Role uint8

const (
	// RolePrimary is the worker that built the job in the farm schedule.
	RolePrimary Role = iota + 1
	// RoleRebuilder is an independent node that re-executed the derivation
	// to co-sign (or refute) the primary's claim.
	RoleRebuilder
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RolePrimary:
		return "primary"
	case RoleRebuilder:
		return "rebuilder"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// Statement is the claim an attestation signs: this derivation subject
// (source Merkle root + behaviour-relevant config hash, the unified
// derive.Key the whole cache hierarchy shares), executed as this job,
// produced this output with this logical flight-recorder digest. Every
// field is a pure function of the declared build inputs, so every honest
// builder computes the same statement — which is exactly what makes a lie
// detectable by majority.
type Statement struct {
	// Subject is the derivation identity: the image Merkle tree hash and
	// core.ConfigHash, shared verbatim with the template/seal caches so the
	// attested artifact and the cached prepared state can never drift in
	// what "the same build" means.
	Subject derive.Key
	// Job is the farm job ID the build ran as.
	Job uint64
	// Output is the artifact digest (buildsim's protocol-level out digest).
	Output uint64
	// Ring is the run's logical flight-recorder digest: a fold of the
	// schedule-pure timeline observables (action count and the weighted
	// event-class counters). Raw ring bytes are mechanism-level — forked
	// boots record COW breaks cold boots don't, recovered runs replay a
	// suffix — so the attested digest covers the logical content the
	// diagnoser also aligns on, which X15/X16 pin schedule-independent.
	Ring uint64
}

// appendStatement is the canonical signing encoding of a statement.
func appendStatement(buf []byte, st Statement) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, st.Subject.Image)
	buf = binary.LittleEndian.AppendUint64(buf, st.Subject.Config)
	buf = binary.LittleEndian.AppendUint64(buf, st.Job)
	buf = binary.LittleEndian.AppendUint64(buf, st.Output)
	buf = binary.LittleEndian.AppendUint64(buf, st.Ring)
	return buf
}

// Digest folds the statement into one 64-bit content address.
func (st Statement) Digest() uint64 {
	return derive.DigestBytes(appendStatement(nil, st))
}

// Attestation is one builder's signed statement.
type Attestation struct {
	Statement
	// Builder is the signing node's farm ordinal (0 = the coordinator,
	// signing as rebuilder of last resort).
	Builder int32
	Role    Role
	// Sig is the ed25519 signature over the canonical statement encoding
	// plus (Builder, Role) — a co-signature is bound to who gave it and in
	// which role, so a replayed primary signature cannot impersonate an
	// independent rebuild.
	Sig []byte
}

// signedBytes is the exact byte string an attestation signs.
func signedBytes(st Statement, builder int32, role Role) []byte {
	buf := make([]byte, 0, 5*8+4+1)
	buf = appendStatement(buf, st)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(builder))
	buf = append(buf, byte(role))
	return buf
}

// attWireSize is the fixed portion of the attestation wire encoding; Sig is
// a length-prefixed tail.
const attWireSize = 5*8 + 4 + 1

// MarshalBinary encodes the attestation in the compact little-endian wire
// format (the attestation envelope of the farm protocol's result and
// co-sign messages).
func (a *Attestation) MarshalBinary() []byte {
	buf := make([]byte, 0, attWireSize+2+len(a.Sig))
	buf = appendStatement(buf, a.Statement)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(a.Builder))
	buf = append(buf, byte(a.Role))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(a.Sig)))
	buf = append(buf, a.Sig...)
	return buf
}

// DecodeAttestation decodes the wire format produced by MarshalBinary.
// Truncated or trailing-garbage inputs error; they never panic.
func DecodeAttestation(buf []byte) (*Attestation, error) {
	if len(buf) < attWireSize+2 {
		return nil, fmt.Errorf("attest: short attestation: %d bytes", len(buf))
	}
	a := &Attestation{}
	a.Subject.Image = binary.LittleEndian.Uint64(buf[0:])
	a.Subject.Config = binary.LittleEndian.Uint64(buf[8:])
	a.Job = binary.LittleEndian.Uint64(buf[16:])
	a.Output = binary.LittleEndian.Uint64(buf[24:])
	a.Ring = binary.LittleEndian.Uint64(buf[32:])
	a.Builder = int32(binary.LittleEndian.Uint32(buf[40:]))
	a.Role = Role(buf[44])
	slen := int(binary.LittleEndian.Uint16(buf[attWireSize:]))
	if len(buf) != attWireSize+2+slen {
		return nil, fmt.Errorf("attest: attestation length %d, want %d", len(buf), attWireSize+2+slen)
	}
	if slen > 0 {
		a.Sig = append([]byte(nil), buf[attWireSize+2:]...)
	}
	return a, nil
}

// Signer holds one node's attestation keypair. Keys derive deterministically
// from (ordinal, farm key seed) — a declared input like every other seed in
// the system — so the same farm configuration yields the same keyring on
// every host, and signatures themselves are deterministic (ed25519 is
// RFC 8032 deterministic), keeping the whole attestation plane inside the
// reproducibility contract.
type Signer struct {
	ord  int32
	priv ed25519.PrivateKey
}

// keyMaterial expands (ordinal, seed) into an ed25519 seed.
func keyMaterial(ord int32, seed uint64) []byte {
	material := make([]byte, ed25519.SeedSize)
	h := derive.DigestU64(0, 0xA77E57, uint64(uint32(ord)), seed)
	for i := 0; i < ed25519.SeedSize; i += 8 {
		h = derive.DigestU64(h, uint64(i))
		binary.LittleEndian.PutUint64(material[i:], h)
	}
	return material
}

// NewSigner derives the node's deterministic signing key.
func NewSigner(ord int32, seed uint64) *Signer {
	return &Signer{ord: ord, priv: ed25519.NewKeyFromSeed(keyMaterial(ord, seed))}
}

// Ordinal is the signer's node ordinal.
func (s *Signer) Ordinal() int32 { return s.ord }

// Attest signs the statement in the given role.
func (s *Signer) Attest(st Statement, role Role) Attestation {
	return Attestation{Statement: st, Builder: s.ord, Role: role,
		Sig: ed25519.Sign(s.priv, signedBytes(st, s.ord, role))}
}

// Cosign signs an epoch block hash (the witness half of the CHAINIAC
// collective signature: every live honest node endorses each sealed epoch).
func (s *Signer) Cosign(blockHash uint64) []byte {
	return ed25519.Sign(s.priv, cosignBytes(blockHash))
}

func cosignBytes(blockHash uint64) []byte {
	buf := make([]byte, 0, 8+6)
	buf = append(buf, "epoch:"...)
	return binary.LittleEndian.AppendUint64(buf, blockHash)
}

// Keyring maps node ordinals to their attestation public keys. Because keys
// derive from declared inputs, any party — coordinator, worker, external
// verifier — reconstructs the same ring from (node count, key seed) alone;
// no key distribution protocol is required.
type Keyring struct {
	seed uint64
	pubs map[int32]ed25519.PublicKey
}

// NewKeyring builds the ring for the coordinator (ordinal 0) and workers
// 1..nodes.
func NewKeyring(nodes int, seed uint64) *Keyring {
	r := &Keyring{seed: seed, pubs: make(map[int32]ed25519.PublicKey, nodes+1)}
	for ord := 0; ord <= nodes; ord++ {
		r.pubs[int32(ord)] = NewSigner(int32(ord), seed).priv.Public().(ed25519.PublicKey)
	}
	return r
}

// Verify reports whether the attestation's signature is valid under the
// ring's key for its builder. An unknown builder or a corrupted signature
// fails closed.
func (r *Keyring) Verify(a Attestation) bool {
	pub, ok := r.pubs[a.Builder]
	if !ok || len(a.Sig) != ed25519.SignatureSize {
		return false
	}
	return ed25519.Verify(pub, signedBytes(a.Statement, a.Builder, a.Role), a.Sig)
}

// VerifyCosign reports whether sig is ord's valid endorsement of the epoch
// block hash.
func (r *Keyring) VerifyCosign(ord int32, blockHash uint64, sig []byte) bool {
	pub, ok := r.pubs[ord]
	if !ok || len(sig) != ed25519.SignatureSize {
		return false
	}
	return ed25519.Verify(pub, cosignBytes(blockHash), sig)
}

// Size is the number of keys in the ring (coordinator included).
func (r *Keyring) Size() int { return len(r.pubs) }
