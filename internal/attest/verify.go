package attest

import (
	"fmt"

	"repro/internal/derive"
)

// Level is the strength of proof a verification achieved.
type Level uint8

const (
	// LevelUnverifiable: no quorum-cosigned evidence could be obtained. The
	// verifier refuses to guess — this is the explicit bottom of the
	// degradation ladder, never a silent false positive.
	LevelUnverifiable Level = iota
	// LevelEpoch: a single epoch block with a valid collective signature
	// contained the subject, but the hash-chain walk from the log head could
	// not be completed (servers died mid-query).
	LevelEpoch
	// LevelSkipchain: the full proof — a cosigned head, an O(log n)
	// skipchain walk to the target epoch, and the subject's record under the
	// target's statement root.
	LevelSkipchain
)

// String names the proof level.
func (l Level) String() string {
	switch l {
	case LevelSkipchain:
		return "skipchain"
	case LevelEpoch:
		return "epoch"
	default:
		return "unverifiable"
	}
}

// Verdict answers "is this artifact the honest build of this source?".
// OK is true only when quorum-cosigned log evidence matches the claimed
// output. Refuted is true when such evidence PROVES the claim wrong (the log
// admitted a different output for the subject) — strictly stronger than
// merely failing to verify. Hops counts chain links followed, pinning the
// O(log n) bound.
type Verdict struct {
	Level   Level
	OK      bool
	Refuted bool
	Hops    int
	Detail  string
}

// LogClient is the verifier's view of one transparency-log replica —
// satisfied by *Server in-process and by the net/http client in http.go.
// Every answer is untrusted: the verifier checks cosignatures and hash
// links itself, so a Byzantine server can at worst fail to help.
type LogClient interface {
	Head() (*Epoch, error)
	EpochAt(i int) (*Epoch, error)
	Locate(subject derive.Key, job uint64) (int, error)
}

// Verifier answers artifact queries from the transparency log alone — no
// rebuild. It holds the deterministic keyring (reconstructable from the
// farm's declared inputs) and a set of log replicas to try in order.
type Verifier struct {
	ring    *Keyring
	servers []LogClient
	// BadBlocks counts blocks rejected for invalid collective signatures —
	// every equivocated fork the verifier caught.
	BadBlocks int
	// Queries counts log-server round trips issued.
	Queries int
	// cosignOK memoizes collective-signature verdicts by block hash. Safe
	// against equivocation because the key IS the content: a forked block
	// hashes differently and gets its own (failing) entry. This is what
	// keeps repeated verification cheap — each epoch's signatures are
	// checked once per verifier lifetime, not once per query.
	cosignOK map[uint64]bool
}

// NewVerifier builds a verifier over the keyring and log replicas.
func NewVerifier(ring *Keyring, servers ...LogClient) *Verifier {
	return &Verifier{ring: ring, servers: servers, cosignOK: make(map[uint64]bool)}
}

// cosigned reports whether the epoch carries a valid collective signature: a
// strict majority of its participants, the coordinator (ordinal 0) among
// them, each verifying against the deterministic keyring. A forked block
// cannot satisfy this — its tampered BlockHash invalidates every carried
// signature.
func (v *Verifier) cosigned(e *Epoch) bool {
	if len(e.Participants) == 0 {
		return false
	}
	h := e.BlockHash()
	if ok, hit := v.cosignOK[h]; hit {
		return ok
	}
	seen := make(map[int32]bool, len(e.Cosigs))
	valid, coord := 0, false
	for _, c := range e.Cosigs {
		if seen[c.Ord] || !v.ring.VerifyCosign(c.Ord, h, c.Sig) {
			continue
		}
		seen[c.Ord] = true
		valid++
		if c.Ord == 0 {
			coord = true
		}
	}
	ok := coord && valid > len(e.Participants)/2
	v.cosignOK[h] = ok
	return ok
}

// fetch is one counted, checked server query: the block at index i, rejected
// unless its statement root matches its records.
func (v *Verifier) fetch(s LogClient, i int) (*Epoch, error) {
	v.Queries++
	e, err := s.EpochAt(i)
	if err != nil {
		return nil, err
	}
	if statementsRoot(e.Records) != e.Root {
		v.BadBlocks++
		return nil, fmt.Errorf("attest: epoch %d root mismatch", i)
	}
	return e, nil
}

// judge turns a proven record into the final verdict.
func judge(level Level, hops int, r Record, output uint64) Verdict {
	if r.Output == output {
		return Verdict{Level: level, OK: true, Hops: hops,
			Detail: fmt.Sprintf("%s proof, %d cosigners", level, len(r.Cosigners))}
	}
	return Verdict{Level: level, Refuted: true, Hops: hops,
		Detail: fmt.Sprintf("log admits output %016x, not %016x", r.Output, output)}
}

// skipWalk proves the target epoch against a cosigned head by following
// hash links, greedily taking the longest back-link each hop — O(log n)
// hops for an n-epoch chain. Every fetched block must hash to the link that
// named it, so one cosignature check (the head's) covers the whole walk.
func (v *Verifier) skipWalk(s LogClient, head *Epoch, target int) (*Epoch, int, error) {
	cur, hops := head, 0
	for cur.Index > target {
		// Longest available link not overshooting the target: Skip[k] spans
		// 2^(k+1) epochs, Prev spans 1.
		next, want := cur.Index-1, cur.Prev
		for k := len(cur.Skip) - 1; k >= 0; k-- {
			if idx := cur.Index - (2 << k); idx >= target {
				next, want = idx, cur.Skip[k]
				break
			}
		}
		e, err := v.fetch(s, next)
		if err != nil {
			return nil, hops, err
		}
		if e.BlockHash() != want {
			v.BadBlocks++
			return nil, hops, fmt.Errorf("attest: epoch %d breaks chain link", next)
		}
		cur, hops = e, hops+1
	}
	return cur, hops, nil
}

// Verify answers whether the log certifies (subject, job) → output,
// degrading gracefully as servers fail:
//
//	skipchain proof → single-epoch proof → explicit Unverifiable.
//
// Each server is tried in turn for the full proof (locate, cosigned head,
// skip-walk, record check); if no server can sustain a walk, each is tried
// for a lone cosigned target epoch; if that also fails the verdict is
// Unverifiable with OK=false — never a false positive, because OK requires
// a valid collective signature no Byzantine minority can forge.
func (v *Verifier) Verify(subject derive.Key, job, output uint64) Verdict {
	var lastErr error
	for _, s := range v.servers {
		v.Queries++
		target, err := s.Locate(subject, job)
		if err != nil {
			lastErr = err
			continue
		}
		v.Queries++
		head, err := s.Head()
		if err != nil {
			lastErr = err
			continue
		}
		if statementsRoot(head.Records) != head.Root || !v.cosigned(head) {
			v.BadBlocks++
			lastErr = fmt.Errorf("attest: head %d not honestly cosigned", head.Index)
			continue
		}
		if target > head.Index {
			lastErr = fmt.Errorf("attest: located epoch %d beyond head %d", target, head.Index)
			continue
		}
		e, hops, err := v.skipWalk(s, head, target)
		if err != nil {
			lastErr = err
			continue
		}
		r, ok := e.Contains(subject, job)
		if !ok {
			lastErr = fmt.Errorf("attest: epoch %d lacks subject", target)
			continue
		}
		return judge(LevelSkipchain, hops, r, output)
	}
	// Degraded pass: any single cosigned epoch containing the subject still
	// proves admission (the collective signature covers the root), just
	// without head linkage.
	for _, s := range v.servers {
		v.Queries++
		target, err := s.Locate(subject, job)
		if err != nil {
			continue
		}
		e, err := v.fetch(s, target)
		if err != nil {
			continue
		}
		if !v.cosigned(e) {
			v.BadBlocks++
			continue
		}
		if r, ok := e.Contains(subject, job); ok {
			return judge(LevelEpoch, 0, r, output)
		}
	}
	detail := "no quorum-cosigned evidence reachable"
	if lastErr != nil {
		detail = lastErr.Error()
	}
	return Verdict{Level: LevelUnverifiable, Detail: detail}
}
