package attest

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/derive"
)

// Record is one admitted statement plus its admission audit trail. Only the
// Statement is covered by the chain hashes and compared across fault
// schedules: who co-signed and who dissented is mechanism-level accounting
// (WHERE the quorum came from), and a Byzantine schedule legitimately moves
// it — quarantining a liar re-places later work — without moving a single
// admitted bit.
type Record struct {
	Statement
	// Cosigners are the ordinals whose attestations matched the admitted
	// statement (sorted ascending; includes the primary when honest).
	Cosigners []int32
	// Dissent are the ordinals the admission named as lying, corrupted or
	// withholding — the quarantined set (sorted ascending).
	Dissent []int32
}

// Cosig is one node's endorsement of a sealed epoch block.
type Cosig struct {
	Ord int32  `json:"ord"`
	Sig []byte `json:"sig"`
}

// Epoch is one sealed batch of admitted statements: a block of the
// hash-chained transparency log. Prev links the previous block; Skip holds
// back-links to the blocks 2^k epochs back for every 2^k <= Index, so a
// verifier walks head->target in O(log n) hops, CHAINIAC-style. Cosigs is
// the collective signature over the block hash: the coordinator (ordinal 0,
// the log authority) plus every live honest worker at seal time.
type Epoch struct {
	Index int `json:"index"`
	// Prev is the previous block's hash (0 for the genesis epoch).
	Prev uint64 `json:"prev"`
	// Skip[k] is the hash of the block at Index - 2^(k+1); Prev covers the
	// 2^0 link. Only links that land at index >= 0 are present.
	Skip []uint64 `json:"skip,omitempty"`
	// Root commits the admitted statements (and nothing else — see Record).
	Root    uint64   `json:"root"`
	Records []Record `json:"records"`
	// Participants are the ordinals eligible to co-sign at seal time
	// (coordinator included); a valid block needs cosignatures from a
	// majority of them, the coordinator's among them.
	Participants []int32 `json:"participants"`
	Cosigs       []Cosig `json:"cosigs"`
}

// statementsRoot commits an epoch's admitted statements in record order.
func statementsRoot(records []Record) uint64 {
	h := derive.DigestU64(0, 0xE90C4)
	for _, r := range records {
		h = derive.DigestU64(h, r.Statement.Digest())
	}
	return h
}

// BlockHash is the epoch's chain hash: index, previous link, every skip
// link, the statements root and the participant set. Cosignatures sign this
// value, so a forked block with any tampered statement or severed link
// cannot reuse the honest quorum's signatures.
func (e *Epoch) BlockHash() uint64 {
	h := derive.DigestU64(0, 0xB10C, uint64(e.Index), e.Prev)
	h = derive.DigestU64(h, uint64(len(e.Skip)))
	h = derive.DigestU64(h, e.Skip...)
	h = derive.DigestU64(h, e.Root)
	for _, p := range e.Participants {
		h = derive.DigestU64(h, uint64(uint32(p)))
	}
	return h
}

// Contains returns the record matching (subject, job), if present.
func (e *Epoch) Contains(subject derive.Key, job uint64) (Record, bool) {
	for _, r := range e.Records {
		if r.Subject == subject && r.Job == job {
			return r, true
		}
	}
	return Record{}, false
}

// Chain builds the log: it seals admitted records into epochs and computes
// the skip links. The coordinator owns the chain; log servers replicate the
// sealed blocks.
type Chain struct {
	blocks []*Epoch
	hashes []uint64 // blocks[i].BlockHash(), memoized at seal
}

// NewChain returns an empty chain.
func NewChain() *Chain { return &Chain{} }

// Seal closes one epoch over the records: links it to the chain head,
// computes the skip back-links, and commits the statements root. The caller
// attaches participants and cosignatures before publishing; both are covered
// by BlockHash, so Seal leaves Cosigs empty and the caller must not mutate
// Participants afterwards without re-collecting signatures.
func (c *Chain) Seal(records []Record, participants []int32) *Epoch {
	e := &Epoch{Index: len(c.blocks), Records: records,
		Root: statementsRoot(records), Participants: participants}
	if e.Index > 0 {
		e.Prev = c.hashes[e.Index-1]
	}
	for step := 2; step <= e.Index; step *= 2 {
		e.Skip = append(e.Skip, c.hashes[e.Index-step])
	}
	c.blocks = append(c.blocks, e)
	c.hashes = append(c.hashes, e.BlockHash())
	return e
}

// Blocks exposes the sealed chain (for replication to log servers).
func (c *Chain) Blocks() []*Epoch { return c.blocks }

// AdmittedSet flattens the chain into its admitted statements, sorted by
// job — THE value the X20 equivalence gates compare across fault schedules,
// node counts and slot counts.
func (c *Chain) AdmittedSet() []Statement {
	var out []Statement
	for _, b := range c.blocks {
		for _, r := range b.Records {
			out = append(out, r.Statement)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Job < out[j].Job })
	return out
}

// ErrServerDown is returned by a killed log server: the query never
// completes, and the verifier must degrade to another server or a weaker
// proof.
var ErrServerDown = fmt.Errorf("attest: log server down")

// Server is one transparency-log replica. The honest server stores the
// sealed blocks verbatim. An equivocating server (the EquivocateEpoch fault)
// maintains a second, tampered chain and alternates which one it presents —
// the classic split-view attack — but it cannot forge the quorum's
// cosignatures over its forked block hashes, which is exactly how verifiers
// catch it. Kill and KillAfter model the availability fault plane: a killed
// server errors every query; KillAfter(n) lets n more queries through first,
// so a verifier can lose a server mid-walk.
type Server struct {
	mu     sync.Mutex
	chain  []*Epoch
	forked []*Epoch
	// equivocate alternates answers between the honest and forked chains.
	equivocate bool
	flip       int
	down       bool
	// killAfter counts down per query when > 0; reaching 0 kills the server.
	killAfter int
}

// NewServer returns an empty honest log server.
func NewServer() *Server { return &Server{} }

// NewEquivocatingServer returns a server that presents a tampered fork to
// every other query.
func NewEquivocatingServer() *Server { return &Server{equivocate: true} }

// Append replicates one sealed block onto the server. The equivocating
// server additionally stores a forked copy whose latest record's output is
// flipped — re-rooted and re-linked so the fork is internally consistent,
// but necessarily missing the honest quorum's cosignatures.
func (s *Server) Append(e *Epoch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.chain = append(s.chain, e)
	if !s.equivocate {
		return
	}
	fork := *e
	fork.Records = append([]Record(nil), e.Records...)
	if len(fork.Records) > 0 {
		lie := fork.Records[len(fork.Records)-1]
		lie.Output ^= 0xEC01BAD
		fork.Records[len(fork.Records)-1] = lie
	}
	fork.Root = statementsRoot(fork.Records)
	if n := len(s.forked); n > 0 {
		fork.Prev = s.forked[n-1].BlockHash()
	}
	// Cosigs carried over from the honest block no longer match the forked
	// BlockHash — the fork is detectable by any verifier with the keyring.
	s.forked = append(s.forked, &fork)
}

// Kill takes the server down: every subsequent query errors.
func (s *Server) Kill() {
	s.mu.Lock()
	s.down = true
	s.mu.Unlock()
}

// KillAfter lets n more queries succeed, then kills the server — the
// "killed mid-query" schedule of the verifier degradation tests.
func (s *Server) KillAfter(n int) {
	s.mu.Lock()
	s.killAfter = n + 1
	s.mu.Unlock()
}

// query gates one request on the availability plane. Caller holds s.mu.
func (s *Server) queryLocked() error {
	if s.killAfter > 0 {
		s.killAfter--
		if s.killAfter == 0 {
			s.down = true
		}
	}
	if s.down {
		return ErrServerDown
	}
	return nil
}

// view picks which chain this query sees.
func (s *Server) viewLocked() []*Epoch {
	if s.equivocate {
		s.flip++
		if s.flip%2 == 0 {
			return s.forked
		}
	}
	return s.chain
}

// Head returns the server's chain head.
func (s *Server) Head() (*Epoch, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.queryLocked(); err != nil {
		return nil, err
	}
	view := s.viewLocked()
	if len(view) == 0 {
		return nil, fmt.Errorf("attest: empty log")
	}
	return view[len(view)-1], nil
}

// EpochAt returns the block at index i.
func (s *Server) EpochAt(i int) (*Epoch, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.queryLocked(); err != nil {
		return nil, err
	}
	view := s.viewLocked()
	if i < 0 || i >= len(view) {
		return nil, fmt.Errorf("attest: no epoch %d", i)
	}
	return view[i], nil
}

// Locate returns the index of the epoch containing (subject, job), or an
// error. The answer is an untrusted hint: a lying server merely sends the
// verifier to an epoch whose proof then fails to contain the subject.
func (s *Server) Locate(subject derive.Key, job uint64) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.queryLocked(); err != nil {
		return 0, err
	}
	for _, b := range s.viewLocked() {
		if _, ok := b.Contains(subject, job); ok {
			return b.Index, nil
		}
	}
	return 0, fmt.Errorf("attest: subject not in log")
}
