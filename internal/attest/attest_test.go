package attest

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/derive"
)

func sampleStatement() Statement {
	return Statement{
		Subject: derive.Key{Image: 0xABCDEF0123, Config: 0xC0FFEE},
		Job:     7, Output: 0xFEEDFACECAFEBEEF, Ring: 0x1234567890,
	}
}

// TestSignVerifyRoundTrip: an honest attestation verifies; every field
// tamper, role swap, or ordinal swap fails closed.
func TestSignVerifyRoundTrip(t *testing.T) {
	ring := NewKeyring(4, 99)
	for ord := int32(0); ord <= 4; ord++ {
		s := NewSigner(ord, 99)
		a := s.Attest(sampleStatement(), RoleRebuilder)
		if !ring.Verify(a) {
			t.Fatalf("ordinal %d: honest attestation rejected", ord)
		}
		tampered := a
		tampered.Statement.Output ^= 1
		if ring.Verify(tampered) {
			t.Fatalf("ordinal %d: tampered output accepted", ord)
		}
		tampered = a
		tampered.Role = RolePrimary
		if ring.Verify(tampered) {
			t.Fatalf("ordinal %d: swapped role accepted", ord)
		}
		tampered = a
		tampered.Builder = (ord + 1) % 5
		if ring.Verify(tampered) {
			t.Fatalf("ordinal %d: swapped builder accepted", ord)
		}
		tampered = a
		tampered.Sig = append([]byte(nil), a.Sig...)
		tampered.Sig[0] ^= 0xFF
		if ring.Verify(tampered) {
			t.Fatalf("ordinal %d: corrupted signature accepted", ord)
		}
	}
}

// TestKeyringFailsClosed: unknown ordinals, empty signatures and foreign
// seeds never verify.
func TestKeyringFailsClosed(t *testing.T) {
	ring := NewKeyring(2, 99)
	a := NewSigner(1, 99).Attest(sampleStatement(), RolePrimary)
	a.Builder = 9 // beyond the keyring
	if ring.Verify(a) {
		t.Fatal("unknown ordinal accepted")
	}
	a = NewSigner(1, 99).Attest(sampleStatement(), RolePrimary)
	a.Sig = nil
	if ring.Verify(a) {
		t.Fatal("missing signature accepted")
	}
	foreign := NewSigner(1, 100).Attest(sampleStatement(), RolePrimary)
	if ring.Verify(foreign) {
		t.Fatal("foreign key seed accepted")
	}
}

// TestDeterministicKeys: signing is a pure function of (ordinal, seed,
// statement) — two independently constructed signers agree bit for bit, so
// any party can reconstruct the keyring from the run's declared inputs.
func TestDeterministicKeys(t *testing.T) {
	a := NewSigner(3, 42).Attest(sampleStatement(), RoleRebuilder)
	b := NewSigner(3, 42).Attest(sampleStatement(), RoleRebuilder)
	if !bytes.Equal(a.Sig, b.Sig) {
		t.Fatal("same (ordinal, seed, statement) produced different signatures")
	}
	c := NewSigner(3, 43).Attest(sampleStatement(), RoleRebuilder)
	if bytes.Equal(a.Sig, c.Sig) {
		t.Fatal("different seeds produced the same signature")
	}
}

// TestCosignRoundTrip covers the epoch co-signature path.
func TestCosignRoundTrip(t *testing.T) {
	ring := NewKeyring(3, 7)
	sig := NewSigner(2, 7).Cosign(0xB10C)
	if !ring.VerifyCosign(2, 0xB10C, sig) {
		t.Fatal("honest cosignature rejected")
	}
	if ring.VerifyCosign(2, 0xB10D, sig) {
		t.Fatal("cosignature accepted for different block hash")
	}
	if ring.VerifyCosign(1, 0xB10C, sig) {
		t.Fatal("cosignature accepted for different ordinal")
	}
}

// TestAttestationCodecRoundTrip: encode/decode is the identity on valid
// attestations.
func TestAttestationCodecRoundTrip(t *testing.T) {
	a := NewSigner(2, 99).Attest(sampleStatement(), RoleRebuilder)
	got, err := DecodeAttestation(a.MarshalBinary())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, &a) {
		t.Fatalf("round trip\n got %+v\nwant %+v", got, &a)
	}
}

// TestAttestationDecodeRejectsTruncation: every strict prefix errors, never
// panics or mis-decodes.
func TestAttestationDecodeRejectsTruncation(t *testing.T) {
	a := NewSigner(1, 5).Attest(sampleStatement(), RolePrimary)
	buf := a.MarshalBinary()
	for n := 0; n < len(buf); n++ {
		if _, err := DecodeAttestation(buf[:n]); err == nil {
			t.Fatalf("decode accepted %d of %d bytes", n, len(buf))
		}
	}
}

// TestAttestationDecodeBitFlips: a flipped bit anywhere either errors or
// yields an attestation the keyring rejects — it can never produce a second
// valid attestation.
func TestAttestationDecodeBitFlips(t *testing.T) {
	ring := NewKeyring(3, 99)
	a := NewSigner(1, 99).Attest(sampleStatement(), RolePrimary)
	buf := a.MarshalBinary()
	for i := range buf {
		mut := append([]byte(nil), buf...)
		mut[i] ^= 0x40
		got, err := DecodeAttestation(mut)
		if err != nil {
			continue
		}
		if reflect.DeepEqual(got, &a) {
			continue // flipped a bit the codec ignores? should not happen
		}
		if ring.Verify(*got) {
			t.Fatalf("bit flip at byte %d produced a second valid attestation", i)
		}
	}
}

// FuzzAttestationDecode: DecodeAttestation never panics, and every accepted
// input re-encodes canonically to itself.
func FuzzAttestationDecode(f *testing.F) {
	f.Add([]byte{})
	a1 := NewSigner(0, 1).Attest(sampleStatement(), RolePrimary)
	a2 := NewSigner(3, 42).Attest(Statement{}, RoleRebuilder)
	f.Add(a1.MarshalBinary())
	f.Add(a2.MarshalBinary())
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := DecodeAttestation(data)
		if err != nil {
			return
		}
		if !bytes.Equal(a.MarshalBinary(), data) {
			t.Fatalf("accepted non-canonical encoding: %x", data)
		}
	})
}
