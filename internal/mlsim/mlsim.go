// Package mlsim models the §7.6 TensorFlow experiments: CPU-only training
// of the alexnet and cifar10 tutorial models with OpenMP-style thread
// parallelism inside one process.
//
// The irreproducibility signature is the training loss trace: every step
// samples its minibatch through OS randomness, so even fully serialized
// native runs log different losses (§6.1). Under DetTrace the trace is a
// pure function of the container seed.
//
// The performance signature is thread scheduling. With workspaces disabled
// DetTrace runs threads one at a time (§5.7), so against 16-way parallel
// native execution it loses the whole parallel speedup (≈12.3× on alexnet,
// ≈11.2× on cifar10) while costing only 1.12×/1.02× against serialized
// native execution. With copy-on-write thread workspaces (the default)
// compute bursts between sync points overlap in physical time, recovering
// most of the parallel speedup (≈5.0×/2.1× vs parallel native). What does
// not shrink is tracer-serialized syscall service: alexnet's 42 runtime
// calls per step are all sync points, so it stays dearer than cifar10 and
// its 4-thread speedup is capped near 2× by the tracer — the Fig. 6
// throttling, now visible per-thread-count. The logical clock stays
// token-serialized in both modes, so the loss trace is bit-identical.
package mlsim

import (
	"fmt"
	"strings"

	"repro/internal/abi"
	"repro/internal/baseimg"
	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/guest"
	"repro/internal/kernel"
	"repro/internal/machine"
)

// Model selects the tutorial workload.
type Model string

// The two §7.6 models.
const (
	Alexnet Model = "alexnet"
	Cifar10 Model = "cifar10"
)

// Models lists both.
var Models = []Model{Alexnet, Cifar10}

// modelShape carries the calibrated workload parameters.
type modelShape struct {
	steps       int   // training steps (actual, weighted)
	weight      int64 // events-per-event scale
	stepWork    int64 // ns of math per step (whole step, all threads)
	sysPerStep  int   // summary-writer and checkpoint-ish calls per step
	parallelEff int64 // percent of step work that parallelizes
}

func shapeOf(m Model) modelShape {
	switch m {
	case Alexnet:
		// Deep convolutions: long steps, relatively frequent summary and
		// prefetch calls.
		return modelShape{steps: 40, weight: 20, stepWork: 1_500_000_000, sysPerStep: 42, parallelEff: 97}
	default: // Cifar10
		// Small model: shorter steps, far fewer runtime calls per unit work.
		return modelShape{steps: 40, weight: 20, stepWork: 1_500_000_000, sysPerStep: 7, parallelEff: 97}
	}
}

// Main is the guest program: `tf_train <model> <threads>`.
func Main(p *guest.Proc) int {
	argv := p.Argv()
	if len(argv) < 3 {
		p.Eprintf("usage: tf_train <alexnet|cifar10> <threads>\n")
		return 2
	}
	model := Model(argv[1])
	threads := atoi(argv[2], 1)
	sh := shapeOf(model)

	// Dataset "download" check and session setup.
	if p.Access("/data/dataset.bin") != abi.OK {
		p.Eprintf("tf_train: dataset missing\n")
		return 1
	}
	lossFd, err := p.Open("/data/loss.csv", abi.OCreat|abi.OWronly|abi.OTrunc, 0o644)
	if err != abi.OK {
		return 1
	}
	defer p.Close(lossFd)

	// Weights are initialized from OS randomness, and the input pipeline
	// shuffles with it too — the §7.6 irreproducibility.
	seedBuf := make([]byte, 8)
	p.GetRandom(seedBuf)
	var seed uint64
	for _, b := range seedBuf {
		seed = seed<<8 | uint64(b)
	}

	const (
		wordWork = 0x200 // barrier: work generation
		wordDone = 0x201 // barrier: completions
	)
	serialWork := sh.stepWork * (100 - sh.parallelEff) / 100
	parWork := sh.stepWork - serialWork

	// pipelineShare splits the per-step input-pipeline calls across the
	// pool: thread idx gets sysPerStep/threads, with the remainder going to
	// the lowest indices. Deterministic — a pure function of the shape.
	pipelineShare := func(idx int) int {
		share := sh.sysPerStep / threads
		if idx < sh.sysPerStep%threads {
			share++
		}
		return share
	}
	// trainChunk is one thread's slice of a step: its share of the input
	// pipeline interleaved with its share of the math, prefetch-style —
	// each batch is fetched, then crunched. The interleaving is what lets
	// the tracer service one thread's calls while the others compute.
	trainChunk := func(g *guest.Proc, idx int) {
		myPar := parWork / int64(threads)
		opens := pipelineShare(idx)
		if opens == 0 {
			g.Compute(myPar)
			return
		}
		chunk := myPar / int64(opens)
		for j := 0; j < opens; j++ {
			if fd, derr := g.Open("/data/dataset.bin", abi.ORdonly, 0); derr == abi.OK {
				buf := make([]byte, 128)
				g.Read(fd, buf)
				g.Close(fd)
			}
			g.Compute(chunk)
		}
		if rem := myPar - chunk*int64(opens); rem > 0 {
			g.Compute(rem)
		}
	}

	// OpenMP-style worker pool: a generation-counter barrier. Each worker
	// contributes one chunk per generation, blocking (never spinning) in
	// between — the DetTrace-compatible threading style (§5.7).
	for i := 1; i < threads; i++ {
		idx := i
		p.CloneThread(func(w *guest.Proc) int {
			lastGen := int64(0)
			for {
				gen := w.Load(wordWork)
				switch {
				case gen < 0:
					return 0
				case gen == lastGen:
					w.FutexWait(wordWork, gen)
				default:
					lastGen = gen
					trainChunk(w, idx)
					w.Add(wordDone, 1)
					w.FutexWake(wordDone, 16)
				}
			}
		})
	}

	p.SetWeight(sh.weight)
	for step := 1; step <= sh.steps; step++ {
		// Serial section: optimizer bookkeeping, queue management.
		p.Compute(serialWork)
		if threads > 1 {
			// Release the pool for this step.
			p.Store(wordWork, int64(step))
			p.FutexWake(wordWork, 64)
			// Main thread takes its own share.
			trainChunk(p, 0)
			p.Add(wordDone, 1)
			for p.Load(wordDone) < int64(step)*int64(threads) {
				p.FutexWait(wordDone, p.Load(wordDone))
			}
		} else {
			trainChunk(p, 0)
		}
		loss := lossAt(model, step, seed)
		p.WriteString(lossFd, fmt.Sprintf("%d,%d.%04d\n", step, loss/10000, loss%10000))
	}
	p.SetWeight(1)
	p.Store(wordWork, -1) // stop the pool
	p.FutexWake(wordWork, 64)
	p.Printf("tf_train %s: %d steps done\n", model, sh.steps)
	return 0
}

// lossAt yields a decreasing-but-noisy loss curve whose noise comes from the
// sampled seed: deterministic inputs → deterministic curve.
func lossAt(m Model, step int, seed uint64) int64 {
	h := seed + uint64(step)*0x9e3779b97f4a7c15
	h ^= h >> 31
	h *= 0xbf58476d1ce4e5b9
	noise := int64(h % 9000)
	base := int64(60000) / int64(step)
	return base + noise
}

func atoi(s string, def int) int {
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			return def
		}
		n = n*10 + int(r-'0')
	}
	return n
}

// --- harness -------------------------------------------------------------------

func image() *fs.Image {
	im := baseimg.Minimal()
	im.AddDir("/data", 0o755)
	im.AddFile("/data/dataset.bin", 0o644, []byte(strings.Repeat("sample-batch ", 512)))
	im.AddFile("/bin/tf_train", 0o755, guest.MakeExe("tf_train", nil))
	return im
}

func registry() *guest.Registry {
	reg := guest.NewRegistry()
	reg.Register("tf_train", Main)
	return reg
}

// RunNative trains natively with the given thread count, returning wall time
// and the loss trace.
func RunNative(m Model, threads int, seed uint64) (int64, string) {
	reg := registry()
	k := kernel.New(kernel.Config{
		Profile:  machine.BioHaswell(),
		Seed:     seed,
		Epoch:    1_550_000_000,
		NumCPU:   16,
		Image:    image(),
		Resolver: reg.Resolver(),
	})
	argv := []string{"tf_train", string(m), fmt.Sprint(threads)}
	init := func(t *kernel.Thread) int {
		p := &guest.Proc{T: t}
		if err := p.Exec("/bin/tf_train", argv, []string{"PATH=/bin"}); err != abi.OK {
			return 127
		}
		return 127
	}
	k.Start(init, argv, []string{"PATH=/bin"})
	if err := k.Run(); err != nil {
		panic(fmt.Sprintf("mlsim native: %v", err))
	}
	im := k.FS.SnapshotImage(k.FS.Root)
	return k.Now(), lossTrace(im)
}

// RunDetTrace trains inside DetTrace with 16 threads and workspaces on.
func RunDetTrace(m Model, hostSeed uint64) (int64, string, error) {
	wall, loss, _, err := RunDetTraceOpt(m, 16, hostSeed, false)
	return wall, loss, err
}

// RunDetTraceOpt trains inside DetTrace with the given thread count,
// optionally disabling workspace mode (the serialized-execution ablation).
// The returned core.Result carries the observability registry, so callers
// can read the workspace_forks / workspace_merges / workspace_conflicts
// counters.
func RunDetTraceOpt(m Model, threads int, hostSeed uint64, disableWs bool) (int64, string, *core.Result, error) {
	c := core.New(core.Config{
		Image:             image(),
		Profile:           machine.BioHaswell(),
		HostSeed:          hostSeed,
		Epoch:             1_551_000_000,
		NumCPU:            16,
		PRNGSeed:          0x7f,
		DisableWorkspaces: disableWs,
	})
	argv := []string{"tf_train", string(m), fmt.Sprint(threads)}
	res := c.Run(registry(), "/bin/tf_train", argv, []string{"PATH=/bin"})
	return res.WallTime, lossTrace(res.FS), res, res.Err
}

func lossTrace(im *fs.Image) string {
	if e, ok := im.Entries["/data/loss.csv"]; ok {
		return string(e.Data)
	}
	return ""
}

// Result is one §7.6 experiment line.
type Result struct {
	Model          Model
	NativeParallel int64 // 16-thread native wall time
	NativeSerial   int64 // 1-thread native wall time
	DetTrace       int64 // DetTrace wall time (16 threads, workspaces on)
	VsParallel     float64
	VsSerial       float64
}

// RunStudy produces both models' slowdown numbers.
func RunStudy(seed uint64) []Result {
	var out []Result
	for _, m := range Models {
		par, _ := RunNative(m, 16, seed)
		ser, _ := RunNative(m, 1, seed+1)
		dt, _, err := RunDetTrace(m, seed+2)
		if err != nil {
			panic(fmt.Sprintf("mlsim dettrace: %v", err))
		}
		out = append(out, Result{
			Model:          m,
			NativeParallel: par,
			NativeSerial:   ser,
			DetTrace:       dt,
			VsParallel:     float64(dt) / float64(par),
			VsSerial:       float64(dt) / float64(ser),
		})
	}
	return out
}

// WsRow is one line of the workspace ablation sweep (X17): the same
// DetTrace training run with workspaces on and off at a given thread count.
type WsRow struct {
	Model     Model
	Threads   int
	WsOn      int64   // DetTrace wall time, workspaces enabled
	WsOff     int64   // DetTrace wall time, serialized ablation
	Speedup   float64 // WsOff / WsOn
	Forks     int64   // workspace_forks counter (ws-on run)
	Merges    int64   // workspace_merges counter (ws-on run)
	Conflicts int64   // workspace_conflicts counter (ws-on run)
}

// WsThreadPoints are the thread counts the sweep covers.
var WsThreadPoints = []int{1, 4, 16}

// RunWorkspaceSweep runs both models across WsThreadPoints with workspaces
// on and off. It panics if the loss trace differs between the two modes:
// workspace mode only relaxes physical-time serialization, so every
// reproducibility-observable output must stay bit-identical.
func RunWorkspaceSweep(seed uint64) []WsRow {
	var out []WsRow
	for _, m := range Models {
		for _, th := range WsThreadPoints {
			on, lossOn, res, err := RunDetTraceOpt(m, th, seed, false)
			if err != nil {
				panic(fmt.Sprintf("mlsim ws-on: %v", err))
			}
			off, lossOff, _, err := RunDetTraceOpt(m, th, seed, true)
			if err != nil {
				panic(fmt.Sprintf("mlsim ws-off: %v", err))
			}
			if lossOn != lossOff {
				panic(fmt.Sprintf("mlsim %s/%d: loss trace differs across workspace modes", m, th))
			}
			out = append(out, WsRow{
				Model:     m,
				Threads:   th,
				WsOn:      on,
				WsOff:     off,
				Speedup:   float64(off) / float64(on),
				Forks:     res.Obs.Counter("workspace_forks").Value(),
				Merges:    res.Obs.Counter("workspace_merges").Value(),
				Conflicts: res.Obs.Counter("workspace_conflicts").Value(),
			})
		}
	}
	return out
}
