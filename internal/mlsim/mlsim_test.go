package mlsim

import (
	"strings"
	"testing"
)

func TestTensorFlowSlowdownShape(t *testing.T) {
	for _, r := range RunStudy(31) {
		t.Logf("%s: vsParallel=%.2fx vsSerial=%.2fx (par=%.0fs ser=%.0fs dt=%.0fs)",
			r.Model, r.VsParallel, r.VsSerial,
			float64(r.NativeParallel)/1e9, float64(r.NativeSerial)/1e9, float64(r.DetTrace)/1e9)
		// Thread serialization costs roughly the parallel speedup.
		if r.VsParallel < 8 || r.VsParallel > 25 {
			t.Errorf("%s: DT vs parallel native = %.2fx, want ~10-18x", r.Model, r.VsParallel)
		}
		// Against serialized native the price is small.
		if r.VsSerial < 1.0 || r.VsSerial > 2.2 {
			t.Errorf("%s: DT vs serial native = %.2fx, want ~1.1-1.6x", r.Model, r.VsSerial)
		}
	}
	// alexnet is more syscall-intensive than cifar10, so it pays more.
	rs := RunStudy(32)
	if !(rs[0].VsSerial > rs[1].VsSerial) {
		t.Errorf("alexnet (%.2f) should pay more than cifar10 (%.2f)", rs[0].VsSerial, rs[1].VsSerial)
	}
}

func TestLossTraceReproducibility(t *testing.T) {
	// Natively irreproducible even serialized (§7.6).
	_, a := RunNative(Alexnet, 1, 100)
	_, b := RunNative(Alexnet, 1, 200)
	if a == b {
		t.Errorf("native loss traces identical across runs — randomness model broken")
	}
	// Serialized-vs-parallel native also differ (different seed draw order
	// is not even needed; the seed itself differs per run).
	_, dt1, err1 := RunDetTrace(Cifar10, 300)
	_, dt2, err2 := RunDetTrace(Cifar10, 400)
	if err1 != nil || err2 != nil {
		t.Fatalf("dettrace runs failed: %v %v", err1, err2)
	}
	if dt1 != dt2 {
		t.Errorf("DetTrace loss traces differ across hosts:\n%s\nvs\n%s", head(dt1), head(dt2))
	}
	if !strings.Contains(dt1, "1,") {
		t.Errorf("loss trace malformed: %q", head(dt1))
	}
}

func head(s string) string {
	if len(s) > 120 {
		return s[:120]
	}
	return s
}
