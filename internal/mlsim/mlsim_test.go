package mlsim

import (
	"strings"
	"testing"
)

func TestTensorFlowSlowdownShape(t *testing.T) {
	for _, r := range RunStudy(31) {
		t.Logf("%s: vsParallel=%.2fx vsSerial=%.2fx (par=%.0fs ser=%.0fs dt=%.0fs)",
			r.Model, r.VsParallel, r.VsSerial,
			float64(r.NativeParallel)/1e9, float64(r.NativeSerial)/1e9, float64(r.DetTrace)/1e9)
		// Workspaces recover most of the parallel speedup; alexnet pays more
		// because its 42 runtime calls per step are all merge sync points.
		if r.VsParallel < 1.5 || r.VsParallel > 9 {
			t.Errorf("%s: DT vs parallel native = %.2fx, want ~2-8x", r.Model, r.VsParallel)
		}
		// Against serialized native, 16-way DetTrace is now faster.
		if r.VsSerial < 0.1 || r.VsSerial > 0.95 {
			t.Errorf("%s: DT vs serial native = %.2fx, want <1x", r.Model, r.VsSerial)
		}
	}
	// alexnet is more syscall-intensive than cifar10, so it pays more.
	rs := RunStudy(32)
	if !(rs[0].VsSerial > rs[1].VsSerial) {
		t.Errorf("alexnet (%.2f) should pay more than cifar10 (%.2f)", rs[0].VsSerial, rs[1].VsSerial)
	}
}

// TestSerializedAblationShape pins the historical §5.7 serialized-mode
// numbers: with DisableWorkspaces the whole parallel speedup is lost.
func TestSerializedAblationShape(t *testing.T) {
	for _, m := range Models {
		par, _ := RunNative(m, 16, 31)
		ser, _ := RunNative(m, 1, 32)
		dt, _, _, err := RunDetTraceOpt(m, 16, 33, true)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		vsPar := float64(dt) / float64(par)
		vsSer := float64(dt) / float64(ser)
		t.Logf("%s serialized: vsParallel=%.2fx vsSerial=%.2fx", m, vsPar, vsSer)
		if vsPar < 8 || vsPar > 25 {
			t.Errorf("%s: serialized DT vs parallel native = %.2fx, want ~10-18x", m, vsPar)
		}
		if vsSer < 1.0 || vsSer > 2.2 {
			t.Errorf("%s: serialized DT vs serial native = %.2fx, want ~1.1-1.6x", m, vsSer)
		}
	}
}

// TestWorkspaceSpeedupAndEquivalence is the X17 acceptance gate: at 4+
// threads workspaces improve DetTrace wall time at least 2x over the
// serialized ablation, while the loss trace stays bit-identical and no
// merge ever conflicts (guest FS writes are themselves sync points).
func TestWorkspaceSpeedupAndEquivalence(t *testing.T) {
	rows := RunWorkspaceSweep(77) // panics internally if traces diverge
	for _, r := range rows {
		t.Logf("%s t=%2d: ws-on=%.1fs ws-off=%.1fs speedup=%.2fx forks=%d merges=%d conflicts=%d",
			r.Model, r.Threads, float64(r.WsOn)/1e9, float64(r.WsOff)/1e9,
			r.Speedup, r.Forks, r.Merges, r.Conflicts)
		if r.Conflicts != 0 {
			t.Errorf("%s t=%d: %d merge conflicts; production guests must never conflict", r.Model, r.Threads, r.Conflicts)
		}
		if r.Threads == 1 && (r.Speedup < 0.95 || r.Speedup > 1.05) {
			t.Errorf("%s t=1: speedup %.2fx, want ~1x (nothing to overlap)", r.Model, r.Speedup)
		}
		// The standard E9 configuration (16 threads) must improve >= 2x for
		// both models. At 4 threads the compute-dominated model must too;
		// alexnet is tracer-bound there (42 serialized runtime calls per
		// step put a hard ~2x cap on its 4-thread ratio — the Fig. 6
		// syscall-rate throttling), so it only gets a floor of 1.5x.
		switch {
		case r.Threads == 16 && r.Speedup < 2.0:
			t.Errorf("%s t=16: workspace speedup %.2fx, want >= 2x", r.Model, r.Speedup)
		case r.Threads == 4 && r.Model == Cifar10 && r.Speedup < 2.0:
			t.Errorf("%s t=4: workspace speedup %.2fx, want >= 2x", r.Model, r.Speedup)
		case r.Threads == 4 && r.Model == Alexnet && r.Speedup < 1.5:
			t.Errorf("%s t=4: workspace speedup %.2fx, want >= 1.5x (tracer-bound)", r.Model, r.Speedup)
		}
		if r.Threads >= 4 && r.Forks == 0 {
			t.Errorf("%s t=%d: no workspace forks recorded", r.Model, r.Threads)
		}
	}
}

func TestLossTraceReproducibility(t *testing.T) {
	// Natively irreproducible even serialized (§7.6).
	_, a := RunNative(Alexnet, 1, 100)
	_, b := RunNative(Alexnet, 1, 200)
	if a == b {
		t.Errorf("native loss traces identical across runs — randomness model broken")
	}
	// Serialized-vs-parallel native also differ (different seed draw order
	// is not even needed; the seed itself differs per run).
	_, dt1, err1 := RunDetTrace(Cifar10, 300)
	_, dt2, err2 := RunDetTrace(Cifar10, 400)
	if err1 != nil || err2 != nil {
		t.Fatalf("dettrace runs failed: %v %v", err1, err2)
	}
	if dt1 != dt2 {
		t.Errorf("DetTrace loss traces differ across hosts:\n%s\nvs\n%s", head(dt1), head(dt2))
	}
	if !strings.Contains(dt1, "1,") {
		t.Errorf("loss trace malformed: %q", head(dt1))
	}
}

func head(s string) string {
	if len(s) > 120 {
		return s[:120]
	}
	return s
}
