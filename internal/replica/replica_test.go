package replica

import (
	"strings"
	"testing"

	"repro/internal/machine"
)

var testLog = []string{
	"deposit alice 1000",
	"deposit bob 500",
	"transfer alice bob 250",
	"interest",
	"withdraw bob 100",
	"deposit carol 9999",
	"interest",
}

func TestReplicasAgreeUnderDetTrace(t *testing.T) {
	c := &Cluster{Hosts: DefaultHosts(), Seed: 7}
	results := c.Execute(testLog)
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Host, r.Err)
		}
	}
	if !Agree(results) {
		for _, r := range results {
			t.Logf("%s: %s", r.Host, r.StateHash[:16])
		}
		t.Fatal("replicas diverged under DetTrace")
	}
	if !strings.Contains(results[0].Output, "applied") {
		t.Errorf("output = %q", results[0].Output)
	}
}

func TestNativeReplicasDiverge(t *testing.T) {
	c := &Cluster{Hosts: DefaultHosts(), Seed: 7}
	results := c.ExecuteNative(testLog)
	if Agree(results) {
		t.Fatal("native replicas agreed — the state machine should be timing/randomness-contaminated")
	}
}

func TestCrashRecoveryByReexecution(t *testing.T) {
	c := &Cluster{Hosts: DefaultHosts(), Seed: 7}
	fresh := Host{
		Name:    "node-d-replacement",
		Profile: machine.LegacySandyBridge(), // even older hardware
		Seed:    0xDEAD,
		Epoch:   1_600_000_000,
		NumCPU:  4,
	}
	got, rejoined := c.Recover(testLog, fresh)
	if got.Err != nil {
		t.Fatalf("recovery run failed: %v", got.Err)
	}
	if !rejoined {
		t.Fatal("recovered replica does not match the cluster state")
	}
}

func TestDifferentLogsDifferentStates(t *testing.T) {
	c := &Cluster{Hosts: DefaultHosts()[:1], Seed: 7}
	a := c.Execute(testLog)[0]
	b := c.Execute(append(append([]string{}, testLog...), "deposit mallory 1"))[0]
	if a.StateHash == b.StateHash {
		t.Fatal("the state must be a function of the log")
	}
}

func TestSeedIsADeclaredInput(t *testing.T) {
	a := (&Cluster{Hosts: DefaultHosts()[:1], Seed: 7}).Execute(testLog)[0]
	b := (&Cluster{Hosts: DefaultHosts()[:1], Seed: 8}).Execute(testLog)[0]
	// Transaction ids derive from the seed, so the audit trail differs —
	// but deterministically per seed.
	if a.StateHash == b.StateHash {
		t.Fatal("different container seeds should yield different audit trails")
	}
	a2 := (&Cluster{Hosts: DefaultHosts()[1:2], Seed: 7}).Execute(testLog)[0]
	if a.StateHash != a2.StateHash {
		t.Fatal("same seed on another host must match")
	}
}
