package replica

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/machine"
)

var testLog = []string{
	"deposit alice 1000",
	"deposit bob 500",
	"transfer alice bob 250",
	"interest",
	"withdraw bob 100",
	"deposit carol 9999",
	"interest",
}

func TestReplicasAgreeUnderDetTrace(t *testing.T) {
	c := &Cluster{Hosts: DefaultHosts(), Seed: 7}
	results := c.Execute(testLog)
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Host, r.Err)
		}
	}
	if !Agree(results) {
		for _, r := range results {
			t.Logf("%s: %s", r.Host, r.StateHash[:16])
		}
		t.Fatal("replicas diverged under DetTrace")
	}
	if !strings.Contains(results[0].Output, "applied") {
		t.Errorf("output = %q", results[0].Output)
	}
}

func TestNativeReplicasDiverge(t *testing.T) {
	c := &Cluster{Hosts: DefaultHosts(), Seed: 7}
	results := c.ExecuteNative(testLog)
	if Agree(results) {
		t.Fatal("native replicas agreed — the state machine should be timing/randomness-contaminated")
	}
}

func TestCrashRecoveryByReexecution(t *testing.T) {
	c := &Cluster{Hosts: DefaultHosts(), Seed: 7}
	fresh := Host{
		Name:    "node-d-replacement",
		Profile: machine.LegacySandyBridge(), // even older hardware
		Seed:    0xDEAD,
		Epoch:   1_600_000_000,
		NumCPU:  4,
	}
	ref := c.Reference(testLog)
	got, rejoined := c.Recover(testLog, fresh, ref)
	if got.Err != nil {
		t.Fatalf("recovery run failed: %v", got.Err)
	}
	if !rejoined {
		t.Fatal("recovered replica does not match the cluster state")
	}
}

func TestCheckpointedReplicasAgree(t *testing.T) {
	c := &Cluster{Hosts: DefaultHosts(), Seed: 7}
	results, cps := c.ExecuteCheckpointed(testLog)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Host, r.Err)
		}
		if cps[i] == nil {
			t.Fatalf("%s sealed no checkpoint", r.Host)
		}
		if cps[i].VirtualNow() <= 0 {
			t.Errorf("%s: last seal is the boot seal — trampoline never fired", r.Host)
		}
	}
	if !Agree(results) {
		t.Fatal("checkpointed replicas diverged")
	}
	if results[0].Actions != results[1].Actions {
		t.Errorf("action counts differ across hosts: %d vs %d",
			results[0].Actions, results[1].Actions)
	}
}

// TestRecoverRestoresFromCheckpoint opens the recovery box: the crash must
// actually fire, a mid-run seal must exist, and the resumed replica must
// match the cluster reference while re-executing only the log suffix.
func TestRecoverRestoresFromCheckpoint(t *testing.T) {
	c := &Cluster{Hosts: DefaultHosts(), Seed: 7}
	ref := c.Reference(testLog)
	fresh := Host{Name: "node-e", Profile: machine.PortabilityBroadwell(),
		Seed: 0xE, Epoch: 1_610_000_000, NumCPU: 2}
	replacement := Cluster{Hosts: []Host{fresh}, Seed: c.Seed}

	var last *core.Checkpoint
	cfg := replacement.configFor(testLog, fresh, ref.Actions/2,
		func(cp *core.Checkpoint) { last = cp })
	crashed := core.New(cfg).Run(registry(), "/bin/bank", []string{"bank"}, bankEnv(true))
	if !errors.Is(crashed.Err, kernel.ErrInjectedCrash) {
		t.Fatalf("injected crash did not fire: %v", crashed.Err)
	}
	if last == nil {
		t.Fatal("no checkpoint sealed before the crash")
	}
	if last.VirtualNow() <= 0 {
		t.Fatal("latest seal is the boot seal; expected a batch-boundary seal")
	}
	res, err := core.Resume(last, registry(), replacement.configFor(testLog, fresh, 0, nil))
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	got := toResult(fresh, res)
	if got.Err != nil || got.StateHash != ref.StateHash {
		t.Fatalf("resumed replica diverged: err=%v hash=%s ref=%s",
			got.Err, got.StateHash[:16], ref.StateHash[:16])
	}
	// Suffix-only re-execution: virtual work redone after restore is
	// strictly less than the whole run.
	if redone := res.WallTime - last.VirtualNow(); redone <= 0 || redone >= res.WallTime {
		t.Errorf("redone work %d not in (0, %d)", redone, res.WallTime)
	}
	// And the public wrapper agrees end to end.
	got2, ok := c.Recover(testLog, fresh, ref)
	if !ok || got2.StateHash != got.StateHash {
		t.Errorf("Recover: ok=%v hash=%s, want %s", ok, got2.StateHash[:16], got.StateHash[:16])
	}
}

func TestDifferentLogsDifferentStates(t *testing.T) {
	c := &Cluster{Hosts: DefaultHosts()[:1], Seed: 7}
	a := c.Execute(testLog)[0]
	b := c.Execute(append(append([]string{}, testLog...), "deposit mallory 1"))[0]
	if a.StateHash == b.StateHash {
		t.Fatal("the state must be a function of the log")
	}
}

func TestSeedIsADeclaredInput(t *testing.T) {
	a := (&Cluster{Hosts: DefaultHosts()[:1], Seed: 7}).Execute(testLog)[0]
	b := (&Cluster{Hosts: DefaultHosts()[:1], Seed: 8}).Execute(testLog)[0]
	// Transaction ids derive from the seed, so the audit trail differs —
	// but deterministically per seed.
	if a.StateHash == b.StateHash {
		t.Fatal("different container seeds should yield different audit trails")
	}
	a2 := (&Cluster{Hosts: DefaultHosts()[1:2], Seed: 7}).Execute(testLog)[0]
	if a.StateHash != a2.StateHash {
		t.Fatal("same seed on another host must match")
	}
}

func TestQuorumGeneralizesAgree(t *testing.T) {
	c := &Cluster{Hosts: DefaultHosts(), Seed: 7}
	results := c.Execute(testLog)
	hash, ok := Quorum(results, len(results))
	if !ok || hash != results[0].StateHash {
		t.Fatalf("unanimous quorum failed: ok=%v hash=%q", ok, hash)
	}
	if ok != Agree(results) {
		t.Fatal("Quorum(results, n) disagrees with Agree")
	}

	// One replica crashed: a 2-of-3 quorum still certifies the state, a
	// 3-of-3 one cannot.
	faulty := append([]Result(nil), results...)
	faulty[1].Err = errors.New("node lost")
	faulty[1].StateHash = ""
	if hash, ok := Quorum(faulty, 2); !ok || hash != results[0].StateHash {
		t.Fatalf("2-of-3 quorum with one dead replica: ok=%v hash=%q", ok, hash)
	}
	if _, ok := Quorum(faulty, 3); ok {
		t.Fatal("3-of-3 quorum should fail with a dead replica")
	}

	// A diverged replica must not be counted toward the quorum hash.
	diverged := append([]Result(nil), results...)
	diverged[2].StateHash = "not-the-cluster-state"
	if hash, ok := Quorum(diverged, 2); !ok || hash != results[0].StateHash {
		t.Fatalf("quorum picked the wrong state: ok=%v hash=%q", ok, hash)
	}

	// Degenerate ks.
	if _, ok := Quorum(results, 0); ok {
		t.Fatal("k=0 must not certify anything")
	}
	if _, ok := Quorum(results, len(results)+1); ok {
		t.Fatal("k beyond the cluster size must fail")
	}
}

func TestQuorumDissentNamesMinority(t *testing.T) {
	c := &Cluster{Hosts: DefaultHosts(), Seed: 7}
	results := c.Execute(testLog)

	// Unanimous: quorum forms, nobody dissents.
	hash, dissent, ok := QuorumDissent(results, 2)
	if !ok || hash != results[0].StateHash || len(dissent) != 0 {
		t.Fatalf("unanimous: ok=%v dissent=%v", ok, dissent)
	}

	// One lying replica: the quorum still certifies the honest state and the
	// liar is named by index — determinism makes dissent an accusation.
	lying := append([]Result(nil), results...)
	lying[1].StateHash = "a-lie"
	hash, dissent, ok = QuorumDissent(lying, 2)
	if !ok || hash != results[0].StateHash {
		t.Fatalf("2-of-3 with liar: ok=%v hash=%q", ok, hash)
	}
	if len(dissent) != 1 || dissent[0] != 1 {
		t.Fatalf("dissent %v, want [1]", dissent)
	}

	// An errored replica dissents too (it failed to certify).
	dead := append([]Result(nil), results...)
	dead[2].Err = errors.New("node lost")
	if _, dissent, ok := QuorumDissent(dead, 2); !ok || len(dissent) != 1 || dissent[0] != 2 {
		t.Fatalf("dead replica: ok=%v dissent=%v", ok, dissent)
	}

	// No quorum: every index is dissenting — the caller must not admit.
	if _, dissent, ok := QuorumDissent(lying, 3); ok || len(dissent) != len(lying) {
		t.Fatalf("failed quorum: ok=%v dissent=%v", ok, dissent)
	}

	// The signature stays compatible with Quorum's verdict.
	for _, k := range []int{0, 1, 2, 3, 4} {
		qh, qok := Quorum(lying, k)
		dh, _, dok := QuorumDissent(lying, k)
		if qh != dh || qok != dok {
			t.Fatalf("k=%d: QuorumDissent disagrees with Quorum", k)
		}
	}
}
