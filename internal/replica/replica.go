// Package replica demonstrates the paper's §1–§2 distributed-systems
// motivation: "In distributed systems, reproducibility ensures that all
// replicas behave the same way, accelerating consensus and enabling
// transparent fault recovery."
//
// A Cluster runs N copies of the same container — same image, same command
// log, same container seed — on N *different* simulated hosts. Because a
// DetTrace computation is a pure function of its inputs, every replica
// reaches a bitwise-identical state with no coordination protocol at all,
// and a crashed replica is recovered by simply re-executing the log
// (deterministic state machine replication, Schneider-style, without
// runtime agreement on nondeterministic choices).
package replica

import (
	"fmt"
	"strings"

	"repro/internal/abi"
	"repro/internal/baseimg"
	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/guest"
	"repro/internal/hashdeep"
	"repro/internal/kernel"
	"repro/internal/machine"
)

// Host is one replica's physical placement: everything about it must be
// invisible in the replica's state.
type Host struct {
	Name    string
	Profile *machine.Profile
	Seed    uint64
	Epoch   int64
	NumCPU  int
}

// DefaultHosts returns a deliberately heterogeneous three-node cluster: the
// three machine profiles differ in CPU model, core count, entropy seed and
// clock epoch, so anything host-dependent that leaks into replica state
// diverges immediately. It is the adversarial default for every replication
// demo and test in this package — agreement across these hosts is evidence
// of determinism, not of luck; a homogeneous cluster would prove nothing.
func DefaultHosts() []Host {
	return []Host{
		{Name: "node-a", Profile: machine.CloudLabC220G5(), Seed: 0xA11CE, Epoch: 1_520_000_000, NumCPU: 0},
		{Name: "node-b", Profile: machine.PortabilityBroadwell(), Seed: 0xB0B, Epoch: 1_555_555_555, NumCPU: 8},
		{Name: "node-c", Profile: machine.BioHaswell(), Seed: 0xCAFE, Epoch: 1_590_000_000, NumCPU: 16},
	}
}

// Result is one replica's outcome.
type Result struct {
	Host      string
	StateHash string // hash of /data after applying the log
	Output    string
	Err       error
	// Actions is the replica's deterministic action count — identical on
	// every host, so recovery drills can derive in-range crash points from
	// any one healthy replica's value.
	Actions int64
}

// Cluster executes a command log on a replicated bank state machine.
type Cluster struct {
	Hosts []Host
	// Seed is the container PRNG seed — a declared input, shared by every
	// replica (transaction ids derive from it, identically everywhere).
	Seed uint64
}

// image builds the replica's container image with the command log baked in.
func image(log []string) *fs.Image {
	im := baseimg.Minimal()
	im.AddDir("/data", 0o755)
	im.AddFile("/data/log", 0o644, []byte(strings.Join(log, "\n")+"\n"))
	im.AddFile("/bin/bank", 0o755, guest.MakeExe("bank", nil))
	return im
}

func registry() *guest.Registry {
	reg := guest.NewRegistry()
	reg.Register("bank", bankMain)
	return reg
}

// configFor assembles one replica's container config; crashAt/sink wire the
// fault plane. Checkpoint mode itself is selected by bankEnv — the guest's
// DETTRACE_CHECKPOINT trampoline gives the run quiescent stops to seal at.
func (c *Cluster) configFor(log []string, h Host, crashAt int64, sink func(*core.Checkpoint)) core.Config {
	return core.Config{
		Image:            image(log),
		Profile:          h.Profile,
		HostSeed:         h.Seed,
		Epoch:            h.Epoch,
		NumCPU:           h.NumCPU,
		PRNGSeed:         c.Seed,
		FaultInjectCrash: crashAt,
		CheckpointSink:   sink,
	}
}

func bankEnv(checkpoints bool) []string {
	if checkpoints {
		return []string{"DETTRACE_CHECKPOINT=1"}
	}
	return nil
}

func toResult(h Host, res *core.Result) Result {
	return Result{
		Host:      h.Name,
		StateHash: hashdeep.HashSubtree(res.FS, "/data/state").Total(),
		Output:    res.Stdout,
		Err:       res.Err,
		Actions:   res.Actions,
	}
}

// Execute runs the log on every host, under DetTrace.
func (c *Cluster) Execute(log []string) []Result {
	out := make([]Result, 0, len(c.Hosts))
	for _, h := range c.Hosts {
		cont := core.New(c.configFor(log, h, 0, nil))
		res := cont.Run(registry(), "/bin/bank", []string{"bank"}, bankEnv(false))
		out = append(out, toResult(h, res))
	}
	return out
}

// ExecuteCheckpointed runs the log on every host with the checkpoint
// trampoline enabled, returning each host's results and its latest sealed
// checkpoint. Checkpointed execution is its own equivalence class — the
// trampoline's self-execs advance logical time — so all replicas still agree
// with each other, and recoveries are validated against a checkpointed
// reference.
func (c *Cluster) ExecuteCheckpointed(log []string) ([]Result, []*core.Checkpoint) {
	out := make([]Result, 0, len(c.Hosts))
	cps := make([]*core.Checkpoint, 0, len(c.Hosts))
	for _, h := range c.Hosts {
		var last *core.Checkpoint
		cont := core.New(c.configFor(log, h, 0, func(cp *core.Checkpoint) { last = cp }))
		res := cont.Run(registry(), "/bin/bank", []string{"bank"}, bankEnv(true))
		out = append(out, toResult(h, res))
		cps = append(cps, last)
	}
	return out, cps
}

// ExecuteNative runs the same log without DetTrace — the control showing why
// naive replication diverges.
func (c *Cluster) ExecuteNative(log []string) []Result {
	out := make([]Result, 0, len(c.Hosts))
	for _, h := range c.Hosts {
		reg := registry()
		k := kernel.New(kernel.Config{
			Profile:  h.Profile,
			Seed:     h.Seed,
			Epoch:    h.Epoch,
			NumCPU:   h.NumCPU,
			Image:    image(log),
			Resolver: reg.Resolver(),
		})
		prog, _ := reg.Lookup("bank")
		img := &kernel.ExecImage{Path: "/bin/bank", Argv: []string{"bank"}}
		k.Start(reg.Bind(prog, img), img.Argv, nil)
		err := k.Run()
		out = append(out, Result{
			Host:      h.Name,
			StateHash: hashdeep.HashSubtree(k.FS.SnapshotImage(k.FS.Root), "/data/state").Total(),
			Output:    k.Console.Stdout(),
			Err:       err,
		})
	}
	return out
}

// Agree reports whether every replica reached the same state.
func Agree(results []Result) bool {
	for _, r := range results {
		if r.Err != nil || r.StateHash != results[0].StateHash {
			return false
		}
	}
	return true
}

// Quorum generalizes Agree: it reports whether at least k healthy replicas
// reached the same state, returning that state's hash. Under determinism a
// quorum is degenerate — every healthy replica computes the same bits — so k
// expresses fault tolerance, not voting: it is how many crashed, corrupted
// or lagging replicas the caller is willing to absorb while still certifying
// the cluster state from the survivors. Agree(results) is equivalent to
// Quorum(results, len(results)) succeeding. The distributed build farm uses
// the same principle job-by-job (any one completed attempt's digest IS the
// answer); Quorum is the cluster-level form.
func Quorum(results []Result, k int) (string, bool) {
	if k <= 0 || k > len(results) {
		return "", false
	}
	counts := make(map[string]int)
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		counts[r.StateHash]++
	}
	best, bestN := "", 0
	for h, n := range counts {
		if n > bestN || (n == bestN && h < best) {
			best, bestN = h, n
		}
	}
	if bestN < k {
		return "", false
	}
	return best, true
}

// QuorumDissent is Quorum plus accountability: alongside the winning state
// hash it returns the indices of every replica that dissented from the
// quorum value — errored replicas and replicas reporting a different hash.
// Under determinism a healthy honest replica CANNOT dissent (the quorum
// value is the unique function of the inputs), so a dissenting index names a
// faulty or lying node, which is what lets the attestation layer quarantine
// Byzantine builders instead of merely failing the k-of-n check. When no
// quorum forms, every index is returned as dissenting.
func QuorumDissent(results []Result, k int) (string, []int, bool) {
	best, ok := Quorum(results, k)
	dissent := make([]int, 0, len(results))
	for i, r := range results {
		if !ok || r.Err != nil || r.StateHash != best {
			dissent = append(dissent, i)
		}
	}
	return best, dissent, ok
}

// Reference computes the cluster's canonical checkpointed outcome once, on
// the first host. Determinism makes any single healthy replica THE cluster
// reference — so recovery validation costs one replica's work, not N.
func (c *Cluster) Reference(log []string) Result {
	one := Cluster{Hosts: c.Hosts[:1], Seed: c.Seed}
	res, _ := one.ExecuteCheckpointed(log)
	return res[0]
}

// Recover rebuilds a crashed replica on a fresh host by checkpoint restore
// plus log-suffix re-execution, not whole-log replay: the replacement runs
// with the checkpoint trampoline on and is killed mid-log at a
// deterministic point, then resumed from its last seal — bankMain's journal
// walks it forward over only the commands after the sealed batch boundary.
// ref is a precomputed Reference (reused across recoveries, so total cost is
// one reference replica + one cheap resume); recovery degrades to cold
// whole-log replay when no checkpoint survived or validation fails.
// The returned bool reports whether the replica rejoined the cluster state.
func (c *Cluster) Recover(log []string, fresh Host, ref Result) (Result, bool) {
	replacement := Cluster{Hosts: []Host{fresh}, Seed: c.Seed}
	// Kill the replacement mid-log, deterministically: the crash point is a
	// pure function of the reference's action count, so the drill is
	// reproducible on any host.
	var last *core.Checkpoint
	crashAt := ref.Actions / 2
	cfg := replacement.configFor(log, fresh, crashAt, func(cp *core.Checkpoint) { last = cp })
	crashed := core.New(cfg).Run(registry(), "/bin/bank", []string{"bank"}, bankEnv(true))
	if crashed.Err == nil {
		// The crash point fell beyond this replica's run; it completed.
		got := toResult(fresh, crashed)
		return got, got.Err == nil && got.StateHash == ref.StateHash
	}
	if last != nil {
		rcfg := replacement.configFor(log, fresh, 0, nil)
		if res, err := core.Resume(last, registry(), rcfg); err == nil {
			got := toResult(fresh, res)
			return got, got.Err == nil && got.StateHash == ref.StateHash
		}
	}
	// No usable checkpoint (none sealed, corrupted, or config drift):
	// degrade to deterministic whole-log replay.
	cold, _ := replacement.ExecuteCheckpointed(log)
	got := cold[0]
	return got, got.Err == nil && got.StateHash == ref.StateHash
}

// --- the replicated state machine -------------------------------------------------

// checkpointBatch is how many log commands bankMain applies between
// trampoline restarts in checkpoint mode.
const checkpointBatch = 3

// bankMain applies /data/log to an account store under /data/state. It is
// deliberately sloppy in the ways real services are: every applied command
// gets a transaction id from OS randomness and an audit timestamp from the
// clock, and "interest" compounds based on the current time — all fine
// under DetTrace, all divergence bombs natively.
//
// With DETTRACE_CHECKPOINT set it becomes crash-consistent: every
// checkpointBatch commands it persists the account store and its progress
// journal, then execs itself — an exec with one process, one thread and only
// console fds is a quiescent traced stop, so the container seals a
// checkpoint there. The restarted incarnation reloads the persisted state
// and continues from the journaled position; a resumed run therefore
// re-executes only the log suffix after the last sealed batch boundary.
func bankMain(p *guest.Proc) int {
	raw, err := p.ReadFile("/data/log")
	if err != abi.OK {
		p.Eprintf("bank: no log: %s\n", err)
		return 1
	}
	ckpt := p.Getenv("DETTRACE_CHECKPOINT") != ""
	p.MkdirAll("/data/state", 0o755)
	accounts := map[string]int64{}
	var audit strings.Builder
	done := 0
	if ckpt {
		if j, jerr := p.ReadFile("/data/.checkpoint-journal"); jerr == abi.OK {
			// Restarted incarnation: rebuild memory state from the persisted
			// store. Go stacks are not serializable, so the journal + state
			// files ARE the process's checkpointable memory.
			done = int(atoi64(strings.TrimSpace(string(j))))
			if ents, derr := p.ReadDir("/data/state"); derr == abi.OK {
				for _, e := range ents {
					if e.Name == "audit.log" || e.Name == "." || e.Name == ".." {
						continue
					}
					if data, rerr := p.ReadFile("/data/state/" + e.Name); rerr == abi.OK {
						accounts[e.Name] = atoi64(strings.TrimSpace(string(data)))
					}
				}
			}
			if a, rerr := p.ReadFile("/data/state/audit.log"); rerr == abi.OK {
				audit.Write(a)
			}
		}
	}

	apply := func(line string) {
		fields := strings.Fields(line)
		if len(fields) == 0 {
			return
		}
		txid := make([]byte, 4)
		p.GetRandom(txid)
		switch fields[0] {
		case "deposit":
			accounts[fields[1]] += atoi64(fields[2])
		case "withdraw":
			accounts[fields[1]] -= atoi64(fields[2])
		case "transfer":
			amt := atoi64(fields[3])
			accounts[fields[1]] -= amt
			accounts[fields[2]] += amt
		case "interest":
			// Rate scaled by "days since epoch" — reads the clock.
			days := p.Time() / 86_400
			for a := range accounts {
				accounts[a] += accounts[a] * (days % 7) / 1000
			}
		}
		fmt.Fprintf(&audit, "tx=%x at=%d %s\n", txid, p.Time(), line)
		p.Work(400_000) // applying a command costs real work
	}
	// Persist: one file per account plus the audit trail.
	persist := func() int {
		names := sortedKeys(accounts)
		for _, a := range names {
			p.WriteFile("/data/state/"+a, []byte(fmt.Sprintf("%d\n", accounts[a])), 0o644)
		}
		p.WriteFile("/data/state/audit.log", []byte(audit.String()), 0o644)
		return len(names)
	}
	lines := strings.Split(string(raw), "\n")
	for i, line := range lines {
		if i < done {
			continue // applied before the last trampoline restart
		}
		apply(line)
		if ckpt && (i+1)%checkpointBatch == 0 && i+1 < len(lines) {
			persist()
			// The journal lives outside /data/state so the replicated-state
			// hash covers exactly what the log determines.
			p.WriteFile("/data/.checkpoint-journal", []byte(fmt.Sprintf("%d\n", i+1)), 0o644)
			if xerr := p.Exec("/bin/bank", p.Argv(), p.Environ()); xerr != abi.OK {
				p.Eprintf("bank: restart: %s\n", xerr)
				return 1
			}
			return 127 // unreachable
		}
	}
	n := persist()
	p.Printf("applied %d commands to %d accounts\n", strings.Count(string(raw), "\n"), n)
	return 0
}

func atoi64(s string) int64 {
	var v int64
	neg := false
	for i, r := range s {
		if i == 0 && r == '-' {
			neg = true
			continue
		}
		if r < '0' || r > '9' {
			break
		}
		v = v*10 + int64(r-'0')
	}
	if neg {
		return -v
	}
	return v
}

func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
