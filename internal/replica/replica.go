// Package replica demonstrates the paper's §1–§2 distributed-systems
// motivation: "In distributed systems, reproducibility ensures that all
// replicas behave the same way, accelerating consensus and enabling
// transparent fault recovery."
//
// A Cluster runs N copies of the same container — same image, same command
// log, same container seed — on N *different* simulated hosts. Because a
// DetTrace computation is a pure function of its inputs, every replica
// reaches a bitwise-identical state with no coordination protocol at all,
// and a crashed replica is recovered by simply re-executing the log
// (deterministic state machine replication, Schneider-style, without
// runtime agreement on nondeterministic choices).
package replica

import (
	"fmt"
	"strings"

	"repro/internal/abi"
	"repro/internal/baseimg"
	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/guest"
	"repro/internal/hashdeep"
	"repro/internal/kernel"
	"repro/internal/machine"
)

// Host is one replica's physical placement: everything about it must be
// invisible in the replica's state.
type Host struct {
	Name    string
	Profile *machine.Profile
	Seed    uint64
	Epoch   int64
	NumCPU  int
}

// DefaultHosts returns a deliberately heterogeneous three-node cluster.
func DefaultHosts() []Host {
	return []Host{
		{Name: "node-a", Profile: machine.CloudLabC220G5(), Seed: 0xA11CE, Epoch: 1_520_000_000, NumCPU: 0},
		{Name: "node-b", Profile: machine.PortabilityBroadwell(), Seed: 0xB0B, Epoch: 1_555_555_555, NumCPU: 8},
		{Name: "node-c", Profile: machine.BioHaswell(), Seed: 0xCAFE, Epoch: 1_590_000_000, NumCPU: 16},
	}
}

// Result is one replica's outcome.
type Result struct {
	Host      string
	StateHash string // hash of /data after applying the log
	Output    string
	Err       error
}

// Cluster executes a command log on a replicated bank state machine.
type Cluster struct {
	Hosts []Host
	// Seed is the container PRNG seed — a declared input, shared by every
	// replica (transaction ids derive from it, identically everywhere).
	Seed uint64
}

// image builds the replica's container image with the command log baked in.
func image(log []string) *fs.Image {
	im := baseimg.Minimal()
	im.AddDir("/data", 0o755)
	im.AddFile("/data/log", 0o644, []byte(strings.Join(log, "\n")+"\n"))
	im.AddFile("/bin/bank", 0o755, guest.MakeExe("bank", nil))
	return im
}

func registry() *guest.Registry {
	reg := guest.NewRegistry()
	reg.Register("bank", bankMain)
	return reg
}

// Execute runs the log on every host, under DetTrace.
func (c *Cluster) Execute(log []string) []Result {
	out := make([]Result, 0, len(c.Hosts))
	for _, h := range c.Hosts {
		cont := core.New(core.Config{
			Image:    image(log),
			Profile:  h.Profile,
			HostSeed: h.Seed,
			Epoch:    h.Epoch,
			NumCPU:   h.NumCPU,
			PRNGSeed: c.Seed,
		})
		res := cont.Run(registry(), "/bin/bank", []string{"bank"}, nil)
		out = append(out, Result{
			Host:      h.Name,
			StateHash: hashdeep.HashSubtree(res.FS, "/data/state").Total(),
			Output:    res.Stdout,
			Err:       res.Err,
		})
	}
	return out
}

// ExecuteNative runs the same log without DetTrace — the control showing why
// naive replication diverges.
func (c *Cluster) ExecuteNative(log []string) []Result {
	out := make([]Result, 0, len(c.Hosts))
	for _, h := range c.Hosts {
		reg := registry()
		k := kernel.New(kernel.Config{
			Profile:  h.Profile,
			Seed:     h.Seed,
			Epoch:    h.Epoch,
			NumCPU:   h.NumCPU,
			Image:    image(log),
			Resolver: reg.Resolver(),
		})
		prog, _ := reg.Lookup("bank")
		img := &kernel.ExecImage{Path: "/bin/bank", Argv: []string{"bank"}}
		k.Start(reg.Bind(prog, img), img.Argv, nil)
		err := k.Run()
		out = append(out, Result{
			Host:      h.Name,
			StateHash: hashdeep.HashSubtree(k.FS.SnapshotImage(k.FS.Root), "/data/state").Total(),
			Output:    k.Console.Stdout(),
			Err:       err,
		})
	}
	return out
}

// Agree reports whether every replica reached the same state.
func Agree(results []Result) bool {
	for _, r := range results {
		if r.Err != nil || r.StateHash != results[0].StateHash {
			return false
		}
	}
	return true
}

// Recover rebuilds a crashed replica on a fresh host by re-executing the
// log, and reports whether it rejoined the cluster's state.
func (c *Cluster) Recover(log []string, fresh Host) (Result, bool) {
	healthy := c.Execute(log)
	replacement := Cluster{Hosts: []Host{fresh}, Seed: c.Seed}
	got := replacement.Execute(log)[0]
	return got, got.Err == nil && len(healthy) > 0 && got.StateHash == healthy[0].StateHash
}

// --- the replicated state machine -------------------------------------------------

// bankMain applies /data/log to an account store under /data/state. It is
// deliberately sloppy in the ways real services are: every applied command
// gets a transaction id from OS randomness and an audit timestamp from the
// clock, and "interest" compounds based on the current time — all fine
// under DetTrace, all divergence bombs natively.
func bankMain(p *guest.Proc) int {
	raw, err := p.ReadFile("/data/log")
	if err != abi.OK {
		p.Eprintf("bank: no log: %s\n", err)
		return 1
	}
	p.MkdirAll("/data/state", 0o755)
	accounts := map[string]int64{}
	var audit strings.Builder

	apply := func(line string) {
		fields := strings.Fields(line)
		if len(fields) == 0 {
			return
		}
		txid := make([]byte, 4)
		p.GetRandom(txid)
		switch fields[0] {
		case "deposit":
			accounts[fields[1]] += atoi64(fields[2])
		case "withdraw":
			accounts[fields[1]] -= atoi64(fields[2])
		case "transfer":
			amt := atoi64(fields[3])
			accounts[fields[1]] -= amt
			accounts[fields[2]] += amt
		case "interest":
			// Rate scaled by "days since epoch" — reads the clock.
			days := p.Time() / 86_400
			for a := range accounts {
				accounts[a] += accounts[a] * (days % 7) / 1000
			}
		}
		fmt.Fprintf(&audit, "tx=%x at=%d %s\n", txid, p.Time(), line)
		p.Work(400_000) // applying a command costs real work
	}
	for _, line := range strings.Split(string(raw), "\n") {
		apply(line)
	}

	// Persist: one file per account plus the audit trail.
	names := sortedKeys(accounts)
	for _, a := range names {
		p.WriteFile("/data/state/"+a, []byte(fmt.Sprintf("%d\n", accounts[a])), 0o644)
	}
	p.WriteFile("/data/state/audit.log", []byte(audit.String()), 0o644)
	p.Printf("applied %d commands to %d accounts\n", strings.Count(string(raw), "\n"), len(names))
	return 0
}

func atoi64(s string) int64 {
	var v int64
	neg := false
	for i, r := range s {
		if i == 0 && r == '-' {
			neg = true
			continue
		}
		if r < '0' || r > '9' {
			break
		}
		v = v*10 + int64(r-'0')
	}
	if neg {
		return -v
	}
	return v
}

func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
