// Package workload implements the simulated build toolchain as guest
// programs: cc, ld, tar, gzip, dpkg-deb, configure, make, javac,
// dpkg-buildpackage and the generic compiled binary. Together they
// reproduce, mechanically, every irreproducibility pattern the paper and
// the Debian Reproducible Builds project catalogue: timestamps recorded by
// tar, build paths captured by compilers, randomness in symbol names,
// readdir order in archive layout, PIDs in temp files, rdtsc in profiling
// code, and environment capture.
//
// Irreproducibility is never declared — it is *earned*: programs sample the
// nondeterministic value through the real syscall/instruction surface and
// write it into their output file, so whether the final .deb differs across
// runs is decided by what DetTrace did or did not determinize.
package workload

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/abi"
	"repro/internal/guest"
)

// Source-file directive syntax: a line of the form
//
//	@embed-<what>[:<arg>]@
//
// makes the compiler embed the sampled value into its object file. All
// other lines "compile" into content hashes.
const directivePrefix = "@embed-"

// ccMain is the C compiler: cc [-junk...] -o <out> <in>...
//
// Like the real gcc of §7.4 it touches several nondeterminism sources even
// when compiling clean code: libc mkstemp derives temp file names from the
// vDSO clock, the driver reads /dev/urandom for unique symbol names when
// the source asks for them, and the optimizer's internal profiling reads
// rdtsc. None of those values reach the object file unless a directive
// pulls them in.
func ccMain(p *guest.Proc) int {
	out, ins := parseOutArgs(p.Argv())
	if out == "" || len(ins) == 0 {
		p.Eprintf("cc: usage: cc -o out in...\n")
		return 2
	}

	// mkstemp-style temp object: the name comes from the vDSO clock — the
	// interception hole DetTrace closes by replacing the vDSO (§5.3).
	tmp := fmt.Sprintf("/tmp/cc%x.s", uint64(p.VdsoNow())&0xffffff)
	if err := p.WriteFile(tmp, []byte("asm scratch"), 0o600); err != abi.OK {
		p.Eprintf("cc: tmp: %s\n", err)
		return 1
	}
	defer p.Unlink(tmp)

	// The build heaviness knob: debian/rules exports CFLAGS-like weighting
	// through the CCFACTOR environment variable.
	factor := int64(atoiDefault(p.Getenv("CCFACTOR"), 1))

	var obj strings.Builder
	obj.WriteString("OBJ1\n")
	for _, in := range ins {
		src, err := p.ReadFile(in)
		if err != abi.OK {
			p.Eprintf("cc: %s: %s\n", in, err)
			return 1
		}
		// Optimizer self-profiling, as ld and libc do internally (§7.4):
		// the parse, optimize, schedule and emit phases each bracket
		// themselves with the cycle counter.
		share := []int64{150, 150, 50, 50}
		for _, sh := range share {
			phase := p.Rdtsc()
			p.Work(int64(len(src)) * sh * factor)
			_ = p.Rdtsc() - phase
		}

		for _, line := range strings.Split(string(src), "\n") {
			if strings.Contains(line, "@@SYNTAX ERROR@@") {
				p.Eprintf("cc: %s: syntax error near %q\n", in, line)
				return 1
			}
			if h, ok := includeTarget(line); ok {
				if !resolveInclude(p, h) {
					// Missing headers warn but do not fail, like -MG.
					fmt.Fprintf(&obj, "warn:missing-include:%s\n", h)
				}
				continue
			}
			if v, ok := p1Directive(p, line); ok {
				obj.WriteString(v + "\n")
				continue
			}
			if line == "" {
				continue
			}
			fmt.Fprintf(&obj, "code:%08x\n", lineHash(line))
		}
	}
	if err := p.WriteFile(out, []byte(obj.String()), 0o644); err != abi.OK {
		p.Eprintf("cc: %s: %s\n", out, err)
		return 1
	}
	return 0
}

// p1Directive evaluates one embed directive, returning the object line.
func p1Directive(p *guest.Proc, line string) (string, bool) {
	line = strings.TrimSpace(line)
	if !strings.HasPrefix(line, directivePrefix) || !strings.HasSuffix(line, "@") {
		// Pass-through markers (`@tests:...@` etc.) are handled by the
		// linker and test binary.
		if strings.HasPrefix(line, "@tests:") && strings.HasSuffix(line, "@") {
			return "meta:" + strings.Trim(line, "@"), true
		}
		return "", false
	}
	spec := strings.TrimSuffix(strings.TrimPrefix(line, directivePrefix), "@")
	what, arg, _ := strings.Cut(spec, ":")
	switch what {
	case "timestamp":
		return fmt.Sprintf("ts:%d", p.Time()), true
	case "timestamp-vdso":
		return fmt.Sprintf("tsv:%d", p.VdsoNow()/1e9), true
	case "buildpath":
		cwd, _ := p.Getcwd()
		return "path:" + cwd, true
	case "random":
		buf := make([]byte, 8)
		fd, err := p.Open("/dev/urandom", abi.ORdonly, 0)
		if err == abi.OK {
			p.Read(fd, buf)
			p.Close(fd)
		}
		return fmt.Sprintf("rand:%x", buf), true
	case "getrandom":
		buf := make([]byte, 8)
		p.GetRandom(buf)
		return fmt.Sprintf("grand:%x", buf), true
	case "rdrand":
		v, ok := p.Rdrand()
		if !ok {
			return "rdrand:unsupported", true
		}
		return fmt.Sprintf("rdrand:%x", v), true
	case "pid":
		return fmt.Sprintf("pid:%d", p.Getpid()), true
	case "hostname":
		return "host:" + p.Uname().Nodename, true
	case "kernel":
		return "kernel:" + p.Uname().Release, true
	case "env":
		return "env:" + arg + "=" + p.Getenv(arg), true
	case "readdir":
		ents, _ := p.ReadDir(arg)
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name
		}
		return "readdir:" + strings.Join(names, ","), true
	case "inode":
		st, _ := p.Stat(arg)
		return fmt.Sprintf("ino:%d", st.Ino), true
	case "mtime":
		st, _ := p.Stat(arg)
		return fmt.Sprintf("mtime:%d", st.Mtime.Sec), true
	case "dirsize":
		st, _ := p.Stat(arg)
		return fmt.Sprintf("dirsize:%d", st.Size), true
	case "rdtsc":
		return fmt.Sprintf("tsc:%d", p.Rdtsc()), true
	case "mmap":
		return fmt.Sprintf("addr:%#x", p.Mmap(4096)), true
	case "cores":
		return fmt.Sprintf("cores:%d", p.Sysinfo().NumCPU), true
	case "cpuinfo":
		info, err := p.ReadFile("/proc/cpuinfo")
		if err != abi.OK {
			return "cpuinfo:unreadable", true
		}
		return fmt.Sprintf("cpuinfo:%d:%08x", strings.Count(string(info), "processor"), lineHash(string(info))), true
	case "uptime":
		up, _ := p.ReadFile("/proc/uptime")
		return "uptime:" + strings.TrimSpace(string(up)), true
	case "tsx":
		if p.Xbegin() {
			return "tsx:commit", true
		}
		return "tsx:abort", true
	case "uid":
		return fmt.Sprintf("uid:%d", p.Getuid()), true
	default:
		return "unknown-directive:" + what, true
	}
}

// includeTarget parses a `#include <name>` line.
func includeTarget(line string) (string, bool) {
	line = strings.TrimSpace(line)
	if !strings.HasPrefix(line, "#include <") || !strings.HasSuffix(line, ">") {
		return "", false
	}
	return line[len("#include <") : len(line)-1], true
}

// resolveInclude walks the preprocessor search path, the ENOENT-heavy open
// pattern that dominates a real compiler's system call profile. A found
// header is fstat'd and read whole, like a preprocessor mapping the file —
// which is why partial reads "never happen" on regular files (§5.5).
func resolveInclude(p *guest.Proc, h string) bool {
	for _, dir := range []string{"/usr/local/include/", "/usr/include/", "include/"} {
		fd, err := p.Open(dir+h, abi.ORdonly, 0)
		if err != abi.OK {
			continue
		}
		st, serr := p.Fstat(fd)
		if serr == abi.OK && st.Size > 0 {
			buf := make([]byte, st.Size)
			p.Read(fd, buf)
		}
		p.Close(fd)
		return true
	}
	return false
}

// parseOutArgs extracts -o <out> and the input list.
func parseOutArgs(argv []string) (out string, ins []string) {
	for i := 1; i < len(argv); i++ {
		switch {
		case argv[i] == "-o" && i+1 < len(argv):
			out = argv[i+1]
			i++
		case strings.HasPrefix(argv[i], "-"):
			// flag, ignored
		default:
			ins = append(ins, argv[i])
		}
	}
	return out, ins
}

// lineHash is the stand-in for code generation: stable across runs.
func lineHash(line string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(line); i++ {
		h ^= uint32(line[i])
		h *= 16777619
	}
	return h
}

// atoiDefault parses n with a fallback.
func atoiDefault(s string, def int) int {
	if n, err := strconv.Atoi(s); err == nil {
		return n
	}
	return def
}
