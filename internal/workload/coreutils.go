package workload

import (
	"fmt"
	"strings"

	"repro/internal/abi"
	"repro/internal/guest"
)

// The small coreutils the artifact appendix demos (`dettrace ls -ahl`,
// `dettrace stat foo.txt`): enough surface to show file metadata exactly the
// way the paper's examples print it.

// lsMain lists a directory: ls [-l] [path].
func lsMain(p *guest.Proc) int {
	long := false
	path := "."
	for _, a := range p.Argv()[1:] {
		if strings.HasPrefix(a, "-") {
			if strings.Contains(a, "l") {
				long = true
			}
			continue
		}
		path = a
	}
	ents, err := p.ReadDir(path)
	if err != abi.OK {
		p.Eprintf("ls: %s: %s\n", path, err)
		return 2
	}
	for _, e := range ents {
		if !long {
			p.Printf("%s\n", e.Name)
			continue
		}
		st, serr := p.Stat(path + "/" + e.Name)
		if serr != abi.OK {
			continue
		}
		p.Printf("%s %2d %4d %4d %8d %s %s\n",
			modeString(st.Mode), st.Nlink, st.UID, st.GID, st.Size,
			shortDate(st.Mtime.Sec), e.Name)
	}
	return 0
}

// statMain prints file metadata in GNU stat's layout — the appendix's
// virtualized-metadata demo.
func statMain(p *guest.Proc) int {
	if len(p.Argv()) < 2 {
		p.Eprintf("stat: missing operand\n")
		return 2
	}
	path := p.Argv()[len(p.Argv())-1]
	st, err := p.Stat(path)
	if err != abi.OK {
		p.Eprintf("stat: cannot stat '%s': %s\n", path, err)
		return 1
	}
	p.Printf("  File: %s\n", path)
	p.Printf("  Size: %-10d Blocks: %-10d IO Block: %d\n", st.Size, st.Blocks, st.Blksize)
	p.Printf("Device: %xh/%dd Inode: %-8d Links: %d\n", st.Dev, st.Dev, st.Ino, st.Nlink)
	p.Printf("Access: (%04o/%s) Uid: %d Gid: %d\n", st.Mode&abi.ModePermMask, modeString(st.Mode), st.UID, st.GID)
	p.Printf("Access: %s\n", fullDate(st.Atime.Sec))
	p.Printf("Modify: %s\n", fullDate(st.Mtime.Sec))
	p.Printf("Change: %s\n", fullDate(st.Ctime.Sec))
	return 0
}

// touchMain creates files or bumps their times to "now".
func touchMain(p *guest.Proc) int {
	for _, path := range p.Argv()[1:] {
		fd, err := p.Open(path, abi.OCreat|abi.OWronly, 0o644)
		if err != abi.OK {
			p.Eprintf("touch: %s: %s\n", path, err)
			return 1
		}
		p.Close(fd)
		p.UtimesNow(path)
	}
	return 0
}

// pwdMain prints the working directory.
func pwdMain(p *guest.Proc) int {
	cwd, err := p.Getcwd()
	if err != abi.OK {
		return 1
	}
	p.Printf("%s\n", cwd)
	return 0
}

// echoMain prints its arguments.
func echoMain(p *guest.Proc) int {
	p.Printf("%s\n", strings.Join(p.Argv()[1:], " "))
	return 0
}

func modeString(mode uint32) string {
	var b strings.Builder
	switch mode & abi.ModeTypeMask {
	case abi.ModeDir:
		b.WriteByte('d')
	case abi.ModeSymlink:
		b.WriteByte('l')
	case abi.ModeCharDev:
		b.WriteByte('c')
	case abi.ModeFIFO:
		b.WriteByte('p')
	default:
		b.WriteByte('-')
	}
	bits := "rwxrwxrwx"
	for i := 0; i < 9; i++ {
		if mode&(1<<(8-i)) != 0 {
			b.WriteByte(bits[i])
		} else {
			b.WriteByte('-')
		}
	}
	return b.String()
}

func shortDate(secs int64) string {
	full := formatUTC(secs)
	// "Thu Jan  1 00:00:00 UTC 1970" -> "Jan  1  1970"
	return full[4:10] + " " + full[len(full)-4:]
}

func fullDate(secs int64) string {
	days := secs / 86400
	rem := secs % 86400
	y, mo, d := civilFromDays(days)
	return fmt.Sprintf("%04d-%02d-%02d %02d:%02d:%02d.000000000 +0000",
		y, mo, d, rem/3600, rem%3600/60, rem%60)
}

// civilFromDays converts days since 1970-01-01 to a civil date.
func civilFromDays(days int64) (y, m, d int64) {
	z := days + 719468
	era := z / 146097
	if z < 0 {
		era = (z - 146096) / 146097
	}
	doe := z - era*146097
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365
	yy := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100)
	mp := (5*doy + 2) / 153
	d = doy - (153*mp+2)/5 + 1
	m = mp + 3
	if mp >= 10 {
		m = mp - 9
	}
	if m <= 2 {
		yy++
	}
	return yy, m, d
}
