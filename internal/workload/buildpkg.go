package workload

import (
	"strconv"
	"strings"

	"repro/internal/abi"
	"repro/internal/guest"
)

// dpkgBuildpackageMain orchestrates a package build, mirroring
// dpkg-buildpackage -b: it runs in the package directory, reads
// debian/rules, executes each step with its stdout captured through a pipe
// (as a real driver does), and leaves the .deb in /build/out.
//
// Like the real tool it builds with a sanitized environment: locale and
// timezone pinned, but USER/HOME/DEB_BUILD_OPTIONS passed through — the
// holes reprotest's variations exploit.
func dpkgBuildpackageMain(p *guest.Proc) int {
	rules, err := p.ReadFile("debian/rules")
	if err != abi.OK {
		p.Eprintf("dpkg-buildpackage: no debian/rules\n")
		return 2
	}
	env := []string{
		"PATH=/bin",
		"LC_ALL=C",
		"TZ=UTC",
		"USER=" + p.Getenv("USER"),
		"HOME=" + p.Getenv("HOME"),
		"DEB_BUILD_OPTIONS=" + p.Getenv("DEB_BUILD_OPTIONS"),
	}
	var artifacts []string
	for _, line := range strings.Split(string(rules), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		switch fields[0] {
		case "weight":
			p.SetWeight(int64(atoiDefault(fields[1], 1)))
		case "export":
			env = append(env, fields[1])
		case "artifact":
			artifacts = append(artifacts, fields[1])
		case "step":
			if code := runStep(p, fields[1:], env, artifacts); code != 0 {
				p.Eprintf("dpkg-buildpackage: step %q failed (%d)\n", strings.Join(fields[1:], " "), code)
				return code
			}
		}
	}
	return 0
}

// runStep dispatches one rules step.
func runStep(p *guest.Proc, step, env, artifacts []string) int {
	switch step[0] {
	case "configure":
		return runTool(p, "/bin/configure", []string{"configure"}, env)
	case "make":
		argv := []string{"make"}
		for _, a := range step[1:] {
			argv = append(argv, strings.ReplaceAll(a, "%NPROC%", itoa(p.Sysinfo().NumCPU)))
		}
		return runTool(p, "/bin/make", argv, env)
	case "test":
		// Test harnesses stream their output through a pipe to the driver,
		// the pattern behind DetTrace's read/write retries (Fig. 4).
		return runPiped(p, "build/prog", []string{"prog", "--selftest"}, env)
	case "tty-check":
		// isatty(3): harmless everywhere except under recorders that lack
		// an ioctl model.
		p.T.Syscall(&abi.Syscall{Num: abi.SysIoctl, Arg: [6]int64{1, 0x5413 /* TIOCGWINSZ */}})
		return 0
	case "special-socket":
		return specialSocket(p)
	case "special-signal":
		return specialSignal(p)
	case "special-misc":
		return specialMisc(p)
	case "pack":
		return packStep(p, artifacts, env)
	default:
		p.Eprintf("dpkg-buildpackage: unknown step %q\n", step[0])
		return 2
	}
}

// runTool spawns a child with stdout redirected into the build log file —
// how dpkg-buildpackage actually wires its children (fd inheritance, not
// pipes).
func runTool(p *guest.Proc, path string, argv, env []string) int {
	pid, serr := p.Fork(func(c *guest.Proc) int {
		log, err := c.Open("build-step.log", abi.OCreat|abi.OWronly|abi.OAppend, 0o644)
		if err == abi.OK {
			c.Dup2(log, 1)
			c.Close(log)
		}
		if err := c.Exec(path, argv, env); err != abi.OK {
			c.Eprintf("exec %s: %s\n", path, err)
			return 127
		}
		return 127
	})
	if serr != abi.OK {
		return 2
	}
	wr, werr := p.Waitpid(pid, 0)
	if werr != abi.OK {
		return 2
	}
	if !wr.Status.Exited() {
		return 128 + int(wr.Status.TermSignal())
	}
	return wr.Status.ExitCode()
}

// runPiped spawns a child whose stdout streams through a pipe back to the
// driver. The odd read size and small pipe produce the partial reads and
// writes that exercise DetTrace's retry machinery.
func runPiped(p *guest.Proc, path string, argv, env []string) int {
	r, w, perr := p.Pipe()
	if perr != abi.OK {
		return 2
	}
	pid, serr := p.Fork(func(c *guest.Proc) int {
		c.Dup2(w, 1)
		c.Close(r)
		c.Close(w)
		if err := c.Exec(path, argv, env); err != abi.OK {
			c.Eprintf("exec %s: %s\n", path, err)
			return 127
		}
		return 127
	})
	if serr != abi.OK {
		return 2
	}
	p.Close(w)
	buf := make([]byte, 113)
	var out strings.Builder
	for {
		n, rerr := p.Read(r, buf)
		if rerr == abi.EINTR {
			continue
		}
		if rerr != abi.OK || n == 0 {
			break
		}
		out.Write(buf[:n])
	}
	p.Close(r)
	if out.Len() > 0 {
		p.AppendFile("build-step.log", []byte(out.String()), 0o644)
	}
	wr, werr := p.Waitpid(pid, 0)
	if werr != abi.OK {
		return 2
	}
	if !wr.Status.Exited() {
		return 128 + int(wr.Status.TermSignal())
	}
	return wr.Status.ExitCode()
}

// packStep assembles the install root and spawns dpkg-deb.
func packStep(p *guest.Proc, artifacts, env []string) int {
	name, version := pkgIdentity(p)
	p.MkdirAll("debian/pkgroot/DEBIAN", 0o755)
	p.MkdirAll("debian/pkgroot/root/usr/bin", 0o755)
	p.MkdirAll("debian/pkgroot/root/usr/share/doc/"+name, 0o755)

	control, _ := p.ReadFile("debian/control")
	if werr := p.WriteFile("debian/pkgroot/DEBIAN/control", control, 0o644); werr != abi.OK {
		return 1
	}
	if p.Access("build/prog") == abi.OK {
		if code := runTool(p, "/bin/install", []string{"install", "build/prog", "debian/pkgroot/root/usr/bin/" + name}, env); code != 0 {
			return code
		}
	}
	p.WriteFile("debian/pkgroot/root/usr/share/doc/"+name+"/copyright", []byte("GPL-2+\n"), 0o644)
	for _, a := range artifacts {
		base := a[strings.LastIndex(a, "/")+1:]
		data, rerr := p.ReadFile(a)
		if rerr != abi.OK {
			continue
		}
		p.WriteFile("debian/pkgroot/root/usr/share/doc/"+name+"/"+base, data, 0o644)
	}
	p.MkdirAll("/build/out", 0o755)
	deb := "/build/out/" + name + "_" + version + "_amd64.deb"
	return runTool(p, "/bin/dpkg-deb", []string{"dpkg-deb", "--build", "debian/pkgroot", deb}, env)
}

// pkgIdentity parses Package/Version from debian/control.
func pkgIdentity(p *guest.Proc) (name, version string) {
	name, version = "unknown", "0"
	data, err := p.ReadFile("debian/control")
	if err != abi.OK {
		return
	}
	for _, line := range strings.Split(string(data), "\n") {
		if v, ok := strings.CutPrefix(line, "Package: "); ok {
			name = v
		}
		if v, ok := strings.CutPrefix(line, "Version: "); ok {
			version = v
		}
	}
	return
}

func itoa(n int) string { return strconv.Itoa(n) }
