package workload

import (
	"strconv"
	"strings"

	"repro/internal/abi"
	"repro/internal/guest"
)

// dpkgBuildpackageMain orchestrates a package build, mirroring
// dpkg-buildpackage -b: it runs in the package directory, reads
// debian/rules, executes each step with its stdout captured through a pipe
// (as a real driver does), and leaves the .deb in /build/out.
//
// Like the real tool it builds with a sanitized environment: locale and
// timezone pinned, but USER/HOME/DEB_BUILD_OPTIONS passed through — the
// holes reprotest's variations exploit.
//
// With DETTRACE_CHECKPOINT set, the driver self-execs at build-phase
// boundaries (post-configure, post-compile). Each exec is a quiescent traced
// stop the kernel can seal a checkpoint at; the step journal plus the
// package tree on disk are the process's entire checkpointable memory, so a
// run restored mid-build re-enters here, skips the journaled steps, and
// continues bit-for-bit where the crashed run left off.
func dpkgBuildpackageMain(p *guest.Proc) int {
	rules, err := p.ReadFile("debian/rules")
	if err != abi.OK {
		p.Eprintf("dpkg-buildpackage: no debian/rules\n")
		return 2
	}
	ckpt := p.Getenv("DETTRACE_CHECKPOINT") != ""
	done := 0
	if ckpt {
		if j, jerr := p.ReadFile(stepJournal); jerr == abi.OK {
			done = atoiDefault(strings.TrimSpace(string(j)), 0)
		}
	}
	steps := 0
	env := []string{
		"PATH=/bin",
		"LC_ALL=C",
		"TZ=UTC",
		"USER=" + p.Getenv("USER"),
		"HOME=" + p.Getenv("HOME"),
		"DEB_BUILD_OPTIONS=" + p.Getenv("DEB_BUILD_OPTIONS"),
	}
	var artifacts []string
	for _, line := range strings.Split(string(rules), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		switch fields[0] {
		case "weight":
			p.SetWeight(int64(atoiDefault(fields[1], 1)))
		case "export":
			env = append(env, fields[1])
		case "artifact":
			artifacts = append(artifacts, fields[1])
		case "step":
			steps++
			if steps <= done {
				continue // replayed from the journal: already on disk
			}
			var code int
			if ckpt && fields[1] == "make" {
				code = runChunkedMake(p, fields[1:], env, steps)
			} else {
				code = runStep(p, fields[1:], env, artifacts)
			}
			if code != 0 {
				p.Eprintf("dpkg-buildpackage: step %q failed (%d)\n", strings.Join(fields[1:], " "), code)
				return code
			}
			if ckpt && phaseBoundary(fields[1]) {
				p.WriteFile(stepJournal, []byte(itoa(steps)+"\n"), 0o644)
				if xerr := p.Exec("/bin/dpkg-buildpackage", p.Argv(), p.Environ()); xerr != abi.OK {
					p.Eprintf("dpkg-buildpackage: checkpoint re-exec failed: %s\n", xerr)
					return 2
				}
			}
		}
	}
	return 0
}

// stepJournal records how many rules steps have completed, relative to the
// package directory. It sits outside the artifact set on purpose: it is
// trampoline bookkeeping, not build output.
const stepJournal = "debian/.checkpoint-journal"

// phaseBoundary reports whether a completed step ends a build phase worth
// sealing: configuration or compilation, the expensive prefixes a recovery
// should never redo.
func phaseBoundary(step string) bool {
	return step == "configure" || step == "make"
}

// makeChunk bounds how many compilation units one make invocation may build
// in checkpoint mode before the driver seals mid-compile progress. One unit
// per seal is the finest granularity the trampoline supports: a crash
// anywhere inside make redoes at most one unit's compile, at the cost of a
// driver re-exec per unit (~2% virtual-time overhead on the build).
const makeChunk = 1

// runChunkedMake runs the make step under the checkpoint trampoline: make
// compiles at most makeChunk missing units per invocation (makeMoreToDo
// means "chunk done, units remain") and the driver self-execs between
// invocations so the kernel can seal the partially built tree. The journal
// deliberately still reads "previous step completed": the re-entered driver
// lands back on the make step and incremental make skips the objects
// already on disk, resuming the compile exactly where the seal left it.
func runChunkedMake(p *guest.Proc, step, env []string, steps int) int {
	argv := append(makeArgv(p, step), "-chunk"+itoa(makeChunk))
	code := runTool(p, "/bin/make", argv, env)
	if code != makeMoreToDo {
		return code
	}
	p.WriteFile(stepJournal, []byte(itoa(steps-1)+"\n"), 0o644)
	if xerr := p.Exec("/bin/dpkg-buildpackage", p.Argv(), p.Environ()); xerr != abi.OK {
		p.Eprintf("dpkg-buildpackage: checkpoint re-exec failed: %s\n", xerr)
		return 2
	}
	return 2 // unreachable: Exec only returns on failure
}

// makeArgv expands a rules `step make ...` line into the make argv,
// substituting the host CPU count.
func makeArgv(p *guest.Proc, step []string) []string {
	argv := []string{"make"}
	for _, a := range step[1:] {
		argv = append(argv, strings.ReplaceAll(a, "%NPROC%", itoa(p.Sysinfo().NumCPU)))
	}
	return argv
}

// runStep dispatches one rules step.
func runStep(p *guest.Proc, step, env, artifacts []string) int {
	switch step[0] {
	case "configure":
		return runTool(p, "/bin/configure", []string{"configure"}, env)
	case "make":
		return runTool(p, "/bin/make", makeArgv(p, step), env)
	case "test":
		// Test harnesses stream their output through a pipe to the driver,
		// the pattern behind DetTrace's read/write retries (Fig. 4).
		return runPiped(p, "build/prog", []string{"prog", "--selftest"}, env)
	case "tty-check":
		// isatty(3): harmless everywhere except under recorders that lack
		// an ioctl model.
		p.T.Syscall(&abi.Syscall{Num: abi.SysIoctl, Arg: [6]int64{1, 0x5413 /* TIOCGWINSZ */}})
		return 0
	case "special-socket":
		return specialSocket(p)
	case "special-signal":
		return specialSignal(p)
	case "special-misc":
		return specialMisc(p)
	case "pack":
		return packStep(p, artifacts, env)
	default:
		p.Eprintf("dpkg-buildpackage: unknown step %q\n", step[0])
		return 2
	}
}

// runTool spawns a child with stdout redirected into the build log file —
// how dpkg-buildpackage actually wires its children (fd inheritance, not
// pipes).
func runTool(p *guest.Proc, path string, argv, env []string) int {
	pid, serr := p.Fork(func(c *guest.Proc) int {
		log, err := c.Open("build-step.log", abi.OCreat|abi.OWronly|abi.OAppend, 0o644)
		if err == abi.OK {
			c.Dup2(log, 1)
			c.Close(log)
		}
		if err := c.Exec(path, argv, env); err != abi.OK {
			c.Eprintf("exec %s: %s\n", path, err)
			return 127
		}
		return 127
	})
	if serr != abi.OK {
		return 2
	}
	wr, werr := p.Waitpid(pid, 0)
	if werr != abi.OK {
		return 2
	}
	if !wr.Status.Exited() {
		return 128 + int(wr.Status.TermSignal())
	}
	return wr.Status.ExitCode()
}

// runPiped spawns a child whose stdout streams through a pipe back to the
// driver. The odd read size and small pipe produce the partial reads and
// writes that exercise DetTrace's retry machinery.
func runPiped(p *guest.Proc, path string, argv, env []string) int {
	r, w, perr := p.Pipe()
	if perr != abi.OK {
		return 2
	}
	pid, serr := p.Fork(func(c *guest.Proc) int {
		c.Dup2(w, 1)
		c.Close(r)
		c.Close(w)
		if err := c.Exec(path, argv, env); err != abi.OK {
			c.Eprintf("exec %s: %s\n", path, err)
			return 127
		}
		return 127
	})
	if serr != abi.OK {
		return 2
	}
	p.Close(w)
	buf := make([]byte, 113)
	var out strings.Builder
	for {
		n, rerr := p.Read(r, buf)
		if rerr == abi.EINTR {
			continue
		}
		if rerr != abi.OK || n == 0 {
			break
		}
		out.Write(buf[:n])
	}
	p.Close(r)
	if out.Len() > 0 {
		p.AppendFile("build-step.log", []byte(out.String()), 0o644)
	}
	wr, werr := p.Waitpid(pid, 0)
	if werr != abi.OK {
		return 2
	}
	if !wr.Status.Exited() {
		return 128 + int(wr.Status.TermSignal())
	}
	return wr.Status.ExitCode()
}

// packStep assembles the install root and spawns dpkg-deb.
func packStep(p *guest.Proc, artifacts, env []string) int {
	name, version := pkgIdentity(p)
	p.MkdirAll("debian/pkgroot/DEBIAN", 0o755)
	p.MkdirAll("debian/pkgroot/root/usr/bin", 0o755)
	p.MkdirAll("debian/pkgroot/root/usr/share/doc/"+name, 0o755)

	control, _ := p.ReadFile("debian/control")
	if werr := p.WriteFile("debian/pkgroot/DEBIAN/control", control, 0o644); werr != abi.OK {
		return 1
	}
	if p.Access("build/prog") == abi.OK {
		if code := runTool(p, "/bin/install", []string{"install", "build/prog", "debian/pkgroot/root/usr/bin/" + name}, env); code != 0 {
			return code
		}
	}
	p.WriteFile("debian/pkgroot/root/usr/share/doc/"+name+"/copyright", []byte("GPL-2+\n"), 0o644)
	for _, a := range artifacts {
		base := a[strings.LastIndex(a, "/")+1:]
		data, rerr := p.ReadFile(a)
		if rerr != abi.OK {
			continue
		}
		p.WriteFile("debian/pkgroot/root/usr/share/doc/"+name+"/"+base, data, 0o644)
	}
	p.MkdirAll("/build/out", 0o755)
	deb := "/build/out/" + name + "_" + version + "_amd64.deb"
	return runTool(p, "/bin/dpkg-deb", []string{"dpkg-deb", "--build", "debian/pkgroot", deb}, env)
}

// pkgIdentity parses Package/Version from debian/control.
func pkgIdentity(p *guest.Proc) (name, version string) {
	name, version = "unknown", "0"
	data, err := p.ReadFile("debian/control")
	if err != abi.OK {
		return
	}
	for _, line := range strings.Split(string(data), "\n") {
		if v, ok := strings.CutPrefix(line, "Package: "); ok {
			name = v
		}
		if v, ok := strings.CutPrefix(line, "Version: "); ok {
			version = v
		}
	}
	return
}

func itoa(n int) string { return strconv.Itoa(n) }
