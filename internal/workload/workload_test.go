package workload_test

import (
	"strings"
	"testing"

	"repro/internal/abi"
	"repro/internal/artar"
	"repro/internal/baseimg"
	"repro/internal/guest"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/workload"
)

// boot runs a driver program with the full toolchain installed.
func boot(t *testing.T, seed uint64, files map[string]string, driver guest.Program) *kernel.Kernel {
	t.Helper()
	reg := guest.NewRegistry()
	workload.Register(reg)
	reg.Register("driver", driver)
	im := baseimg.WithBinaries(workload.Names...)
	im.AddFile("/bin/driver", 0o755, guest.MakeExe("driver", nil))
	for p, data := range files {
		im.AddFile(p, 0o644, []byte(data))
	}
	k := kernel.New(kernel.Config{
		Profile: machine.CloudLabC220G5(), Seed: seed, Epoch: 1_500_000_000,
		Image: im, Resolver: reg.Resolver(),
		Deadline: 3_600_000_000_000,
	})
	img := &kernel.ExecImage{Path: "/bin/driver", Argv: []string{"driver"}}
	k.Start(reg.Bind(driver, img), img.Argv, []string{"PATH=/bin", "CCFACTOR=1"})
	if err := k.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return k
}

// spawnTool runs a toolchain program to completion from within a driver.
func spawnTool(p *guest.Proc, path string, argv ...string) int {
	pid, err := p.Spawn(path, argv, nil)
	if err != abi.OK {
		return 126
	}
	wr, _ := p.Waitpid(pid, 0)
	return wr.Status.ExitCode()
}

func readFile(t *testing.T, k *kernel.Kernel, path string) []byte {
	t.Helper()
	e, ok := k.FS.SnapshotImage(k.FS.Root).Entries[path]
	if !ok {
		t.Fatalf("missing %s", path)
	}
	return e.Data
}

func TestCCCompilesDirectivesAndCode(t *testing.T) {
	src := "#include <h000.h>\n@embed-timestamp@\n@embed-buildpath@\nint f(void){return 1;}\n"
	k := boot(t, 1, map[string]string{
		"/tmp/unit.c":         src,
		"/usr/include/h000.h": "#define H 1\n",
	}, func(p *guest.Proc) int {
		p.Chdir("/tmp")
		return spawnTool(p, "/bin/cc", "cc", "-o", "unit.o", "unit.c")
	})
	obj := string(readFile(t, k, "/tmp/unit.o"))
	if !strings.Contains(obj, "ts:") || !strings.Contains(obj, "path:/tmp") {
		t.Errorf("directives not embedded:\n%s", obj)
	}
	if !strings.Contains(obj, "code:") {
		t.Errorf("code lines missing:\n%s", obj)
	}
}

func TestCCSyntaxErrorFails(t *testing.T) {
	k := boot(t, 2, map[string]string{
		"/tmp/bad.c": "@@SYNTAX ERROR@@\n",
	}, func(p *guest.Proc) int {
		p.Chdir("/tmp")
		code := spawnTool(p, "/bin/cc", "cc", "-o", "bad.o", "bad.c")
		p.Printf("cc=%d", code)
		return 0
	})
	if got := k.Console.Stdout(); got != "cc=1" {
		t.Errorf("stdout = %q", got)
	}
}

func TestTarRecordsMtimesAndHostOrder(t *testing.T) {
	k := boot(t, 3, map[string]string{
		"/tmp/tree/zebra": "z",
		"/tmp/tree/apple": "a",
		"/tmp/tree/mango": "m",
	}, func(p *guest.Proc) int {
		return spawnTool(p, "/bin/tar", "tar", "-cf", "/tmp/out.tar", "/tmp/tree")
	})
	ar, err := artar.Unpack(readFile(t, k, "/tmp/out.tar"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ar.Members) != 3 {
		t.Fatalf("members = %d", len(ar.Members))
	}
	var names []string
	for _, m := range ar.Members {
		names = append(names, m.Name)
		if m.Mtime == 0 {
			t.Errorf("member %s has no timestamp — tar must record mtimes", m.Name)
		}
	}
	if names[0] == "apple" && names[1] == "mango" && names[2] == "zebra" {
		t.Errorf("member order is sorted; native tar must use host readdir order: %v", names)
	}
}

func TestTarRootOwnerFlag(t *testing.T) {
	k := boot(t, 4, map[string]string{"/tmp/tree/f": "x"}, func(p *guest.Proc) int {
		p.Chown("/tmp/tree/f", 1234, 1234)
		return spawnTool(p, "/bin/tar", "tar", "--owner=0", "-cf", "/tmp/out.tar", "/tmp/tree")
	})
	ar, _ := artar.Unpack(readFile(t, k, "/tmp/out.tar"))
	for _, m := range ar.Members {
		if m.UID != 0 || m.GID != 0 {
			t.Errorf("--owner=0 ignored for %s: uid=%d", m.Name, m.UID)
		}
	}
}

func TestGzipEmbedsTimestamp(t *testing.T) {
	k := boot(t, 5, map[string]string{"/tmp/doc.txt": "hello docs"}, func(p *guest.Proc) int {
		return spawnTool(p, "/bin/gzip", "gzip", "/tmp/doc.txt")
	})
	im := k.FS.SnapshotImage(k.FS.Root)
	if _, ok := im.Entries["/tmp/doc.txt"]; ok {
		t.Errorf("gzip should remove the original")
	}
	gz := string(im.Entries["/tmp/doc.txt.gz"].Data)
	if !strings.HasPrefix(gz, "GZIP1 mtime=") || strings.HasPrefix(gz, "GZIP1 mtime=0 ") {
		t.Errorf("gzip header missing wall-clock mtime: %q", gz[:40])
	}
}

func TestConfigureClockSkewError(t *testing.T) {
	// A reference file with an mtime in the future trips the check.
	k := boot(t, 6, map[string]string{"/tmp/pkg/debian/control": "Package: x\n"}, func(p *guest.Proc) int {
		p.Chdir("/tmp/pkg")
		future := abi.Timespec{Sec: 99_999_999_999}
		p.Utimes("debian/control", future, future)
		p.WriteFile("configure.ac", []byte("AC_INIT\n"), 0o644)
		code := spawnTool(p, "/bin/configure", "configure")
		p.Printf("configure=%d", code)
		return 0
	})
	if got := k.Console.Stdout(); got != "configure=1" {
		t.Errorf("stdout = %q (stderr %q)", got, k.Console.Stderr())
	}
	if !strings.Contains(k.Console.Stderr(), "clock") {
		t.Errorf("no clock-skew message: %q", k.Console.Stderr())
	}
}

func TestLdLinksAndBinaryRuns(t *testing.T) {
	k := boot(t, 7, map[string]string{
		"/tmp/a.o": "OBJ1\ncode:1111\nmeta:tests:5:1:0\n",
		"/tmp/b.o": "OBJ1\ncode:2222\n",
	}, func(p *guest.Proc) int {
		if code := spawnTool(p, "/bin/ld", "ld", "-o", "/tmp/prog", "/tmp/a.o", "/tmp/b.o"); code != 0 {
			return code
		}
		return spawnTool(p, "/tmp/prog", "prog", "--selftest")
	})
	out := k.Console.Stdout()
	if !strings.Contains(out, "Testing: 5 tests") || !strings.Contains(out, "Expected Passes    : 4") {
		t.Errorf("selftest output = %q", out)
	}
}

func TestDateMatchesArtifactDemoUnderLogicalEpoch(t *testing.T) {
	// formatUTC is exercised through the date program elsewhere; here check
	// the civil-date math against known values.
	k := boot(t, 8, nil, func(p *guest.Proc) int {
		return spawnTool(p, "/bin/date", "date")
	})
	out := k.Console.Stdout()
	// Native date under epoch 1_500_000_000 (2017-07-14).
	if !strings.Contains(out, "2017") || !strings.Contains(out, "Jul") {
		t.Errorf("date output = %q", out)
	}
}

func TestMakeBuildsPackageTree(t *testing.T) {
	k := boot(t, 9, map[string]string{
		"/tmp/pkg/Makefile":    "compiler=cc\nsrcdir=src\nbuilddir=build\noutput=build/prog\n",
		"/tmp/pkg/src/unit0.c": "int a(void){return 0;}\n",
		"/tmp/pkg/src/unit1.c": "int b(void){return 1;}\n",
	}, func(p *guest.Proc) int {
		p.Chdir("/tmp/pkg")
		code := spawnTool(p, "/bin/make", "make", "-j2")
		p.Printf("make=%d", code)
		return 0
	})
	if got := k.Console.Stdout(); !strings.Contains(got, "make=0") {
		t.Fatalf("stdout = %q stderr = %q", got, k.Console.Stderr())
	}
	im := k.FS.SnapshotImage(k.FS.Root)
	if _, ok := im.Entries["/tmp/pkg/build/prog"]; !ok {
		t.Errorf("linked output missing")
	}
	if _, ok := im.Entries["/tmp/pkg/build/unit0.o"]; !ok {
		t.Errorf("objects missing")
	}
}

func TestCoreutilsStatDemo(t *testing.T) {
	// The artifact appendix demo: touch a file, stat it; under DetTrace the
	// metadata virtualizes (covered by internal/core) — natively it shows
	// real values.
	k := boot(t, 10, nil, func(p *guest.Proc) int {
		if code := spawnTool(p, "/bin/touch", "touch", "/tmp/foo.txt"); code != 0 {
			return code
		}
		return spawnTool(p, "/bin/stat", "stat", "/tmp/foo.txt")
	})
	out := k.Console.Stdout()
	for _, want := range []string{"File: /tmp/foo.txt", "Inode:", "Access: (0644/-rw-r--r--)", "Modify: 2017-"} {
		if !strings.Contains(out, want) {
			t.Errorf("stat output missing %q:\n%s", want, out)
		}
	}
}

func TestCoreutilsLsLong(t *testing.T) {
	k := boot(t, 11, map[string]string{"/tmp/dir/a": "x", "/tmp/dir/b": "yy"}, func(p *guest.Proc) int {
		return spawnTool(p, "/bin/ls", "ls", "-l", "/tmp/dir")
	})
	out := k.Console.Stdout()
	if !strings.Contains(out, "-rw-r--r--") || !strings.Contains(out, " a\n") {
		t.Errorf("ls -l output:\n%s", out)
	}
}

func TestCoreutilsPwdEcho(t *testing.T) {
	k := boot(t, 12, nil, func(p *guest.Proc) int {
		p.Chdir("/tmp")
		spawnTool(p, "/bin/pwd", "pwd")
		return spawnTool(p, "/bin/echo", "echo", "hello", "world")
	})
	if got := k.Console.Stdout(); got != "/tmp\nhello world\n" {
		t.Errorf("stdout = %q", got)
	}
}
