package workload

import (
	"fmt"

	"repro/internal/guest"
)

// Names of every toolchain program, as installed under /bin in the images.
var Names = []string{
	"cc", "ld", "tar", "gzip", "dpkg-deb", "install",
	"configure", "make", "dpkg-buildpackage", "cbin", "date", "wget",
	"ls", "stat", "touch", "pwd", "echo",
}

// Register installs the whole toolchain into a guest program registry.
func Register(reg *guest.Registry) {
	reg.Register("cc", ccMain)
	reg.Register("ld", ldMain)
	reg.Register("tar", tarMain)
	reg.Register("gzip", gzipMain)
	reg.Register("dpkg-deb", dpkgDebMain)
	reg.Register("install", installMain)
	reg.Register("configure", configureMain)
	reg.Register("make", makeMain)
	reg.Register("dpkg-buildpackage", dpkgBuildpackageMain)
	reg.Register("cbin", cbinMain)
	reg.Register("date", dateMain)
	reg.Register("wget", wgetMain)
	reg.Register("ls", lsMain)
	reg.Register("stat", statMain)
	reg.Register("touch", touchMain)
	reg.Register("pwd", pwdMain)
	reg.Register("echo", echoMain)
}

// wgetMain fetches a declared external file: wget <url> <out>. Under
// DetTrace the fetch is served from the container's checksummed download
// set (§3); natively there is no network and the fetch fails.
func wgetMain(p *guest.Proc) int {
	argv := p.Argv()
	if len(argv) < 3 {
		p.Eprintf("wget: usage: wget url out\n")
		return 2
	}
	data, err := p.Fetch(argv[1])
	if err != 0 {
		p.Eprintf("wget: %s: %s\n", argv[1], err)
		return 4
	}
	if werr := p.WriteFile(argv[2], data, 0o644); werr != 0 {
		p.Eprintf("wget: %s: %s\n", argv[2], werr)
		return 1
	}
	p.Printf("saved %s (%d bytes)\n", argv[2], len(data))
	return 0
}

// dateMain mirrors the artifact appendix's `dettrace date` demo: it prints
// the wall clock as the stock date utility would.
func dateMain(p *guest.Proc) int {
	secs := p.Time()
	p.Printf("%s\n", formatUTC(secs))
	return 0
}

// formatUTC renders a Unix timestamp like `date -u` does, without using the
// host's time package on guest-visible paths (guests must not observe host
// state except through syscalls).
func formatUTC(secs int64) string {
	days := secs / 86400
	rem := secs % 86400
	if rem < 0 {
		rem += 86400
		days--
	}
	h, m, s := rem/3600, rem%3600/60, rem%60

	// Civil date from days since 1970-01-01 (Howard Hinnant's algorithm).
	z := days + 719468
	era := z / 146097
	if z < 0 {
		era = (z - 146096) / 146097
	}
	doe := z - era*146097
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365
	y := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100)
	mp := (5*doy + 2) / 153
	d := doy - (153*mp+2)/5 + 1
	mo := mp + 3
	if mp >= 10 {
		mo = mp - 9
	}
	if mo <= 2 {
		y++
	}
	dow := (days%7 + 7 + 4) % 7 // 1970-01-01 was a Thursday
	weekdays := []string{"Sun", "Mon", "Tue", "Wed", "Thu", "Fri", "Sat"}
	months := []string{"", "Jan", "Feb", "Mar", "Apr", "May", "Jun",
		"Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}
	return fmt.Sprintf("%s %s %2d %02d:%02d:%02d UTC %d",
		weekdays[dow], months[mo], d, h, m, s, y)
}
