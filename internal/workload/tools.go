package workload

import (
	"fmt"
	"strings"

	"repro/internal/abi"
	"repro/internal/artar"
	"repro/internal/guest"
)

// ldMain is the linker: ld -o <out> <obj>...
//
// It concatenates objects into the payload of a runnable "binary" (the cbin
// program) and, like real binutils, reads rdtsc for its internal profiling
// counters (§7.4) — values that stay internal.
func ldMain(p *guest.Proc) int {
	out, ins := parseOutArgs(p.Argv())
	if out == "" || len(ins) == 0 {
		p.Eprintf("ld: usage: ld -o out obj...\n")
		return 2
	}
	var payload strings.Builder
	for _, in := range ins {
		start := p.Rdtsc()
		data, err := p.ReadFile(in)
		if err != abi.OK {
			p.Eprintf("ld: %s: %s\n", in, err)
			return 1
		}
		p.Work(int64(len(data)) * 60)
		mid := p.Rdtsc()
		p.Work(int64(len(data)) * 60)
		payload.Write(data)
		_, _ = p.Rdtsc()-start, mid
	}
	// Roughly half of all binaries get a unique build-id salted from
	// /dev/urandom — gcc's unique-symbol behaviour from §7.4. The salt does
	// not reach the artifact; only the read happens.
	if lineHash(payload.String())%2 == 0 {
		if fd, err := p.Open("/dev/urandom", abi.ORdonly, 0); err == abi.OK {
			salt := make([]byte, 16)
			p.Read(fd, salt)
			p.Close(fd)
		}
	}
	exe := guest.MakeExe("cbin", []byte(payload.String()))
	if err := p.WriteFile(out, exe, 0o755); err != abi.OK {
		p.Eprintf("ld: %s: %s\n", out, err)
		return 1
	}
	return 0
}

// tarMain archives a directory: tar -cf <out> <dir>.
//
// Member order is getdents order (host hash order natively, sorted under
// DetTrace) and each header records the file's mtime from stat — the two
// filesystem leaks that make zero stock packages bitwise-reproducible
// (§6.1).
func tarMain(p *guest.Proc) int {
	argv := p.Argv()
	var out, dir string
	rootOwner := false
	for i := 1; i < len(argv); i++ {
		switch {
		case argv[i] == "-cf" && i+1 < len(argv):
			out = argv[i+1]
			i++
		case argv[i] == "--owner=0":
			rootOwner = true
		case !strings.HasPrefix(argv[i], "-"):
			dir = argv[i]
		}
	}
	if out == "" || dir == "" {
		p.Eprintf("tar: usage: tar -cf out dir\n")
		return 2
	}
	ar := &artar.Archive{}
	if code := tarWalk(p, ar, dir, "", rootOwner); code != 0 {
		return code
	}
	if err := p.WriteFile(out, ar.Pack(), 0o644); err != abi.OK {
		p.Eprintf("tar: %s: %s\n", out, err)
		return 1
	}
	return 0
}

func tarWalk(p *guest.Proc, ar *artar.Archive, root, rel string, rootOwner bool) int {
	dir := root
	if rel != "" {
		dir = root + "/" + rel
	}
	ents, err := p.ReadDir(dir)
	if err != abi.OK {
		p.Eprintf("tar: %s: %s\n", dir, err)
		return 1
	}
	for _, e := range ents {
		name := e.Name
		if rel != "" {
			name = rel + "/" + e.Name
		}
		full := root + "/" + name
		st, serr := p.Stat(full)
		if serr != abi.OK {
			continue
		}
		uid, gid := st.UID, st.GID
		if rootOwner {
			uid, gid = 0, 0
		}
		switch {
		case st.IsDir():
			ar.Add(artar.Member{Name: name + "/", Mode: st.Mode, UID: uid, GID: gid, Mtime: st.Mtime.Sec})
			if code := tarWalk(p, ar, root, name, rootOwner); code != 0 {
				return code
			}
		case st.IsRegular():
			data, rerr := p.ReadFile(full)
			if rerr != abi.OK {
				continue
			}
			ar.Add(artar.Member{Name: name, Mode: st.Mode, UID: uid, GID: gid, Mtime: st.Mtime.Sec, Data: data})
		}
	}
	return 0
}

// gzipMain compresses one file in place (file -> file.gz), embedding the
// current time in the header the way RFC 1952 gzip does — a classic
// reproducibility bug.
func gzipMain(p *guest.Proc) int {
	argv := p.Argv()
	if len(argv) < 2 {
		p.Eprintf("gzip: usage: gzip file\n")
		return 2
	}
	in := argv[len(argv)-1]
	data, err := p.ReadFile(in)
	if err != abi.OK {
		p.Eprintf("gzip: %s: %s\n", in, err)
		return 1
	}
	p.Work(int64(len(data)) * 60)
	header := fmt.Sprintf("GZIP1 mtime=%d orig=%q\n", p.Time(), in)
	// "Compression": a stable digest plus the original (we archive, not
	// shrink; bitwise identity is what matters).
	body := fmt.Sprintf("crc=%08x len=%d\n", lineHash(string(data)), len(data))
	outData := append([]byte(header+body), data...)
	if werr := p.WriteFile(in+".gz", outData, 0o644); werr != abi.OK {
		return 1
	}
	p.Unlink(in)
	return 0
}

// dpkgDebMain builds a .deb: dpkg-deb --build <pkgroot> <out.deb>.
// The data member is produced by spawning the real tar program.
func dpkgDebMain(p *guest.Proc) int {
	argv := p.Argv()
	var root, out string
	for i := 1; i < len(argv); i++ {
		if strings.HasPrefix(argv[i], "--") {
			continue
		}
		if root == "" {
			root = argv[i]
		} else {
			out = argv[i]
		}
	}
	if root == "" || out == "" {
		p.Eprintf("dpkg-deb: usage: dpkg-deb --build root out.deb\n")
		return 2
	}
	control, err := p.ReadFile(root + "/DEBIAN/control")
	if err != abi.OK {
		p.Eprintf("dpkg-deb: no control file in %s\n", root)
		return 1
	}
	dataTar := "/tmp/data.tar"
	pid, serr := p.Spawn("/bin/tar", []string{"tar", "--owner=0", "-cf", dataTar, root + "/root"}, nil)
	if serr != abi.OK {
		p.Eprintf("dpkg-deb: spawn tar: %s\n", serr)
		return 1
	}
	wr, _ := p.Waitpid(pid, 0)
	if !wr.Status.Exited() || wr.Status.ExitCode() != 0 {
		p.Eprintf("dpkg-deb: tar failed\n")
		return 1
	}
	data, _ := p.ReadFile(dataTar)
	p.Unlink(dataTar)

	st, _ := p.Stat(root + "/DEBIAN/control")
	deb := &artar.Archive{}
	deb.Add(artar.Member{Name: "debian-binary", Mode: 0o644, Mtime: st.Mtime.Sec, Data: []byte("2.0\n")})
	deb.Add(artar.Member{Name: "control.tar", Mode: 0o644, Mtime: st.Mtime.Sec, Data: control})
	deb.Add(artar.Member{Name: "data.tar", Mode: 0o644, Mtime: st.Mtime.Sec, Data: data})
	if werr := p.WriteFile(out, deb.Pack(), 0o644); werr != abi.OK {
		p.Eprintf("dpkg-deb: %s: %s\n", out, werr)
		return 1
	}
	return 0
}

// installMain copies a file: install <src> <dst>.
func installMain(p *guest.Proc) int {
	argv := p.Argv()
	if len(argv) < 3 {
		p.Eprintf("install: usage: install src dst\n")
		return 2
	}
	src, dst := argv[1], argv[2]
	data, err := p.ReadFile(src)
	if err != abi.OK {
		p.Eprintf("install: %s: %s\n", src, err)
		return 1
	}
	st, _ := p.Stat(src)
	if werr := p.WriteFile(dst, data, st.Mode&abi.ModePermMask); werr != abi.OK {
		p.Eprintf("install: %s: %s\n", dst, werr)
		return 1
	}
	return 0
}
