package workload

import (
	"fmt"
	"strings"

	"repro/internal/guest"
)

// cbinMain is the generic "compiled binary": the program every ld-produced
// executable resolves to. Its behaviour is a pure function of the payload
// the linker embedded, which is how a binary built under DetTrace can be
// validated to behave identically to a natively built one (§7.2).
//
// Supported modes:
//
//	prog --selftest    run the embedded test suite, print a summary
//	prog               print a banner derived from the payload
func cbinMain(p *guest.Proc) int {
	payload := string(p.Image.Payload)
	selftest := len(p.Argv()) > 1 && p.Argv()[1] == "--selftest"

	// Parse embedded metadata: the compiler forwards `@tests:N[:XF[:US]]@`
	// directives as "meta:tests:N:XF:US" lines.
	tests, xfail, unsupported := 0, 0, 0
	codeLines := 0
	for _, line := range strings.Split(payload, "\n") {
		switch {
		case strings.HasPrefix(line, "meta:tests:"):
			parts := strings.Split(strings.TrimPrefix(line, "meta:tests:"), ":")
			if len(parts) > 0 {
				tests = atoiDefault(parts[0], 0)
			}
			if len(parts) > 1 {
				xfail = atoiDefault(parts[1], 0)
			}
			if len(parts) > 2 {
				unsupported = atoiDefault(parts[2], 0)
			}
		case strings.HasPrefix(line, "code:"):
			codeLines++
		}
	}

	if !selftest {
		p.Printf("%s: %d code units linked\n", p.Argv()[0], codeLines)
		return 0
	}
	if tests == 0 {
		tests = codeLines
	}
	// Run the suite: outcomes are a pure function of the linked payload.
	// The report is accumulated and written in one burst, like a buffered
	// stdio stream at exit; large reports overflow the pipe to the driver
	// and exercise DetTrace's partial-write retries.
	p.Work(int64(tests) * 2_000)
	pass := tests - xfail - unsupported
	var report strings.Builder
	if tests >= 100 {
		groups := tests / 3
		if groups > 150 {
			groups = 150
		}
		for g := 0; g < groups; g++ {
			fmt.Fprintf(&report, "group %04d ok\n", g)
		}
	}
	fmt.Fprintf(&report, "Testing: %d tests\n", tests)
	fmt.Fprintf(&report, "  Expected Passes    : %d\n", pass)
	fmt.Fprintf(&report, "  Expected Failures  : %d\n", xfail)
	fmt.Fprintf(&report, "  Unsupported Tests  : %d\n", unsupported)
	p.WriteString(1, report.String())
	return 0
}
