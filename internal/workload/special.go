package workload

import (
	"repro/internal/abi"
	"repro/internal/guest"
)

// The "special" steps reproduce the three unsupported-operation classes of
// §7.1.1 beyond busy-waiting: socket use, cross-process signals, and the
// long tail of miscellaneous system calls. Each is a perfectly ordinary
// build-system pattern that works natively and trips a reproducible
// DetTrace container error.

// specialSocket models a build that talks to a local daemon over an AF_UNIX
// socket (license servers, test coordinators, compiler caches).
func specialSocket(p *guest.Proc) int {
	srv, err := p.Socket()
	if err != abi.OK {
		p.Eprintf("socketd: socket: %s\n", err)
		return 1
	}
	if err := p.Bind(srv, "/tmp/.build-daemon"); err != abi.OK {
		return 1
	}
	if err := p.Listen(srv); err != abi.OK {
		return 1
	}
	pid, ferr := p.Fork(func(c *guest.Proc) int {
		fd, err := c.Socket()
		if err != abi.OK {
			return 1
		}
		if err := c.Connect(fd, "/tmp/.build-daemon"); err != abi.OK {
			return 1
		}
		c.Send(fd, []byte("BUILD-QUERY"))
		buf := make([]byte, 32)
		n, _ := c.Recv(fd, buf)
		c.Close(fd)
		if string(buf[:n]) != "OK" {
			return 1
		}
		return 0
	})
	if ferr != abi.OK {
		return 1
	}
	conn, aerr := p.Accept(srv)
	if aerr != abi.OK {
		return 1
	}
	buf := make([]byte, 32)
	p.Recv(conn, buf)
	p.Send(conn, []byte("OK"))
	p.Close(conn)
	p.Close(srv)
	wr, _ := p.Waitpid(pid, 0)
	return wr.Status.ExitCode()
}

// specialSignal models a watchdog pattern: spawn a helper, later kill it.
// Cross-process signalling is unsupported under DetTrace (§5.4).
func specialSignal(p *guest.Proc) int {
	pid, err := p.Fork(func(c *guest.Proc) int {
		c.Pause() // wait to be killed
		return 0
	})
	if err != abi.OK {
		return 1
	}
	p.Work(1_000_000)
	if err := p.Kill(pid, abi.SIGTERM); err != abi.OK {
		return 1
	}
	wr, _ := p.Waitpid(pid, 0)
	if !wr.Status.Signaled() {
		return 1
	}
	return 0
}

// specialMisc pokes a syscall from the miscellaneous tail (personality, as
// old JVMs and qemu-ish tools do). The native kernel answers ENOSYS, which
// the build tolerates; DetTrace has no determinization story for it and
// aborts.
func specialMisc(p *guest.Proc) int {
	sc := &abi.Syscall{Num: abi.SysPersonality}
	p.T.Syscall(sc)
	// ENOSYS is fine; the probe is advisory.
	return 0
}
