package workload

import (
	"fmt"
	"strings"

	"repro/internal/abi"
	"repro/internal/guest"
)

// makefile is the parsed form of our Makefile: key=value lines.
type makefile struct {
	compiler string // "cc" or "javac"
	srcdir   string
	builddir string
	logfile  string // when set, per-unit completion lines are appended
	threads  string // javac: "futex" or "busywait"
	output   string // linked binary path
}

func parseMakefile(p *guest.Proc) (makefile, abi.Errno) {
	mf := makefile{compiler: "cc", srcdir: "src", builddir: "build", output: "build/prog"}
	data, err := p.ReadFile("Makefile")
	if err != abi.OK {
		return mf, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		k, v, ok := strings.Cut(strings.TrimSpace(line), "=")
		if !ok {
			continue
		}
		switch k {
		case "compiler":
			mf.compiler = v
		case "srcdir":
			mf.srcdir = v
		case "builddir":
			mf.builddir = v
		case "logfile":
			mf.logfile = v
		case "threads":
			mf.threads = v
		case "output":
			mf.output = v
		}
	}
	return mf, abi.OK
}

// makeMoreToDo is the exit status chunked make returns when it built a full
// chunk and unbuilt units remain: not a failure, an invitation to invoke it
// again. The checkpoint trampoline seals the partial tree between chunks.
const makeMoreToDo = 10

// makeMain is the build driver: make [-jN] [-chunkC].
//
// It lists the source directory in getdents order, compiles every unit —
// with up to N concurrent compiler processes, exactly like a parallel make
// whose jobserver reaps children as they finish — and links. When a logfile
// is configured, completion lines are appended in *reap order*, so a -j>1
// baseline build records its scheduling races into the tree.
//
// With -chunkC (checkpoint mode only) make is incremental: units whose
// object already exists are skipped — the on-disk tree is the progress
// record — and at most C missing units are compiled before it exits with
// makeMoreToDo instead of linking.
func makeMain(p *guest.Proc) int {
	jobs, chunk := 1, 0
	for _, a := range p.Argv()[1:] {
		if strings.HasPrefix(a, "-chunk") {
			chunk = atoiDefault(strings.TrimPrefix(a, "-chunk"), 0)
		} else if strings.HasPrefix(a, "-j") {
			jobs = atoiDefault(strings.TrimPrefix(a, "-j"), 1)
		}
	}
	if jobs < 1 {
		jobs = 1
	}
	mf, err := parseMakefile(p)
	if err != abi.OK {
		p.Eprintf("make: *** no Makefile. Stop.\n")
		return 2
	}
	ents, derr := p.ReadDir(mf.srcdir)
	if derr != abi.OK {
		p.Eprintf("make: %s: %s\n", mf.srcdir, derr)
		return 2
	}
	var units []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name, ".c") {
			units = append(units, e.Name)
		}
	}
	p.MkdirAll(mf.builddir, 0o755)

	partial := false
	if chunk > 0 {
		var missing []string
		for _, u := range units {
			obj := mf.builddir + "/" + strings.TrimSuffix(u, ".c") + ".o"
			if p.Access(obj) != abi.OK {
				missing = append(missing, u)
			}
		}
		units = missing
		if len(units) > chunk {
			units, partial = units[:chunk], true
		}
	}
	if len(units) > 0 {
		if mf.compiler == "javac" {
			if code := javacCompile(p, mf, units, jobs); code != 0 {
				return code
			}
		} else if code := makeParallelCC(p, mf, units, jobs); code != 0 {
			return code
		}
	}
	if partial {
		return makeMoreToDo
	}

	// Link: object list in getdents order of the build directory.
	oents, _ := p.ReadDir(mf.builddir)
	argv := []string{"ld", "-o", mf.output}
	for _, e := range oents {
		if strings.HasSuffix(e.Name, ".o") {
			argv = append(argv, mf.builddir+"/"+e.Name)
		}
	}
	pid, serr := p.Spawn("/bin/ld", argv, nil)
	if serr != abi.OK {
		p.Eprintf("make: spawn ld: %s\n", serr)
		return 2
	}
	wr, _ := p.Waitpid(pid, 0)
	if !wr.Status.Exited() || wr.Status.ExitCode() != 0 {
		p.Eprintf("make: *** ld failed. Stop.\n")
		return 2
	}
	return 0
}

// makeParallelCC runs one cc process per unit, at most jobs at a time.
func makeParallelCC(p *guest.Proc, mf makefile, units []string, jobs int) int {
	type job struct{ unit string }
	pidUnit := make(map[int]string)
	next := 0
	launch := func() abi.Errno {
		u := units[next]
		next++
		obj := mf.builddir + "/" + strings.TrimSuffix(u, ".c") + ".o"
		pid, err := p.Spawn("/bin/cc", []string{"cc", "-O2", "-o", obj, mf.srcdir + "/" + u}, nil)
		if err != abi.OK {
			return err
		}
		pidUnit[pid] = u
		return abi.OK
	}
	for next < len(units) && len(pidUnit) < jobs {
		if err := launch(); err != abi.OK {
			p.Eprintf("make: spawn cc: %s\n", err)
			return 2
		}
	}
	for len(pidUnit) > 0 {
		wr, werr := p.Wait()
		if werr != abi.OK {
			p.Eprintf("make: wait: %s\n", werr)
			return 2
		}
		u, ok := pidUnit[wr.PID]
		if !ok {
			continue
		}
		delete(pidUnit, wr.PID)
		if !wr.Status.Exited() || wr.Status.ExitCode() != 0 {
			p.Eprintf("make: *** [%s] Error %d\n", u, wr.Status.ExitCode())
			return 2
		}
		p.Printf("  CC %s\n", u)
		if mf.logfile != "" {
			p.AppendFile(mf.logfile, []byte("CC "+u+"\n"), 0o644)
		}
		if next < len(units) {
			if err := launch(); err != abi.OK {
				return 2
			}
		}
	}
	_ = job{}
	return 0
}

// javacCompile models a multi-threaded compiler (the Java build class of
// §7.1.1): worker threads pull units from a shared queue. The "futex"
// flavour blocks properly and works — slowly — under DetTrace's serialized
// threads; the "busywait" flavour spins on the queue word and is exactly
// the pattern DetTrace cannot support.
func javacCompile(p *guest.Proc, mf makefile, units []string, jobs int) int {
	const (
		wordNext = 0x100 // next unit index to take
		wordDone = 0x101 // completed unit count
		wordErr  = 0x102
	)
	nthreads := jobs
	if nthreads > 4 {
		nthreads = 4
	}
	if nthreads < 2 {
		nthreads = 2
	}
	busy := mf.threads == "busywait"
	worker := func(w *guest.Proc) int {
		for {
			idx := w.Load(wordNext)
			if int(idx) >= len(units) {
				return 0
			}
			w.Store(wordNext, idx+1)
			u := units[idx]
			src, err := w.ReadFile(mf.srcdir + "/" + u)
			if err != abi.OK {
				w.Store(wordErr, 1)
				return 1
			}
			w.Work(int64(len(src)) * 350 * int64(atoiDefault(w.Getenv("CCFACTOR"), 1)))
			var obj strings.Builder
			obj.WriteString("OBJ1\n")
			for _, line := range strings.Split(string(src), "\n") {
				if v, ok := p1Directive(w, line); ok {
					obj.WriteString(v + "\n")
				} else if line != "" {
					fmt.Fprintf(&obj, "code:%08x\n", lineHash(line))
				}
			}
			objPath := mf.builddir + "/" + strings.TrimSuffix(u, ".c") + ".o"
			if werr := w.WriteFile(objPath, []byte(obj.String()), 0o644); werr != abi.OK {
				w.Store(wordErr, 1)
				return 1
			}
			w.Add(wordDone, 1)
			w.FutexWake(wordDone, 8)
		}
	}
	for i := 0; i < nthreads; i++ {
		p.CloneThread(worker)
	}
	// The coordinator waits for completion.
	for p.Load(wordDone) < int64(len(units)) && p.Load(wordErr) == 0 {
		if busy {
			p.Compute(200) // spin: unsupported under serialized threads
			continue
		}
		p.FutexWait(wordDone, p.Load(wordDone))
	}
	if p.Load(wordErr) != 0 {
		p.Eprintf("javac: compilation failed\n")
		return 2
	}
	return 0
}
