package seccomp

import (
	"testing"

	"repro/internal/abi"
)

func TestDefaultAction(t *testing.T) {
	f := New(Trace)
	if f.Decide(abi.SysRead) != Trace {
		t.Errorf("default should apply to unlisted syscalls")
	}
	f.Set(Allow, abi.SysRead)
	if f.Decide(abi.SysRead) != Allow {
		t.Errorf("explicit verdict ignored")
	}
	if f.Decide(abi.SysWrite) != Trace {
		t.Errorf("verdict leaked to other syscalls")
	}
}

func TestTraceAll(t *testing.T) {
	f := TraceAll()
	for _, nr := range []abi.Sysno{abi.SysRead, abi.SysGetcwd, abi.SysClose, abi.SysTime} {
		if f.Decide(nr) != Trace {
			t.Errorf("%v not traced under TraceAll", nr)
		}
	}
}

// The DetTrace filter's invariant: every syscall whose result can depend on
// the host MUST trap. The paper's taxonomy (§4, §5) enumerates them.
func TestDetTraceFilterTrapsEverythingIrreproducible(t *testing.T) {
	f := DetTrace()
	mustTrace := []abi.Sysno{
		// time and clocks (§5.3)
		abi.SysTime, abi.SysGettimeofday, abi.SysClockGettime, abi.SysNanosleep,
		// timers and signals (§5.4)
		abi.SysAlarm, abi.SysSetitimer, abi.SysPause, abi.SysKill,
		// randomness (§5.2)
		abi.SysGetrandom,
		// filesystem metadata (§5.5)
		abi.SysOpen, abi.SysStat, abi.SysLstat, abi.SysFstat,
		abi.SysGetdents, abi.SysUtimes, abi.SysUtimensat,
		// partial IO (§5.5)
		abi.SysRead, abi.SysWrite,
		// identity (§5.1) and machine (§5.8)
		abi.SysGetpid, abi.SysGetppid, abi.SysUname, abi.SysSysinfo,
		// process lifecycle and blocking (§5.6)
		abi.SysFork, abi.SysClone, abi.SysExecve, abi.SysWait4, abi.SysFutex,
		// unsupported classes must reach the tracer to raise the container
		// error (§5.9)
		abi.SysSocket, abi.SysConnect, abi.SysMount, abi.SysPersonality,
	}
	for _, nr := range mustTrace {
		if f.Decide(nr) != Trace {
			t.Errorf("%v must be traced", nr)
		}
	}
}

func TestDetTraceFilterAllowsTheCheapSet(t *testing.T) {
	f := DetTrace()
	allowed := []abi.Sysno{
		abi.SysClose, abi.SysLseek, abi.SysDup2, abi.SysGetcwd,
		abi.SysSchedYield, abi.SysBrk, abi.SysUmask, abi.SysSync,
	}
	for _, nr := range allowed {
		if f.Decide(nr) != Allow {
			t.Errorf("%v should pass through without stops (§5.11)", nr)
		}
	}
}
