package seccomp

import (
	"testing"

	"repro/internal/abi"
)

// bufferSet is the documented Buffer-verdict set of DetTraceBuffered: the
// time and pid families and fstat (moved from Trace) plus
// lseek/fcntl/umask/getcwd (moved from Allow).
var bufferSet = map[abi.Sysno]bool{
	abi.SysTime: true, abi.SysGettimeofday: true, abi.SysClockGettime: true,
	abi.SysGetpid: true, abi.SysGetppid: true, abi.SysGetTid: true, abi.SysFstat: true,
	abi.SysLseek: true, abi.SysFcntl: true, abi.SysUmask: true, abi.SysGetcwd: true,
}

// DetTraceBuffered must differ from DetTrace in exactly the documented set —
// every other syscall keeps its plain-DetTrace verdict, so the
// DisableSyscallBuf ablation reproduces pre-buffer behaviour bit for bit.
func TestDetTraceBufferedDelta(t *testing.T) {
	plain, buf := DetTrace(), DetTraceBuffered()
	for nr := abi.Sysno(0); int(nr) < abi.SysnoSlots; nr++ {
		p, b := plain.Decide(nr), buf.Decide(nr)
		if bufferSet[nr] {
			if b != Buffer {
				t.Errorf("%v: want Buffer, got %v", nr, b)
			}
			if p == Buffer {
				t.Errorf("%v: plain DetTrace must not buffer", nr)
			}
			continue
		}
		if b != p {
			t.Errorf("%v: verdict moved from %v to %v outside the buffer set", nr, p, b)
		}
	}
}

// Every filter covers the whole dispatch universe: no syscall the kernel can
// see escapes a verdict, and the no-seccomp fallback traces all of it.
func TestFiltersCoverTheSyscallUniverse(t *testing.T) {
	all, plain, buf := TraceAll(), DetTrace(), DetTraceBuffered()
	for _, nr := range abi.Sysnos() {
		if all.Decide(nr) != Trace {
			t.Errorf("%v: TraceAll must trace everything", nr)
		}
		for name, a := range map[string]Action{"DetTrace": plain.Decide(nr), "DetTraceBuffered": buf.Decide(nr)} {
			if a != Allow && a != Trace && a != Buffer {
				t.Errorf("%v: %s returned invalid verdict %d", nr, name, a)
			}
		}
		if plain.Decide(nr) == Buffer {
			t.Errorf("%v: DetTrace must never buffer", nr)
		}
	}
	// Out-of-range numbers fall back to the default, on every filter.
	for _, nr := range []abi.Sysno{-1, abi.SysnoSlots, 1 << 20} {
		if all.Decide(nr) != Trace || plain.Decide(nr) != Trace || buf.Decide(nr) != Trace {
			t.Errorf("out-of-range %d must hit the Trace default", nr)
		}
	}
}

// The dense table must agree with what Set stored, and New's default must
// reach unlisted slots — the hot-path rewrite cannot change semantics.
func TestDenseTableMatchesSetVerdicts(t *testing.T) {
	f := New(Trace).Set(Allow, abi.SysClose).Set(Buffer, abi.SysTime)
	if f.Decide(abi.SysClose) != Allow || f.Decide(abi.SysTime) != Buffer {
		t.Errorf("explicit verdicts lost")
	}
	if f.Decide(abi.SysRead) != Trace {
		t.Errorf("default verdict lost")
	}
	z := New(Allow)
	if z.Decide(abi.SysRead) != Allow || z.Decide(1<<20) != Allow {
		t.Errorf("non-zero default not compiled into the table")
	}
}
