// Package seccomp models the seccomp-bpf selective-interception layer of
// §5.11: a filter program decides, per system call number, whether the call
// traps to the tracer or executes natively. Calls that are naturally
// reproducible inside the container (getcwd, close, lseek, ...) are allowed
// through, eliminating their ptrace stop overhead entirely.
package seccomp

import "repro/internal/abi"

// Action is the filter verdict for one system call.
type Action int

// Filter verdicts.
const (
	// Allow executes the call with no tracer involvement.
	Allow Action = iota
	// Trace stops the call at the tracer.
	Trace
)

// Filter is an installed seccomp-bpf program: a per-syscall verdict table
// with a default.
type Filter struct {
	verdicts map[abi.Sysno]Action
	def      Action
}

// New returns a filter with the given default action.
func New(def Action) *Filter {
	return &Filter{verdicts: make(map[abi.Sysno]Action), def: def}
}

// Set assigns a verdict to the listed syscalls.
func (f *Filter) Set(a Action, nrs ...abi.Sysno) *Filter {
	for _, nr := range nrs {
		f.verdicts[nr] = a
	}
	return f
}

// Decide returns the verdict for nr.
func (f *Filter) Decide(nr abi.Sysno) Action {
	if a, ok := f.verdicts[nr]; ok {
		return a
	}
	return f.def
}

// TraceAll is the no-seccomp fallback: every call stops twice at the tracer
// (pre-4.8 kernels, or DetTrace's --no-seccomp debugging mode).
func TraceAll() *Filter { return New(Trace) }

// DetTrace returns the filter the DetTrace container installs: default
// Trace, with the naturally-reproducible set allowed through.
//
// A call may be allowed only if, in a container whose execution order is
// already determinized by the scheduler, its result cannot depend on the
// host: pure fd bookkeeping, path mutation with deterministic errnos, and
// address-space management whose values DetTrace does not promise to hide.
// Everything touching time, identity, randomness, metadata (inodes,
// timestamps, sizes), directory order, blocking, or process lifecycle must
// trap.
func DetTrace() *Filter {
	f := New(Trace)
	f.Set(Allow,
		abi.SysClose,
		abi.SysLseek,
		abi.SysDup2,
		abi.SysGetcwd,
		abi.SysChdir,
		abi.SysAccess,
		abi.SysMkdir,
		abi.SysRmdir,
		abi.SysUnlink,
		abi.SysUnlinkat,
		abi.SysRename,
		abi.SysLink,
		abi.SysSymlink,
		abi.SysReadlink,
		abi.SysChmod,
		abi.SysChown,
		abi.SysTruncate,
		abi.SysFtruncate,
		abi.SysBrk,
		abi.SysMmap,
		abi.SysUmask,
		abi.SysFcntl,
		abi.SysSync,
		abi.SysSchedYield,
		abi.SysSchedAffinity,
		abi.SysRtSigaction,
		abi.SysPrctl,
		abi.SysArchPrctl,
		abi.SysIoctl,
		abi.SysPipe,
		abi.SysPipe2,
		abi.SysSetuid,
		abi.SysGetuid,
		abi.SysGetgid,
		abi.SysChroot,
	)
	return f
}
