// Package seccomp models the seccomp-bpf selective-interception layer of
// §5.11: a filter program decides, per system call number, whether the call
// traps to the tracer or executes natively. Calls that are naturally
// reproducible inside the container (getcwd, close, lseek, ...) are allowed
// through, eliminating their ptrace stop overhead entirely.
package seccomp

import "repro/internal/abi"

// Action is the filter verdict for one system call.
type Action int

// Filter verdicts.
const (
	// Allow executes the call with no tracer involvement.
	Allow Action = iota
	// Trace stops the call at the tracer.
	Trace
	// Buffer records the call in the tracee-side syscall buffer (the
	// rr-style fast path): the tracer's wrapper services it in-process with
	// no stop, and the accumulated records reach the tracer in one batched
	// flush. Only calls whose DetTrace answer is a pure function of
	// container state may carry this verdict.
	Buffer
)

// Filter is an installed seccomp-bpf program: a per-syscall verdict table
// with a default. The table is a precompiled dense array — Decide sits on
// the dispatch hot path and must not hash.
type Filter struct {
	table [abi.SysnoSlots]Action
	def   Action
}

// New returns a filter with the given default action.
func New(def Action) *Filter {
	f := &Filter{def: def}
	if def != 0 {
		for i := range f.table {
			f.table[i] = def
		}
	}
	return f
}

// Set assigns a verdict to the listed syscalls.
func (f *Filter) Set(a Action, nrs ...abi.Sysno) *Filter {
	for _, nr := range nrs {
		f.table[nr] = a
	}
	return f
}

// Decide returns the verdict for nr.
func (f *Filter) Decide(nr abi.Sysno) Action {
	if nr < 0 || int(nr) >= len(f.table) {
		return f.def
	}
	return f.table[nr]
}

// TraceAll is the no-seccomp fallback: every call stops twice at the tracer
// (pre-4.8 kernels, or DetTrace's --no-seccomp debugging mode).
func TraceAll() *Filter { return New(Trace) }

// DetTrace returns the filter the DetTrace container installs: default
// Trace, with the naturally-reproducible set allowed through.
//
// A call may be allowed only if, in a container whose execution order is
// already determinized by the scheduler, its result cannot depend on the
// host: pure fd bookkeeping, path mutation with deterministic errnos, and
// address-space management whose values DetTrace does not promise to hide.
// Everything touching time, identity, randomness, metadata (inodes,
// timestamps, sizes), directory order, blocking, or process lifecycle must
// trap.
func DetTrace() *Filter {
	f := New(Trace)
	f.Set(Allow,
		abi.SysClose,
		abi.SysLseek,
		abi.SysDup2,
		abi.SysGetcwd,
		abi.SysChdir,
		abi.SysAccess,
		abi.SysMkdir,
		abi.SysRmdir,
		abi.SysUnlink,
		abi.SysUnlinkat,
		abi.SysRename,
		abi.SysLink,
		abi.SysSymlink,
		abi.SysReadlink,
		abi.SysChmod,
		abi.SysChown,
		abi.SysTruncate,
		abi.SysFtruncate,
		abi.SysBrk,
		abi.SysMmap,
		abi.SysUmask,
		abi.SysFcntl,
		abi.SysSync,
		abi.SysSchedYield,
		abi.SysSchedAffinity,
		abi.SysRtSigaction,
		abi.SysPrctl,
		abi.SysArchPrctl,
		abi.SysIoctl,
		abi.SysPipe,
		abi.SysPipe2,
		abi.SysSetuid,
		abi.SysGetuid,
		abi.SysGetgid,
		abi.SysChroot,
	)
	return f
}

// DetTraceBuffered is DetTrace plus the in-tracee syscall buffer (§5.11's
// stop-elimination taken one step further, after rr's syscallbuf): light
// calls whose determinized answer the tracer's in-process wrapper can compute
// — from the logical clock, the pid map, or a directly-executed kernel
// service routine that never blocks — are recorded locally and flushed in
// one combined stop.
//
// Two groups move relative to DetTrace. From Trace: the time family, the pid
// family and fstat — their handlers compute a pure function of tracer state
// (the logical clock, the pid map, the inode/mtime virtualization maps),
// which the lockstep wrapper can evaluate in-process; fstat is the volume
// win, rr's syscallbuf buffers it for the same reason. From Allow: lseek,
// fcntl, umask and getcwd, which the plain filter let run stop-free but an
// auditing tracer still wants in the event record — buffering gives the
// record without reintroducing the stop.
func DetTraceBuffered() *Filter {
	f := DetTrace()
	f.Set(Buffer,
		abi.SysTime,
		abi.SysGettimeofday,
		abi.SysClockGettime,
		abi.SysGetpid,
		abi.SysGetppid,
		abi.SysGetTid,
		abi.SysFstat,
		abi.SysLseek,
		abi.SysFcntl,
		abi.SysUmask,
		abi.SysGetcwd,
	)
	return f
}
