// Package prng provides the two random sources the system needs:
//
//   - LFSR: the simple linear-feedback shift register DetTrace uses to
//     service getrandom and /dev/urandom inside the container (§5.2). Its
//     stream is a pure function of the container seed, which is exactly the
//     property the paper relies on: "true randomness" enters only through
//     the seed, in a controlled way.
//
//   - Host: the simulated machine's entropy pool. The baseline kernel draws
//     boot-time entropy (inode allocation offsets, ASLR bases, clock jitter,
//     scheduling tie-breaks, /dev/urandom contents) from it. Different Host
//     seeds model different physical runs of the same machine; reproducing
//     output across Host seeds is the whole game.
package prng

// LFSR is a 64-bit Galois linear-feedback shift register. The zero state is
// invalid, so the constructor maps seed 0 to a fixed nonzero value.
type LFSR struct {
	state uint64
}

// NewLFSR returns an LFSR seeded with the given value. The seed is
// scrambled first so that adjacent seeds (1, 2, 3...) do not produce
// correlated early output — users pick small seeds.
func NewLFSR(seed uint64) *LFSR {
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x1d872b41c0de5eed
	}
	return &LFSR{state: z}
}

// taps for a maximal-length 64-bit LFSR (x^64 + x^63 + x^61 + x^60 + 1).
const lfsrTaps = 0xd800000000000000

// NextBit advances the register one step and returns the output bit.
func (l *LFSR) NextBit() uint64 {
	out := l.state & 1
	l.state >>= 1
	if out == 1 {
		l.state ^= lfsrTaps
	}
	return out
}

// NextByte returns the next 8 output bits.
func (l *LFSR) NextByte() byte {
	var b byte
	for i := 0; i < 8; i++ {
		b = b<<1 | byte(l.NextBit())
	}
	return b
}

// Fill writes pseudo-random bytes over the whole buffer.
func (l *LFSR) Fill(p []byte) {
	for i := range p {
		p[i] = l.NextByte()
	}
}

// Uint64 returns the next 64 bits of the stream.
func (l *LFSR) Uint64() uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(l.NextByte())
	}
	return v
}

// State returns the register's current state, the complete cursor of the
// stream. Sealing it into a checkpoint and restoring via SetState resumes
// the byte sequence exactly where it left off.
func (l *LFSR) State() uint64 { return l.state }

// SetState rewinds or fast-forwards the register to a previously captured
// State. The zero state is invalid and mapped to the same fixed nonzero
// value the constructor uses.
func (l *LFSR) SetState(s uint64) {
	if s == 0 {
		s = 0x1d872b41c0de5eed
	}
	l.state = s
}

// Host is the machine entropy pool, a splitmix64 sequence. It is
// deliberately a different generator family from LFSR so container
// randomness can never accidentally correlate with host randomness.
type Host struct {
	state uint64
}

// NewHost returns a host entropy pool for one simulated physical run.
func NewHost(seed uint64) *Host { return &Host{state: seed} }

// Uint64 returns the next value of the pool.
func (h *Host) Uint64() uint64 {
	h.state += 0x9e3779b97f4a7c15
	z := h.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). n must be positive.
func (h *Host) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive n")
	}
	return int(h.Uint64() % uint64(n))
}

// Int63n returns a value in [0, n). n must be positive.
func (h *Host) Int63n(n int64) int64 {
	if n <= 0 {
		panic("prng: Int63n with non-positive n")
	}
	return int64(h.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (h *Host) Float64() float64 {
	return float64(h.Uint64()>>11) / (1 << 53)
}

// Fill writes entropy over the whole buffer.
func (h *Host) Fill(p []byte) {
	var v uint64
	for i := range p {
		if i%8 == 0 {
			v = h.Uint64()
		}
		p[i] = byte(v)
		v >>= 8
	}
}

// Fork derives an independent child pool; the parent advances one step.
func (h *Host) Fork() *Host { return NewHost(h.Uint64()) }

// State returns the pool's cursor. A splitmix64 sequence is a pure function
// of its counter, so the single word is the complete draw position.
func (h *Host) State() uint64 { return h.state }

// SetState restores a cursor captured by State.
func (h *Host) SetState(s uint64) { h.state = s }
