package prng

import (
	"testing"
	"testing/quick"
)

func TestLFSRDeterministic(t *testing.T) {
	a, b := NewLFSR(123), NewLFSR(123)
	for i := 0; i < 1000; i++ {
		if a.NextByte() != b.NextByte() {
			t.Fatalf("streams diverge at byte %d", i)
		}
	}
}

func TestLFSRSeedsDiffer(t *testing.T) {
	a, b := NewLFSR(1), NewLFSR(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.NextByte() == b.NextByte() {
			same++
		}
	}
	if same > 16 {
		t.Errorf("seeds 1 and 2 agree on %d/64 bytes", same)
	}
}

func TestLFSRZeroSeedIsValid(t *testing.T) {
	l := NewLFSR(0)
	var all byte
	for i := 0; i < 64; i++ {
		all |= l.NextByte()
	}
	if all == 0 {
		t.Errorf("zero seed produced the stuck all-zero stream")
	}
}

func TestLFSRNoShortCycle(t *testing.T) {
	l := NewLFSR(0xfeed)
	first := make([]byte, 32)
	l.Fill(first)
	// The register must not return to the same 32-byte window soon.
	buf := make([]byte, 32)
	for i := 0; i < 2000; i++ {
		l.Fill(buf)
		if string(buf) == string(first) {
			t.Fatalf("cycle of length %d windows", i+1)
		}
	}
}

func TestLFSRBitBalance(t *testing.T) {
	l := NewLFSR(7)
	ones := 0
	const n = 64_000
	for i := 0; i < n; i++ {
		ones += int(l.NextBit())
	}
	frac := float64(ones) / n
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("bit balance %.3f, want ~0.5", frac)
	}
}

func TestHostDeterministicAndSeedSensitive(t *testing.T) {
	a, b, c := NewHost(9), NewHost(9), NewHost(10)
	for i := 0; i < 100; i++ {
		av, bv, cv := a.Uint64(), b.Uint64(), c.Uint64()
		if av != bv {
			t.Fatalf("same-seed streams diverge")
		}
		if av == cv {
			t.Fatalf("different seeds coincide at step %d", i)
		}
	}
}

func TestHostIntnBounds(t *testing.T) {
	h := NewHost(3)
	for i := 0; i < 10_000; i++ {
		if v := h.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Errorf("Intn(0) should panic")
		}
	}()
	h.Intn(0)
}

func TestHostFloat64Range(t *testing.T) {
	h := NewHost(4)
	for i := 0; i < 10_000; i++ {
		if v := h.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestHostForkIndependence(t *testing.T) {
	parent := NewHost(5)
	child := parent.Fork()
	// The child's stream must not be a shifted copy of the parent's.
	pv := make(map[uint64]bool)
	for i := 0; i < 200; i++ {
		pv[parent.Uint64()] = true
	}
	hits := 0
	for i := 0; i < 200; i++ {
		if pv[child.Uint64()] {
			hits++
		}
	}
	if hits > 2 {
		t.Errorf("child stream overlaps parent in %d/200 values", hits)
	}
}

// Property: Fill(p) fully overwrites p for any length.
func TestFillCoversBuffer(t *testing.T) {
	prop := func(n uint8, seed uint64) bool {
		size := int(n)%257 + 1
		buf := make([]byte, size)
		for i := range buf {
			buf[i] = 0xAA
		}
		NewHost(seed).Fill(buf)
		// With 0xAA sentinel, all-sentinel survival of >8 bytes is
		// overwhelmingly unlikely unless Fill skipped them.
		if size > 8 {
			still := 0
			for _, b := range buf {
				if b == 0xAA {
					still++
				}
			}
			return still < size/2
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: LFSR Uint64 equals eight successive NextByte calls.
func TestLFSRUint64Consistency(t *testing.T) {
	prop := func(seed uint64) bool {
		a, b := NewLFSR(seed), NewLFSR(seed)
		v := a.Uint64()
		var w uint64
		for i := 0; i < 8; i++ {
			w = w<<8 | uint64(b.NextByte())
		}
		return v == w
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
