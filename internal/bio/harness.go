package bio

import (
	"fmt"
	"strings"

	"repro/internal/baseimg"
	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/guest"
	"repro/internal/hashdeep"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/stats"
)

// image builds the chroot for one bio run.
func image(tool Tool) *fs.Image {
	im := baseimg.Minimal()
	im.AddDir("/data", 0o755)
	var fasta strings.Builder
	for i := 0; i < 64; i++ {
		fmt.Fprintf(&fasta, ">seq%03d\nACGTACGTACGTAGCTAGCTAGCATCGATCGATCGTAGCTAGCTAACGT\n", i)
	}
	im.AddFile("/data/input.fasta", 0o644, []byte(fasta.String()))
	im.AddFile("/bin/"+string(tool), 0o755, guest.MakeExe(string(tool), nil))
	return im
}

func registry(tool Tool) *guest.Registry {
	reg := guest.NewRegistry()
	reg.Register(string(tool), Main(tool))
	return reg
}

// RunNative executes the tool natively with the given worker count and
// returns wall time plus the output tree.
func RunNative(tool Tool, procs int, seed uint64, epoch int64) (int64, *fs.Image) {
	reg := registry(tool)
	k := kernel.New(kernel.Config{
		Profile:  machine.BioHaswell(),
		Seed:     seed,
		Epoch:    epoch,
		NumCPU:   16, // the paper runs up to 16 parallel processes
		Image:    image(tool),
		Resolver: reg.Resolver(),
	})
	argv := []string{string(tool), "-np", fmt.Sprint(procs)}
	init := func(t *kernel.Thread) int {
		p := &guest.Proc{T: t}
		if err := p.Exec("/bin/"+string(tool), argv, []string{"PATH=/bin"}); err != 0 {
			return 127
		}
		return 127
	}
	k.Start(init, argv, []string{"PATH=/bin"})
	if err := k.Run(); err != nil {
		panic(fmt.Sprintf("bio native run failed: %v", err))
	}
	return k.Now(), k.FS.SnapshotImage(k.FS.Root)
}

// RunDetTrace executes the tool inside DetTrace.
func RunDetTrace(tool Tool, procs int, hostSeed uint64, epoch int64) (int64, *fs.Image, error) {
	c := core.New(core.Config{
		Image:    image(tool),
		Profile:  machine.BioHaswell(),
		HostSeed: hostSeed,
		Epoch:    epoch,
		NumCPU:   16,
		PRNGSeed: 0xb10,
	})
	argv := []string{string(tool), "-np", fmt.Sprint(procs)}
	res := c.Run(registry(tool), "/bin/"+string(tool), argv, []string{"PATH=/bin"})
	return res.WallTime, res.FS, res.Err
}

// RunDetTraceThreaded executes the pthreads build of the tool inside
// DetTrace with the given sibling-thread count, optionally disabling
// workspace mode (the serialized-thread ablation).
func RunDetTraceThreaded(tool Tool, threads int, hostSeed uint64, epoch int64, disableWs bool) (*core.Result, error) {
	c := core.New(core.Config{
		Image:             image(tool),
		Profile:           machine.BioHaswell(),
		HostSeed:          hostSeed,
		Epoch:             epoch,
		NumCPU:            16,
		PRNGSeed:          0xb10,
		DisableWorkspaces: disableWs,
	})
	argv := []string{string(tool), "-nt", fmt.Sprint(threads)}
	res := c.Run(registry(tool), "/bin/"+string(tool), argv, []string{"PATH=/bin"})
	return res, res.Err
}

// ThreadCell is one row of the workspace thread study (X17): the pthreads
// build under DetTrace with workspaces on vs the serialized ablation.
type ThreadCell struct {
	Tool    Tool
	Threads int
	WsOn    int64
	WsOff   int64
	Speedup float64 // WsOff / WsOn

	// Workspace accounting of the ws-on run.
	Forks     int64
	Merges    int64
	Conflicts int64
}

// RunThreadStudy measures all three tools across the Fig. 6 axis with the
// workspace ablation. It panics if the two modes' output trees differ:
// workspaces must be invisible to everything but the physical clock.
func RunThreadStudy(seed uint64) []ThreadCell {
	var cells []ThreadCell
	for _, tool := range Tools {
		for _, nt := range Fig6Procs {
			on, err := RunDetTraceThreaded(tool, nt, seed+uint64(nt), 1_542_000_000, false)
			if err != nil {
				panic(fmt.Sprintf("bio ws-on threaded run failed: %v", err))
			}
			off, err := RunDetTraceThreaded(tool, nt, seed+uint64(nt), 1_542_000_000, true)
			if err != nil {
				panic(fmt.Sprintf("bio ws-off threaded run failed: %v", err))
			}
			if eq, diff := hashdeep.Equal(hashdeep.HashSubtree(on.FS, "/"), hashdeep.HashSubtree(off.FS, "/")); !eq {
				panic(fmt.Sprintf("bio %s -nt %d: workspace ablation changed the output tree: %s", tool, nt, diff))
			}
			cells = append(cells, ThreadCell{
				Tool: tool, Threads: nt, WsOn: on.WallTime, WsOff: off.WallTime,
				Speedup:   float64(off.WallTime) / float64(on.WallTime),
				Forks:     on.Obs.Counter("workspace_forks").Value(),
				Merges:    on.Obs.Counter("workspace_merges").Value(),
				Conflicts: on.Obs.Counter("workspace_conflicts").Value(),
			})
		}
	}
	return cells
}

// FormatThreadStudy renders the study as a speedup table.
func FormatThreadStudy(cells []ThreadCell) string {
	t := stats.NewTable("workflow", "threads", "ws on", "ws off", "speedup")
	for _, c := range cells {
		t.Row(string(c.Tool), fmt.Sprint(c.Threads),
			fmt.Sprintf("%.1fs", float64(c.WsOn)/1e9),
			fmt.Sprintf("%.1fs", float64(c.WsOff)/1e9),
			fmt.Sprintf("%.2fx", c.Speedup))
	}
	return t.String()
}

// Fig6Cell is one bar of Figure 6.
type Fig6Cell struct {
	Tool    Tool
	Procs   int
	Native  bool
	Wall    int64
	Speedup float64 // vs sequential native
}

// Fig6Procs are the worker counts on the figure's x axis.
var Fig6Procs = []int{1, 4, 16}

// RunFig6 produces every bar of Figure 6.
func RunFig6(seed uint64) []Fig6Cell {
	var cells []Fig6Cell
	for _, tool := range Tools {
		seqWall, _ := RunNative(tool, 1, seed, 1_540_000_000)
		for _, np := range Fig6Procs {
			nw, _ := RunNative(tool, np, seed+uint64(np), 1_540_000_000)
			cells = append(cells, Fig6Cell{tool, np, true, nw, float64(seqWall) / float64(nw)})
		}
		for _, np := range Fig6Procs {
			dw, _, err := RunDetTrace(tool, np, seed+uint64(np)^0xD7, 1_541_000_000)
			if err != nil {
				panic(fmt.Sprintf("bio DetTrace run failed: %v", err))
			}
			cells = append(cells, Fig6Cell{tool, np, false, dw, float64(seqWall) / float64(dw)})
		}
	}
	return cells
}

// FormatFig6 renders the cells like the figure's bar labels.
func FormatFig6(cells []Fig6Cell) string {
	t := stats.NewTable("workflow", "config", "1 proc", "4 procs", "16 procs")
	for _, tool := range Tools {
		for _, native := range []bool{true, false} {
			vals := map[int]float64{}
			for _, c := range cells {
				if c.Tool == tool && c.Native == native {
					vals[c.Procs] = c.Speedup
				}
			}
			cfg := "native"
			if !native {
				cfg = "dettrace"
			}
			t.Row(string(tool), cfg,
				fmt.Sprintf("%.2f", vals[1]),
				fmt.Sprintf("%.2f", vals[4]),
				fmt.Sprintf("%.2f", vals[16]))
		}
	}
	return t.String()
}

// ReproResult is the §6.1 hashdeep verdict for one tool.
type ReproResult struct {
	Tool              Tool
	NativeIdentical   bool // two native runs produce identical /data/out
	DetTraceIdentical bool
}

// VerifyRepro reruns each workflow twice natively (different host accidents)
// and twice under DetTrace, hashing the outputs like §6.1 does with
// hashdeep.
func VerifyRepro(seed uint64) []ReproResult {
	var out []ReproResult
	for _, tool := range Tools {
		_, n1 := RunNative(tool, 4, seed+1, 1_540_000_000)
		_, n2 := RunNative(tool, 4, seed+2, 1_540_011_111)
		nEq, _ := hashdeep.Equal(
			hashdeep.HashSubtree(n1, "/data/out"),
			hashdeep.HashSubtree(n2, "/data/out"))
		_, d1, err1 := RunDetTrace(tool, 4, seed+3, 1_540_000_000)
		_, d2, err2 := RunDetTrace(tool, 4, seed+4, 1_540_011_111)
		if err1 != nil || err2 != nil {
			panic(fmt.Sprintf("bio DetTrace verify failed: %v / %v", err1, err2))
		}
		dEq, _ := hashdeep.Equal(
			hashdeep.HashSubtree(d1, "/data/out"),
			hashdeep.HashSubtree(d2, "/data/out"))
		out = append(out, ReproResult{tool, nEq, dEq})
	}
	return out
}
