package bio

import "testing"

func TestFig6Shapes(t *testing.T) {
	cells := RunFig6(11)
	get := func(tool Tool, procs int, native bool) float64 {
		for _, c := range cells {
			if c.Tool == tool && c.Procs == procs && c.Native == native {
				return c.Speedup
			}
		}
		t.Fatalf("missing cell %s %d %v", tool, procs, native)
		return 0
	}
	t.Logf("\n%s", FormatFig6(cells))
	// Native scaling: every tool speeds up with processes.
	for _, tool := range Tools {
		if !(get(tool, 16, true) > get(tool, 4, true) && get(tool, 4, true) > 1.2) {
			t.Errorf("%s native does not scale: 4p=%.2f 16p=%.2f", tool, get(tool, 4, true), get(tool, 16, true))
		}
	}
	// clustal: compute-bound, DetTrace overhead small at 16 procs (<10%).
	if ratio := get(Clustal, 16, true) / get(Clustal, 16, false); ratio > 1.10 {
		t.Errorf("clustal DT overhead at 16p = %.2fx, want < 1.10x", ratio)
	}
	// raxml: blocking-write-heavy, DetTrace overhead large at 16 procs (>3x).
	if ratio := get(Raxml, 16, true) / get(Raxml, 16, false); ratio < 3 {
		t.Errorf("raxml DT overhead at 16p = %.2fx, want > 3x", ratio)
	}
	// hmmer sits between.
	hm := get(Hmmer, 16, true) / get(Hmmer, 16, false)
	cl := get(Clustal, 16, true) / get(Clustal, 16, false)
	rx := get(Raxml, 16, true) / get(Raxml, 16, false)
	if !(hm > cl && hm < rx) {
		t.Errorf("ordering violated: clustal %.2f, hmmer %.2f, raxml %.2f", cl, hm, rx)
	}
	// Sequential DetTrace slowdowns stay moderate.
	if s := get(Raxml, 1, false); s > 0.5 || s < 0.15 {
		t.Errorf("raxml DT seq speedup = %.2f, want ~0.3", s)
	}
}

// TestWorkspaceThreadStudy is the E8 half of the X17 acceptance gate: the
// pthreads builds under DetTrace must improve at least 2x over the
// serialized-thread ablation at 4+ threads, and — checked inside
// RunThreadStudy itself, which panics on divergence — the two modes must
// produce bitwise-identical output trees. Workspaces may only move the
// physical clock.
func TestWorkspaceThreadStudy(t *testing.T) {
	cells := RunThreadStudy(41)
	t.Logf("\n%s", FormatThreadStudy(cells))
	for _, c := range cells {
		if c.Threads == 1 && (c.Speedup < 0.99 || c.Speedup > 1.01) {
			t.Errorf("%s nt=1: speedup %.2fx, want 1x (nothing to overlap)", c.Tool, c.Speedup)
		}
		if c.Threads >= 4 && c.Speedup < 2.0 {
			t.Errorf("%s nt=%d: workspace speedup %.2fx, want >= 2x", c.Tool, c.Threads, c.Speedup)
		}
	}
	// raxml stays the worst case: its per-task record flushes are all
	// tracer serialization points, like the Fig. 6 pipe writes.
	var worst ThreadCell
	for _, c := range cells {
		if c.Threads == 16 && (worst.Tool == "" || c.Speedup < worst.Speedup) {
			worst = c
		}
	}
	if worst.Tool != Raxml {
		t.Errorf("worst 16-thread scaler should be raxml, got %s (%.2fx)", worst.Tool, worst.Speedup)
	}
}

func TestReproducibilitySignatures(t *testing.T) {
	for _, r := range VerifyRepro(21) {
		switch r.Tool {
		case Clustal:
			if !r.NativeIdentical {
				t.Errorf("clustal should be natively reproducible (§6.1)")
			}
		default:
			if r.NativeIdentical {
				t.Errorf("%s should be natively irreproducible (§6.1)", r.Tool)
			}
		}
		if !r.DetTraceIdentical {
			t.Errorf("%s should be reproducible under DetTrace", r.Tool)
		}
	}
}
