// Package bio implements the §6/§7.5 bioinformatics workflows as guest
// programs: clustal (multiple sequence alignment, compute-bound), hmmer
// (profile HMM search, non-blocking syscall-heavy) and raxml (phylogenetic
// inference, blocking-write-heavy). Each runs with process-level parallelism
// under a driver that forks N workers, matching how the paper invokes them.
//
// Their §6.1 reproducibility signatures are mechanical: hmmer and raxml
// seed heuristics from /dev/urandom and stamp run metadata from the clock,
// so consecutive native runs produce different output files; clustal is
// pure. DetTrace must erase the difference.
//
// Their Fig. 6 performance signatures come from workload shape alone:
// clustal issues ~1k syscalls/s, hmmer a few thousand (non-blocking),
// raxml the same plus constant progress writes into a pipe its driver
// drains — the potentially-blocking operations the paper blames for its
// 6.2× overhead at 16 processes.
package bio

import (
	"fmt"
	"strings"

	"repro/internal/abi"
	"repro/internal/guest"
)

// Tool identifies one workflow.
type Tool string

// The three workflows.
const (
	Clustal Tool = "clustal"
	Hmmer   Tool = "hmmer"
	Raxml   Tool = "raxml"
)

// Tools lists all three in Fig. 6 order.
var Tools = []Tool{Clustal, Hmmer, Raxml}

// shape holds one workload's calibrated parameters (virtual-time budget and
// syscall intensity per worker task).
type shape struct {
	totalWork  int64 // ns of compute for the whole sequential job
	serialFrac int64 // percent of work that cannot parallelize
	tasks      int   // parallelizable task count (divisible by 16)
	weight     int64 // events-per-event scale

	writesPerTask int  // result records appended per task (persistent fd)
	pipePerTask   int  // raxml: progress lines per task through the pipe
	readsDB       bool // hmmer: scan a database chunk per task
	seedsRandom   bool // reads /dev/urandom into the output (irreproducible)
	stampsTime    bool // records the wall clock in the output
}

func shapeOf(tool Tool) shape {
	switch tool {
	case Clustal:
		// Highly compute-bound: a couple of result writes per alignment
		// block and nothing else.
		return shape{
			totalWork: 64e9, serialFrac: 18, tasks: 32, weight: 350,
			writesPerTask: 2,
		}
	case Hmmer:
		// Frequent but non-blocking calls: database chunk per target plus
		// hit records.
		return shape{
			totalWork: 64e9, serialFrac: 7, tasks: 48, weight: 300,
			writesPerTask: 2, readsDB: true, seedsRandom: true, stampsTime: true,
		}
	default: // Raxml
		// The same rate class as hmmer but dominated by potentially-
		// blocking progress writes into the driver's pipe (§7.5).
		return shape{
			totalWork: 64e9, serialFrac: 8, tasks: 48, weight: 1000,
			writesPerTask: 6, pipePerTask: 12, seedsRandom: true, stampsTime: true,
		}
	}
}

// Main is the guest entry point: `<tool> -np <procs>` for process-level
// parallelism or `<tool> -nt <threads>` for the pthreads builds of the same
// tools. It writes per-worker result files under /data/out and, for raxml,
// streams progress to stdout the way the real tool logs likelihood
// improvements.
func Main(tool Tool) guest.Program {
	return func(p *guest.Proc) int {
		procs, threads := 1, 0
		argv := p.Argv()
		for i := 1; i < len(argv)-1; i++ {
			switch argv[i] {
			case "-np":
				procs = atoi(argv[i+1], 1)
			case "-nt":
				threads = atoi(argv[i+1], 0)
			}
		}
		if threads > 0 {
			return runThreaded(p, tool, threads)
		}
		sh := shapeOf(tool)
		// Setup and process management are singular events; only the task
		// loop's records are scaled (the weight is set in runWorker).
		p.MkdirAll("/data/out", 0o755)

		// Serial phase: parse inputs, build indices.
		input, err := p.ReadFile("/data/input.fasta")
		if err != abi.OK {
			p.Eprintf("%s: no input: %s\n", tool, err)
			return 1
		}
		_ = input
		p.Compute(sh.totalWork * sh.serialFrac / 100)

		// raxml workers log through a pipe the driver drains; the driver
		// grows it to the usual 64 KiB.
		var pr, pw int
		if sh.pipePerTask > 0 {
			pr, pw, _ = p.Pipe()
			p.SetPipeSize(pw, 65536)
		}

		parallel := sh.totalWork * (100 - sh.serialFrac) / 100
		perTask := parallel / int64(sh.tasks)
		for w := 0; w < procs; w++ {
			worker := w
			p.Fork(func(c *guest.Proc) int {
				if sh.pipePerTask > 0 {
					c.Close(pr)
				}
				return runWorker(c, tool, sh, worker, procs, perTask, pw)
			})
		}
		if sh.pipePerTask > 0 {
			p.Close(pw)
			// Drain worker progress until every write end closes.
			buf := make([]byte, 113)
			for {
				n, rerr := p.Read(pr, buf)
				if rerr == abi.EINTR {
					continue
				}
				if rerr != abi.OK || n == 0 {
					break
				}
			}
			p.Close(pr)
		}
		for w := 0; w < procs; w++ {
			p.Wait()
		}
		p.Printf("%s: done (%d workers)\n", tool, procs)
		return 0
	}
}

// runThreaded is the pthreads build of the tool: the same task loop
// partitioned across sibling threads of one process instead of forked
// workers. Threads join on a futex completion counter (never spinning) —
// the DetTrace-compatible style (§5.7). raxml's progress pipe is a
// process-level construct; its pthreads build logs progress into each
// thread's result file instead.
func runThreaded(p *guest.Proc, tool Tool, threads int) int {
	const wordDone = 0x300 // join barrier: completed-thread count
	sh := shapeOf(tool)
	p.MkdirAll("/data/out", 0o755)
	input, err := p.ReadFile("/data/input.fasta")
	if err != abi.OK {
		p.Eprintf("%s: no input: %s\n", tool, err)
		return 1
	}
	_ = input
	p.Compute(sh.totalWork * sh.serialFrac / 100)

	parallel := sh.totalWork * (100 - sh.serialFrac) / 100
	perTask := parallel / int64(sh.tasks)
	for i := 1; i < threads; i++ {
		idx := i
		p.CloneThread(func(w *guest.Proc) int {
			runThreadWorker(w, tool, sh, idx, threads, perTask)
			w.Add(wordDone, 1)
			w.FutexWake(wordDone, 64)
			return 0
		})
	}
	runThreadWorker(p, tool, sh, 0, threads, perTask)
	for p.Load(wordDone) < int64(threads-1) {
		p.FutexWait(wordDone, p.Load(wordDone))
	}
	p.Printf("%s: done (%d threads)\n", tool, threads)
	return 0
}

// runThreadWorker is one thread's stripe of the task loop. It mirrors
// runWorker except each thread appends to its own result file and raxml's
// pipe lines become file records.
func runThreadWorker(c *guest.Proc, tool Tool, sh shape, idx, threads int, perTask int64) {
	out := fmt.Sprintf("/data/out/%s.thread%02d", tool, idx)
	fd, err := c.Open(out, abi.OCreat|abi.OWronly|abi.OAppend, 0o644)
	if err != abi.OK {
		return
	}
	defer c.Close(fd)
	seed := uint64(0)
	if sh.seedsRandom {
		buf := make([]byte, 8)
		if rfd, rerr := c.Open("/dev/urandom", abi.ORdonly, 0); rerr == abi.OK {
			c.Read(rfd, buf)
			c.Close(rfd)
		}
		for _, b := range buf {
			seed = seed<<8 | uint64(b)
		}
		c.WriteString(fd, fmt.Sprintf("seed=%x\n", seed))
	}
	if sh.stampsTime {
		c.WriteString(fd, fmt.Sprintf("run start=%d\n", c.Time()))
	}

	c.SetWeight(sh.weight)
	defer c.SetWeight(1)
	for task := idx; task < sh.tasks; task += threads {
		c.Compute(perTask)
		score := scoreOf(tool, task, seed)
		// The pthreads builds accumulate each task's records in memory and
		// flush once — there is no shared driver stream to keep fed, so the
		// progress lines that went through raxml's pipe land here too.
		var log strings.Builder
		for s := 0; s < sh.writesPerTask; s++ {
			fmt.Fprintf(&log, "task %03d metric %d value %d\n", task, s, score+int64(s))
		}
		for l := 0; l < sh.pipePerTask; l++ {
			fmt.Fprintf(&log, "w%02d t%03d i%02d lnL %d\n", idx, task, l, score)
		}
		c.WriteString(fd, log.String())
		if sh.readsDB {
			if dbfd, derr := c.Open("/data/input.fasta", abi.ORdonly, 0); derr == abi.OK {
				chunk := make([]byte, 256)
				c.Read(dbfd, chunk)
				c.Close(dbfd)
			}
		}
	}
}

// runWorker processes this worker's share of tasks. The result file stays
// open for the worker's lifetime, as the real tools keep their output
// streams.
func runWorker(c *guest.Proc, tool Tool, sh shape, worker, procs int, perTask int64, pw int) int {
	out := fmt.Sprintf("/data/out/%s.worker%02d", tool, worker)
	fd, err := c.Open(out, abi.OCreat|abi.OWronly|abi.OAppend, 0o644)
	if err != abi.OK {
		return 1
	}
	defer c.Close(fd)
	seed := uint64(0)
	if sh.seedsRandom {
		// Heuristic seeding from OS randomness: the §6.1 irreproducibility.
		buf := make([]byte, 8)
		if rfd, rerr := c.Open("/dev/urandom", abi.ORdonly, 0); rerr == abi.OK {
			c.Read(rfd, buf)
			c.Close(rfd)
		}
		for _, b := range buf {
			seed = seed<<8 | uint64(b)
		}
		c.WriteString(fd, fmt.Sprintf("seed=%x\n", seed))
	}
	if sh.stampsTime {
		// Run stamp: the tools record when the run started.
		c.WriteString(fd, fmt.Sprintf("run start=%d\n", c.Time()))
	}

	// Each task-loop event stands for sh.weight real ones.
	c.SetWeight(sh.weight)
	defer c.SetWeight(1)
	for task := worker; task < sh.tasks; task += procs {
		c.Compute(perTask)
		score := scoreOf(tool, task, seed)
		for s := 0; s < sh.writesPerTask; s++ {
			c.WriteString(fd, fmt.Sprintf("task %03d metric %d value %d\n", task, s, score+int64(s)))
		}
		if sh.readsDB {
			// Non-blocking database chunk reads.
			if dbfd, derr := c.Open("/data/input.fasta", abi.ORdonly, 0); derr == abi.OK {
				chunk := make([]byte, 256)
				c.Read(dbfd, chunk)
				c.Close(dbfd)
			}
		}
		for l := 0; l < sh.pipePerTask; l++ {
			// Progress logging through the driver: potentially blocking.
			c.Write(pw, []byte(fmt.Sprintf("w%02d t%03d i%02d lnL %d\n", worker, task, l, score)))
		}
	}
	if sh.pipePerTask > 0 {
		c.Close(pw)
	}
	return 0
}

// scoreOf is the numerical result of one task: deterministic in the inputs
// except for the heuristic seed, which is exactly how the real tools behave.
func scoreOf(tool Tool, task int, seed uint64) int64 {
	h := uint64(len(tool))*0x9e3779b97f4a7c15 + uint64(task)*0x853c49e6748fea9b + seed
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	return int64(h % 1_000_000)
}

func atoi(s string, def int) int {
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			return def
		}
		n = n*10 + int(r-'0')
	}
	return n
}
