package cpu

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/prng"
)

func newHW(p *machine.Profile, seed uint64) (*HW, *int64) {
	now := new(int64)
	return NewHW(p, prng.NewHost(seed), func() int64 { return *now }), now
}

func TestTSCAdvancesWithTime(t *testing.T) {
	hw, now := newHW(machine.CloudLabC220G5(), 1)
	a := hw.TSC()
	*now += 1_000_000 // 1ms
	b := hw.TSC()
	if b <= a {
		t.Fatalf("TSC did not advance: %d -> %d", a, b)
	}
	// ~2.2GHz: 1ms is ~2.2M cycles.
	if d := b - a; d < 1_000_000 || d > 5_000_000 {
		t.Errorf("TSC rate off: %d cycles per ms", d)
	}
}

func TestTSCBootOffsetVariesAcrossBoots(t *testing.T) {
	a, _ := newHW(machine.CloudLabC220G5(), 1)
	b, _ := newHW(machine.CloudLabC220G5(), 2)
	if a.TSC() == b.TSC() {
		t.Errorf("boot TSC offsets identical across boots")
	}
}

func TestRdrandGatedByHardware(t *testing.T) {
	sky, _ := newHW(machine.CloudLabC220G5(), 3)
	if r := sky.Execute(Request{Instr: RDRAND}); !r.OK {
		t.Errorf("rdrand should succeed on Skylake")
	}
	old, _ := newHW(machine.LegacySandyBridge(), 3)
	if r := old.Execute(Request{Instr: RDRAND}); r.OK {
		t.Errorf("rdrand should fail on Sandy Bridge")
	}
}

func TestRdrandIsNondeterministic(t *testing.T) {
	hw, _ := newHW(machine.CloudLabC220G5(), 4)
	a := hw.Execute(Request{Instr: RDRAND}).Value
	b := hw.Execute(Request{Instr: RDRAND}).Value
	if a == b {
		t.Errorf("consecutive rdrand values identical")
	}
}

func TestTSXAbortsNondeterministically(t *testing.T) {
	hw, _ := newHW(machine.CloudLabC220G5(), 5)
	aborts, commits := 0, 0
	for i := 0; i < 400; i++ {
		if hw.Execute(Request{Instr: XBEGIN}).OK {
			commits++
		} else {
			aborts++
		}
	}
	if aborts == 0 || commits == 0 {
		t.Errorf("TSX should both commit and abort: %d/%d", commits, aborts)
	}
	noTSX, _ := newHW(machine.BioHaswell(), 5) // profile without TSX
	if noTSX.Execute(Request{Instr: XBEGIN}).OK {
		t.Errorf("xbegin on TSX-less hardware should abort (#UD model)")
	}
}

func TestTrapGating(t *testing.T) {
	hw, _ := newHW(machine.CloudLabC220G5(), 6)
	none := TrapConfig{}
	full := TrapConfig{TSCTrap: true, CpuidTrap: true}

	if hw.Traps(Request{Instr: RDTSC}, none) {
		t.Errorf("rdtsc trapped without PR_SET_TSC")
	}
	if !hw.Traps(Request{Instr: RDTSC}, full) {
		t.Errorf("rdtsc not trapped with PR_SET_TSC")
	}
	if !hw.Traps(Request{Instr: CPUID}, full) {
		t.Errorf("cpuid not trapped on Ivy Bridge+ hardware")
	}
	// The paper's critical instructions: not trappable at all (§4).
	for _, in := range []Instr{RDRAND, RDSEED, XBEGIN} {
		if hw.Traps(Request{Instr: in}, full) {
			t.Errorf("%v must not be trappable from ring 0", in)
		}
	}
	// Pre-Ivy-Bridge hardware cannot trap cpuid even when asked.
	old, _ := newHW(machine.LegacySandyBridge(), 6)
	if old.Traps(Request{Instr: CPUID}, full) {
		t.Errorf("cpuid trapped on Sandy Bridge")
	}
}

func TestCPUIDReflectsProfile(t *testing.T) {
	hw, _ := newHW(machine.CloudLabC220G5(), 7)
	leaf := hw.Execute(Request{Instr: CPUID, Leaf: 1})
	if leaf.Leaf.EBX>>16 != 40 {
		t.Errorf("core count = %d, want 40", leaf.Leaf.EBX>>16)
	}
}

func TestInstrString(t *testing.T) {
	if RDTSC.String() != "rdtsc" || XBEGIN.String() != "xbegin" {
		t.Errorf("mnemonics wrong: %s %s", RDTSC, XBEGIN)
	}
}
