// Package cpu models the guest-visible x86-64 instructions from the paper's
// irreproducibility taxonomy (§4, §5.8): rdtsc/rdtscp (cycle counter),
// cpuid (machine identification), rdrand/rdseed (hardware entropy) and the
// TSX xbegin instruction (whose abort behaviour is the paper's one
// definitively *critical* — untrappable — irreproducibility source).
//
// Hardware executes instructions through HW; per-thread trap configuration
// (prctl PR_SET_TSC, arch_prctl ARCH_SET_CPUID) decides whether an
// instruction instead faults to the tracer, which is how DetTrace emulates
// them reproducibly.
package cpu

import (
	"repro/internal/machine"
	"repro/internal/prng"
)

// Instr identifies one modelled instruction.
type Instr int

// The modelled instruction set.
const (
	RDTSC Instr = iota
	RDTSCP
	CPUID
	RDRAND
	RDSEED
	XBEGIN // TSX transaction begin; result reports commit or abort
)

var instrNames = [...]string{"rdtsc", "rdtscp", "cpuid", "rdrand", "rdseed", "xbegin"}

// String returns the mnemonic.
func (i Instr) String() string {
	if int(i) < len(instrNames) {
		return instrNames[i]
	}
	return "instr?"
}

// Request is one issued instruction. Leaf is the cpuid leaf for CPUID.
type Request struct {
	Instr Instr
	Leaf  uint32
}

// Result is what the instruction left in the registers.
type Result struct {
	Value   uint64            // rdtsc[p], rdrand, rdseed
	Leaf    machine.CPUIDLeaf // cpuid
	OK      bool              // rdrand/rdseed carry flag; xbegin commit
	Trapped bool              // true when a tracer emulated the instruction
}

// TrapConfig is the per-thread trap state the kernel keeps and the tracer
// programs (§5.8). Inherited across fork, reset by execve like the real
// prctl TSC setting is not — DetTrace re-arms it after every execve.
type TrapConfig struct {
	TSCTrap   bool // PR_SET_TSC = PR_TSC_SIGSEGV
	CpuidTrap bool // ARCH_SET_CPUID = 0, requires hardware support
}

// HW executes instructions the way the physical machine would, drawing
// nondeterminism from the host entropy pool and the host clock.
type HW struct {
	Profile *machine.Profile
	Entropy *prng.Host
	// Now returns virtual nanoseconds since boot.
	Now func() int64

	bootTSC uint64
}

// NewHW builds the hardware executor for one simulated boot.
func NewHW(p *machine.Profile, entropy *prng.Host, now func() int64) *HW {
	return &HW{
		Profile: p,
		Entropy: entropy,
		Now:     now,
		// The TSC does not start at zero on real machines; the offset is a
		// boot-time accident.
		bootTSC: entropy.Uint64() % (1 << 40),
	}
}

// ResumeHW rebuilds the hardware executor from checkpointed state: the
// entropy pool is already positioned at its sealed cursor and the boot-time
// TSC offset is restored verbatim instead of being drawn again. The accident
// happened at the original boot; a resume must relive it, not re-roll it.
func ResumeHW(p *machine.Profile, entropy *prng.Host, now func() int64, bootTSC uint64) *HW {
	return &HW{Profile: p, Entropy: entropy, Now: now, bootTSC: bootTSC}
}

// BootTSC exposes the boot-time TSC offset so a checkpoint can seal it.
func (h *HW) BootTSC() uint64 { return h.bootTSC }

// TSC returns the current cycle count: boot offset plus elapsed virtual time
// scaled by the machine's TSC frequency.
func (h *HW) TSC() uint64 {
	return h.bootTSC + uint64(h.Now())*(h.Profile.TSCHz/1e6)/1e3
}

// Execute runs one instruction in "hardware".
func (h *HW) Execute(req Request) Result {
	switch req.Instr {
	case RDTSC, RDTSCP:
		return Result{Value: h.TSC(), OK: true}
	case CPUID:
		return Result{Leaf: h.Profile.CPUID(req.Leaf), OK: true}
	case RDRAND:
		if !h.Profile.HasRDRAND {
			// Executing rdrand on silicon without it is #UD; we model it as
			// a failed carry flag so guests can degrade gracefully.
			return Result{OK: false}
		}
		return Result{Value: h.Entropy.Uint64(), OK: true}
	case RDSEED:
		if !h.Profile.HasRDRAND {
			return Result{OK: false}
		}
		return Result{Value: h.Entropy.Uint64(), OK: true}
	case XBEGIN:
		if !h.Profile.HasTSX {
			return Result{OK: false} // #UD modelled as immediate abort
		}
		// Transactions abort for highly irreproducible reasons — timer
		// interrupts, cache pressure (§4). Model a 25% abort rate drawn
		// from host entropy: definitively untrappable nondeterminism.
		return Result{OK: h.Entropy.Intn(4) != 0}
	default:
		return Result{}
	}
}

// Traps reports whether the instruction faults to the tracer under cfg on
// this hardware. rdtsc trapping is universal (PR_SET_TSC); cpuid faulting
// needs Ivy Bridge+ and kernel support; rdrand/rdseed/TSX cannot be trapped
// from ring 0 at all — the paper's critical-instruction finding.
func (h *HW) Traps(req Request, cfg TrapConfig) bool {
	switch req.Instr {
	case RDTSC, RDTSCP:
		return cfg.TSCTrap
	case CPUID:
		return cfg.CpuidTrap && h.Profile.SupportsCpuidInterception()
	default:
		return false
	}
}
