package baseimg

import (
	"testing"

	"repro/internal/abi"
	"repro/internal/guest"
)

func TestMinimalSkeleton(t *testing.T) {
	im := Minimal()
	for _, p := range []string{"/bin", "/tmp", "/dev", "/etc", "/build"} {
		e, ok := im.Entries[p]
		if !ok || e.Mode&abi.ModeTypeMask != abi.ModeDir {
			t.Errorf("missing directory %s", p)
		}
	}
	for p, id := range map[string]string{
		"/dev/null": "null", "/dev/zero": "zero",
		"/dev/urandom": "urandom", "/dev/random": "random",
	} {
		e, ok := im.Entries[p]
		if !ok || e.DevID != id {
			t.Errorf("device %s: %+v", p, e)
		}
	}
}

func TestWithBinaries(t *testing.T) {
	im := WithBinaries("cc", "ld")
	for _, name := range []string{"cc", "ld"} {
		e, ok := im.Entries["/bin/"+name]
		if !ok {
			t.Fatalf("missing /bin/%s", name)
		}
		if e.Mode&0o111 == 0 {
			t.Errorf("/bin/%s not executable", name)
		}
		prog, _, ok := guest.ParseExe(e.Data)
		if !ok || prog != name {
			t.Errorf("/bin/%s resolves to %q", name, prog)
		}
	}
}
