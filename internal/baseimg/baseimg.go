// Package baseimg builds the minimal chroot images the experiments start
// from — the moral equivalent of a debootstrap'd Debian tree (artifact
// appendix A.4): a standard directory skeleton, device nodes, and a /bin
// populated with executables that resolve against a guest program registry.
package baseimg

import (
	"repro/internal/fs"
	"repro/internal/guest"
)

// Minimal returns the smallest useful container image: the standard
// directory skeleton plus /dev nodes.
func Minimal() *fs.Image {
	im := fs.NewImage()
	for _, d := range []string{
		"/bin", "/usr", "/usr/bin", "/usr/lib", "/lib", "/etc",
		"/tmp", "/build", "/dev", "/proc", "/home", "/root", "/var",
	} {
		im.AddDir(d, 0o755)
	}
	im.AddDev("/dev/null", "null")
	im.AddDev("/dev/zero", "zero")
	im.AddDev("/dev/urandom", "urandom")
	im.AddDev("/dev/random", "random")
	im.AddFile("/etc/hostname", 0o644, []byte("wheezy\n"))
	im.AddFile("/etc/os-release", 0o644, []byte("PRETTY_NAME=\"Debian GNU/Linux 7 (wheezy)\"\n"))
	return im
}

// WithBinaries returns Minimal plus one /bin/<name> executable per program
// name, each resolving to a registered guest program of the same name.
func WithBinaries(names ...string) *fs.Image {
	im := Minimal()
	for _, n := range names {
		im.AddFile("/bin/"+n, 0o755, guest.MakeExe(n, nil))
	}
	return im
}
