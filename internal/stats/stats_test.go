package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Errorf("empty mean")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("mean = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4, 16}); math.Abs(got-4) > 1e-9 {
		t.Errorf("geomean = %v", got)
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Errorf("geomean with zero should bail")
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	up := []float64{2, 4, 6, 8, 10}
	down := []float64{5, 4, 3, 2, 1}
	if got := Correlation(xs, up); math.Abs(got-1) > 1e-9 {
		t.Errorf("perfect positive = %v", got)
	}
	if got := Correlation(xs, down); math.Abs(got+1) > 1e-9 {
		t.Errorf("perfect negative = %v", got)
	}
	if Correlation(xs, []float64{7, 7, 7, 7, 7}) != 0 {
		t.Errorf("constant series should correlate 0")
	}
	if Correlation(xs, xs[:2]) != 0 {
		t.Errorf("length mismatch should yield 0")
	}
}

// Property: correlation is always in [-1, 1] and symmetric.
func TestCorrelationBoundsProperty(t *testing.T) {
	prop := func(pairs []struct{ X, Y int16 }) bool {
		if len(pairs) < 2 {
			return true
		}
		xs := make([]float64, len(pairs))
		ys := make([]float64, len(pairs))
		for i, p := range pairs {
			xs[i], ys[i] = float64(p.X), float64(p.Y)
		}
		c := Correlation(xs, ys)
		return c >= -1.0000001 && c <= 1.0000001 &&
			math.Abs(c-Correlation(ys, xs)) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if Quantile(xs, 0) != 10 || Quantile(xs, 1) != 40 {
		t.Errorf("extremes wrong")
	}
	if got := Quantile(xs, 0.5); got != 25 {
		t.Errorf("median = %v", got)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Errorf("empty quantile")
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	prop := func(raw []int16, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		qa, qb := float64(a)/255, float64(b)/255
		if qa > qb {
			qa, qb = qb, qa
		}
		lo, hi := MinMax(xs)
		va, vb := Quantile(xs, qa), Quantile(xs, qb)
		return va <= vb && va >= lo && vb <= hi
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("name", "value")
	tab.Row("x", 1)
	tab.Row("longer-name", 3.14159)
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[3], "3.14") {
		t.Errorf("float formatting: %q", lines[3])
	}
	// Columns align: every row at least as wide as the header separator.
	if len(lines[2]) > len(lines[3])+2 {
		t.Errorf("alignment off:\n%s", out)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(1912, 11958); got != "15.99% (1912)" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(0, 0); got != "0% (0)" {
		t.Errorf("Pct zero = %q", got)
	}
}
