// Package stats holds the small numeric helpers the experiment reports use:
// means, Pearson correlation, quantiles and fixed-width table formatting.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Correlation returns the Pearson correlation coefficient of two series.
func Correlation(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Quantile returns the q-th quantile (0..1) by linear interpolation.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// MinMax returns the extremes.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Table renders rows with aligned columns for terminal output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends one row, stringifying each cell with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Pct formats a count as "xx.xx% (n)" the way Table 1 prints cells.
func Pct(n, total int) string {
	if total == 0 {
		return "0% (0)"
	}
	return fmt.Sprintf("%.2f%% (%d)", 100*float64(n)/float64(total), n)
}
