package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestCounterStripes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("calls")
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		l := NewLocal()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(l, 1)
			}
		}()
	}
	wg.Wait()
	c.Inc(5)
	if got := c.Value(); got != 16005 {
		t.Fatalf("Value = %d, want 16005", got)
	}
	if r.Counter("calls") != c {
		t.Fatal("registry did not memoize counter")
	}
}

func TestGauge(t *testing.T) {
	g := NewRegistry().Gauge("depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("Value = %d, want 4", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewRegistry().Histogram("lat", []int64{10, 100, 1000})
	for _, v := range []int64{1, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	want := []int64{2, 2, 0, 1} // ≤10, ≤100, ≤1000, +Inf
	for i, w := range want {
		if got := h.Bucket(i); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 5 || h.Sum() != 5122 {
		t.Fatalf("count/sum = %d/%d, want 5/5122", h.Count(), h.Sum())
	}
}

func TestCounterVecDrain(t *testing.T) {
	cv := NewRegistry().CounterVec("sys", 8)
	cv.Add(1, 3)
	cv.Add(7, 2)
	seen := map[int]int64{}
	cv.Drain(func(i int, v int64) { seen[i] = v })
	if len(seen) != 2 || seen[1] != 3 || seen[7] != 2 {
		t.Fatalf("drain saw %v", seen)
	}
	if cv.At(1) != 0 || cv.At(7) != 0 {
		t.Fatal("drain did not reset")
	}
}

func TestAbsorb(t *testing.T) {
	farm := NewRegistry()
	farm.Counter("hits").Inc(1)
	child := NewRegistry()
	child.Counter("hits").Inc(4)
	child.Gauge("depth").Set(2)
	child.Histogram("lat", []int64{10}).Observe(3)
	child.CounterVec("sys", 4).Add(2, 9)
	farm.Absorb(child)
	farm.Absorb(nil)
	if got := farm.Counter("hits").Value(); got != 5 {
		t.Fatalf("hits = %d, want 5", got)
	}
	if got := farm.Gauge("depth").Value(); got != 2 {
		t.Fatalf("depth = %d, want 2", got)
	}
	if got := farm.Histogram("lat", nil).Count(); got != 1 {
		t.Fatalf("lat count = %d, want 1", got)
	}
	if got := farm.CounterVec("sys", 4).At(2); got != 9 {
		t.Fatalf("sys[2] = %d, want 9", got)
	}
}

func TestWritePromDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("zeta").Inc(1)
		r.Counter("alpha").Inc(2)
		r.Gauge("g").Set(-4)
		r.Histogram("h", []int64{5, 50}).Observe(7)
		r.CounterVec("v", 4).Add(3, 2)
		return r
	}
	var a, b bytes.Buffer
	if err := build().WriteProm(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("prom dumps of equal registries differ")
	}
	out := a.String()
	for _, want := range []string{"alpha 2", "zeta 1", "g -4", `h_bucket{le="+Inf"} 1`, `v{idx="3"} 2`} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom dump missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "alpha") > strings.Index(out, "zeta") {
		t.Fatal("counters not sorted")
	}
}

func TestGather(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc(1)
	r.Counter("a").Inc(2)
	s := r.Gather()
	if len(s) != 2 || s[0].Name != "a" || s[1].Name != "b" {
		t.Fatalf("gather = %v", s)
	}
}
