// Package obs is the deterministic observability layer: one metrics
// registry for every counter the system keeps (the kernel's per-syscall
// table, the tracer's stop/buffer accounting, the build farm's template and
// LRU tallies), plus a per-container flight recorder (recorder.go), a Chrome
// trace exporter (trace.go) and a first-divergence diagnoser (diagnose.go).
//
// The design constraint that shapes everything here is the paper's §3 purity
// argument turned inward: observing a container must never perturb it.
// Metrics are plain sharded atomics with no locks on the hot path, the
// recorder stamps events with logical time only (no time.Now()), and nothing
// in this package feeds back into guest-visible state — the on/off
// equivalence tests in internal/core and internal/buildsim pin that.
package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// stripes is the fixed shard count of every Counter. Eight covers the farm's
// worker-pool contention (Jobs is typically ≤ GOMAXPROCS) while keeping
// Value() a trivial eight-term sum.
const stripes = 8

// pad64 is one cache-line-sized counter cell, padded so neighbouring stripes
// never false-share.
type pad64 struct {
	v int64
	_ [7]int64
}

// Local is a stripe selector: a client that will hammer counters from its
// own goroutine (a farm worker, a kernel loop) acquires one Local and passes
// it to Counter.Add so its traffic lands on a private-ish stripe. A Local is
// registry-independent — it is just a shard index — so one Local serves every
// counter the client touches. The zero Local is valid (stripe 0), which is
// what the single-writer paths use via Inc.
type Local struct{ s uint32 }

var nextLocal atomic.Uint32

// NewLocal assigns the next stripe round-robin. Assignment order does not
// matter for correctness: stripe sums are commutative, so Value() is
// independent of which client landed where.
func NewLocal() Local { return Local{s: nextLocal.Add(1) % stripes} }

// Counter is a monotone sharded counter.
type Counter struct {
	name string
	v    [stripes]pad64
}

// Name returns the counter's registry name.
func (c *Counter) Name() string { return c.name }

// Inc adds n on stripe 0: the uncontended single-writer fast path.
func (c *Counter) Inc(n int64) { atomic.AddInt64(&c.v[0].v, n) }

// Add adds n on the caller's stripe.
func (c *Counter) Add(l Local, n int64) { atomic.AddInt64(&c.v[l.s].v, n) }

// Value sums the stripes.
func (c *Counter) Value() int64 {
	var sum int64
	for i := range c.v {
		sum += atomic.LoadInt64(&c.v[i].v)
	}
	return sum
}

// Gauge is a last-value-wins metric.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Name returns the gauge's registry name.
func (g *Gauge) Name() string { return g.name }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram: bounds are inclusive upper edges in
// ascending order, with an implicit +Inf bucket at the end.
type Histogram struct {
	name    string
	bounds  []int64
	buckets []int64 // len(bounds)+1, atomic
	count   int64
	sum     int64
}

// Name returns the histogram's registry name.
func (h *Histogram) Name() string { return h.name }

// Bounds returns the configured upper edges.
func (h *Histogram) Bounds() []int64 { return append([]int64(nil), h.bounds...) }

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	atomic.AddInt64(&h.buckets[i], 1)
	atomic.AddInt64(&h.count, 1)
	atomic.AddInt64(&h.sum, v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return atomic.LoadInt64(&h.count) }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 { return atomic.LoadInt64(&h.sum) }

// Bucket returns the count in bucket i (i == len(Bounds()) is +Inf).
func (h *Histogram) Bucket(i int) int64 { return atomic.LoadInt64(&h.buckets[i]) }

// CounterVec is a dense vector of counters indexed by a small integer — the
// shape of the kernel's per-syscall table, where the index is the syscall
// number. Adds are single atomic ops on a flat slice: the hot-path property
// the kernel's bespoke dense table had, kept.
type CounterVec struct {
	name string
	v    []int64
}

// Name returns the vector's registry name.
func (cv *CounterVec) Name() string { return cv.name }

// Len returns the index capacity.
func (cv *CounterVec) Len() int { return len(cv.v) }

// InRange reports whether i is a valid index.
func (cv *CounterVec) InRange(i int) bool { return i >= 0 && i < len(cv.v) }

// Add bumps index i by n. Out-of-range indexes are the caller's overflow
// problem (the kernel falls back to its map), mirroring the old dense table.
func (cv *CounterVec) Add(i int, n int64) { atomic.AddInt64(&cv.v[i], n) }

// At reads index i.
func (cv *CounterVec) At(i int) int64 { return atomic.LoadInt64(&cv.v[i]) }

// Drain calls fn for every non-zero index and resets it — the fold-and-clear
// the kernel's stats finalization wants.
func (cv *CounterVec) Drain(fn func(i int, v int64)) {
	for i := range cv.v {
		if v := atomic.SwapInt64(&cv.v[i], 0); v != 0 {
			fn(i, v)
		}
	}
}

// Registry is a namespace of metrics. Lookup is mutex-guarded (cold path:
// clients cache the returned handle); the handles themselves are lock-free.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	vecs     map[string]*CounterVec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		vecs:     make(map[string]*CounterVec),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use (later calls keep the original bounds).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{
			name:    name,
			bounds:  append([]int64(nil), bounds...),
			buckets: make([]int64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// CounterVec returns the named dense vector, creating it with n slots on
// first use.
func (r *Registry) CounterVec(name string, n int) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	cv, ok := r.vecs[name]
	if !ok {
		cv = &CounterVec{name: name, v: make([]int64, n)}
		r.vecs[name] = cv
	}
	return cv
}

// Sample is one gathered metric value.
type Sample struct {
	Name  string
	Value int64
}

// Gather snapshots every scalar metric, sorted by name. Histograms expand to
// <name>_count and <name>_sum; vectors to <name>{idx} entries for non-zero
// indexes.
func (r *Registry) Gather() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Sample
	for name, c := range r.counters {
		out = append(out, Sample{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		out = append(out, Sample{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		out = append(out, Sample{Name: name + "_count", Value: h.Count()})
		out = append(out, Sample{Name: name + "_sum", Value: h.Sum()})
	}
	for name, cv := range r.vecs {
		for i := range cv.v {
			if v := cv.At(i); v != 0 {
				out = append(out, Sample{Name: fmt.Sprintf("%s{idx=%d}", name, i), Value: v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Absorb adds every metric value of src into this registry's same-named
// metrics, creating them as needed — the farm roll-up: each container's
// registry folds into the farm's. Absorbing is add-only and commutative, so
// the roll-up total is independent of worker scheduling.
func (r *Registry) Absorb(src *Registry) {
	if src == nil {
		return
	}
	// Snapshot src without holding both locks.
	src.mu.Lock()
	type vecSnap struct {
		n int
		v []int64
	}
	counters := make(map[string]int64, len(src.counters))
	for name, c := range src.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]int64, len(src.gauges))
	for name, g := range src.gauges {
		gauges[name] = g.Value()
	}
	hists := make(map[string]struct {
		bounds  []int64
		buckets []int64
		count   int64
		sum     int64
	}, len(src.hists))
	for name, h := range src.hists {
		b := make([]int64, len(h.buckets))
		for i := range h.buckets {
			b[i] = h.Bucket(i)
		}
		hists[name] = struct {
			bounds  []int64
			buckets []int64
			count   int64
			sum     int64
		}{h.Bounds(), b, h.Count(), h.Sum()}
	}
	vecs := make(map[string]vecSnap, len(src.vecs))
	for name, cv := range src.vecs {
		s := vecSnap{n: len(cv.v), v: make([]int64, len(cv.v))}
		for i := range cv.v {
			s.v[i] = cv.At(i)
		}
		vecs[name] = s
	}
	src.mu.Unlock()

	for name, v := range counters {
		if v != 0 {
			r.Counter(name).Inc(v)
		}
	}
	for name, v := range gauges {
		if v != 0 {
			r.Gauge(name).Add(v)
		}
	}
	for name, h := range hists {
		dst := r.Histogram(name, h.bounds)
		for i, n := range h.buckets {
			if i < len(dst.buckets) {
				atomic.AddInt64(&dst.buckets[i], n)
			}
		}
		atomic.AddInt64(&dst.count, h.count)
		atomic.AddInt64(&dst.sum, h.sum)
	}
	for name, s := range vecs {
		dst := r.CounterVec(name, s.n)
		for i, v := range s.v {
			if v != 0 && dst.InRange(i) {
				dst.Add(i, v)
			}
		}
	}
}

// WriteProm writes a plain-text Prometheus-style dump: one `name value` line
// per scalar, `name_bucket{le="..."}` lines per histogram bucket, sorted so
// two dumps of equal registries are byte-identical.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.counters)+len(r.gauges))
	for name := range r.counters {
		names = append(names, name)
	}
	gnames := make([]string, 0, len(r.gauges))
	for name := range r.gauges {
		gnames = append(gnames, name)
	}
	hnames := make([]string, 0, len(r.hists))
	for name := range r.hists {
		hnames = append(hnames, name)
	}
	vnames := make([]string, 0, len(r.vecs))
	for name := range r.vecs {
		vnames = append(vnames, name)
	}
	r.mu.Unlock()
	sort.Strings(names)
	sort.Strings(gnames)
	sort.Strings(hnames)
	sort.Strings(vnames)

	for _, name := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, r.Counter(name).Value()); err != nil {
			return err
		}
	}
	for _, name := range gnames {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, r.Gauge(name).Value()); err != nil {
			return err
		}
	}
	for _, name := range hnames {
		h := r.Histogram(name, nil)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		cum := int64(0)
		for i, b := range h.bounds {
			cum += h.Bucket(i)
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b, cum); err != nil {
				return err
			}
		}
		cum += h.Bucket(len(h.bounds))
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			name, cum, name, h.Sum(), name, h.Count()); err != nil {
			return err
		}
	}
	for _, name := range vnames {
		cv := r.CounterVec(name, 0)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", name); err != nil {
			return err
		}
		for i := range cv.v {
			if v := cv.At(i); v != 0 {
				if _, err := fmt.Fprintf(w, "%s{idx=\"%d\"} %d\n", name, i, v); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
