package obs

import (
	"fmt"
	"io"
	"strings"
)

// Namer maps a syscall number to a display name for trace export. Kept as a
// parameter so obs has no dependency on the ABI package; callers pass
// abi.SyscallName or similar. A nil Namer falls back to "sys_<n>".
type Namer func(num int32) string

func named(n Namer, num int32) string {
	if n != nil {
		if s := n(num); s != "" {
			return s
		}
	}
	return fmt.Sprintf("sys_%d", num)
}

// jsonEscape covers the characters that can appear in our generated names;
// names are ASCII identifiers so quotes/backslashes are the only hazard.
func jsonEscape(s string) string {
	if !strings.ContainsAny(s, `"\`) {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// WriteChromeTrace renders events and spans as a Chrome trace_event JSON
// array (load with chrome://tracing or Perfetto). Logical time is mapped
// 1:1 onto the "ts" microsecond field: the trace's time axis IS the logical
// clock, so two deterministic runs render identical traces. Syscall
// enter/exit become B/E duration pairs, everything else an instant, and
// lifecycle spans become X complete events on a synthetic setup track.
func WriteChromeTrace(w io.Writer, events []Event, spans []Span, namer Namer) error {
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	first := true
	emit := func(format string, args ...any) error {
		sep := ",\n"
		if first {
			sep = ""
			first = false
		}
		_, err := fmt.Fprintf(w, sep+format, args...)
		return err
	}
	for _, ev := range events {
		switch ev.Kind {
		case KindSyscallEnter:
			if err := emit(`{"name":"%s","ph":"B","ts":%d,"pid":1,"tid":%d,"args":{"digest":"%#x"}}`,
				jsonEscape(named(namer, ev.Num)), ev.LTime, ev.Pid, ev.Arg); err != nil {
				return err
			}
		case KindSyscallExit:
			if err := emit(`{"name":"%s","ph":"E","ts":%d,"pid":1,"tid":%d,"args":{"ret":%d}}`,
				jsonEscape(named(namer, ev.Num)), ev.LTime, ev.Pid, ev.Ret); err != nil {
				return err
			}
		case KindSpan:
			// Span instants ride the event stream only as markers; the
			// structured spans slice below carries the durations.
			if err := emit(`{"name":"span","ph":"i","ts":%d,"pid":1,"tid":%d,"s":"t"}`,
				ev.LTime, ev.Pid); err != nil {
				return err
			}
		default:
			if err := emit(`{"name":"%s","ph":"i","ts":%d,"pid":1,"tid":%d,"s":"t","args":{"num":%d,"arg":"%#x","ret":%d}}`,
				jsonEscape(ev.Kind.String()), ev.LTime, ev.Pid, ev.Num, ev.Arg, ev.Ret); err != nil {
				return err
			}
		}
	}
	// Spans render on a synthetic pid-0 "setup" track; host-only spans
	// (LBegin==LEnd==0) are laid out end-to-end by RealNs so the
	// prepare/boot/fork sequence is visible even without guest time.
	cursor := int64(0)
	for _, sp := range spans {
		ts, dur := sp.LBegin, sp.LEnd-sp.LBegin
		if sp.LBegin == 0 && sp.LEnd == 0 {
			ts, dur = cursor, sp.RealNs/1000
			if dur < 1 {
				dur = 1
			}
			cursor = ts + dur
		}
		if err := emit(`{"name":"%s","ph":"X","ts":%d,"dur":%d,"pid":0,"tid":0,"args":{"real_ns":%d}}`,
			jsonEscape(sp.Name), ts, dur, sp.RealNs); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]\n")
	return err
}
