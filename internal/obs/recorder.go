package obs

import (
	"encoding/binary"
	"fmt"

	"repro/internal/derive"
)

// Kind tags a flight-recorder event.
type Kind uint8

const (
	// KindSyscallEnter is recorded when a traced or emulated syscall is
	// admitted: Num is the syscall number, Arg the pre-rewrite args digest.
	KindSyscallEnter Kind = iota + 1
	// KindSyscallExit pairs the enter: Ret is the determinized result.
	KindSyscallExit
	// KindBuffered is an in-tracee buffered call serviced without a stop.
	KindBuffered
	// KindSched is a scheduler decision: Pid is the chosen vtid, Arg the
	// queue class it was picked from (see sched).
	KindSched
	// KindEntropy is a deterministic PRNG draw: Arg packs the draw index
	// and length, Ret carries an FNV digest of the produced bytes.
	KindEntropy
	// KindInstr is a trapped CPU instruction (RDTSC/CPUID): Num is the
	// trap code, Ret the determinized value handed to the guest.
	KindInstr
	// KindCOWBreak is a copy-on-write data break in a forked filesystem:
	// Arg is the copied byte count. Mechanism-level: occurs only on
	// template forks, so the diagnoser skips it during alignment.
	KindCOWBreak
	// KindSpan marks span begin/end instants emitted by the container
	// lifecycle; mechanism-level like KindCOWBreak.
	KindSpan
	// KindCheckpoint marks a crash-consistency checkpoint sealed at a
	// quiescent traced stop: Arg is the checkpoint ordinal, Ret the kernel
	// action count at the seal. Recorded identically by an uninterrupted run
	// and a crash+resume of the same run (the seal happens before the crash
	// in both), but mechanism-level like KindCOWBreak: the diagnoser skips
	// it when aligning a checkpointing run against a non-checkpointing one.
	KindCheckpoint
	// KindFarmAssign marks the farm coordinator assigning a job to a worker:
	// Pid is the worker ordinal, Arg the job ID, Ret the attempt. Farm kinds
	// are recorded on the coordinator's own ring and are mechanism-level —
	// they describe WHERE a build ran, which by the farm's purity contract
	// must not affect any output byte, so the diagnoser never compares them.
	KindFarmAssign
	// KindFarmSteal marks a job reassigned away from a dead worker: Pid is
	// the new worker ordinal, Arg the job ID, Ret the dead worker's ordinal.
	KindFarmSteal
	// KindFarmRecover marks a stolen job completed from a checkpoint seal:
	// Pid is the recovering worker ordinal, Arg the job ID, Ret the seal
	// ordinal restored from (0 = cold replay).
	KindFarmRecover
	// KindWsFork marks a thread workspace fork (ISSUE 7): Pid is the
	// forking thread's vTID. Mechanism-level like KindCOWBreak — workspaces
	// exist only when the workspace mode is on, and never change
	// guest-visible bytes.
	KindWsFork
	// KindWsMerge marks a workspace merge at a sync point: Pid is the
	// syncing thread's vTID, Arg the deterministic merge digest, Ret the
	// number of workspaces merged.
	KindWsMerge
	// KindWsConflict marks a deterministic workspace merge conflict; the
	// container aborts reproducibly right after recording it.
	KindWsConflict
	// KindDeriveHit marks a derivation-store hit (ISSUE 8): derived state
	// was reused instead of rebuilt. Arg is the derivation key hash, Ret
	// the granularity (0 = template/snapshot, 1 = phase seal, 2 = compile
	// unit). Observability-only — reuse never changes guest-visible bytes.
	KindDeriveHit
	// KindDeriveMiss marks a derivation-store miss at the same granularity
	// encoding: the state had to be built (or a unit re-executed).
	KindDeriveMiss
	// KindSeek marks a time-travel debugger seek (ISSUE 9): Arg is the
	// requested logical instant, Ret the checkpoint ordinal restored from
	// (-1 = cold replay from boot), Num the number of actions replayed
	// forward from the seal. Recorded on the debug session's own ring, never
	// on a guest run's — mechanism-level like the farm kinds.
	KindSeek
	// KindBisectProbe marks one probe of the auto-bisect binary search: Arg
	// is the probed seal ordinal, Ret 1 if the two runs' seals already
	// diverged at that ordinal and 0 if they still agreed.
	KindBisectProbe
	// KindAttest marks one job's quorum admission on the coordinator ring
	// (ISSUE 10): Pid is the primary builder's ordinal, Arg the job, Ret the
	// dissenting-builder count. Mechanism-level like the farm kinds.
	KindAttest
	// KindQuarantine marks a builder named as Byzantine and quarantined:
	// Pid is the quarantined ordinal, Arg the job whose admission named it.
	KindQuarantine
	// KindEpochSeal marks a transparency-log epoch sealed and replicated:
	// Arg is the epoch index, Ret the admitted-record count.
	KindEpochSeal
)

// String names the kind for human-facing diagnoser output.
func (k Kind) String() string {
	switch k {
	case KindSyscallEnter:
		return "syscall-enter"
	case KindSyscallExit:
		return "syscall-exit"
	case KindBuffered:
		return "buffered-call"
	case KindSched:
		return "sched"
	case KindEntropy:
		return "entropy"
	case KindInstr:
		return "instr"
	case KindCOWBreak:
		return "cow-break"
	case KindSpan:
		return "span"
	case KindCheckpoint:
		return "checkpoint"
	case KindFarmAssign:
		return "farm-assign"
	case KindFarmSteal:
		return "farm-steal"
	case KindFarmRecover:
		return "farm-recover"
	case KindWsFork:
		return "ws-fork"
	case KindWsMerge:
		return "ws-merge"
	case KindWsConflict:
		return "ws-conflict"
	case KindDeriveHit:
		return "derive-hit"
	case KindDeriveMiss:
		return "derive-miss"
	case KindSeek:
		return "ttd-seek"
	case KindBisectProbe:
		return "ttd-bisect-probe"
	case KindAttest:
		return "attest-admit"
	case KindQuarantine:
		return "attest-quarantine"
	case KindEpochSeal:
		return "attest-epoch-seal"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one flight-recorder record. Every field is derived from logical
// state only: LTime is the logical clock (jitter-free virtual time), Pid a
// virtual pid/tid, and Arg/Ret determinized values or digests — never host
// pids, host inodes, wall-clock stamps or addresses.
type Event struct {
	LTime int64
	Arg   uint64
	Ret   int64
	Pid   int32
	Num   int32
	Kind  Kind
}

// eventBytes is the canonical wire size of one event (MarshalBinary).
const eventBytes = 8 + 8 + 8 + 4 + 4 + 1

// DefaultRingEvents is the default flight-recorder capacity. Big enough to
// hold a modeled package build's full event stream; on overflow the ring
// keeps the newest events and counts the drops.
const DefaultRingEvents = 8192

// Recorder is a bounded ring of events. It is nil-safe: every method on a
// nil *Recorder is a no-op, which is how DisableObservability is spelled at
// the recording sites. The recorder is written only under the kernel's
// lockstep (exactly one guest goroutine runs at a time), so it needs no
// locking of its own.
type Recorder struct {
	ring    []Event
	next    int
	total   int64
	dropped int64
}

// NewRecorder returns a recorder with the given ring capacity
// (DefaultRingEvents if n <= 0).
func NewRecorder(n int) *Recorder {
	if n <= 0 {
		n = DefaultRingEvents
	}
	return &Recorder{ring: make([]Event, 0, n)}
}

// Record appends one event.
func (r *Recorder) Record(ltime int64, kind Kind, num int32, pid int32, arg uint64, ret int64) {
	if r == nil {
		return
	}
	ev := Event{LTime: ltime, Arg: arg, Ret: ret, Pid: pid, Num: num, Kind: kind}
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, ev)
	} else {
		r.ring[r.next] = ev
		r.dropped++
	}
	r.next = (r.next + 1) % cap(r.ring)
	r.total++
}

// Total is the number of events ever recorded (including dropped ones).
func (r *Recorder) Total() int64 {
	if r == nil {
		return 0
	}
	return r.total
}

// Dropped is the number of events overwritten by ring wraparound.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Events returns the retained events in record order (oldest first).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	if len(r.ring) < cap(r.ring) {
		return append([]Event(nil), r.ring...)
	}
	out := make([]Event, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// CloneState returns an immutable deep copy of the recorder's state (ring
// contents, write cursor, total/dropped counters) for sealing into a
// checkpoint. Nil-safe: a nil recorder (DisableObservability) seals as nil.
func (r *Recorder) CloneState() *Recorder {
	if r == nil {
		return nil
	}
	c := &Recorder{next: r.next, total: r.total, dropped: r.dropped}
	c.ring = append(make([]Event, 0, cap(r.ring)), r.ring...)
	return c
}

// RestoreState overwrites the recorder with a seal taken by CloneState, so a
// resumed run's ring continues byte-for-byte where the sealed prefix ended.
// The seal is copied, not aliased, and can be restored from repeatedly.
func (r *Recorder) RestoreState(seal *Recorder) {
	if r == nil || seal == nil {
		return
	}
	r.ring = append(make([]Event, 0, cap(seal.ring)), seal.ring...)
	r.next = seal.next
	r.total = seal.total
	r.dropped = seal.dropped
}

// MarshalBinary renders the retained events as canonical little-endian
// records prefixed by a header (total, dropped). Two recorders that saw the
// same event stream marshal byte-identically — the property the ring
// determinism test pins.
func (r *Recorder) MarshalBinary() []byte {
	evs := r.Events()
	out := make([]byte, 16, 16+len(evs)*eventBytes)
	binary.LittleEndian.PutUint64(out[0:], uint64(r.Total()))
	binary.LittleEndian.PutUint64(out[8:], uint64(r.Dropped()))
	var rec [eventBytes]byte
	for _, ev := range evs {
		binary.LittleEndian.PutUint64(rec[0:], uint64(ev.LTime))
		binary.LittleEndian.PutUint64(rec[8:], ev.Arg)
		binary.LittleEndian.PutUint64(rec[16:], uint64(ev.Ret))
		binary.LittleEndian.PutUint32(rec[24:], uint32(ev.Pid))
		binary.LittleEndian.PutUint32(rec[28:], uint32(ev.Num))
		rec[32] = byte(ev.Kind)
		out = append(out, rec[:]...)
	}
	return out
}

// Span is one timed phase of a container's lifecycle (prepare, boot, fork,
// run, flush). RealNs is wall-clock duration measured OUTSIDE the container
// (host-side setup cost, like Result.SetupNs) and never feeds back into
// guest state; LBegin/LEnd bracket the span on the logical clock where the
// phase executes guest work (zero for host-only phases).
type Span struct {
	Name   string
	RealNs int64
	LBegin int64
	LEnd   int64
}

// DigestBytes folds a byte slice into a 64-bit FNV-1a digest — how entropy
// draws and syscall payloads enter events without copying guest data. It is
// derive.DigestBytes re-exported: event digests share the one derivation-key
// mixer (ISSUE 8) so observability and cache keys can never disagree on what
// a content hash is.
func DigestBytes(p []byte) uint64 { return derive.DigestBytes(p) }

// DigestU64 folds additional words into a running digest (seed with
// DigestBytes(nil) for an empty start).
func DigestU64(h uint64, vs ...uint64) uint64 { return derive.DigestU64(h, vs...) }
