package obs

import (
	"strings"
	"testing"
)

func TestFirstDivergenceIdentical(t *testing.T) {
	a := []Event{
		{LTime: 1, Kind: KindSyscallEnter, Num: 1, Pid: 1},
		{LTime: 2, Kind: KindSyscallExit, Num: 1, Pid: 1, Ret: 9},
	}
	if d := FirstDivergence(a, a); d != nil {
		t.Fatalf("identical streams diverged: %v", d)
	}
	if got := (*Divergence)(nil).String(); got != "streams identical" {
		t.Fatalf("nil String = %q", got)
	}
}

func TestFirstDivergenceContent(t *testing.T) {
	a := []Event{
		{LTime: 1, Kind: KindSyscallEnter, Num: 1, Pid: 1, Arg: 0xaa},
		{LTime: 2, Kind: KindEntropy, Arg: 16, Ret: 100},
	}
	b := []Event{
		{LTime: 1, Kind: KindSyscallEnter, Num: 1, Pid: 1, Arg: 0xaa},
		{LTime: 2, Kind: KindEntropy, Arg: 16, Ret: 200},
	}
	d := FirstDivergence(a, b)
	if d == nil || d.Index != 1 {
		t.Fatalf("divergence = %v, want index 1", d)
	}
	if d.A.Ret != 100 || d.B.Ret != 200 {
		t.Fatalf("wrong events: %v / %v", d.A, d.B)
	}
	if !strings.Contains(d.String(), "entropy") {
		t.Fatalf("String missing kind: %s", d)
	}
}

func TestFirstDivergenceIgnoresLTimeAndMechanism(t *testing.T) {
	a := []Event{
		{LTime: 10, Kind: KindCOWBreak, Arg: 512},
		{LTime: 11, Kind: KindSyscallEnter, Num: 2, Pid: 1},
		{LTime: 12, Kind: KindSpan},
	}
	b := []Event{
		{LTime: 99, Kind: KindSyscallEnter, Num: 2, Pid: 1},
	}
	if d := FirstDivergence(a, b); d != nil {
		t.Fatalf("mechanism kinds / ltime should not diverge: %v", d)
	}
}

func TestFirstDivergenceLengthMismatch(t *testing.T) {
	a := []Event{{Kind: KindSyscallEnter, Num: 1}}
	d := FirstDivergence(a, nil)
	if d == nil || d.Index != 0 || d.A == nil || d.B != nil {
		t.Fatalf("divergence = %v, want A-only at 0", d)
	}
	if !strings.Contains(d.String(), "<stream ended>") {
		t.Fatalf("String missing ended marker: %s", d)
	}
}
