package obs

import (
	"strings"
	"testing"
)

func TestFirstDivergenceIdentical(t *testing.T) {
	a := []Event{
		{LTime: 1, Kind: KindSyscallEnter, Num: 1, Pid: 1},
		{LTime: 2, Kind: KindSyscallExit, Num: 1, Pid: 1, Ret: 9},
	}
	if d := FirstDivergence(a, a); d != nil {
		t.Fatalf("identical streams diverged: %v", d)
	}
	if got := (*Divergence)(nil).String(); got != "streams identical" {
		t.Fatalf("nil String = %q", got)
	}
}

func TestFirstDivergenceContent(t *testing.T) {
	a := []Event{
		{LTime: 1, Kind: KindSyscallEnter, Num: 1, Pid: 1, Arg: 0xaa},
		{LTime: 2, Kind: KindEntropy, Arg: 16, Ret: 100},
	}
	b := []Event{
		{LTime: 1, Kind: KindSyscallEnter, Num: 1, Pid: 1, Arg: 0xaa},
		{LTime: 2, Kind: KindEntropy, Arg: 16, Ret: 200},
	}
	d := FirstDivergence(a, b)
	if d == nil || d.Index != 1 {
		t.Fatalf("divergence = %v, want index 1", d)
	}
	if d.A.Ret != 100 || d.B.Ret != 200 {
		t.Fatalf("wrong events: %v / %v", d.A, d.B)
	}
	if !strings.Contains(d.String(), "entropy") {
		t.Fatalf("String missing kind: %s", d)
	}
}

func TestFirstDivergenceIgnoresLTimeAndMechanism(t *testing.T) {
	a := []Event{
		{LTime: 10, Kind: KindCOWBreak, Arg: 512},
		{LTime: 11, Kind: KindSyscallEnter, Num: 2, Pid: 1},
		{LTime: 12, Kind: KindSpan},
	}
	b := []Event{
		{LTime: 99, Kind: KindSyscallEnter, Num: 2, Pid: 1},
	}
	if d := FirstDivergence(a, b); d != nil {
		t.Fatalf("mechanism kinds / ltime should not diverge: %v", d)
	}
}

func TestFirstDivergenceLengthMismatch(t *testing.T) {
	a := []Event{{Kind: KindSyscallEnter, Num: 1}}
	d := FirstDivergence(a, nil)
	if d == nil || d.Index != 0 || d.A == nil || d.B != nil {
		t.Fatalf("divergence = %v, want A-only at 0", d)
	}
	if !strings.Contains(d.String(), "<stream ended>") {
		t.Fatalf("String missing ended marker: %s", d)
	}
}

// TestFirstDivergenceContext pins the bounded context windows: up to
// ContextEvents comparable events on each side of the mismatch, per stream,
// clamped at stream bounds, with mechanism events filtered out before
// windowing.
func TestFirstDivergenceContext(t *testing.T) {
	mk := func(n int) []Event {
		evs := make([]Event, 0, n+1)
		for i := 0; i < n; i++ {
			evs = append(evs, Event{Kind: KindSyscallEnter, Num: int32(i)})
			if i == 2 {
				// Mechanism noise must not count toward the window.
				evs = append(evs, Event{Kind: KindCheckpoint}, Event{Kind: KindSeek})
			}
		}
		return evs
	}
	a, b := mk(20), mk(20)
	b[14].Ret = 999 // Num=12: comparable index 12 (raw 14, mechanism events filtered)
	d := FirstDivergence(a, b)
	if d == nil || d.Index != 12 {
		t.Fatalf("divergence = %v, want index 12", d)
	}
	if len(d.ContextA) != 2*ContextEvents+1 || len(d.ContextB) != 2*ContextEvents+1 {
		t.Fatalf("context lengths = %d/%d, want %d", len(d.ContextA), len(d.ContextB), 2*ContextEvents+1)
	}
	if d.ContextA[0].Num != int32(12-ContextEvents) || d.ContextA[len(d.ContextA)-1].Num != int32(12+ContextEvents) {
		t.Fatalf("window misaligned: %v", d.ContextA)
	}
	if d.ContextA[ContextEvents] != *d.A || d.ContextB[ContextEvents] != *d.B {
		t.Fatalf("mismatching event not centered in its window")
	}
	for _, ev := range append(append([]Event(nil), d.ContextA...), d.ContextB...) {
		if !comparableKind(ev.Kind) {
			t.Fatalf("mechanism event leaked into a context window: %v", ev)
		}
	}

	// Mismatch near the front clamps the left edge.
	a2, b2 := mk(20), mk(20)
	b2[1].Ret = 999
	d = FirstDivergence(a2, b2)
	if d == nil || d.Index != 1 {
		t.Fatalf("divergence = %v, want index 1", d)
	}
	if len(d.ContextA) != 1+ContextEvents+1 {
		t.Fatalf("front-clamped window length = %d, want %d", len(d.ContextA), 1+ContextEvents+1)
	}
	if d.ContextA[0].Num != 0 {
		t.Fatalf("front-clamped window starts at %d, want 0", d.ContextA[0].Num)
	}
}

// TestFirstDivergenceContextLengthMismatch: when one stream ends early the
// shorter side still gets a trailing window (the events before the cut) and
// the longer side a full one around its unmatched event.
func TestFirstDivergenceContextLengthMismatch(t *testing.T) {
	long := make([]Event, 10)
	for i := range long {
		long[i] = Event{Kind: KindSyscallEnter, Num: int32(i)}
	}
	short := append([]Event(nil), long[:6]...)
	d := FirstDivergence(long, short)
	if d == nil || d.Index != 6 || d.A == nil || d.B != nil {
		t.Fatalf("divergence = %v, want A-only at 6", d)
	}
	if len(d.ContextA) != ContextEvents+ContextEvents { // [2..9]: 4 before + event 6 + 3 after
		t.Fatalf("ContextA length = %d, want %d", len(d.ContextA), 2*ContextEvents)
	}
	if len(d.ContextB) != ContextEvents { // [2..5]: the last 4 events before the cut
		t.Fatalf("ContextB length = %d, want %d", len(d.ContextB), ContextEvents)
	}
	if d.ContextB[len(d.ContextB)-1].Num != 5 {
		t.Fatalf("ContextB does not end at the cut: %v", d.ContextB)
	}
}
