package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Record(1, KindSyscallEnter, 2, 3, 4, 5)
	if r.Total() != 0 || r.Dropped() != 0 || r.Events() != nil {
		t.Fatal("nil recorder not inert")
	}
	if len(r.MarshalBinary()) != 16 {
		t.Fatal("nil recorder marshal should be header-only")
	}
}

func TestRecorderRingWrap(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 6; i++ {
		r.Record(int64(i), KindSched, 0, int32(i), 0, 0)
	}
	if r.Total() != 6 || r.Dropped() != 2 {
		t.Fatalf("total/dropped = %d/%d, want 6/2", r.Total(), r.Dropped())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.LTime != int64(i+2) {
			t.Fatalf("event %d ltime = %d, want %d (oldest-first order)", i, ev.LTime, i+2)
		}
	}
}

func TestRecorderMarshalDeterministic(t *testing.T) {
	run := func() []byte {
		r := NewRecorder(8)
		r.Record(10, KindSyscallEnter, 1, 1000, 0xabc, 0)
		r.Record(20, KindSyscallExit, 1, 1000, 0, 42)
		r.Record(30, KindEntropy, 0, 0, 1<<32|16, int64(DigestBytes([]byte("x"))))
		return r.MarshalBinary()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("identical event streams marshal differently")
	}
	if len(a) != 16+3*eventBytes {
		t.Fatalf("marshal len = %d, want %d", len(a), 16+3*eventBytes)
	}
}

func TestDigests(t *testing.T) {
	if DigestBytes([]byte("a")) == DigestBytes([]byte("b")) {
		t.Fatal("digest collision on trivial inputs")
	}
	if DigestU64(0, 1, 2) == DigestU64(0, 2, 1) {
		t.Fatal("DigestU64 should be order-sensitive")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	events := []Event{
		{LTime: 5, Kind: KindSyscallEnter, Num: 1, Pid: 1000, Arg: 0xf},
		{LTime: 9, Kind: KindSyscallExit, Num: 1, Pid: 1000, Ret: 3},
		{LTime: 12, Kind: KindEntropy, Ret: 77},
	}
	spans := []Span{{Name: "boot", RealNs: 4000}, {Name: "run", LBegin: 5, LEnd: 20, RealNs: 100}}
	var buf bytes.Buffer
	namer := func(num int32) string {
		if num == 1 {
			return "write"
		}
		return ""
	}
	if err := WriteChromeTrace(&buf, events, spans, namer); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"name":"write","ph":"B","ts":5`, `"ph":"E","ts":9`, `"name":"entropy"`, `"name":"boot","ph":"X"`, `"name":"run","ph":"X","ts":5,"dur":15`} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q:\n%s", want, out)
		}
	}
	if !strings.HasPrefix(out, "[") || !strings.HasSuffix(strings.TrimSpace(out), "]") {
		t.Fatal("trace is not a JSON array")
	}
	// Unknown syscall numbers fall back to sys_<n>, nil namer included.
	var buf2 bytes.Buffer
	if err := WriteChromeTrace(&buf2, []Event{{Kind: KindSyscallEnter, Num: 9}}, nil, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf2.String(), `"name":"sys_9"`) {
		t.Fatal("nil namer fallback missing")
	}
}
