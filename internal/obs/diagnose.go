package obs

import "fmt"

// comparableKind reports whether a kind participates in stream alignment.
// Mechanism-level events (COW breaks happen only on template forks, span
// markers only bracket lifecycle phases) are excluded: they vary with HOW a
// container was set up, not with what the guest computed, and two runs that
// differ only in setup path must still align clean.
func comparableKind(k Kind) bool {
	switch k {
	case KindCOWBreak, KindSpan, KindCheckpoint,
		KindFarmAssign, KindFarmSteal, KindFarmRecover,
		KindWsFork, KindWsMerge, KindWsConflict,
		KindSeek, KindBisectProbe:
		return false
	default:
		return true
	}
}

// ContextEvents is how many comparable events FirstDivergence captures on
// each side of the mismatch, per stream. A window, not a knob: big enough to
// show the syscall pattern around the divergent event, small enough to read
// in one screen of -diagnose output.
const ContextEvents = 4

// Divergence is the first point where two flight-recorder streams disagree.
// Index is the position in the filtered (comparable-kind) stream; A and B
// are the mismatching events — either may be nil when one stream ended
// early. ContextA/ContextB are bounded windows of the filtered streams
// around the mismatch (up to ContextEvents before and after, including the
// mismatching event itself when present), so a debugger can show what each
// run was doing without re-replaying it.
type Divergence struct {
	Index    int
	A, B     *Event
	ContextA []Event
	ContextB []Event
}

// String renders the divergence for reprotest -diagnose output.
func (d *Divergence) String() string {
	if d == nil {
		return "streams identical"
	}
	desc := func(ev *Event) string {
		if ev == nil {
			return "<stream ended>"
		}
		return fmt.Sprintf("%s num=%d pid=%d args=%#x ret=%d ltime=%d",
			ev.Kind, ev.Num, ev.Pid, ev.Arg, ev.Ret, ev.LTime)
	}
	return fmt.Sprintf("first divergence at event %d:\n  A: %s\n  B: %s",
		d.Index, desc(d.A), desc(d.B))
}

// contextWindow slices up to ContextEvents before and after index i out of
// the filtered stream (clamped to stream bounds), copying so the caller can
// hold the window after the stream's backing array is reused.
func contextWindow(evs []Event, i int) []Event {
	lo := i - ContextEvents
	if lo < 0 {
		lo = 0
	}
	hi := i + ContextEvents + 1
	if hi > len(evs) {
		hi = len(evs)
	}
	if lo >= hi {
		return nil
	}
	return append([]Event(nil), evs[lo:hi]...)
}

// sameEvent compares content, not logical time: LClock rates depend on the
// visible core count, so two runs with identical guest behaviour under
// different reprotest variations can legitimately disagree on LTime. The
// divergence report still shows both LTimes for locating the event.
func sameEvent(a, b Event) bool {
	return a.Kind == b.Kind && a.Pid == b.Pid && a.Num == b.Num &&
		a.Arg == b.Arg && a.Ret == b.Ret
}

// FirstDivergence aligns two event streams and returns the first mismatch,
// or nil if the comparable prefixes agree. When a ring overflowed (Dropped
// > 0 upstream) the caller should widen the ring and re-run; alignment here
// is strictly positional over comparable events.
func FirstDivergence(a, b []Event) *Divergence {
	fa := filterComparable(a)
	fb := filterComparable(b)
	n := len(fa)
	if len(fb) < n {
		n = len(fb)
	}
	for i := 0; i < n; i++ {
		if !sameEvent(fa[i], fb[i]) {
			ea, eb := fa[i], fb[i]
			return &Divergence{Index: i, A: &ea, B: &eb,
				ContextA: contextWindow(fa, i), ContextB: contextWindow(fb, i)}
		}
	}
	if len(fa) != len(fb) {
		d := &Divergence{Index: n,
			ContextA: contextWindow(fa, n), ContextB: contextWindow(fb, n)}
		if len(fa) > n {
			ev := fa[n]
			d.A = &ev
		}
		if len(fb) > n {
			ev := fb[n]
			d.B = &ev
		}
		return d
	}
	return nil
}

func filterComparable(evs []Event) []Event {
	out := make([]Event, 0, len(evs))
	for _, ev := range evs {
		if comparableKind(ev.Kind) {
			out = append(out, ev)
		}
	}
	return out
}
