package core_test

import (
	"strings"
	"testing"

	"repro/internal/abi"
	"repro/internal/baseimg"
	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/hashdeep"
	"repro/internal/kernel"
	"repro/internal/machine"
)

// host is one simulated physical environment: the things DetTrace must hide.
type host struct {
	profile *machine.Profile
	seed    uint64
	epoch   int64
	numCPU  int
}

var hostA = host{machine.CloudLabC220G5(), 0xAAAA, 1_520_000_000, 0}
var hostB = host{machine.PortabilityBroadwell(), 0xB0B0, 1_545_999_999, 8}

func profileLegacy() *machine.Profile { return machine.LegacySandyBridge() }

// runDT executes prog under DetTrace on the given host and returns the
// result.
func runDT(t *testing.T, h host, cfg core.Config, prog guest.Program) *core.Result {
	t.Helper()
	reg := guest.NewRegistry()
	reg.Register("main", prog)
	img := baseimg.Minimal()
	img.AddFile("/bin/main", 0o755, guest.MakeExe("main", nil))
	cfg.Image = img
	cfg.Profile = h.profile
	cfg.HostSeed = h.seed
	cfg.Epoch = h.epoch
	cfg.NumCPU = h.numCPU
	if cfg.Deadline == 0 {
		cfg.Deadline = 3_600_000_000_000
	}
	c := core.New(cfg)
	return c.Run(reg, "/bin/main", []string{"main"}, []string{"PATH=/bin"})
}

func TestLogicalTimeMatchesArtifactDemo(t *testing.T) {
	res := runDT(t, hostA, core.Config{}, func(p *guest.Proc) int {
		p.Printf("%d\n", p.Time())
		return 0
	})
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	// First time call returns the fixed logical epoch: Aug 8 1993 22:00 UTC.
	if got := strings.TrimSpace(res.Stdout); got != "744847200" {
		t.Errorf("time = %s, want 744847200", got)
	}
}

func TestTimeIsMonotone(t *testing.T) {
	res := runDT(t, hostA, core.Config{}, func(p *guest.Proc) int {
		a, b, c := p.Time(), p.Time(), p.Time()
		if !(a < b && b < c) {
			p.Printf("not monotone: %d %d %d\n", a, b, c)
			return 1
		}
		return 0
	})
	if res.ExitCode != 0 {
		t.Errorf("guest reported: %s", res.Stdout)
	}
}

func TestStatVirtualization(t *testing.T) {
	// Mirrors the artifact appendix demo: stat of a fresh file shows
	// device 1, a tiny inode, IO block 512, and 1970 timestamps.
	res := runDT(t, hostA, core.Config{}, func(p *guest.Proc) int {
		p.WriteFile("/tmp/foo.txt", nil, 0o644)
		st, err := p.Stat("/tmp/foo.txt")
		if err != abi.OK {
			return 1
		}
		p.Printf("dev=%d ino=%d blksize=%d atime=%d mtime=%d ctime=%d\n",
			st.Dev, st.Ino, st.Blksize, st.Atime.Sec, st.Mtime.Sec, st.Ctime.Sec)
		return 0
	})
	out := strings.TrimSpace(res.Stdout)
	if !strings.HasPrefix(out, "dev=1 ino=") || !strings.Contains(out, "blksize=512") ||
		!strings.Contains(out, "atime=0") || !strings.Contains(out, "ctime=0") {
		t.Errorf("stat output = %q", out)
	}
	// The new file's mtime is a small creation counter, not wall time.
	if !strings.Contains(out, "mtime=1") && !strings.Contains(out, "mtime=2") {
		t.Errorf("virtual mtime not creation-ordered: %q", out)
	}
}

func TestInitialImageFilesHaveMtimeZero(t *testing.T) {
	res := runDT(t, hostA, core.Config{}, func(p *guest.Proc) int {
		st, err := p.Stat("/etc/hostname")
		if err != abi.OK {
			return 1
		}
		p.Printf("mtime=%d\n", st.Mtime.Sec)
		return 0
	})
	if got := strings.TrimSpace(res.Stdout); got != "mtime=0" {
		t.Errorf("image file mtime = %s, want 0", got)
	}
}

func TestConfigureClockSkewCheckPasses(t *testing.T) {
	// GNU autotools configure creates a file and requires its mtime to be
	// >= an existing file's (§5.5). Virtual mtimes must satisfy it.
	res := runDT(t, hostA, core.Config{}, func(p *guest.Proc) int {
		old, _ := p.Stat("/etc/hostname")
		p.WriteFile("/tmp/conftest", []byte("x"), 0o644)
		fresh, _ := p.Stat("/tmp/conftest")
		if fresh.Mtime.Nanos() <= old.Mtime.Nanos() {
			p.Eprintf("clock skew detected!\n")
			return 1
		}
		return 0
	})
	if res.ExitCode != 0 {
		t.Errorf("configure-style check failed: %s", res.Stderr)
	}
}

func TestGetdentsSortedAndVirtualInodes(t *testing.T) {
	res := runDT(t, hostA, core.Config{}, func(p *guest.Proc) int {
		for _, n := range []string{"zz", "aa", "mm", "bb"} {
			p.WriteFile("/tmp/"+n, []byte(n), 0o644)
		}
		ents, _ := p.ReadDir("/tmp")
		for _, e := range ents {
			p.Printf("%s:%d ", e.Name, e.Ino)
		}
		return 0
	})
	out := strings.TrimSpace(res.Stdout)
	fields := strings.Fields(out)
	names := make([]string, len(fields))
	for i, f := range fields {
		names[i] = strings.Split(f, ":")[0]
	}
	if strings.Join(names, ",") != "aa,bb,mm,zz" {
		t.Errorf("getdents not sorted: %q", out)
	}
	for _, f := range fields {
		ino := strings.Split(f, ":")[1]
		if len(ino) > 3 {
			t.Errorf("inode %s not virtualized (too large): %q", ino, out)
		}
	}
}

func TestUrandomFromSeededPRNG(t *testing.T) {
	read := func(seed uint64, h host) string {
		res := runDT(t, h, core.Config{PRNGSeed: seed}, func(p *guest.Proc) int {
			buf := make([]byte, 8)
			fd, _ := p.Open("/dev/urandom", abi.ORdonly, 0)
			p.Read(fd, buf)
			p.Close(fd)
			p.Printf("%x", buf)
			return 0
		})
		return res.Stdout
	}
	if a, b := read(7, hostA), read(7, hostB); a != b {
		t.Errorf("same PRNG seed gave different bytes across hosts: %s vs %s", a, b)
	}
	if a, b := read(7, hostA), read(8, hostA); a == b {
		t.Errorf("different PRNG seeds gave identical bytes: %s", a)
	}
}

func TestGetrandomEmulated(t *testing.T) {
	read := func(h host) string {
		res := runDT(t, h, core.Config{PRNGSeed: 3}, func(p *guest.Proc) int {
			buf := make([]byte, 16)
			p.GetRandom(buf)
			p.Printf("%x", buf)
			return 0
		})
		return res.Stdout
	}
	if a, b := read(hostA), read(hostB); a != b {
		t.Errorf("getrandom differs across hosts: %s vs %s", a, b)
	}
}

func TestVirtualPIDsStartAtOne(t *testing.T) {
	res := runDT(t, hostA, core.Config{}, func(p *guest.Proc) int {
		p.Printf("self=%d ppid=%d ", p.Getpid(), p.Getppid())
		pid, _ := p.Fork(func(c *guest.Proc) int {
			c.Printf("child-sees=%d ", c.Getpid())
			return 0
		})
		p.Waitpid(pid, 0)
		p.Printf("child=%d", pid)
		return 0
	})
	out := res.Stdout
	if !strings.Contains(out, "self=1") || !strings.Contains(out, "ppid=0") ||
		!strings.Contains(out, "child=2") || !strings.Contains(out, "child-sees=2") {
		t.Errorf("pid namespace output = %q", out)
	}
}

func TestUnameMasked(t *testing.T) {
	res := runDT(t, hostB, core.Config{}, func(p *guest.Proc) int {
		u := p.Uname()
		p.Printf("%s %s %s", u.Nodename, u.Release, u.Machine)
		return 0
	})
	if res.Stdout != "dettrace 4.0.0-dettrace x86_64" {
		t.Errorf("uname = %q", res.Stdout)
	}
}

func TestSysinfoReportsUniprocessor(t *testing.T) {
	res := runDT(t, hostA, core.Config{}, func(p *guest.Proc) int {
		si := p.Sysinfo()
		p.Printf("cpus=%d ram=%d", si.NumCPU, si.TotalRAM>>30)
		return 0
	})
	if res.Stdout != "cpus=1 ram=4" {
		t.Errorf("sysinfo = %q", res.Stdout)
	}
}

func TestSocketAborts(t *testing.T) {
	res := runDT(t, hostA, core.Config{}, func(p *guest.Proc) int {
		p.Socket()
		return 0
	})
	if op, ok := res.Unsupported(); !ok || op != "socket" {
		t.Errorf("expected socket unsupported abort, got %v", res.Err)
	}
}

func TestCrossProcessSignalAborts(t *testing.T) {
	res := runDT(t, hostA, core.Config{}, func(p *guest.Proc) int {
		pid, _ := p.Fork(func(c *guest.Proc) int {
			c.Compute(1_000_000)
			return 0
		})
		p.Kill(pid, abi.SIGTERM)
		p.Waitpid(pid, 0)
		return 0
	})
	if op, ok := res.Unsupported(); !ok || op != "cross-process signal" {
		t.Errorf("expected cross-process signal abort, got %v", res.Err)
	}
}

func TestSelfSignalAllowed(t *testing.T) {
	res := runDT(t, hostA, core.Config{}, func(p *guest.Proc) int {
		got := false
		p.Signal(abi.SIGUSR1, func(c *guest.Proc, s abi.Signal) { got = true })
		p.Kill(p.Getpid(), abi.SIGUSR1)
		if !got {
			return 1
		}
		return 0
	})
	if res.Err != nil || res.ExitCode != 0 {
		t.Errorf("self signal failed: err=%v code=%d", res.Err, res.ExitCode)
	}
}

func TestUnsupportedSyscallAborts(t *testing.T) {
	res := runDT(t, hostA, core.Config{}, func(p *guest.Proc) int {
		p.T.Syscall(&abi.Syscall{Num: abi.SysPersonality})
		return 0
	})
	if op, ok := res.Unsupported(); !ok || !strings.Contains(op, "personality") {
		t.Errorf("expected personality abort, got %v", res.Err)
	}
}

func TestAlarmExpiresInstantly(t *testing.T) {
	res := runDT(t, hostA, core.Config{}, func(p *guest.Proc) int {
		fired := false
		p.Signal(abi.SIGALRM, func(c *guest.Proc, s abi.Signal) { fired = true })
		// An hour of real time — but under DetTrace the timer call is
		// converted and the signal delivered "instantaneously", so the
		// handler has run by the time alarm returns (§5.4).
		p.Alarm(3600)
		if !fired {
			return 1
		}
		return 0
	})
	if res.Err != nil || res.ExitCode != 0 {
		t.Fatalf("alarm run: err=%v code=%d", res.Err, res.ExitCode)
	}
	if res.WallTime > 600_000_000_000 {
		t.Errorf("alarm took %d ns of virtual time; should be instant", res.WallTime)
	}
}

func TestNanosleepBecomesNop(t *testing.T) {
	res := runDT(t, hostA, core.Config{}, func(p *guest.Proc) int {
		p.Nanosleep(3600 * 1e9)
		return 0
	})
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if res.WallTime > 1e9 {
		t.Errorf("sleep was not NOP'd: %d ns", res.WallTime)
	}
}

func TestBusyWaitDetected(t *testing.T) {
	res := runDT(t, hostA, core.Config{}, func(p *guest.Proc) int {
		const flag = 0x10
		p.CloneThread(func(w *guest.Proc) int {
			w.Eprintf("worker up\n") // syscall: hands the token back
			w.Compute(1000)          // starved: main never yields the token again
			w.Store(flag, 1)
			return 0
		})
		for p.Load(flag) == 0 {
			p.Compute(100) // spin without a syscall: never yields the token
		}
		return 0
	})
	if op, ok := res.Unsupported(); !ok || op != "busy-wait" {
		t.Errorf("expected busy-wait abort, got %v", res.Err)
	}
}

func TestFutexThreadsWorkSerialized(t *testing.T) {
	res := runDT(t, hostA, core.Config{}, func(p *guest.Proc) int {
		const flag = 0x20
		p.CloneThread(func(w *guest.Proc) int {
			w.Compute(10_000)
			w.Store(flag, 1)
			w.FutexWake(flag, 1)
			return 0
		})
		for p.Load(flag) == 0 {
			p.FutexWait(flag, 0)
		}
		return 0
	})
	if res.Err != nil || res.ExitCode != 0 {
		t.Errorf("futex run: err=%v code=%d", res.Err, res.ExitCode)
	}
}

func TestReadRetryFillsBuffer(t *testing.T) {
	// Fig. 4: a read of 8 bytes that the kernel would satisfy with 7 must
	// appear to the tracee as one complete 8-byte read.
	res := runDT(t, hostA, core.Config{}, func(p *guest.Proc) int {
		r, w, _ := p.Pipe()
		p.Fork(func(c *guest.Proc) int {
			c.Write(w, []byte("seven77")) // 7 bytes
			c.Compute(50_000)
			c.Write(w, []byte("!"))
			c.Close(w)
			return 0
		})
		p.Close(w)
		buf := make([]byte, 8)
		n, err := p.Read(r, buf)
		if err != abi.OK || n != 8 {
			p.Eprintf("read = %d (%v)\n", n, err)
			return 1
		}
		p.Printf("%s", buf)
		p.Wait()
		return 0
	})
	if res.Err != nil || res.ExitCode != 0 {
		t.Fatalf("retry run: err=%v code=%d stderr=%s", res.Err, res.ExitCode, res.Stderr)
	}
	if res.Stdout != "seven77!" {
		t.Errorf("stdout = %q", res.Stdout)
	}
	if res.Stats.ReadRetries == 0 {
		t.Errorf("expected read retries to be counted")
	}
}

func TestRdtscLinearAndCpuidMasked(t *testing.T) {
	run := func(h host) string {
		res := runDT(t, h, core.Config{}, func(p *guest.Proc) int {
			a := p.Rdtsc()
			b := p.Rdtsc()
			l := p.Cpuid(1)
			l7 := p.Cpuid(7)
			p.Printf("a=%d b=%d cores=%d tsx=%d", a, b, l.Leaf.EBX>>16, l7.Leaf.EBX)
			return 0
		})
		if res.Stats.RdtscTrapped == 0 {
			t.Errorf("rdtsc was not trapped")
		}
		return res.Stdout
	}
	a, b := run(hostA), run(hostB)
	if a != b {
		t.Errorf("instruction results differ across hosts: %q vs %q", a, b)
	}
	if !strings.Contains(a, "cores=1") || !strings.Contains(a, "tsx=0") {
		t.Errorf("cpuid not masked: %q", a)
	}
}

// messyProgram exercises nearly every nondeterminism source at once.
func messyProgram(p *guest.Proc) int {
	p.Printf("time=%d pid=%d ppid=%d\n", p.Time(), p.Getpid(), p.Getppid())
	buf := make([]byte, 6)
	p.GetRandom(buf)
	p.Printf("rand=%x tsc=%d\n", buf, p.Rdtsc())
	p.Printf("host=%s cpus=%d\n", p.Uname().Nodename, p.Sysinfo().NumCPU)
	p.Printf("mmap=%#x\n", p.Mmap(4096)) // ASLR base: pinned under DetTrace
	for _, n := range []string{"gamma", "alpha", "beta"} {
		p.WriteFile("/tmp/"+n, []byte(n), 0o644)
	}
	ents, _ := p.ReadDir("/tmp")
	for _, e := range ents {
		st, _ := p.Stat("/tmp/" + e.Name)
		p.Printf("%s ino=%d mtime=%d\n", e.Name, st.Ino, st.Mtime.Sec)
	}
	dst, _ := p.Stat("/tmp")
	p.Printf("dirsize=%d\n", dst.Size)
	// Parallel children racing on a shared log: order must be the
	// scheduler's deterministic order.
	var pids []int
	for i := 0; i < 3; i++ {
		id := i
		pid, _ := p.Fork(func(c *guest.Proc) int {
			c.Compute(int64(1000 * (3 - id)))
			c.AppendFile("/tmp/log", []byte{byte('A' + id)}, 0o644)
			return id
		})
		pids = append(pids, pid)
	}
	for range pids {
		wr, _ := p.Wait()
		p.Printf("reaped=%d code=%d\n", wr.PID, wr.Status.ExitCode())
	}
	log, _ := p.ReadFile("/tmp/log")
	p.Printf("log=%s\n", log)
	return 0
}

func TestEndToEndDeterminismAcrossHosts(t *testing.T) {
	a := runDT(t, hostA, core.Config{PRNGSeed: 42}, messyProgram)
	b := runDT(t, hostB, core.Config{PRNGSeed: 42}, messyProgram)
	if a.Err != nil || b.Err != nil {
		t.Fatalf("runs failed: %v / %v", a.Err, b.Err)
	}
	if a.Stdout != b.Stdout {
		t.Errorf("stdout differs across hosts:\n--- hostA ---\n%s--- hostB ---\n%s", a.Stdout, b.Stdout)
	}
	ha := hashdeep.HashSubtree(a.FS, "/tmp").Total()
	hb := hashdeep.HashSubtree(b.FS, "/tmp").Total()
	if ha != hb {
		t.Errorf("filesystem state differs across hosts")
	}
}

func TestBaselineBehaviorIsActuallyNondeterministic(t *testing.T) {
	// Sanity: the same messy program outside DetTrace differs across hosts;
	// otherwise the meta-test above proves nothing.
	run := func(h host) string {
		reg := guest.NewRegistry()
		reg.Register("main", messyProgram)
		img := baseimg.Minimal()
		img.AddFile("/bin/main", 0o755, guest.MakeExe("main", nil))
		c := core.New(core.Config{
			Image: img, Profile: h.profile, HostSeed: h.seed, Epoch: h.epoch,
			NumCPU: h.numCPU, Deadline: 3_600_000_000_000,
		})
		_ = c // DetTrace run not used here; baseline goes through kernel directly
		return runBaseline(t, h, messyProgram)
	}
	if a, b := run(hostA), run(hostB); a == b {
		t.Errorf("baseline runs identical across hosts — nondeterminism model broken")
	}
}

func TestVdsoAblationLeaksTime(t *testing.T) {
	prog := func(p *guest.Proc) int {
		p.Printf("vdso=%d", p.VdsoNow()/1e9/86400/365) // years since epoch
		return 0
	}
	// Full DetTrace: vDSO calls are downgraded to intercepted syscalls.
	a := runDT(t, hostA, core.Config{PRNGSeed: 1}, prog)
	b := runDT(t, hostB, core.Config{PRNGSeed: 1}, prog)
	if a.Stdout != b.Stdout {
		t.Errorf("vDSO replacement failed to determinize: %q vs %q", a.Stdout, b.Stdout)
	}
	// Ablated: raw vDSO reads the host clock and output differs.
	a = runDT(t, hostA, core.Config{PRNGSeed: 1, DisableVdso: true}, prog)
	b = runDT(t, hostB, core.Config{PRNGSeed: 1, DisableVdso: true}, prog)
	if a.Stdout == b.Stdout {
		t.Errorf("vDSO ablation should leak host time (epochs differ by a year)")
	}
}

func TestDirSizeAblationBreaksPortability(t *testing.T) {
	prog := func(p *guest.Proc) int {
		for i := 0; i < 100; i++ {
			p.WriteFile("/tmp/f"+strings.Repeat("x", i%7)+string(rune('a'+i%26)), nil, 0o644)
		}
		st, _ := p.Stat("/tmp")
		p.Printf("size=%d", st.Size)
		return 0
	}
	a := runDT(t, hostA, core.Config{DisableDirSizes: true}, prog)
	b := runDT(t, hostB, core.Config{DisableDirSizes: true}, prog)
	if a.Stdout == b.Stdout {
		t.Skip("host dir-size formulas coincided for this entry count")
	}
	a = runDT(t, hostA, core.Config{}, prog)
	b = runDT(t, hostB, core.Config{}, prog)
	if a.Stdout != b.Stdout {
		t.Errorf("directory size virtualization failed: %q vs %q", a.Stdout, b.Stdout)
	}
}

func TestNoSeccompSameResultsSlower(t *testing.T) {
	prog := func(p *guest.Proc) int {
		for i := 0; i < 200; i++ {
			p.WriteFile("/tmp/f", []byte("x"), 0o644)
			p.Stat("/tmp/f")
			p.Unlink("/tmp/f")
		}
		return 0
	}
	fast := runDT(t, hostA, core.Config{}, prog)
	slow := runDT(t, hostA, core.Config{DisableSeccomp: true}, prog)
	if fast.Err != nil || slow.Err != nil {
		t.Fatalf("runs failed: %v / %v", fast.Err, slow.Err)
	}
	if slow.WallTime <= fast.WallTime {
		t.Errorf("no-seccomp (%d ns) should be slower than seccomp (%d ns)", slow.WallTime, fast.WallTime)
	}
}

func TestTimeoutClassification(t *testing.T) {
	res := runDT(t, hostA, core.Config{Deadline: 1_000_000}, func(p *guest.Proc) int {
		for {
			p.Compute(1_000_000)
			p.SchedYield()
		}
	})
	if !res.TimedOut() {
		t.Errorf("expected timeout, got %v", res.Err)
	}
}

// runBaseline runs prog on the raw kernel (no tracer) and returns a
// fingerprint of its observable behaviour.
func runBaseline(t *testing.T, h host, prog guest.Program) string {
	t.Helper()
	reg := guest.NewRegistry()
	reg.Register("main", prog)
	img := baseimg.Minimal()
	img.AddFile("/bin/main", 0o755, guest.MakeExe("main", nil))
	k := kernel.New(kernel.Config{
		Profile:  h.profile,
		Seed:     h.seed,
		Epoch:    h.epoch,
		NumCPU:   h.numCPU,
		Image:    img,
		Resolver: reg.Resolver(),
		Deadline: 3_600_000_000_000,
	})
	execImg := &kernel.ExecImage{Path: "/bin/main", Argv: []string{"main"}}
	k.Start(reg.Bind(prog, execImg), execImg.Argv, []string{"PATH=/bin"})
	if err := k.Run(); err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	rep := hashdeep.HashSubtree(k.FS.SnapshotImage(k.FS.Root), "/tmp")
	return k.Console.Stdout() + "|" + rep.Total()
}
