package core_test

import (
	"sync"
	"testing"

	"repro/internal/baseimg"
	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/hashdeep"
	"repro/internal/machine"
)

// templateWorkload touches every virtualization the fork must preserve:
// inode numbers (fresh and recycled), virtual mtimes, getdents order, time,
// pids, container randomness, directory sizes.
func templateWorkload(p *guest.Proc) int {
	p.Printf("pid=%d t=%d\n", p.Getpid(), p.Time())
	for i := 0; i < 20; i++ {
		p.WriteFile("/tmp/f", []byte{byte(i)}, 0o644)
		st, _ := p.Stat("/tmp/f")
		p.Printf("%d:%d ", st.Ino, st.Mtime.Nanos())
	}
	p.Unlink("/tmp/f")
	p.WriteFile("/tmp/g", []byte("recycle-check"), 0o644)
	if st, err := p.Stat("/tmp/g"); err == 0 {
		p.Printf("\ng=%d\n", st.Ino)
	}
	ents, _ := p.ReadDir("/bin")
	for _, e := range ents {
		p.Printf("%s=%d ", e.Name, e.Ino)
	}
	if st, err := p.Stat("/bin"); err == 0 {
		p.Printf("\nbinsize=%d\n", st.Size)
	}
	var rnd [16]byte
	p.GetRandom(rnd[:])
	p.Printf("rnd=%x\n", rnd)
	p.Fork(func(c *guest.Proc) int {
		c.Printf("child pid=%d\n", c.Getpid())
		c.WriteFile("/build/out", []byte("artifact"), 0o644)
		return 0
	})
	p.Wait()
	return 0
}

// fullPrint fingerprints everything reproducibility promises: streams, exit
// status, and the entire final filesystem.
func fullPrint(r *core.Result) string {
	return r.Stdout + "|" + r.Stderr + "|" + hashdeep.HashSubtree(r.FS, "/").Total()
}

func runFromTemplate(t *testing.T, tp *core.Template, h host, prog guest.Program) *core.Result {
	t.Helper()
	reg := guest.NewRegistry()
	reg.Register("main", prog)
	c := tp.NewContainer(core.HostRun{Seed: h.seed, Epoch: h.epoch, NumCPU: h.numCPU})
	return c.Run(reg, "/bin/main", []string{"main"}, []string{"PATH=/bin"})
}

// The Template contract: a forked container's observable behaviour is
// bitwise identical to a cold-built one, on any host, for any seed.
func TestTemplateForkEqualsCold(t *testing.T) {
	img := baseimg.Minimal()
	img.AddFile("/bin/main", 0o755, guest.MakeExe("main", nil))
	base := core.Config{Image: img, Deadline: 3_600_000_000_000, PRNGSeed: 7}

	for _, h := range []host{hostA, hostB} {
		cfg := base
		cfg.Profile = h.profile
		tp := core.NewTemplate(cfg)
		warm := runFromTemplate(t, tp, h, templateWorkload)
		if !warm.Forked {
			t.Fatalf("template container did not take the fork path")
		}
		cold := runDT(t, h, core.Config{Deadline: base.Deadline, PRNGSeed: base.PRNGSeed}, templateWorkload)
		if warm.Err != nil || cold.Err != nil {
			t.Fatalf("runs failed: %v / %v", warm.Err, cold.Err)
		}
		if fullPrint(warm) != fullPrint(cold) {
			t.Errorf("%s: forked container diverged from cold-built\nwarm stdout:\n%s\ncold stdout:\n%s",
				h.profile.Name, warm.Stdout, cold.Stdout)
		}
		if warm.WallTime != cold.WallTime || warm.Stats.Syscalls != cold.Stats.Syscalls {
			t.Errorf("%s: virtual cost diverged: wall %d vs %d, syscalls %d vs %d",
				h.profile.Name, warm.WallTime, cold.WallTime, warm.Stats.Syscalls, cold.Stats.Syscalls)
		}
	}
}

// The DisableTemplateReuse ablation keeps the cold path alive: same
// template, same host, identical output, but no fork.
func TestTemplateDisableReuseAblation(t *testing.T) {
	img := baseimg.Minimal()
	img.AddFile("/bin/main", 0o755, guest.MakeExe("main", nil))
	cfg := core.Config{Image: img, Deadline: 3_600_000_000_000, Profile: hostA.profile}

	warmTp := core.NewTemplate(cfg)
	warm := runFromTemplate(t, warmTp, hostA, templateWorkload)

	cold := cfg
	cold.DisableTemplateReuse = true
	coldTp := core.NewTemplate(cold)
	ablated := runFromTemplate(t, coldTp, hostA, templateWorkload)

	if !warm.Forked || ablated.Forked {
		t.Fatalf("fork flags wrong: warm=%v ablated=%v", warm.Forked, ablated.Forked)
	}
	if fullPrint(warm) != fullPrint(ablated) {
		t.Errorf("DisableTemplateReuse changed results — it may only change setup cost")
	}
}

// One template, many sequential and concurrent runs: no state may leak
// between them, and every identical (seed, epoch) run must be identical.
func TestTemplateStateLeakFreedom(t *testing.T) {
	img := baseimg.Minimal()
	img.AddFile("/bin/main", 0o755, guest.MakeExe("main", nil))
	tp := core.NewTemplate(core.Config{Image: img, Deadline: 3_600_000_000_000, Profile: hostA.profile})

	first := runFromTemplate(t, tp, hostA, templateWorkload)
	second := runFromTemplate(t, tp, hostA, templateWorkload)
	if fullPrint(first) != fullPrint(second) {
		t.Fatalf("back-to-back runs from one template diverged")
	}
	coldRef := runDT(t, hostA, core.Config{Deadline: 3_600_000_000_000}, templateWorkload)
	if fullPrint(second) != fullPrint(coldRef) {
		t.Fatalf("a reused template drifted from cold-built behaviour")
	}

	const workers = 8
	outs := make([]string, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reg := guest.NewRegistry()
			reg.Register("main", templateWorkload)
			c := tp.NewContainer(core.HostRun{Seed: hostA.seed, Epoch: hostA.epoch})
			outs[i] = fullPrint(c.Run(reg, "/bin/main", []string{"main"}, []string{"PATH=/bin"}))
		}(i)
	}
	wg.Wait()
	for i := range outs {
		if outs[i] != outs[0] {
			t.Fatalf("concurrent template run %d diverged", i)
		}
	}
}

// ConfigHash must split every behaviour-relevant knob and ignore the [host]
// fields, so a template can never be reused across incompatible configs.
func TestConfigHashGuard(t *testing.T) {
	img := baseimg.Minimal()
	base := core.Config{Image: img, PRNGSeed: 1}
	h0 := core.ConfigHash(base)

	hostVariants := []core.Config{
		{Image: img, PRNGSeed: 1, HostSeed: 999},
		{Image: img, PRNGSeed: 1, Epoch: 123456},
		{Image: img, PRNGSeed: 1, NumCPU: 64},
	}
	for i, v := range hostVariants {
		if core.ConfigHash(v) != h0 {
			t.Errorf("host variant %d changed the config hash — templates would thrash", i)
		}
	}

	behaviourVariants := []core.Config{
		{Image: img, PRNGSeed: 2},
		{Image: img, PRNGSeed: 1, DisableSeccomp: true},
		{Image: img, PRNGSeed: 1, DisableSyscallBuf: true},
		{Image: img, PRNGSeed: 1, DisableVdso: true},
		{Image: img, PRNGSeed: 1, DisableDirSizes: true},
		{Image: img, PRNGSeed: 1, DisableCpuidTrap: true},
		{Image: img, PRNGSeed: 1, DisableInodeVirt: true},
		{Image: img, PRNGSeed: 1, DisableGetdentsSort: true},
		{Image: img, PRNGSeed: 1, WorkingDir: "/elsewhere"},
		{Image: img, PRNGSeed: 1, SpinLimit: 99},
		{Image: img, PRNGSeed: 1, UpdateVirtualMtimes: true},
		{Image: img, PRNGSeed: 1, FastVdso: true},
		{Image: img, PRNGSeed: 1, ExperimentalSockets: true},
		{Image: img, PRNGSeed: 1, ExperimentalSignals: true},
		{Image: img, PRNGSeed: 1, LogRealRandom: true},
		{Image: img, PRNGSeed: 1, RandomReplay: []byte{1, 2, 3}},
		{Image: img, PRNGSeed: 1, LogicalEpoch: 1},
		{Image: img, PRNGSeed: 1, Deadline: 5},
		{Image: img, PRNGSeed: 1, Profile: machine.PortabilityBroadwell()},
		{Image: img, PRNGSeed: 1, Downloads: map[string]core.Download{"u": {Data: []byte("x"), SHA256: "aa"}}},
	}
	seen := map[uint64]int{h0: -1}
	for i, v := range behaviourVariants {
		h := core.ConfigHash(v)
		if prev, dup := seen[h]; dup {
			t.Errorf("behaviour variant %d collides with variant %d", i, prev)
		}
		seen[h] = i
	}

	tp := core.NewTemplate(base)
	if !tp.CompatibleWith(base) {
		t.Errorf("template rejects its own config")
	}
	if tp.CompatibleWith(behaviourVariants[1]) {
		t.Errorf("template accepts an incompatible ablation config")
	}
	changed := baseimg.Minimal()
	changed.AddFile("/etc/extra", 0o644, []byte("new"))
	if tp.CompatibleWith(core.Config{Image: changed, PRNGSeed: 1}) {
		t.Errorf("template accepts a different image")
	}
}
