package core

import (
	"testing"

	"repro/internal/abi"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/seccomp"
)

// handlerThread builds a parked kernel thread the handler functions can be
// driven against directly, without running a program.
func handlerThread(t *testing.T) (*Container, *kernel.Thread) {
	t.Helper()
	c := New(Config{})
	k := kernel.New(kernel.Config{Profile: machine.CloudLabC220G5(), Policy: c})
	c.k = k
	proc := k.Start(func(th *kernel.Thread) int { return 0 }, nil, nil)
	return c, proc.Threads[0]
}

// Syscalls the plain DetTrace filter Allow-lists never reach the enter/exit
// handlers in any configuration — DetTraceBuffered only ever promotes Allow
// verdicts to Buffer, which bypasses the handlers too. So any handler case
// for such a syscall would be silently dead code. This pins the invariant by
// driving every Allow-listed number through both handler functions and
// requiring a complete no-op.
//
// The converse does not hold for the Buffer set: the time and pid families
// are Trace-listed under plain DetTrace, so their handler cases stay live for
// the DisableSyscallBuf ablation (exercised by the equivalence tests).
func TestAllowListedSyscallsHaveNoHandlerLogic(t *testing.T) {
	c, th := handlerThread(t)
	plain := seccomp.DetTrace()
	for nr := abi.Sysno(0); int(nr) < abi.SysnoSlots; nr++ {
		if plain.Decide(nr) != seccomp.Allow {
			continue
		}
		sc := &abi.Syscall{Num: nr, Ret: 42}
		var er kernel.EnterResult
		if handled := c.enterHandlers(th, sc, &er); handled {
			t.Errorf("%v: Allow-listed but the enter handler claimed it", nr)
		}
		if er != (kernel.EnterResult{}) {
			t.Errorf("%v: Allow-listed but the enter handler charged cost: %+v", nr, er)
		}
		if sc.Ret != 42 || sc.Arg != ([6]int64{}) {
			t.Errorf("%v: Allow-listed but the enter handler rewrote the call", nr)
		}
		var xr kernel.ExitResult
		c.exitHandlers(th, sc, &xr)
		if xr != (kernel.ExitResult{}) || sc.Ret != 42 {
			t.Errorf("%v: Allow-listed but the exit handler acted (xr=%+v ret=%d)", nr, xr, sc.Ret)
		}
	}
}

// Buffer-listed syscalls that plain DetTrace Trace-lists must keep a live
// handler path: the DisableSyscallBuf ablation routes them back through the
// handlers, and a dead case there would silently diverge from the buffered
// service. Liveness is observable as either a claimed enter or a rewritten
// return value on exit.
func TestBufferListedTracedSyscallsKeepLiveHandlers(t *testing.T) {
	c, th := handlerThread(t)
	c.vpid[42] = 7 // let the pid-rewrite handlers fire on Ret=42
	plain, buf := seccomp.DetTrace(), seccomp.DetTraceBuffered()
	for nr := abi.Sysno(0); int(nr) < abi.SysnoSlots; nr++ {
		if buf.Decide(nr) != seccomp.Buffer || plain.Decide(nr) != seccomp.Trace {
			continue
		}
		st := abi.Stat{Blksize: 7} // fstat liveness shows as the canonical rewrite
		sc := &abi.Syscall{Num: nr, Ret: 42, Obj: &st}
		var er kernel.EnterResult
		handled := c.enterHandlers(th, sc, &er)
		var xr kernel.ExitResult
		c.exitHandlers(th, sc, &xr)
		if !handled && sc.Ret == 42 && st.Blksize == 7 {
			t.Errorf("%v: buffered syscall has no live ablation handler", nr)
		}
	}
}
