package core

import (
	"crypto/sha256"
	"encoding/hex"
	"strings"

	"repro/internal/abi"
	"repro/internal/kernel"
)

// This file holds DetTrace's per-syscall determinization handlers — the
// concrete realization of the §5 taxonomy. enterHandlers runs at the
// pre-syscall stop (emulate or rewrite arguments), exitHandlers at the
// post-syscall stop (rewrite results, inject retries).

// enterHandlers may fully emulate the call (DispEmulate) or rewrite its
// arguments before the kernel sees it. Returns true when the EnterResult is
// final.
func (c *Container) enterHandlers(t *kernel.Thread, sc *abi.Syscall, er *kernel.EnterResult) bool {
	p := t.Proc
	w := p.Weight
	switch sc.Num {
	case abi.SysTime:
		// Logical time (§5.3): a count of time queries, monotone and
		// reproducible.
		er.Disposition = kernel.DispEmulate
		sc.Ret = c.logicalSeconds(p)
		return true

	case abi.SysGettimeofday, abi.SysClockGettime:
		er.Disposition = kernel.DispEmulate
		secs := c.logicalSeconds(p)
		if out, ok := sc.Obj.(*abi.Timespec); ok && out != nil {
			*out = abi.Timespec{Sec: secs}
			er.PostCost += c.sess.WriteMem(w, 1)
		}
		sc.Ret = 0
		return true

	case abi.SysNanosleep:
		// Sleeps become NOPs: the call is rewritten to the harmless `time`
		// syscall before the kernel examines it (§5.10).
		er.Disposition = kernel.DispEmulate
		sc.Ret = 0
		return true

	case abi.SysAlarm:
		// Timers expire "instantaneously" (§5.4): DetTrace itself sends the
		// signal and the kernel never sees a timer.
		er.Disposition = kernel.DispEmulate
		if sc.Arg[0] > 0 {
			c.k.PostSignal(p, abi.SIGALRM)
		}
		sc.Ret = 0
		return true

	case abi.SysSetitimer:
		er.Disposition = kernel.DispEmulate
		if it, ok := sc.Obj.(*abi.Itimerval); ok && it != nil && it.Value > 0 {
			c.k.PostSignal(p, abi.SIGVTALRM)
		}
		sc.Ret = 0
		return true

	case abi.SysGetrandom:
		// OS randomness comes from the container's seeded LFSR — or, with
		// the escape hatch enabled, logged/replayed true entropy (§5.2).
		er.Disposition = kernel.DispEmulate
		c.fillRandom(sc.Buf)
		er.PostCost += c.sess.WriteMem(w, 1)
		sc.Ret = int64(len(sc.Buf))
		return true

	case abi.SysUname:
		// The container always reports the same simple machine (§3): a
		// pinned kernel version and hostname, hiding the host's.
		er.Disposition = kernel.DispEmulate
		if out, ok := sc.Obj.(*abi.Utsname); ok && out != nil {
			*out = abi.Utsname{
				Sysname:  "Linux",
				Nodename: "dettrace",
				Release:  "4.0.0-dettrace",
				Version:  "#1 SMP",
				Machine:  "x86_64",
			}
			er.PostCost += c.sess.WriteMem(w, 1)
		}
		sc.Ret = 0
		return true

	case abi.SysSysinfo:
		// A canonical uniprocessor with fixed memory (§5.8).
		er.Disposition = kernel.DispEmulate
		if out, ok := sc.Obj.(*abi.Sysinfo); ok && out != nil {
			*out = abi.Sysinfo{
				Uptime:   p.TimeCallCount,
				TotalRAM: 4 << 30,
				FreeRAM:  2 << 30,
				Procs:    uint16(c.nextVPID - 1),
				NumCPU:   1,
			}
			er.PostCost += c.sess.WriteMem(w, 1)
		}
		sc.Ret = 0
		return true

	case abi.SysUtimes, abi.SysUtimensat:
		// A null times pointer would make the kernel stamp host wall-clock
		// time; DetTrace allocates a reproducible struct in the tracee's
		// scratch page instead (§5.10).
		if sc.Obj == nil {
			times := [2]abi.Timespec{{}, {Sec: c.nextMtime}}
			sc.Obj = &times
			er.PostCost += c.sess.WriteMem(w, 1)
		}
		return false

	case abi.SysOpen, abi.SysOpenat, abi.SysCreat:
		// Pre-open existence check so the post stop can tell creations from
		// re-opens (§5.5).
		_, rerr := c.k.ResolveInode(p, sc.Path, true)
		c.pendingOpen[t] = rerr == abi.OK
		er.PreCost += c.sess.ReadProc(w)
		return false

	case abi.SysWait4:
		// Translate a virtual pid argument back to the host pid.
		if sc.Arg[0] > 0 {
			if raw, ok := c.rawPid[int(sc.Arg[0])]; ok {
				sc.Arg[0] = int64(raw)
			}
		}
		return false
	}
	return false
}

// enterKill vets kill: self-signals are permitted (precise-exception style),
// cross-process signals are unsupported (§5.4) — unless the experimental
// reproducible-delivery mode is on, in which case the deterministic
// scheduler makes the delivery point a pure function of logical history.
func (c *Container) enterKill(t *kernel.Thread, sc *abi.Syscall) (kernel.EnterResult, bool) {
	target := int(sc.Arg[0])
	if raw, ok := c.rawPid[target]; ok {
		sc.Arg[0] = int64(raw)
		target = raw
	}
	if target != t.Proc.PID && !c.cfg.ExperimentalSignals {
		return abort(&UnsupportedError{Op: "cross-process signal"}), true
	}
	return kernel.EnterResult{}, false
}

// enterFetch services the checksummed-download pseudo-syscall (§3): only
// declared URLs whose content matches the pinned SHA-256 are visible.
func (c *Container) enterFetch(t *kernel.Thread, sc *abi.Syscall) kernel.EnterResult {
	url := sc.Path
	dl, ok := c.cfg.Downloads[url]
	if !ok {
		return abort(&UnsupportedError{Op: "undeclared download: " + url})
	}
	sum := sha256.Sum256(dl.Data)
	if hex.EncodeToString(sum[:]) != strings.ToLower(dl.SHA256) {
		return abort(&UnsupportedError{Op: "checksum mismatch: " + url})
	}
	if out, k := sc.Obj.(*[]byte); k && out != nil {
		*out = append([]byte(nil), dl.Data...)
	}
	sc.Ret = int64(len(dl.Data))
	w := t.Proc.Weight
	return kernel.EnterResult{
		Disposition: kernel.DispEmulate,
		Serialize:   true,
		LocalCost:   c.sess.InterceptCost(w),
		PostCost:    c.sess.HandlerCost(abi.SysFetch, w) + c.sess.WriteMem(w, 1+int64(len(dl.Data))/4096),
	}
}

// exitHandlers rewrites results at the post-syscall stop.
func (c *Container) exitHandlers(t *kernel.Thread, sc *abi.Syscall, xr *kernel.ExitResult) {
	p := t.Proc
	w := p.Weight
	switch sc.Num {
	case abi.SysOpen, abi.SysOpenat, abi.SysCreat:
		existed := c.pendingOpen[t]
		delete(c.pendingOpen, t)
		if sc.Err() != abi.OK {
			return
		}
		// Identify the real inode through /proc/<pid>/fd (§5.5).
		ino, ferr := c.k.FDInode(p, int(sc.Ret))
		xr.PostCost += c.sess.ReadProc(w)
		if ferr != abi.OK {
			return
		}
		if !existed {
			c.newFileInode(ino.Ino)
		}

	case abi.SysStat, abi.SysLstat, abi.SysFstat:
		if sc.Err() != abi.OK {
			return
		}
		st, ok := sc.Obj.(*abi.Stat)
		if !ok || st == nil {
			return
		}
		c.rewriteStat(t, sc, st)
		xr.PostCost += c.sess.WriteMem(w, 1)

	case abi.SysGetdents:
		if sc.Err() != abi.OK {
			return
		}
		out, ok := sc.Obj.(*[]abi.Dirent)
		if !ok || out == nil {
			return
		}
		if !c.cfg.DisableGetdentsSort {
			sortDirents(*out)
		}
		if !c.cfg.DisableInodeVirt {
			for i := range *out {
				(*out)[i].Ino = c.virtIno((*out)[i].Ino)
			}
		}
		xr.PostCost += c.sess.WriteMem(w, int64(1+len(*out)/16))

	case abi.SysRead:
		c.retryRead(t, sc, xr)

	case abi.SysWrite:
		c.retryWrite(t, sc, xr)
		if c.cfg.UpdateVirtualMtimes && sc.Err() == abi.OK && !xr.Retry {
			// Extension (§5.5): writes advance the file's virtual mtime.
			if ino, ferr := c.k.FDInode(p, int(sc.Arg[0])); ferr == abi.OK && ino.IsRegular() {
				c.nextMtime++
				c.mtimeMap[ino.Ino] = c.nextMtime
				xr.PostCost += c.sess.ReadProc(w)
			}
		}

	case abi.SysFork, abi.SysClone:
		if sc.Err() != abi.OK {
			return
		}
		if sc.Num == abi.SysClone && sc.Arg[0]&abi.CloneThread != 0 {
			// Thread ids are scheduler-virtual.
			sc.Ret = int64(1000 + c.sched.VTID(lastThread(p)))
			return
		}
		if v, ok := c.vpid[int(sc.Ret)]; ok {
			sc.Ret = int64(v)
		}

	case abi.SysGetpid:
		if v, ok := c.vpid[int(sc.Ret)]; ok {
			sc.Ret = int64(v)
		}

	case abi.SysGetppid:
		if v, ok := c.vpid[int(sc.Ret)]; ok {
			sc.Ret = int64(v)
		} else {
			sc.Ret = 0 // parent is outside the namespace
		}

	case abi.SysGetTid:
		sc.Ret = int64(1000 + c.sched.VTID(t))

	case abi.SysWait4:
		if sc.Err() != abi.OK || sc.Ret <= 0 {
			return
		}
		if v, ok := c.vpid[int(sc.Ret)]; ok {
			sc.Ret = int64(v)
		}
		if wr, ok := sc.Obj.(*kernel.WaitResult); ok && wr != nil {
			if v, ok := c.vpid[wr.PID]; ok {
				wr.PID = v
			}
			// rusage carries host timing; zero it reproducibly.
			wr.Usage = abi.Rusage{}
			xr.PostCost += c.sess.WriteMem(w, 1)
		}
	}
}

// rewriteStat applies the §5.5 metadata virtualization: virtual inodes,
// zeroed atime/ctime, creation-ordered mtimes, canonical device numbers and
// machine-independent directory sizes (§7.3).
func (c *Container) rewriteStat(t *kernel.Thread, sc *abi.Syscall, st *abi.Stat) {
	p := t.Proc
	realIno := st.Ino
	if !c.cfg.DisableInodeVirt {
		st.Ino = c.virtIno(realIno)
		st.Dev = 1
	}
	st.Atime = abi.Timespec{}
	st.Ctime = abi.Timespec{}
	st.Mtime = abi.Timespec{Sec: c.virtMtime(realIno)}
	st.Blksize = 512
	if st.IsDir() && !c.cfg.DisableDirSizes {
		// The host's directory size formula varies across machines; report
		// a pure function of the entry count instead.
		var entries int
		switch sc.Num {
		case abi.SysFstat:
			if n, err := c.k.FDInode(p, int(sc.Arg[0])); err == abi.OK {
				entries = n.NumEntries()
			}
		default:
			if n, err := c.k.ResolveInode(p, sc.Path, sc.Num == abi.SysStat); err == abi.OK {
				entries = n.NumEntries()
			}
		}
		c.sess.ReadProc(p.Weight)
		st.Size = virtDirSize(entries)
	}
	st.Blocks = (st.Size + 511) / 512
}

// retryRead implements Fig. 4: a read that returned fewer bytes than
// requested is replayed (PC reset, arguments advanced) until the buffer is
// full or EOF.
func (c *Container) retryRead(t *kernel.Thread, sc *abi.Syscall, xr *kernel.ExitResult) {
	st := c.rw[t]
	if sc.Err() != abi.OK {
		if st != nil {
			c.finishRetry(t, sc, st)
		}
		return
	}
	n := sc.Ret
	if st == nil {
		if n == 0 || n == int64(len(sc.Buf)) {
			return // complete on the first try
		}
		st = &rwRetry{orig: sc.Buf, total: n}
		c.rw[t] = st
		sc.Buf = sc.Buf[n:]
		c.k.Stats.ReadRetries += t.Proc.Weight
		xr.Retry = true
		xr.PostCost += c.sess.Costs.Stop * t.Proc.Weight
		return
	}
	st.total += n
	if n == 0 || st.total == int64(len(st.orig)) {
		c.finishRetry(t, sc, st)
		return
	}
	sc.Buf = sc.Buf[n:]
	c.k.Stats.ReadRetries += t.Proc.Weight
	xr.Retry = true
	xr.PostCost += c.sess.Costs.Stop * t.Proc.Weight
}

// retryWrite is the symmetric treatment for partial writes.
func (c *Container) retryWrite(t *kernel.Thread, sc *abi.Syscall, xr *kernel.ExitResult) {
	st := c.rw[t]
	if sc.Err() != abi.OK {
		if st != nil {
			c.finishRetry(t, sc, st)
		}
		return
	}
	n := sc.Ret
	if st == nil {
		if n == int64(len(sc.Buf)) {
			return
		}
		st = &rwRetry{orig: sc.Buf, total: n}
		c.rw[t] = st
		sc.Buf = sc.Buf[n:]
		c.k.Stats.WriteRetries += t.Proc.Weight
		xr.Retry = true
		xr.PostCost += c.sess.Costs.Stop * t.Proc.Weight
		return
	}
	st.total += n
	if st.total == int64(len(st.orig)) {
		c.finishRetry(t, sc, st)
		return
	}
	sc.Buf = sc.Buf[n:]
	c.k.Stats.WriteRetries += t.Proc.Weight
	xr.Retry = true
	xr.PostCost += c.sess.Costs.Stop * t.Proc.Weight
}

// finishRetry restores the original buffer and reports the accumulated
// count, so the tracee perceives one complete call.
func (c *Container) finishRetry(t *kernel.Thread, sc *abi.Syscall, st *rwRetry) {
	sc.Buf = st.orig
	if sc.Err() == abi.OK {
		sc.Ret = st.total
	} else if st.total > 0 {
		// Data already transferred wins over a late error.
		sc.Ret = st.total
	}
	delete(c.rw, t)
}

// logicalSeconds advances and returns the process's logical clock (§5.3).
func (c *Container) logicalSeconds(p *kernel.Proc) int64 {
	s := c.cfg.LogicalEpoch + p.TimeCallCount
	p.TimeCallCount++
	return s
}

// lastThread returns the most recently created thread of p.
func lastThread(p *kernel.Proc) *kernel.Thread { return p.Threads[len(p.Threads)-1] }
