package core_test

import (
	"bytes"
	"testing"

	"repro/internal/baseimg"
	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/machine"
	"repro/internal/obs"
)

// The deterministic-observation contract (DESIGN.md §4c): recording is
// behaviour-free, and the recording itself is a pure function of container
// inputs.

// obsProgram exercises every recorded event class: traced syscalls, buffered
// calls, entropy draws, rdtsc traps, threads for scheduler decisions.
func obsProgram(p *guest.Proc) int {
	var buf [16]byte
	for i := 0; i < 20; i++ {
		p.WriteFile("/tmp/f", []byte{byte(i)}, 0o644)
		p.Stat("/tmp/f")
		p.Printf("%d:%d ", p.Time(), p.Rdtsc())
		if i%5 == 0 {
			p.GetRandom(buf[:])
			p.Printf("%x ", buf[:4])
		}
		if i%9 == 0 {
			p.Fork(func(c *guest.Proc) int { c.Compute(500); return 0 })
			p.Wait()
		}
	}
	return 0
}

// Recorder on vs off: guest-visible state must be bit-identical, and so must
// the modeled times — the recorder charges no virtual cost at all.
func TestObservabilityOnOffEquivalence(t *testing.T) {
	on := runDT(t, hostA, core.Config{}, obsProgram)
	off := runDT(t, hostA, core.Config{DisableObservability: true}, obsProgram)
	if on.Err != nil || off.Err != nil {
		t.Fatalf("runs failed: %v / %v", on.Err, off.Err)
	}
	if fingerprint(on) != fingerprint(off) {
		t.Errorf("the flight recorder changed results — observation must be behaviour-free")
	}
	if on.WallTime != off.WallTime {
		t.Errorf("the flight recorder changed modeled time: %d vs %d", on.WallTime, off.WallTime)
	}
	if len(on.Events) == 0 || on.Trace.Total() == 0 {
		t.Errorf("recorder on produced no events")
	}
	if len(off.Events) != 0 || off.Trace.Total() != 0 {
		t.Errorf("DisableObservability still recorded %d events", off.Trace.Total())
	}
}

// The ring itself is deterministic: same (image, config, machine profile)
// across different host accidents ⇒ byte-identical MarshalBinary output.
func TestRecorderRingByteIdentical(t *testing.T) {
	h1 := host{machine.CloudLabC220G5(), 0xAAAA, 1_520_000_000, 0}
	h2 := host{machine.CloudLabC220G5(), 0x1234, 1_599_999_999, 0}
	a := runDT(t, h1, core.Config{}, obsProgram)
	b := runDT(t, h2, core.Config{}, obsProgram)
	if a.Err != nil || b.Err != nil {
		t.Fatalf("runs failed: %v / %v", a.Err, b.Err)
	}
	if !bytes.Equal(a.Trace.MarshalBinary(), b.Trace.MarshalBinary()) {
		if d := obs.FirstDivergence(a.Events, b.Events); d != nil {
			t.Fatalf("rings differ across host accidents:\n%s", d)
		}
		t.Fatalf("rings differ across host accidents (lengths %d vs %d)",
			len(a.Events), len(b.Events))
	}
}

// A seeded entropy perturbation is localized by the diagnoser to the exact
// first divergent event: the perturbed draw itself.
func TestFaultInjectEntropyDiagnosed(t *testing.T) {
	const inject = 2
	clean := runDT(t, hostA, core.Config{}, obsProgram)
	faulty := runDT(t, hostA, core.Config{FaultInjectEntropy: inject}, obsProgram)
	if clean.Err != nil || faulty.Err != nil {
		t.Fatalf("runs failed: %v / %v", clean.Err, faulty.Err)
	}
	// The program prints drawn bytes, so the fault is guest-visible...
	if clean.Stdout == faulty.Stdout {
		t.Errorf("entropy perturbation did not reach guest output")
	}
	// ...and the diagnoser pins it to the perturbed draw.
	d := obs.FirstDivergence(clean.Events, faulty.Events)
	if d == nil {
		t.Fatal("no divergence found between clean and fault-injected rings")
	}
	if d.A == nil || d.A.Kind != obs.KindEntropy {
		t.Fatalf("first divergence is %v, want the entropy draw", d.A)
	}
	if draw := d.A.Arg >> 32; draw != inject {
		t.Errorf("diagnoser localized draw %d, want draw %d", draw, inject)
	}
	// Everything before the perturbed draw matched: the fault is localized,
	// not smeared.
	if d.B == nil || d.B.Kind != obs.KindEntropy || d.A.LTime != d.B.LTime {
		t.Errorf("divergent events misaligned: A=%v B=%v", d.A, d.B)
	}
}

// Result.Spans names the lifecycle phases: cold boots report boot/run/flush,
// template forks report prepare/fork/run/flush.
func TestSpansCoverLifecycle(t *testing.T) {
	names := func(spans []obs.Span) map[string]bool {
		m := make(map[string]bool, len(spans))
		for _, s := range spans {
			m[s.Name] = true
		}
		return m
	}
	cold := runDT(t, hostA, core.Config{}, obsProgram)
	cn := names(cold.Spans)
	for _, want := range []string{"boot", "run", "flush"} {
		if !cn[want] {
			t.Errorf("cold run missing span %q (got %v)", want, cold.Spans)
		}
	}

	reg := guest.NewRegistry()
	reg.Register("main", obsProgram)
	img := baseimg.Minimal()
	img.AddFile("/bin/main", 0o755, guest.MakeExe("main", nil))
	tp := core.NewTemplate(core.Config{Image: img, Profile: machine.CloudLabC220G5(),
		Deadline: 3_600_000_000_000})
	res := tp.NewContainer(core.HostRun{Seed: 0xAAAA, Epoch: 1_520_000_000}).
		Run(reg, "/bin/main", []string{"main"}, []string{"PATH=/bin"})
	if res.Err != nil {
		t.Fatalf("forked run failed: %v", res.Err)
	}
	fn := names(res.Spans)
	for _, want := range []string{"prepare", "fork", "run", "flush"} {
		if !fn[want] {
			t.Errorf("forked run missing span %q (got %v)", want, res.Spans)
		}
	}
}
