package core

import (
	"sort"

	"repro/internal/abi"
	"repro/internal/cpu"
	"repro/internal/fs"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/seccomp"
)

// Container implements kernel.Policy: this file is the tracer's event loop
// half — scheduling, the pre/post syscall stops, instruction traps and
// lifecycle hooks. The per-syscall determinization logic lives in
// handlers.go.

var (
	_ kernel.Policy             = (*Container)(nil)
	_ kernel.WorkspaceScheduler = (*Container)(nil)
)

// Name implements kernel.Policy.
func (c *Container) Name() string { return "dettrace" }

// ThreadsSerialized tells the kernel's time model that threads within a
// process share one execution token (§5.7).
func (c *Container) ThreadsSerialized() bool { return true }

// ComputeConcurrent implements kernel.WorkspaceScheduler (ISSUE 7): a
// syscall-free compute burst of a thread with live siblings may overlap on
// the physical clock, running inside a private COW workspace forked lazily
// at the phase's first burst. The logical clock is untouched — ordering,
// entropy and every guest-visible byte stay identical to serialized mode —
// so the fork must draw no entropy and the fork cost lands on the physical
// clock only.
// WorkspacesEnabled implements the boot-constant half of the interface: it
// additionally gates the kernel's gap-aware tracer timeline.
func (c *Container) WorkspacesEnabled() bool {
	return !c.cfg.DisableWorkspaces
}

func (c *Container) ComputeConcurrent(t *kernel.Thread) bool {
	if c.cfg.DisableWorkspaces {
		return false
	}
	live := 0
	for _, sib := range t.Proc.Threads {
		if !sib.Dead() {
			live++
		}
	}
	if live <= 1 {
		return false
	}
	if c.ws[t] == nil {
		v := c.sched.VTID(t)
		c.ws[t] = c.k.FS.ForkWorkspace(v)
		t.Clock += c.k.Cost.WsForkCost
		c.wsForks.Inc(t.Proc.Weight)
		c.rec.Record(t.LClock, obs.KindWsFork, 0, int32(v), 0, 0)
	}
	return true
}

// wsSync ends the current workspace phase of t's process: every outstanding
// sibling workspace merges back onto the shared filesystem in vTID order.
// Called at the deterministic sync points — any kernel-loop syscall stop
// (cross-thread effects become possible there) and thread exit (join). The
// buffered fast path is NOT a sync point: no buffered call mutates the
// filesystem. A merge conflict is a deterministic container abort — it is a
// pure function of the journals, never of host completion order.
func (c *Container) wsSync(t *kernel.Thread) {
	if len(c.ws) == 0 {
		return
	}
	var wss []*fs.Workspace
	for _, sib := range t.Proc.Threads {
		if w := c.ws[sib]; w != nil {
			wss = append(wss, w)
			delete(c.ws, sib)
		}
	}
	if len(wss) == 0 {
		return
	}
	stats, err := fs.MergeWorkspaces(wss)
	t.Clock += c.k.Cost.WsMergeCost * int64(len(wss))
	c.wsMerges.Inc(int64(len(wss)) * t.Proc.Weight)
	v := int32(c.sched.VTID(t))
	c.rec.Record(t.LClock, obs.KindWsMerge, 0, v, stats.Digest, int64(len(wss)))
	if err != nil {
		for _, w := range wss {
			w.Discard()
		}
		c.wsConflicts.Inc(int64(stats.Conflicts))
		c.rec.Record(t.LClock, obs.KindWsConflict, 0, v, stats.Digest, int64(stats.Conflicts))
		c.k.Abort(err)
	}
}

// PickNext delegates to the reproducible scheduler and converts its
// busy-wait detection into a container abort.
func (c *Container) PickNext(k *kernel.Kernel, pending []*kernel.Thread) *kernel.Thread {
	t := c.sched.Pick(k, pending)
	if c.sched.Err != nil {
		k.Abort(&UnsupportedError{Op: "busy-wait"})
		c.sched.Err = nil
		return nil
	}
	return t
}

// syscallKnown lists every call DetTrace has a determinization story for.
// Anything else raises a reproducible container error (§5.9) — the "long
// tail of miscellaneous system calls" from §7.1.1.
func (c *Container) syscallKnown(nr abi.Sysno) bool {
	switch nr {
	case abi.SysMount, abi.SysSchedAffinity, abi.SysPersonality:
		return false
	}
	return true
}

// argsDigest folds a call's pre-rewrite arguments into one word for the
// flight recorder. It must run before any handler rewrites arguments
// (enterKill and wait4 substitute raw host pids in place), because the
// pre-rewrite view is the guest's — virtual pids, ASLR-free addresses — and
// therefore deterministic.
func argsDigest(sc *abi.Syscall) uint64 {
	h := obs.DigestU64(0, uint64(sc.Num),
		uint64(sc.Arg[0]), uint64(sc.Arg[1]), uint64(sc.Arg[2]),
		uint64(sc.Arg[3]), uint64(sc.Arg[4]), uint64(sc.Arg[5]))
	if sc.Path != "" {
		h = obs.DigestU64(h, obs.DigestBytes([]byte(sc.Path)))
	}
	if sc.Path2 != "" {
		h = obs.DigestU64(h, obs.DigestBytes([]byte(sc.Path2)))
	}
	return h
}

// SyscallEnter is the pre-syscall stop.
func (c *Container) SyscallEnter(t *kernel.Thread, sc *abi.Syscall) kernel.EnterResult {
	w := t.Proc.Weight
	nr := sc.Num
	// Any syscall reaching the kernel loop is a workspace sync point: from
	// here the call can observe or mutate state shared across threads, so
	// the phase's private workspaces must merge first.
	if sc.Attempts == 0 {
		c.wsSync(t)
	}
	if c.rec != nil && sc.Attempts == 0 && !sc.Injected {
		// Record before the class switch below: enter handlers rewrite
		// arguments in place, and the event must capture the guest's view.
		if v := c.verdictOf(sc); v != seccomp.Allow && v != seccomp.Buffer {
			c.rec.Record(t.LClock, obs.KindSyscallEnter, int32(nr),
				int32(c.vpid[t.Proc.PID]), argsDigest(sc), 0)
		}
	}

	// Unsupported operation classes abort the container reproducibly.
	switch {
	case isSocketCall(nr) && !c.cfg.ExperimentalSockets:
		return abort(&UnsupportedError{Op: "socket"})
	case nr == abi.SysFetch:
		return c.enterFetch(t, sc)
	case !c.syscallKnown(nr):
		return abort(&UnsupportedError{Op: "syscall:" + nr.String()})
	case nr == abi.SysKill:
		if res, ok := c.enterKill(t, sc); ok {
			return res
		}
	}

	// seccomp-bpf verdict: allowed calls run natively with no stops (§5.11).
	// The verdict is cached on the record so the exit stop reuses it.
	switch c.verdictOf(sc) {
	case seccomp.Allow:
		return kernel.EnterResult{Disposition: kernel.DispExecute}
	case seccomp.Buffer:
		// A bufferable call on the slow path: the fast path declined it
		// (buffer full, pending signal, or thread startup). Flush a full
		// buffer with a dedicated combined stop, then service the call the
		// same way the wrapper would have — costs stay a pure function of
		// the thread's logical history either way.
		er := kernel.EnterResult{Disposition: kernel.DispEmulate}
		if t.BufCount >= syscallBufCap {
			er.LocalCost += c.sess.FlushCost(takeBuffered(t), w)
		}
		er.LocalCost += c.serviceBuffered(t, sc)
		return er
	}

	er := kernel.EnterResult{
		Disposition: kernel.DispExecute,
		Serialize:   true,
	}
	// Any traced call is a flush point: its own stop doubles as the buffer
	// drain, so only the per-entry tracer work is added.
	if n := takeBuffered(t); n > 0 {
		er.PreCost += c.sess.DrainCost(n, w)
	}
	if sc.Attempts == 0 {
		er.LocalCost = c.sess.InterceptCost(w) // tracee-side stop stall
		er.PostCost = c.sess.HandlerCost(nr, w)
	} else {
		// Replays pay a single stop, not the full handler again.
		er.LocalCost = c.sess.Costs.Stop * w
	}

	// Path arguments must be read from tracee memory (registers come with
	// the stop itself).
	if sc.Attempts == 0 {
		n := int64(0)
		if sc.Path != "" {
			n++
		}
		if sc.Path2 != "" {
			n++
		}
		if n > 0 {
			er.PreCost += c.sess.ReadMem(w, n)
		}
	}

	if done := c.enterHandlers(t, sc, &er); done {
		return er
	}
	return er
}

func abort(err error) kernel.EnterResult {
	return kernel.EnterResult{Disposition: kernel.DispAbort, AbortErr: err}
}

// SyscallExit is the post-syscall stop: result rewriting and retry
// injection.
func (c *Container) SyscallExit(t *kernel.Thread, sc *abi.Syscall) kernel.ExitResult {
	var xr kernel.ExitResult
	switch c.verdictOf(sc) {
	case seccomp.Allow:
		// Allowed calls keep the token (no stop, no context switch), but an
		// FS or address-space write is progress a waiting sibling may be
		// blocked on: reset the spin count so a token holder looping
		// mkdir/rename/brk between compute bursts is not misdeclared a
		// busy-waiter (the §5.9 false positive).
		if isWriteSyscall(sc.Num) {
			c.sched.NoteWrite(t)
		}
		return xr
	case seccomp.Buffer:
		// Already fully serviced (fast path or the emulating enter stop);
		// the completed call is still a context-switch point, which keeps
		// token handoff bounded even for threads looping on buffered calls.
		c.sched.ReleaseToken(t)
		return xr
	}
	c.exitHandlers(t, sc, &xr)
	if !xr.Retry {
		if !sc.Injected {
			c.rec.Record(t.LClock, obs.KindSyscallExit, int32(sc.Num),
				int32(c.vpid[t.Proc.PID]), 0, sc.Ret)
		}
		// Every completed system call is a thread context-switch point
		// under the serialized-thread rule (§5.9).
		c.sched.ReleaseToken(t)
	}
	return xr
}

// WouldBlock converts every blocking call into the parked/Blocked-queue
// discipline of §5.6.1. The thread token passes on so siblings can make the
// progress that will unblock this call.
func (c *Container) WouldBlock(t *kernel.Thread, sc *abi.Syscall) bool {
	c.sched.ReleaseToken(t)
	return true
}

// Instr emulates trapped instructions (§5.8).
func (c *Container) Instr(t *kernel.Thread, req cpu.Request) (cpu.Result, bool, int64) {
	cost := (c.sess.Costs.Stop + c.sess.Costs.HandlerLight) * t.Proc.Weight
	switch req.Instr {
	case cpu.RDTSC, cpu.RDTSCP:
		c.rdtscCount[t.Proc] += t.Proc.Weight
		// A linear function of rdtsc instructions executed so far: time
		// that advances, reproducibly.
		v := uint64(0x4000_0000 + c.rdtscCount[t.Proc]*1000)
		c.rec.Record(t.LClock, obs.KindInstr, int32(req.Instr),
			int32(c.vpid[t.Proc.PID]), 0, int64(v))
		return cpu.Result{Value: v, OK: true}, true, cost
	case cpu.CPUID:
		leaf := c.maskedCPUID(req.Leaf)
		c.rec.Record(t.LClock, obs.KindInstr, int32(req.Instr),
			int32(c.vpid[t.Proc.PID]), uint64(req.Leaf), int64(leaf.EAX))
		return cpu.Result{Leaf: leaf, OK: true}, true, cost
	default:
		// rdrand, rdseed and TSX cannot be trapped from ring 0 — the
		// paper's critical-instruction finding (§4). They execute on the
		// hardware, irreproducibly; DetTrace hides them via cpuid and
		// relies on programs being well-behaved.
		return cpu.Result{}, false, 0
	}
}

// maskedCPUID presents the canonical simplified machine: one core, a fixed
// cache, no TSX, no hardware randomness (§5.8).
func (c *Container) maskedCPUID(leaf uint32) machine.CPUIDLeaf {
	switch leaf {
	case 0:
		return machine.CPUIDLeaf{EAX: 0x16, EBX: 0x756e6547, ECX: 0x6c65746e, EDX: 0x49656e69}
	case 1:
		return machine.CPUIDLeaf{EAX: 0x000306a9, EBX: 1 << 16} // one core, no rdrand bit
	case 4:
		return machine.CPUIDLeaf{EAX: 0, EBX: 8192} // canonical cache size
	case 7:
		return machine.CPUIDLeaf{} // no TSX, no rdseed
	case 0x16:
		return machine.CPUIDLeaf{EAX: 2000}
	default:
		return machine.CPUIDLeaf{}
	}
}

// OnSpawn registers the new thread with the scheduler and assigns virtual
// ids; spawn is a scheduling decision point.
func (c *Container) OnSpawn(parent, child *kernel.Thread) {
	c.sched.Register(child)
	if child.Proc != parent.Proc {
		v := c.nextVPID
		c.nextVPID++
		c.vpid[child.Proc.PID] = v
		c.rawPid[v] = child.Proc.PID
	}
	c.sched.ReleaseToken(parent)
}

// OnExit removes the thread from scheduling state, flushing any syscall
// records still sitting in its buffer (rr drains on tracee exit too: the
// event log must be complete before the thread is gone).
func (c *Container) OnExit(t *kernel.Thread) {
	if n := takeBuffered(t); n > 0 {
		cost := c.sess.FlushCost(n, t.Proc.Weight)
		t.Clock += cost
		t.LClock += cost
	}
	// Thread exit is a join: the whole phase syncs, so a workspace can
	// never outlive its thread.
	c.wsSync(t)
	c.sched.Unregister(t)
	delete(c.rw, t)
	delete(c.pendingOpen, t)
}

// OnExec re-arms instruction traps, replaces the fresh vDSO and maps the
// scratch page in the new image (§5.3, §5.8, §5.10).
func (c *Container) OnExec(t *kernel.Thread) {
	c.armProcess(t.Proc)
}

// VdsoTime implements kernel.VdsoProvider for the FastVdso configuration:
// the patched vDSO answers timing reads with logical time, no stop needed.
func (c *Container) VdsoTime(t *kernel.Thread) int64 {
	return c.logicalSeconds(t.Proc) * 1e9
}

// isWriteSyscall lists the Allow-verdict calls that mutate the filesystem
// tree or the address space — the writes sched.NoteWrite treats as progress.
func isWriteSyscall(nr abi.Sysno) bool {
	switch nr {
	case abi.SysMkdir, abi.SysRmdir, abi.SysUnlink, abi.SysUnlinkat,
		abi.SysRename, abi.SysLink, abi.SysSymlink, abi.SysChmod,
		abi.SysChown, abi.SysTruncate, abi.SysFtruncate,
		abi.SysBrk, abi.SysMmap:
		return true
	}
	return false
}

func isSocketCall(nr abi.Sysno) bool {
	switch nr {
	case abi.SysSocket, abi.SysSocketpair, abi.SysBind, abi.SysListen,
		abi.SysConnect, abi.SysAccept, abi.SysAccept4, abi.SysSendto,
		abi.SysRecvfrom:
		return true
	}
	return false
}

// sortDirents orders getdents results by name (§5.5).
func sortDirents(ents []abi.Dirent) {
	sort.Slice(ents, func(i, j int) bool { return ents[i].Name < ents[j].Name })
}
