package core_test

import (
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"testing"

	"repro/internal/abi"
	"repro/internal/core"
	"repro/internal/guest"
)

// These tests cover the extensions beyond the paper's prototype — each one a
// future-work item the paper sketches (§3, §5.3, §5.4, §5.9).

func TestFastVdsoSameResultsLessTime(t *testing.T) {
	prog := func(p *guest.Proc) int {
		for i := 0; i < 500; i++ {
			p.Printf("%d ", p.VdsoNow()/1e9)
		}
		return 0
	}
	slow := runDT(t, hostA, core.Config{}, prog)
	fast := runDT(t, hostA, core.Config{FastVdso: true}, prog)
	if slow.Err != nil || fast.Err != nil {
		t.Fatalf("runs failed: %v / %v", slow.Err, fast.Err)
	}
	if fast.Stdout != slow.Stdout {
		t.Errorf("fast vDSO changed results")
	}
	if fast.WallTime >= slow.WallTime {
		t.Errorf("fast vDSO not faster: %d vs %d ns", fast.WallTime, slow.WallTime)
	}
	// And still portable.
	other := runDT(t, hostB, core.Config{FastVdso: true}, prog)
	if other.Stdout != fast.Stdout {
		t.Errorf("fast vDSO not reproducible across hosts")
	}
}

func socketWorkload(p *guest.Proc) int {
	srv, err := p.Socket()
	if err != abi.OK {
		return 1
	}
	p.Bind(srv, "/tmp/ipc")
	p.Listen(srv)
	p.Fork(func(c *guest.Proc) int {
		fd, _ := c.Socket()
		if err := c.Connect(fd, "/tmp/ipc"); err != abi.OK {
			return 1
		}
		c.Send(fd, []byte("job-42"))
		buf := make([]byte, 16)
		n, _ := c.Recv(fd, buf)
		c.Printf("client got %s\n", buf[:n])
		c.Close(fd)
		return 0
	})
	conn, aerr := p.Accept(srv)
	if aerr != abi.OK {
		return 2
	}
	buf := make([]byte, 16)
	n, _ := p.Recv(conn, buf)
	p.Printf("server got %s\n", buf[:n])
	p.Send(conn, []byte("done:"+string(buf[:n])))
	p.Close(conn)
	p.Close(srv)
	p.Wait()
	return 0
}

func TestExperimentalSocketsReproducibleIPC(t *testing.T) {
	// Default: the §5.9 abort.
	res := runDT(t, hostA, core.Config{}, socketWorkload)
	if op, ok := res.Unsupported(); !ok || op != "socket" {
		t.Fatalf("default config should abort on sockets: %v", res.Err)
	}
	// Experimental mode: works, and identically on both hosts.
	a := runDT(t, hostA, core.Config{ExperimentalSockets: true}, socketWorkload)
	b := runDT(t, hostB, core.Config{ExperimentalSockets: true}, socketWorkload)
	if a.Err != nil || a.ExitCode != 0 {
		t.Fatalf("socket IPC failed: %v code=%d", a.Err, a.ExitCode)
	}
	if a.Stdout != b.Stdout {
		t.Errorf("socket IPC not reproducible:\n%q\nvs\n%q", a.Stdout, b.Stdout)
	}
	if !strings.Contains(a.Stdout, "done:job-42") {
		t.Errorf("IPC content wrong: %q", a.Stdout)
	}
}

func signalWorkload(p *guest.Proc) int {
	pid, _ := p.Fork(func(c *guest.Proc) int {
		n := 0
		c.Signal(abi.SIGUSR1, func(h *guest.Proc, s abi.Signal) {
			n++
			h.Printf("worker poked %d\n", n)
		})
		for n < 3 {
			c.Pause()
		}
		return n
	})
	for i := 0; i < 3; i++ {
		p.Compute(10_000)
		if err := p.Kill(pid, abi.SIGUSR1); err != abi.OK {
			return 1
		}
	}
	wr, _ := p.Waitpid(pid, 0)
	p.Printf("worker saw %d pokes\n", wr.Status.ExitCode())
	return 0
}

func TestExperimentalCrossProcessSignals(t *testing.T) {
	res := runDT(t, hostA, core.Config{}, signalWorkload)
	if op, ok := res.Unsupported(); !ok || op != "cross-process signal" {
		t.Fatalf("default config should abort: %v", res.Err)
	}
	a := runDT(t, hostA, core.Config{ExperimentalSignals: true}, signalWorkload)
	b := runDT(t, hostB, core.Config{ExperimentalSignals: true}, signalWorkload)
	if a.Err != nil || a.ExitCode != 0 {
		t.Fatalf("signal workload failed: %v code=%d stderr=%s", a.Err, a.ExitCode, a.Stderr)
	}
	if !strings.Contains(a.Stdout, "worker saw 3 pokes") {
		t.Errorf("deliveries lost: %q", a.Stdout)
	}
	if a.Stdout != b.Stdout {
		t.Errorf("signal delivery not reproducible:\n%q\nvs\n%q", a.Stdout, b.Stdout)
	}
}

func TestChecksummedDownloads(t *testing.T) {
	payload := []byte("release tarball contents")
	sum := sha256.Sum256(payload)
	good := core.Download{Data: payload, SHA256: hex.EncodeToString(sum[:])}
	bad := core.Download{Data: payload, SHA256: strings.Repeat("00", 32)}

	prog := func(p *guest.Proc) int {
		data, err := p.Fetch("https://example.org/release.tar")
		if err != abi.OK {
			return 1
		}
		p.Printf("got %d bytes: %s", len(data), data[:7])
		return 0
	}

	// Declared and verified: works, reproducibly.
	a := runDT(t, hostA, core.Config{Downloads: map[string]core.Download{"https://example.org/release.tar": good}}, prog)
	b := runDT(t, hostB, core.Config{Downloads: map[string]core.Download{"https://example.org/release.tar": good}}, prog)
	if a.Err != nil || a.Stdout != b.Stdout || !strings.Contains(a.Stdout, "release") {
		t.Errorf("verified download failed: err=%v out=%q", a.Err, a.Stdout)
	}
	// Checksum mismatch: reproducible container error.
	c := runDT(t, hostA, core.Config{Downloads: map[string]core.Download{"https://example.org/release.tar": bad}}, prog)
	if op, ok := c.Unsupported(); !ok || !strings.Contains(op, "checksum mismatch") {
		t.Errorf("bad checksum not rejected: %v", c.Err)
	}
	// Undeclared URL: reproducible container error.
	d := runDT(t, hostA, core.Config{}, prog)
	if op, ok := d.Unsupported(); !ok || !strings.Contains(op, "undeclared download") {
		t.Errorf("undeclared fetch not rejected: %v", d.Err)
	}
}

func TestFetchIsENOSYSNatively(t *testing.T) {
	got := runBaseline(t, hostA, func(p *guest.Proc) int {
		_, err := p.Fetch("https://example.org/x")
		p.Printf("%s", err)
		return 0
	})
	if !strings.Contains(got, "ENOSYS") {
		t.Errorf("native fetch = %q, want ENOSYS (no network in the stock kernel)", got)
	}
}
