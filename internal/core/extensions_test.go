package core_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/abi"
	"repro/internal/core"
	"repro/internal/guest"
)

func TestRealRandomLoggingAndReplay(t *testing.T) {
	prog := func(p *guest.Proc) int {
		buf := make([]byte, 16)
		p.GetRandom(buf)
		p.Printf("a=%x ", buf)
		fd, _ := p.Open("/dev/urandom", abi.ORdonly, 0)
		p.Read(fd, buf[:8])
		p.Close(fd)
		p.Printf("b=%x", buf[:8])
		return 0
	}
	// With logging on, two hosts produce *different* output: the container
	// got true entropy.
	a := runDT(t, hostA, core.Config{LogRealRandom: true}, prog)
	b := runDT(t, hostB, core.Config{LogRealRandom: true}, prog)
	if a.Err != nil || b.Err != nil {
		t.Fatalf("runs failed: %v / %v", a.Err, b.Err)
	}
	if a.Stdout == b.Stdout {
		t.Fatalf("true randomness produced identical streams — logging path broken")
	}
	if len(a.RandomLog) != 24 {
		t.Fatalf("RandomLog = %d bytes, want 24", len(a.RandomLog))
	}
	// Replaying host A's log on host B reproduces host A's run exactly.
	c := runDT(t, hostB, core.Config{RandomReplay: a.RandomLog}, prog)
	if c.Stdout != a.Stdout {
		t.Errorf("replay diverged:\n%s\nvs\n%s", c.Stdout, a.Stdout)
	}
	if c.ReplayExhausted {
		t.Errorf("replay should not have exhausted a complete log")
	}
	// A truncated log is flagged and padded deterministically.
	d := runDT(t, hostB, core.Config{RandomReplay: a.RandomLog[:10]}, prog)
	if !d.ReplayExhausted {
		t.Errorf("truncated replay not flagged")
	}
}

func TestUpdateVirtualMtimesExtension(t *testing.T) {
	prog := func(p *guest.Proc) int {
		p.WriteFile("/tmp/f", []byte("v1"), 0o644)
		st1, _ := p.Stat("/tmp/f")
		p.WriteFile("/tmp/other", []byte("x"), 0o644) // advances the counter
		p.AppendFile("/tmp/f", []byte("v2"), 0o644)
		st2, _ := p.Stat("/tmp/f")
		p.Printf("m1=%d m2=%d", st1.Mtime.Sec, st2.Mtime.Sec)
		return 0
	}
	// Default (paper prototype): writes do not update the virtual mtime.
	res := runDT(t, hostA, core.Config{}, prog)
	parts := strings.Fields(res.Stdout)
	if parts[0] != strings.Replace(parts[1], "m2", "m1", 1) {
		t.Errorf("default config: mtime changed on write: %q", res.Stdout)
	}
	// Extension on: the second version has a later mtime.
	res = runDT(t, hostA, core.Config{UpdateVirtualMtimes: true}, prog)
	var m1, m2 int64
	if _, err := sscan(res.Stdout, &m1, &m2); err != nil {
		t.Fatalf("bad output %q", res.Stdout)
	}
	if m2 <= m1 {
		t.Errorf("extension on: mtime did not advance on write: %q", res.Stdout)
	}
	// Still deterministic across hosts.
	other := runDT(t, hostB, core.Config{UpdateVirtualMtimes: true}, prog)
	if other.Stdout != res.Stdout {
		t.Errorf("mtime extension not portable: %q vs %q", other.Stdout, res.Stdout)
	}
}

// sscan parses "m1=%d m2=%d".
func sscan(s string, m1, m2 *int64) (int, error) {
	var n int
	var err error
	n, err = fmt.Sscanf(s, "m1=%d m2=%d", m1, m2)
	return n, err
}
