package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/guest"
)

func procProgram(p *guest.Proc) int {
	for _, f := range []string{"cpuinfo", "uptime", "meminfo", "version"} {
		data, err := p.ReadFile("/proc/" + f)
		p.Printf("%s[%v]=%q\n", f, err, data)
	}
	return 0
}

func TestProcFilesMasked(t *testing.T) {
	a := runDT(t, hostA, core.Config{}, procProgram)
	b := runDT(t, hostB, core.Config{}, procProgram)
	if a.Err != nil {
		t.Fatalf("run: %v", a.Err)
	}
	if a.Stdout != b.Stdout {
		t.Errorf("/proc leaked host identity:\n%s\nvs\n%s", a.Stdout, b.Stdout)
	}
	if !strings.Contains(a.Stdout, "DetTrace Virtual CPU") {
		t.Errorf("cpuinfo not canonical: %s", a.Stdout)
	}
	if strings.Contains(a.Stdout, "Xeon") || strings.Contains(a.Stdout, "generic") {
		t.Errorf("host strings visible: %s", a.Stdout)
	}
	// One processor only.
	if strings.Count(a.Stdout, "processor") != 1 {
		t.Errorf("cpuinfo advertises multiple processors: %s", a.Stdout)
	}
}

func TestProcFilesLeakNatively(t *testing.T) {
	a := runBaseline(t, hostA, procProgram)
	b := runBaseline(t, hostB, procProgram)
	if a == b {
		t.Errorf("native /proc identical across machines — leak model missing")
	}
	if !strings.Contains(a, "Xeon") {
		t.Errorf("native cpuinfo should name the host CPU: %s", a)
	}
}
