package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/derive"
	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/seccomp"
)

// Template is a prepared container: the expensive, run-independent half of
// New — the populated-and-frozen filesystem snapshot and the compiled
// seccomp verdict table — built once and shared by every container forked
// from it. The cheap, run-dependent half (virtualization maps, scheduler,
// PRNG, tracer session) is rebuilt per NewContainer call, so forked
// containers are bitwise indistinguishable from cold-built ones; the
// equivalence tests in template_test.go and internal/buildsim pin that.
//
// A Template is compatible only with its exact container configuration:
// reusing a base across, say, a DisableDirSizes ablation and a full run
// would silently leak one config into the other. ConfigHash captures every
// behaviour-relevant Config field, and caches (internal/buildsim) key on
// (image hash, config hash) so an incompatible reuse cannot happen.
type Template struct {
	cfg            Config // normalized; host fields are placeholders
	snap           *kernel.Snapshot
	filter         *seccomp.Filter
	interceptCpuid bool
	hash           uint64
	imageHash      uint64

	// PrepareNs is real time spent preparing the snapshot (populate +
	// freeze), surfaced as the "prepare" span of containers forked from
	// this template. Benchmarking metadata, like Result.SetupNs.
	PrepareNs int64
}

// HostRun names the physical run a container executes as: the [host]
// Config fields that a template deliberately does not bake in.
type HostRun struct {
	Seed   uint64 // host entropy: "which physical machine boot is this"
	Epoch  int64  // wall-clock seconds at boot
	NumCPU int    // core count override (0 = profile's)

	// CheckpointSink and FaultCorruptCheckpoint are the per-run checkpoint
	// observers (see Config): mechanism-level, excluded from ConfigHash,
	// and deliberately not baked into the template so each forked container
	// gets its own.
	CheckpointSink         func(*Checkpoint)
	FaultCorruptCheckpoint int
}

// NewTemplate prepares a reusable container template from cfg. The [host]
// fields of cfg (HostSeed, Epoch, NumCPU) are ignored — they arrive per
// run via HostRun — as are the per-run observers (Debug, CheckpointSink,
// FaultCorruptCheckpoint): baking one requester's sink closure into a shared
// template would leak it into every container forked later.
func NewTemplate(cfg Config) *Template {
	normalizeConfig(&cfg)
	cfg.HostSeed, cfg.Epoch, cfg.NumCPU = 0, 0, 0
	cfg.Debug = nil
	cfg.CheckpointSink = nil
	cfg.FaultCorruptCheckpoint = 0
	cfg.HaltAtLTime, cfg.HaltAtAction = 0, 0 // per-run debugger knobs, like the sinks
	tp := &Template{
		cfg:    cfg,
		filter: filterFor(cfg),
		hash:   ConfigHash(cfg),
	}
	tp.interceptCpuid = !cfg.DisableCpuidTrap && cfg.Profile.SupportsCpuidInterception()
	if cfg.Image != nil {
		tp.imageHash = cfg.Image.Hash()
	}
	prepStart := time.Now()
	tp.snap = kernel.Prepare(kernel.Config{
		Profile: cfg.Profile,
		Image:   cfg.Image,
	})
	tp.PrepareNs = time.Since(prepStart).Nanoseconds()
	return tp
}

// NewContainer forks a ready-to-Run container for one physical run. The
// returned container boots the template's frozen filesystem snapshot
// (unless the config's DisableTemplateReuse ablation forces the cold path)
// and shares the template's compiled seccomp table.
func (tp *Template) NewContainer(h HostRun) *Container {
	cfg := tp.cfg
	cfg.HostSeed, cfg.Epoch, cfg.NumCPU = h.Seed, h.Epoch, h.NumCPU
	cfg.CheckpointSink = h.CheckpointSink
	cfg.FaultCorruptCheckpoint = h.FaultCorruptCheckpoint
	c := newContainer(cfg, tp.filter)
	c.snap = tp.snap
	c.spans = append(c.spans, obs.Span{Name: "prepare", RealNs: tp.PrepareNs})
	return c
}

// ConfigHash returns the template's configuration hash.
func (tp *Template) ConfigHash() uint64 { return tp.hash }

// ImageHash returns the content hash of the template's image (0 if none).
func (tp *Template) ImageHash() uint64 { return tp.imageHash }

// CompatibleWith reports whether a container built from this template would
// behave identically to core.New(cfg): same image content, same
// behaviour-relevant configuration.
func (tp *Template) CompatibleWith(cfg Config) bool {
	normalizeConfig(&cfg)
	if ConfigHash(cfg) != tp.hash {
		return false
	}
	switch {
	case cfg.Image == nil:
		return tp.imageHash == 0
	default:
		return cfg.Image.Hash() == tp.imageHash
	}
}

// ConfigHash hashes every Config field that can change container behaviour.
// Excluded on purpose: the [host] fields (HostSeed, Epoch, NumCPU) — those
// vary per run by design and must not affect output; Image — content is
// keyed separately via Image.Hash, so caches can share one config hash
// across many images; Debug (an observer); and the mechanism ablations
// whose whole contract is behavioural invisibility — DisableTemplateReuse,
// DisableObservability and RingEvents (the recorder observes, it never
// feeds back). FaultInjectEntropy IS hashed: perturbing an entropy draw
// changes guest-visible bytes by design. So is FaultInjectCrash — it
// changes how far the run gets — while FaultCorruptCheckpoint and
// CheckpointSink stay out: checkpoints observe the run, they never feed
// back (checkpoint validation uses recoveryHash, which re-zeroes the
// crash knob, since a recovery deliberately clears it). DisableIncremental
// is hashed even though core never reads it: the ablation must partition
// the derivation-key space so cached state never crosses it (ISSUE 8).
// DisableDeltaSeals is hashed for the same reason: whether checkpoint seals
// are delta-chained changes what a cached derivation's seal chain means, so
// the ablation partitions the key space too. HaltAtLTime/HaltAtAction stay
// out: a halted replay observes a strict prefix of the run and its result
// never enters a cache, and keeping them unhashed is what lets a debugger
// seek resume pass checkpoint validation (recoveryHash) while halting early.
//
// The Profile IS included even though it is [host]-marked: the prepared
// filesystem bakes in profile-derived state (the readdir hash salt, the
// directory-size formula), so a template must never serve a run on a
// different simulated machine.
func ConfigHash(cfg Config) uint64 {
	normalizeConfig(&cfg)
	h := derive.NewHasher()
	h.Str(cfg.Profile.Name)
	h.Num(cfg.PRNGSeed)
	h.Num(uint64(cfg.LogicalEpoch))
	h.Num(uint64(cfg.Deadline))
	h.Flag(cfg.DisableSeccomp)
	h.Flag(cfg.DisableSyscallBuf)
	h.Flag(cfg.DisableWorkspaces)
	h.Flag(cfg.DisableVdso)
	h.Flag(cfg.DisableDirSizes)
	h.Flag(cfg.DisableCpuidTrap)
	h.Flag(cfg.DisableInodeVirt)
	h.Flag(cfg.DisableGetdentsSort)
	h.Flag(cfg.DisableIncremental)
	h.Flag(cfg.DisableDeltaSeals)
	h.Str(cfg.WorkingDir)
	h.Num(uint64(cfg.SpinLimit))
	h.Flag(cfg.UpdateVirtualMtimes)
	h.Flag(cfg.FastVdso)
	h.Flag(cfg.ExperimentalSockets)
	h.Flag(cfg.ExperimentalSignals)
	h.Flag(cfg.LogRealRandom)
	h.Num(uint64(cfg.FaultInjectEntropy))
	h.Num(uint64(cfg.FaultInjectCrash))
	h.Data(cfg.RandomReplay)
	urls := make([]string, 0, len(cfg.Downloads))
	for u := range cfg.Downloads {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	for _, u := range urls {
		d := cfg.Downloads[u]
		h.Str(u)
		h.Str(d.SHA256)
		h.Data(d.Data)
	}
	return h.Sum()
}

// String identifies the template in logs and cache debug output.
func (tp *Template) String() string {
	return fmt.Sprintf("template(image=%016x cfg=%016x)", tp.imageHash, tp.hash)
}
