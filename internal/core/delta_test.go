package core_test

import (
	"errors"
	"testing"

	"repro/internal/core"
)

// Delta checkpoint seals (DESIGN.md §4h): after the first seal, a checkpoint
// records only the inodes dirtied since the previous seal, chained onto it.
// The ablation contract is absolute — DisableDeltaSeals is mechanism-only, a
// run and every resume from its seals must be bitwise identical either way —
// and the chain validator must contain corruption to the suffix that chains
// through it.

// TestDeltaSealsBitwiseEquivalent is the ablation equivalence gate: the same
// workload sealed with delta chains and with standalone full seals produces
// identical output, ring, metrics and per-seal ring digests — only the seal
// storage shape differs.
func TestDeltaSealsBitwiseEquivalent(t *testing.T) {
	var delta, full []*core.Checkpoint
	dcfg := chainConfig(hostA)
	dcfg.CheckpointSink = func(cp *core.Checkpoint) { delta = append(delta, cp) }
	dres := runChain(dcfg)
	if dres.Err != nil {
		t.Fatalf("delta-sealed run: %v", dres.Err)
	}
	fcfg := chainConfig(hostA)
	fcfg.DisableDeltaSeals = true
	fcfg.CheckpointSink = func(cp *core.Checkpoint) { full = append(full, cp) }
	fres := runChain(fcfg)
	if fres.Err != nil {
		t.Fatalf("full-sealed run: %v", fres.Err)
	}
	if got, want := bitwise(t, dres), bitwise(t, fres); got != want {
		t.Errorf("delta seals changed the run\n delta: %.300s\n full:  %.300s", got, want)
	}
	if len(delta) != len(full) {
		t.Fatalf("seal counts differ: delta %d, full %d", len(delta), len(full))
	}
	for i := range delta {
		ds := delta[i].Kernel().FSSealStats()
		fs := full[i].Kernel().FSSealStats()
		if fs.Delta {
			t.Errorf("seal %d: ablated run produced a delta seal", i+1)
		}
		if i == 0 && ds.Delta {
			t.Errorf("first seal must be a full base, got delta")
		}
		if i > 0 {
			if !ds.Delta {
				t.Errorf("seal %d: delta run produced a standalone seal", i+1)
			}
			if ds.FreshBytes >= fs.TotalBytes {
				t.Errorf("seal %d: delta stored %d bytes, no cheaper than the %d-byte full seal",
					i+1, ds.FreshBytes, fs.TotalBytes)
			}
		}
		if ds.TotalBytes != fs.TotalBytes {
			t.Errorf("seal %d: logical tree sizes differ: %d vs %d", i+1, ds.TotalBytes, fs.TotalBytes)
		}
		// The sealed ring prefixes are the same bytes, so the validation
		// digests — what the bisector binary-searches — must agree too.
		if delta[i].Digest() != full[i].Digest() {
			t.Errorf("seal %d: ring digests diverge between delta and full runs", i+1)
		}
	}
}

// TestDeltaChainResumeSweep pins the acceptance criterion directly: at every
// seal of the chain, resuming the delta-chained seal and resuming the
// equivalent standalone full seal both reproduce the uninterrupted run
// bitwise.
func TestDeltaChainResumeSweep(t *testing.T) {
	ref := refChain(t, hostA)
	want := bitwise(t, ref)
	for _, ablate := range []bool{false, true} {
		var seals []*core.Checkpoint
		cfg := chainConfig(hostA)
		cfg.DisableDeltaSeals = ablate
		cfg.CheckpointSink = func(cp *core.Checkpoint) { seals = append(seals, cp) }
		if res := runChain(cfg); res.Err != nil {
			t.Fatalf("sealed run (ablate=%v): %v", ablate, res.Err)
		}
		if len(seals) < 2 {
			t.Fatalf("want ≥2 seals, got %d", len(seals))
		}
		for _, cp := range seals {
			rcfg := discardSink(chainConfig(hostA))
			rcfg.DisableDeltaSeals = ablate
			res, err := core.Resume(cp, chainRegistry(), rcfg)
			if err != nil {
				t.Fatalf("resume seal %d (ablate=%v): %v", cp.Ordinal(), ablate, err)
			}
			if got := bitwise(t, res); got != want {
				t.Errorf("seal %d (ablate=%v): resumed != uninterrupted\n got: %.300s\nwant: %.300s",
					cp.Ordinal(), ablate, got, want)
			}
		}
	}
}

// TestDeltaCorruptionPoisonsSuffix: with delta chains, corrupting one seal
// invalidates it and every later seal that chains through it; the prefix
// before the corruption stays valid and resumes bitwise-faithfully. Under
// the ablation the same fault stays contained to the one corrupted seal.
func TestDeltaCorruptionPoisonsSuffix(t *testing.T) {
	ref := refChain(t, hostA)
	run := func(ablate bool) []*core.Checkpoint {
		var seals []*core.Checkpoint
		cfg := chainConfig(hostA)
		cfg.DisableDeltaSeals = ablate
		cfg.FaultCorruptCheckpoint = 2
		cfg.CheckpointSink = func(cp *core.Checkpoint) { seals = append(seals, cp) }
		if res := runChain(cfg); res.Err != nil {
			t.Fatalf("run (ablate=%v): %v", ablate, res.Err)
		}
		if len(seals) < 3 {
			t.Fatalf("want ≥3 seals, got %d", len(seals))
		}
		return seals
	}

	chained := run(false)
	for i, cp := range chained {
		if valid := cp.Valid(); valid != (i == 0) {
			t.Errorf("delta seal %d Valid() = %v; corruption at 2 must poison the whole suffix", i+1, valid)
		}
	}
	// Resume from any poisoned seal is rejected; the newest valid prefix
	// still restores the full run.
	if _, err := core.Resume(chained[len(chained)-1], chainRegistry(), discardSink(chainConfig(hostA))); !errors.Is(err, core.ErrCheckpointCorrupt) {
		t.Errorf("resume from poisoned suffix: err=%v, want ErrCheckpointCorrupt", err)
	}
	res, err := core.Resume(chained[0], chainRegistry(), discardSink(chainConfig(hostA)))
	if err != nil {
		t.Fatalf("resume from valid prefix: %v", err)
	}
	if bitwise(t, res) != bitwise(t, ref) {
		t.Errorf("prefix resume diverged from uninterrupted run")
	}

	standalone := run(true)
	for i, cp := range standalone {
		if valid := cp.Valid(); valid != (i != 1) {
			t.Errorf("full seal %d Valid() = %v; ablated corruption must stay contained", i+1, valid)
		}
	}
}

// TestHaltedReplayIsStrictPrefix pins the seek primitive: HaltAtAction and
// HaltAtLTime stop the run with Halted set (no error), at a state whose ring
// is a strict prefix of the uninterrupted run's.
func TestHaltedReplayIsStrictPrefix(t *testing.T) {
	ref := runChain(chainConfig(hostA))
	if ref.Err != nil {
		t.Fatalf("reference: %v", ref.Err)
	}

	acfg := chainConfig(hostA)
	acfg.HaltAtAction = ref.Actions / 2
	halted := runChain(acfg)
	if halted.Err != nil || !halted.Halted {
		t.Fatalf("HaltAtAction: err=%v halted=%v", halted.Err, halted.Halted)
	}
	if halted.Actions != ref.Actions/2 {
		t.Errorf("halted at action %d, want %d", halted.Actions, ref.Actions/2)
	}
	checkPrefix := func(name string, res *core.Result) {
		t.Helper()
		if len(res.Events) == 0 || len(res.Events) >= len(ref.Events) {
			t.Fatalf("%s: ring has %d events, want a strict prefix of %d", name, len(res.Events), len(ref.Events))
		}
		for i, e := range res.Events {
			if e != ref.Events[i] {
				t.Fatalf("%s: ring event %d differs from the uninterrupted run's", name, i)
			}
		}
	}
	checkPrefix("HaltAtAction", halted)

	lcfg := chainConfig(hostA)
	lcfg.HaltAtLTime = ref.LTime / 2
	lhalted := runChain(lcfg)
	if lhalted.Err != nil || !lhalted.Halted {
		t.Fatalf("HaltAtLTime: err=%v halted=%v", lhalted.Err, lhalted.Halted)
	}
	if lhalted.LTime < ref.LTime/2 || lhalted.LTime >= ref.LTime {
		t.Errorf("halted at ltime %d, want within [%d, %d)", lhalted.LTime, ref.LTime/2, ref.LTime)
	}
	checkPrefix("HaltAtLTime", lhalted)
}

// TestDeltaSealsPartitionConfigHash: the ablation is part of a run's identity
// (delta-run artifacts must never satisfy a full-seal cache key), while the
// halt knobs are per-run debugger state and excluded — a halted replay must
// pass the recovery-hash check against seals taken without them.
func TestDeltaSealsPartitionConfigHash(t *testing.T) {
	base := chainConfig(hostA)
	want := core.ConfigHash(base)

	ablated := base
	ablated.DisableDeltaSeals = true
	if core.ConfigHash(ablated) == want {
		t.Errorf("DisableDeltaSeals does not partition the config-hash key space")
	}

	halting := base
	halting.HaltAtAction = 100
	halting.HaltAtLTime = 100_000
	if core.ConfigHash(halting) != want {
		t.Errorf("halt knobs changed the config hash; halted replays could not resume sealed checkpoints")
	}
}
