package core

import (
	"testing"
	"testing/quick"

	"repro/internal/kernel"
)

// White-box property tests on the container's determinization maps (§5.5).

func newBare() *Container {
	return New(Config{})
}

// Property: virtIno is a injective function of first-touch order — same
// real inode always maps to the same virtual one, distinct reals to
// distinct virtuals.
func TestVirtInoInjectiveProperty(t *testing.T) {
	prop := func(touches []uint32) bool {
		c := newBare()
		forward := map[uint64]uint64{}
		reverse := map[uint64]uint64{}
		for _, r := range touches {
			real := uint64(r)
			v := c.virtIno(real)
			if prev, seen := forward[real]; seen && prev != v {
				return false // not a function
			}
			forward[real] = v
			if prevReal, seen := reverse[v]; seen && prevReal != real {
				return false // not injective
			}
			reverse[v] = real
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: virtual inodes depend only on first-touch ORDER, never on the
// real inode values — two containers touching different real inodes in the
// same pattern assign identical virtual numbers.
func TestVirtInoOrderOnlyProperty(t *testing.T) {
	prop := func(pattern []uint8, offsetA, offsetB uint32) bool {
		a, b := newBare(), newBare()
		for _, p := range pattern {
			va := a.virtIno(uint64(offsetA) + uint64(p)*7)
			vb := b.virtIno(uint64(offsetB) + uint64(p)*131)
			if va != vb {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: a recycled real inode re-registered as a new file gets a fresh
// virtual inode and a fresh mtime, strictly later than every earlier one.
func TestNewFileInodeFreshness(t *testing.T) {
	prop := func(creations []uint8) bool {
		c := newBare()
		const recycled = 42
		prevIno, prevMtime := uint64(0), int64(-1)
		for range creations {
			c.newFileInode(recycled)
			ino := c.virtIno(recycled)
			mt := c.virtMtime(recycled)
			if ino <= prevIno || mt <= prevMtime {
				return false
			}
			prevIno, prevMtime = ino, mt
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestUntouchedInodeHasMtimeZero(t *testing.T) {
	c := newBare()
	if c.virtMtime(999) != 0 {
		t.Errorf("initial-image files must report mtime 0 (§5.5)")
	}
}

// Property: virtDirSize is monotone non-decreasing and machine-free.
func TestVirtDirSizeMonotoneProperty(t *testing.T) {
	prop := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return virtDirSize(x) <= virtDirSize(y) && virtDirSize(0) > 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestMaskedCPUIDIsConstant(t *testing.T) {
	c := newBare()
	for leaf := uint32(0); leaf < 32; leaf++ {
		a, b := c.maskedCPUID(leaf), c.maskedCPUID(leaf)
		if a != b {
			t.Fatalf("leaf %d unstable", leaf)
		}
	}
	if c.maskedCPUID(1).EBX>>16 != 1 {
		t.Errorf("masked cpuid must report one core")
	}
	if c.maskedCPUID(7).EBX != 0 {
		t.Errorf("masked cpuid must hide TSX and rdseed")
	}
}

// Property: logicalSeconds is strictly monotone per process and independent
// across processes (each has its own count, §5.3).
func TestLogicalSecondsMonotoneProperty(t *testing.T) {
	prop := func(calls uint8) bool {
		c := newBare()
		p := fabricateProc()
		prev := int64(0)
		for i := 0; i <= int(calls); i++ {
			s := c.logicalSeconds(p)
			if i > 0 && s != prev+1 {
				return false
			}
			prev = s
		}
		q := fabricateProc()
		return c.logicalSeconds(q) == DefaultLogicalEpoch
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// fabricateProc builds a bare process for map tests.
func fabricateProc() *kernel.Proc { return &kernel.Proc{} }
