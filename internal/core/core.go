// Package core implements DetTrace: the reproducible container abstraction
// of the paper. A Container attaches to the simulated kernel as its tracing
// policy and enforces, per the §5 taxonomy, that every computation inside is
// a pure function of the container's inputs — the initial filesystem image,
// the entry command, the configured environment, and the PRNG seed (Fig. 1).
//
// Host accidents — the entropy seed, the wall epoch, core counts, the
// machine profile's cpuid/directory-size quirks — must not be observable.
// The determinism meta-test in this package's tests runs the same container
// on wildly different hosts and requires bitwise-identical results.
package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/abi"
	"repro/internal/fs"
	"repro/internal/guest"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/prng"
	"repro/internal/sched"
	"repro/internal/seccomp"
	"repro/internal/tracer"
)

// DefaultLogicalEpoch is the fixed wall-clock second DetTrace's logical time
// starts from: Sun Aug  8 22:00:00 UTC 1993, the date the artifact's
// `dettrace date` demo prints.
const DefaultLogicalEpoch = 744847200

// Config describes one reproducible container. Fields marked [input] are
// part of the container's reproducibility contract (changing them may change
// output); fields marked [host] describe the physical run and must NOT
// affect output — that is the property under test.
type Config struct {
	Image *fs.Image // [input] initial filesystem state

	Profile  *machine.Profile // [host] machine the container runs on
	HostSeed uint64           // [host] physical-run entropy
	Epoch    int64            // [host] wall-clock seconds at boot
	NumCPU   int              // [host] core count override (0 = profile's)

	PRNGSeed uint64 // [input] seed for container-visible randomness (§5.2)

	// LogicalEpoch is the fixed base for logical time; 0 selects
	// DefaultLogicalEpoch. [input]
	LogicalEpoch int64

	// Deadline bounds virtual time; 0 means unlimited. A timed-out build is
	// classified Timeout in the evaluation. [input]
	Deadline int64

	// Ablation switches; all default to the full DetTrace configuration.
	DisableSeccomp      bool // every syscall takes two ptrace stops (§5.11)
	DisableSyscallBuf   bool // no in-tracee syscall buffer: light calls trap again
	DisableVdso         bool // skip vDSO replacement: vDSO time calls leak (§5.3)
	DisableDirSizes     bool // skip directory-size virtualization (§7.3)
	DisableCpuidTrap    bool // pretend pre-Ivy-Bridge hardware (§5.8)
	DisableInodeVirt    bool // report host inodes (§5.5)
	DisableGetdentsSort bool // report host directory order (§5.5)

	// DisableIncremental disables incremental rebuilds (ISSUE 8). The core
	// container never reads it — incremental planning happens above, in
	// buildsim — but it IS joined into ConfigHash: the ablation partitions
	// the derivation-key space, so state prepared with incremental reuse on
	// can never be served to an ablated run (or vice versa). Caching must
	// not cross the ablation, even though the bits on both sides are
	// provably identical — that identity is the property under test, not an
	// assumption the cache may lean on.
	DisableIncremental bool

	// DisableDeltaSeals makes every checkpoint a standalone full seal
	// instead of a delta against the previous one (ISSUE 9). Restores are
	// provably bitwise-identical either way — the ttd equivalence gate pins
	// it — but like DisableIncremental the ablation IS joined into
	// ConfigHash: a delta chain and a full-seal sequence are different
	// derivation artifacts, and cached state must never cross the ablation
	// that is under test.
	DisableDeltaSeals bool

	// DisableTemplateReuse forces cold construction even when the container
	// came from a Template: the kernel populates a fresh FS from the image
	// instead of COW-forking the prepared base. A mechanism ablation, not a
	// container input — output must be bitwise identical either way, which
	// is exactly what the template equivalence gate checks.
	DisableTemplateReuse bool

	// DisableObservability turns the flight recorder off (metrics counters
	// still run — they back Stats and Result.Tracer). Like template reuse,
	// this is a mechanism ablation, not a container input: guest-visible
	// state and output must be bitwise identical with the recorder on or
	// off, the invariant the on/off-equivalence tests pin. Excluded from
	// ConfigHash for the same reason.
	DisableObservability bool

	// RingEvents overrides the flight-recorder ring capacity (0 keeps
	// obs.DefaultRingEvents). Capacity only bounds retention, never
	// behaviour, so it too stays out of ConfigHash.
	RingEvents int

	// DisableWorkspaces turns off the workspace-consistency execution mode
	// (ISSUE 7): without workspaces, sibling threads serialize their compute
	// bursts on the physical clock exactly as the paper's prototype does
	// (§5.7, the Fig. 6 worst case). Like template reuse and observability,
	// this is a mechanism ablation, not a container input: workspaces only
	// overlap *physical* time — the logical clock stays token-serialized —
	// so guest-visible state and output are bitwise identical with the mode
	// on or off, the invariant the workspace equivalence gate pins.
	// Excluded from ConfigHash for the same reason.
	DisableWorkspaces bool

	// FaultInjectEntropy, when > 0, deliberately perturbs the N-th entropy
	// draw (1-based) served to the container — the seeded-nondeterminism
	// hook the diagnoser tests use to prove a divergence is localized to
	// the exact first divergent event. This DOES change guest-visible
	// bytes, so unlike the knobs above it participates in ConfigHash.
	// [input, test-only]
	FaultInjectEntropy int

	// FaultInjectCrash, when > 0, kills the run with
	// kernel.ErrInjectedCrash once the kernel's processed-action count
	// reaches N — the deterministic stand-in for a machine crash,
	// scheduled on logical history so the same N always dies at the same
	// traced stop. It changes how far the run gets (though never what any
	// prefix contains), so it participates in ConfigHash; recovery clears
	// it, which is why checkpoint validation hashes it out (recoveryHash).
	// [input, test-only]
	FaultInjectCrash int64

	// FaultCorruptCheckpoint, when > 0, corrupts the N-th checkpoint
	// (1-based) as it is sealed: its validation digest is flipped so
	// Resume rejects it with ErrCheckpointCorrupt and recovery must fall
	// back to an older seal or a cold-boot replay. Mechanism-level — the
	// running guest never observes its checkpoints — so excluded from
	// ConfigHash like the observability knobs.
	FaultCorruptCheckpoint int

	// CheckpointSink, when non-nil, enables crash-consistent checkpoints:
	// at every quiescent traced stop (see kernel.Config.Checkpointer for
	// the eligibility rules) the container seals its complete state and
	// hands the Checkpoint to the sink; latest-wins callers keep only the
	// last one. Sealing is read-only and never perturbs the run, so this
	// is a mechanism knob excluded from ConfigHash: output with a sink
	// attached is bitwise identical to output without.
	CheckpointSink func(*Checkpoint)

	// WorkingDir is the container working directory (the --working-dir
	// bind-mount target); empty selects /build when the image has it.
	// [input]
	WorkingDir string

	// SpinLimit overrides the busy-wait detection threshold (0 keeps the
	// scheduler default). [input]
	SpinLimit int

	// UpdateVirtualMtimes makes writes advance a file's virtual mtime —
	// the "more realistic-looking virtual mtimes" extension §5.5 mentions.
	// Off by default, matching the paper's prototype. [input]
	UpdateVirtualMtimes bool

	// FastVdso enables the §5.3 planned optimization: instead of
	// downgrading vDSO timing calls to intercepted system calls, the
	// patched vDSO answers them with logical time directly — no stop, no
	// tracer serialization, same reproducible values. [input]
	FastVdso bool

	// ExperimentalSockets permits AF_UNIX sockets *within* the container
	// (§5.9's future work): the reproducible scheduler already orders
	// their dataflow deterministically, so container-internal IPC is safe
	// to allow. Network reachability remains impossible — there is nothing
	// outside the container to connect to. [input]
	ExperimentalSockets bool

	// ExperimentalSignals permits cross-process signals inside the
	// container (§5.4's "in principle, fully reproducible via a logical
	// clock"): delivery happens at the receiver's next scheduler-ordered
	// stop, which is a pure function of logical history. [input]
	ExperimentalSignals bool

	// Downloads declares the container's permitted external fetches (§3:
	// "downloading files with known checksums"): URL -> expected content.
	// The fetch pseudo-syscall verifies the SHA-256 before any byte is
	// visible; an undeclared or corrupt fetch aborts reproducibly. [input]
	Downloads map[string]Download

	// LogRealRandom implements the §5.2 escape hatch for applications that
	// need true randomness: getrandom and /dev/[u]random serve real host
	// entropy, and every byte is logged into Result.RandomLog so the run
	// can be reproduced later by replaying the log. [input when replayed]
	LogRealRandom bool
	// RandomReplay, when non-nil, replays a previously captured RandomLog
	// instead of drawing fresh entropy. Runs that exhaust the log get more
	// LFSR bytes (and are flagged in the result). [input]
	RandomReplay []byte

	// HaltAtLTime / HaltAtAction, when > 0, stop the run at the first
	// traced-stop boundary where the logical clock (resp. the processed-
	// action count) has reached the given value; the Result reports
	// Halted with the state at that instant. These are the time-travel
	// debugger's seek primitives (internal/ttd). Debug knobs like Debug
	// itself — a halted replay observes a strict prefix of the run, its
	// result never enters any cache — so both stay out of ConfigHash;
	// that is also what lets a seek resume pass checkpoint validation
	// (recoveryHash) while halting early.
	HaltAtLTime  int64
	HaltAtAction int64

	// Debug receives a kernel trace when non-nil (the --debug flag).
	Debug func(format string, args ...any)
}

// Download is one declared external file: content pinned by checksum.
type Download struct {
	Data   []byte
	SHA256 string // hex digest the content must match
}

// UnsupportedError is the reproducible container-level error DetTrace raises
// for operations outside its supported set (§5.9).
type UnsupportedError struct {
	Op string // "socket", "cross-process signal", "busy-wait", or a syscall name
}

func (e *UnsupportedError) Error() string {
	return "dettrace: unsupported operation: " + e.Op
}

// Result captures everything observable about one container run.
type Result struct {
	ExitCode int
	Stdout   string
	Stderr   string
	FS       *fs.Image // final filesystem state
	Err      error     // nil, *UnsupportedError (wrapped), timeout, or deadlock

	WallTime int64 // virtual ns the run took on this host
	// Actions is the kernel's processed-action count at the end of the
	// run — the logical index crash faults and checkpoints schedule on.
	// Deterministic, so crash sweeps can derive in-range injection points
	// from a reference run's value.
	Actions int64
	Stats   kernel.Stats
	Tracer  tracer.Counters // stop/memory counter snapshot

	// RandomLog holds every byte of true randomness served to the
	// container when Config.LogRealRandom was set; feed it back through
	// Config.RandomReplay to reproduce the run (§5.2).
	RandomLog []byte
	// ReplayExhausted reports that a RandomReplay ran out of bytes.
	ReplayExhausted bool

	// SetupNs is real (not virtual) time spent constructing the kernel for
	// this run — populate-from-image on the cold path, COW fork on the
	// template path. Forked reports which path ran. Benchmarking metadata
	// only: never part of the reproducibility-observable output.
	SetupNs int64
	Forked  bool
	// Resumed reports the run was reconstructed from a Checkpoint rather
	// than booted from the start. Like Forked, benchmarking metadata: a
	// resumed result is bitwise identical to the uninterrupted one.
	Resumed bool

	// Halted reports the run stopped at a HaltAtLTime/HaltAtAction debug
	// halt point rather than finishing; LTime is the final logical clock
	// and EntropyDraws the entropy-log cursor (how many numbered draws the
	// container had served) at that instant — the time-travel debugger's
	// inspection hooks.
	Halted       bool
	LTime        int64
	EntropyDraws int

	// Observability metadata, like SetupNs never part of the
	// reproducibility-observable output. Obs is the run's metrics registry
	// (absorb it into a farm registry for roll-ups); Trace the flight
	// recorder (nil under DisableObservability); Events its retained ring
	// and Spans the lifecycle phases (prepare → boot/fork → run → flush).
	Obs    *obs.Registry
	Trace  *obs.Recorder
	Events []obs.Event
	Spans  []obs.Span
}

// Unsupported reports whether the run aborted on an unsupported operation,
// and which one.
func (r *Result) Unsupported() (string, bool) {
	var ue *UnsupportedError
	if errors.As(r.Err, &ue) {
		return ue.Op, true
	}
	return "", false
}

// TimedOut reports whether the run exceeded its virtual deadline.
func (r *Result) TimedOut() bool { return errors.Is(r.Err, kernel.ErrTimeout) }

// Container is the DetTrace tracer: it implements kernel.Policy and owns all
// determinization state.
type Container struct {
	cfg    Config
	k      *kernel.Kernel
	sess   *tracer.Session
	sched  *sched.Scheduler
	filter *seccomp.Filter
	prng   *prng.LFSR

	// Virtual inode and mtime maps (§5.5): real inode -> virtual value,
	// assigned lazily in first-touch order.
	inoMap    map[uint64]uint64
	nextIno   uint64
	mtimeMap  map[uint64]int64
	nextMtime int64

	// PID namespace (§5.1): raw host pid -> virtual pid from 1.
	vpid     map[int]int
	rawPid   map[int]int // inverse
	nextVPID int

	// Per-process rdtsc counts for the §5.8 linear function.
	rdtscCount map[*kernel.Proc]int64

	// In-flight read/write retry state (Fig. 4), per thread.
	rw map[*kernel.Thread]*rwRetry

	// pendingOpen remembers the pre-open existence check (§5.5), per thread.
	pendingOpen map[*kernel.Thread]bool

	interceptCpuid bool

	// snap, when non-nil, is the prepared kernel snapshot this container was
	// forked from (see Template); Run boots it instead of cold-constructing,
	// unless DisableTemplateReuse insists on the cold path.
	snap *kernel.Snapshot

	// §5.2 true-randomness escape hatch state.
	randomLog       []byte
	replayCursor    int
	replayExhausted bool

	// Observability: the per-run metrics registry (always on — it backs
	// Stats and Result.Tracer) and the flight recorder (nil under the
	// DisableObservability ablation; every Record on a nil recorder is a
	// no-op). entropyDraws numbers fillRandom calls for KindEntropy events
	// and the FaultInjectEntropy hook; spans collects lifecycle phases.
	obs          *obs.Registry
	rec          *obs.Recorder
	entropyDraws int
	spans        []obs.Span

	// checkpoints numbers the seals handed to CheckpointSink (1-based
	// ordinal); a resumed container continues the sealed run's numbering.
	checkpoints int

	// Workspace-consistency state (ISSUE 7): ws maps each thread to its
	// outstanding private workspace, forked lazily at the first concurrent
	// compute burst of a phase and merged back at the thread's next sync
	// point. The counters land on the per-run registry for the farm roll-up.
	ws          map[*kernel.Thread]*fs.Workspace
	wsForks     *obs.Counter
	wsMerges    *obs.Counter
	wsConflicts *obs.Counter
}

// fillRandom services one randomness request per the container's policy:
// seeded LFSR by default; logged host entropy or a replayed log when the
// §5.2 escape hatch is enabled. Every draw is numbered, optionally
// fault-perturbed (FaultInjectEntropy), and recorded as a KindEntropy event
// whose digest reflects the bytes the guest actually saw.
func (c *Container) fillRandom(p []byte) {
	switch {
	case c.cfg.RandomReplay != nil:
		n := copy(p, c.cfg.RandomReplay[c.replayCursor:])
		c.replayCursor += n
		if n < len(p) {
			c.replayExhausted = true
			c.prng.Fill(p[n:])
		}
	case c.cfg.LogRealRandom:
		c.k.HW.Entropy.Fill(p)
		c.randomLog = append(c.randomLog, p...)
	default:
		c.prng.Fill(p)
	}
	c.entropyDraws++
	if c.cfg.FaultInjectEntropy > 0 && c.entropyDraws == c.cfg.FaultInjectEntropy && len(p) > 0 {
		p[0] ^= 0x80
	}
	c.rec.Record(c.k.LNow(), obs.KindEntropy, 0, 0,
		uint64(c.entropyDraws)<<32|uint64(len(p)&0xffffffff),
		int64(obs.DigestBytes(p)))
}

type rwRetry struct {
	orig  []byte
	total int64
}

// normalizeConfig fills the defaulted Config fields in place; New and
// NewTemplate must agree on them so ConfigHash is stable.
func normalizeConfig(cfg *Config) {
	if cfg.Profile == nil {
		cfg.Profile = machine.CloudLabC220G5()
	}
	if cfg.LogicalEpoch == 0 {
		cfg.LogicalEpoch = DefaultLogicalEpoch
	}
}

// filterFor compiles the seccomp verdict table for a config. The table is
// immutable once built, so a Template compiles it once and every forked
// container shares it.
func filterFor(cfg Config) *seccomp.Filter {
	switch {
	case cfg.DisableSeccomp:
		// No seccomp, no buffer: without the filter there is no untraced
		// path for the wrapper to run on, so every call stops twice.
		return seccomp.TraceAll()
	case cfg.DisableSyscallBuf:
		return seccomp.DetTrace()
	default:
		return seccomp.DetTraceBuffered()
	}
}

// New assembles a container and its kernel, ready to Run.
func New(cfg Config) *Container {
	normalizeConfig(&cfg)
	return newContainer(cfg, filterFor(cfg))
}

// newContainer wires the per-run container state around a (possibly shared)
// precompiled seccomp filter. cfg must already be normalized.
func newContainer(cfg Config, filter *seccomp.Filter) *Container {
	c := &Container{
		cfg:         cfg,
		sched:       sched.New(),
		prng:        prng.NewLFSR(cfg.PRNGSeed),
		filter:      filter,
		inoMap:      make(map[uint64]uint64),
		nextIno:     2, // inode 1 is conventionally reserved
		mtimeMap:    make(map[uint64]int64),
		vpid:        make(map[int]int),
		rawPid:      make(map[int]int),
		nextVPID:    1,
		rdtscCount:  make(map[*kernel.Proc]int64),
		rw:          make(map[*kernel.Thread]*rwRetry),
		pendingOpen: make(map[*kernel.Thread]bool),
		ws:          make(map[*kernel.Thread]*fs.Workspace),
	}
	if cfg.SpinLimit > 0 {
		c.sched.SpinLimit = cfg.SpinLimit
	}
	c.sched.Workspace = !cfg.DisableWorkspaces
	c.obs = obs.NewRegistry()
	c.wsForks = c.obs.Counter("workspace_forks")
	c.wsMerges = c.obs.Counter("workspace_merges")
	c.wsConflicts = c.obs.Counter("workspace_conflicts")
	if !cfg.DisableObservability {
		c.rec = obs.NewRecorder(cfg.RingEvents)
	}
	c.sched.Rec = c.rec
	c.sess = tracer.NewSessionOn(c.obs, cfg.Profile.SeccompSingleStop && !cfg.DisableSeccomp)
	c.interceptCpuid = !cfg.DisableCpuidTrap && cfg.Profile.SupportsCpuidInterception()
	return c
}

// Run executes path inside the container with the given argv/env, resolving
// programs against reg. It blocks until the container finishes.
func (c *Container) Run(reg *guest.Registry, path string, argv, env []string) *Result {
	setupStart := time.Now()
	var kcheck func(*kernel.Checkpoint, *kernel.Thread)
	if c.cfg.CheckpointSink != nil {
		kcheck = c.sealCheckpoint
	}
	var k *kernel.Kernel
	forked := c.snap != nil && !c.cfg.DisableTemplateReuse
	if forked {
		k = c.snap.Boot(kernel.BootConfig{
			Seed:          c.cfg.HostSeed,
			Epoch:         c.cfg.Epoch,
			Policy:        c,
			Resolver:      reg.Resolver(),
			Deadline:      c.cfg.Deadline,
			NumCPU:        c.cfg.NumCPU,
			Obs:           c.obs,
			Rec:           c.rec,
			CrashAtAction: c.cfg.FaultInjectCrash,
			Checkpointer:  kcheck,
			DeltaSeals:    !c.cfg.DisableDeltaSeals,
			HaltAtAction:  c.cfg.HaltAtAction,
			HaltAtLTime:   c.cfg.HaltAtLTime,
		})
	} else {
		k = kernel.New(kernel.Config{
			Profile:       c.cfg.Profile,
			Seed:          c.cfg.HostSeed,
			Epoch:         c.cfg.Epoch,
			Image:         c.cfg.Image,
			Policy:        c,
			Resolver:      reg.Resolver(),
			Deadline:      c.cfg.Deadline,
			NumCPU:        c.cfg.NumCPU,
			Obs:           c.obs,
			Rec:           c.rec,
			CrashAtAction: c.cfg.FaultInjectCrash,
			Checkpointer:  kcheck,
			DeltaSeals:    !c.cfg.DisableDeltaSeals,
			HaltAtAction:  c.cfg.HaltAtAction,
			HaltAtLTime:   c.cfg.HaltAtLTime,
		})
	}
	setupNs := time.Since(setupStart).Nanoseconds()
	c.k = k
	setupSpan := "boot"
	if forked {
		setupSpan = "fork"
		if c.rec != nil {
			// COW data breaks are mechanism-level events: they exist only
			// on the template path, so the diagnoser skips their kind.
			k.FS.OnCOWBreak = func(bytes int64) {
				c.rec.Record(k.LNow(), obs.KindCOWBreak, 0, 0, uint64(bytes), 0)
			}
		}
	}
	c.spans = append(c.spans, obs.Span{Name: setupSpan, RealNs: setupNs})
	if c.cfg.Debug != nil {
		k.SetDebug(c.cfg.Debug)
	}
	c.registerContainerDevices(k)

	// Init execs the requested command so the OnExec hook (vDSO, traps,
	// scratch page) fires exactly as it would for any process.
	init := func(t *kernel.Thread) int {
		p := &guest.Proc{T: t}
		if err := p.Exec(path, argv, env); err != abi.OK {
			p.Eprintf("dettrace: exec %s: %s\n", path, err)
			return 127
		}
		return 127 // unreachable
	}
	proc := k.Start(init, argv, env)
	// Namespace root: the invoking user maps to root; cwd is the bind-
	// mounted working directory when the image provides /build.
	proc.UID, proc.GID = 0, 0
	c.vpid[proc.PID] = c.nextVPID
	c.rawPid[c.nextVPID] = proc.PID
	c.nextVPID++
	c.armProcess(proc)
	wd := c.cfg.WorkingDir
	if wd == "" {
		wd = "/build"
	}
	if n, err := k.ResolveInode(proc, wd, true); err == abi.OK && n.IsDir() {
		proc.Cwd = n
		proc.CwdPath = wd
	}

	runStart := time.Now()
	runErr := k.Run()
	c.spans = append(c.spans, obs.Span{
		Name: "run", RealNs: time.Since(runStart).Nanoseconds(), LEnd: k.LNow(),
	})
	flushStart := time.Now()
	res := c.assembleResult(proc, runErr)
	res.SetupNs = setupNs
	res.Forked = forked
	c.spans = append(c.spans, obs.Span{
		Name: "flush", RealNs: time.Since(flushStart).Nanoseconds(),
	})
	res.Spans = c.spans
	return res
}

// registerContainerDevices mounts the determinized device set into the
// kernel; shared by the boot path (Run) and the checkpoint path (Resume),
// which must agree exactly for resumed reads to be bitwise faithful.
func (c *Container) registerContainerDevices(k *kernel.Kernel) {
	// The container's /dev/[u]random are fed from the seeded LFSR (§5.2),
	// or from logged/replayed true randomness when configured.
	k.RegisterDevice("urandom", func() fs.Device { return kernel.FillFunc(c.fillRandom) })
	k.RegisterDevice("random", func() fs.Device { return kernel.FillFunc(c.fillRandom) })

	// /proc reports the same canonical uniprocessor the cpuid mask and
	// sysinfo do (§5.8): no host identity reaches readers of these files.
	k.RegisterDevice("proc:cpuinfo", kernel.TextFile(func() string {
		return "processor\t: 0\nmodel name\t: DetTrace Virtual CPU @ 2.00GHz\nflags\t\t: fpu sse2\n\n"
	}))
	k.RegisterDevice("proc:uptime", kernel.TextFile(func() string {
		// Logical uptime: one "second" per time query, like §5.3's clock.
		return fmt.Sprintf("%d.00 %d.00\n", c.timeQueries(), c.timeQueries())
	}))
	k.RegisterDevice("proc:meminfo", kernel.TextFile(func() string {
		return "MemTotal:        4194304 kB\nMemFree:         2097152 kB\n"
	}))
	k.RegisterDevice("proc:version", kernel.TextFile(func() string {
		return "Linux version 4.0.0-dettrace (dettrace@dettrace) #1 SMP\n"
	}))
}

// assembleResult builds the reproducibility-observable Result from the
// finished kernel. Shared by Run and Resume; callers layer their own
// benchmarking metadata (SetupNs, Forked, Resumed, Spans) on top.
func (c *Container) assembleResult(proc *kernel.Proc, runErr error) *Result {
	k := c.k
	counters := c.sess.Counters()
	res := &Result{
		ExitCode: proc.ExitCode(),
		Stdout:   k.Console.Stdout(),
		Stderr:   k.Console.Stderr(),
		FS:       k.FS.SnapshotImage(k.FS.Root),
		Err:      runErr,
		WallTime: k.Now(),
		Actions:  k.Actions(),
		Stats:    k.Stats,
		Tracer:   counters,
	}
	res.Stats.MemReads = counters.MemReads
	res.Stats.MemWrites = counters.MemWrites
	res.RandomLog = c.randomLog
	res.ReplayExhausted = c.replayExhausted
	res.Halted = errors.Is(runErr, kernel.ErrHalted)
	if res.Halted {
		res.Err = nil // a reached halt point is the requested result
	}
	res.LTime = k.LNow()
	res.EntropyDraws = c.entropyDraws
	var ab *kernel.AbortError
	if errors.As(runErr, &ab) {
		res.Err = fmt.Errorf("dettrace: %w", ab.Err)
	}
	res.Obs = c.obs
	res.Trace = c.rec
	res.Events = c.rec.Events()
	return res
}

// armProcess configures instruction trapping and the replaced vDSO for a
// process, as DetTrace does after attach and after every execve.
func (c *Container) armProcess(p *kernel.Proc) {
	p.Trap.TSCTrap = true
	p.Trap.CpuidTrap = c.interceptCpuid
	if !c.cfg.DisableVdso {
		p.VdsoReplaced = true
		p.VdsoLogical = c.cfg.FastVdso
		c.sess.WriteMem(p.Weight, 1) // patching the vDSO page
	}
	p.ScratchPage = true
	c.sess.WriteMem(p.Weight, 1) // mapping the scratch page
	p.DisableASLR()
}

// timeQueries sums logical-clock advancement across the container, the
// deterministic stand-in for uptime.
func (c *Container) timeQueries() int64 { return c.nextMtime + int64(c.nextVPID) }

// virtIno returns (assigning lazily) the virtual inode for a real one.
func (c *Container) virtIno(real uint64) uint64 {
	if v, ok := c.inoMap[real]; ok {
		return v
	}
	v := c.nextIno
	c.nextIno++
	c.inoMap[real] = v
	return v
}

// newFileInode (re)assigns a fresh virtual inode and the next virtual mtime
// for a file DetTrace observed being created — even if the OS recycled a
// real inode number (§5.5).
func (c *Container) newFileInode(real uint64) {
	v := c.nextIno
	c.nextIno++
	c.inoMap[real] = v
	c.nextMtime++
	c.mtimeMap[real] = c.nextMtime
}

// virtMtime returns the virtual mtime (seconds) for a real inode; inodes
// from the initial image report 0.
func (c *Container) virtMtime(real uint64) int64 { return c.mtimeMap[real] }

// virtDirSize is the machine-independent directory size function added for
// §7.3 portability: a deterministic function of the entry count alone.
func virtDirSize(entries int) int64 { return 4096 * (1 + int64(entries)/128) }
