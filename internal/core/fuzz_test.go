package core_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/abi"
	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/hashdeep"
)

// interpret turns an opcode script into a guest program: a randomized walk
// over the container ABI. Every opcode touches at least one taxonomy row, so
// quick.Check effectively fuzzes the determinization layer.
func interpret(script []uint16) guest.Program {
	return func(p *guest.Proc) int {
		fd := -1
		var children []int
		for i, op := range script {
			arg := int(op >> 4)
			switch op % 14 {
			case 0:
				p.Printf("t%d ", p.Time())
			case 1:
				buf := make([]byte, 1+arg%9)
				p.GetRandom(buf)
				p.Printf("r%x ", buf)
			case 2:
				p.Printf("p%d ", p.Getpid())
			case 3:
				p.MkdirAll(fmt.Sprintf("/tmp/d%d", arg%7), 0o755)
			case 4:
				p.WriteFile(fmt.Sprintf("/tmp/f%d", arg%9), []byte(fmt.Sprintf("v%d", i)), 0o644)
			case 5:
				ents, _ := p.ReadDir("/tmp")
				p.Printf("n%d ", len(ents))
				for _, e := range ents {
					p.Printf("%s,", e.Name)
				}
			case 6:
				st, err := p.Stat(fmt.Sprintf("/tmp/f%d", arg%9))
				if err == abi.OK {
					p.Printf("i%d,m%d ", st.Ino, st.Mtime.Sec)
				}
			case 7:
				p.Printf("c%d ", p.Rdtsc())
			case 8:
				p.Printf("q%x ", p.Cpuid(uint32(arg%8)).Leaf.EBX)
			case 9:
				p.Printf("a%x ", p.Mmap(4096))
			case 10:
				id := arg
				pid, err := p.Fork(func(c *guest.Proc) int {
					c.Compute(int64(1000 * (id%5 + 1)))
					c.AppendFile("/tmp/shared.log", []byte(fmt.Sprintf("<%d>", id%16)), 0o644)
					return id % 64
				})
				if err == abi.OK {
					children = append(children, pid)
				}
			case 11:
				if len(children) > 0 {
					wr, err := p.Wait()
					if err == abi.OK {
						p.Printf("w%d:%d ", wr.PID, wr.Status.ExitCode())
					}
					children = children[1:]
				}
			case 12:
				if fd < 0 {
					fd, _ = p.Open("/tmp/stream", abi.OCreat|abi.ORdwr, 0o644)
				}
				p.Write(fd, []byte{byte(op)})
			case 13:
				p.Nanosleep(int64(arg) * 1e6)
			}
		}
		for range children {
			p.Wait()
		}
		if fd >= 0 {
			p.Close(fd)
		}
		return 0
	}
}

// TestFuzzDeterminismAcrossHosts is the container guarantee as a property:
// for any program over the ABI, two hosts that differ in machine, entropy,
// clock and core count produce bitwise-identical results.
func TestFuzzDeterminismAcrossHosts(t *testing.T) {
	prop := func(script []uint16) bool {
		prog := interpret(script)
		a := runDT(t, hostA, core.Config{PRNGSeed: 99}, prog)
		b := runDT(t, hostB, core.Config{PRNGSeed: 99}, prog)
		if a.Err != nil || b.Err != nil {
			// Only reproducible container errors are acceptable, and they
			// must agree.
			return fmt.Sprint(a.Err) == fmt.Sprint(b.Err)
		}
		if a.Stdout != b.Stdout {
			t.Logf("stdout diverged for script %v:\nA: %s\nB: %s", script, a.Stdout, b.Stdout)
			return false
		}
		ha := hashdeep.HashSubtree(a.FS, "/tmp").Total()
		hb := hashdeep.HashSubtree(b.FS, "/tmp").Total()
		if ha != hb {
			t.Logf("fs diverged for script %v", script)
			return false
		}
		return true
	}
	n := 120
	if testing.Short() {
		n = 25
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: n}); err != nil {
		t.Error(err)
	}
}

// TestFuzzRunsAreIdempotent: the same host twice is the weaker determinism
// property (§3's "determinism"); it must also hold.
func TestFuzzRunsAreIdempotent(t *testing.T) {
	prop := func(script []uint16) bool {
		prog := interpret(script)
		a := runDT(t, hostA, core.Config{PRNGSeed: 3}, prog)
		b := runDT(t, hostA, core.Config{PRNGSeed: 3}, prog)
		return a.Stdout == b.Stdout
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
