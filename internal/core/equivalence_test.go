package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/hashdeep"
	"repro/internal/machine"
)

// Equivalence properties: configuration knobs that change *performance* must
// never change *results*.

func busyProgram(p *guest.Proc) int {
	for i := 0; i < 60; i++ {
		p.WriteFile("/tmp/f", []byte{byte(i)}, 0o644)
		st, _ := p.Stat("/tmp/f")
		p.Printf("%d:%d ", st.Ino, p.Time())
		if i%7 == 0 {
			p.Fork(func(c *guest.Proc) int { c.Compute(1000); return 0 })
			p.Wait()
		}
	}
	return 0
}

func fingerprint(r *core.Result) string {
	return r.Stdout + "|" + hashdeep.HashSubtree(r.FS, "/tmp").Total()
}

func TestSeccompOnOffEquivalence(t *testing.T) {
	on := runDT(t, hostA, core.Config{}, busyProgram)
	off := runDT(t, hostA, core.Config{DisableSeccomp: true}, busyProgram)
	if on.Err != nil || off.Err != nil {
		t.Fatalf("runs failed: %v / %v", on.Err, off.Err)
	}
	if fingerprint(on) != fingerprint(off) {
		t.Errorf("seccomp changed results — it may only change cost (§5.11)")
	}
	if off.WallTime <= on.WallTime {
		t.Errorf("no-seccomp should be slower: %d vs %d", off.WallTime, on.WallTime)
	}
}

func TestFastVdsoEquivalenceUnderLoad(t *testing.T) {
	prog := func(p *guest.Proc) int {
		for i := 0; i < 100; i++ {
			p.Printf("%d.", p.VdsoNow()/1e9%1000)
		}
		return 0
	}
	slow := runDT(t, hostA, core.Config{}, prog)
	fast := runDT(t, hostA, core.Config{FastVdso: true}, prog)
	if slow.Stdout != fast.Stdout {
		t.Errorf("FastVdso changed values")
	}
}

// Pre-4.8 kernels lack the combined seccomp/ptrace stop, so every
// intercepted call costs two stops (§5.11): same results, more time.
func TestPre48KernelFallbackSlower(t *testing.T) {
	legacy := host{machine.LegacySandyBridge(), 0x600D, 1_450_000_000, 0}
	modern := hostA
	l := runDT(t, legacy, core.Config{}, busyProgram)
	m := runDT(t, modern, core.Config{}, busyProgram)
	if l.Err != nil || m.Err != nil {
		t.Fatalf("runs failed: %v / %v", l.Err, m.Err)
	}
	// Results identical across the kernel generations...
	if fingerprint(l) != fingerprint(m) {
		t.Errorf("kernel generation changed results")
	}
	// ...but the old kernel pays double stops.
	if l.Tracer.Stops <= m.Tracer.Stops {
		t.Errorf("pre-4.8 fallback should take more stops: %d vs %d", l.Tracer.Stops, m.Tracer.Stops)
	}
	if l.WallTime <= m.WallTime {
		t.Errorf("pre-4.8 fallback should be slower: %d vs %d", l.WallTime, m.WallTime)
	}
}

// Debug tracing must be behaviour-free.
func TestDebugTracingEquivalence(t *testing.T) {
	quiet := runDT(t, hostA, core.Config{}, busyProgram)
	noisy := runDT(t, hostA, core.Config{Debug: func(string, ...any) {}}, busyProgram)
	if fingerprint(quiet) != fingerprint(noisy) {
		t.Errorf("debug tracing changed results")
	}
}
