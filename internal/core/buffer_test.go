package core_test

import (
	"testing"

	"repro/internal/abi"
	"repro/internal/core"
	"repro/internal/guest"
)

// The in-tracee syscall buffer is a performance mechanism only: every test
// here runs the same buffered-call-heavy workload and requires bitwise
// identical observables with the buffer on, off, and across hosts — while the
// cost accounting must show the stops actually disappearing.

// bufferHeavyProgram leans on every Buffer-verdict syscall — the time family,
// the pid family, lseek, fcntl, umask, getcwd — with periodic traced calls
// and process churn so all three flush points (full buffer, traced call,
// thread exit) are exercised.
func bufferHeavyProgram(p *guest.Proc) int {
	p.Umask(0o022)
	fd, err := p.Open("/tmp/buf.dat", abi.OCreat|abi.ORdwr, 0o644)
	if err != abi.OK {
		return 1
	}
	p.Write(fd, []byte("0123456789abcdef"))
	for i := 0; i < 200; i++ {
		p.Printf("%d:%d:%d:%d ", p.Time(), p.Getpid(), p.Getppid(), p.Gettid())
		if off, err := p.Lseek(fd, int64(i%16), 0); err != abi.OK || off != int64(i%16) {
			return 2
		}
		p.Fcntl(fd, 3, 0) // F_GETFL
		if cwd, err := p.Getcwd(); err != abi.OK || cwd == "" {
			return 3
		}
		if st, err := p.Fstat(fd); err != abi.OK || st.Size != 16 {
			return 4
		}
		if i%64 == 0 {
			// Traced calls and a fork: drain-at-stop flush points, plus a
			// child whose exit flushes its own buffer.
			p.WriteFile("/tmp/f", []byte{byte(i)}, 0o644)
			p.Fork(func(c *guest.Proc) int {
				c.Printf("[child %d@%d]", c.Getpid(), c.Time())
				return 0
			})
			p.Wait()
		}
	}
	p.Close(fd)
	return 0
}

func TestSyscallBufferOnOffEquivalence(t *testing.T) {
	on := runDT(t, hostA, core.Config{}, bufferHeavyProgram)
	off := runDT(t, hostA, core.Config{DisableSyscallBuf: true}, bufferHeavyProgram)
	if on.Err != nil || off.Err != nil || on.ExitCode != 0 || off.ExitCode != 0 {
		t.Fatalf("runs failed: %v (exit %d) / %v (exit %d)", on.Err, on.ExitCode, off.Err, off.ExitCode)
	}
	if fingerprint(on) != fingerprint(off) {
		t.Errorf("syscall buffering changed results — it may only change cost")
	}
	if on.Tracer.BufferedCalls == 0 {
		t.Errorf("no calls went through the buffer in the buffered run")
	}
	if off.Tracer.BufferedCalls != 0 || off.Tracer.Flushes != 0 {
		t.Errorf("ablated run still buffered: %d calls, %d flushes",
			off.Tracer.BufferedCalls, off.Tracer.Flushes)
	}
	if on.Tracer.Stops >= off.Tracer.Stops {
		t.Errorf("buffering should eliminate stops: %d vs %d", on.Tracer.Stops, off.Tracer.Stops)
	}
	if on.WallTime >= off.WallTime {
		t.Errorf("buffering should be faster: %d vs %d", on.WallTime, off.WallTime)
	}
}

// The determinism meta-test for the buffer: observables are a pure function
// of container inputs, whatever the host looks like and whether the buffer
// is on.
func TestSyscallBufferDeterminismAcrossHosts(t *testing.T) {
	a := runDT(t, hostA, core.Config{}, bufferHeavyProgram)
	b := runDT(t, hostB, core.Config{}, bufferHeavyProgram)
	bOff := runDT(t, hostB, core.Config{DisableSyscallBuf: true}, bufferHeavyProgram)
	if a.Err != nil || b.Err != nil || bOff.Err != nil {
		t.Fatalf("runs failed: %v / %v / %v", a.Err, b.Err, bOff.Err)
	}
	if fingerprint(a) != fingerprint(b) {
		t.Errorf("buffered run differs across hosts")
	}
	if fingerprint(a) != fingerprint(bOff) {
		t.Errorf("buffered run on host A differs from unbuffered run on host B")
	}
}

// A thread looping on buffered calls never visits the scheduler between
// flushes; the forced flush at buffer capacity must still hand the execution
// token to starved siblings instead of spinning forever.
func TestBufferedLoopDoesNotStarveSiblings(t *testing.T) {
	res := runDT(t, hostA, core.Config{}, func(p *guest.Proc) int {
		done := false
		p.CloneThread(func(q *guest.Proc) int {
			done = true
			return 0
		})
		// Buffered calls only; without token handoff at flush points the
		// sibling would never run and this would abort as a busy-wait.
		for i := 0; i < 5000 && !done; i++ {
			p.Time()
		}
		if !done {
			return 1
		}
		return 0
	})
	if res.Err != nil || res.ExitCode != 0 {
		t.Errorf("buffered loop starved its sibling: err=%v exit=%d", res.Err, res.ExitCode)
	}
}
