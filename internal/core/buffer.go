package core

import (
	"repro/internal/abi"
	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/seccomp"
)

// This file is DetTrace's in-tracee syscall buffer: the rr-style fast path
// for light intercepted calls. The injected wrapper library services a
// Buffer-verdict call in-process — no ptrace stop, no tracer round trip —
// appends a record to a per-thread buffer, and lets the accumulated records
// reach the tracer in one batched flush.
//
// Determinism argument (see DESIGN.md "The in-tracee syscall buffer"):
// every buffered answer is computed from container state that is itself a
// pure function of logical history (the logical clock, the vpid map, kernel
// fd/cwd state under the determinized schedule), the costs charged are
// constants applied identically to the physical and logical clocks, and
// every flush point — buffer full, any traced call, thread exit — is a pure
// function of the thread's own logical history. Nothing host-visible decides
// when or what to buffer, so results are bitwise identical with the buffer
// on, off, and at any parallelism.

// syscallBufCap is the per-thread record capacity: reaching it forces a
// dedicated flush stop. 64 keeps the amortized stop cost below the per-call
// record cost while bounding how long the tracer's event log lags execution.
const syscallBufCap = 64

// verdictOf returns the seccomp verdict for sc, computing it once per
// in-flight call: the decision is cached on the Syscall record so the entry
// and exit stops (and the fast path before them) share a single table
// lookup.
func (c *Container) verdictOf(sc *abi.Syscall) seccomp.Action {
	if sc.Verdict == 0 {
		sc.Verdict = uint8(c.filter.Decide(sc.Num)) + 1
	}
	return seccomp.Action(sc.Verdict - 1)
}

// BufferSyscall implements kernel.SyscallBufferer: it runs on the guest
// goroutine, before the call would yield to the kernel loop. Claiming the
// call means servicing it completely right here — result, out-buffers, cost
// accounting — with the thread never stopping.
//
// The call is declined (slow path, which flushes and services it at a real
// stop) when the verdict is not Buffer or the buffer is full. The kernel
// additionally keeps the slow path authoritative around signals and thread
// startup.
func (c *Container) BufferSyscall(t *kernel.Thread, sc *abi.Syscall) bool {
	if c.verdictOf(sc) != seccomp.Buffer || t.BufCount >= syscallBufCap {
		return false
	}
	w := t.Proc.Weight
	// The call still enters the kernel natively (seccomp lets it through);
	// the wrapper's bookkeeping rides on top. Both clocks take the same
	// constant, keeping logical ordering in lockstep with physical time.
	cost := c.k.Cost.SyscallBase*w + c.serviceBuffered(t, sc)
	t.Clock += cost
	t.LClock += cost
	return true
}

// serviceBuffered answers one Buffer-verdict call from container state,
// appends its record to the thread's buffer, and returns the tracee-side
// record cost. It must mirror exactly what the traced handlers would have
// produced — the ablation tests compare fingerprints with the buffer off.
func (c *Container) serviceBuffered(t *kernel.Thread, sc *abi.Syscall) int64 {
	p := t.Proc
	switch sc.Num {
	case abi.SysTime:
		// Logical time (§5.3), same counter the traced handler advances.
		sc.Ret = c.logicalSeconds(p)

	case abi.SysGettimeofday, abi.SysClockGettime:
		secs := c.logicalSeconds(p)
		if out, ok := sc.Obj.(*abi.Timespec); ok && out != nil {
			*out = abi.Timespec{Sec: secs}
		}
		sc.Ret = 0

	case abi.SysGetpid:
		c.k.ExecDirect(t, sc)
		if v, ok := c.vpid[int(sc.Ret)]; ok {
			sc.Ret = int64(v)
		}

	case abi.SysGetppid:
		c.k.ExecDirect(t, sc)
		if v, ok := c.vpid[int(sc.Ret)]; ok {
			sc.Ret = int64(v)
		} else {
			sc.Ret = 0 // parent is outside the namespace
		}

	case abi.SysGetTid:
		c.k.ExecDirect(t, sc)
		sc.Ret = int64(1000 + c.sched.VTID(t))

	case abi.SysFstat:
		// The §5.5 metadata virtualization is a pure function of the
		// inode/mtime maps, which only the lockstep-serialized wrapper
		// touches; the stat answer lands in tracee memory without the
		// tracer-side WriteMem round trip. rr's syscallbuf buffers fstat
		// for the same reason — it is the volume win of the whole list.
		c.k.ExecDirect(t, sc)
		if sc.Err() == abi.OK {
			if st, ok := sc.Obj.(*abi.Stat); ok && st != nil {
				c.rewriteStat(t, sc, st)
			}
		}

	default:
		// lseek, fcntl, umask, getcwd: plain kernel services whose answers
		// are already container-deterministic; DetTrace only wants them in
		// the event record. Buffer verdicts are restricted to non-blocking
		// calls, so direct execution cannot park the thread.
		c.k.ExecDirect(t, sc)
	}
	t.BufCount++
	// One event per buffered call, recorded here so the fast path and the
	// slow-path Buffer verdict (buffer full, pending signal) produce the
	// same ring: where a call was serviced is mechanism, not behaviour.
	c.rec.Record(t.LClock, obs.KindBuffered, int32(sc.Num),
		int32(c.vpid[p.PID]), 0, sc.Ret)
	return c.sess.RecordBuffered(p.Weight)
}

// takeBuffered empties the thread's buffer and reports how many records it
// held, for flush-cost accounting.
func takeBuffered(t *kernel.Thread) int64 {
	n := int64(t.BufCount)
	t.BufCount = 0
	return n
}

var _ kernel.SyscallBufferer = (*Container)(nil)
