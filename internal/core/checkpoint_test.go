package core_test

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/abi"
	"repro/internal/baseimg"
	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/hashdeep"
	"repro/internal/kernel"
	"repro/internal/obs"
)

// The crash-consistency contract (DESIGN.md §4d): a run killed at any traced
// stop and resumed from its last checkpoint produces bitwise-identical
// output, flight-recorder ring and rolled-up metrics vs the uninterrupted
// run. These tests drive a staged exec-chain workload — execs are the
// quiescent cut points checkpoints seal at — through crash injection at
// every sampled action index.

// chainStage builds stage n of a staged workload: journal some entropy, churn
// files and inodes, fork a helper on even stages, then exec the next stage.
// Each exec happens with one process, one thread and only console fds open —
// a quiescent traced stop, so it is checkpoint-eligible.
func chainStage(n int) guest.Program {
	return func(p *guest.Proc) int {
		p.Printf("stage%d pid=%d t=%d\n", n, p.Getpid(), p.Time())
		buf := make([]byte, 8)
		p.GetRandom(buf)
		p.AppendFile("/tmp/journal", []byte(fmt.Sprintf("s%d:%x\n", n, buf)), 0o644)
		for i := 0; i < 4; i++ {
			f := fmt.Sprintf("/tmp/s%d_%d", n, i)
			p.WriteFile(f, []byte{byte(n), byte(i)}, 0o644)
			st, _ := p.Stat(f)
			p.Printf("%d:%d ", st.Ino, st.Mtime)
		}
		if n%2 == 0 {
			p.Fork(func(c *guest.Proc) int {
				c.Compute(500)
				c.WriteFile(fmt.Sprintf("/tmp/child%d", n), []byte{byte(n)}, 0o644)
				return 0
			})
			p.Wait()
		} else {
			// Odd stages run a short threaded phase (futex join, §5.7), so
			// the sweep crosses live workspace forks and merges: a crash
			// mid-phase must resume — from the previous exec's quiescent
			// seal — into a kernel that still runs workspaces, or the
			// replayed phase's physical clock diverges from the reference.
			const wordDone = 0x40
			for i := 0; i < 2; i++ {
				idx := i
				p.CloneThread(func(w *guest.Proc) int {
					w.Compute(800)
					w.WriteFile(fmt.Sprintf("/tmp/t%d_%d", n, idx), []byte{byte(n), byte(idx)}, 0o644)
					w.Add(wordDone, 1)
					w.FutexWake(wordDone, 8)
					return 0
				})
			}
			for p.Load(wordDone) < 2 {
				p.FutexWait(wordDone, p.Load(wordDone))
			}
		}
		p.Compute(1000)
		if n == lastStage {
			p.Printf("done t=%d\n", p.Time())
			return 7
		}
		next := fmt.Sprintf("/bin/stage%d", n+1)
		argv := []string{fmt.Sprintf("stage%d", n+1), "ride"}
		env := append(p.Environ(), fmt.Sprintf("STAGE=%d", n+1))
		if err := p.Exec(next, argv, env); err != abi.OK {
			p.Eprintf("exec %s: %s\n", next, err)
			return 1
		}
		return 127
	}
}

const lastStage = 3

func chainRegistry() *guest.Registry {
	reg := guest.NewRegistry()
	for n := 0; n <= lastStage; n++ {
		reg.Register(fmt.Sprintf("stage%d", n), chainStage(n))
	}
	return reg
}

// chainConfig builds the chain workload's config on host h; callers layer
// fault/checkpoint knobs on top before running.
func chainConfig(h host) core.Config {
	img := baseimg.Minimal()
	for n := 0; n <= lastStage; n++ {
		name := fmt.Sprintf("stage%d", n)
		img.AddFile("/bin/"+name, 0o755, guest.MakeExe(name, nil))
	}
	return core.Config{
		Image:    img,
		Profile:  h.profile,
		HostSeed: h.seed,
		Epoch:    h.epoch,
		NumCPU:   h.numCPU,
		Deadline: 3_600_000_000_000,
	}
}

func runChain(cfg core.Config) *core.Result {
	return core.New(cfg).Run(chainRegistry(),
		"/bin/stage0", []string{"stage0"}, []string{"PATH=/bin"})
}

// discardSink turns checkpoints on without keeping the seals. Checkpoint
// markers are mechanism-level ring events (like the template path's COW
// breaks), so full-ring comparisons need both sides sealing at the same
// stops — references for crash/resume comparisons run with this sink.
func discardSink(cfg core.Config) core.Config {
	cfg.CheckpointSink = func(*core.Checkpoint) {}
	return cfg
}

func refChain(t *testing.T, h host) *core.Result {
	t.Helper()
	res := runChain(discardSink(chainConfig(h)))
	if res.Err != nil {
		t.Fatalf("reference run: %v", res.Err)
	}
	return res
}

// bitwise folds everything the crash-consistency contract covers into one
// comparable string: observable output, final filesystem, the flight-recorder
// ring bytes, the rolled-up metrics, and the deterministic run measures.
// Spans/SetupNs/Forked/Resumed are benchmarking metadata, excluded on purpose.
func bitwise(t *testing.T, r *core.Result) string {
	t.Helper()
	var metrics strings.Builder
	if err := r.Obs.WriteProm(&metrics); err != nil {
		t.Fatalf("gather metrics: %v", err)
	}
	return fmt.Sprintf("exit=%d err=%v|%s|%s|%s|ring=%x|%s|wall=%d actions=%d",
		r.ExitCode, r.Err, r.Stdout, r.Stderr,
		hashdeep.HashSubtree(r.FS, "/").Total(),
		r.Trace.MarshalBinary(), metrics.String(), r.WallTime, r.Actions)
}

// bitwiseNoRing is bitwise minus the recorder ring, for comparing runs whose
// checkpoint mechanism configs differ (and whose rings therefore legitimately
// differ by mechanism-level marker events).
func bitwiseNoRing(t *testing.T, r *core.Result) string {
	t.Helper()
	var metrics strings.Builder
	if err := r.Obs.WriteProm(&metrics); err != nil {
		t.Fatalf("gather metrics: %v", err)
	}
	return fmt.Sprintf("exit=%d err=%v|%s|%s|%s|%s|wall=%d actions=%d",
		r.ExitCode, r.Err, r.Stdout, r.Stderr,
		hashdeep.HashSubtree(r.FS, "/").Total(),
		metrics.String(), r.WallTime, r.Actions)
}

// TestCheckpointSinkInvisible pins the mechanism half of the contract:
// attaching a checkpoint sink must not perturb anything the guest (or the
// rolled-up metrics) can observe. The flight-recorder ring is the one
// legitimate difference — it gains mechanism-level KindCheckpoint markers,
// which the diagnoser skips — so the ring is compared marker-filtered.
func TestCheckpointSinkInvisible(t *testing.T) {
	plain := runChain(chainConfig(hostA))
	if plain.Err != nil {
		t.Fatalf("run: %v", plain.Err)
	}
	var seals []*core.Checkpoint
	cfg := chainConfig(hostA)
	cfg.CheckpointSink = func(cp *core.Checkpoint) { seals = append(seals, cp) }
	sealed := runChain(cfg)
	if sealed.Err != nil {
		t.Fatalf("sealed run: %v", sealed.Err)
	}
	if bitwiseNoRing(t, plain) != bitwiseNoRing(t, sealed) {
		t.Errorf("checkpoint sink perturbed the run")
	}
	filter := func(evs []obs.Event) []obs.Event {
		out := evs[:0:0]
		for _, e := range evs {
			if e.Kind != obs.KindCheckpoint {
				out = append(out, e)
			}
		}
		return out
	}
	if !reflect.DeepEqual(filter(plain.Events), filter(sealed.Events)) {
		t.Errorf("sink changed non-checkpoint ring events")
	}
	// Boot exec + three stage execs = four quiescent stops.
	if len(seals) != lastStage+1 {
		t.Fatalf("seals = %d, want %d", len(seals), lastStage+1)
	}
	for i, cp := range seals {
		if cp.Ordinal() != i+1 {
			t.Errorf("seal %d ordinal = %d", i, cp.Ordinal())
		}
		if !cp.Valid() {
			t.Errorf("seal %d failed validation", i)
		}
		if i > 0 && cp.Actions() <= seals[i-1].Actions() {
			t.Errorf("seal actions not increasing: %d then %d",
				seals[i-1].Actions(), cp.Actions())
		}
	}
}

// crashThenResume runs the chain with a crash injected at action n, then
// resumes from the latest checkpoint. Returns the resumed result and the
// checkpoint it recovered from; fails the test if the crash didn't fire.
func crashThenResume(t *testing.T, h host, n int64) (*core.Result, *core.Checkpoint) {
	t.Helper()
	var last *core.Checkpoint
	cfg := chainConfig(h)
	cfg.FaultInjectCrash = n
	cfg.CheckpointSink = func(cp *core.Checkpoint) { last = cp }
	crashed := runChain(cfg)
	if !errors.Is(crashed.Err, kernel.ErrInjectedCrash) {
		t.Fatalf("crash at %d did not fire: err=%v", n, crashed.Err)
	}
	if last == nil {
		t.Fatalf("crash at %d left no checkpoint", n)
	}
	rcfg := chainConfig(h)
	rcfg.CheckpointSink = func(*core.Checkpoint) {}
	res, err := core.Resume(last, chainRegistry(), rcfg)
	if err != nil {
		t.Fatalf("resume from seal %d (action %d): %v", last.Ordinal(), last.Actions(), err)
	}
	return res, last
}

// TestCrashResumeBitwiseEqual is the contract's core case: kill mid-run,
// resume, compare everything.
func TestCrashResumeBitwiseEqual(t *testing.T) {
	ref := refChain(t, hostA)
	res, cp := crashThenResume(t, hostA, ref.Actions/2)
	if !res.Resumed {
		t.Errorf("result not marked Resumed")
	}
	if got, want := bitwise(t, res), bitwise(t, ref); got != want {
		t.Errorf("resumed != uninterrupted\n got: %.300s\nwant: %.300s", got, want)
	}
	// Recovery must beat replay: the resumed run re-executes only the
	// virtual work after the seal.
	if redone := res.WallTime - cp.VirtualNow(); redone >= ref.WallTime {
		t.Errorf("recovery re-executed %d ns >= full run %d ns", redone, ref.WallTime)
	}
}

// TestCrashAtEveryEventSweep is the property-style sweep: for sampled crash
// points across the whole run (always including the edges), resumed must be
// bitwise identical to uninterrupted. Points past the end simply never fire.
func TestCrashAtEveryEventSweep(t *testing.T) {
	ref := refChain(t, hostA)
	want := bitwise(t, ref)
	stride := ref.Actions / 23
	if stride < 1 {
		stride = 1
	}
	// The run loop's crash check sees action counts 0..Actions-1 with work
	// still pending, so Actions-1 is the last index that fires; Actions and
	// beyond never do.
	points := []int64{1, 2, ref.Actions - 1, ref.Actions, ref.Actions + 50}
	for n := stride; n < ref.Actions; n += stride {
		points = append(points, n)
	}
	for _, n := range points {
		if n < 1 {
			continue
		}
		if n >= ref.Actions {
			// At/beyond end-of-run: the fault never fires, the run completes.
			cfg := discardSink(chainConfig(hostA))
			cfg.FaultInjectCrash = n
			res := runChain(cfg)
			if res.Err != nil {
				t.Fatalf("crash at %d (past end) fired: %v", n, res.Err)
			}
			if bitwise(t, res) != want {
				t.Errorf("crash knob past end changed output (n=%d)", n)
			}
			continue
		}
		res, _ := crashThenResume(t, hostA, n)
		if got := bitwise(t, res); got != want {
			t.Errorf("crash at %d: resumed != uninterrupted\n got: %.300s\nwant: %.300s",
				n, got, want)
		}
	}
}

// TestCrashResumeAcrossHosts: recovery preserves host-independence — a run
// crashed and resumed on host B still matches host A's uninterrupted run.
func TestCrashResumeAcrossHosts(t *testing.T) {
	refA := refChain(t, hostA)
	refB := refChain(t, hostB)
	// The full bitwise string includes profile-dependent cost metrics, so
	// cross-host comparison uses the guest-observable fingerprint.
	obsOnly := func(r *core.Result) string {
		return fmt.Sprintf("%d|%s|%s|%s", r.ExitCode, r.Stdout, r.Stderr,
			hashdeep.HashSubtree(r.FS, "/").Total())
	}
	if obsOnly(refA) != obsOnly(refB) {
		t.Fatalf("hosts diverge before any fault")
	}
	res, _ := crashThenResume(t, hostB, refB.Actions/3)
	if obsOnly(res) != obsOnly(refA) {
		t.Errorf("crash+resume on host B diverged from host A")
	}
	if bitwise(t, res) != bitwise(t, refB) {
		t.Errorf("crash+resume on host B diverged from host B's own full run")
	}
}

// TestCheckpointCorruptionRejected: an injected corrupt seal must fail
// validation, and recovery must degrade to a cold replay that still matches.
func TestCheckpointCorruptionRejected(t *testing.T) {
	ref := refChain(t, hostA)
	var seals []*core.Checkpoint
	cfg := chainConfig(hostA)
	cfg.FaultInjectCrash = ref.Actions / 2
	cfg.FaultCorruptCheckpoint = 2
	cfg.CheckpointSink = func(cp *core.Checkpoint) { seals = append(seals, cp) }
	crashed := runChain(cfg)
	if !errors.Is(crashed.Err, kernel.ErrInjectedCrash) {
		t.Fatalf("crash did not fire: %v", crashed.Err)
	}
	if len(seals) < 2 {
		t.Fatalf("want ≥2 seals, got %d", len(seals))
	}
	if seals[1].Valid() {
		t.Fatalf("seal 2 should be corrupt")
	}
	if _, err := core.Resume(seals[1], chainRegistry(), chainConfig(hostA)); !errors.Is(err, core.ErrCheckpointCorrupt) {
		t.Errorf("resume from corrupt seal: err=%v, want ErrCheckpointCorrupt", err)
	}
	// Older seals are unaffected; recovery can fall back to seal 1 …
	res, err := core.Resume(seals[0], chainRegistry(), discardSink(chainConfig(hostA)))
	if err != nil {
		t.Fatalf("resume from seal 1: %v", err)
	}
	if bitwise(t, res) != bitwise(t, ref) {
		t.Errorf("fallback resume diverged")
	}
	// … or degrade all the way to a cold replay.
	cold := runChain(discardSink(chainConfig(hostA)))
	if bitwise(t, cold) != bitwise(t, ref) {
		t.Errorf("cold replay diverged")
	}
}

// TestCheckpointConfigMismatchRejected: a checkpoint only resumes under a
// behaviourally identical config (crash knob excepted).
func TestCheckpointConfigMismatchRejected(t *testing.T) {
	var last *core.Checkpoint
	cfg := chainConfig(hostA)
	cfg.CheckpointSink = func(cp *core.Checkpoint) { last = cp }
	if res := runChain(cfg); res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	bad := chainConfig(hostA)
	bad.PRNGSeed = 0xDEAD
	if _, err := core.Resume(last, chainRegistry(), bad); !errors.Is(err, core.ErrCheckpointMismatch) {
		t.Errorf("seed mismatch: err=%v, want ErrCheckpointMismatch", err)
	}
	// Mechanism knobs may differ: a sinkless recovery of a sinkful run is
	// legal (and still bitwise-faithful, covered by the sweep above).
	if _, err := core.Resume(last, chainRegistry(), chainConfig(hostA)); err != nil {
		t.Errorf("same-config resume rejected: %v", err)
	}
}

// TestResumeChainsCheckpoints: a resumed run keeps sealing; crashing *again*
// after recovery and resuming from the new seal still converges to the
// uninterrupted result (double-fault recovery).
func TestResumeChainsCheckpoints(t *testing.T) {
	ref := refChain(t, hostA)
	var last *core.Checkpoint
	cfg := chainConfig(hostA)
	cfg.FaultInjectCrash = ref.Actions / 3
	cfg.CheckpointSink = func(cp *core.Checkpoint) { last = cp }
	crashed := runChain(cfg)
	if !errors.Is(crashed.Err, kernel.ErrInjectedCrash) {
		t.Fatalf("first crash did not fire: %v", crashed.Err)
	}
	first := last
	// Resume, but crash again later in the run.
	again := chainConfig(hostA)
	again.FaultInjectCrash = 2 * ref.Actions / 3
	again.CheckpointSink = func(cp *core.Checkpoint) { last = cp }
	mid, err := core.Resume(first, chainRegistry(), again)
	if err != nil {
		t.Fatalf("first resume: %v", err)
	}
	if !errors.Is(mid.Err, kernel.ErrInjectedCrash) {
		t.Fatalf("second crash did not fire: %v", mid.Err)
	}
	if last == first {
		t.Fatalf("resumed run sealed no further checkpoints")
	}
	if last.Ordinal() <= first.Ordinal() {
		t.Errorf("ordinals not continued: %d after %d", last.Ordinal(), first.Ordinal())
	}
	final, err := core.Resume(last, chainRegistry(), discardSink(chainConfig(hostA)))
	if err != nil {
		t.Fatalf("second resume: %v", err)
	}
	if bitwise(t, final) != bitwise(t, ref) {
		t.Errorf("double-fault recovery diverged from uninterrupted run")
	}
}
