package core

import (
	"errors"
	"sort"
	"strings"
	"time"

	"repro/internal/abi"
	"repro/internal/derive"
	"repro/internal/fs"
	"repro/internal/guest"
	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/sched"
)

// This file is the container half of crash-consistent checkpoints (ISSUE 5).
// The kernel seals machine state (kernel/checkpoint.go); the container adds
// everything the tracer layered on top — determinization maps, the scheduler
// seal, the container PRNG cursor, the metrics/ring prefix — plus the
// validation data recovery needs: a hash of the behaviour-relevant config and
// a digest of the sealed ring. A resumed run replays nothing: it restores the
// prefix and executes only the suffix, and the determinism contract
// guarantees the result is bitwise identical to the uninterrupted run.

// Checkpoint validation errors.
var (
	// ErrCheckpointMismatch: the resuming config is not behaviourally
	// identical to the sealed run's (modulo the crash-fault knob, which a
	// recovery clears on purpose).
	ErrCheckpointMismatch = errors.New("dettrace: checkpoint does not match the resuming config")
	// ErrCheckpointCorrupt: the checkpoint's ring-prefix digest does not
	// match its contents — the seal was corrupted in storage.
	ErrCheckpointCorrupt = errors.New("dettrace: checkpoint failed validation (ring digest mismatch)")
	// ErrPatchUnapplied: an incremental rebuild asked to amend a path the
	// sealed filesystem does not hold as a regular file. The planner only
	// forks seals for content patches, so this means the patch and the seal
	// disagree about the tree shape — the rebuild must go cold.
	ErrPatchUnapplied = errors.New("dettrace: incremental patch names a file absent from the seal")
)

// Checkpoint is one sealed container state: an opaque recovery token. Like
// kernel.Checkpoint it is immutable and reusable — bounded retries may
// Resume from the same seal repeatedly.
type Checkpoint struct {
	kern      *kernel.Checkpoint
	schedSeal sched.Seal

	prngState uint64

	inoMap    map[uint64]uint64
	nextIno   uint64
	mtimeMap  map[uint64]int64
	nextMtime int64

	vpid     map[int]int
	rawPid   map[int]int
	nextVPID int

	rdtscCount int64 // surviving process's count (sole proc at quiescence)

	entropyDraws    int
	randomLog       []byte
	replayCursor    int
	replayExhausted bool

	regSeal  *obs.Registry // additive snapshot of the run's metrics prefix
	ringSeal *obs.Recorder // flight-recorder prefix

	ordinal      int
	recoveryHash uint64 // ConfigHash minus the crash-fault knob
	ringDigest   uint64 // digest of ringSeal at seal time (corruptible)
}

// RebuildInfo derives the checkpoint's rebuild-planning record from the
// sealed filesystem itself (ISSUE 8). Progress is read off the tree the
// sealed prefix left behind, never off seal position or timing: the driver
// journals each completed phase at pkgdir/debian/.checkpoint-journal before
// re-exec'ing itself, and chunked make's object tree is its own progress
// record — build/<unit>.o exists iff that unit's compile ran in the prefix.
// Reading state this way sidesteps everything salted or scheduled (compile
// order, interleaving): only what was read and written matters, which is
// exactly the derivation the planner's validity rule needs.
func (cp *Checkpoint) RebuildInfo(pkgdir string) derive.SealInfo {
	info := derive.SealInfo{Ordinal: cp.ordinal}
	sealFS := cp.kern.FSSeal()
	if sealFS == nil {
		return info
	}
	ctx := fs.LookupCtx{Root: sealFS.Root, Cwd: sealFS.Root}
	pkgdir = strings.TrimSuffix(pkgdir, "/")
	if _, err := sealFS.Resolve(ctx, pkgdir+"/debian/.checkpoint-journal", true); err == abi.OK {
		info.Configured = true
	}
	if dir, err := sealFS.Resolve(ctx, pkgdir+"/build", true); err == abi.OK && dir.IsDir() {
		sealFS.Walk(dir, func(path string, n *fs.Inode) {
			if !n.IsRegular() || !strings.HasSuffix(path, ".o") || strings.Count(path, "/") != 1 {
				return
			}
			// build/<unit>.o ↔ src/<unit>.c: invert make's object naming.
			info.Units = append(info.Units, strings.TrimSuffix(path[1:], ".o")+".c")
		})
		sort.Strings(info.Units)
	}
	return info
}

// Ordinal returns the checkpoint's 1-based sequence number within its run.
func (cp *Checkpoint) Ordinal() int { return cp.ordinal }

// Actions returns the kernel action count at the seal.
func (cp *Checkpoint) Actions() int64 { return cp.kern.Actions() }

// LNow returns the logical clock at the seal — the checkpoint's position on
// the logical-time axis ttd.Session seeks over.
func (cp *Checkpoint) LNow() int64 { return cp.kern.LNow() }

// Kernel exposes the sealed kernel state for read-only inspection (the
// time-travel debugger's FS view and seal-chain stats).
func (cp *Checkpoint) Kernel() *kernel.Checkpoint { return cp.kern }

// VirtualNow returns the sealed virtual time (ns since boot). A resumed
// run's final WallTime minus this is the virtual work re-executed after
// restore — the X15 MTTR numerator, versus a cold replay's full WallTime.
func (cp *Checkpoint) VirtualNow() int64 { return cp.kern.VirtualNow() }

// Valid recomputes the ring-prefix digest and the filesystem seal chain's
// content digests and compares them to the sealed ones; false means the
// checkpoint — or, for a delta seal, any link it chains through — was
// corrupted after sealing. A corrupted link therefore invalidates every
// later seal chained onto it, and recovery steps down to the newest seal
// whose whole chain validates.
func (cp *Checkpoint) Valid() bool {
	return ringDigestOf(cp.ringSeal) == cp.ringDigest && cp.kern.FSSealChain().ChainValid()
}

// Digest returns the sealed ring-prefix digest — the checkpoint's content
// address in the farm's seal transfer format (internal/farm): a seal travels
// as (image hash, config hash, job, ordinal, digest), and a receiving node
// revalidates the body it fetches against this digest before restoring.
func (cp *Checkpoint) Digest() uint64 { return cp.ringDigest }

// ringDigestOf folds a sealed ring into the validation digest. Nil-safe: a
// DisableObservability seal digests its canonical empty header.
func ringDigestOf(r *obs.Recorder) uint64 { return obs.DigestBytes(r.MarshalBinary()) }

// recoveryHash is the config identity a checkpoint is valid against. The
// crash-fault knob is excluded: the sealed run carried FaultInjectCrash=N by
// construction (that is why it crashed) and the recovery clears it (so the
// resumed run survives); everything else must match exactly.
func recoveryHash(cfg Config) uint64 {
	cfg.FaultInjectCrash = 0
	return ConfigHash(cfg)
}

// sealCheckpoint is the kernel's Checkpointer hook: it runs at a quiescent
// traced stop, with kcp the sealed kernel state and t the surviving thread.
// The KindCheckpoint marker is recorded *before* the ring is cloned so the
// sealed prefix contains its own marker — exactly what the uninterrupted
// run's ring holds at that point.
func (c *Container) sealCheckpoint(kcp *kernel.Checkpoint, t *kernel.Thread) {
	c.checkpoints++
	c.rec.Record(c.k.LNow(), obs.KindCheckpoint, 0, 0, uint64(c.checkpoints), kcp.Actions())
	regSeal := obs.NewRegistry()
	regSeal.Absorb(c.obs)
	cp := &Checkpoint{
		kern:            kcp,
		schedSeal:       c.sched.CheckpointSeal(t),
		prngState:       c.prng.State(),
		inoMap:          make(map[uint64]uint64, len(c.inoMap)),
		nextIno:         c.nextIno,
		mtimeMap:        make(map[uint64]int64, len(c.mtimeMap)),
		nextMtime:       c.nextMtime,
		vpid:            make(map[int]int, len(c.vpid)),
		rawPid:          make(map[int]int, len(c.rawPid)),
		nextVPID:        c.nextVPID,
		rdtscCount:      c.rdtscCount[t.Proc],
		entropyDraws:    c.entropyDraws,
		randomLog:       append([]byte(nil), c.randomLog...),
		replayCursor:    c.replayCursor,
		replayExhausted: c.replayExhausted,
		regSeal:         regSeal,
		ringSeal:        c.rec.CloneState(),
		ordinal:         c.checkpoints,
		recoveryHash:    recoveryHash(c.cfg),
	}
	for k, v := range c.inoMap {
		cp.inoMap[k] = v
	}
	for k, v := range c.mtimeMap {
		cp.mtimeMap[k] = v
	}
	for k, v := range c.vpid {
		cp.vpid[k] = v
	}
	for k, v := range c.rawPid {
		cp.rawPid[k] = v
	}
	cp.ringDigest = ringDigestOf(cp.ringSeal)
	if c.cfg.FaultCorruptCheckpoint > 0 && c.checkpoints == c.cfg.FaultCorruptCheckpoint {
		// Injected checkpoint-write corruption: the stored digests no longer
		// match the contents, so Valid() — and therefore Resume — rejects
		// this seal and recovery must fall back to an older one or cold-boot.
		// Both the ring digest and the filesystem seal digest are flipped:
		// when seals are delta-chained, the fs corruption also poisons every
		// later seal that chains through this one.
		cp.ringDigest ^= 1
		kcp.CorruptFSSeal()
	}
	c.cfg.CheckpointSink(cp)
}

// Resume validates cp against cfg, reconstructs the container at the seal
// point and runs it to completion. cfg must be the sealed run's config with
// FaultInjectCrash cleared (or re-aimed past the seal); mechanism knobs
// (observability, template reuse, checkpoint sinks) may differ freely. The
// returned Result is bitwise identical — output, ring, rolled-up metrics —
// to what the uninterrupted run would have produced.
func Resume(cp *Checkpoint, reg *guest.Registry, cfg Config) (*Result, error) {
	return resume(cp, reg, cfg, nil)
}

// ResumePatched is Resume for incremental rebuilds (ISSUE 8): before the
// suffix runs, the dirty source files are amended — content only, shape
// untouched — into the resumed filesystem. Sound whenever the sealed prefix
// never read any patched file (what derive.PlanRebuild guarantees when it
// picks the seal): the prefix state is then identical to what a cold run of
// the patched image would have reached, and the suffix reads the patched
// bytes exactly as that cold run would. cfg must be the patched run's config
// — in particular cfg.Image the patched image — so the result carries the
// keys a cold build of the patch would carry.
func ResumePatched(cp *Checkpoint, reg *guest.Registry, cfg Config, patch map[string][]byte) (*Result, error) {
	return resume(cp, reg, cfg, patch)
}

func resume(cp *Checkpoint, reg *guest.Registry, cfg Config, patch map[string][]byte) (*Result, error) {
	normalizeConfig(&cfg)
	if recoveryHash(cfg) != cp.recoveryHash {
		return nil, ErrCheckpointMismatch
	}
	if !cp.Valid() {
		return nil, ErrCheckpointCorrupt
	}
	c := newContainer(cfg, filterFor(cfg))

	// Determinization state picks up mid-stream: the PRNG cursor, the
	// first-touch inode/mtime/pid maps and the draw counter all continue
	// exactly where the sealed run left them.
	c.prng.SetState(cp.prngState)
	for k, v := range cp.inoMap {
		c.inoMap[k] = v
	}
	c.nextIno = cp.nextIno
	for k, v := range cp.mtimeMap {
		c.mtimeMap[k] = v
	}
	c.nextMtime = cp.nextMtime
	for k, v := range cp.vpid {
		c.vpid[k] = v
	}
	for k, v := range cp.rawPid {
		c.rawPid[k] = v
	}
	c.nextVPID = cp.nextVPID
	c.entropyDraws = cp.entropyDraws
	c.randomLog = append([]byte(nil), cp.randomLog...)
	c.replayCursor = cp.replayCursor
	c.replayExhausted = cp.replayExhausted
	c.checkpoints = cp.ordinal

	// Observability prefix: absorb the sealed metrics into the fresh
	// registry (counters are additive, so final Gather = prefix + suffix)
	// and restore the ring so it continues byte-for-byte.
	c.obs.Absorb(cp.regSeal)
	c.rec.RestoreState(cp.ringSeal)

	var kcheck func(*kernel.Checkpoint, *kernel.Thread)
	if cfg.CheckpointSink != nil {
		kcheck = c.sealCheckpoint
	}
	setupStart := time.Now()
	k, p, t := kernel.Resume(cp.kern, kernel.BootConfig{
		Policy:        c,
		Resolver:      reg.Resolver(),
		Deadline:      cfg.Deadline,
		Obs:           c.obs,
		Rec:           c.rec,
		CrashAtAction: cfg.FaultInjectCrash,
		Checkpointer:  kcheck,
		DeltaSeals:    !cfg.DisableDeltaSeals,
		HaltAtAction:  cfg.HaltAtAction,
		HaltAtLTime:   cfg.HaltAtLTime,
	})
	setupNs := time.Since(setupStart).Nanoseconds()
	c.k = k
	if c.rec != nil {
		// COW flags survive sealing, so a resumed fork-path run fires the
		// same break events at the same writes the original would have.
		k.FS.OnCOWBreak = func(bytes int64) {
			c.rec.Record(k.LNow(), obs.KindCOWBreak, 0, 0, uint64(bytes), 0)
		}
	}
	if cfg.Debug != nil {
		k.SetDebug(cfg.Debug)
	}
	c.registerContainerDevices(k)
	c.rdtscCount[p] = cp.rdtscCount
	c.sched.RestoreSeal(cp.schedSeal, t)

	// Amend the incremental patch into the resumed filesystem before any
	// guest instruction runs: the restored thread is parked at its sealed
	// stop until k.Run(), so the suffix cannot observe the mutation happen —
	// it simply reads the patched bytes, as a cold run of the patched image
	// would have.
	for path, data := range patch {
		if !c.k.FS.Amend(path, data) {
			return nil, ErrPatchUnapplied
		}
	}
	c.spans = append(c.spans, obs.Span{Name: "resume", RealNs: setupNs})

	runStart := time.Now()
	runErr := k.Run()
	c.spans = append(c.spans, obs.Span{
		Name: "run", RealNs: time.Since(runStart).Nanoseconds(), LEnd: k.LNow(),
	})
	flushStart := time.Now()
	res := c.assembleResult(p, runErr)
	res.SetupNs = setupNs
	res.Resumed = true
	c.spans = append(c.spans, obs.Span{
		Name: "flush", RealNs: time.Since(flushStart).Nanoseconds(),
	})
	res.Spans = c.spans
	return res, nil
}
