package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/guest"
)

// Each ablation switch reopens a specific leak from the §5 taxonomy; these
// tests demonstrate the leak and that the full configuration closes it.

func inodeProgram(p *guest.Proc) int {
	p.WriteFile("/tmp/a", []byte("a"), 0o644)
	p.WriteFile("/tmp/b", []byte("b"), 0o644)
	sa, _ := p.Stat("/tmp/a")
	sb, _ := p.Stat("/tmp/b")
	p.Printf("%d %d", sa.Ino, sb.Ino)
	return 0
}

func TestInodeVirtAblation(t *testing.T) {
	a := runDT(t, hostA, core.Config{DisableInodeVirt: true}, inodeProgram)
	b := runDT(t, hostB, core.Config{DisableInodeVirt: true}, inodeProgram)
	if a.Stdout == b.Stdout {
		t.Skip("host inode bases coincided for these seeds")
	}
	a = runDT(t, hostA, core.Config{}, inodeProgram)
	b = runDT(t, hostB, core.Config{}, inodeProgram)
	if a.Stdout != b.Stdout {
		t.Errorf("inode virtualization failed: %q vs %q", a.Stdout, b.Stdout)
	}
}

func TestInodeRecyclingGetsFreshVirtualInode(t *testing.T) {
	res := runDT(t, hostA, core.Config{}, func(p *guest.Proc) int {
		p.WriteFile("/tmp/x", []byte("1"), 0o644)
		st1, _ := p.Stat("/tmp/x")
		p.Unlink("/tmp/x")
		// The kernel recycles the real inode; DetTrace must not reuse the
		// virtual one (§5.5).
		p.WriteFile("/tmp/y", []byte("2"), 0o644)
		st2, _ := p.Stat("/tmp/y")
		p.Printf("%d %d", st1.Ino, st2.Ino)
		if st1.Ino == st2.Ino {
			return 1
		}
		return 0
	})
	if res.ExitCode != 0 {
		t.Errorf("recycled real inode aliased a virtual inode: %s", res.Stdout)
	}
}

func readdirProgram(p *guest.Proc) int {
	for _, n := range []string{"epsilon", "alpha", "mu", "beta"} {
		p.WriteFile("/tmp/"+n, nil, 0o644)
	}
	ents, _ := p.ReadDir("/tmp")
	for _, e := range ents {
		p.Printf("%s ", e.Name)
	}
	return 0
}

func TestGetdentsSortAblation(t *testing.T) {
	a := runDT(t, hostA, core.Config{DisableGetdentsSort: true}, readdirProgram)
	b := runDT(t, hostB, core.Config{DisableGetdentsSort: true}, readdirProgram)
	if a.Stdout == b.Stdout {
		t.Errorf("without sorting, the two machines' hash orders should differ")
	}
	a = runDT(t, hostA, core.Config{}, readdirProgram)
	b = runDT(t, hostB, core.Config{}, readdirProgram)
	if a.Stdout != b.Stdout || !strings.HasPrefix(a.Stdout, "alpha beta") {
		t.Errorf("sorted getdents wrong: %q vs %q", a.Stdout, b.Stdout)
	}
}

func TestCpuidTrapAblationLegacyHardware(t *testing.T) {
	// On pre-Ivy-Bridge hardware cpuid cannot be hidden (§5.8) — but those
	// machines also lack TSX/rdrand, so well-behaved programs stay
	// reproducible within the smaller machine class.
	legacy := host{profileLegacy(), 0x111, 1_450_000_000, 0}
	prog := func(p *guest.Proc) int {
		l := p.Cpuid(7)
		p.Printf("tsx=%d rdrand-able=%v", l.Leaf.EBX&0x800, l.OK)
		if _, ok := p.Rdrand(); ok {
			p.Printf(" rdrand-worked")
		}
		return 0
	}
	res := runDT(t, legacy, core.Config{}, prog)
	if res.Err != nil {
		t.Fatalf("legacy run: %v", res.Err)
	}
	if strings.Contains(res.Stdout, "rdrand-worked") {
		t.Errorf("sandy bridge should have no rdrand: %q", res.Stdout)
	}
	// Same seed, same legacy machine: still deterministic.
	res2 := runDT(t, host{profileLegacy(), 0x999, 1_460_000_000, 0}, core.Config{}, prog)
	if res.Stdout != res2.Stdout {
		t.Errorf("legacy machine class not internally reproducible")
	}
}

// TestCriticalInstructionsEscape documents §4's finding: rdrand and TSX are
// untrappable, so an adversarial program that ignores cpuid can still
// observe irreproducibility. DetTrace's guarantee assumes well-behaved
// programs.
func TestCriticalInstructionsEscape(t *testing.T) {
	adversary := func(p *guest.Proc) int {
		// Ignore cpuid; run the instructions anyway.
		if v, ok := p.Rdrand(); ok {
			p.Printf("rdrand=%x ", v)
		}
		commits := 0
		for i := 0; i < 32; i++ {
			if p.Xbegin() {
				commits++
			}
		}
		p.Printf("tsx-commits=%d", commits)
		return 0
	}
	a := runDT(t, hostA, core.Config{}, adversary)
	b := runDT(t, host{hostA.profile, hostA.seed + 1, hostA.epoch, 0}, core.Config{}, adversary)
	if a.Stdout == b.Stdout {
		t.Skip("hardware entropy coincided; extremely unlikely")
	}
	// This asymmetry is the point: the same runs WITHOUT the critical
	// instructions are identical.
	clean := func(p *guest.Proc) int { p.Printf("t=%d", p.Time()); return 0 }
	ca := runDT(t, hostA, core.Config{}, clean)
	cb := runDT(t, host{hostA.profile, hostA.seed + 1, hostA.epoch, 0}, core.Config{}, clean)
	if ca.Stdout != cb.Stdout {
		t.Errorf("well-behaved program diverged")
	}
}
