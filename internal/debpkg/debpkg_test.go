package debpkg

import (
	"strings"
	"testing"

	"repro/internal/fs"
)

func TestUniverseDeterministic(t *testing.T) {
	a := Universe(7, 100)
	b := Universe(7, 100)
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Class != b[i].Class ||
			a[i].Units != b[i].Units || a[i].ComputeFct != b[i].ComputeFct ||
			strings.Join(a[i].Directives, ",") != strings.Join(b[i].Directives, ",") {
			t.Fatalf("universe not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := Universe(8, 100)
	same := 0
	for i := range a {
		if a[i].Units == c[i].Units && a[i].UnitKB == c[i].UnitKB {
			same++
		}
	}
	if same == len(a) {
		t.Errorf("different seeds generated identical universes")
	}
}

func TestFullUniverseClassCountsExact(t *testing.T) {
	counts := map[Class]int{}
	for _, s := range Universe(1, 0) {
		counts[s.Class]++
	}
	want := map[Class]int{
		BLFail: NBLFail, BLTimeoutC: NBLTimeout,
		BLRepro_DTRepro: NBLReproDTRepro, BLRepro_DTUnsup: NBLReproDTUnsup,
		BLRepro_DTTimeout: NBLReproDTTime,
		BLIrrepro_DTRepro: NBLIrrDTRepro, BLIrrepro_DTUnsup: NBLIrrDTUnsup,
		BLIrrepro_DTTimeout: NBLIrrDTTime,
	}
	total := 0
	for c, n := range want {
		if counts[c] != n {
			t.Errorf("class %s: %d, want %d", c, counts[c], n)
		}
		total += n
	}
	if total != UniverseSize {
		t.Errorf("counts sum to %d, want %d", total, UniverseSize)
	}
}

func TestPrefixPreservesProportions(t *testing.T) {
	sample := Universe(1, 2000)
	counts := map[Class]int{}
	for _, s := range sample {
		counts[s.Class]++
	}
	// BLIrrepro_DTRepro is 50.7% of the universe: the prefix should be close.
	frac := float64(counts[BLIrrepro_DTRepro]) / float64(len(sample))
	if frac < 0.45 || frac < 0.40 || frac > 0.60 {
		t.Errorf("blI-dtR fraction in prefix = %.3f, want ~0.507", frac)
	}
}

func TestIrreproduciblePackagesHaveDirectives(t *testing.T) {
	for _, s := range Universe(2, 3000) {
		switch s.Class {
		case BLIrrepro_DTRepro, BLIrrepro_DTUnsup:
			if len(s.Directives) == 0 {
				t.Errorf("%s (%s) has no irreproducibility source", s.Name, s.Class)
			}
		case BLRepro_DTRepro:
			if len(s.Directives) != 0 {
				t.Errorf("%s (%s) carries run-varying directives: %v", s.Name, s.Class, s.Directives)
			}
		}
	}
}

func TestUnsupportedBreakdownProportions(t *testing.T) {
	counts := map[UnsupportedKind]int{}
	total := 0
	for _, s := range Universe(1, 0) {
		if s.Class == BLIrrepro_DTUnsup {
			counts[s.Unsup]++
			total++
		}
	}
	if total != NBLIrrDTUnsup {
		t.Fatalf("unsupported total = %d", total)
	}
	// §7.1.1: busy-wait ~45.8%, sockets ~15.8%, signals ~4%.
	checks := []struct {
		kind UnsupportedKind
		lo   float64
		hi   float64
	}{
		{UnsupBusyWait, 0.40, 0.52},
		{UnsupSocket, 0.11, 0.21},
		{UnsupSignal, 0.02, 0.07},
	}
	for _, c := range checks {
		frac := float64(counts[c.kind]) / float64(total)
		if frac < c.lo || frac > c.hi {
			t.Errorf("%s fraction = %.3f, want [%.2f, %.2f]", c.kind, frac, c.lo, c.hi)
		}
	}
}

func TestMaterializeStructure(t *testing.T) {
	spec := Universe(3, 10)[4]
	im := fs.NewImage()
	pkgdir := spec.Materialize(im, "/build")
	for _, p := range []string{
		pkgdir + "/debian/control",
		pkgdir + "/debian/rules",
		pkgdir + "/Makefile",
		pkgdir + "/configure.ac",
	} {
		if _, ok := im.Entries[p]; !ok {
			t.Errorf("missing %s", p)
		}
	}
	units := 0
	for p := range im.Entries {
		if strings.Contains(p, "/src/unit") {
			units++
		}
	}
	if units != spec.Units {
		t.Errorf("materialized %d units, spec says %d", units, spec.Units)
	}
	rules := string(im.Entries[pkgdir+"/debian/rules"].Data)
	if !strings.Contains(rules, "step pack") || !strings.Contains(rules, "step configure") {
		t.Errorf("rules incomplete:\n%s", rules)
	}
}

func TestMaterializeContentIsSeedAndMachineIndependent(t *testing.T) {
	// Source trees must be identical regardless of where they are unpacked:
	// the same package on two machines has the same bytes.
	spec := Universe(3, 5)[2]
	a, b := fs.NewImage(), fs.NewImage()
	spec.Materialize(a, "/build")
	spec.Materialize(b, "/build")
	for p, e := range a.Entries {
		if string(b.Entries[p].Data) != string(e.Data) {
			t.Errorf("materialization unstable at %s", p)
		}
	}
}

func TestModernSampleIoctlSplit(t *testing.T) {
	specs := ModernSample(11)
	if len(specs) != 81 {
		t.Fatalf("modern sample = %d", len(specs))
	}
	n := 0
	for _, s := range specs {
		if s.UsesIoctl {
			n++
		}
		if s.Unsup != UnsupNone || s.BrokenSource {
			t.Errorf("%s: modern sample must build everywhere", s.Name)
		}
	}
	if n != 46 {
		t.Errorf("ioctl users = %d, want 46", n)
	}
}

func TestLLVMSpec(t *testing.T) {
	s := LLVM()
	if s.Tests != [3]int{5657, 48, 15} {
		t.Errorf("llvm test shape = %v", s.Tests)
	}
	im := fs.NewImage()
	pkgdir := s.Materialize(im, "/build")
	unit0 := string(im.Entries[pkgdir+"/src/unit000.c"].Data)
	if !strings.Contains(unit0, "@tests:5657:48:15@") {
		t.Errorf("llvm test metadata missing from unit 0")
	}
}

func TestTimeoutProneShape(t *testing.T) {
	for _, s := range Universe(1, 0)[:4000] {
		if s.Class == BLIrrepro_DTTimeout || s.Class == BLRepro_DTTimeout {
			if s.Weight < 1000 {
				t.Errorf("%s: timeout-prone weight = %d (simulation would crawl)", s.Name, s.Weight)
			}
			if s.Headers < 100 {
				t.Errorf("%s: timeout-prone needs an extreme syscall rate", s.Name)
			}
		}
	}
}
