// Package debpkg generates the synthetic Debian Wheezy package universe the
// evaluation builds: 17,145 packages whose *characteristics* — compile
// units, nondeterminism directives, threading style, socket/signal use,
// build duration, system call intensity — are sampled from a seeded
// generator calibrated so the population's measured outcomes land on the
// paper's Table 1 marginals.
//
// The generator assigns characteristics, never verdicts: whether a package
// is reproducible is decided downstream by actually building it twice under
// reprotest perturbations and bitwise-comparing the .debs (internal/buildsim).
package debpkg

import (
	"fmt"

	"repro/internal/prng"
)

// Class is the expected outcome cell a package was calibrated for. It is
// carried along for validation only — buildsim measures the real outcome
// and the Table-1 test asserts that measurement matches calibration.
type Class int

// Calibration cells, named after Table 1's rows and columns.
const (
	BLFail Class = iota // fails to build natively
	BLTimeoutC
	BLRepro_DTRepro
	BLRepro_DTUnsup
	BLRepro_DTTimeout
	BLIrrepro_DTRepro
	BLIrrepro_DTUnsup
	BLIrrepro_DTTimeout
)

var classNames = map[Class]string{
	BLFail: "bl-fail", BLTimeoutC: "bl-timeout",
	BLRepro_DTRepro: "blR-dtR", BLRepro_DTUnsup: "blR-dtU", BLRepro_DTTimeout: "blR-dtT",
	BLIrrepro_DTRepro: "blI-dtR", BLIrrepro_DTUnsup: "blI-dtU", BLIrrepro_DTTimeout: "blI-dtT",
}

// String names the calibration cell.
func (c Class) String() string { return classNames[c] }

// UnsupportedKind is the §7.1.1 failure class of a DT-unsupported package.
type UnsupportedKind string

// Unsupported-operation kinds.
const (
	UnsupNone     UnsupportedKind = ""
	UnsupBusyWait UnsupportedKind = "busy-wait"
	UnsupSocket   UnsupportedKind = "socket"
	UnsupSignal   UnsupportedKind = "signal"
	UnsupMisc     UnsupportedKind = "misc-syscall"
)

// Spec is one generated package.
type Spec struct {
	Name    string
	Version string
	Class   Class

	Units      int   // compile units
	UnitKB     int   // source size per unit
	Headers    int   // include probes per unit (syscall intensity)
	Weight     int64 // events-per-event scale factor
	ComputeFct int64 // per-byte compute multiplier (build heaviness)

	Compiler string // "cc" or "javac"
	Threads  string // javac: "futex" or "busywait"

	// Directives are run-varying irreproducibility sources embedded in the
	// sources; PortDirectives vary across machines but not across runs on
	// one machine.
	Directives     []string
	PortDirectives []string

	Unsup UnsupportedKind

	LogArtifact  bool // ship the parallel-make build log (race capture)
	ShipConfigH  bool // ship configure output
	BrokenSource bool // unit 0 fails to compile
	UsesIoctl    bool // build probes the terminal (isatty) — rr's crash

	Tests [3]int // tests, xfail, unsupported (the llvm self-host shape)
}

// DirectiveUniverse lists every run-varying directive the generator draws
// from, roughly ordered by how often DRB's notes blame each cause.
var DirectiveUniverse = []string{
	"timestamp", "timestamp", "timestamp", // timestamps dominate
	"buildpath", "buildpath",
	"random", "getrandom",
	"env:USER", "env:HOME", "env:DEB_BUILD_OPTIONS",
	"pid", "mtime:debian/control", "inode:debian/control",
	"mmap", "cores", "rdtsc", "timestamp-vdso", "cpuinfo", "uptime",
}

// PortDirectiveUniverse lists machine-varying (but run-stable) sources.
var PortDirectiveUniverse = []string{
	"hostname", "kernel", "readdir:src", "dirsize:src",
}

// UniverseSize is the full Wheezy package count from §6.
const UniverseSize = 17145

// Counts from Table 1 (top) and §6.1, used as calibration targets.
const (
	NBLFail         = 1344
	NBLTimeout      = 40
	NBLReproDTRepro = 3442
	NBLReproDTUnsup = 137
	NBLReproDTTime  = 224
	NBLIrrDTRepro   = 8688
	NBLIrrDTUnsup   = 1912
	NBLIrrDTTime    = 1358
	NBusyWait       = 876
	NSocket         = 302
	NSignal         = 79
)

// LLVM returns the hand-built llvm-3.0 package of the §7.2 self-hosting
// experiment: a large build whose binary carries the real test-suite shape
// (5,594 passes, 48 expected failures, 15 unsupported).
func LLVM() *Spec {
	return &Spec{
		Name: "llvm", Version: "3.0-1", Class: BLIrrepro_DTRepro,
		Units: 40, UnitKB: 6, Headers: 60, Weight: 400, ComputeFct: 12,
		Compiler:   "cc",
		Directives: []string{"timestamp", "buildpath", "random"},
		Tests:      [3]int{5657, 48, 15},
	}
}

// ModernSample generates the §7.1.3 comparison set: 81 packages that build
// from source on a modern distribution, 46 of which probe the terminal with
// ioctl requests rr cannot record. They carry no timeout/unsupported
// calibration — the comparison is about rr.
func ModernSample(seed uint64) []*Spec {
	rng := prng.NewHost(seed ^ 0x1803)
	specs := make([]*Spec, 0, 81)
	for i := 0; i < 81; i++ {
		s := generate(i, BLIrrepro_DTRepro, rng)
		s.Name = fmt.Sprintf("modern-%02d", i)
		s.Unsup = UnsupNone
		s.Compiler = "cc"
		s.Threads = ""
		s.UsesIoctl = i%81 < 46 // deterministic 46/81 split, shuffled below
		specs = append(specs, s)
	}
	// Shuffle the ioctl flags so they do not correlate with size.
	for i := len(specs) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		specs[i].UsesIoctl, specs[j].UsesIoctl = specs[j].UsesIoctl, specs[i].UsesIoctl
	}
	return specs
}

// Universe generates the first n packages of the seeded universe (n <= 0
// means all 17,145). The class sequence interleaves deterministically so any
// prefix is an unbiased sample of the whole.
func Universe(seed uint64, n int) []*Spec {
	if n <= 0 || n > UniverseSize {
		n = UniverseSize
	}
	classes := classSequence(seed)
	rng := prng.NewHost(seed ^ 0xdeb)
	specs := make([]*Spec, 0, n)
	for i := 0; i < n; i++ {
		specs = append(specs, generate(i, classes[i], rng))
	}
	return specs
}

// classSequence deals the Table-1 cell counts into a deterministic shuffled
// order so prefixes preserve proportions.
func classSequence(seed uint64) []Class {
	seq := make([]Class, 0, UniverseSize)
	add := func(c Class, n int) {
		for i := 0; i < n; i++ {
			seq = append(seq, c)
		}
	}
	add(BLFail, NBLFail)
	add(BLTimeoutC, NBLTimeout)
	add(BLRepro_DTRepro, NBLReproDTRepro)
	add(BLRepro_DTUnsup, NBLReproDTUnsup)
	add(BLRepro_DTTimeout, NBLReproDTTime)
	add(BLIrrepro_DTRepro, NBLIrrDTRepro)
	add(BLIrrepro_DTUnsup, NBLIrrDTUnsup)
	add(BLIrrepro_DTTimeout, NBLIrrDTTime)
	rng := prng.NewHost(seed ^ 0x5e9)
	for i := len(seq) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		seq[i], seq[j] = seq[j], seq[i]
	}
	return seq
}

func generate(idx int, class Class, rng *prng.Host) *Spec {
	s := &Spec{
		Name:     fmt.Sprintf("pkg-%05d", idx),
		Version:  fmt.Sprintf("%d.%d-%d", 1+rng.Intn(4), rng.Intn(10), 1+rng.Intn(3)),
		Class:    class,
		Units:    3 + rng.Intn(12),
		UnitKB:   1 + rng.Intn(6),
		Headers:  45 + rng.Intn(75),
		Weight:   280,
		Compiler: "cc",
	}
	// A quarter of packages run a test suite after building; suites pipe
	// their output through the build driver.
	if rng.Intn(4) == 0 {
		tests := 40 + rng.Intn(400)
		s.Tests = [3]int{tests, rng.Intn(5), rng.Intn(3)}
	}
	// Build heaviness: sample a target system call *rate* on the Fig. 5
	// x-axis, mostly under 10k/s with a tail, and derive compute to match.
	rate := 1500 + rng.Int63n(9000)
	if rng.Intn(20) == 0 {
		rate = 10_000 + rng.Int63n(15_000) // the heavy tail
	}
	s.ComputeFct = computeForRate(s, rate)

	switch class {
	case BLFail:
		s.BrokenSource = true
	case BLTimeoutC:
		// Native build exceeds the 30-minute limit on compute alone.
		s.ComputeFct *= 40
	case BLRepro_DTRepro:
		s.maybePortability(rng, 3)
	case BLRepro_DTUnsup:
		s.assignUnsupported(rng, true)
	case BLRepro_DTTimeout:
		s.makeTimeoutProne(rng)
	case BLIrrepro_DTRepro:
		s.assignDirectives(rng)
		s.maybePortability(rng, 6)
	case BLIrrepro_DTUnsup:
		s.assignDirectives(rng)
		s.assignUnsupported(rng, false)
	case BLIrrepro_DTTimeout:
		s.assignDirectives(rng)
		s.makeTimeoutProne(rng)
	}
	// §7.1.1's clean threaded builds: a deterministic slice of the
	// DT-reproducible classes compiles javac-style, with worker threads
	// that block properly on a futex queue. Supported — slowly — under
	// serialized threads, and the farm-level beneficiaries of thread
	// workspaces. Keyed on the index, not the rng, so every other spec in
	// the universe keeps its exact pre-existing shape.
	if (class == BLRepro_DTRepro || class == BLIrrepro_DTRepro) && idx%7 == 3 {
		s.Compiler = "javac"
		s.Threads = "futex"
	}
	return s
}

// computeForRate solves the per-byte compute factor so the baseline build's
// syscall rate lands near target. Rough model: one unit costs ~24 calls of
// toolchain overhead plus ~11/3 calls per header probe (two misses and a
// hit across the search path); baseline wall time ≈ sequential compute +
// syscalls at ~2µs; compute = Units*UnitKB*1024*400ns*F*Weight.
func computeForRate(s *Spec, rate int64) int64 {
	perUnit := int64(24) + int64(s.Headers)*11/3
	weighted := (perUnit*int64(s.Units) + 300) * s.Weight
	wantTime := weighted * 1e9 / rate // ns
	syscallTime := weighted * 2_000
	computeTime := wantTime - syscallTime
	if computeTime < 1e9 {
		computeTime = 1e9
	}
	denom := int64(s.Units) * int64(s.UnitKB) * 1024 * 400 * s.Weight
	f := computeTime / denom
	if f < 1 {
		f = 1
	}
	return f
}

// assignDirectives samples 1–3 run-varying irreproducibility sources.
func (s *Spec) assignDirectives(rng *prng.Host) {
	n := 1 + rng.Intn(3)
	seen := map[string]bool{}
	for len(s.Directives) < n {
		d := DirectiveUniverse[rng.Intn(len(DirectiveUniverse))]
		if !seen[d] {
			seen[d] = true
			s.Directives = append(s.Directives, d)
		}
	}
	// Parallel-make races captured in a shipped build log are their own
	// source; ~8% of irreproducible packages exhibit it.
	if rng.Intn(12) == 0 {
		s.LogArtifact = true
	}
	if rng.Intn(6) == 0 {
		s.ShipConfigH = true
	}
}

// maybePortability gives 1-in-odds packages a machine-varying directive.
func (s *Spec) maybePortability(rng *prng.Host, odds int) {
	if rng.Intn(odds) == 0 {
		d := PortDirectiveUniverse[rng.Intn(len(PortDirectiveUniverse))]
		s.PortDirectives = append(s.PortDirectives, d)
	}
}

// assignUnsupported picks the §7.1.1 failure class. The blRepro flag marks
// the 137 packages that were reproducible in the baseline: their class mix
// is not broken down in the paper, so they draw from the same tail.
func (s *Spec) assignUnsupported(rng *prng.Host, blRepro bool) {
	// Proportions from §7.1.1: 876 busy-wait, 302 sockets, 79 signals,
	// remainder miscellaneous syscalls (of 1,912).
	r := rng.Intn(NBLIrrDTUnsup)
	switch {
	case r < NBusyWait:
		s.Unsup = UnsupBusyWait
		s.Compiler = "javac"
		s.Threads = "busywait"
		// Busy-wait (Java-ish) builds are kept small so baseline spinning
		// stays cheap to simulate.
		s.Units = 3 + rng.Intn(3)
		s.UnitKB = 1
		s.Weight = 25
		s.ComputeFct = 4
	case r < NBusyWait+NSocket:
		s.Unsup = UnsupSocket
	case r < NBusyWait+NSocket+NSignal:
		s.Unsup = UnsupSignal
	default:
		s.Unsup = UnsupMisc
	}
	if blRepro && s.Unsup == UnsupBusyWait && rng.Intn(2) == 0 {
		// Some clean threaded builds block properly but still use sockets.
		s.Unsup = UnsupSocket
		s.Compiler = "cc"
		s.Threads = ""
	}
}

// makeTimeoutProne shapes a package that completes natively inside 30
// minutes but whose DetTrace run blows the 2-hour limit: an extreme system
// call rate with a long baseline time. The large weight keeps simulation
// cheap while virtual time races to the deadline.
func (s *Spec) makeTimeoutProne(rng *prng.Host) {
	s.Units = 16 + rng.Intn(7)
	s.Headers = 110 + rng.Intn(40)
	s.Weight = 4000
	s.Tests = [3]int{0, 0, 0}
	// ~20 minutes of baseline time at a very high system call rate: the
	// native build finishes inside the 30-minute limit, but the tracer's
	// per-call service pushes the DetTrace run past two hours.
	s.ComputeFct = computeForRate(s, 42_000+rng.Int63n(12_000))
}
