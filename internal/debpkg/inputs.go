package debpkg

import (
	"fmt"

	"repro/internal/derive"
)

// InputSets declares what each part of the package's build reads from its
// source tree, in image-path namespace — the per-unit input sets of the
// derivation key (ISSUE 8). The declaration mirrors Materialize and the
// build's actual read pattern:
//
//   - Phase inputs are read by every dpkg-buildpackage invocation (the
//     driver parses debian/rules and debian/control at startup) and by the
//     configure phase (configure.ac). Any checkpoint sealed after the driver
//     first ran has them in its prefix.
//   - Shared inputs are read by every compile unit: make parses the Makefile
//     on each invocation, and every unit #includes the full header probe
//     sequence, so a header edit dirties all units at once.
//   - Unit inputs are the one source file only that unit's compile reads.
//
// The sets deliberately over-approximate (a unit that never reaches a
// header's content still lists it): over-approximation only costs reuse,
// under-approximation would be unsound — derive.PlanRebuild goes cold on any
// dirty path no set claims.
func InputSets(s *Spec, pkgdir string) derive.Inputs {
	in := derive.Inputs{
		Phase: []string{
			pkgdir + "/debian/rules",
			pkgdir + "/debian/control",
			pkgdir + "/configure.ac",
		},
		Shared: []string{pkgdir + "/Makefile"},
		Units:  make(map[string][]string, s.Units),
	}
	// Only every third probe target exists (see Materialize); the input set
	// lists what is actually in the tree.
	for h := 0; h < s.Headers; h += 3 {
		in.Shared = append(in.Shared, fmt.Sprintf("%s/include/h%03d.h", pkgdir, h))
	}
	for u := 0; u < s.Units; u++ {
		name := fmt.Sprintf("unit%03d.c", u)
		in.Units[name] = []string{pkgdir + "/src/" + name}
	}
	return in
}
