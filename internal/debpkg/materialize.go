package debpkg

import (
	"fmt"
	"strings"

	"repro/internal/derive"
	"repro/internal/fs"
	"repro/internal/prng"
)

// Materialize writes the package's source tree into an image under
// dir/<name>-<version> and returns that package directory path. The tree is
// what apt-get source would have unpacked: debian/ metadata, configure.ac,
// a Makefile, headers and compile units carrying the spec's directives.
func (s *Spec) Materialize(im *fs.Image, dir string) string {
	pkgdir := dir + "/" + s.Name + "-" + s.Version
	im.AddDir(pkgdir, 0o755)
	im.AddDir(pkgdir+"/debian", 0o755)
	im.AddDir(pkgdir+"/src", 0o755)
	im.AddDir(pkgdir+"/include", 0o755)

	im.AddFile(pkgdir+"/debian/control", 0o644, []byte(fmt.Sprintf(
		"Package: %s\nVersion: %s\nArchitecture: amd64\nMaintainer: Wheezy Builder <builder@debian.org>\nDescription: synthetic package %s\n",
		s.Name, s.Version, s.Name)))
	im.AddFile(pkgdir+"/debian/rules", 0o755, []byte(s.rules()))
	im.AddFile(pkgdir+"/configure.ac", 0o644, []byte(s.configureAC()))
	im.AddFile(pkgdir+"/Makefile", 0o644, []byte(s.makefile()))

	// Headers the compiler will probe for. Only every third probe target
	// exists, so include scanning produces the ENOENT-heavy open pattern of
	// a real preprocessor search path.
	for h := 0; h < s.Headers; h += 3 {
		im.AddFile(fmt.Sprintf("%s/include/h%03d.h", pkgdir, h), 0o644,
			[]byte(fmt.Sprintf("#define H%03d 1\n", h)))
	}

	rng := prng.NewHost(hashName(s.Name))
	for u := 0; u < s.Units; u++ {
		im.AddFile(fmt.Sprintf("%s/src/unit%03d.c", pkgdir, u), 0o644,
			[]byte(s.unitSource(u, rng)))
	}
	return pkgdir
}

// rules renders debian/rules for dpkg-buildpackage.
func (s *Spec) rules() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# rules for %s\n", s.Name)
	fmt.Fprintf(&b, "weight %d\n", s.Weight)
	fmt.Fprintf(&b, "export CCFACTOR=%d\n", s.ComputeFct)
	b.WriteString("step configure\n")
	// Wheezy-era packages build sequentially unless they opt into
	// parallelism; the opt-in ones are where scheduling races live.
	if s.LogArtifact || s.Compiler == "javac" {
		b.WriteString("step make -j%NPROC%\n")
	} else {
		b.WriteString("step make -j1\n")
	}
	if s.Tests[0] > 0 {
		b.WriteString("step test\n")
	}
	if s.UsesIoctl {
		b.WriteString("step tty-check\n")
	}
	switch s.Unsup {
	case UnsupSocket:
		b.WriteString("step special-socket\n")
	case UnsupSignal:
		b.WriteString("step special-signal\n")
	case UnsupMisc:
		b.WriteString("step special-misc\n")
	}
	if s.LogArtifact {
		b.WriteString("artifact build/build.log\n")
	}
	if s.ShipConfigH {
		b.WriteString("artifact config.h\n")
	}
	b.WriteString("step pack\n")
	return b.String()
}

// configureAC holds the configure-time directives: machine-capturing probes
// land here, like an autoconf macro recording the host.
func (s *Spec) configureAC() string {
	var b strings.Builder
	b.WriteString("AC_INIT\n")
	for _, d := range s.PortDirectives {
		fmt.Fprintf(&b, "@embed-%s@\n", d)
	}
	if s.ShipConfigH {
		// configure output that gets shipped may capture core counts etc.
		for _, d := range s.Directives {
			if d == "cores" || strings.HasPrefix(d, "env:") {
				fmt.Fprintf(&b, "@embed-%s@\n", d)
			}
		}
	}
	b.WriteString("AC_OUTPUT\n")
	return b.String()
}

// makefile renders the Makefile.
func (s *Spec) makefile() string {
	var b strings.Builder
	fmt.Fprintf(&b, "compiler=%s\n", s.Compiler)
	b.WriteString("srcdir=src\nbuilddir=build\noutput=build/prog\n")
	if s.Threads != "" {
		fmt.Fprintf(&b, "threads=%s\n", s.Threads)
	}
	if s.LogArtifact {
		b.WriteString("logfile=build/build.log\n")
	}
	return b.String()
}

// unitSource renders one compile unit: include probes, code lines sized to
// UnitKB, and the spec's directives spread across the first units.
func (s *Spec) unitSource(u int, rng *prng.Host) string {
	var b strings.Builder
	fmt.Fprintf(&b, "/* %s unit %d */\n", s.Name, u)
	for h := 0; h < s.Headers; h++ {
		fmt.Fprintf(&b, "#include <h%03d.h>\n", h)
	}
	if s.BrokenSource && u == 0 {
		b.WriteString("@@SYNTAX ERROR@@\n")
		b.WriteString("this unit does not compile\n")
	}
	// Directives: spread one per unit over the leading units; machine-
	// capturing (portability) directives follow so they too reach the
	// shipped binary.
	if u < len(s.Directives) {
		fmt.Fprintf(&b, "@embed-%s@\n", s.Directives[u])
	} else if pu := u - len(s.Directives); pu < len(s.PortDirectives) {
		fmt.Fprintf(&b, "@embed-%s@\n", s.PortDirectives[pu])
	}
	if u == 0 && s.Tests[0] > 0 {
		fmt.Fprintf(&b, "@tests:%d:%d:%d@\n", s.Tests[0], s.Tests[1], s.Tests[2])
	}
	// Fill to UnitKB with stable pseudo-code.
	target := s.UnitKB * 1024
	line := 0
	for b.Len() < target {
		fmt.Fprintf(&b, "int fn_%s_%d_%d(void) { return %d; }\n", s.Name, u, line, rng.Intn(1000))
		line++
	}
	return b.String()
}

func hashName(s string) uint64 { return derive.DigestBytes([]byte(s)) }
