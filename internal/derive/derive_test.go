package derive

import (
	"reflect"
	"sync"
	"testing"
)

func TestHasherMatchesDigestBytes(t *testing.T) {
	h := NewHasher()
	h.Bytes([]byte("hello"))
	if got, want := h.Sum(), DigestBytes([]byte("hello")); got != want {
		t.Fatalf("Hasher.Bytes = %#x, DigestBytes = %#x", got, want)
	}
}

func TestDigestU64Restart(t *testing.T) {
	if DigestU64(0, 7) != DigestU64(DigestU64(0), 7) {
		t.Fatal("DigestU64(0, ...) must restart from the offset basis")
	}
	if DigestU64(0, 1, 2) != DigestU64(DigestU64(0, 1), 2) {
		t.Fatal("DigestU64 must be foldable")
	}
}

func TestStrFramingDistinguishesBoundaries(t *testing.T) {
	a := NewHasher()
	a.Str("ab")
	a.Str("c")
	b := NewHasher()
	b.Str("a")
	b.Str("bc")
	if a.Sum() == b.Sum() {
		t.Fatal("length-prefixed strings must not collide across boundaries")
	}
}

func TestKeyHashShard(t *testing.T) {
	k := KeyFor(11, 22)
	if k.Hash() != DigestU64(0, 11, 22) {
		t.Fatal("Key.Hash must fold image then config")
	}
	if k.Shard(1) != 0 || k.Shard(0) != 0 {
		t.Fatal("degenerate shard counts must map to 0")
	}
	if s := k.Shard(5); s < 0 || s > 4 {
		t.Fatalf("Shard(5) = %d out of range", s)
	}
}

func TestFoldLeavesCommitsToPaths(t *testing.T) {
	a := FoldLeaves(map[string]uint64{"x": 1, "y": 2})
	b := FoldLeaves(map[string]uint64{"y": 2, "x": 1})
	if a != b {
		t.Fatal("fold must be independent of map iteration order")
	}
	if a == FoldLeaves(map[string]uint64{"x": 1, "z": 2}) {
		t.Fatal("fold must commit to the path set")
	}
	if a == FoldLeaves(map[string]uint64{"x": 1, "y": 3}) {
		t.Fatal("fold must commit to leaf values")
	}
}

func TestTreeDiff(t *testing.T) {
	base := TreeHash{Leaves: map[string]uint64{"a": 1, "b": 2, "c": 3}}
	same := TreeHash{Leaves: map[string]uint64{"a": 1, "b": 2, "c": 3}}
	if dirty, shape := same.Diff(base); len(dirty) != 0 || shape {
		t.Fatalf("identical trees must diff clean, got %v shape=%v", dirty, shape)
	}
	patched := TreeHash{Leaves: map[string]uint64{"a": 1, "b": 9, "c": 3}}
	dirty, shape := patched.Diff(base)
	if shape || !reflect.DeepEqual(dirty, []string{"b"}) {
		t.Fatalf("content patch: dirty=%v shape=%v", dirty, shape)
	}
	added := TreeHash{Leaves: map[string]uint64{"a": 1, "b": 2, "c": 3, "d": 4}}
	if _, shape := added.Diff(base); !shape {
		t.Fatal("an added path must be a shape change")
	}
	removed := TreeHash{Leaves: map[string]uint64{"a": 1, "b": 2}}
	if dirty, shape := removed.Diff(base); !shape || !reflect.DeepEqual(dirty, []string{"c"}) {
		t.Fatalf("removal: dirty=%v shape=%v", dirty, shape)
	}
}

func planFixture() (TreeHash, Inputs, []SealInfo) {
	base := TreeHash{Leaves: map[string]uint64{
		"p/debian/rules":   1,
		"p/debian/control": 2,
		"p/configure.ac":   3,
		"p/Makefile":       4,
		"p/include/h0.h":   5,
		"p/src/u0.c":       6,
		"p/src/u1.c":       7,
		"p/src/u2.c":       8,
	}}
	in := Inputs{
		Phase:  []string{"p/debian/rules", "p/debian/control", "p/configure.ac"},
		Shared: []string{"p/Makefile", "p/include/h0.h"},
		Units: map[string][]string{
			"u0.c": {"p/src/u0.c"},
			"u1.c": {"p/src/u1.c"},
			"u2.c": {"p/src/u2.c"},
		},
	}
	seals := []SealInfo{
		{Ordinal: 1},
		{Ordinal: 2, Configured: true},
		{Ordinal: 3, Configured: true, Units: []string{"u0.c"}},
		{Ordinal: 4, Configured: true, Units: []string{"u0.c", "u1.c"}},
	}
	return base, in, seals
}

func patch(base TreeHash, paths ...string) TreeHash {
	leaves := make(map[string]uint64, len(base.Leaves))
	for p, v := range base.Leaves {
		leaves[p] = v
	}
	for _, p := range paths {
		leaves[p] ^= 0xdead
	}
	return TreeHash{Leaves: leaves}
}

func TestPlanRebuildUnitPatch(t *testing.T) {
	base, in, seals := planFixture()
	// Patch the last unit: every seal's prefix is clean, fork the freshest.
	p := PlanRebuild(base, patch(base, "p/src/u2.c"), in, seals)
	if p.Cold || p.Ordinal != 4 {
		t.Fatalf("u2 patch: got %+v", p)
	}
	if !reflect.DeepEqual(p.DirtyUnits, []string{"u2.c"}) || !reflect.DeepEqual(p.Reused, []string{"u0.c", "u1.c"}) {
		t.Fatalf("u2 patch reuse split: got %+v", p)
	}
	// Patch a built unit: seals carrying it are out, the post-configure
	// seal survives.
	p = PlanRebuild(base, patch(base, "p/src/u0.c"), in, seals)
	if p.Cold || p.Ordinal != 2 {
		t.Fatalf("u0 patch: got %+v", p)
	}
}

func TestPlanRebuildSharedAndPhase(t *testing.T) {
	base, in, seals := planFixture()
	// A header dirties every unit but not the configure phase.
	p := PlanRebuild(base, patch(base, "p/include/h0.h"), in, seals)
	if p.Cold || p.Ordinal != 2 || len(p.DirtyUnits) != 3 {
		t.Fatalf("header patch: got %+v", p)
	}
	// A phase input invalidates everything after the initial execve.
	p = PlanRebuild(base, patch(base, "p/debian/rules"), in, seals)
	if p.Cold || p.Ordinal != 1 {
		t.Fatalf("rules patch: got %+v", p)
	}
}

func TestPlanRebuildCold(t *testing.T) {
	base, in, seals := planFixture()
	// Unclaimed dirty path: declared inputs under-approximate, go cold.
	stray := patch(base)
	stray.Leaves["p/unclaimed"] = 1
	base2 := patch(base)
	base2.Leaves["p/unclaimed"] = 2
	p := PlanRebuild(base2, stray, in, seals)
	if !p.Cold {
		t.Fatalf("unclaimed dirty path must force cold, got %+v", p)
	}
	// Shape change: always cold.
	added := patch(base)
	added.Leaves["p/src/u3.c"] = 9
	if p := PlanRebuild(base, added, in, seals); !p.Cold {
		t.Fatalf("shape change must force cold, got %+v", p)
	}
	// Phase patch with no ordinal-1 seal: cold.
	if p := PlanRebuild(base, patch(base, "p/debian/rules"), in, seals[1:]); !p.Cold {
		t.Fatalf("phase patch without a clean seal must force cold, got %+v", p)
	}
	// Clean diff: freshest seal, nothing dirty.
	if p := PlanRebuild(base, patch(base), in, seals); p.Cold || p.Ordinal != 4 || len(p.Dirty) != 0 {
		t.Fatalf("clean diff: got %+v", p)
	}
}

func TestMemStoreLease(t *testing.T) {
	m := NewMemStore()
	k := KeyFor(1, 2)
	if v, ok := m.GetOrLease(k); ok || v != nil {
		t.Fatal("first requester must hold the lease")
	}
	var wg sync.WaitGroup
	got := make([]any, 3)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, ok := m.GetOrLease(k)
			if !ok {
				t.Error("waiter must observe the filled lease")
			}
			got[i] = v
		}(i)
	}
	m.Put(k, "built")
	wg.Wait()
	for _, v := range got {
		if v != "built" {
			t.Fatalf("waiter got %v", v)
		}
	}
	m.Put(k, "dup") // first value wins
	if v, _ := m.GetOrLease(k); v != "built" {
		t.Fatalf("redundant put must not overwrite, got %v", v)
	}
}

func TestMemStoreSeals(t *testing.T) {
	m := NewMemStore()
	st := KeyFor(3, 4)
	if m.Latest(st, 7) != 0 {
		t.Fatal("empty store must report ordinal 0")
	}
	m.PutSeal(SealKey{State: st, Job: 7, Ordinal: 2}, "s2", 22)
	m.PutSeal(SealKey{State: st, Job: 7, Ordinal: 1}, "s1", 11)
	if m.Latest(st, 7) != 2 {
		t.Fatalf("latest = %d, want 2", m.Latest(st, 7))
	}
	v, d, ok := m.Seal(SealKey{State: st, Job: 7, Ordinal: 1})
	if !ok || v != "s1" || d != 11 {
		t.Fatalf("seal 1 = %v %d %v", v, d, ok)
	}
	m.PutSeal(SealKey{State: st, Job: 7, Ordinal: 1}, "other", 99)
	if v, d, _ := m.Seal(SealKey{State: st, Job: 7, Ordinal: 1}); v != "s1" || d != 11 {
		t.Fatalf("PutSeal must be idempotent, got %v %d", v, d)
	}
	if m.Latest(st, 8) != 0 {
		t.Fatal("latest must be per-job")
	}
}
