package derive

import "sort"

// Inputs declares what each part of a build reads from the source tree —
// the per-unit input sets of the derivation key. Paths use the same
// namespace as TreeHash leaves (absolute image paths).
//
//   - Phase: read by every driver invocation and the configure phase
//     (debian/rules, debian/control, configure.ac). Any seal taken after the
//     driver first ran has these in its prefix.
//   - Shared: read by every compile-unit execution (the Makefile, parsed per
//     make invocation, and every header — each unit includes them all).
//   - Units: per compile unit, the sources only that unit reads.
type Inputs struct {
	Phase  []string
	Shared []string
	Units  map[string][]string
}

// SealInfo describes one sealed checkpoint's progress for rebuild planning,
// derived from the sealed filesystem itself (core.Checkpoint.RebuildInfo) —
// not from the seal's position in the run, so planning never depends on the
// salted compile order.
type SealInfo struct {
	// Ordinal is the seal's 1-based sequence number within its run.
	Ordinal int
	// Configured reports whether the driver had journaled a phase boundary
	// by seal time — i.e. the Phase inputs are in the sealed prefix. The
	// very first seal (taken at the driver's initial execve, before any
	// read) has Configured false: its prefix touched nothing, so it is
	// valid under any content patch.
	Configured bool
	// Units are the compile units whose objects exist in the sealed tree:
	// their input sets — and the Shared inputs — are in the sealed prefix.
	Units []string
}

// Plan is the rebuild decision for one patched tree: which seal to fork,
// which units re-execute, which are reused from the derivation store.
type Plan struct {
	// Dirty is the tree delta (sorted leaf paths whose hashes changed).
	Dirty []string
	// DirtyUnits are the compile units whose input sets cover a dirty leaf
	// (sorted); every other unit's object is reusable.
	DirtyUnits []string
	// Ordinal is the freshest seal whose sealed prefix read no dirty input
	// (0 = none usable).
	Ordinal int
	// Reused are the chosen seal's already-built units — the work the
	// rebuild skips.
	Reused []string
	// Cold means no seal can be forked (tree shape changed, a dirty path is
	// claimed by no input set, or every seal's prefix is dirty): the rebuild
	// must run from scratch. The correctness gate is indifferent — a cold
	// rebuild of the patched tree produces the same bits — only the
	// rebuild-time win is lost.
	Cold bool
}

// PlanRebuild diffs the patched tree against the base build's tree and picks
// the freshest seal whose prefix is untouched by the patch. The validity
// rule is read-set containment: a seal may be forked iff nothing its sealed
// prefix read is dirty — the prefix then replays to the identical state on
// the patched tree, and amending the dirty leaves into the sealed filesystem
// makes the resumed suffix bitwise-equal to a cold build of the patch.
func PlanRebuild(base, patched TreeHash, in Inputs, seals []SealInfo) Plan {
	dirty, shape := patched.Diff(base)
	p := Plan{Dirty: dirty}
	if shape {
		// Adds/removes change inode allocation order and directory-listing
		// outcomes for the whole run: no sealed prefix is safe.
		p.Cold = true
		return p
	}

	dirtySet := make(map[string]bool, len(dirty))
	for _, d := range dirty {
		dirtySet[d] = true
	}
	hits := func(paths []string) bool {
		for _, q := range paths {
			if dirtySet[q] {
				return true
			}
		}
		return false
	}

	// Every dirty path must be claimed by an input set; an unclaimed path
	// means the declared inputs under-approximate what the build reads, and
	// reuse would be unsound.
	claimed := make(map[string]bool)
	for _, q := range in.Phase {
		claimed[q] = true
	}
	for _, q := range in.Shared {
		claimed[q] = true
	}
	for _, ins := range in.Units {
		for _, q := range ins {
			claimed[q] = true
		}
	}
	for _, d := range dirty {
		if !claimed[d] {
			p.Cold = true
			return p
		}
	}

	phaseDirty := hits(in.Phase)
	sharedDirty := hits(in.Shared)
	dirtyUnit := make(map[string]bool)
	for name, ins := range in.Units {
		if sharedDirty || hits(ins) {
			dirtyUnit[name] = true
		}
	}
	p.DirtyUnits = make([]string, 0, len(dirtyUnit))
	for name := range dirtyUnit {
		p.DirtyUnits = append(p.DirtyUnits, name)
	}
	sort.Strings(p.DirtyUnits)

	ordered := append([]SealInfo(nil), seals...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Ordinal > ordered[j].Ordinal })
	for _, s := range ordered {
		if (s.Configured || len(s.Units) > 0) && phaseDirty {
			continue
		}
		if len(s.Units) > 0 {
			if sharedDirty {
				continue
			}
			bad := false
			for _, u := range s.Units {
				if dirtyUnit[u] {
					bad = true
					break
				}
			}
			if bad {
				continue
			}
		}
		p.Ordinal = s.Ordinal
		p.Reused = append([]string(nil), s.Units...)
		return p
	}
	p.Cold = true
	return p
}
