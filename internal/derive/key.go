package derive

// Key is the content address of one piece of prepared state: the image
// content hash and the behaviour-relevant config hash. It is THE cache-key
// semantics of the whole system — the buildsim snapshot, template and
// checkpoint LRUs, the farm shard store and the incremental-rebuild planner
// all derive their keys through KeyFor, so no two cache layers can drift in
// what "the same prepared state" means.
//
// The Config slot is zero for baseline kernel snapshots: a prepared
// kernel.Snapshot depends only on the image (the per-run BootConfig carries
// everything else), while a core.Template additionally bakes in the
// container policy, so its slot carries core.ConfigHash. The config hash
// includes the DisableIncremental ablation bit, so incremental and ablated
// builds can never share a cache line.
type Key struct {
	Image  uint64
	Config uint64
}

// KeyFor derives the canonical cache key for prepared state built from an
// image with the given content hash under the given config hash (zero for
// config-free state like baseline kernel snapshots).
func KeyFor(imageHash, configHash uint64) Key {
	return Key{Image: imageHash, Config: configHash}
}

// Hash folds the key into one 64-bit content address, used for sharding and
// for the farm protocol's idempotency keys.
func (k Key) Hash() uint64 {
	return DigestU64(0, k.Image, k.Config)
}

// Shard maps the key onto one of n cache shards.
func (k Key) Shard(n int) int {
	if n <= 1 {
		return 0
	}
	return int(k.Hash() % uint64(n))
}

// SealKey addresses one checkpoint seal in the derivation store: the
// prepared-state key the seal belongs to, the job that sealed it, and the
// seal's 1-based ordinal within that job's run.
type SealKey struct {
	State   Key
	Job     uint64
	Ordinal int
}
