// Package derive is the unified derivation-key schema: the one place the
// system says what a build output is a function of, and therefore what every
// cache layer must key on (ISSUE 8).
//
// The paper's determinism guarantee makes a DetTrace build a pure function
// of its declared inputs, which turns bitwise equality into a cache-validity
// oracle: any state derived from the same inputs may be reused anywhere, and
// any input change invalidates exactly the state derived from it. Before
// this package, that keying was duplicated ad hoc — the buildsim snapshot /
// template / checkpoint LRUs, the farm shard store and the core template
// guard each carried their own (image hash, config hash) arithmetic and
// their own FNV mixer. Key-skew between copies is precisely the class of bug
// Malka et al. show plagues real-world Docker rebuilds: two layers that
// disagree about what "the same inputs" means silently serve stale state.
//
// The schema has four levels, one per reuse granularity:
//
//	Key      (image hash, config hash)      — prepared state: snapshots, templates
//	SealKey  (Key, job, ordinal)            — checkpoint seals of one run
//	TreeHash (root, per-file leaves)        — the source tree, Merkle-style
//	Inputs   (per-unit input sets)          — what each compile unit reads
//
// On top of the keys sits the incremental-rebuild planner (plan.go): given
// the tree delta between a base build and a patched tree, the per-unit input
// sets, and what each sealed checkpoint had read, PlanRebuild picks the
// freshest seal whose prefix is untouched by the patch — the state a rebuild
// may fork instead of cold-booting — and names the compile units that must
// re-execute. Everything else is reused from the derivation store (store.go),
// locally or across farm nodes.
//
// derive imports only the standard library, so every layer — fs, core,
// kernel, buildsim, farm, obs — can share it without cycles.
package derive

import "encoding/binary"

// fnvOffset/fnvPrime are the FNV-1a constants. Every content hash in the
// system folds through these — the same constants obs event digests, image
// hashes and config hashes always used, now defined once.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Hasher is a streaming FNV-1a hasher with the canonical field framings:
// numbers are 8 little-endian bytes, strings and byte fields are
// length-prefixed, flags are 0/1 words. It deduplicates the hand-rolled
// mixers that core.ConfigHash, fs.Image.Hash and the per-package helpers
// each carried: one framing, one set of constants, no drift.
type Hasher struct{ h uint64 }

// NewHasher returns a hasher at the FNV-1a offset basis.
func NewHasher() *Hasher { return &Hasher{h: fnvOffset} }

// Bytes folds raw bytes (no length prefix; use Str for delimited fields).
func (hs *Hasher) Bytes(p []byte) {
	h := hs.h
	for _, b := range p {
		h = (h ^ uint64(b)) * fnvPrime
	}
	hs.h = h
}

// Num folds one 64-bit word, little-endian.
func (hs *Hasher) Num(v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	hs.Bytes(buf[:])
}

// Str folds a length-prefixed string.
func (hs *Hasher) Str(s string) {
	hs.Num(uint64(len(s)))
	hs.Bytes([]byte(s))
}

// Data folds a length-prefixed byte field.
func (hs *Hasher) Data(p []byte) {
	hs.Num(uint64(len(p)))
	hs.Bytes(p)
}

// Flag folds a boolean as a 0/1 word.
func (hs *Hasher) Flag(b bool) {
	if b {
		hs.Num(1)
	} else {
		hs.Num(0)
	}
}

// Sum returns the current digest.
func (hs *Hasher) Sum() uint64 { return hs.h }

// DigestBytes folds a byte slice into a 64-bit FNV-1a digest.
func DigestBytes(p []byte) uint64 {
	h := uint64(fnvOffset)
	for _, b := range p {
		h = (h ^ uint64(b)) * fnvPrime
	}
	return h
}

// DigestU64 folds additional words into a running digest (0 restarts from
// the offset basis).
func DigestU64(h uint64, vs ...uint64) uint64 {
	if h == 0 {
		h = fnvOffset
	}
	for _, v := range vs {
		for i := 0; i < 8; i++ {
			h = (h ^ (v & 0xff)) * fnvPrime
			v >>= 8
		}
	}
	return h
}
