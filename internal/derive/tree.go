package derive

import "sort"

// TreeHash is the Merkle-style source-tree hash: one leaf digest per path
// (covering that entry's type, ownership, contents and link target) and a
// root fold over the sorted leaves. The root is the tree's content address —
// fs.Image.Hash returns exactly it — and the leaves are what incremental
// rebuilds diff: a one-file patch changes one leaf, and the planner
// invalidates exactly the derived state whose input set covers that leaf.
type TreeHash struct {
	Root   uint64
	Leaves map[string]uint64
}

// FoldLeaves computes the root digest over leaves in sorted path order.
// The fold frames each (path, leaf) pair, so the root commits to the path
// set as well as the contents: adding, removing or renaming an entry moves
// the root even if every surviving leaf is unchanged.
func FoldLeaves(leaves map[string]uint64) uint64 {
	paths := make([]string, 0, len(leaves))
	for p := range leaves {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	h := NewHasher()
	for _, p := range paths {
		h.Str(p)
		h.Num(leaves[p])
	}
	return h.Sum()
}

// Diff compares this tree against a base. dirty lists, in sorted order,
// every path whose leaf differs plus every path present in only one tree;
// shape reports whether the path sets themselves differ (a file added,
// removed or renamed). A shape change defeats incremental rebuilding —
// inode allocation and directory-listing outcomes depend on the path set —
// so the planner goes cold on it.
func (t TreeHash) Diff(base TreeHash) (dirty []string, shape bool) {
	for p, leaf := range t.Leaves {
		bl, ok := base.Leaves[p]
		if !ok {
			dirty = append(dirty, p)
			shape = true
		} else if bl != leaf {
			dirty = append(dirty, p)
		}
	}
	for p := range base.Leaves {
		if _, ok := t.Leaves[p]; !ok {
			dirty = append(dirty, p)
			shape = true
		}
	}
	sort.Strings(dirty)
	return dirty, shape
}
