package derive

import "sync"

// Store is the derivation store: content-addressed prepared state (baseline
// kernel snapshots, container templates) plus checkpoint seals, the reusable
// derived artifacts of a build. farm.Shards implements it at the coordinator
// for cross-node reuse; MemStore implements it in-process for local
// incremental rebuilds. The interface is the lease protocol the farm wire
// format already speaks, so one store semantics serves both.
type Store interface {
	// GetOrLease returns the prepared state at k. The first caller for a
	// missing key gets (nil, false): it holds the lease and must call Put.
	// Later callers block until the lease is filled and return (val, true).
	GetOrLease(k Key) (any, bool)
	// Put fills the lease at k with the built state and wakes all waiters.
	Put(k Key, val any)
	// PutSeal stores a checkpoint seal under k and advances the
	// freshest-ordinal marker for its (state, job). Idempotent: first wins.
	PutSeal(k SealKey, val any, digest uint64)
	// Seal returns the seal stored at k, its digest, and whether it exists.
	Seal(k SealKey) (any, uint64, bool)
	// Latest returns the freshest seal ordinal recorded for (state, job),
	// or 0 if the job sealed nothing.
	Latest(state Key, job uint64) int
}

// MemStore is the in-process Store used for local incremental rebuilds: one
// shard of the same lease/seal semantics farm.Shards serves cluster-wide.
type MemStore struct {
	mu     sync.Mutex
	state  map[Key]*memEntry
	seals  map[SealKey]memSeal
	latest map[memLatest]int
}

type memEntry struct {
	ready chan struct{} // closed once val is set
	val   any
}

type memSeal struct {
	val    any
	digest uint64
}

type memLatest struct {
	state Key
	job   uint64
}

var _ Store = (*MemStore)(nil)

// NewMemStore returns an empty in-process derivation store.
func NewMemStore() *MemStore {
	return &MemStore{
		state:  make(map[Key]*memEntry),
		seals:  make(map[SealKey]memSeal),
		latest: make(map[memLatest]int),
	}
}

func (m *MemStore) GetOrLease(k Key) (any, bool) {
	m.mu.Lock()
	e, ok := m.state[k]
	if !ok {
		m.state[k] = &memEntry{ready: make(chan struct{})}
		m.mu.Unlock()
		return nil, false
	}
	m.mu.Unlock()
	<-e.ready
	return e.val, true
}

func (m *MemStore) Put(k Key, val any) {
	m.mu.Lock()
	e := m.state[k]
	if e == nil {
		e = &memEntry{ready: make(chan struct{})}
		m.state[k] = e
	}
	m.mu.Unlock()
	select {
	case <-e.ready:
		// Redundant put; first value wins.
	default:
		e.val = val
		close(e.ready)
	}
}

func (m *MemStore) PutSeal(k SealKey, val any, digest uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.seals[k]; !ok {
		m.seals[k] = memSeal{val: val, digest: digest}
	}
	lk := memLatest{k.State, k.Job}
	if k.Ordinal > m.latest[lk] {
		m.latest[lk] = k.Ordinal
	}
}

func (m *MemStore) Seal(k SealKey) (any, uint64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.seals[k]
	return e.val, e.digest, ok
}

func (m *MemStore) Latest(state Key, job uint64) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.latest[memLatest{state, job}]
}
