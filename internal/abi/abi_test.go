package abi

import (
	"testing"
	"testing/quick"
)

func TestErrnoStrings(t *testing.T) {
	cases := map[Errno]string{
		OK: "OK", ENOENT: "ENOENT", EAGAIN: "EAGAIN", ENOSYS: "ENOSYS",
		Errno(9999): "errno(9999)",
	}
	for e, want := range cases {
		if e.String() != want || (e != OK && e.Error() != want) {
			t.Errorf("%d -> %q, want %q", int32(e), e.String(), want)
		}
	}
}

func TestSysnoStrings(t *testing.T) {
	if SysGetdents.String() != "getdents" || SysExecve.String() != "execve" {
		t.Errorf("syscall names wrong")
	}
	if Sysno(9999).String() != "sys_9999" {
		t.Errorf("unknown syscall formatting")
	}
}

func TestSignalStrings(t *testing.T) {
	if SIGALRM.String() != "SIGALRM" || Signal(99).String() != "signal(99)" {
		t.Errorf("signal names wrong")
	}
}

func TestWaitStatusEncoding(t *testing.T) {
	ws := ExitStatus(42)
	if !ws.Exited() || ws.ExitCode() != 42 || ws.Signaled() {
		t.Errorf("exit status: %+v", ws)
	}
	ws = SignalStatus(SIGTERM)
	if ws.Exited() || !ws.Signaled() || ws.TermSignal() != SIGTERM {
		t.Errorf("signal status: %+v", ws)
	}
}

// Property: exit codes round-trip modulo 256 and never look signaled.
func TestExitStatusRoundTripProperty(t *testing.T) {
	prop := func(code uint8) bool {
		ws := ExitStatus(int(code))
		return ws.Exited() && ws.ExitCode() == int(code) && !ws.Signaled()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: Timespec <-> nanoseconds round-trips for non-negative times.
func TestTimespecRoundTripProperty(t *testing.T) {
	prop := func(ns int64) bool {
		if ns < 0 {
			ns = -ns
		}
		ts := TimespecFromNanos(ns)
		return ts.Nanos() == ns && ts.Nsec >= 0 && ts.Nsec < 1e9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestStatTypePredicates(t *testing.T) {
	var st Stat
	st.Mode = ModeDir | 0o755
	if !st.IsDir() || st.IsRegular() {
		t.Errorf("dir predicates wrong")
	}
	st.Mode = ModeRegular | 0o644
	if st.IsDir() || !st.IsRegular() {
		t.Errorf("file predicates wrong")
	}
}

func TestSyscallErrnoPlumbing(t *testing.T) {
	var sc Syscall
	sc.SetErrno(ENOENT)
	if sc.Err() != ENOENT || sc.Ret != -int64(ENOENT) {
		t.Errorf("errno plumbing: %+v", sc)
	}
	sc.Ret = 42
	if sc.Err() != OK || sc.Value() != 42 {
		t.Errorf("success plumbing: %+v", sc)
	}
}
