// Package abi defines the guest-visible Linux ABI of the simulated kernel:
// system call numbers, errno values, file modes and flags, and the wire
// structures (Stat, Dirent, Utsname, ...) that system calls read and write.
//
// The numbering follows the x86-64 Linux syscall table so that traces,
// seccomp filters and debug output read like the real thing. Only the calls
// the simulated kernel implements are listed; attempting any other number
// returns ENOSYS, exactly as the paper's taxonomy requires for the
// "unsupported, reproducible error" mitigation class.
package abi

import "fmt"

// Errno is a Linux error number as seen by guest programs. The zero value
// means success.
type Errno int32

// Errno values used by the simulated kernel (x86-64 Linux numbering).
const (
	OK          Errno = 0
	EPERM       Errno = 1
	ENOENT      Errno = 2
	ESRCH       Errno = 3
	EINTR       Errno = 4
	EIO         Errno = 5
	ENXIO       Errno = 6
	EBADF       Errno = 9
	ECHILD      Errno = 10
	EAGAIN      Errno = 11
	ENOMEM      Errno = 12
	EACCES      Errno = 13
	EFAULT      Errno = 14
	EBUSY       Errno = 16
	EEXIST      Errno = 17
	EXDEV       Errno = 18
	ENODEV      Errno = 19
	ENOTDIR     Errno = 20
	EISDIR      Errno = 21
	EINVAL      Errno = 22
	ENFILE      Errno = 23
	EMFILE      Errno = 24
	ENOTTY      Errno = 25
	EFBIG       Errno = 27
	ENOSPC      Errno = 28
	ESPIPE      Errno = 29
	EROFS       Errno = 30
	EMLINK      Errno = 31
	EPIPE       Errno = 32
	ERANGE      Errno = 34
	EDEADLK     Errno = 35
	ENAMETOOLON Errno = 36
	ENOSYS      Errno = 38
	ENOTEMPTY   Errno = 39
	ELOOP       Errno = 40
	ECONNRESET  Errno = 104
	ENOTCONN    Errno = 107
	ETIMEDOUT   Errno = 110
	ECONNREFUSE Errno = 111
)

var errnoNames = map[Errno]string{
	OK: "OK", EPERM: "EPERM", ENOENT: "ENOENT", ESRCH: "ESRCH",
	EINTR: "EINTR", EIO: "EIO", ENXIO: "ENXIO", EBADF: "EBADF",
	ECHILD: "ECHILD", EAGAIN: "EAGAIN", ENOMEM: "ENOMEM", EACCES: "EACCES",
	EFAULT: "EFAULT", EBUSY: "EBUSY", EEXIST: "EEXIST", EXDEV: "EXDEV",
	ENODEV: "ENODEV", ENOTDIR: "ENOTDIR", EISDIR: "EISDIR", EINVAL: "EINVAL",
	ENFILE: "ENFILE", EMFILE: "EMFILE", ENOTTY: "ENOTTY", EFBIG: "EFBIG",
	ENOSPC: "ENOSPC", ESPIPE: "ESPIPE", EROFS: "EROFS", EMLINK: "EMLINK",
	EPIPE: "EPIPE", ERANGE: "ERANGE", EDEADLK: "EDEADLK",
	ENAMETOOLON: "ENAMETOOLONG", ENOSYS: "ENOSYS", ENOTEMPTY: "ENOTEMPTY",
	ELOOP: "ELOOP", ECONNRESET: "ECONNRESET", ENOTCONN: "ENOTCONN",
	ETIMEDOUT: "ETIMEDOUT", ECONNREFUSE: "ECONNREFUSED",
}

// Error implements the error interface so Errno values can flow through
// ordinary Go error handling inside guest programs.
func (e Errno) Error() string { return e.String() }

// String returns the symbolic name, e.g. "ENOENT".
func (e Errno) String() string {
	if s, ok := errnoNames[e]; ok {
		return s
	}
	return fmt.Sprintf("errno(%d)", int32(e))
}

// Sysno is an x86-64 Linux system call number.
type Sysno int

// System call numbers implemented by the simulated kernel.
const (
	SysRead          Sysno = 0
	SysWrite         Sysno = 1
	SysOpen          Sysno = 2
	SysClose         Sysno = 3
	SysStat          Sysno = 4
	SysFstat         Sysno = 5
	SysLstat         Sysno = 6
	SysLseek         Sysno = 8
	SysMmap          Sysno = 9
	SysBrk           Sysno = 12
	SysRtSigaction   Sysno = 13
	SysIoctl         Sysno = 16
	SysPipe          Sysno = 22
	SysSchedYield    Sysno = 24
	SysDup2          Sysno = 33
	SysPause         Sysno = 34
	SysNanosleep     Sysno = 35
	SysGetitimer     Sysno = 36
	SysAlarm         Sysno = 37
	SysSetitimer     Sysno = 38
	SysGetpid        Sysno = 39
	SysSocket        Sysno = 41
	SysConnect       Sysno = 42
	SysAccept        Sysno = 43
	SysBind          Sysno = 49
	SysListen        Sysno = 50
	SysClone         Sysno = 56
	SysFork          Sysno = 57
	SysExecve        Sysno = 59
	SysExit          Sysno = 60
	SysWait4         Sysno = 61
	SysKill          Sysno = 62
	SysUname         Sysno = 63
	SysFutex         Sysno = 202
	SysFcntl         Sysno = 72
	SysTruncate      Sysno = 76
	SysFtruncate     Sysno = 77
	SysGetdents      Sysno = 78
	SysGetcwd        Sysno = 79
	SysChdir         Sysno = 80
	SysRename        Sysno = 82
	SysMkdir         Sysno = 83
	SysRmdir         Sysno = 84
	SysCreat         Sysno = 85
	SysLink          Sysno = 86
	SysUnlink        Sysno = 87
	SysSymlink       Sysno = 88
	SysReadlink      Sysno = 89
	SysChmod         Sysno = 90
	SysChown         Sysno = 92
	SysUmask         Sysno = 95
	SysGettimeofday  Sysno = 96
	SysSysinfo       Sysno = 99
	SysGetuid        Sysno = 102
	SysGetgid        Sysno = 104
	SysSetuid        Sysno = 105
	SysGetppid       Sysno = 110
	SysChroot        Sysno = 161
	SysSync          Sysno = 162
	SysMount         Sysno = 165
	SysTime          Sysno = 201
	SysGetTid        Sysno = 186
	SysSchedAffinity Sysno = 204
	SysClockGettime  Sysno = 228
	SysExitGroup     Sysno = 231
	SysUtimes        Sysno = 235
	SysOpenat        Sysno = 257
	SysUnlinkat      Sysno = 263
	SysUtimensat     Sysno = 280
	SysAccept4       Sysno = 288
	SysPipe2         Sysno = 293
	SysPrctl         Sysno = 157
	SysArchPrctl     Sysno = 158
	SysPersonality   Sysno = 135
	SysGetrandom     Sysno = 318
	SysAccess        Sysno = 21
	SysSocketpair    Sysno = 53
	SysSendto        Sysno = 44
	SysRecvfrom      Sysno = 45

	// SysFetch is a pseudo system call (no Linux equivalent): fetch an
	// external file by URL. The stock kernel has no network and returns
	// ENOSYS; DetTrace services it from the container's declared,
	// checksum-verified download set — the §3 "limited forms of external
	// interaction" extension.
	SysFetch Sysno = 999
)

// SysnoSlots bounds the dense per-syscall tables used on hot paths (seccomp
// verdicts, kernel event counters): every Sysno above, including the SysFetch
// pseudo-call, is below it.
const SysnoSlots = 1024

var sysNames = map[Sysno]string{
	SysRead: "read", SysWrite: "write", SysOpen: "open", SysClose: "close",
	SysStat: "stat", SysFstat: "fstat", SysLstat: "lstat", SysLseek: "lseek",
	SysMmap: "mmap", SysBrk: "brk", SysRtSigaction: "rt_sigaction",
	SysIoctl: "ioctl", SysPipe: "pipe", SysSchedYield: "sched_yield",
	SysDup2: "dup2", SysPause: "pause", SysNanosleep: "nanosleep",
	SysGetitimer: "getitimer", SysAlarm: "alarm", SysSetitimer: "setitimer",
	SysGetpid: "getpid", SysSocket: "socket", SysConnect: "connect",
	SysAccept: "accept", SysBind: "bind", SysListen: "listen",
	SysClone: "clone", SysFork: "fork", SysExecve: "execve", SysExit: "exit",
	SysWait4: "wait4", SysKill: "kill", SysUname: "uname", SysFutex: "futex",
	SysFcntl: "fcntl", SysTruncate: "truncate", SysFtruncate: "ftruncate",
	SysGetdents: "getdents", SysGetcwd: "getcwd", SysChdir: "chdir",
	SysRename: "rename", SysMkdir: "mkdir", SysRmdir: "rmdir",
	SysCreat: "creat", SysLink: "link", SysUnlink: "unlink",
	SysSymlink: "symlink", SysReadlink: "readlink", SysChmod: "chmod",
	SysChown: "chown", SysUmask: "umask", SysGettimeofday: "gettimeofday",
	SysSysinfo: "sysinfo", SysGetuid: "getuid", SysGetgid: "getgid",
	SysSetuid: "setuid", SysGetppid: "getppid", SysChroot: "chroot",
	SysSync: "sync", SysMount: "mount", SysTime: "time", SysGetTid: "gettid",
	SysSchedAffinity: "sched_setaffinity", SysClockGettime: "clock_gettime",
	SysExitGroup: "exit_group", SysUtimes: "utimes", SysOpenat: "openat",
	SysUnlinkat: "unlinkat", SysUtimensat: "utimensat", SysAccept4: "accept4",
	SysPipe2: "pipe2", SysPrctl: "prctl", SysArchPrctl: "arch_prctl",
	SysGetrandom: "getrandom", SysAccess: "access", SysPersonality: "personality",
	SysFetch:      "fetch",
	SysSocketpair: "socketpair", SysSendto: "sendto", SysRecvfrom: "recvfrom",
}

// Sysnos returns every known system call number — the dispatch universe,
// including the fetch pseudo-call — in no particular order. Tests use it to
// check that interception layers cover the whole universe.
func Sysnos() []Sysno {
	out := make([]Sysno, 0, len(sysNames))
	for nr := range sysNames {
		out = append(out, nr)
	}
	return out
}

// String returns the syscall name, e.g. "getdents".
func (s Sysno) String() string {
	if n, ok := sysNames[s]; ok {
		return n
	}
	return fmt.Sprintf("sys_%d", int(s))
}

// File type bits for Stat.Mode, matching Linux S_IF* values.
const (
	ModeTypeMask = 0o170000
	ModeRegular  = 0o100000
	ModeDir      = 0o040000
	ModeSymlink  = 0o120000
	ModeFIFO     = 0o010000
	ModeCharDev  = 0o020000
	ModeSocket   = 0o140000
	ModePermMask = 0o7777
)

// Open flags, matching Linux O_* values.
const (
	ORdonly    = 0x0
	OWronly    = 0x1
	ORdwr      = 0x2
	OCreat     = 0x40
	OExcl      = 0x80
	OTrunc     = 0x200
	OAppend    = 0x400
	ONonblock  = 0x800
	ODirectory = 0x10000
)

// lseek whence values.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// Clone flags (subset). CloneThread creates a thread sharing the address
// space, fd table and futex namespace of the caller.
const (
	CloneVM     = 0x100
	CloneFiles  = 0x400
	CloneThread = 0x10000
)

// wait4 options.
const WNOHANG = 1

// Futex operations.
const (
	FutexWait = 0
	FutexWake = 1
)

// prctl / arch_prctl operations used by DetTrace for instruction trapping.
const (
	PrSetTSC       = 26 // prctl: configure rdtsc trapping
	PrTSCEnable    = 1
	PrTSCSigsegv   = 2 // rdtsc raises a trap the tracer observes
	ArchSetCpuid   = 0x1012
	ArchCpuidTrap  = 0 // cpuid faults and is emulated by the tracer
	ArchCpuidAllow = 1
)

// Signal numbers (subset).
type Signal int

const (
	SIGHUP    Signal = 1
	SIGINT    Signal = 2
	SIGILL    Signal = 4
	SIGABRT   Signal = 6
	SIGKILL   Signal = 9
	SIGSEGV   Signal = 11
	SIGPIPE   Signal = 13
	SIGALRM   Signal = 14
	SIGTERM   Signal = 15
	SIGCHLD   Signal = 17
	SIGUSR1   Signal = 10
	SIGUSR2   Signal = 12
	SIGVTALRM Signal = 26
)

var sigNames = map[Signal]string{
	SIGHUP: "SIGHUP", SIGINT: "SIGINT", SIGILL: "SIGILL", SIGABRT: "SIGABRT",
	SIGKILL: "SIGKILL", SIGSEGV: "SIGSEGV", SIGPIPE: "SIGPIPE",
	SIGALRM: "SIGALRM", SIGTERM: "SIGTERM", SIGCHLD: "SIGCHLD",
	SIGUSR1: "SIGUSR1", SIGUSR2: "SIGUSR2", SIGVTALRM: "SIGVTALRM",
}

// String returns the symbolic signal name.
func (s Signal) String() string {
	if n, ok := sigNames[s]; ok {
		return n
	}
	return fmt.Sprintf("signal(%d)", int(s))
}

// Timespec is a (seconds, nanoseconds) pair as used by stat and utimensat.
type Timespec struct {
	Sec  int64
	Nsec int64
}

// Nanos returns the timespec as a single nanosecond count.
func (t Timespec) Nanos() int64 { return t.Sec*1e9 + t.Nsec }

// TimespecFromNanos converts a nanosecond count into a Timespec.
func TimespecFromNanos(ns int64) Timespec {
	return Timespec{Sec: ns / 1e9, Nsec: ns % 1e9}
}

// Stat is the structure filled in by the stat family of system calls.
type Stat struct {
	Dev     uint64
	Ino     uint64
	Mode    uint32
	Nlink   uint32
	UID     uint32
	GID     uint32
	Size    int64
	Blksize int64
	Blocks  int64
	Atime   Timespec
	Mtime   Timespec
	Ctime   Timespec
}

// IsDir reports whether the mode describes a directory.
func (s *Stat) IsDir() bool { return s.Mode&ModeTypeMask == ModeDir }

// IsRegular reports whether the mode describes a regular file.
func (s *Stat) IsRegular() bool { return s.Mode&ModeTypeMask == ModeRegular }

// Dirent is a single directory entry as returned by getdents.
type Dirent struct {
	Ino  uint64
	Type uint32 // one of the ModeType* constants shifted per Linux DT_*; we store the S_IF bits
	Name string
}

// Utsname is the structure filled in by uname.
type Utsname struct {
	Sysname  string
	Nodename string
	Release  string
	Version  string
	Machine  string
}

// Sysinfo is the structure filled in by sysinfo.
type Sysinfo struct {
	Uptime   int64
	TotalRAM uint64
	FreeRAM  uint64
	Procs    uint16
	NumCPU   int
}

// Itimerval describes an interval timer (setitimer), in nanoseconds.
type Itimerval struct {
	Interval int64
	Value    int64
}

// Rusage is a minimal resource-usage report for wait4.
type Rusage struct {
	UserNanos   int64
	SystemNanos int64
}

// WaitStatus encodes a child's exit status the way the kernel reports it.
type WaitStatus int

// Exited reports whether the status encodes a normal exit.
func (w WaitStatus) Exited() bool { return w&0x7f == 0 }

// ExitCode returns the exit code for a normally exited child.
func (w WaitStatus) ExitCode() int { return int(w>>8) & 0xff }

// Signaled reports whether the child was terminated by a signal.
func (w WaitStatus) Signaled() bool { return w&0x7f != 0 }

// TermSignal returns the terminating signal number.
func (w WaitStatus) TermSignal() Signal { return Signal(w & 0x7f) }

// ExitStatus builds a WaitStatus for a normal exit with the given code.
func ExitStatus(code int) WaitStatus { return WaitStatus((code & 0xff) << 8) }

// SignalStatus builds a WaitStatus for a signal-terminated child.
func SignalStatus(sig Signal) WaitStatus { return WaitStatus(sig) & 0x7f }
