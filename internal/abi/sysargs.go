package abi

// Syscall is the in-flight representation of one system call: the register
// file as the tracer sees it. Scalar arguments live in Arg (the six argument
// registers); pointer arguments are decoded into Path/Path2 (string
// pointers), Buf (a data buffer aliasing guest memory) and Obj (a typed
// struct pointer such as *Stat or *Utsname).
//
// A ptrace-style tracer may mutate any field at the pre-syscall stop: change
// Num to turn the call into a NOP (DetTrace rewrites to SysTime, §5.10),
// edit Arg to add WNOHANG, or swap Obj for a struct it allocated in the
// tracee's scratch page. At the post-syscall stop it may rewrite Ret and the
// contents of Buf/Obj before the tracee resumes.
type Syscall struct {
	Num   Sysno
	Arg   [6]int64
	Path  string // first path-like argument, already read from tracee memory
	Path2 string // second path-like argument (rename, link, symlink)
	Buf   []byte // data buffer shared with the tracee's address space
	Obj   any    // decoded struct argument (e.g. *Stat out, *Utsname out)

	// Ret is the return value: >= 0 on success, or the negated errno.
	Ret int64

	// Injected marks a call the tracer manufactured (e.g. a retried read);
	// injected calls are not re-reported to the tracer.
	Injected bool

	// Attempts counts kernel re-executions of this call: blocking retries
	// and tracer-requested replays. Interception layers use it to count
	// events exactly once.
	Attempts int

	// Verdict caches an interception layer's classification of this call
	// (a seccomp filter decision) so the entry and exit stops share one
	// lookup. Zero means "not classified yet"; layers store their verdict
	// biased by +1. The field belongs to whichever layer set it — the
	// kernel never reads it.
	Verdict uint8
}

// SetErrno stores an error return. SetErrno(OK) stores 0.
func (sc *Syscall) SetErrno(e Errno) { sc.Ret = -int64(e) }

// Err returns the errno encoded in Ret, or OK for success values.
func (sc *Syscall) Err() Errno {
	if sc.Ret < 0 {
		return Errno(-sc.Ret)
	}
	return OK
}

// Value returns the non-negative result. It is only meaningful when
// Err() == OK.
func (sc *Syscall) Value() int64 { return sc.Ret }

// Regs is the subset of the tracee register file the tracer can observe and
// modify: the program counter (used to re-run a syscall instruction for
// read/write retries) and the syscall register block.
type Regs struct {
	PC      uint64
	Syscall *Syscall
}
