// Package artar defines the archive format the simulated toolchain uses —
// the stand-in for tar/ar/deb containers. Like real tar, each member header
// records name, mode, ownership and mtime, so an archive built from
// identical file contents still differs bitwise when the filesystem's
// timestamps differ. That is the property that makes zero stock Debian
// packages reproducible before strip-nondeterminism (§6.1).
package artar

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
)

// Magic identifies an artar archive.
const Magic = "!<artar>"

// Member is one archived file.
type Member struct {
	Name  string
	Mode  uint32
	UID   uint32
	GID   uint32
	Mtime int64 // seconds
	Data  []byte
}

// Archive is an ordered list of members. Order is significant — it is
// whatever order the packing tool walked the directory in, so host readdir
// order leaks into the artifact.
type Archive struct {
	Members []Member
}

// Add appends a member.
func (a *Archive) Add(m Member) { a.Members = append(a.Members, m) }

// Pack serializes the archive.
func (a *Archive) Pack() []byte {
	var buf bytes.Buffer
	buf.WriteString(Magic + "\n")
	for _, m := range a.Members {
		fmt.Fprintf(&buf, "entry name=%q mode=%o uid=%d gid=%d mtime=%d size=%d\n",
			m.Name, m.Mode, m.UID, m.GID, m.Mtime, len(m.Data))
		buf.Write(m.Data)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// Unpack parses archive bytes.
func Unpack(raw []byte) (*Archive, error) {
	if !bytes.HasPrefix(raw, []byte(Magic+"\n")) {
		return nil, fmt.Errorf("artar: bad magic")
	}
	rest := raw[len(Magic)+1:]
	ar := &Archive{}
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			return nil, fmt.Errorf("artar: truncated header")
		}
		header := string(rest[:nl])
		rest = rest[nl+1:]
		m, size, err := parseHeader(header)
		if err != nil {
			return nil, err
		}
		if int64(len(rest)) < size+1 {
			return nil, fmt.Errorf("artar: truncated member %q", m.Name)
		}
		m.Data = append([]byte(nil), rest[:size]...)
		rest = rest[size+1:] // skip trailing newline
		ar.Add(m)
	}
	return ar, nil
}

func parseHeader(h string) (Member, int64, error) {
	if !strings.HasPrefix(h, "entry ") {
		return Member{}, 0, fmt.Errorf("artar: bad header %q", h)
	}
	var m Member
	var size int64
	fields := splitFields(h[len("entry "):])
	for _, f := range fields {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return Member{}, 0, fmt.Errorf("artar: bad field %q", f)
		}
		switch k {
		case "name":
			name, err := strconv.Unquote(v)
			if err != nil {
				return Member{}, 0, fmt.Errorf("artar: bad name %q", v)
			}
			m.Name = name
		case "mode":
			n, err := strconv.ParseUint(v, 8, 32)
			if err != nil {
				return Member{}, 0, err
			}
			m.Mode = uint32(n)
		case "uid":
			n, _ := strconv.ParseUint(v, 10, 32)
			m.UID = uint32(n)
		case "gid":
			n, _ := strconv.ParseUint(v, 10, 32)
			m.GID = uint32(n)
		case "mtime":
			m.Mtime, _ = strconv.ParseInt(v, 10, 64)
		case "size":
			size, _ = strconv.ParseInt(v, 10, 64)
		}
	}
	return m, size, nil
}

// splitFields splits on spaces outside quotes.
func splitFields(s string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' && (i == 0 || s[i-1] != '\\'):
			inQuote = !inQuote
			cur.WriteByte(c)
		case c == ' ' && !inQuote:
			if cur.Len() > 0 {
				out = append(out, cur.String())
				cur.Reset()
			}
		default:
			cur.WriteByte(c)
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

// IsArchive reports whether raw looks like an artar archive.
func IsArchive(raw []byte) bool { return bytes.HasPrefix(raw, []byte(Magic+"\n")) }
