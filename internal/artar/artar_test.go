package artar

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	ar := &Archive{}
	ar.Add(Member{Name: "usr/bin/tool", Mode: 0o755, UID: 0, GID: 0, Mtime: 12345, Data: []byte("#!exe\npayload")})
	ar.Add(Member{Name: "doc/с изменениями.txt", Mode: 0o644, Mtime: -1, Data: []byte("utf-8 names & \"quotes\"\nnewlines\n")})
	ar.Add(Member{Name: "empty", Mode: 0o600})

	back, err := Unpack(ar.Pack())
	if err != nil {
		t.Fatalf("unpack: %v", err)
	}
	if len(back.Members) != 3 {
		t.Fatalf("members = %d", len(back.Members))
	}
	for i, m := range ar.Members {
		g := back.Members[i]
		if g.Name != m.Name || g.Mode != m.Mode || g.Mtime != m.Mtime || string(g.Data) != string(m.Data) {
			t.Errorf("member %d mismatch: %+v vs %+v", i, g, m)
		}
	}
}

func TestUnpackRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("not an archive"),
		[]byte(Magic + "\nentry broken"),
		[]byte(Magic + "\nentry name=\"a\" mode=644 uid=0 gid=0 mtime=0 size=100\nshort\n"),
	}
	for i, c := range cases {
		if _, err := Unpack(c); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestIsArchive(t *testing.T) {
	ar := &Archive{}
	if !IsArchive(ar.Pack()) {
		t.Errorf("packed archive not recognized")
	}
	if IsArchive([]byte("plain")) {
		t.Errorf("plain data recognized as archive")
	}
}

func TestMemberOrderPreserved(t *testing.T) {
	ar := &Archive{}
	for i := 9; i >= 0; i-- {
		ar.Add(Member{Name: fmt.Sprintf("m%d", i)})
	}
	back, err := Unpack(ar.Pack())
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range back.Members {
		if m.Name != fmt.Sprintf("m%d", 9-i) {
			t.Fatalf("order not preserved: %v", back.Members)
		}
	}
}

func TestNestedArchives(t *testing.T) {
	inner := &Archive{}
	inner.Add(Member{Name: "deep", Data: []byte("bottom")})
	outer := &Archive{}
	outer.Add(Member{Name: "data.tar", Data: inner.Pack()})
	back, err := Unpack(outer.Pack())
	if err != nil {
		t.Fatal(err)
	}
	innerBack, err := Unpack(back.Members[0].Data)
	if err != nil || string(innerBack.Members[0].Data) != "bottom" {
		t.Fatalf("nested round trip failed: %v", err)
	}
}

// Property: Pack/Unpack is the identity for arbitrary member contents,
// including newlines, quotes and the magic string itself.
func TestRoundTripProperty(t *testing.T) {
	prop := func(names []string, blobs [][]byte, mtimes []int64) bool {
		ar := &Archive{}
		for i := range blobs {
			name := fmt.Sprintf("m%d", i)
			if i < len(names) {
				name += "-" + strings.Map(func(r rune) rune {
					if r == '\n' || r == '\r' {
						return '_'
					}
					return r
				}, names[i])
			}
			var mt int64
			if i < len(mtimes) {
				mt = mtimes[i]
			}
			ar.Add(Member{Name: name, Mode: uint32(i) % 0o7777, Mtime: mt, Data: blobs[i]})
		}
		back, err := Unpack(ar.Pack())
		if err != nil || len(back.Members) != len(ar.Members) {
			return false
		}
		for i := range ar.Members {
			a, b := ar.Members[i], back.Members[i]
			if a.Name != b.Name || a.Mtime != b.Mtime || string(a.Data) != string(b.Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: archives with adversarial payloads (containing the magic and
// header syntax) still round-trip.
func TestAdversarialPayloadProperty(t *testing.T) {
	payloads := [][]byte{
		[]byte(Magic + "\n"),
		[]byte("entry name=\"fake\" size=99\n"),
		[]byte("\nentry\n\n"),
	}
	for _, pl := range payloads {
		ar := &Archive{}
		ar.Add(Member{Name: "tricky", Data: pl})
		ar.Add(Member{Name: "after", Data: []byte("ok")})
		back, err := Unpack(ar.Pack())
		if err != nil {
			t.Fatalf("payload %q: %v", pl, err)
		}
		if string(back.Members[0].Data) != string(pl) || string(back.Members[1].Data) != "ok" {
			t.Errorf("payload %q corrupted", pl)
		}
	}
}
